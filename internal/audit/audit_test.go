package audit

import (
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/heap"
	"repro/internal/memlimit"
	"repro/internal/object"
	"repro/internal/vmaddr"
)

// world is a miniature VM: a registry, a kernel heap, and class fixtures.
type world struct {
	space  *vmaddr.Space
	reg    *heap.Registry
	root   *memlimit.Limit
	kernel *heap.Heap
	node   *object.Class
}

func newWorld(t *testing.T) *world {
	t.Helper()
	space := vmaddr.NewSpace()
	reg := heap.NewRegistry(space, heap.Config{})
	root := memlimit.NewRoot("root", 64<<20)
	kernelLim := root.MustChild("kernel", 32<<20, false)
	w := &world{
		space:  space,
		reg:    reg,
		root:   root,
		kernel: reg.NewHeap(heap.KindKernel, "kernel", kernelLim),
	}
	mod := bytecode.MustAssemble(`
.class java/lang/Object
.end
.class t/Node
.field next Lt/Node;
.field other Lt/Node;
.field v I
.end`)
	objDef, _ := mod.Class("java/lang/Object")
	objCls, err := object.NewClass(objDef, nil, "test", true)
	if err != nil {
		t.Fatal(err)
	}
	nodeDef, _ := mod.Class("t/Node")
	w.node, err = object.NewClass(nodeDef, objCls, "test", false)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func (w *world) userHeap(t *testing.T, name string, pid int32) *heap.Heap {
	t.Helper()
	lim, err := w.root.NewChild(name, 8<<20, false)
	if err != nil {
		t.Fatal(err)
	}
	h := w.reg.NewHeap(heap.KindUser, name, lim)
	h.Pid = pid
	return h
}

func (w *world) alloc(t *testing.T, h *heap.Heap) *object.Object {
	t.Helper()
	o, err := h.Alloc(w.node)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// capture builds a World snapshot the way core.VM.Audit does.
func (w *world) capture() World {
	var aw World
	aw.Heaps = w.reg.SnapshotAll(func() {
		aw.Limits = w.root.Snapshot()
		aw.Pages = w.space.Dump()
	})
	aw.KernelID = w.kernel.ID
	return aw
}

// crossRef stores ref into holder's first reference slot and records the
// exit/entry pair, as the write barrier would.
func crossRef(t *testing.T, reg *heap.Registry, holder, ref *object.Object) {
	t.Helper()
	holder.SetRef(0, ref)
	hh, _ := reg.Lookup(holder.Heap)
	if err := hh.RecordCrossRef(ref); err != nil {
		t.Fatal(err)
	}
}

func wantOK(t *testing.T, rep *Report) {
	t.Helper()
	if !rep.OK() {
		t.Fatalf("audit failed:\n%s", rep)
	}
}

func wantViolation(t *testing.T, rep *Report, rule string) {
	t.Helper()
	for _, v := range rep.Violations {
		if v.Rule == rule {
			return
		}
	}
	t.Fatalf("expected a %q violation, got:\n%s", rule, rep)
}

func TestCleanWorldPasses(t *testing.T) {
	w := newWorld(t)
	u1 := w.userHeap(t, "u1", 1)
	u2 := w.userHeap(t, "u2", 2)
	var last *object.Object
	for i := 0; i < 50; i++ {
		o := w.alloc(t, u1)
		if last != nil {
			o.SetRef(0, last)
		}
		last = o
	}
	k := w.alloc(t, w.kernel)
	crossRef(t, w.reg, last, k)
	crossRef(t, w.reg, w.alloc(t, u2), k)

	rep := Check(w.capture(), Options{Graph: true})
	wantOK(t, rep)
	if rep.HeapsChecked != 3 || rep.ObjectsChecked != 52 {
		t.Fatalf("checked %d heaps / %d objects, want 3 / 52", rep.HeapsChecked, rep.ObjectsChecked)
	}
	if rep.EdgesChecked == 0 {
		t.Fatal("graph mode walked no edges")
	}
}

func TestSurvivesCollectionAndMerge(t *testing.T) {
	w := newWorld(t)
	u := w.userHeap(t, "u", 1)
	var keep []*object.Object
	for i := 0; i < 200; i++ {
		o := w.alloc(t, u)
		if i%3 == 0 {
			keep = append(keep, o)
		}
	}
	u.Collect(func(visit func(*object.Object)) {
		for _, o := range keep {
			visit(o)
		}
	})
	wantOK(t, Check(w.capture(), Options{Graph: true}))

	if err := u.MergeInto(w.kernel); err != nil {
		t.Fatal(err)
	}
	// The merged process' limit is now empty; release it so the tree has no
	// stale node (as process reclaim does).
	u.Limit().Release()
	wantOK(t, Check(w.capture(), Options{Graph: true}))
}

func TestDetectsUnbackedCrossRef(t *testing.T) {
	w := newWorld(t)
	u := w.userHeap(t, "u", 1)
	o := w.alloc(t, u)
	k := w.alloc(t, w.kernel)
	o.SetRef(0, k) // no RecordCrossRef: exit item missing
	rep := Check(w.capture(), Options{Graph: true})
	wantViolation(t, rep, "unbacked-ref")
}

func TestDetectsIllegalUserToUserRef(t *testing.T) {
	w := newWorld(t)
	u1 := w.userHeap(t, "u1", 1)
	u2 := w.userHeap(t, "u2", 2)
	a := w.alloc(t, u1)
	b := w.alloc(t, u2)
	a.SetRef(0, b)
	rep := Check(w.capture(), Options{Graph: true})
	wantViolation(t, rep, "illegal-ref")
}

func TestDetectsAccountingCorruption(t *testing.T) {
	w := newWorld(t)
	u := w.userHeap(t, "u", 1)
	w.alloc(t, u)

	aw := w.capture()
	wantOK(t, Check(aw, Options{}))

	// Tamper with the snapshot the way real corruption would surface.
	t.Run("heap-bytes", func(t *testing.T) {
		mod := w.capture()
		for i := range mod.Heaps {
			if mod.Heaps[i].Name == "u" {
				mod.Heaps[i].Bytes += 8
			}
		}
		rep := Check(mod, Options{})
		wantViolation(t, rep, "heap-bytes")
		wantViolation(t, rep, "limit-reconcile")
	})
	t.Run("page-owner", func(t *testing.T) {
		mod := w.capture()
		mod.Pages[0xdead] = 9999
		wantViolation(t, Check(mod, Options{}), "page-owner")
	})
	t.Run("heap-pid", func(t *testing.T) {
		mod := w.capture()
		mod.LivePids = map[int32]bool{} // process 1 is gone
		wantViolation(t, Check(mod, Options{}), "heap-pid")
	})
	t.Run("entry-refcount", func(t *testing.T) {
		mod := w.capture()
		k := w.alloc(t, w.kernel)
		mod.Heaps[0].Entries[k] = 3 // phantom entry item, no exits back it
		wantViolation(t, Check(mod, Options{}), "entry-refcount")
	})
}

func TestDetectsExitCounterDrift(t *testing.T) {
	w := newWorld(t)
	u := w.userHeap(t, "u", 1)
	o := w.alloc(t, u)
	k := w.alloc(t, w.kernel)
	crossRef(t, w.reg, o, k)

	mod := w.capture()
	for i := range mod.Heaps {
		if mod.Heaps[i].Name == "u" {
			mod.Heaps[i].ExitsTo[w.kernel.ID] = 7
		}
	}
	wantViolation(t, Check(mod, Options{}), "exitsto-counter")
}

func TestReportString(t *testing.T) {
	w := newWorld(t)
	rep := Check(w.capture(), Options{})
	if !strings.Contains(rep.String(), "OK") {
		t.Fatalf("clean report renders as %q", rep.String())
	}
	mod := w.capture()
	mod.Pages[0xbeef] = 424242
	s := Check(mod, Options{}).String()
	if !strings.Contains(s, "page-owner") {
		t.Fatalf("violating report renders as %q", s)
	}
}
