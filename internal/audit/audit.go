// Package audit implements the whole-kernel invariant auditor.
//
// The auditor takes a globally consistent snapshot of every accounting
// structure in the VM — every heap, the cross-heap entry/exit items, the
// hierarchical memlimit tree, the simulated page table, and the shared-heap
// charge table — and re-derives the kernel's bookkeeping from first
// principles, reporting every place where the books disagree. It is the
// correctness oracle for the fault-injection plane (package faults): after
// injected allocation failures, mid-GC kills, spurious segmentation
// violations, and forced preemptions, every invariant the paper's design
// guarantees must still hold:
//
//   - every object belongs to exactly one live heap, lies inside one of that
//     heap's chunks, and on a page the page table maps to that heap;
//   - a heap's accounted bytes equal the recomputed sum of its objects'
//     sizes, and a frozen heap holds no allocation lease;
//   - entry and exit items are symmetric: every exit item points at an entry
//     item in the target heap whose reference count equals the number of
//     source heaps holding a matching exit;
//   - memory charged to every memlimit equals the memory attributable to it:
//     heap bytes + standing lease + entry/exit item bytes + shared-heap
//     attach charges + code-cache charges (full artifact size per sharer,
//     plus residency on the cache's base limit), after subtracting child
//     reservations;
//   - every mapped page is owned by a live heap, and each heap's chunk list
//     covers exactly the pages the table says it owns;
//   - (graph mode) every cross-heap reference in the object graph is backed
//     by an exit item, respects the paper's legality matrix (Figure 2), and
//     targets a live object — dead processes' memory is unreachable.
//
// Graph mode walks Object.Refs and therefore requires a quiescent VM (no
// mutator running); the numeric checks are valid on any consistent snapshot.
package audit

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/heap"
	"repro/internal/memlimit"
	"repro/internal/object"
	"repro/internal/shared"
	"repro/internal/vmaddr"
)

// World is the consistent snapshot the auditor checks. Capture order
// matters: the shared charge table must be captured under the shared
// manager's lock around the heap snapshot (shared.Manager.Snapshot), and
// Limits/Pages inside the heap snapshot's extra callback, so that all four
// describe the same instant.
type World struct {
	Heaps  []heap.HeapView
	Limits *memlimit.Node
	Pages  map[uint64]vmaddr.HeapID
	Shared []shared.ChargeInfo
	// Code is the shared-code-cache charge table (empty when the cache
	// is off). Every sharer owes Size; the cache's base limit owes Size
	// per resident artifact (code has no heap backing — the modeled
	// bytes live only in the memlimit tree). The type is local rather
	// than codecache.ChargeInfo so the auditor — which fault-injection
	// tests pull into low-level packages — does not transitively import
	// the execution engine.
	Code []CodeCharge
	// CodeLimit is the cache's base limit (nil when the cache is off).
	CodeLimit *memlimit.Limit
	// KernelID identifies the kernel heap.
	KernelID vmaddr.HeapID
	// LivePids, when non-nil, is the set of processes not yet reclaimed;
	// user heaps must belong to one of them.
	LivePids map[int32]bool
	// TemplatePids, when non-nil, is the set of registered process
	// templates; template heaps must belong to one of them.
	TemplatePids map[int32]bool
}

// CodeCharge mirrors codecache.ChargeInfo: one resident artifact's
// charge state at the snapshot instant.
type CodeCharge struct {
	Name    string
	Variant string
	Size    uint64
	Sharers []*memlimit.Limit
}

// Options selects optional checks.
type Options struct {
	// Graph walks every object's reference fields (legality matrix, exit
	// backing, no dangling references). Requires a quiescent VM.
	Graph bool
}

// Violation is one broken invariant.
type Violation struct {
	Rule   string // short rule name, e.g. "entry-exit-symmetry"
	Detail string
}

func (v Violation) String() string { return v.Rule + ": " + v.Detail }

// Report is the auditor's result.
type Report struct {
	Violations []Violation

	HeapsChecked   int
	ObjectsChecked int
	PagesChecked   int
	LimitsChecked  int
	EdgesChecked   int
}

// OK reports whether every invariant held.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %d heaps, %d objects, %d pages, %d limits, %d edges: ",
		r.HeapsChecked, r.ObjectsChecked, r.PagesChecked, r.LimitsChecked, r.EdgesChecked)
	if r.OK() {
		b.WriteString("OK")
		return b.String()
	}
	fmt.Fprintf(&b, "%d violation(s)", len(r.Violations))
	for _, v := range r.Violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return b.String()
}

type checker struct {
	w    World
	opts Options
	rep  *Report

	byID  map[vmaddr.HeapID]*heap.HeapView
	owner map[*object.Object]vmaddr.HeapID
}

func (c *checker) fail(rule, format string, args ...any) {
	c.rep.Violations = append(c.rep.Violations, Violation{Rule: rule, Detail: fmt.Sprintf(format, args...)})
}

// Check audits a snapshot and returns the report.
func Check(w World, opts Options) *Report {
	c := &checker{
		w:     w,
		opts:  opts,
		rep:   &Report{},
		byID:  make(map[vmaddr.HeapID]*heap.HeapView, len(w.Heaps)),
		owner: make(map[*object.Object]vmaddr.HeapID),
	}
	for i := range w.Heaps {
		v := &w.Heaps[i]
		if _, dup := c.byID[v.ID]; dup {
			c.fail("heap-dup", "heap ID %d appears twice in snapshot", v.ID)
		}
		c.byID[v.ID] = v
	}
	c.checkObjects()
	c.checkItems()
	c.checkPages()
	c.checkLimits()
	c.checkShared()
	c.checkPids()
	c.checkTemplates()
	if opts.Graph {
		c.checkGraph()
	}
	sort.SliceStable(c.rep.Violations, func(i, j int) bool {
		return c.rep.Violations[i].Rule < c.rep.Violations[j].Rule
	})
	return c.rep
}

// checkObjects: ownership, address placement, recomputed bytes, lease state.
func (c *checker) checkObjects() {
	for i := range c.w.Heaps {
		v := &c.w.Heaps[i]
		c.rep.HeapsChecked++
		if v.SizedBytes != v.Bytes {
			c.fail("heap-bytes", "heap %q: accounted bytes %d != recomputed object bytes %d",
				v.Name, v.Bytes, v.SizedBytes)
		}
		if v.Frozen && v.Lease != 0 {
			c.fail("frozen-lease", "frozen heap %q holds a %d-byte allocation lease", v.Name, v.Lease)
		}
		for _, ov := range v.Objects {
			o := ov.Obj
			c.rep.ObjectsChecked++
			if prev, dup := c.owner[o]; dup {
				c.fail("object-dup", "object %#x registered in heaps %d and %d", o.Addr, prev, v.ID)
				continue
			}
			c.owner[o] = v.ID
			// ov.Heap is the header captured inside the snapshot cut; the
			// live o.Heap may already have been rewritten by a merge.
			if ov.Heap != v.ID {
				c.fail("object-owner", "object %#x in heap %q has header heap ID %d", o.Addr, v.Name, ov.Heap)
			}
			if got, ok := c.w.Pages[o.Addr>>vmaddr.PageShift]; !ok {
				c.fail("object-page", "object %#x in heap %q lies on an unmapped page", o.Addr, v.Name)
			} else if got != v.ID {
				c.fail("object-page", "object %#x in heap %q lies on a page owned by heap %d", o.Addr, v.Name, got)
			}
			if !inChunks(v.Chunks, o.Addr) {
				c.fail("object-chunk", "object %#x in heap %q lies outside every chunk", o.Addr, v.Name)
			}
		}
	}
}

func inChunks(chunks []heap.PageRange, addr uint64) bool {
	for _, ch := range chunks {
		if addr >= ch.Base && addr < ch.Base+uint64(ch.Pages)<<vmaddr.PageShift {
			return true
		}
	}
	return false
}

// checkItems: entry/exit symmetry and the O(1) exitsTo counters.
func (c *checker) checkItems() {
	// refs[target heap][target] = number of distinct source heaps holding a
	// matching exit item.
	refs := make(map[vmaddr.HeapID]map[*object.Object]int)
	for i := range c.w.Heaps {
		v := &c.w.Heaps[i]
		perHeap := make(map[vmaddr.HeapID]int)
		for target, tid := range v.Exits {
			if tid == v.ID {
				c.fail("exit-self", "heap %q holds an exit item targeting its own object %#x", v.Name, target.Addr)
				continue
			}
			tv, ok := c.byID[tid]
			if !ok {
				c.fail("exit-dangling", "heap %q holds an exit item into dead heap %d", v.Name, tid)
				continue
			}
			if own, live := c.owner[target]; live && own != tid {
				c.fail("exit-stale", "heap %q exit target %#x moved from heap %d to %d without remap",
					v.Name, target.Addr, tid, own)
			}
			if n, ok := tv.Entries[target]; !ok {
				c.fail("entry-exit-symmetry", "heap %q exit to %#x in %q has no entry item", v.Name, target.Addr, tv.Name)
			} else if n < 1 {
				c.fail("entry-refcount", "entry item for %#x in %q has count %d", target.Addr, tv.Name, n)
			}
			perHeap[tid]++
			m := refs[tid]
			if m == nil {
				m = make(map[*object.Object]int)
				refs[tid] = m
			}
			m[target]++
		}
		for tid, n := range perHeap {
			if v.ExitsTo[tid] != n {
				c.fail("exitsto-counter", "heap %q exitsTo[%d] = %d but %d exit items target it",
					v.Name, tid, v.ExitsTo[tid], n)
			}
		}
		for tid, n := range v.ExitsTo {
			if n <= 0 {
				c.fail("exitsto-counter", "heap %q exitsTo[%d] = %d (must be positive)", v.Name, tid, n)
			}
			if perHeap[tid] != n {
				c.fail("exitsto-counter", "heap %q exitsTo[%d] = %d but %d exit items target it",
					v.Name, tid, n, perHeap[tid])
			}
		}
	}
	for i := range c.w.Heaps {
		v := &c.w.Heaps[i]
		for target, rc := range v.Entries {
			if c.owner[target] != v.ID {
				c.fail("entry-foreign", "heap %q holds an entry item for %#x, which lives in heap %d",
					v.Name, target.Addr, c.owner[target])
			}
			got := refs[v.ID][target]
			if rc != got {
				c.fail("entry-refcount", "entry item for %#x in %q has count %d but %d heap(s) hold exits",
					target.Addr, v.Name, rc, got)
			}
		}
	}
}

// checkPages: the page table and the heaps' chunk lists must agree exactly.
func (c *checker) checkPages() {
	c.rep.PagesChecked = len(c.w.Pages)
	owned := make(map[vmaddr.HeapID]map[uint64]bool, len(c.w.Heaps))
	for page, id := range c.w.Pages {
		if _, ok := c.byID[id]; !ok {
			c.fail("page-owner", "page %#x owned by dead heap %d", page<<vmaddr.PageShift, id)
			continue
		}
		m := owned[id]
		if m == nil {
			m = make(map[uint64]bool)
			owned[id] = m
		}
		m[page] = true
	}
	for i := range c.w.Heaps {
		v := &c.w.Heaps[i]
		claimed := make(map[uint64]bool)
		claim := func(r heap.PageRange, kind string) {
			for k := 0; k < r.Pages; k++ {
				page := (r.Base >> vmaddr.PageShift) + uint64(k)
				if claimed[page] {
					c.fail("chunk-overlap", "heap %q claims page %#x twice", v.Name, page<<vmaddr.PageShift)
				}
				claimed[page] = true
				if !owned[v.ID][page] {
					c.fail("page-claim", "heap %q %s chunk claims page %#x, owned by %d in the table",
						v.Name, kind, page<<vmaddr.PageShift, c.w.Pages[page])
				}
			}
		}
		for _, r := range v.Chunks {
			claim(r, "live")
		}
		for _, r := range v.Free {
			claim(r, "free")
		}
		for page := range owned[v.ID] {
			if !claimed[page] {
				c.fail("page-orphan", "page %#x owned by heap %q but in none of its chunks",
					page<<vmaddr.PageShift, v.Name)
			}
		}
	}
}

// checkLimits: re-derive every limit's direct use from the heaps and shared
// charges that bill it.
func (c *checker) checkLimits() {
	if c.w.Limits == nil {
		return
	}
	expected := make(map[*memlimit.Limit]uint64)
	for i := range c.w.Heaps {
		v := &c.w.Heaps[i]
		expected[v.Limit] += v.Bytes + v.Lease + v.EntryBytes + v.ExitBytes
	}
	for _, ci := range c.w.Shared {
		for _, lim := range ci.Sharers {
			expected[lim] += ci.Size
		}
	}
	for _, ci := range c.w.Code {
		for _, lim := range ci.Sharers {
			expected[lim] += ci.Size
		}
		if c.w.CodeLimit == nil {
			c.fail("code-limit", "code artifact %q (%s) is resident but the cache has no base limit",
				ci.Name, ci.Variant)
			continue
		}
		expected[c.w.CodeLimit] += ci.Size
	}
	known := make(map[*memlimit.Limit]bool)
	var walk func(n *memlimit.Node)
	walk = func(n *memlimit.Node) {
		c.rep.LimitsChecked++
		known[n.Limit] = true
		if n.Use > n.Max {
			c.fail("limit-overrun", "limit %q: use %d exceeds max %d", n.Name, n.Use, n.Max)
		}
		reserved := uint64(0)
		for _, child := range n.Children {
			if child.Hard {
				reserved += child.Max
			} else {
				reserved += child.Use
			}
		}
		if reserved > n.Use {
			c.fail("limit-reconcile", "limit %q: use %d is less than the %d its children account for",
				n.Name, n.Use, reserved)
		} else if direct := n.Use - reserved; direct != expected[n.Limit] {
			c.fail("limit-reconcile", "limit %q: direct use %d but heaps and shared charges account for %d",
				n.Name, direct, expected[n.Limit])
		}
		for _, child := range n.Children {
			walk(child)
		}
	}
	walk(c.w.Limits)
	for lim := range expected {
		if !known[lim] {
			c.fail("limit-unknown", "limit %q is charged %d bytes but is not in the tree",
				lim.Name(), expected[lim])
		}
	}
}

// checkShared: frozen shared heaps have fixed size; unfrozen ones still have
// their population-phase limit.
func (c *checker) checkShared() {
	for _, ci := range c.w.Shared {
		v, ok := c.byID[ci.Heap.ID]
		if !ok {
			c.fail("shared-dead", "shared heap %q is registered but its heap %d is dead", ci.Name, ci.Heap.ID)
			continue
		}
		if ci.Frozen {
			if !v.Frozen {
				c.fail("shared-frozen", "shared heap %q is frozen in the manager but not in the heap", ci.Name)
			}
			if v.Bytes != ci.Size {
				c.fail("shared-size", "frozen shared heap %q: fixed size %d but heap holds %d bytes",
					ci.Name, ci.Size, v.Bytes)
			}
			if ci.CreateLimit != nil {
				c.fail("shared-limit", "frozen shared heap %q still has a population limit", ci.Name)
			}
		} else {
			if v.Frozen {
				c.fail("shared-frozen", "shared heap %q is frozen in the heap but not in the manager", ci.Name)
			}
			if ci.CreateLimit == nil {
				c.fail("shared-limit", "unfrozen shared heap %q has no population limit", ci.Name)
			}
			if len(ci.Sharers) != 0 {
				c.fail("shared-premature", "unfrozen shared heap %q already has %d sharer(s)", ci.Name, len(ci.Sharers))
			}
		}
	}
}

// checkPids: user heaps must belong to live processes.
func (c *checker) checkPids() {
	if c.w.LivePids == nil {
		return
	}
	for i := range c.w.Heaps {
		v := &c.w.Heaps[i]
		if v.Kind == heap.KindUser && !c.w.LivePids[v.Pid] {
			c.fail("heap-pid", "user heap %q belongs to dead process %d", v.Name, v.Pid)
		}
	}
}

// checkTemplates: template heaps are immutable checkpoints — frozen for
// their whole registered lifetime, owned by a registered template, and
// never referenced from any other heap (forks copy out of them, so no
// entry item may ever appear in one; this is what lets a template be
// destroyed without a merge).
func (c *checker) checkTemplates() {
	for i := range c.w.Heaps {
		v := &c.w.Heaps[i]
		if v.Kind != heap.KindTemplate {
			continue
		}
		if c.w.TemplatePids != nil && !c.w.TemplatePids[v.Pid] {
			c.fail("template-pid", "template heap %q belongs to unregistered template %d", v.Name, v.Pid)
		}
		if !v.Frozen {
			c.fail("template-unfrozen", "template heap %q is not frozen", v.Name)
		}
		if n := len(v.Entries); n != 0 {
			c.fail("template-entry", "template heap %q is referenced by other heaps (%d entry item(s))", v.Name, n)
		}
	}
}

// checkGraph walks every reference field: cross-heap edges need exit items
// and must respect the legality matrix; every edge must land on a live
// object. Requires a quiescent VM.
func (c *checker) checkGraph() {
	for i := range c.w.Heaps {
		v := &c.w.Heaps[i]
		for _, ov := range v.Objects {
			o := ov.Obj
			for _, ref := range o.Refs {
				if ref == nil {
					continue
				}
				c.rep.EdgesChecked++
				tid, live := c.owner[ref]
				if !live {
					c.fail("dangling-ref", "object %#x in heap %q references unregistered object %#x",
						o.Addr, v.Name, ref.Addr)
					continue
				}
				if tid == v.ID {
					continue
				}
				tv := c.byID[tid]
				switch v.Kind {
				case heap.KindUser:
					if tv.Kind == heap.KindUser || tv.Kind == heap.KindTemplate {
						c.fail("illegal-ref", "user heap %q references %s heap %q (object %#x -> %#x)",
							v.Name, tv.Kind, tv.Name, o.Addr, ref.Addr)
					}
				case heap.KindShared:
					if tv.Kind != heap.KindKernel {
						c.fail("illegal-ref", "shared heap %q references %s heap %q (object %#x -> %#x)",
							v.Name, tv.Kind, tv.Name, o.Addr, ref.Addr)
					}
				case heap.KindTemplate:
					// A template may keep kernel/shared objects alive through
					// its own exit items; anything else would let a fork smuggle
					// in a reference to mutable non-template state.
					if tv.Kind != heap.KindKernel && tv.Kind != heap.KindShared {
						c.fail("illegal-ref", "template heap %q references %s heap %q (object %#x -> %#x)",
							v.Name, tv.Kind, tv.Name, o.Addr, ref.Addr)
					}
				}
				if _, ok := v.Exits[ref]; !ok {
					c.fail("unbacked-ref", "cross-heap reference %#x (%q) -> %#x (%q) has no exit item",
						o.Addr, v.Name, ref.Addr, tv.Name)
				}
			}
		}
	}
}
