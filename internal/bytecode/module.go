package bytecode

import (
	"fmt"
	"strings"
	"sync"
)

// Module is a linkable unit: the output of the assembler and the input to a
// class loader. It is pure data — no runtime state — so one Module can be
// defined into any number of namespaces. A module must not be mutated
// after its first Hash call: the content hash is memoized (the shared
// code cache keys every load by it, and rehashing a large module per
// process would dominate the attach it exists to make cheap).
type Module struct {
	Classes []*ClassDef

	hashOnce sync.Once
	hash     [32]byte
}

// ClassDef describes one class symbolically.
type ClassDef struct {
	Name    string
	Super   string // "" only for the root class java/lang/Object
	Fields  []FieldDef
	Methods []*MethodDef
}

// FieldDef describes one field. Desc is a type descriptor (see ParseDesc).
type FieldDef struct {
	Name   string
	Desc   string
	Static bool
}

// MethodDef describes one method body.
type MethodDef struct {
	Name      string
	Sig       string // e.g. "(ILjava/lang/String;)V"
	Static    bool
	MaxStack  int
	MaxLocals int
	Code      *Code
}

// Key returns the name+signature key that identifies a method within its
// class for resolution and overriding.
func (m *MethodDef) Key() string { return m.Name + m.Sig }

// Class looks up a class definition by name.
func (m *Module) Class(name string) (*ClassDef, bool) {
	for _, c := range m.Classes {
		if c.Name == name {
			return c, true
		}
	}
	return nil, false
}

// Merge appends the classes of other into m, rejecting duplicates.
func (m *Module) Merge(other *Module) error {
	for _, c := range other.Classes {
		if _, dup := m.Class(c.Name); dup {
			return fmt.Errorf("bytecode: duplicate class %q in merge", c.Name)
		}
		m.Classes = append(m.Classes, c)
	}
	return nil
}

// Desc kinds. A descriptor is one of:
//
//	Z B C S I J F D    primitive kinds (sizes differ for accounting)
//	Lsome/Class;       reference
//	[<desc>            array
type DescKind uint8

const (
	DescBool DescKind = iota
	DescByte
	DescChar
	DescShort
	DescInt
	DescLong
	DescFloat
	DescDouble
	DescRef
	DescArray
)

// Desc is a parsed type descriptor.
type Desc struct {
	Kind      DescKind
	ClassName string // DescRef: the class; DescArray: the array class name (with leading '[')
	Elem      string // DescArray: element descriptor
}

// Ref reports whether the descriptor denotes a reference (object or array).
func (d Desc) Ref() bool { return d.Kind == DescRef || d.Kind == DescArray }

// ByteSize reports the memory accounting size of one value of this
// descriptor, mirroring Java field sizes (references are 8 bytes on our
// simulated 64-bit layout).
func (d Desc) ByteSize() int {
	switch d.Kind {
	case DescBool, DescByte:
		return 1
	case DescChar, DescShort:
		return 2
	case DescInt, DescFloat:
		return 4
	default:
		return 8
	}
}

// ParseDesc parses a single type descriptor.
func ParseDesc(s string) (Desc, error) {
	d, rest, err := parseDesc(s)
	if err != nil {
		return Desc{}, err
	}
	if rest != "" {
		return Desc{}, fmt.Errorf("bytecode: trailing garbage %q in descriptor %q", rest, s)
	}
	return d, nil
}

func parseDesc(s string) (Desc, string, error) {
	if s == "" {
		return Desc{}, "", fmt.Errorf("bytecode: empty descriptor")
	}
	switch s[0] {
	case 'Z':
		return Desc{Kind: DescBool}, s[1:], nil
	case 'B':
		return Desc{Kind: DescByte}, s[1:], nil
	case 'C':
		return Desc{Kind: DescChar}, s[1:], nil
	case 'S':
		return Desc{Kind: DescShort}, s[1:], nil
	case 'I':
		return Desc{Kind: DescInt}, s[1:], nil
	case 'J':
		return Desc{Kind: DescLong}, s[1:], nil
	case 'F':
		return Desc{Kind: DescFloat}, s[1:], nil
	case 'D':
		return Desc{Kind: DescDouble}, s[1:], nil
	case 'L':
		i := strings.IndexByte(s, ';')
		if i < 0 {
			return Desc{}, "", fmt.Errorf("bytecode: unterminated class descriptor %q", s)
		}
		name := s[1:i]
		if name == "" {
			return Desc{}, "", fmt.Errorf("bytecode: empty class name in descriptor %q", s)
		}
		return Desc{Kind: DescRef, ClassName: name}, s[i+1:], nil
	case '[':
		elem, rest, err := parseDesc(s[1:])
		if err != nil {
			return Desc{}, "", err
		}
		consumed := s[:len(s)-len(rest)]
		_ = elem
		return Desc{Kind: DescArray, ClassName: consumed, Elem: consumed[1:]}, rest, nil
	}
	return Desc{}, "", fmt.Errorf("bytecode: bad descriptor %q", s)
}

// Sig is a parsed method signature.
type Sig struct {
	Args []Desc
	Ret  *Desc // nil for void
}

// Slots reports the number of argument slots (each arg is one slot; we do
// not split longs/doubles across two slots as the JVM does).
func (s Sig) Slots() int { return len(s.Args) }

// ParseSig parses a method signature like "(ILjava/lang/String;)V".
func ParseSig(s string) (Sig, error) {
	if s == "" || s[0] != '(' {
		return Sig{}, fmt.Errorf("bytecode: signature %q does not start with '('", s)
	}
	rest := s[1:]
	var sig Sig
	for rest != "" && rest[0] != ')' {
		d, r, err := parseDesc(rest)
		if err != nil {
			return Sig{}, fmt.Errorf("bytecode: signature %q: %w", s, err)
		}
		sig.Args = append(sig.Args, d)
		rest = r
	}
	if rest == "" {
		return Sig{}, fmt.Errorf("bytecode: signature %q missing ')'", s)
	}
	rest = rest[1:]
	if rest == "V" {
		return sig, nil
	}
	d, err := ParseDesc(rest)
	if err != nil {
		return Sig{}, fmt.Errorf("bytecode: signature %q return: %w", s, err)
	}
	sig.Ret = &d
	return sig, nil
}
