// Package bytecode defines the stack-machine instruction set executed by
// the kvm virtual machine, along with a textual assembler, a disassembler,
// and a structural verifier.
//
// The ISA is a compact cousin of JVM bytecode: a stack machine with typed
// loads/stores, field access through a symbolic constant pool, virtual and
// static invocation, exceptions with handler tables, and monitors. Programs
// for the VM — including the SPEC-JVM98-like workloads used to reproduce
// the paper's Figure 3 and Table 1 — are written either in the textual
// assembly accepted by Assemble or built directly with the builder in the
// object package.
package bytecode

import "fmt"

// Op is an opcode. Instructions are fixed-width (Op plus two int32
// operands), which keeps the interpreter and the closure compiler simple.
type Op uint8

// The instruction set. Operand conventions are noted per opcode:
// A and B are the Instr operand fields.
const (
	NOP Op = iota

	// Constants.
	ICONST      // push A (small int immediate)
	LDC         // push constant pool entry A (int64, double, or string)
	ACONST_NULL // push null reference

	// Local variables. A = local slot.
	ILOAD  // push int local A
	ISTORE // pop int into local A
	ALOAD  // push ref local A
	ASTORE // pop ref into local A
	DLOAD  // push double local A
	DSTORE // pop double into local A
	IINC   // local A += B (no stack traffic)

	// Operand stack.
	POP    // discard top
	DUP    // duplicate top
	DUP_X1 // duplicate top beneath the next value
	SWAP   // swap top two

	// Integer arithmetic (64-bit).
	IADD
	ISUB
	IMUL
	IDIV // throws ArithmeticException on divide by zero
	IREM // throws ArithmeticException on divide by zero
	INEG
	ISHL
	ISHR
	IUSHR
	IAND
	IOR
	IXOR

	// Floating point (64-bit).
	DADD
	DSUB
	DMUL
	DDIV
	DNEG
	I2D
	D2I
	DCMP // push -1, 0, or 1

	// Branches. A = target pc.
	GOTO
	IFEQ
	IFNE
	IFLT
	IFGE
	IFGT
	IFLE
	IF_ICMPEQ
	IF_ICMPNE
	IF_ICMPLT
	IF_ICMPGE
	IF_ICMPGT
	IF_ICMPLE
	IF_ACMPEQ
	IF_ACMPNE
	IFNULL
	IFNONNULL

	// Objects and fields. A = constant pool index.
	NEW        // A = class ref; push new instance
	GETFIELD   // A = field ref; pop obj, push value
	PUTFIELD   // A = field ref; pop value, obj (ref stores run the write barrier)
	GETSTATIC  // A = field ref
	PUTSTATIC  // A = field ref (ref stores run the write barrier)
	INSTANCEOF // A = class ref; pop obj, push 0/1
	CHECKCAST  // A = class ref; throws ClassCastException

	// Arrays.
	NEWARRAY    // A = class ref of the *array* class; pop length, push array
	ARRAYLENGTH // pop array, push length
	IALOAD      // pop index, array; push prim element
	IASTORE     // pop value, index, array
	AALOAD      // pop index, array; push ref element
	AASTORE     // pop value, index, array (runs the write barrier)

	// Calls. A = constant pool method ref.
	INVOKESTATIC
	INVOKEVIRTUAL // receiver dispatched through the vtable
	INVOKESPECIAL // constructors and super calls: static binding, has receiver
	RETURN        // return void
	IRETURN       // return int
	ARETURN       // return ref
	DRETURN       // return double

	// Exceptions.
	ATHROW // pop throwable, raise it

	// Monitors.
	MONITORENTER // pop obj, lock
	MONITOREXIT  // pop obj, unlock

	numOps // sentinel
)

// Instr is a decoded instruction.
type Instr struct {
	Op   Op
	A, B int32
}

// opInfo describes static properties of an opcode used by the assembler,
// verifier, and cycle accounting.
type opInfo struct {
	name    string
	pop     int  // operand stack slots consumed (-1 = special)
	push    int  // operand stack slots produced (-1 = special)
	operand opnd // operand kind expected by the assembler
	cycles  int  // simulated CPU cycles (drives CPU accounting & Table 1)
	branch  bool // A is a branch target
}

type opnd uint8

const (
	opndNone  opnd = iota
	opndInt        // small immediate in A
	opndLocal      // local slot in A
	opndIinc       // local slot in A, delta in B
	opndPool       // constant pool index in A
	opndLabel      // branch target in A
)

var ops = [numOps]opInfo{
	NOP:          {"nop", 0, 0, opndNone, 1, false},
	ICONST:       {"iconst", 0, 1, opndInt, 1, false},
	LDC:          {"ldc", 0, 1, opndPool, 2, false},
	ACONST_NULL:  {"aconst_null", 0, 1, opndNone, 1, false},
	ILOAD:        {"iload", 0, 1, opndLocal, 1, false},
	ISTORE:       {"istore", 1, 0, opndLocal, 1, false},
	ALOAD:        {"aload", 0, 1, opndLocal, 1, false},
	ASTORE:       {"astore", 1, 0, opndLocal, 1, false},
	DLOAD:        {"dload", 0, 1, opndLocal, 1, false},
	DSTORE:       {"dstore", 1, 0, opndLocal, 1, false},
	IINC:         {"iinc", 0, 0, opndIinc, 1, false},
	POP:          {"pop", 1, 0, opndNone, 1, false},
	DUP:          {"dup", 1, 2, opndNone, 1, false},
	DUP_X1:       {"dup_x1", 2, 3, opndNone, 1, false},
	SWAP:         {"swap", 2, 2, opndNone, 1, false},
	IADD:         {"iadd", 2, 1, opndNone, 1, false},
	ISUB:         {"isub", 2, 1, opndNone, 1, false},
	IMUL:         {"imul", 2, 1, opndNone, 3, false},
	IDIV:         {"idiv", 2, 1, opndNone, 20, false},
	IREM:         {"irem", 2, 1, opndNone, 20, false},
	INEG:         {"ineg", 1, 1, opndNone, 1, false},
	ISHL:         {"ishl", 2, 1, opndNone, 1, false},
	ISHR:         {"ishr", 2, 1, opndNone, 1, false},
	IUSHR:        {"iushr", 2, 1, opndNone, 1, false},
	IAND:         {"iand", 2, 1, opndNone, 1, false},
	IOR:          {"ior", 2, 1, opndNone, 1, false},
	IXOR:         {"ixor", 2, 1, opndNone, 1, false},
	DADD:         {"dadd", 2, 1, opndNone, 3, false},
	DSUB:         {"dsub", 2, 1, opndNone, 3, false},
	DMUL:         {"dmul", 2, 1, opndNone, 5, false},
	DDIV:         {"ddiv", 2, 1, opndNone, 20, false},
	DNEG:         {"dneg", 1, 1, opndNone, 1, false},
	I2D:          {"i2d", 1, 1, opndNone, 2, false},
	D2I:          {"d2i", 1, 1, opndNone, 2, false},
	DCMP:         {"dcmp", 2, 1, opndNone, 3, false},
	GOTO:         {"goto", 0, 0, opndLabel, 1, true},
	IFEQ:         {"ifeq", 1, 0, opndLabel, 1, true},
	IFNE:         {"ifne", 1, 0, opndLabel, 1, true},
	IFLT:         {"iflt", 1, 0, opndLabel, 1, true},
	IFGE:         {"ifge", 1, 0, opndLabel, 1, true},
	IFGT:         {"ifgt", 1, 0, opndLabel, 1, true},
	IFLE:         {"ifle", 1, 0, opndLabel, 1, true},
	IF_ICMPEQ:    {"if_icmpeq", 2, 0, opndLabel, 1, true},
	IF_ICMPNE:    {"if_icmpne", 2, 0, opndLabel, 1, true},
	IF_ICMPLT:    {"if_icmplt", 2, 0, opndLabel, 1, true},
	IF_ICMPGE:    {"if_icmpge", 2, 0, opndLabel, 1, true},
	IF_ICMPGT:    {"if_icmpgt", 2, 0, opndLabel, 1, true},
	IF_ICMPLE:    {"if_icmple", 2, 0, opndLabel, 1, true},
	IF_ACMPEQ:    {"if_acmpeq", 2, 0, opndLabel, 1, true},
	IF_ACMPNE:    {"if_acmpne", 2, 0, opndLabel, 1, true},
	IFNULL:       {"ifnull", 1, 0, opndLabel, 1, true},
	IFNONNULL:    {"ifnonnull", 1, 0, opndLabel, 1, true},
	NEW:          {"new", 0, 1, opndPool, 30, false},
	GETFIELD:     {"getfield", 1, 1, opndPool, 2, false},
	PUTFIELD:     {"putfield", 2, 0, opndPool, 2, false},
	GETSTATIC:    {"getstatic", 0, 1, opndPool, 2, false},
	PUTSTATIC:    {"putstatic", 1, 0, opndPool, 2, false},
	INSTANCEOF:   {"instanceof", 1, 1, opndPool, 4, false},
	CHECKCAST:    {"checkcast", 1, 1, opndPool, 4, false},
	NEWARRAY:     {"newarray", 1, 1, opndPool, 30, false},
	ARRAYLENGTH:  {"arraylength", 1, 1, opndNone, 1, false},
	IALOAD:       {"iaload", 2, 1, opndNone, 2, false},
	IASTORE:      {"iastore", 3, 0, opndNone, 2, false},
	AALOAD:       {"aaload", 2, 1, opndNone, 2, false},
	AASTORE:      {"aastore", 3, 0, opndNone, 2, false},
	INVOKESTATIC: {"invokestatic", -1, -1, opndPool, 10, false},
	INVOKEVIRTUAL: {"invokevirtual", -1, -1, opndPool,
		12, false},
	INVOKESPECIAL: {"invokespecial", -1, -1, opndPool, 10, false},
	RETURN:        {"return", 0, 0, opndNone, 5, false},
	IRETURN:       {"ireturn", 1, 0, opndNone, 5, false},
	ARETURN:       {"areturn", 1, 0, opndNone, 5, false},
	DRETURN:       {"dreturn", 1, 0, opndNone, 5, false},
	ATHROW:        {"athrow", 1, 0, opndNone, 10, false},
	MONITORENTER:  {"monitorenter", 1, 0, opndNone, 8, false},
	MONITOREXIT:   {"monitorexit", 1, 0, opndNone, 8, false},
}

// Name returns the assembler mnemonic of op.
func (op Op) Name() string {
	if int(op) < len(ops) && ops[op].name != "" {
		return ops[op].name
	}
	return fmt.Sprintf("op(%d)", op)
}

// NumOps reports the number of defined opcodes.
func NumOps() int { return int(numOps) }

// Cycles reports the simulated CPU cost of op, used for CPU accounting and
// the virtual clock.
func (op Op) Cycles() int {
	if int(op) >= len(ops) {
		return 0
	}
	return ops[op].cycles
}

// IsBranch reports whether op's A operand is a branch target. Undefined
// opcodes — which can reach here from unreachable code, since the verifier
// only judges reachable instructions — are not branches.
func (op Op) IsBranch() bool { return int(op) < len(ops) && ops[op].branch }

var opByName = func() map[string]Op {
	m := make(map[string]Op, numOps)
	for op := Op(0); op < numOps; op++ {
		if ops[op].name != "" {
			m[ops[op].name] = op
		}
	}
	return m
}()

// OpByName resolves an assembler mnemonic.
func OpByName(name string) (Op, bool) {
	op, ok := opByName[name]
	return op, ok
}
