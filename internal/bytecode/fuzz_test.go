package bytecode

import (
	"fmt"
	"strings"
	"testing"
)

// fuzzPool is a constant palette covering every pool kind, so synthesized
// method bodies can reach each pool-checking path in Verify.
func fuzzPool() []Const {
	return []Const{
		{Kind: KindInt, I: 7},
		{Kind: KindDouble, D: 1.5},
		{Kind: KindString, S: "s"},
		{Kind: KindClass, Class: "t/C"},
		{Kind: KindClass, Class: "[I"},
		{Kind: KindField, Class: "t/C", Name: "f", Sig: "I"},
		{Kind: KindMethod, Class: "t/C", Name: "m", Sig: "(I)I"},
		{Kind: KindMethod, Class: "t/C", Name: "v", Sig: "()V"},
	}
}

// decodeFuzzMethod turns raw bytes into a MethodDef: a small header
// (limits, flags, an optional exception handler with unvalidated indices),
// then three bytes per instruction. Every decode is a structurally
// arbitrary but deterministic method for Verify to judge.
func decodeFuzzMethod(data []byte) *MethodDef {
	if len(data) < 6 {
		return nil
	}
	code := &Code{Consts: fuzzPool()}
	m := &MethodDef{
		Name:      "fz",
		Sig:       "()V",
		Static:    data[2]&1 != 0,
		MaxStack:  int(data[0] % 16),
		MaxLocals: int(data[1] % 16),
		Code:      code,
	}
	if data[2]&2 != 0 {
		m.Sig = "(I)I"
	}
	if data[2]&4 != 0 {
		// Raw, unvalidated handler indices: Verify must reject bad ranges,
		// never index out of bounds.
		code.Handlers = append(code.Handlers, Handler{
			Start: int(int8(data[3])),
			End:   int(int8(data[4])),
			PC:    int(int8(data[5])),
		})
	}
	for rest := data[6:]; len(rest) >= 3; rest = rest[3:] {
		code.Instrs = append(code.Instrs, Instr{
			Op: Op(rest[0]),
			A:  int32(int8(rest[1])),
			B:  int32(int8(rest[2])),
		})
	}
	return m
}

// FuzzVerify feeds structurally arbitrary method bodies to the verifier.
// Whatever the bytes decode to, Verify must return a verdict — never
// panic or index out of range — the verdict must be deterministic, and
// any accepted body must survive Disassemble.
func FuzzVerify(f *testing.F) {
	// return
	f.Add([]byte{4, 4, 1, 0, 0, 0, byte(RETURN), 0, 0})
	// iconst 1; ireturn as (I)I
	f.Add([]byte{4, 4, 3, 0, 0, 0, byte(ICONST), 1, 0, byte(IRETURN), 0, 0})
	// backward branch: goto 0 (infinite loop, structurally fine)
	f.Add([]byte{4, 4, 1, 0, 0, 0, byte(GOTO), 0, 0})
	// handler over the whole body, throwable popped
	f.Add([]byte{4, 4, 5, 0, 1, 1, byte(NOP), 0, 0, byte(POP), 0, 0, byte(RETURN), 0, 0})
	// pool ops across the palette
	f.Add([]byte{8, 8, 1, 0, 0, 0,
		byte(LDC), 0, 0, byte(POP), 0, 0,
		byte(NEW), 3, 0, byte(POP), 0, 0,
		byte(RETURN), 0, 0})
	// invalid opcode and out-of-range pool index
	f.Add([]byte{4, 4, 1, 0, 0, 0, 255, 0, 0, byte(LDC), 100, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m := decodeFuzzMethod(data)
		if m == nil {
			return
		}
		err1 := Verify(m)
		err2 := Verify(m)
		if (err1 == nil) != (err2 == nil) ||
			(err1 != nil && err1.Error() != err2.Error()) {
			t.Fatalf("verify verdict not deterministic: %v vs %v", err1, err2)
		}
		if err1 == nil {
			// Accepted bodies must render without panicking, even when
			// unreachable instructions carry garbage operands (the verifier
			// only judges reachable code).
			_ = Disassemble(m.Code)
		}
	})
}

// renderModule prints mod in the assembler's input format, exactly as the
// kaffeos dis command does.
func renderModule(mod *Module) string {
	var b strings.Builder
	for _, c := range mod.Classes {
		if c.Super != "" {
			fmt.Fprintf(&b, ".class %s extends %s\n", c.Name, c.Super)
		} else {
			fmt.Fprintf(&b, ".class %s\n", c.Name)
		}
		for _, fd := range c.Fields {
			kw := ".field"
			if fd.Static {
				kw = ".static"
			}
			fmt.Fprintf(&b, "%s %s %s\n", kw, fd.Name, fd.Desc)
		}
		for _, m := range c.Methods {
			mods := ""
			if m.Static {
				mods = " static"
			}
			if m.Code == nil {
				fmt.Fprintf(&b, ".method %s %s%s native\n.end\n", m.Name, m.Sig, mods)
				continue
			}
			fmt.Fprintf(&b, ".method %s %s%s\n.locals %d\n.stack %d\n", m.Name, m.Sig, mods, m.MaxLocals, m.MaxStack)
			b.WriteString(Disassemble(m.Code))
			b.WriteString(".end\n")
		}
		b.WriteString(".end\n")
	}
	return b.String()
}

// sameInstr compares instructions semantically: pool operands by resolved
// constant (round-tripping may renumber the pool), everything else by raw
// operand values.
func sameInstr(c1, c2 *Code, i1, i2 Instr) bool {
	if i1.Op != i2.Op {
		return false
	}
	if ops[i1.Op].operand == opndPool {
		k1, e1 := c1.Const(i1.A)
		k2, e2 := c2.Const(i2.A)
		return e1 == nil && e2 == nil && *k1 == *k2
	}
	return i1.A == i2.A && i1.B == i2.B
}

// FuzzAssembleDisassemble: any source the assembler accepts and the
// verifier passes must survive a disassemble/reassemble round trip with
// identical semantics — same classes, fields, method shapes, handlers, and
// per-instruction behavior.
func FuzzAssembleDisassemble(f *testing.F) {
	f.Add(`
.class t/A
.field next Lt/A;
.static n I
.method main ()I static
.locals 2
.stack 3
	iconst 0
	istore 0
L0:	iload 0
	ldc 10
	if_icmpge L1
	iinc 0 1
	goto L0
L1:	iload 0
	ireturn
.end
.end`)
	f.Add(`
.class t/B extends java/lang/Thread
.method run ()V
.locals 1
.stack 2
	ldc "hello # not a comment"
	pop
	ldc 2.5
	pop
	return
.end
.method nat (I)I native
.end
.end`)
	f.Add(`
.class t/C
.method m ()V
.locals 1
.stack 2
	new t/C
	pop
	ldc 1000
	newarray [I
	pop
	return
L:	athrow
	.catch * L0 L1 L
L0:	nop
L1:	return
.end
.end`)
	f.Add(".class x\n.end")
	f.Add("garbage\n.class")
	f.Fuzz(func(t *testing.T, src string) {
		mod, err := Assemble(src)
		if err != nil {
			return // rejection is always a valid outcome
		}
		if VerifyModule(mod) != nil {
			return // unverifiable programs need not round-trip
		}
		text := renderModule(mod)
		mod2, err := Assemble(text)
		if err != nil {
			t.Fatalf("reassembly failed: %v\nsource:\n%s\nrendered:\n%s", err, src, text)
		}
		if err := VerifyModule(mod2); err != nil {
			t.Fatalf("reassembled module fails verification: %v\nrendered:\n%s", err, text)
		}
		if len(mod2.Classes) != len(mod.Classes) {
			t.Fatalf("class count changed: %d -> %d", len(mod.Classes), len(mod2.Classes))
		}
		for ci, c1 := range mod.Classes {
			c2 := mod2.Classes[ci]
			if c1.Name != c2.Name || c1.Super != c2.Super {
				t.Fatalf("class %d: %s extends %q -> %s extends %q", ci, c1.Name, c1.Super, c2.Name, c2.Super)
			}
			if len(c1.Fields) != len(c2.Fields) || len(c1.Methods) != len(c2.Methods) {
				t.Fatalf("class %s: member counts changed", c1.Name)
			}
			for fi, f1 := range c1.Fields {
				if f1 != c2.Fields[fi] {
					t.Fatalf("class %s field %d: %+v -> %+v", c1.Name, fi, f1, c2.Fields[fi])
				}
			}
			for mi, m1 := range c1.Methods {
				m2 := c2.Methods[mi]
				if m1.Name != m2.Name || m1.Sig != m2.Sig || m1.Static != m2.Static ||
					m1.MaxStack != m2.MaxStack || m1.MaxLocals != m2.MaxLocals {
					t.Fatalf("method %s.%s%s: shape changed", c1.Name, m1.Name, m1.Sig)
				}
				if (m1.Code == nil) != (m2.Code == nil) {
					t.Fatalf("method %s.%s%s: nativeness changed", c1.Name, m1.Name, m1.Sig)
				}
				if m1.Code == nil {
					continue
				}
				if len(m1.Code.Instrs) != len(m2.Code.Instrs) {
					t.Fatalf("method %s.%s%s: %d instrs -> %d", c1.Name, m1.Name, m1.Sig,
						len(m1.Code.Instrs), len(m2.Code.Instrs))
				}
				for pc := range m1.Code.Instrs {
					if !sameInstr(m1.Code, m2.Code, m1.Code.Instrs[pc], m2.Code.Instrs[pc]) {
						t.Fatalf("method %s.%s%s pc %d: %v -> %v", c1.Name, m1.Name, m1.Sig, pc,
							m1.Code.Instrs[pc], m2.Code.Instrs[pc])
					}
				}
				if len(m1.Code.Handlers) != len(m2.Code.Handlers) {
					t.Fatalf("method %s.%s%s: handler count changed", c1.Name, m1.Name, m1.Sig)
				}
				for hi, h1 := range m1.Code.Handlers {
					if h1 != m2.Code.Handlers[hi] {
						t.Fatalf("method %s.%s%s handler %d: %+v -> %+v", c1.Name, m1.Name, m1.Sig,
							hi, h1, m2.Code.Handlers[hi])
					}
				}
			}
		}
	})
}
