package bytecode

import (
	"testing"
	"testing/quick"
)

func TestParseDesc(t *testing.T) {
	cases := []struct {
		in   string
		kind DescKind
		cls  string
		size int
	}{
		{"Z", DescBool, "", 1},
		{"B", DescByte, "", 1},
		{"C", DescChar, "", 2},
		{"S", DescShort, "", 2},
		{"I", DescInt, "", 4},
		{"J", DescLong, "", 8},
		{"F", DescFloat, "", 4},
		{"D", DescDouble, "", 8},
		{"Ljava/lang/String;", DescRef, "java/lang/String", 8},
		{"[I", DescArray, "[I", 8},
		{"[[D", DescArray, "[[D", 8},
		{"[Ljava/lang/Object;", DescArray, "[Ljava/lang/Object;", 8},
	}
	for _, c := range cases {
		d, err := ParseDesc(c.in)
		if err != nil {
			t.Errorf("ParseDesc(%q): %v", c.in, err)
			continue
		}
		if d.Kind != c.kind {
			t.Errorf("ParseDesc(%q).Kind = %v, want %v", c.in, d.Kind, c.kind)
		}
		if c.cls != "" && d.ClassName != c.cls {
			t.Errorf("ParseDesc(%q).ClassName = %q, want %q", c.in, d.ClassName, c.cls)
		}
		if d.ByteSize() != c.size {
			t.Errorf("ParseDesc(%q).ByteSize = %d, want %d", c.in, d.ByteSize(), c.size)
		}
	}
}

func TestParseDescErrors(t *testing.T) {
	for _, in := range []string{"", "Q", "L;", "Lfoo", "[", "II", "Lfoo;x"} {
		if _, err := ParseDesc(in); err == nil {
			t.Errorf("ParseDesc(%q) succeeded", in)
		}
	}
}

func TestParseDescArrayElem(t *testing.T) {
	d, err := ParseDesc("[[I")
	if err != nil {
		t.Fatal(err)
	}
	if d.Elem != "[I" {
		t.Errorf("Elem = %q, want [I", d.Elem)
	}
	inner, err := ParseDesc(d.Elem)
	if err != nil {
		t.Fatal(err)
	}
	if inner.Kind != DescArray || inner.Elem != "I" {
		t.Errorf("inner = %+v", inner)
	}
}

func TestParseSig(t *testing.T) {
	cases := []struct {
		in    string
		args  int
		isRet bool
	}{
		{"()V", 0, false},
		{"(I)I", 1, true},
		{"(IJD)V", 3, false},
		{"(Ljava/lang/String;[I)Ljava/lang/Object;", 2, true},
		{"([[D)[I", 1, true},
	}
	for _, c := range cases {
		sig, err := ParseSig(c.in)
		if err != nil {
			t.Errorf("ParseSig(%q): %v", c.in, err)
			continue
		}
		if len(sig.Args) != c.args {
			t.Errorf("ParseSig(%q) args = %d, want %d", c.in, len(sig.Args), c.args)
		}
		if (sig.Ret != nil) != c.isRet {
			t.Errorf("ParseSig(%q) ret = %v, want present=%v", c.in, sig.Ret, c.isRet)
		}
	}
}

func TestParseSigErrors(t *testing.T) {
	for _, in := range []string{"", "I", "(I", "(Q)V", "()", "()VV", "()Q"} {
		if _, err := ParseSig(in); err == nil {
			t.Errorf("ParseSig(%q) succeeded", in)
		}
	}
}

// Property: any descriptor we can render is parsed back to an equal value.
func TestPropDescRoundTrip(t *testing.T) {
	prims := []string{"Z", "B", "C", "S", "I", "J", "F", "D"}
	f := func(primIdx uint8, depth uint8, useRef bool, nameSeed uint8) bool {
		base := prims[int(primIdx)%len(prims)]
		if useRef {
			base = "Lpkg/Cls" + string(rune('A'+nameSeed%26)) + ";"
		}
		desc := base
		for i := 0; i < int(depth%4); i++ {
			desc = "[" + desc
		}
		d, err := ParseDesc(desc)
		if err != nil {
			return false
		}
		if int(depth%4) > 0 {
			return d.Kind == DescArray && d.ClassName == desc
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpNamesBijective(t *testing.T) {
	for op := Op(1); op < numOps; op++ {
		name := op.Name()
		got, ok := OpByName(name)
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v, %v; want %v", name, got, ok, op)
		}
	}
	if _, ok := OpByName("no_such_op"); ok {
		t.Error("OpByName accepted garbage")
	}
}

func TestOpCyclesPositive(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		if op.Cycles() <= 0 {
			t.Errorf("op %s has non-positive cycle cost", op.Name())
		}
	}
}
