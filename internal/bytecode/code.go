package bytecode

import "fmt"

// ConstKind discriminates constant pool entries.
type ConstKind uint8

const (
	KindInt ConstKind = iota + 1
	KindDouble
	KindString
	KindClass  // symbolic class reference
	KindField  // symbolic field reference
	KindMethod // symbolic method reference
)

func (k ConstKind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindDouble:
		return "double"
	case KindString:
		return "string"
	case KindClass:
		return "class"
	case KindField:
		return "field"
	case KindMethod:
		return "method"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Const is a constant pool entry. Class, field, and method entries are
// symbolic; the class loader links them against its namespace, which is how
// reloaded classes in different processes resolve the same code to
// different runtime classes.
type Const struct {
	Kind  ConstKind
	I     int64   // KindInt
	D     float64 // KindDouble
	S     string  // KindString
	Class string  // KindClass/KindField/KindMethod: target class name
	Name  string  // KindField/KindMethod: member name
	Sig   string  // KindField: type descriptor; KindMethod: signature
}

// Handler is one exception table entry: if a throwable whose class is (a
// subclass of) Type escapes an instruction in [Start, End), control
// transfers to PC with the throwable pushed. Type "" catches everything.
type Handler struct {
	Start, End, PC int
	Type           string // symbolic class name; linked by the loader
}

// Code is the bytecode body of one method.
type Code struct {
	Instrs   []Instr
	Consts   []Const
	Handlers []Handler
}

// AddConst appends c and returns its pool index, reusing an existing
// identical entry.
func (c *Code) AddConst(k Const) int {
	for i, e := range c.Consts {
		if e == k {
			return i
		}
	}
	c.Consts = append(c.Consts, k)
	return len(c.Consts) - 1
}

// Const returns pool entry i, or an error if out of range.
func (c *Code) Const(i int32) (*Const, error) {
	if i < 0 || int(i) >= len(c.Consts) {
		return nil, fmt.Errorf("bytecode: constant pool index %d out of range [0,%d)", i, len(c.Consts))
	}
	return &c.Consts[i], nil
}

// Clone returns a deep copy of the code. Reloading a class in another
// process copies its code ("reloaded classes do not share text" — §3.2), so
// per-copy link state can never leak across namespaces.
func (c *Code) Clone() *Code {
	n := &Code{
		Instrs:   make([]Instr, len(c.Instrs)),
		Consts:   make([]Const, len(c.Consts)),
		Handlers: make([]Handler, len(c.Handlers)),
	}
	copy(n.Instrs, c.Instrs)
	copy(n.Consts, c.Consts)
	copy(n.Handlers, c.Handlers)
	return n
}
