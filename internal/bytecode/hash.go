package bytecode

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"math"
)

// Hash returns a canonical content hash of the module: every semantic
// field of every class, in definition order, serialized unambiguously
// (length-prefixed strings, fixed-width integers, per-section tags so
// adjacent sections cannot alias). Two modules hash equal iff a loader
// would build identical namespaces from them, which makes the hash a
// safe content address for the shared code cache: processes that load
// byte-identical modules may share one compiled artifact.
//
// Class order matters deliberately — the loader defines classes in
// module order and clinit queueing follows it — so reordered classes
// are a different module.
// The digest is memoized on first use (modules are read-only once built;
// see the Module doc), so per-process cache attaches pay a map lookup,
// not a rehash of every instruction.
func (m *Module) Hash() [32]byte {
	m.hashOnce.Do(func() { m.hash = m.computeHash() })
	return m.hash
}

func (m *Module) computeHash() [32]byte {
	h := sha256.New()
	w := hashWriter{h: h}
	w.uvarint(uint64(len(m.Classes)))
	for _, c := range m.Classes {
		w.tag('C')
		w.str(c.Name)
		w.str(c.Super)
		w.uvarint(uint64(len(c.Fields)))
		for _, f := range c.Fields {
			w.tag('F')
			w.str(f.Name)
			w.str(f.Desc)
			w.bool(f.Static)
		}
		w.uvarint(uint64(len(c.Methods)))
		for _, md := range c.Methods {
			w.tag('M')
			w.str(md.Name)
			w.str(md.Sig)
			w.bool(md.Static)
			w.uvarint(uint64(md.MaxStack))
			w.uvarint(uint64(md.MaxLocals))
			if md.Code == nil {
				w.tag('n') // native: no body
				continue
			}
			w.tag('b')
			w.uvarint(uint64(len(md.Code.Instrs)))
			for _, in := range md.Code.Instrs {
				w.u64(uint64(in.Op))
				w.u64(uint64(uint32(in.A)))
				w.u64(uint64(uint32(in.B)))
			}
			w.uvarint(uint64(len(md.Code.Consts)))
			for _, k := range md.Code.Consts {
				w.tag('k')
				w.u64(uint64(k.Kind))
				w.u64(uint64(k.I))
				w.u64(floatBits(k.D))
				w.str(k.S)
				w.str(k.Class)
				w.str(k.Name)
				w.str(k.Sig)
			}
			w.uvarint(uint64(len(md.Code.Handlers)))
			for _, hd := range md.Code.Handlers {
				w.tag('h')
				w.uvarint(uint64(hd.Start))
				w.uvarint(uint64(hd.End))
				w.uvarint(uint64(hd.PC))
				w.str(hd.Type)
			}
		}
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// hashWriter serializes canonical primitives into a hash. Writes to a
// hash.Hash never fail, so errors are ignored by design.
type hashWriter struct {
	h   hash.Hash
	buf [binary.MaxVarintLen64]byte
}

func (w *hashWriter) tag(b byte) { w.h.Write([]byte{b}) }

func (w *hashWriter) uvarint(v uint64) {
	n := binary.PutUvarint(w.buf[:], v)
	w.h.Write(w.buf[:n])
}

func (w *hashWriter) u64(v uint64) {
	binary.BigEndian.PutUint64(w.buf[:8], v)
	w.h.Write(w.buf[:8])
}

func (w *hashWriter) str(s string) {
	w.uvarint(uint64(len(s)))
	w.h.Write([]byte(s))
}

func (w *hashWriter) bool(b bool) {
	if b {
		w.tag(1)
	} else {
		w.tag(0)
	}
}

// floatBits canonicalizes the double constant's bit pattern (the only
// float in the format); distinct NaN payloads survive, which is fine —
// the assembler only ever produces one.
func floatBits(d float64) uint64 { return math.Float64bits(d) }
