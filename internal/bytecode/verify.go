package bytecode

import "fmt"

// Verify performs structural verification of a method body before it is
// admitted into a namespace. It checks that:
//
//   - every branch and handler target is a valid instruction index;
//   - local variable indices are within maxLocals;
//   - constant pool indices resolve to the kind the opcode expects;
//   - operand stack depth is consistent at every instruction (the same
//     depth is observed on every path), never negative, and never exceeds
//     maxStack;
//   - execution cannot fall off the end of the code.
//
// It is a structural verifier, not a full type checker: KaffeOS relies on
// the host language's type safety for memory protection, and our host (Go)
// provides it — an ill-typed program faults in the interpreter with a VM
// error rather than corrupting memory.
func Verify(m *MethodDef) error {
	if m.Code == nil {
		return nil // native method: nothing to verify
	}
	code := m.Code
	n := len(code.Instrs)
	if n == 0 {
		return fmt.Errorf("verify %s%s: empty code", m.Name, m.Sig)
	}
	sig, err := ParseSig(m.Sig)
	if err != nil {
		return fmt.Errorf("verify %s: %w", m.Name, err)
	}
	minLocals := sig.Slots()
	if !m.Static {
		minLocals++ // receiver in slot 0
	}
	if m.MaxLocals < minLocals {
		return fmt.Errorf("verify %s%s: maxLocals %d < argument slots %d", m.Name, m.Sig, m.MaxLocals, minLocals)
	}

	depth := make([]int, n) // stack depth before instruction; -1 = unseen
	for i := range depth {
		depth[i] = -1
	}
	work := []int{0}
	depth[0] = 0
	push := func(pc, d int) error {
		if pc < 0 || pc >= n {
			return fmt.Errorf("branch target %d out of range [0,%d)", pc, n)
		}
		if depth[pc] == -1 {
			depth[pc] = d
			work = append(work, pc)
		} else if depth[pc] != d {
			return fmt.Errorf("inconsistent stack depth at pc %d: %d vs %d", pc, depth[pc], d)
		}
		return nil
	}
	for _, h := range code.Handlers {
		if h.Start < 0 || h.End > n || h.Start >= h.End {
			return fmt.Errorf("verify %s%s: bad handler range [%d,%d)", m.Name, m.Sig, h.Start, h.End)
		}
		// A handler entry sees exactly the pushed throwable.
		if err := push(h.PC, 1); err != nil {
			return fmt.Errorf("verify %s%s: handler: %w", m.Name, m.Sig, err)
		}
	}

	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		in := code.Instrs[pc]
		if int(in.Op) >= len(ops) || ops[in.Op].name == "" {
			return fmt.Errorf("verify %s%s: pc %d: invalid opcode %d", m.Name, m.Sig, pc, in.Op)
		}
		info := ops[in.Op]
		d := depth[pc]

		pop, pushN := info.pop, info.push
		switch in.Op {
		case INVOKESTATIC, INVOKEVIRTUAL, INVOKESPECIAL:
			k, err := code.Const(in.A)
			if err != nil || k.Kind != KindMethod {
				return fmt.Errorf("verify %s%s: pc %d: %s needs a method ref", m.Name, m.Sig, pc, in.Op.Name())
			}
			msig, err := ParseSig(k.Sig)
			if err != nil {
				return fmt.Errorf("verify %s%s: pc %d: %w", m.Name, m.Sig, pc, err)
			}
			pop = msig.Slots()
			if in.Op != INVOKESTATIC {
				pop++
			}
			pushN = 0
			if msig.Ret != nil {
				pushN = 1
			}
		case GETFIELD, PUTFIELD, GETSTATIC, PUTSTATIC:
			k, err := code.Const(in.A)
			if err != nil || k.Kind != KindField {
				return fmt.Errorf("verify %s%s: pc %d: %s needs a field ref", m.Name, m.Sig, pc, in.Op.Name())
			}
		case LDC:
			k, err := code.Const(in.A)
			if err != nil || (k.Kind != KindInt && k.Kind != KindDouble && k.Kind != KindString) {
				return fmt.Errorf("verify %s%s: pc %d: ldc needs an int/double/string constant", m.Name, m.Sig, pc)
			}
		case NEW, INSTANCEOF, CHECKCAST, NEWARRAY:
			k, err := code.Const(in.A)
			if err != nil || k.Kind != KindClass {
				return fmt.Errorf("verify %s%s: pc %d: %s needs a class ref", m.Name, m.Sig, pc, in.Op.Name())
			}
		case ILOAD, ISTORE, ALOAD, ASTORE, DLOAD, DSTORE, IINC:
			if in.A < 0 || int(in.A) >= m.MaxLocals {
				return fmt.Errorf("verify %s%s: pc %d: local %d out of range [0,%d)", m.Name, m.Sig, pc, in.A, m.MaxLocals)
			}
		}

		if d < pop {
			return fmt.Errorf("verify %s%s: pc %d: %s pops %d with stack depth %d", m.Name, m.Sig, pc, in.Op.Name(), pop, d)
		}
		nd := d - pop + pushN
		if nd > m.MaxStack {
			return fmt.Errorf("verify %s%s: pc %d: stack depth %d exceeds maxStack %d", m.Name, m.Sig, pc, nd, m.MaxStack)
		}

		// Successors.
		switch in.Op {
		case GOTO:
			if err := push(int(in.A), nd); err != nil {
				return fmt.Errorf("verify %s%s: pc %d: %w", m.Name, m.Sig, pc, err)
			}
		case RETURN, IRETURN, ARETURN, DRETURN, ATHROW:
			// no fallthrough
		default:
			if info.branch {
				if err := push(int(in.A), nd); err != nil {
					return fmt.Errorf("verify %s%s: pc %d: %w", m.Name, m.Sig, pc, err)
				}
			}
			if pc+1 >= n {
				return fmt.Errorf("verify %s%s: execution falls off the end after pc %d (%s)", m.Name, m.Sig, pc, in.Op.Name())
			}
			if err := push(pc+1, nd); err != nil {
				return fmt.Errorf("verify %s%s: pc %d: %w", m.Name, m.Sig, pc, err)
			}
		}
	}
	return nil
}

// VerifyModule verifies every method of every class in the module.
func VerifyModule(m *Module) error {
	for _, c := range m.Classes {
		for _, meth := range c.Methods {
			if err := Verify(meth); err != nil {
				return fmt.Errorf("class %s: %w", c.Name, err)
			}
		}
		for _, f := range c.Fields {
			if _, err := ParseDesc(f.Desc); err != nil {
				return fmt.Errorf("class %s: field %s: %w", c.Name, f.Name, err)
			}
		}
	}
	return nil
}
