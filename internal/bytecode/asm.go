package bytecode

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses textual assembly into a Module.
//
// Format (one directive or instruction per line; '#' starts a comment —
// ';' cannot, since it appears inside type descriptors):
//
//	.class spec/Node extends java/lang/Object
//	.field next Lspec/Node;
//	.static counter I
//	.method sum (I)I          # instance method; append " static" for static
//	.locals 3
//	.stack 4
//	    iconst 0
//	    istore 2
//	L0: iload 2
//	    iload 1
//	    if_icmpge L1
//	    iinc 2 1
//	    goto L0
//	L1: iload 2
//	    ireturn
//	.catch java/lang/Exception L0 L1 L1  # type start end handler
//	.end
//
// Pool-operand instructions:
//
//	ldc 42 | ldc 3.5 | ldc "text"
//	new some/Class | newarray [I | instanceof some/Class | checkcast some/Class
//	getfield some/Class.field I        (likewise putfield, getstatic, putstatic)
//	invokestatic some/Class.m (II)I    (likewise invokevirtual, invokespecial)
func Assemble(src string) (*Module, error) {
	a := &asm{mod: &Module{}}
	for i, raw := range strings.Split(src, "\n") {
		a.line = i + 1
		if err := a.doLine(raw); err != nil {
			return nil, fmt.Errorf("asm line %d: %w", a.line, err)
		}
	}
	if a.cls != nil {
		return nil, fmt.Errorf("asm: class %q not terminated before end of input", a.cls.Name)
	}
	return a.mod, nil
}

// MustAssemble is Assemble for statically known-good sources; it panics on
// error. The workload and class library sources use it.
func MustAssemble(src string) *Module {
	m, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return m
}

type asm struct {
	mod  *Module
	line int

	cls *ClassDef // class being defined, nil between classes

	// method under construction, nil between methods
	meth    *MethodDef
	labels  map[string]int
	fixups  []fixup // branch instructions awaiting label resolution
	catches []catchFix
}

type fixup struct {
	pc    int
	label string
	line  int
}

type catchFix struct {
	typ                 string
	start, end, handler string
	line                int
}

func (a *asm) doLine(raw string) error {
	line := raw
	if i := strings.IndexByte(line, '#'); i >= 0 && !strings.Contains(line[:i], `"`) {
		line = line[:i]
	}
	line = strings.TrimSpace(line)
	if line == "" {
		return nil
	}
	// Leading label(s): "L0: iload 1" or a bare "L0:".
	for {
		i := strings.IndexByte(line, ':')
		if i <= 0 || strings.ContainsAny(line[:i], " \t\"(") {
			break
		}
		if a.meth == nil {
			return fmt.Errorf("label outside method")
		}
		name := line[:i]
		if _, dup := a.labels[name]; dup {
			return fmt.Errorf("duplicate label %q", name)
		}
		a.labels[name] = len(a.meth.Code.Instrs)
		line = strings.TrimSpace(line[i+1:])
		if line == "" {
			return nil
		}
	}
	if strings.HasPrefix(line, ".") {
		return a.directive(line)
	}
	return a.instruction(line)
}

func (a *asm) directive(line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".class":
		if a.cls != nil {
			return fmt.Errorf(".class inside class %q (missing .end?)", a.cls.Name)
		}
		if len(fields) != 2 && !(len(fields) == 4 && fields[2] == "extends") {
			return fmt.Errorf("usage: .class Name [extends Super]")
		}
		c := &ClassDef{Name: fields[1]}
		if len(fields) == 4 {
			c.Super = fields[3]
		} else if c.Name != "java/lang/Object" {
			c.Super = "java/lang/Object"
		}
		a.cls = c
		return nil

	case ".field", ".static":
		if a.cls == nil || a.meth != nil {
			return fmt.Errorf("%s must appear inside a class, outside methods", fields[0])
		}
		if len(fields) != 3 {
			return fmt.Errorf("usage: %s name descriptor", fields[0])
		}
		if _, err := ParseDesc(fields[2]); err != nil {
			return err
		}
		a.cls.Fields = append(a.cls.Fields, FieldDef{
			Name: fields[1], Desc: fields[2], Static: fields[0] == ".static",
		})
		return nil

	case ".method":
		if a.cls == nil {
			return fmt.Errorf(".method outside class")
		}
		if a.meth != nil {
			return fmt.Errorf(".method inside method %q (missing .end?)", a.meth.Name)
		}
		if len(fields) < 3 || len(fields) > 5 {
			return fmt.Errorf("usage: .method name (sig)R [static] [native]")
		}
		var static, native bool
		for _, kw := range fields[3:] {
			switch kw {
			case "static":
				static = true
			case "native":
				native = true
			default:
				return fmt.Errorf("bad .method modifier %q", kw)
			}
		}
		sig := fields[2]
		if _, err := ParseSig(sig); err != nil {
			return err
		}
		a.meth = &MethodDef{
			Name: fields[1], Sig: sig, Static: static,
			MaxStack: 16, MaxLocals: 16,
		}
		if !native {
			a.meth.Code = &Code{}
		}
		a.labels = make(map[string]int)
		a.fixups = nil
		a.catches = nil
		return nil

	case ".locals", ".stack":
		if a.meth == nil {
			return fmt.Errorf("%s outside method", fields[0])
		}
		if len(fields) != 2 {
			return fmt.Errorf("usage: %s n", fields[0])
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 || n > 65535 {
			return fmt.Errorf("bad %s count %q", fields[0], fields[1])
		}
		if fields[0] == ".locals" {
			a.meth.MaxLocals = n
		} else {
			a.meth.MaxStack = n
		}
		return nil

	case ".catch":
		if a.meth == nil {
			return fmt.Errorf(".catch outside method")
		}
		if len(fields) != 5 {
			return fmt.Errorf("usage: .catch type startLabel endLabel handlerLabel (type '*' catches all)")
		}
		a.catches = append(a.catches, catchFix{
			typ: fields[1], start: fields[2], end: fields[3], handler: fields[4], line: a.line,
		})
		return nil

	case ".end":
		switch {
		case a.meth != nil:
			if err := a.finishMethod(); err != nil {
				return err
			}
			return nil
		case a.cls != nil:
			a.mod.Classes = append(a.mod.Classes, a.cls)
			a.cls = nil
			return nil
		default:
			return fmt.Errorf(".end with nothing open")
		}

	default:
		return fmt.Errorf("unknown directive %q", fields[0])
	}
}

func (a *asm) finishMethod() error {
	code := a.meth.Code
	if code == nil { // native method: no body to fix up
		a.cls.Methods = append(a.cls.Methods, a.meth)
		a.meth = nil
		return nil
	}
	for _, f := range a.fixups {
		pc, ok := a.labels[f.label]
		if !ok {
			return fmt.Errorf("line %d: undefined label %q", f.line, f.label)
		}
		code.Instrs[f.pc].A = int32(pc)
	}
	for _, c := range a.catches {
		start, ok := a.labels[c.start]
		if !ok {
			return fmt.Errorf("line %d: undefined label %q", c.line, c.start)
		}
		end, ok := a.labels[c.end]
		if !ok {
			return fmt.Errorf("line %d: undefined label %q", c.line, c.end)
		}
		h, ok := a.labels[c.handler]
		if !ok {
			return fmt.Errorf("line %d: undefined label %q", c.line, c.handler)
		}
		typ := c.typ
		if typ == "*" {
			typ = ""
		}
		code.Handlers = append(code.Handlers, Handler{Start: start, End: end, PC: h, Type: typ})
	}
	a.cls.Methods = append(a.cls.Methods, a.meth)
	a.meth = nil
	return nil
}

func (a *asm) instruction(line string) error {
	if a.meth == nil {
		return fmt.Errorf("instruction outside method: %q", line)
	}
	if a.meth.Code == nil {
		return fmt.Errorf("instruction in native method %q", a.meth.Name)
	}
	mnemonic, rest, _ := strings.Cut(line, " ")
	op, ok := OpByName(mnemonic)
	if !ok {
		return fmt.Errorf("unknown opcode %q", mnemonic)
	}
	rest = strings.TrimSpace(rest)
	code := a.meth.Code
	in := Instr{Op: op}
	switch ops[op].operand {
	case opndNone:
		if rest != "" {
			return fmt.Errorf("%s takes no operand", mnemonic)
		}
	case opndInt, opndLocal:
		n, err := strconv.ParseInt(rest, 0, 32)
		if err != nil {
			return fmt.Errorf("%s: bad operand %q", mnemonic, rest)
		}
		in.A = int32(n)
	case opndIinc:
		parts := strings.Fields(rest)
		if len(parts) != 2 {
			return fmt.Errorf("usage: iinc slot delta")
		}
		slot, err1 := strconv.ParseInt(parts[0], 0, 32)
		delta, err2 := strconv.ParseInt(parts[1], 0, 32)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("iinc: bad operands %q", rest)
		}
		in.A, in.B = int32(slot), int32(delta)
	case opndLabel:
		if rest == "" {
			return fmt.Errorf("%s needs a label", mnemonic)
		}
		a.fixups = append(a.fixups, fixup{pc: len(code.Instrs), label: rest, line: a.line})
	case opndPool:
		idx, err := a.poolOperand(op, rest, code)
		if err != nil {
			return err
		}
		in.A = int32(idx)
	}
	code.Instrs = append(code.Instrs, in)
	return nil
}

func (a *asm) poolOperand(op Op, rest string, code *Code) (int, error) {
	switch op {
	case LDC:
		return a.ldcOperand(rest, code)
	case NEW, INSTANCEOF, CHECKCAST, NEWARRAY:
		if rest == "" {
			return 0, fmt.Errorf("%s needs a class name", op.Name())
		}
		if op == NEWARRAY {
			if !strings.HasPrefix(rest, "[") {
				return 0, fmt.Errorf("newarray operand %q must be an array descriptor", rest)
			}
			if _, err := ParseDesc(rest); err != nil {
				return 0, err
			}
		}
		return code.AddConst(Const{Kind: KindClass, Class: rest}), nil
	case GETFIELD, PUTFIELD, GETSTATIC, PUTSTATIC:
		parts := strings.Fields(rest)
		if len(parts) != 2 {
			return 0, fmt.Errorf("usage: %s Class.field descriptor", op.Name())
		}
		cls, name, ok := strings.Cut(parts[0], ".")
		if !ok {
			return 0, fmt.Errorf("field ref %q missing '.'", parts[0])
		}
		if _, err := ParseDesc(parts[1]); err != nil {
			return 0, err
		}
		return code.AddConst(Const{Kind: KindField, Class: cls, Name: name, Sig: parts[1]}), nil
	case INVOKESTATIC, INVOKEVIRTUAL, INVOKESPECIAL:
		parts := strings.Fields(rest)
		if len(parts) != 2 {
			return 0, fmt.Errorf("usage: %s Class.method (sig)R", op.Name())
		}
		cls, name, ok := strings.Cut(parts[0], ".")
		if !ok {
			return 0, fmt.Errorf("method ref %q missing '.'", parts[0])
		}
		if _, err := ParseSig(parts[1]); err != nil {
			return 0, err
		}
		return code.AddConst(Const{Kind: KindMethod, Class: cls, Name: name, Sig: parts[1]}), nil
	}
	return 0, fmt.Errorf("internal: %s marked pool-operand", op.Name())
}

func (a *asm) ldcOperand(rest string, code *Code) (int, error) {
	switch {
	case rest == "":
		return 0, fmt.Errorf("ldc needs an operand")
	case rest[0] == '"':
		s, err := strconv.Unquote(rest)
		if err != nil {
			return 0, fmt.Errorf("ldc: bad string %s: %v", rest, err)
		}
		return code.AddConst(Const{Kind: KindString, S: s}), nil
	case strings.ContainsAny(rest, ".eE") && !strings.HasPrefix(rest, "0x"):
		d, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			return 0, fmt.Errorf("ldc: bad double %q", rest)
		}
		return code.AddConst(Const{Kind: KindDouble, D: d}), nil
	default:
		n, err := strconv.ParseInt(rest, 0, 64)
		if err != nil {
			return 0, fmt.Errorf("ldc: bad int %q", rest)
		}
		return code.AddConst(Const{Kind: KindInt, I: n}), nil
	}
}
