package bytecode

import (
	"fmt"
	"strconv"
	"strings"
)

// Disassemble renders code in the textual form accepted by Assemble (modulo
// label names, which are synthesized as Ln for each branch target).
func Disassemble(code *Code) string {
	targets := make(map[int]string)
	for _, in := range code.Instrs {
		if in.Op.IsBranch() {
			pc := int(in.A)
			if _, ok := targets[pc]; !ok {
				targets[pc] = fmt.Sprintf("L%d", len(targets))
			}
		}
	}
	for _, h := range code.Handlers {
		for _, pc := range []int{h.Start, h.End, h.PC} {
			if _, ok := targets[pc]; !ok {
				targets[pc] = fmt.Sprintf("L%d", len(targets))
			}
		}
	}
	var b strings.Builder
	for pc, in := range code.Instrs {
		if lbl, ok := targets[pc]; ok {
			fmt.Fprintf(&b, "%s:", lbl)
		}
		b.WriteByte('\t')
		b.WriteString(in.Op.Name())
		// Undefined opcodes (possible in unreachable code, which the
		// verifier does not judge) render as bare "op(N)" mnemonics.
		var kind opnd
		if int(in.Op) < len(ops) {
			kind = ops[in.Op].operand
		}
		switch kind {
		case opndInt, opndLocal:
			fmt.Fprintf(&b, " %d", in.A)
		case opndIinc:
			fmt.Fprintf(&b, " %d %d", in.A, in.B)
		case opndLabel:
			fmt.Fprintf(&b, " %s", targets[int(in.A)])
		case opndPool:
			b.WriteByte(' ')
			b.WriteString(formatConstOperand(code, in.A))
		}
		b.WriteByte('\n')
	}
	if lbl, ok := targets[len(code.Instrs)]; ok {
		fmt.Fprintf(&b, "%s:\n", lbl)
	}
	for _, h := range code.Handlers {
		typ := h.Type
		if typ == "" {
			typ = "*"
		}
		fmt.Fprintf(&b, "\t.catch %s %s %s %s\n", typ, targets[h.Start], targets[h.End], targets[h.PC])
	}
	return b.String()
}

func formatConstOperand(code *Code, idx int32) string {
	k, err := code.Const(idx)
	if err != nil {
		return fmt.Sprintf("<bad pool %d>", idx)
	}
	switch k.Kind {
	case KindInt:
		return strconv.FormatInt(k.I, 10)
	case KindDouble:
		s := strconv.FormatFloat(k.D, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case KindString:
		return strconv.Quote(k.S)
	case KindClass:
		return k.Class
	case KindField:
		return fmt.Sprintf("%s.%s %s", k.Class, k.Name, k.Sig)
	case KindMethod:
		return fmt.Sprintf("%s.%s %s", k.Class, k.Name, k.Sig)
	}
	return fmt.Sprintf("<kind %d>", k.Kind)
}
