package bytecode

import (
	"strings"
	"testing"
)

func methodFrom(t *testing.T, body string) *MethodDef {
	t.Helper()
	src := ".class t/T\n.method m ()V\n.locals 4\n.stack 4\n" + body + "\n.end\n.end"
	m := mustParse(t, src)
	c, _ := m.Class("t/T")
	return c.Methods[0]
}

func TestVerifyAcceptsSample(t *testing.T) {
	m := mustParse(t, sampleSource)
	if err := VerifyModule(m); err != nil {
		t.Fatalf("VerifyModule: %v", err)
	}
}

func TestVerifyRejects(t *testing.T) {
	cases := []struct{ name, body, wantSub string }{
		{"underflow", "pop\nreturn", "pops 1 with stack depth 0"},
		{"fall off end", "iconst 1\npop", "falls off the end"},
		{"overflow", "iconst 1\niconst 1\niconst 1\niconst 1\niconst 1\nreturn", "exceeds maxStack"},
		{"inconsistent depth", "iconst 0\nifeq L0\niconst 1\nL0: pop\nreturn", "inconsistent stack depth"},
		{"bad local", "iload 99\npop\nreturn", "out of range"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			meth := methodFrom(t, c.body)
			err := Verify(meth)
			if err == nil {
				t.Fatalf("Verify accepted %q", c.body)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestVerifyInconsistentMergeDepth(t *testing.T) {
	// Two paths reach L0 with different stack depths.
	meth := methodFrom(t, `
    iconst 0
    ifeq A
    iconst 1
    iconst 2
    goto L0
A:  iconst 1
L0: pop
    return`)
	err := Verify(meth)
	if err == nil || !strings.Contains(err.Error(), "inconsistent stack depth") {
		t.Fatalf("err = %v, want inconsistent stack depth", err)
	}
}

func TestVerifyEmptyCode(t *testing.T) {
	m := &MethodDef{Name: "m", Sig: "()V", Static: true, Code: &Code{}, MaxStack: 4, MaxLocals: 4}
	if err := Verify(m); err == nil {
		t.Fatal("empty method verified")
	}
}

func TestVerifyArgSlots(t *testing.T) {
	// Instance method with 2 args needs 3 local slots.
	src := ".class t/T\n.method m (II)V\n.locals 2\n.stack 2\nreturn\n.end\n.end"
	m := mustParse(t, src)
	c, _ := m.Class("t/T")
	if err := Verify(c.Methods[0]); err == nil {
		t.Fatal("verified with too few locals for args")
	}
	// Static method with 2 args needs only 2.
	src2 := ".class t/T\n.method m (II)V static\n.locals 2\n.stack 2\nreturn\n.end\n.end"
	m2 := mustParse(t, src2)
	c2, _ := m2.Class("t/T")
	if err := Verify(c2.Methods[0]); err != nil {
		t.Fatalf("static verify: %v", err)
	}
}

func TestVerifyInvokeStackEffect(t *testing.T) {
	// invokestatic (II)I pops 2 pushes 1.
	meth := methodFrom(t, `
    iconst 1
    iconst 2
    invokestatic t/T.add (II)I
    pop
    return`)
	if err := Verify(meth); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// invokevirtual also pops the receiver.
	meth2 := methodFrom(t, `
    aconst_null
    iconst 2
    invokevirtual t/T.addV (I)I
    pop
    return`)
	if err := Verify(meth2); err != nil {
		t.Fatalf("Verify virtual: %v", err)
	}
	// Missing receiver is caught.
	meth3 := methodFrom(t, `
    iconst 2
    invokevirtual t/T.addV (I)I
    pop
    return`)
	if err := Verify(meth3); err == nil {
		t.Fatal("virtual call without receiver verified")
	}
}

func TestVerifyHandlerDepth(t *testing.T) {
	meth := methodFrom(t, `
T0: iconst 1
    pop
T1: return
H:  pop
    return
.catch * T0 T1 H`)
	if err := Verify(meth); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyBadHandlerRange(t *testing.T) {
	meth := methodFrom(t, "return")
	meth.Code.Handlers = append(meth.Code.Handlers, Handler{Start: 5, End: 2, PC: 0})
	if err := Verify(meth); err == nil {
		t.Fatal("bad handler range verified")
	}
}

func TestVerifyBranchTargetRange(t *testing.T) {
	meth := methodFrom(t, "goto L0\nL0: return")
	meth.Code.Instrs[0].A = 99
	if err := Verify(meth); err == nil {
		t.Fatal("out-of-range branch verified")
	}
}

func TestVerifyPoolKindMismatch(t *testing.T) {
	meth := methodFrom(t, `ldc 7`+"\n"+`pop`+"\n"+`return`)
	// Corrupt: make LDC point at a class constant.
	meth.Code.Consts[0] = Const{Kind: KindClass, Class: "x/Y"}
	if err := Verify(meth); err == nil {
		t.Fatal("ldc of class constant verified")
	}
}
