package bytecode

import (
	"strings"
	"testing"
)

const sampleSource = `
# A tiny class exercising most directives.
.class spec/Counter extends java/lang/Object
.field count I
.field next Lspec/Counter;
.static total I

.method <init> ()V
.locals 1
.stack 2
    aload 0
    invokespecial java/lang/Object.<init> ()V
    return
.end

.method bump (I)I
.locals 4
.stack 6
    iconst 0
    istore 2
L0: iload 2
    iload 1
    if_icmpge L1
    aload 0
    dup
    getfield spec/Counter.count I
    iconst 1
    iadd
    putfield spec/Counter.count I
    iinc 2 1
    goto L0
L1: aload 0
    getfield spec/Counter.count I
    ireturn
.end

.method risky ()V
.locals 2
.stack 4
T0: ldc "boom"
    pop
    return
T1: astore 1
    return
.catch java/lang/Exception T0 T1 T1
.end
.end
`

func mustParse(t *testing.T, src string) *Module {
	t.Helper()
	m, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return m
}

func TestAssembleSample(t *testing.T) {
	m := mustParse(t, sampleSource)
	c, ok := m.Class("spec/Counter")
	if !ok {
		t.Fatal("class spec/Counter not defined")
	}
	if c.Super != "java/lang/Object" {
		t.Errorf("super = %q", c.Super)
	}
	if len(c.Fields) != 3 {
		t.Fatalf("got %d fields, want 3", len(c.Fields))
	}
	if !c.Fields[2].Static {
		t.Error("field total should be static")
	}
	if len(c.Methods) != 3 {
		t.Fatalf("got %d methods, want 3", len(c.Methods))
	}
	bump := c.Methods[1]
	if bump.Name != "bump" || bump.Sig != "(I)I" || bump.Static {
		t.Errorf("bump = %+v", bump)
	}
	if bump.MaxLocals != 4 || bump.MaxStack != 6 {
		t.Errorf("bump limits = %d/%d", bump.MaxLocals, bump.MaxStack)
	}
	// Branch fixups resolved to instruction indices.
	for _, in := range bump.Code.Instrs {
		if in.Op.IsBranch() && (in.A < 0 || int(in.A) > len(bump.Code.Instrs)) {
			t.Errorf("unresolved branch target %d", in.A)
		}
	}
	risky := c.Methods[2]
	if len(risky.Code.Handlers) != 1 {
		t.Fatalf("got %d handlers, want 1", len(risky.Code.Handlers))
	}
	h := risky.Code.Handlers[0]
	if h.Type != "java/lang/Exception" || h.Start >= h.End {
		t.Errorf("handler = %+v", h)
	}
}

func TestAssembleDefaultSuper(t *testing.T) {
	m := mustParse(t, ".class a/B\n.end")
	c, _ := m.Class("a/B")
	if c.Super != "java/lang/Object" {
		t.Errorf("default super = %q", c.Super)
	}
	m2 := mustParse(t, ".class java/lang/Object\n.end")
	c2, _ := m2.Class("java/lang/Object")
	if c2.Super != "" {
		t.Errorf("Object super = %q, want empty", c2.Super)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct{ name, src, wantSub string }{
		{"unknown op", ".class a/B\n.method m ()V\nfrobnicate\n.end\n.end", "unknown opcode"},
		{"label outside method", "L0:\n", "label outside method"},
		{"dup label", ".class a/B\n.method m ()V\nL0:\nL0: return\n.end\n.end", "duplicate label"},
		{"undefined label", ".class a/B\n.method m ()V\ngoto NOPE\nreturn\n.end\n.end", "undefined label"},
		{"bad descriptor", ".class a/B\n.field f Q\n.end", "bad descriptor"},
		{"bad sig", ".class a/B\n.method m (Q)V\n.end\n.end", "bad descriptor"},
		{"instr outside method", "iload 0\n", "instruction outside method"},
		{"unterminated class", ".class a/B\n", "not terminated"},
		{"nested class", ".class a/B\n.class a/C\n.end\n.end", "inside class"},
		{"ldc missing", ".class a/B\n.method m ()V\nldc\nreturn\n.end\n.end", "ldc needs an operand"},
		{"bad iinc", ".class a/B\n.method m ()V\niinc 1\nreturn\n.end\n.end", "usage: iinc"},
		{"bad fieldref", ".class a/B\n.method m ()V\ngetfield nodot I\nreturn\n.end\n.end", "missing '.'"},
		{"end nothing", ".end\n", "nothing open"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.src)
			if err == nil {
				t.Fatalf("Assemble succeeded, want error containing %q", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestLdcKinds(t *testing.T) {
	src := `.class a/B
.method m ()V
.stack 4
    ldc 42
    pop
    ldc 3.5
    pop
    ldc "hi there"
    pop
    ldc 0x10
    pop
    return
.end
.end`
	m := mustParse(t, src)
	c, _ := m.Class("a/B")
	consts := c.Methods[0].Code.Consts
	if len(consts) != 4 {
		t.Fatalf("got %d consts: %+v", len(consts), consts)
	}
	if consts[0].Kind != KindInt || consts[0].I != 42 {
		t.Errorf("const 0 = %+v", consts[0])
	}
	if consts[1].Kind != KindDouble || consts[1].D != 3.5 {
		t.Errorf("const 1 = %+v", consts[1])
	}
	if consts[2].Kind != KindString || consts[2].S != "hi there" {
		t.Errorf("const 2 = %+v", consts[2])
	}
	if consts[3].Kind != KindInt || consts[3].I != 16 {
		t.Errorf("const 3 = %+v", consts[3])
	}
}

func TestConstPoolDedup(t *testing.T) {
	var c Code
	a := c.AddConst(Const{Kind: KindInt, I: 7})
	b := c.AddConst(Const{Kind: KindInt, I: 7})
	if a != b {
		t.Errorf("identical constants got indices %d and %d", a, b)
	}
	d := c.AddConst(Const{Kind: KindInt, I: 8})
	if d == a {
		t.Error("distinct constants shared an index")
	}
}

func TestRoundTripDisassemble(t *testing.T) {
	m := mustParse(t, sampleSource)
	c, _ := m.Class("spec/Counter")
	for _, meth := range c.Methods {
		text := Disassemble(meth.Code)
		// Wrap in a class/method shell and reassemble.
		src := ".class spec/Counter\n.method " + meth.Name + " " + meth.Sig + "\n.locals 16\n.stack 16\n" + text + ".end\n.end"
		m2, err := Assemble(src)
		if err != nil {
			t.Fatalf("reassemble %s: %v\n%s", meth.Name, err, text)
		}
		c2, _ := m2.Class("spec/Counter")
		got := c2.Methods[0].Code
		if len(got.Instrs) != len(meth.Code.Instrs) {
			t.Fatalf("%s: instr count %d != %d", meth.Name, len(got.Instrs), len(meth.Code.Instrs))
		}
		for i := range got.Instrs {
			if got.Instrs[i].Op != meth.Code.Instrs[i].Op {
				t.Fatalf("%s: pc %d op %s != %s", meth.Name, i, got.Instrs[i].Op.Name(), meth.Code.Instrs[i].Op.Name())
			}
		}
		if len(got.Handlers) != len(meth.Code.Handlers) {
			t.Fatalf("%s: handler count mismatch", meth.Name)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := mustParse(t, sampleSource)
	c, _ := m.Class("spec/Counter")
	code := c.Methods[1].Code
	cl := code.Clone()
	cl.Instrs[0].A = 999
	cl.Consts = append(cl.Consts, Const{Kind: KindInt, I: 1})
	if code.Instrs[0].A == 999 {
		t.Error("clone shares instruction storage")
	}
}

func TestMergeModules(t *testing.T) {
	a := mustParse(t, ".class a/A\n.end")
	b := mustParse(t, ".class b/B\n.end")
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Class("b/B"); !ok {
		t.Error("merged class missing")
	}
	dup := mustParse(t, ".class a/A\n.end")
	if err := a.Merge(dup); err == nil {
		t.Error("duplicate merge succeeded")
	}
}
