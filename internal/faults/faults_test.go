package faults

import (
	"sync"
	"testing"
)

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("seed=42,heap.alloc=0.01,barrier.store=@3,mem.debit=0.5/2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 {
		t.Errorf("seed = %d, want 42", p.Seed)
	}
	if r := p.Rules[SiteHeapAlloc]; r.Prob != 0.01 || r.Nth != 0 {
		t.Errorf("heap.alloc rule = %+v", r)
	}
	if r := p.Rules[SiteBarrierStore]; r.Nth != 3 {
		t.Errorf("barrier.store rule = %+v", r)
	}
	if r := p.Rules[SiteMemDebit]; r.Prob != 0.5 || r.Limit != 2 {
		t.Errorf("mem.debit rule = %+v", r)
	}
	if _, ok := p.Rules[SiteSchedKill]; ok {
		t.Error("sched.kill should be unarmed")
	}
}

func TestParsePlanAll(t *testing.T) {
	p, err := ParsePlan("seed=7,all=0.005,heap.alloc=@2")
	if err != nil {
		t.Fatal(err)
	}
	if r := p.Rules[SiteHeapAlloc]; r.Nth != 2 || r.Prob != 0 {
		t.Errorf("explicit clause should win over all=: %+v", r)
	}
	for s := Site(0); s < numSites; s++ {
		if s == SiteHeapAlloc {
			continue
		}
		if r := p.Rules[s]; r.Prob != 0.005 {
			t.Errorf("site %s rule = %+v, want prob 0.005", s, r)
		}
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus.site=0.1", "heap.alloc", "heap.alloc=2.0", "heap.alloc=@0",
		"seed=xyz", "heap.alloc=0.1/x",
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) succeeded, want error", spec)
		}
	}
}

func TestPlanRoundTrip(t *testing.T) {
	p, err := ParsePlan("seed=9,heap.alloc=0.25,sched.kill=@17/1")
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParsePlan(p.String())
	if err != nil {
		t.Fatalf("reparsing %q: %v", p.String(), err)
	}
	if q.Seed != p.Seed || len(q.Rules) != len(p.Rules) {
		t.Fatalf("round trip lost data: %q vs %q", p.String(), q.String())
	}
	for s, r := range p.Rules {
		if q.Rules[s] != r {
			t.Errorf("site %s: %+v vs %+v", s, r, q.Rules[s])
		}
	}
}

func TestNilAndDisabledPlaneNeverFire(t *testing.T) {
	var nilPlane *Plane
	if nilPlane.Fire(SiteHeapAlloc) || nilPlane.Enabled() {
		t.Error("nil plane fired")
	}
	empty := NewPlane(Plan{Seed: 1})
	for i := 0; i < 1000; i++ {
		for s := Site(0); s < numSites; s++ {
			if empty.Fire(s) {
				t.Fatalf("empty plane fired at %s", s)
			}
		}
	}
	if empty.Enabled() {
		t.Error("empty plane reports enabled")
	}
}

func TestFireDeterministic(t *testing.T) {
	run := func() []uint64 {
		p := NewPlane(Plan{Seed: 123, Rules: map[Site]Rule{
			SiteHeapAlloc:    {Prob: 0.1},
			SiteBarrierStore: {Prob: 0.02},
		}})
		var firedAt []uint64
		for i := uint64(0); i < 5000; i++ {
			if p.Fire(SiteHeapAlloc) {
				firedAt = append(firedAt, i)
			}
			p.Fire(SiteBarrierStore) // interleaved site must not perturb the first
		}
		return firedAt
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("p=0.1 over 5000 hits never fired")
	}
	if len(a) != len(b) {
		t.Fatalf("nondeterministic: %d vs %d firings", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("firing %d at hit %d vs %d", i, a[i], b[i])
		}
	}
}

func TestFireCrossSiteIndependence(t *testing.T) {
	// The same site must fire at the same hit indices whether or not other
	// sites are being consulted in between.
	fire := func(interleave bool) []uint64 {
		p := NewPlane(Plan{Seed: 5, Rules: map[Site]Rule{
			SiteMemDebit:  {Prob: 0.05},
			SiteSchedKill: {Prob: 0.5},
		}})
		var at []uint64
		for i := uint64(0); i < 2000; i++ {
			if interleave {
				p.Fire(SiteSchedKill)
			}
			if p.Fire(SiteMemDebit) {
				at = append(at, i)
			}
		}
		return at
	}
	a, b := fire(false), fire(true)
	if len(a) != len(b) {
		t.Fatalf("interleaving another site changed firings: %d vs %d", len(a), len(b))
	}
}

func TestNthAndLimit(t *testing.T) {
	p := NewPlane(Plan{Seed: 1, Rules: map[Site]Rule{
		SiteSchedKill: {Nth: 7},
		SiteHeapAlloc: {Prob: 1.0, Limit: 3},
	}})
	for i := uint64(1); i <= 20; i++ {
		fired := p.Fire(SiteSchedKill)
		if fired != (i == 7) {
			t.Errorf("sched.kill hit %d: fired=%v", i, fired)
		}
	}
	fires := 0
	for i := 0; i < 10; i++ {
		if p.Fire(SiteHeapAlloc) {
			fires++
		}
	}
	if fires != 3 {
		t.Errorf("limit 3 produced %d firings", fires)
	}
	if p.Fires(SiteHeapAlloc) != 3 || p.Hits(SiteHeapAlloc) != 10 {
		t.Errorf("counters: fires=%d hits=%d", p.Fires(SiteHeapAlloc), p.Hits(SiteHeapAlloc))
	}
}

func TestPlaneConcurrentSafe(t *testing.T) {
	p := NewPlane(Plan{Seed: 3, Rules: map[Site]Rule{SiteMemDebit: {Prob: 0.1}}})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				p.Fire(SiteMemDebit)
				p.Fire(SiteHeapAlloc)
			}
		}()
	}
	wg.Wait()
	if got := p.Hits(SiteMemDebit); got != 80000 {
		t.Errorf("hits = %d, want 80000", got)
	}
}

func TestSetEnabled(t *testing.T) {
	p := NewPlane(Plan{Seed: 1, Rules: map[Site]Rule{SiteHeapAlloc: {Prob: 1}}})
	if !p.Fire(SiteHeapAlloc) {
		t.Fatal("armed p=1 site did not fire")
	}
	p.SetEnabled(false)
	if p.Fire(SiteHeapAlloc) {
		t.Error("disabled plane fired")
	}
	p.SetEnabled(true)
	if !p.Fire(SiteHeapAlloc) {
		t.Error("re-enabled plane did not fire")
	}
}
