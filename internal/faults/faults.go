// Package faults is the kernel's deterministic fault-injection plane.
//
// KaffeOS's correctness claims live in corner cases — a process killed in
// the middle of a mark phase, an allocation refused while a write barrier
// is half-way through its entry/exit bookkeeping, an adversarial
// preemption between two dependent stores. This package lets tests and the
// `kaffeos check` sweep provoke those corners on purpose and, crucially,
// reproducibly: every injection decision is drawn from a per-site
// deterministic stream seeded from one plan seed, so a failing schedule is
// re-runnable from its seed alone.
//
// A Plane is threaded through the kernel as named Sites (heap allocation,
// GC mid-mark, barrier store, memlimit debit, scheduler dispatch, process
// spawn/terminate). Instrumented code asks Fire(site); the plane answers
// true when the site's rule says this hit should fail. A nil *Plane and a
// disabled plane are both safe and nearly free: the hot-path cost is one
// nil check plus one atomic load.
//
// The package is a leaf — it imports only the standard library — so every
// subsystem can depend on it without cycles (the same layering rule as
// internal/telemetry).
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Site names one instrumented fault-injection point in the kernel.
type Site uint8

const (
	// SiteHeapAlloc: heap.adopt refuses the allocation as if the memlimit
	// were exhausted (surfaces to user code as OutOfMemoryError).
	SiteHeapAlloc Site = iota
	// SiteHeapMark: a collection, between its mark and its entry re-check
	// windows, kills the heap's owning process (kill-during-GC).
	SiteHeapMark
	// SiteBarrierStore: the write barrier refuses an otherwise legal store
	// (surfaces as a segmentation violation).
	SiteBarrierStore
	// SiteMemDebit: memlimit.Debit/DebitLease refuses the debit even though
	// the limit has room.
	SiteMemDebit
	// SiteSchedPreempt: the scheduler dispatches the chosen thread with a
	// one-cycle quantum, forcing a preemption at its next safepoint.
	SiteSchedPreempt
	// SiteSchedKill: the scheduler kills the chosen thread's process just
	// before dispatching it (kill at dispatch N, i.e. safepoint N).
	SiteSchedKill
	// SiteProcSpawn: spawning a thread immediately races a process kill
	// against the newborn thread.
	SiteProcSpawn
	// SiteProcTerminate: a normally-exiting thread races a process kill
	// against its own exit transition.
	SiteProcTerminate
	// SiteServeDispatch: the network serving plane kills the tenant's
	// process right after dispatching a request into it, so the Nth
	// dispatched request (`serve.dispatch=@N`) deterministically exercises
	// the killed-mid-request degradation path.
	SiteServeDispatch
	// SiteMemBalance: the memory-balancer controller fails mid-
	// redistribution — it applies only a prefix of the round's new limits
	// (equivalently: the rest of the round acts on a stale snapshot), so
	// `membal.rebalance=@N` deterministically exercises a half-applied
	// rebalance that the next round and the kernel auditor must absorb.
	SiteMemBalance
	// SiteForkCopy: a template checkpoint or fork dies mid-clone — the
	// object copy loop aborts before the Nth object lands, and the
	// half-built heap must unwind to zero residual charges, pages, and
	// entry/exit items (`fork.copy=@N`).
	SiteForkCopy
	// SiteCodeAttach: attaching a shared code-cache artifact to a process
	// fails mid-attach — after the memlimit debit would have happened but
	// before the sharer is recorded — and the attach must unwind to zero
	// leaked bytes and zero refcounts (`codecache.attach=@N`).
	SiteCodeAttach

	numSites
)

// NumSites reports the number of defined sites.
func NumSites() int { return int(numSites) }

var siteNames = [numSites]string{
	SiteHeapAlloc:     "heap.alloc",
	SiteHeapMark:      "heap.mark",
	SiteBarrierStore:  "barrier.store",
	SiteMemDebit:      "mem.debit",
	SiteSchedPreempt:  "sched.preempt",
	SiteSchedKill:     "sched.kill",
	SiteProcSpawn:     "proc.spawn",
	SiteProcTerminate: "proc.terminate",
	SiteServeDispatch: "serve.dispatch",
	SiteMemBalance:    "membal.rebalance",
	SiteForkCopy:      "fork.copy",
	SiteCodeAttach:    "codecache.attach",
}

func (s Site) String() string {
	if int(s) < len(siteNames) {
		return siteNames[s]
	}
	return fmt.Sprintf("site(%d)", uint8(s))
}

// SiteByName resolves a site from its plan-spec name.
func SiteByName(name string) (Site, bool) {
	for s, n := range siteNames {
		if n == name {
			return Site(s), true
		}
	}
	return 0, false
}

// Rule says when a site fires. Exactly one of Prob / Nth is meaningful:
// Nth > 0 selects fire-on-Nth-hit (once), otherwise every hit fires
// independently with probability Prob. Limit, when nonzero, caps the total
// number of firings of the site (applies to both forms).
type Rule struct {
	Prob  float64 // per-hit probability, 0..1
	Nth   uint64  // fire exactly on the Nth hit (1-based), once
	Limit uint64  // max total firings (0 = unlimited)
}

// Plan is a complete injection schedule: a seed plus one rule per site.
type Plan struct {
	Seed  int64
	Rules map[Site]Rule
}

// ParsePlan parses the `-faults` spec syntax:
//
//	seed=42,heap.alloc=0.01,barrier.store=@3,all=0.005,mem.debit=0.02/5
//
// Comma-separated clauses. `seed=N` sets the seed (default 1). A clause
// `site=P` arms the site with probability P; `site=@N` arms fire-on-Nth-
// hit; an optional `/L` suffix caps total firings. The pseudo-site `all`
// applies its rule to every site not named explicitly (explicit clauses
// win regardless of order). An empty spec yields an empty (never-firing)
// plan.
func ParsePlan(spec string) (Plan, error) {
	p := Plan{Seed: 1, Rules: make(map[Site]Rule)}
	var all *Rule
	explicit := make(map[Site]bool)
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return Plan{}, fmt.Errorf("faults: clause %q is not key=value", clause)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if key == "seed" {
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("faults: bad seed %q: %v", val, err)
			}
			p.Seed = n
			continue
		}
		rule, err := parseRule(val)
		if err != nil {
			return Plan{}, fmt.Errorf("faults: site %s: %v", key, err)
		}
		if key == "all" {
			all = &rule
			continue
		}
		site, ok := SiteByName(key)
		if !ok {
			return Plan{}, fmt.Errorf("faults: unknown site %q (known: %s)", key, strings.Join(siteNames[:], ", "))
		}
		p.Rules[site] = rule
		explicit[site] = true
	}
	if all != nil {
		for s := Site(0); s < numSites; s++ {
			if !explicit[s] {
				p.Rules[s] = *all
			}
		}
	}
	return p, nil
}

func parseRule(val string) (Rule, error) {
	var r Rule
	if body, cap, ok := strings.Cut(val, "/"); ok {
		n, err := strconv.ParseUint(cap, 10, 64)
		if err != nil {
			return Rule{}, fmt.Errorf("bad firing cap %q: %v", cap, err)
		}
		r.Limit = n
		val = body
	}
	if nth, ok := strings.CutPrefix(val, "@"); ok {
		n, err := strconv.ParseUint(nth, 10, 64)
		if err != nil || n == 0 {
			return Rule{}, fmt.Errorf("bad @N hit index %q", nth)
		}
		r.Nth = n
		return r, nil
	}
	p, err := strconv.ParseFloat(val, 64)
	if err != nil || p < 0 || p > 1 {
		return Rule{}, fmt.Errorf("bad probability %q (want 0..1 or @N)", val)
	}
	r.Prob = p
	return r, nil
}

// String renders the plan back to spec syntax (normalized, sites sorted).
func (p Plan) String() string {
	parts := []string{fmt.Sprintf("seed=%d", p.Seed)}
	sites := make([]Site, 0, len(p.Rules))
	for s := range p.Rules {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	for _, s := range sites {
		r := p.Rules[s]
		var v string
		if r.Nth > 0 {
			v = fmt.Sprintf("@%d", r.Nth)
		} else {
			v = strconv.FormatFloat(r.Prob, 'g', -1, 64)
		}
		if r.Limit > 0 {
			v += "/" + strconv.FormatUint(r.Limit, 10)
		}
		parts = append(parts, fmt.Sprintf("%s=%s", s, v))
	}
	return strings.Join(parts, ",")
}

// siteState is the per-site decision stream and counters.
type siteState struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rule  Rule
	armed bool
	hits  atomic.Uint64
	fires atomic.Uint64
}

// Plane is an armed fault-injection plan. The zero value and the nil
// pointer are both valid, permanently-disabled planes.
type Plane struct {
	// enabled is the single hot-path gate: when false (or the Plane is
	// nil), Fire returns false after one atomic load.
	enabled atomic.Bool
	seed    int64
	sites   [numSites]siteState
}

// NewPlane arms a plan. Sites without a rule never fire. Each site draws
// from its own deterministic stream seeded from (plan seed, site), so
// adding instrumentation at one site never perturbs another site's
// decisions.
func NewPlane(plan Plan) *Plane {
	p := &Plane{seed: plan.Seed}
	armed := false
	for s := Site(0); s < numSites; s++ {
		st := &p.sites[s]
		if rule, ok := plan.Rules[s]; ok && (rule.Prob > 0 || rule.Nth > 0) {
			st.rule = rule
			st.armed = true
			armed = true
		}
		st.rng = rand.New(rand.NewSource(plan.Seed*1_000_003 + int64(s)*7_919 + 1))
	}
	p.enabled.Store(armed)
	return p
}

// Seed reports the plan seed the plane was armed with.
func (p *Plane) Seed() int64 {
	if p == nil {
		return 0
	}
	return p.seed
}

// Enabled reports whether any site is armed.
func (p *Plane) Enabled() bool { return p != nil && p.enabled.Load() }

// SetEnabled pauses or resumes the whole plane without losing counters.
func (p *Plane) SetEnabled(on bool) {
	if p != nil {
		p.enabled.Store(on)
	}
}

// Fire reports whether this hit of site s should fail. It is safe on a nil
// plane (never fires) and safe for concurrent use; when the plane is
// disabled the cost is one atomic load.
func (p *Plane) Fire(s Site) bool {
	if p == nil || !p.enabled.Load() {
		return false
	}
	st := &p.sites[s]
	if !st.armed {
		return false
	}
	hit := st.hits.Add(1)
	st.mu.Lock()
	rule := st.rule
	fired := false
	switch {
	case rule.Limit > 0 && st.fires.Load() >= rule.Limit:
	case rule.Nth > 0:
		fired = hit == rule.Nth
	default:
		fired = st.rng.Float64() < rule.Prob
	}
	if fired {
		st.fires.Add(1)
	}
	st.mu.Unlock()
	return fired
}

// Hits reports how many times site s has been consulted.
func (p *Plane) Hits(s Site) uint64 {
	if p == nil {
		return 0
	}
	return p.sites[s].hits.Load()
}

// Fires reports how many times site s has fired.
func (p *Plane) Fires(s Site) uint64 {
	if p == nil {
		return 0
	}
	return p.sites[s].fires.Load()
}

// TotalFires reports firings across all sites.
func (p *Plane) TotalFires() uint64 {
	if p == nil {
		return 0
	}
	var n uint64
	for s := Site(0); s < numSites; s++ {
		n += p.sites[s].fires.Load()
	}
	return n
}

// Summary renders per-site hit/fire counters for reports, skipping sites
// that were never consulted.
func (p *Plane) Summary() string {
	if p == nil {
		return "faults: off"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "faults: seed=%d", p.seed)
	for s := Site(0); s < numSites; s++ {
		hits, fires := p.sites[s].hits.Load(), p.sites[s].fires.Load()
		if hits == 0 && !p.sites[s].armed {
			continue
		}
		fmt.Fprintf(&b, " %s=%d/%d", s, fires, hits)
	}
	return b.String()
}
