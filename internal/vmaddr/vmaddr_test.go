package vmaddr

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestReserveAssignsPages(t *testing.T) {
	s := NewSpace()
	h := s.NewHeapID()
	base, err := s.Reserve(h, 4)
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if base%PageSize != 0 {
		t.Fatalf("base %#x not page aligned", base)
	}
	for off := uint64(0); off < 4*PageSize; off += 128 {
		got, ok := s.HeapOf(base + off)
		if !ok || got != h {
			t.Fatalf("HeapOf(base+%#x) = %v, %v; want %v, true", off, got, ok, h)
		}
	}
	if _, ok := s.HeapOf(base + 4*PageSize); ok {
		t.Fatalf("address past reservation resolved to a heap")
	}
}

func TestReserveDistinctRanges(t *testing.T) {
	s := NewSpace()
	a, b := s.NewHeapID(), s.NewHeapID()
	ba, err := s.Reserve(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := s.Reserve(b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ba == bb {
		t.Fatalf("overlapping reservations at %#x", ba)
	}
	if got, _ := s.HeapOf(ba); got != a {
		t.Errorf("first range owner = %v, want %v", got, a)
	}
	if got, _ := s.HeapOf(bb); got != b {
		t.Errorf("second range owner = %v, want %v", got, b)
	}
}

func TestReserveRejectsBadArgs(t *testing.T) {
	s := NewSpace()
	h := s.NewHeapID()
	if _, err := s.Reserve(h, 0); err == nil {
		t.Error("Reserve(0 pages) succeeded")
	}
	if _, err := s.Reserve(h, -1); err == nil {
		t.Error("Reserve(-1 pages) succeeded")
	}
	if _, err := s.Reserve(NoHeap, 1); err == nil {
		t.Error("Reserve(NoHeap) succeeded")
	}
}

func TestReleaseUnmaps(t *testing.T) {
	s := NewSpace()
	h := s.NewHeapID()
	base, _ := s.Reserve(h, 3)
	s.Release(h, base, 3)
	if _, ok := s.HeapOf(base); ok {
		t.Error("released page still mapped")
	}
	if n := s.PagesOwned(h); n != 0 {
		t.Errorf("PagesOwned = %d after release, want 0", n)
	}
	if n := s.Pages(); n != 0 {
		t.Errorf("Pages = %d after release, want 0", n)
	}
}

func TestReleaseWrongOwnerPanics(t *testing.T) {
	s := NewSpace()
	a, b := s.NewHeapID(), s.NewHeapID()
	base, _ := s.Reserve(a, 1)
	defer func() {
		if recover() == nil {
			t.Error("release by non-owner did not panic")
		}
	}()
	s.Release(b, base, 1)
}

func TestReassignTransfersOwnership(t *testing.T) {
	s := NewSpace()
	user, kernel := s.NewHeapID(), s.NewHeapID()
	base, _ := s.Reserve(user, 5)
	s.Reassign(base, 5, kernel)
	for i := 0; i < 5; i++ {
		got, ok := s.HeapOf(base + uint64(i)*PageSize)
		if !ok || got != kernel {
			t.Fatalf("page %d owner = %v, %v; want kernel", i, got, ok)
		}
	}
	if n := s.PagesOwned(user); n != 0 {
		t.Errorf("user still owns %d pages after reassign", n)
	}
}

func TestReassignSkipsUnmapped(t *testing.T) {
	s := NewSpace()
	a, b := s.NewHeapID(), s.NewHeapID()
	base, _ := s.Reserve(a, 2)
	s.Release(a, base, 2)
	s.Reassign(base, 2, b)
	if _, ok := s.HeapOf(base); ok {
		t.Error("reassign resurrected an unmapped page")
	}
}

func TestHeapIDsUnique(t *testing.T) {
	s := NewSpace()
	seen := make(map[HeapID]bool)
	for i := 0; i < 1000; i++ {
		id := s.NewHeapID()
		if id == NoHeap {
			t.Fatal("minted NoHeap")
		}
		if seen[id] {
			t.Fatalf("duplicate heap ID %v", id)
		}
		seen[id] = true
	}
}

func TestSpaceExhaustion(t *testing.T) {
	s := NewSpace()
	s.limit = s.next + 4*PageSize
	h := s.NewHeapID()
	if _, err := s.Reserve(h, 8); err != ErrSpaceExhausted {
		t.Fatalf("Reserve past limit: err = %v, want ErrSpaceExhausted", err)
	}
	if _, err := s.Reserve(h, 4); err != nil {
		t.Fatalf("Reserve within limit failed: %v", err)
	}
}

func TestConcurrentReserve(t *testing.T) {
	s := NewSpace()
	const workers, pagesEach = 16, 8
	bases := make([]uint64, workers)
	ids := make([]HeapID, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = s.NewHeapID()
			b, err := s.Reserve(ids[i], pagesEach)
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
				return
			}
			bases[i] = b
		}(i)
	}
	wg.Wait()
	seen := make(map[uint64]int)
	for i, b := range bases {
		for p := 0; p < pagesEach; p++ {
			page := (b >> PageShift) + uint64(p)
			if prev, dup := seen[page]; dup {
				t.Fatalf("page %#x leased to workers %d and %d", page, prev, i)
			}
			seen[page] = i
		}
	}
}

func TestPagesFor(t *testing.T) {
	cases := []struct {
		size uint64
		want int
	}{
		{0, 0}, {1, 1}, {PageSize - 1, 1}, {PageSize, 1},
		{PageSize + 1, 2}, {10 * PageSize, 10},
	}
	for _, c := range cases {
		if got := PagesFor(c.size); got != c.want {
			t.Errorf("PagesFor(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

// Property: every address inside a reservation resolves to the reserving
// heap, and addresses in separate reservations never alias.
func TestPropReservationResolution(t *testing.T) {
	s := NewSpace()
	f := func(nPages uint8, offsets []uint16) bool {
		n := int(nPages%16) + 1
		h := s.NewHeapID()
		base, err := s.Reserve(h, n)
		if err != nil {
			return false
		}
		for _, off := range offsets {
			addr := base + uint64(off)%(uint64(n)<<PageShift)
			got, ok := s.HeapOf(addr)
			if !ok || got != h {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
