// Package vmaddr provides the simulated virtual address space that underlies
// all KaffeOS heaps.
//
// KaffeOS does not assume an MMU or OS virtual-memory support (the paper
// targets hosts as small as a Palm Pilot), but its "No Heap Pointer" write
// barrier still needs to map an object's address to the heap that owns it by
// looking at the page on which the object lies. This package implements that
// substrate: heaps lease aligned page ranges from a single Space, every
// object is assigned an address inside its heap's pages, and a global page
// table maps any address back to the owning heap.
//
// When a process terminates, its heap is merged into the kernel heap; the
// page table supports reassigning leased pages to a different heap so the
// merge is O(pages), not O(objects).
package vmaddr

import (
	"errors"
	"fmt"
	"sync"
)

// HeapID names a heap within a Space. IDs are never reused, so a stale
// address can be detected as belonging to a dead heap.
type HeapID uint32

// NoHeap is the zero HeapID; no heap is ever allocated with it.
const NoHeap HeapID = 0

const (
	// PageShift is log2 of the simulated page size. 4 KiB pages match the
	// x86 hosts the paper measured on.
	PageShift = 12
	// PageSize is the simulated page size in bytes.
	PageSize = 1 << PageShift
	// baseAddr is the first address handed out. Keeping it nonzero means
	// address 0 behaves like a null pointer in diagnostics.
	baseAddr = uint64(1) << 32
)

// ErrSpaceExhausted is returned when the address space cannot satisfy a
// reservation. With a 64-bit space this indicates a runaway allocation loop.
var ErrSpaceExhausted = errors.New("vmaddr: address space exhausted")

// Space is a simulated address space shared by all heaps of one VM.
// All methods are safe for concurrent use.
type Space struct {
	mu     sync.RWMutex
	next   uint64            // next unleased address (page aligned)
	table  map[uint64]HeapID // page index -> owning heap
	nextID HeapID
	limit  uint64 // exclusive upper bound of the space
}

// NewSpace returns an empty address space.
func NewSpace() *Space {
	return &Space{
		next:   baseAddr,
		table:  make(map[uint64]HeapID),
		nextID: 1,
		limit:  ^uint64(0),
	}
}

// NewHeapID mints a fresh heap identifier. IDs are unique for the lifetime
// of the Space.
func (s *Space) NewHeapID() HeapID {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextID
	s.nextID++
	return id
}

// Reserve leases n contiguous pages to heap h and returns the base address
// of the range. n must be positive and h must be a minted heap ID.
func (s *Space) Reserve(h HeapID, n int) (uint64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("vmaddr: reserve of %d pages", n)
	}
	if h == NoHeap {
		return 0, errors.New("vmaddr: reserve for NoHeap")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	size := uint64(n) << PageShift
	if s.next+size < s.next || s.next+size > s.limit {
		return 0, ErrSpaceExhausted
	}
	base := s.next
	s.next += size
	for i := 0; i < n; i++ {
		s.table[(base>>PageShift)+uint64(i)] = h
	}
	return base, nil
}

// Release returns a leased page range to the space on behalf of heap h.
// The pages become unmapped: HeapOf reports false for addresses inside
// them. Releasing a page that is mapped to a different heap panics — it
// means heap chunk accounting is corrupt, which is a kernel bug. Fresh
// reservations never reuse released addresses (next is monotonic), so a
// dangling simulated address can only alias an object if the owning heap
// itself recycled the chunk — which the heap layer only does within one
// heap, where the collector has already proven the chunk dead.
func (s *Space) Release(h HeapID, base uint64, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < n; i++ {
		page := (base >> PageShift) + uint64(i)
		owner, ok := s.table[page]
		if !ok {
			continue
		}
		if owner != h {
			panic(fmt.Sprintf("vmaddr: heap %d releasing page %#x owned by heap %d", h, page<<PageShift, owner))
		}
		delete(s.table, page)
	}
}

// Pages reports the total number of mapped pages in the space. It is the
// soak-test observable for address-space leaks: with chunk recycling and
// release, it must stay bounded under process churn instead of growing
// monotonically.
func (s *Space) Pages() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.table)
}

// Reassign transfers ownership of a leased page range to heap h. It is the
// mechanism behind merging a terminated process' heap into the kernel heap.
func (s *Space) Reassign(base uint64, n int, h HeapID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < n; i++ {
		page := (base >> PageShift) + uint64(i)
		if _, ok := s.table[page]; ok {
			s.table[page] = h
		}
	}
}

// HeapOf resolves an address to the heap owning its page. This is the page
// lookup at the core of the "No Heap Pointer" write barrier (41 cycles with
// a hot cache, per the paper).
func (s *Space) HeapOf(addr uint64) (HeapID, bool) {
	s.mu.RLock()
	h, ok := s.table[addr>>PageShift]
	s.mu.RUnlock()
	return h, ok
}

// Dump copies the page table (page index → owning heap) for the invariant
// auditor. The copy is consistent: no reservation, release, or reassignment
// is in flight while it is taken.
func (s *Space) Dump() map[uint64]HeapID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[uint64]HeapID, len(s.table))
	for page, h := range s.table {
		out[page] = h
	}
	return out
}

// PagesOwned reports how many pages heap h currently owns. It exists for
// tests and introspection; it is O(pages in the space).
func (s *Space) PagesOwned(h HeapID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, owner := range s.table {
		if owner == h {
			n++
		}
	}
	return n
}

// PagesFor reports the number of pages needed to hold size bytes.
func PagesFor(size uint64) int {
	if size == 0 {
		return 0
	}
	return int((size + PageSize - 1) >> PageShift)
}
