// Package membal is the kernel memory balancer: a controller that
// continuously redistributes a global memory budget across process
// memlimits using the square-root rule of Kirisame et al., "Optimal Heap
// Limits for Reducing Browser Memory Use" (the MemBalancer policy, same
// Utah lineage as KaffeOS itself).
//
// The rule: give every heap its live size, then split the remaining
// budget in proportion to √(live × allocation-rate). Under a fixed total
// budget this minimizes the sum of GC time across heaps — a heap's
// collection frequency is its allocation rate divided by its headroom,
// and each collection costs time proportional to its live size, so the
// marginal value of one extra byte of headroom is equalized across heaps
// exactly when headroom ∝ √(live × rate). Heavy allocators get room to
// breathe; idle tenants are squeezed to their live size so the memory
// works where the garbage is.
//
// The package is computational + a thin applier: Limits is the pure,
// table-testable math; Controller snapshots (live, alloc-rate) readings,
// runs Limits, and applies the result through memlimit.SetMaxClamped.
// It imports only leaf packages (memlimit, telemetry, faults), so core
// and serve can both drive it without cycles.
package membal

import (
	"math"
	"sort"

	"repro/internal/faults"
	"repro/internal/memlimit"
	"repro/internal/telemetry"
)

// Sample is one heap's controller input: its live size, its allocation
// rate, and the bounds the computed limit must respect.
type Sample struct {
	// Live is the heap's live bytes at the snapshot.
	Live uint64
	// Rate is the heap's allocation rate in bytes per virtual cycle.
	Rate float64
	// Floor is the minimum limit ever assigned (0 = no floor). A tenant
	// always keeps max(Live, Floor) even when the budget is overcommitted.
	Floor uint64
	// Ceil caps the assigned limit (0 = no cap); the excess is
	// redistributed to the other heaps by weight.
	Ceil uint64
}

// Limits computes square-root-rule limits for the sampled heaps under one
// global budget. Every heap is first granted its base = max(Live, Floor);
// the remaining pool E = budget − Σbase (zero when the budget is already
// overcommitted — bases are never cut) is then split proportional to
// w_i = √(Live_i × Rate_i). When every weight is zero (all heaps idle, or
// the first round before any rate is known) the pool is split evenly.
// Ceilings are honored by water-filling: a capped heap's unused share is
// redistributed among the uncapped ones. Integer rounding residue goes to
// the heaviest-weighted uncapped heap (first by index on ties), so
// Σlimits == budget exactly whenever budget ≥ Σbase and no ceiling binds.
func Limits(budget uint64, samples []Sample) []uint64 {
	n := len(samples)
	if n == 0 {
		return nil
	}
	limits := make([]uint64, n)
	weights := make([]float64, n)
	var sumBase uint64
	allZero := true
	for i, s := range samples {
		base := s.Live
		if s.Floor > base {
			base = s.Floor
		}
		if s.Ceil != 0 && base > s.Ceil {
			base = s.Ceil
		}
		limits[i] = base
		sumBase += base
		weights[i] = math.Sqrt(float64(s.Live) * s.Rate)
		if weights[i] > 0 {
			allZero = false
		}
	}
	if budget <= sumBase {
		return limits
	}
	pool := budget - sumBase
	if allZero {
		for i := range weights {
			weights[i] = 1
		}
	}
	// Water-fill: distribute the pool by weight; anything a ceiling
	// refuses is pooled again for the remaining heaps.
	open := make([]int, 0, n)
	for i := range samples {
		if weights[i] > 0 {
			open = append(open, i)
		}
	}
	for pool > 0 && len(open) > 0 {
		var totalW float64
		for _, i := range open {
			totalW += weights[i]
		}
		granted := uint64(0)
		next := open[:0]
		heaviest := -1
		for _, i := range open {
			share := uint64(float64(pool) * (weights[i] / totalW))
			room := uint64(math.MaxUint64)
			if c := samples[i].Ceil; c != 0 {
				room = c - limits[i]
			}
			if share >= room {
				limits[i] += room
				granted += room
				continue // capped: out of the next round
			}
			limits[i] += share
			granted += share
			next = append(next, i)
			if heaviest < 0 || weights[i] > weights[heaviest] {
				heaviest = i
			}
		}
		if granted == 0 {
			// Nothing moved (pool smaller than every rounding step):
			// hand the residue to the heaviest open heap and stop.
			if heaviest >= 0 {
				room := uint64(math.MaxUint64)
				if c := samples[heaviest].Ceil; c != 0 {
					room = c - limits[heaviest]
				}
				if pool < room {
					room = pool
				}
				limits[heaviest] += room
			}
			break
		}
		pool -= granted
		if len(next) == len(open) && pool > 0 {
			// No ceiling bound this round; what is left is rounding
			// residue. Give it to the heaviest weight and finish.
			room := uint64(math.MaxUint64)
			if c := samples[heaviest].Ceil; c != 0 {
				room = c - limits[heaviest]
			}
			if pool < room {
				room = pool
			}
			limits[heaviest] += room
			break
		}
		open = next
	}
	return limits
}

// SqrtExtra is the single-heap (controller-less) form of the rule: the
// headroom to grant a heap above its live size, √(live × rate × horizon).
// horizon, in cycles, is the tuning constant trading memory for GC time —
// it is the window over which rate × horizon bytes of allocation are
// "expected", so a heap gets the geometric mean of its live size and its
// near-future allocation volume. Falls back to live (the classic 2×
// growth trigger) when the rate is unknown or zero, so a heap with no
// history behaves exactly like the legacy trigger.
func SqrtExtra(live uint64, rate float64, horizon uint64) uint64 {
	if rate <= 0 || horizon == 0 || live == 0 {
		return live
	}
	return uint64(math.Sqrt(float64(live) * rate * float64(horizon)))
}

// Target is one controlled heap: the memlimit to resize plus the raw
// readings the controller turns into a Sample.
type Target struct {
	// ID keys the rate tracker — stable for the process' lifetime (pid).
	// A restarted tenant arrives under a fresh pid and starts cold.
	ID int32
	// Limit is the memlimit node whose maximum the controller sets.
	Limit *memlimit.Limit
	// Live is the heap's live bytes.
	Live uint64
	// AllocBytes is the heap's cumulative allocated-bytes counter; the
	// controller differentiates it against the virtual clock for the rate.
	AllocBytes uint64
	// Floor optionally overrides the controller's per-heap floor.
	Floor uint64
}

// Applied is one heap's outcome of a rebalance round.
type Applied struct {
	ID int32
	// Trigger is the computed square-root limit in heap-live-bytes terms —
	// the size at which the heap should next be collected.
	Trigger uint64
	// Max is the memlimit maximum actually installed: Trigger + Slack,
	// clamped up to the limit's in-flight use (see SetMaxClamped).
	Max uint64
}

// Controller periodically redistributes Budget across a set of targets.
// It is not goroutine-safe: exactly one goroutine (the VM's scheduler
// driver — in the serving plane, the owning shard's engine goroutine)
// calls Rebalance, matching the ownership discipline of everything else
// that touches a VM.
type Controller struct {
	// Budget is the global byte budget spread across all targets.
	Budget uint64
	// Floor is the default per-heap minimum limit (default 256 KiB).
	Floor uint64
	// Slack is added to each computed limit when setting the memlimit
	// maximum, covering the standing 64 KiB allocation lease and the
	// non-heap charges (entry/exit items, shared-heap attachments) that
	// share the limit with live bytes (default 128 KiB).
	Slack uint64
	// Sink, when set, receives one EvMemRebalance event per round.
	Sink telemetry.Sink
	// Scope, when set, carries the membal.* metrics (kernel scope of the
	// controlled VM).
	Scope *telemetry.Scope
	// Faults, when set, lets the injection plane abort a round mid-
	// redistribution (SiteMemBalance): only a prefix of the round's
	// updates is applied, exactly what a controller crash between two
	// SetMax calls would leave behind.
	Faults *faults.Plane

	prev   map[int32]rateState
	rounds uint64
}

type rateState struct {
	alloc  uint64
	cycles uint64
	rate   float64
}

func (c *Controller) floorFor(t Target) uint64 {
	if t.Floor != 0 {
		return t.Floor
	}
	if c.Floor != 0 {
		return c.Floor
	}
	return 256 << 10
}

func (c *Controller) slack() uint64 {
	if c.Slack != 0 {
		return c.Slack
	}
	return 128 << 10
}

// Rounds reports how many rebalance rounds have completed.
func (c *Controller) Rounds() uint64 { return c.rounds }

// Rebalance runs one controller round at virtual time now: estimate each
// target's allocation rate, compute square-root limits under Budget, and
// install them. Shrinks are applied before grows so that, on hard-limit
// trees, the parent's pool is never transiently over-committed by the
// reorder. Returns what was applied (a prefix of the targets when the
// fault plane cut the round short).
func (c *Controller) Rebalance(now uint64, targets []Target) []Applied {
	if len(targets) == 0 {
		return nil
	}
	if c.prev == nil {
		c.prev = make(map[int32]rateState)
	}
	samples := make([]Sample, len(targets))
	seen := make(map[int32]bool, len(targets))
	var sumLive uint64
	for i, t := range targets {
		seen[t.ID] = true
		rate := 0.0
		if pv, ok := c.prev[t.ID]; ok {
			if now > pv.cycles && t.AllocBytes >= pv.alloc {
				// EWMA-smooth the instantaneous rate so one quiet or
				// bursty interval does not whipsaw the split.
				inst := float64(t.AllocBytes-pv.alloc) / float64(now-pv.cycles)
				rate = (inst + pv.rate) / 2
			} else {
				rate = pv.rate
			}
		}
		c.prev[t.ID] = rateState{alloc: t.AllocBytes, cycles: now, rate: rate}
		samples[i] = Sample{Live: t.Live, Rate: rate, Floor: c.floorFor(t)}
		sumLive += t.Live
	}
	for id := range c.prev {
		if !seen[id] {
			delete(c.prev, id) // reclaimed process; a restart is a new pid
		}
	}
	limits := Limits(c.Budget, samples)

	// Apply in shrink-first order (stable, so the fault cut point is
	// deterministic for a deterministic target order).
	order := make([]int, len(targets))
	for i := range order {
		order[i] = i
	}
	slack := c.slack()
	shrinks := func(i int) bool { return limits[i]+slack < targets[i].Limit.Max() }
	sort.SliceStable(order, func(a, b int) bool {
		return shrinks(order[a]) && !shrinks(order[b])
	})
	cut := len(order)
	partial := false
	if c.Faults.Fire(faults.SiteMemBalance) {
		cut = (len(order) + 1) / 2
		partial = true
	}

	out := make([]Applied, 0, cut)
	clamped := uint64(0)
	for _, i := range order[:cut] {
		want := limits[i] + slack
		got := targets[i].Limit.SetMaxClamped(want)
		if got > want {
			clamped++
		}
		out = append(out, Applied{ID: targets[i].ID, Trigger: limits[i], Max: got})
	}
	c.rounds++

	if c.Scope != nil {
		c.Scope.Counter(telemetry.MMemBalRounds).Inc()
		c.Scope.Gauge(telemetry.MMemBalBudget).Set(c.Budget)
		extra := uint64(0)
		if c.Budget > sumLive {
			extra = c.Budget - sumLive
		}
		c.Scope.Gauge(telemetry.MMemBalExtra).Set(extra)
		if clamped > 0 {
			c.Scope.Counter(telemetry.MMemBalClamped).Add(clamped)
		}
		if partial {
			c.Scope.Counter(telemetry.MMemBalPartial).Inc()
		}
	}
	if c.Sink != nil {
		detail := ""
		if partial {
			detail = "partial"
		}
		c.Sink.Emit(telemetry.Event{
			Kind: telemetry.EvMemRebalance,
			A:    c.Budget, B: uint64(len(out)), Detail: detail,
		})
	}
	return out
}
