package membal

import (
	"math"
	"testing"

	"repro/internal/faults"
	"repro/internal/memlimit"
	"repro/internal/telemetry"
)

func sum(xs []uint64) uint64 {
	var t uint64
	for _, x := range xs {
		t += x
	}
	return t
}

// TestLimitsTable drives the square-root rule through its fixtures: the
// edge cases the controller meets in production (idle fleet, single
// tenant, overcommitted budget, binding ceilings) plus the proportionality
// property the rule is named for.
func TestLimitsTable(t *testing.T) {
	const M = 1 << 20
	cases := []struct {
		name    string
		budget  uint64
		samples []Sample
		want    []uint64 // exact expected limits; nil to use check instead
		check   func(t *testing.T, got []uint64)
	}{
		{
			name:    "no heaps",
			budget:  64 * M,
			samples: nil,
			want:    nil,
		},
		{
			name:   "single tenant gets the whole budget",
			budget: 64 * M,
			samples: []Sample{
				{Live: 4 * M, Rate: 100},
			},
			want: []uint64{64 * M},
		},
		{
			name:   "zero rates split the surplus evenly",
			budget: 12 * M,
			samples: []Sample{
				{Live: 2 * M}, {Live: 2 * M}, {Live: 2 * M},
			},
			want: []uint64{4 * M, 4 * M, 4 * M},
		},
		{
			name:   "zero-rate heap is squeezed to its base",
			budget: 12 * M,
			samples: []Sample{
				{Live: 2 * M, Rate: 100},
				{Live: 2 * M, Rate: 0}, // idle: weight √(live×0) = 0
			},
			check: func(t *testing.T, got []uint64) {
				if got[1] != 2*M {
					t.Errorf("idle heap got %d, want its live size %d", got[1], 2*M)
				}
				if got[0] != 10*M {
					t.Errorf("busy heap got %d, want the rest %d", got[0], 10*M)
				}
			},
		},
		{
			name:   "budget smaller than sum of floors keeps every floor",
			budget: 1 * M,
			samples: []Sample{
				{Live: 100, Floor: 1 * M, Rate: 50},
				{Live: 100, Floor: 1 * M, Rate: 50},
				{Live: 100, Floor: 1 * M},
			},
			want: []uint64{1 * M, 1 * M, 1 * M}, // overcommitted: floors win
		},
		{
			name:   "budget smaller than sum of live never cuts live",
			budget: 4 * M,
			samples: []Sample{
				{Live: 3 * M, Rate: 10},
				{Live: 3 * M, Rate: 1000},
			},
			want: []uint64{3 * M, 3 * M},
		},
		{
			name:   "floor lifts a small heap above its live size",
			budget: 8 * M,
			samples: []Sample{
				{Live: 64, Floor: 1 * M},
				{Live: 6 * M, Rate: 500},
			},
			check: func(t *testing.T, got []uint64) {
				if got[0] < 1*M {
					t.Errorf("floored heap got %d, want >= %d", got[0], 1*M)
				}
				if s := sum(got); s != 8*M {
					t.Errorf("sum %d, want budget %d", s, 8*M)
				}
			},
		},
		{
			name:   "ceiling binds and the excess spills to the other heap",
			budget: 16 * M,
			samples: []Sample{
				{Live: 2 * M, Rate: 100, Ceil: 3 * M},
				{Live: 2 * M, Rate: 100},
			},
			want: []uint64{3 * M, 13 * M},
		},
		{
			name:   "all ceilings bind below the budget",
			budget: 64 * M,
			samples: []Sample{
				{Live: 1 * M, Rate: 10, Ceil: 2 * M},
				{Live: 1 * M, Rate: 10, Ceil: 2 * M},
			},
			want: []uint64{2 * M, 2 * M}, // rest of the budget is unassignable
		},
		{
			name:   "equal heaps split equally",
			budget: 20 * M,
			samples: []Sample{
				{Live: 2 * M, Rate: 77},
				{Live: 2 * M, Rate: 77},
			},
			want: []uint64{10 * M, 10 * M},
		},
		{
			name:   "conservation with mixed weights",
			budget: 100 * M,
			samples: []Sample{
				{Live: 1 * M, Rate: 3},
				{Live: 7 * M, Rate: 900},
				{Live: 2 * M, Rate: 0},
				{Live: 11 * M, Rate: 42},
			},
			check: func(t *testing.T, got []uint64) {
				if s := sum(got); s != 100*M {
					t.Errorf("sum %d, want budget %d", s, 100*M)
				}
				for i, g := range got {
					if g < 1*M && g < 100*M/8 {
						t.Errorf("heap %d got %d, implausibly small", i, g)
					}
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Limits(tc.budget, tc.samples)
			if tc.check != nil {
				tc.check(t, got)
				return
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %d limits, want %d", len(got), len(tc.want))
			}
			for i := range tc.want {
				if got[i] != tc.want[i] {
					t.Errorf("heap %d: got %d, want %d (all: %v)", i, got[i], tc.want[i], got)
				}
			}
		})
	}
}

// TestLimitsSqrtProportional checks the defining property: surplus
// headroom above live is split in proportion to √(live × rate).
func TestLimitsSqrtProportional(t *testing.T) {
	const M = 1 << 20
	samples := []Sample{
		{Live: 1 * M, Rate: 100},
		{Live: 4 * M, Rate: 100}, // √(4·r) = 2×√(1·r): twice the headroom
	}
	got := Limits(15*M, samples)
	e0 := float64(got[0] - samples[0].Live)
	e1 := float64(got[1] - samples[1].Live)
	if ratio := e1 / e0; math.Abs(ratio-2) > 0.01 {
		t.Errorf("headroom ratio %.4f, want 2 (sqrt rule): extras %v/%v", ratio, e0, e1)
	}
}

// TestLimitsNeverBelowBase: no matter the budget, a heap's limit is never
// below max(Live, Floor) capped by Ceil — the controller must never hand a
// process a limit its own live data already violates.
func TestLimitsNeverBelowBase(t *testing.T) {
	samples := []Sample{
		{Live: 1 << 20, Floor: 256 << 10, Rate: 17},
		{Live: 10 << 20, Floor: 256 << 10, Rate: 0},
		{Live: 0, Floor: 256 << 10, Rate: 5},
	}
	for _, budget := range []uint64{0, 1, 256 << 10, 1 << 20, 11 << 20, 1 << 30} {
		got := Limits(budget, samples)
		for i, s := range samples {
			base := s.Live
			if s.Floor > base {
				base = s.Floor
			}
			if got[i] < base {
				t.Errorf("budget %d: heap %d got %d < base %d", budget, i, got[i], base)
			}
		}
	}
}

func TestSqrtExtra(t *testing.T) {
	// Unknown rate degrades to the classic 2× trigger (extra == live).
	if got := SqrtExtra(1<<20, 0, 1<<26); got != 1<<20 {
		t.Errorf("zero rate: extra %d, want live %d", got, 1<<20)
	}
	if got := SqrtExtra(1<<20, -1, 1<<26); got != 1<<20 {
		t.Errorf("negative rate: extra %d, want live %d", got, 1<<20)
	}
	if got := SqrtExtra(1<<20, 0.5, 0); got != 1<<20 {
		t.Errorf("zero horizon: extra %d, want live %d", got, 1<<20)
	}
	if got := SqrtExtra(0, 0.5, 1<<26); got != 0 {
		t.Errorf("zero live: extra %d, want 0", got)
	}
	// √(1 MiB × 1 B/cycle × 64 Mi cycles) = √(2^20 · 2^26) = 2^23.
	if got := SqrtExtra(1<<20, 1, 1<<26); got != 1<<23 {
		t.Errorf("extra %d, want %d", got, 1<<23)
	}
	// Quadrupling the rate doubles the headroom.
	a := SqrtExtra(1<<20, 1, 1<<26)
	b := SqrtExtra(1<<20, 4, 1<<26)
	if b != 2*a {
		t.Errorf("4x rate: extra %d, want 2x of %d", b, a)
	}
}

// harness builds a root + n child limits for controller tests.
func harness(t *testing.T, n int, childMax uint64) (*memlimit.Limit, []*memlimit.Limit) {
	t.Helper()
	root := memlimit.NewRoot("root", 1<<30)
	kids := make([]*memlimit.Limit, n)
	for i := range kids {
		l, err := root.NewChild("t", childMax, false)
		if err != nil {
			t.Fatal(err)
		}
		kids[i] = l
	}
	return root, kids
}

func TestControllerRebalance(t *testing.T) {
	const M = 1 << 20
	_, kids := harness(t, 3, 4*M)
	c := &Controller{Budget: 24 * M}

	mkTargets := func(allocs [3]uint64) []Target {
		ts := make([]Target, 3)
		for i := range ts {
			ts[i] = Target{ID: int32(i + 1), Limit: kids[i], Live: 1 * M, AllocBytes: allocs[i]}
		}
		return ts
	}

	// Round 1: no history, even split of the surplus.
	out := c.Rebalance(1000, mkTargets([3]uint64{0, 0, 0}))
	if len(out) != 3 {
		t.Fatalf("round 1 applied %d, want 3", len(out))
	}
	if c.Rounds() != 1 {
		t.Fatalf("rounds %d, want 1", c.Rounds())
	}
	for _, a := range out {
		if a.Trigger != 8*M {
			t.Errorf("round 1: tenant %d trigger %d, want even split %d", a.ID, a.Trigger, 8*M)
		}
	}

	// Round 2: tenant 3 allocated heavily; its limit must now dominate.
	out = c.Rebalance(2000, mkTargets([3]uint64{1000, 1000, 10 * M}))
	byID := map[int32]Applied{}
	for _, a := range out {
		byID[a.ID] = a
	}
	if byID[3].Trigger <= byID[1].Trigger {
		t.Errorf("hot tenant trigger %d not above cold %d", byID[3].Trigger, byID[1].Trigger)
	}
	// The memlimit maxima were actually installed (trigger + slack).
	if got := kids[2].Max(); got != byID[3].Trigger+c.slack() {
		t.Errorf("installed max %d, want trigger+slack %d", got, byID[3].Trigger+c.slack())
	}

	// A vanished tenant's rate state is pruned.
	out = c.Rebalance(3000, mkTargets([3]uint64{2000, 2000, 20 * M})[:2])
	if len(out) != 2 {
		t.Fatalf("round 3 applied %d, want 2", len(out))
	}
	if _, ok := c.prev[3]; ok {
		t.Error("reclaimed tenant's rate state not pruned")
	}
}

// TestControllerClampsToUse: a shrink below a limit's in-flight use clamps
// up to the use instead of failing, and the clamp is counted.
func TestControllerClampsToUse(t *testing.T) {
	const M = 1 << 20
	_, kids := harness(t, 2, 8*M)
	if err := kids[0].Debit(6 * M); err != nil { // in-flight use above any fair share
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	c := &Controller{Budget: 4 * M, Scope: reg.Kernel()}
	out := c.Rebalance(1000, []Target{
		{ID: 1, Limit: kids[0], Live: 64, AllocBytes: 0},
		{ID: 2, Limit: kids[1], Live: 64, AllocBytes: 0},
	})
	var got Applied
	for _, a := range out {
		if a.ID == 1 {
			got = a
		}
	}
	if got.Max < 6*M {
		t.Errorf("clamped max %d below in-flight use %d", got.Max, 6*M)
	}
	if kids[0].Max() < kids[0].Use() {
		t.Errorf("limit left with max %d < use %d", kids[0].Max(), kids[0].Use())
	}
	if n := reg.Kernel().Counter(telemetry.MMemBalClamped).Value(); n == 0 {
		t.Error("clamp not counted in membal.clamped")
	}
}

// TestControllerFaultCutsRound: with SiteMemBalance armed at round 1, only
// a prefix of the updates is applied, the round is flagged partial, and the
// next (unfaulted) round re-converges every limit.
func TestControllerFaultCutsRound(t *testing.T) {
	const M = 1 << 20
	_, kids := harness(t, 4, 4*M)
	plan, err := faults.ParsePlan("seed=1,membal.rebalance=@1")
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	c := &Controller{Budget: 32 * M, Faults: faults.NewPlane(plan), Scope: reg.Kernel()}
	targets := make([]Target, 4)
	for i := range targets {
		targets[i] = Target{ID: int32(i + 1), Limit: kids[i], Live: 1 * M}
	}

	out := c.Rebalance(1000, targets)
	if len(out) != 2 {
		t.Fatalf("faulted round applied %d updates, want prefix of 2", len(out))
	}
	if n := reg.Kernel().Counter(telemetry.MMemBalPartial).Value(); n != 1 {
		t.Errorf("membal.partial = %d, want 1", n)
	}
	// Invariant even mid-crash: no limit is left with use > max.
	for i, l := range kids {
		if l.Use() > l.Max() {
			t.Errorf("tenant %d: use %d > max %d after partial round", i, l.Use(), l.Max())
		}
	}

	// Site was @1 (one-shot): the next round applies everything.
	out = c.Rebalance(2000, targets)
	if len(out) != 4 {
		t.Fatalf("recovery round applied %d, want 4", len(out))
	}
	for i, l := range kids {
		if l.Max() != 8*M+c.slack() {
			t.Errorf("tenant %d: max %d after recovery, want %d", i, l.Max(), 8*M+c.slack())
		}
	}
}

// TestControllerRateEWMA: the rate estimate smooths instantaneous readings
// instead of tracking them exactly.
func TestControllerRateEWMA(t *testing.T) {
	const M = 1 << 20
	_, kids := harness(t, 1, 4*M)
	c := &Controller{Budget: 64 * M}
	mk := func(alloc uint64) []Target {
		return []Target{{ID: 1, Limit: kids[0], Live: M, AllocBytes: alloc}}
	}
	c.Rebalance(1000, mk(0))
	c.Rebalance(2000, mk(1000)) // inst rate 1.0 -> EWMA 0.5
	if r := c.prev[1].rate; math.Abs(r-0.5) > 1e-9 {
		t.Errorf("rate after first interval %v, want 0.5", r)
	}
	c.Rebalance(3000, mk(1000)) // inst 0 -> EWMA 0.25
	if r := c.prev[1].rate; math.Abs(r-0.25) > 1e-9 {
		t.Errorf("rate after idle interval %v, want 0.25", r)
	}
	// A clock that did not advance keeps the previous estimate.
	c.Rebalance(3000, mk(5000))
	if r := c.prev[1].rate; math.Abs(r-0.25) > 1e-9 {
		t.Errorf("rate after zero-width interval %v, want unchanged 0.25", r)
	}
}

// TestControllerEmitsEvent: each round lands one EvMemRebalance in the sink.
func TestControllerEmitsEvent(t *testing.T) {
	const M = 1 << 20
	_, kids := harness(t, 1, 4*M)
	hub := telemetry.NewHub(16)
	hub.SetTracing(true)
	c := &Controller{Budget: 8 * M, Sink: hub}
	c.Rebalance(1000, []Target{{ID: 1, Limit: kids[0], Live: M}})
	evs := hub.Trace.Snapshot()
	found := false
	for _, e := range evs {
		if e.Kind == telemetry.EvMemRebalance {
			found = true
			if e.A != 8*M || e.B != 1 {
				t.Errorf("event payload A=%d B=%d, want budget %d and 1 update", e.A, e.B, 8*M)
			}
		}
	}
	if !found {
		t.Fatalf("no EvMemRebalance in %d events", len(evs))
	}
}
