// Package loader implements kvm class loaders and namespaces.
//
// Separate namespaces are provided through class loaders, exactly as in
// Java (paper §3.1): a class loader is a name server for classes. Each
// KaffeOS process has its own loader; loaders delegate the loading of
// shared classes to a single shared system loader, so all shared objects
// have well-understood types for all user processes.
//
// Classes from identical definitions loaded by different process loaders
// are *different* runtime classes ("reloaded classes", §3.2), each with its
// own statics and its own copy of the code — reloaded classes do not share
// text. Shared classes exist once; their statics live on the kernel heap
// and their text is shared by every process.
package loader

import (
	"fmt"
	"sort"

	"repro/internal/bytecode"
	"repro/internal/heap"
	"repro/internal/object"
)

// Loader is one namespace.
type Loader struct {
	Tag string
	// Delegate is consulted first for every lookup (the shared system
	// loader); nil for the shared loader itself.
	Delegate *Loader
	// Heap receives statics objects and other class metadata allocations.
	Heap *Heap

	classes map[string]*object.Class
	natives map[string]any
	kernel  map[string]bool

	// clinits are <clinit> methods awaiting execution by the VM layer
	// (the loader cannot run bytecode itself).
	clinits []*object.Method
}

// Heap aliases heap.Heap to keep the public field name short.
type Heap = heap.Heap

// NewShared creates the shared system loader, whose metadata lives on the
// kernel heap.
func NewShared(kernelHeap *heap.Heap) *Loader {
	return &Loader{
		Tag:     "shared",
		Heap:    kernelHeap,
		classes: make(map[string]*object.Class),
		natives: make(map[string]any),
		kernel:  make(map[string]bool),
	}
}

// NewProcess creates a process loader delegating to shared. Statics of
// reloaded classes are charged to the process heap h.
func NewProcess(tag string, h *heap.Heap, shared *Loader) *Loader {
	return &Loader{
		Tag:      tag,
		Delegate: shared,
		Heap:     h,
		classes:  make(map[string]*object.Class),
		natives:  make(map[string]any),
		kernel:   make(map[string]bool),
	}
}

// RegisterNatives makes native implementations available to classes defined
// later. kernelKeys marks natives that run in kernel mode.
func (l *Loader) RegisterNatives(impls map[string]any, kernelKeys map[string]bool) {
	for k, v := range impls {
		l.natives[k] = v
	}
	for k, v := range kernelKeys {
		if v {
			l.kernel[k] = true
		}
	}
}

// Class resolves a class by name, delegating to the shared loader first
// (so a process cannot shadow a shared class), then checking this
// namespace, then synthesizing array classes on demand.
func (l *Loader) Class(name string) (*object.Class, error) {
	if c, ok := l.lookup(name); ok {
		return c, nil
	}
	if len(name) > 0 && name[0] == '[' {
		// Re-run synthesis for the detailed error.
		return l.arrayClass(name)
	}
	return nil, fmt.Errorf("loader %s: class %q not found", l.Tag, name)
}

// lookup resolves name without allocating a not-found error. Every link
// of a process-local class misses the delegate first, so the miss path
// runs once per symbolic reference per define — it must not pay for
// error formatting nobody reads.
func (l *Loader) lookup(name string) (*object.Class, bool) {
	if l.Delegate != nil {
		if c, ok := l.Delegate.lookup(name); ok {
			return c, true
		}
	}
	if c, ok := l.classes[name]; ok {
		return c, true
	}
	if len(name) > 0 && name[0] == '[' {
		if c, err := l.arrayClass(name); err == nil {
			return c, true
		}
	}
	return nil, false
}

// Defined reports whether name is defined in this namespace directly.
func (l *Loader) Defined(name string) bool {
	_, ok := l.classes[name]
	return ok
}

// Classes returns this namespace's directly defined classes, sorted by name.
func (l *Loader) Classes() []*object.Class {
	out := make([]*object.Class, 0, len(l.classes))
	for _, c := range l.classes {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (l *Loader) arrayClass(name string) (*object.Class, error) {
	desc, err := bytecode.ParseDesc(name)
	if err != nil || desc.Kind != bytecode.DescArray {
		return nil, fmt.Errorf("loader %s: bad array class %q", l.Tag, name)
	}
	elem, err := bytecode.ParseDesc(desc.Elem)
	if err != nil {
		return nil, err
	}
	var elemClass *object.Class
	switch elem.Kind {
	case bytecode.DescRef:
		elemClass, err = l.Class(elem.ClassName)
	case bytecode.DescArray:
		elemClass, err = l.Class(desc.Elem)
	}
	if err != nil {
		return nil, err
	}
	root, err := l.Class("java/lang/Object")
	if err != nil {
		return nil, fmt.Errorf("loader %s: array class before java/lang/Object: %w", l.Tag, err)
	}
	elemDesc, _ := bytecode.ParseDesc(desc.Elem)
	c := object.NewArrayClass(name, elemDesc, elemClass, root, l.Tag)
	l.classes[name] = c
	return c, nil
}

// DefineModule verifies and defines every class in m into this namespace,
// linking constant pools and building vtables. Process loaders clone
// method code (reloaded classes do not share text).
func (l *Loader) DefineModule(m *bytecode.Module) error {
	return l.define(m, true, false)
}

// DefinePreverified is DefineModule without the bytecode verification
// pass. Verification is a property of the module's content, not of the
// namespace, so a caller holding independent proof that this exact
// content already verified — the shared code cache's content-addressed
// artifact, whose key is the module hash — may skip re-proving it per
// process. Statics allocation and clinit queueing still happen.
func (l *Loader) DefinePreverified(m *bytecode.Module) error {
	return l.define(m, true, true)
}

// DefineTemplate defines m's classes for a process forked from a process
// template. The module was verified when the template's origin loaded it,
// the origin already ran its <clinit>s (their effects arrive through the
// statics objects copied out of the template heap), and the statics
// objects themselves are bound by the fork after the heap copy — so
// verification, statics allocation, and clinit queueing are all skipped.
// Until the fork binds Statics, the namespace's classes must not execute.
func (l *Loader) DefineTemplate(m *bytecode.Module) error {
	return l.define(m, false, true)
}

func (l *Loader) define(m *bytecode.Module, fresh, preverified bool) error {
	if fresh && !preverified {
		if err := bytecode.VerifyModule(m); err != nil {
			return fmt.Errorf("loader %s: %w", l.Tag, err)
		}
	}
	defs, err := l.topoOrder(m)
	if err != nil {
		return err
	}
	shared := l.Delegate == nil
	var created []*object.Class
	for _, def := range defs {
		if _, dup := l.classes[def.Name]; dup {
			return fmt.Errorf("loader %s: class %q already defined", l.Tag, def.Name)
		}
		if l.Delegate != nil && l.Delegate.Defined(def.Name) {
			return fmt.Errorf("loader %s: class %q would shadow a shared class", l.Tag, def.Name)
		}
		var super *object.Class
		if def.Super != "" {
			super, err = l.Class(def.Super)
			if err != nil {
				return fmt.Errorf("loader %s: class %q: super: %w", l.Tag, def.Name, err)
			}
		}
		c, err := object.NewClass(def, super, l.Tag, shared)
		if err != nil {
			return fmt.Errorf("loader %s: %w", l.Tag, err)
		}
		for _, md := range def.Methods {
			key := object.NativeKey(def.Name, md.Name, md.Sig)
			native := l.natives[key]
			if native == nil && l.Delegate != nil {
				// Process loaders may also use natives registered with the
				// shared loader (library code reloaded per process).
				native = l.Delegate.natives[key]
			}
			if native == nil && md.Code == nil {
				return fmt.Errorf("loader %s: method %s has no code and no native", l.Tag, key)
			}
			eff := md
			if !shared && md.Code != nil {
				clone := *md
				clone.Code = md.Code.Clone()
				eff = &clone
			}
			meth, err := c.AddMethod(eff, native)
			if err != nil {
				return fmt.Errorf("loader %s: %w", l.Tag, err)
			}
			if l.kernel[key] || (l.Delegate != nil && l.Delegate.kernel[key]) {
				meth.Kernel = true
			}
		}
		c.BuildVTable()
		l.classes[def.Name] = c
		created = append(created, c)
	}
	// Link after all classes of the module exist (mutual references).
	for _, c := range created {
		if err := l.linkClass(c); err != nil {
			return err
		}
	}
	if !fresh {
		return nil
	}
	// Allocate statics and queue <clinit>s.
	for _, c := range created {
		if c.StaticsClass != nil {
			st, err := l.Heap.Alloc(c.StaticsClass)
			if err != nil {
				return fmt.Errorf("loader %s: statics of %s: %w", l.Tag, c.Name, err)
			}
			c.Statics = st
		}
		if m, ok := c.DeclaredMethod("<clinit>()V"); ok {
			l.clinits = append(l.clinits, m)
		}
	}
	return nil
}

// PendingClinits returns and clears the queue of class initializers the VM
// must run (in definition order) before the module's code is used.
func (l *Loader) PendingClinits() []*object.Method {
	out := l.clinits
	l.clinits = nil
	return out
}

// topoOrder sorts the module's classes so that superclasses are defined
// before subclasses. Classes whose supers live outside the module resolve
// through the namespace as usual.
func (l *Loader) topoOrder(m *bytecode.Module) ([]*bytecode.ClassDef, error) {
	inModule := make(map[string]*bytecode.ClassDef, len(m.Classes))
	for _, c := range m.Classes {
		inModule[c.Name] = c
	}
	var out []*bytecode.ClassDef
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(c *bytecode.ClassDef) error
	visit = func(c *bytecode.ClassDef) error {
		switch state[c.Name] {
		case 1:
			return fmt.Errorf("loader %s: inheritance cycle through %q", l.Tag, c.Name)
		case 2:
			return nil
		}
		state[c.Name] = 1
		if sup, ok := inModule[c.Super]; ok {
			if err := visit(sup); err != nil {
				return err
			}
		}
		state[c.Name] = 2
		out = append(out, c)
		return nil
	}
	for _, c := range m.Classes {
		if err := visit(c); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// linkClass resolves every method's constant pool and handler types.
func (l *Loader) linkClass(c *object.Class) error {
	for _, meth := range c.Methods {
		if meth.Code == nil {
			continue
		}
		links := make([]object.Linked, len(meth.Code.Consts))
		for i := range meth.Code.Consts {
			k := &meth.Code.Consts[i]
			switch k.Kind {
			case bytecode.KindClass:
				cl, err := l.Class(k.Class)
				if err != nil {
					return fmt.Errorf("link %s: %w", meth, err)
				}
				links[i].Class = cl
			case bytecode.KindField:
				cl, err := l.Class(k.Class)
				if err != nil {
					return fmt.Errorf("link %s: %w", meth, err)
				}
				fl, ok := cl.FieldByName(k.Name)
				if !ok {
					fl, ok = cl.StaticByName(k.Name)
				}
				if !ok {
					return fmt.Errorf("link %s: no field %s.%s", meth, k.Class, k.Name)
				}
				links[i].Class = cl
				links[i].Field = fl
			case bytecode.KindMethod:
				cl, err := l.Class(k.Class)
				if err != nil {
					return fmt.Errorf("link %s: %w", meth, err)
				}
				mm, ok := cl.MethodByKey(k.Name + k.Sig)
				if !ok {
					return fmt.Errorf("link %s: no method %s.%s%s", meth, k.Class, k.Name, k.Sig)
				}
				links[i].Class = cl
				links[i].Method = mm
			}
		}
		meth.Links = links

		handlers := make([]*object.Class, len(meth.Code.Handlers))
		for i, h := range meth.Code.Handlers {
			if h.Type == "" {
				continue
			}
			cl, err := l.Class(h.Type)
			if err != nil {
				return fmt.Errorf("link %s: handler: %w", meth, err)
			}
			handlers[i] = cl
		}
		meth.HandlerClasses = handlers
	}
	return nil
}

// Unload drops every class defined by this namespace, so that a terminated
// process' class metadata becomes unreachable (KaffeOS added class
// unloading to Kaffe, §3.4). Statics objects die with the process heap.
func (l *Loader) Unload() {
	l.classes = make(map[string]*object.Class)
	l.clinits = nil
}

// StaticsRoots enumerates the statics objects of this namespace's classes,
// which are GC roots for the heap that holds them.
func (l *Loader) StaticsRoots(visit func(*object.Object)) {
	for _, c := range l.classes {
		if c.Statics != nil {
			visit(c.Statics)
		}
	}
}
