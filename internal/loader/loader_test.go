package loader

import (
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/heap"
	"repro/internal/memlimit"
	"repro/internal/object"
	"repro/internal/vmaddr"
)

const baseLib = `
.class java/lang/Object
.method <init> ()V
.locals 1
.stack 1
	return
.end
.end
.class java/lang/String
.end
`

type world struct {
	reg    *heap.Registry
	kernel *heap.Heap
	user   *heap.Heap
	shared *Loader
}

func newWorld(t *testing.T) *world {
	t.Helper()
	space := vmaddr.NewSpace()
	reg := heap.NewRegistry(space, heap.Config{})
	root := memlimit.NewRoot("root", memlimit.Unlimited)
	w := &world{reg: reg}
	w.kernel = reg.NewHeap(heap.KindKernel, "kernel", root.MustChild("kernel", memlimit.Unlimited, false))
	w.user = reg.NewHeap(heap.KindUser, "user", root.MustChild("user", memlimit.Unlimited, false))
	w.shared = NewShared(w.kernel)
	if err := w.shared.DefineModule(bytecode.MustAssemble(baseLib)); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSharedDefineAndLookup(t *testing.T) {
	w := newWorld(t)
	c, err := w.shared.Class("java/lang/Object")
	if err != nil {
		t.Fatal(err)
	}
	if !c.Shared || c.LoaderTag != "shared" {
		t.Errorf("class flags: shared=%v tag=%q", c.Shared, c.LoaderTag)
	}
	if _, err := w.shared.Class("no/Such"); err == nil {
		t.Error("lookup of missing class succeeded")
	}
}

func TestProcessDelegation(t *testing.T) {
	w := newWorld(t)
	p := NewProcess("p1", w.user, w.shared)
	c, err := p.Class("java/lang/Object")
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := w.shared.Class("java/lang/Object")
	if c != sc {
		t.Error("delegation returned a different class instance")
	}
}

func TestReloadedClassesAreDistinct(t *testing.T) {
	w := newWorld(t)
	mod := bytecode.MustAssemble(`
.class app/Counter
.static n I
.method bump ()I static
.locals 0
.stack 3
	getstatic app/Counter.n I
	iconst 1
	iadd
	putstatic app/Counter.n I
	getstatic app/Counter.n I
	ireturn
.end
.end`)
	p1 := NewProcess("p1", w.user, w.shared)
	p2 := NewProcess("p2", w.user, w.shared)
	if err := p1.DefineModule(mod); err != nil {
		t.Fatal(err)
	}
	if err := p2.DefineModule(mod); err != nil {
		t.Fatal(err)
	}
	c1, _ := p1.Class("app/Counter")
	c2, _ := p2.Class("app/Counter")
	if c1 == c2 {
		t.Fatal("reloaded classes are the same instance")
	}
	if c1.Statics == c2.Statics {
		t.Fatal("reloaded classes share statics")
	}
	m1, _ := c1.DeclaredMethod("bump()I")
	m2, _ := c2.DeclaredMethod("bump()I")
	if m1.Code == m2.Code {
		t.Fatal("reloaded classes share code (text must be copied)")
	}
	// The shared loader's single definition *would* share text.
	if err := w.shared.DefineModule(bytecode.MustAssemble(".class lib/Shared\n.end")); err != nil {
		t.Fatal(err)
	}
	s1, _ := p1.Class("lib/Shared")
	s2, _ := p2.Class("lib/Shared")
	if s1 != s2 {
		t.Fatal("shared class not shared")
	}
}

func TestShadowingSharedClassRejected(t *testing.T) {
	w := newWorld(t)
	p := NewProcess("p1", w.user, w.shared)
	err := p.DefineModule(bytecode.MustAssemble(".class java/lang/Object\n.end"))
	if err == nil || !strings.Contains(err.Error(), "shadow") {
		t.Fatalf("err = %v, want shadow rejection", err)
	}
}

func TestLinkedFieldAndMethodRefs(t *testing.T) {
	w := newWorld(t)
	p := NewProcess("p1", w.user, w.shared)
	err := p.DefineModule(bytecode.MustAssemble(`
.class app/A
.field v I
.static s I
.method get ()I
.locals 1
.stack 1
	aload 0
	getfield app/A.v I
	ireturn
.end
.method gets ()I static
.locals 0
.stack 1
	getstatic app/A.s I
	ireturn
.end
.end`))
	if err != nil {
		t.Fatal(err)
	}
	c, _ := p.Class("app/A")
	get, _ := c.DeclaredMethod("get()I")
	if len(get.Links) == 0 {
		t.Fatal("no links")
	}
	var sawField bool
	for _, l := range get.Links {
		if l.Field != nil {
			sawField = true
			if l.Field.Name != "v" || l.Field.Static {
				t.Errorf("linked field = %+v", l.Field)
			}
		}
	}
	if !sawField {
		t.Error("field ref not linked")
	}
	gets, _ := c.DeclaredMethod("gets()I")
	for _, l := range gets.Links {
		if l.Field != nil && !l.Field.Static {
			t.Error("static ref linked to instance field")
		}
	}
}

func TestLinkErrors(t *testing.T) {
	w := newWorld(t)
	cases := []struct{ name, src, wantSub string }{
		{"missing super", ".class a/B extends no/Super\n.end", "not found"},
		{"missing field", `.class a/B
.method m ()I static
.locals 0
.stack 1
	getstatic a/B.nope I
	ireturn
.end
.end`, "no field"},
		{"missing method", `.class a/B
.method m ()V static
.locals 0
.stack 1
	invokestatic a/B.nope ()V
	return
.end
.end`, "no method"},
		{"missing class ref", `.class a/B
.method m ()V static
.locals 1
.stack 1
	new x/Y
	pop
	return
.end
.end`, "not found"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := NewProcess("px", w.user, w.shared)
			err := p.DefineModule(bytecode.MustAssemble(c.src))
			if err == nil || !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("err = %v, want substring %q", err, c.wantSub)
			}
		})
	}
}

func TestInheritanceCycleRejected(t *testing.T) {
	w := newWorld(t)
	p := NewProcess("p1", w.user, w.shared)
	err := p.DefineModule(bytecode.MustAssemble(`
.class a/A extends a/B
.end
.class a/B extends a/A
.end`))
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v, want cycle", err)
	}
}

func TestTopoOrderWithinModule(t *testing.T) {
	w := newWorld(t)
	p := NewProcess("p1", w.user, w.shared)
	// Subclass listed before superclass.
	err := p.DefineModule(bytecode.MustAssemble(`
.class a/Sub extends a/Base
.end
.class a/Base
.end`))
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := p.Class("a/Sub")
	base, _ := p.Class("a/Base")
	if sub.Super != base {
		t.Error("super not resolved")
	}
}

func TestArrayClassesOnDemand(t *testing.T) {
	w := newWorld(t)
	p := NewProcess("p1", w.user, w.shared)
	ia, err := p.Class("[I")
	if err != nil {
		t.Fatal(err)
	}
	if !ia.IsArray || ia.ElemBytes != 4 {
		t.Errorf("array class = %+v", ia)
	}
	again, _ := p.Class("[I")
	if again != ia {
		t.Error("array class not cached")
	}
	oa, err := p.Class("[Ljava/lang/Object;")
	if err != nil {
		t.Fatal(err)
	}
	root, _ := p.Class("java/lang/Object")
	if oa.ElemClass != root {
		t.Error("ref array element class wrong")
	}
	aa, err := p.Class("[[I")
	if err != nil {
		t.Fatal(err)
	}
	inner, _ := p.Class("[I")
	if aa.ElemClass != inner {
		t.Error("nested array element class wrong")
	}
}

func TestStaticsAllocatedOnLoaderHeap(t *testing.T) {
	w := newWorld(t)
	p := NewProcess("p1", w.user, w.shared)
	if err := p.DefineModule(bytecode.MustAssemble(".class a/S\n.static x I\n.end")); err != nil {
		t.Fatal(err)
	}
	c, _ := p.Class("a/S")
	if c.Statics == nil {
		t.Fatal("no statics object")
	}
	if c.Statics.Heap != w.user.ID {
		t.Error("process statics not on process heap")
	}
	// Shared statics on kernel heap.
	if err := w.shared.DefineModule(bytecode.MustAssemble(".class lib/S\n.static x I\n.end")); err != nil {
		t.Fatal(err)
	}
	sc, _ := w.shared.Class("lib/S")
	if sc.Statics.Heap != w.kernel.ID {
		t.Error("shared statics not on kernel heap")
	}
}

func TestNativeRegistration(t *testing.T) {
	w := newWorld(t)
	p := NewProcess("p1", w.user, w.shared)
	fn := func() {}
	p.RegisterNatives(map[string]any{"a/N.go()V": fn}, map[string]bool{"a/N.go()V": true})
	if err := p.DefineModule(bytecode.MustAssemble(".class a/N\n.method go ()V static native\n.end\n.end")); err != nil {
		t.Fatal(err)
	}
	c, _ := p.Class("a/N")
	m, _ := c.DeclaredMethod("go()V")
	if m.Native == nil || !m.Kernel {
		t.Errorf("native = %v kernel = %v", m.Native, m.Kernel)
	}
	// A method without code or native is rejected.
	p2 := NewProcess("p2", w.user, w.shared)
	err := p2.DefineModule(bytecode.MustAssemble(".class a/M\n.method go ()V static native\n.end\n.end"))
	if err == nil || !strings.Contains(err.Error(), "no code and no native") {
		t.Fatalf("err = %v", err)
	}
}

func TestSharedNativesVisibleToProcessClasses(t *testing.T) {
	w := newWorld(t)
	fn := func() {}
	w.shared.RegisterNatives(map[string]any{"a/N.go()V": fn}, nil)
	p := NewProcess("p1", w.user, w.shared)
	if err := p.DefineModule(bytecode.MustAssemble(".class a/N\n.method go ()V static native\n.end\n.end")); err != nil {
		t.Fatal(err)
	}
	c, _ := p.Class("a/N")
	m, _ := c.DeclaredMethod("go()V")
	if m.Native == nil {
		t.Error("shared native not attached to reloaded class")
	}
}

func TestClinitQueued(t *testing.T) {
	w := newWorld(t)
	p := NewProcess("p1", w.user, w.shared)
	if err := p.DefineModule(bytecode.MustAssemble(`
.class a/C
.static x I
.method <clinit> ()V static
.locals 0
.stack 1
	iconst 42
	putstatic a/C.x I
	return
.end
.end`)); err != nil {
		t.Fatal(err)
	}
	cl := p.PendingClinits()
	if len(cl) != 1 || cl[0].Name != "<clinit>" {
		t.Fatalf("clinits = %v", cl)
	}
	if len(p.PendingClinits()) != 0 {
		t.Error("clinit queue not cleared")
	}
}

func TestHandlerClassesLinked(t *testing.T) {
	w := newWorld(t)
	if err := w.shared.DefineModule(bytecode.MustAssemble(`
.class java/lang/Throwable
.end`)); err != nil {
		t.Fatal(err)
	}
	p := NewProcess("p1", w.user, w.shared)
	if err := p.DefineModule(bytecode.MustAssemble(`
.class a/T
.method m ()V static
.locals 1
.stack 1
T0:	return
T1:	astore 0
	return
.catch java/lang/Throwable T0 T1 T1
.end
.end`)); err != nil {
		t.Fatal(err)
	}
	c, _ := p.Class("a/T")
	m, _ := c.DeclaredMethod("m()V")
	th, _ := p.Class("java/lang/Throwable")
	if len(m.HandlerClasses) != 1 || m.HandlerClasses[0] != th {
		t.Errorf("handler classes = %v", m.HandlerClasses)
	}
}

func TestUnload(t *testing.T) {
	w := newWorld(t)
	p := NewProcess("p1", w.user, w.shared)
	if err := p.DefineModule(bytecode.MustAssemble(".class a/C\n.static x I\n.end")); err != nil {
		t.Fatal(err)
	}
	var statics int
	p.StaticsRoots(func(o *object.Object) { statics++ })
	if statics != 1 {
		t.Fatalf("statics roots = %d", statics)
	}
	p.Unload()
	if p.Defined("a/C") {
		t.Error("class survived unload")
	}
	statics = 0
	p.StaticsRoots(func(o *object.Object) { statics++ })
	if statics != 0 {
		t.Error("statics roots survived unload")
	}
	// Shared classes still resolvable after a process unload.
	if _, err := p.Class("java/lang/Object"); err != nil {
		t.Error("delegation broken after unload")
	}
}

func TestClassesSorted(t *testing.T) {
	w := newWorld(t)
	p := NewProcess("p1", w.user, w.shared)
	if err := p.DefineModule(bytecode.MustAssemble(".class b/B\n.end\n.class a/A\n.end")); err != nil {
		t.Fatal(err)
	}
	cs := p.Classes()
	if len(cs) != 2 || cs[0].Name != "a/A" || cs[1].Name != "b/B" {
		t.Errorf("Classes() = %v", cs)
	}
}

func TestDuplicateDefineRejected(t *testing.T) {
	w := newWorld(t)
	p := NewProcess("p1", w.user, w.shared)
	mod := bytecode.MustAssemble(".class a/C\n.end")
	if err := p.DefineModule(mod); err != nil {
		t.Fatal(err)
	}
	if err := p.DefineModule(bytecode.MustAssemble(".class a/C\n.end")); err == nil {
		t.Error("duplicate definition accepted")
	}
}
