package heap

import (
	"errors"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/faults"
	"repro/internal/memlimit"
	"repro/internal/object"
	"repro/internal/vmaddr"
)

func identity(c *object.Class) (*object.Class, error) { return c, nil }

func TestCopyIntoClonesGraphAndAccounts(t *testing.T) {
	w := newWorld(t, Config{})
	src := w.userHeap(t, "src", memlimit.Unlimited)
	dst := w.userHeap(t, "dst", memlimit.Unlimited)

	a := w.alloc(t, src)
	b := w.alloc(t, src)
	c := w.alloc(t, src)
	a.Refs[0] = b  // a.next = b
	b.Refs[0] = c  // b.next = c
	c.Refs[1] = a  // c.other = a (cycle)
	a.Prims[0] = 7 // a.v
	b.Prims[0] = 8

	copies, err := src.CopyInto(dst, identity)
	if err != nil {
		t.Fatal(err)
	}
	if len(copies) != 3 {
		t.Fatalf("copied %d objects, want 3", len(copies))
	}
	ca, cb, cc := copies[a], copies[b], copies[c]
	if ca == nil || cb == nil || cc == nil {
		t.Fatal("missing copies")
	}
	if ca.Heap != dst.ID || cb.Heap != dst.ID || cc.Heap != dst.ID {
		t.Error("copies not on dst heap")
	}
	if ca.Refs[0] != cb || cb.Refs[0] != cc || cc.Refs[1] != ca {
		t.Error("graph shape not preserved (cycle broken or refs lead back to src)")
	}
	if ca.Prims[0] != 7 || cb.Prims[0] != 8 {
		t.Error("prims not copied")
	}
	if src.Bytes() != dst.Bytes() {
		t.Errorf("byte accounting differs: src=%d dst=%d", src.Bytes(), dst.Bytes())
	}
	// Mutating the copy must not touch the original.
	ca.Prims[0] = 99
	if a.Prims[0] != 7 {
		t.Error("copy aliases source prims")
	}
}

func TestCopyIntoPreservesArraysAndExtra(t *testing.T) {
	w := newWorld(t, Config{})
	src := w.userHeap(t, "src", memlimit.Unlimited)
	dst := w.userHeap(t, "dst", memlimit.Unlimited)

	desc, err := bytecode.ParseDesc("[I")
	if err != nil {
		t.Fatal(err)
	}
	intArr := object.NewArrayClass("[I", desc, nil, w.obj, "test")
	arr, err := src.AllocArray(intArr, 17)
	if err != nil {
		t.Fatal(err)
	}
	for i := range arr.Prims {
		arr.Prims[i] = int64(i * 3)
	}
	str, err := src.AllocExtra(w.node, 40)
	if err != nil {
		t.Fatal(err)
	}

	copies, err := src.CopyInto(dst, identity)
	if err != nil {
		t.Fatal(err)
	}
	carr := copies[arr]
	if carr == nil || carr.ArrayLen() != 17 {
		t.Fatalf("array copy wrong: %v", carr)
	}
	for i := range carr.Prims {
		if carr.Prims[i] != int64(i*3) {
			t.Fatalf("array elem %d = %d", i, carr.Prims[i])
		}
	}
	if cs := copies[str]; cs == nil || cs.SizeExtra != 40 {
		t.Fatalf("sized-extra copy wrong: %v", str)
	}
	if src.Bytes() != dst.Bytes() {
		t.Errorf("byte accounting differs: src=%d dst=%d", src.Bytes(), dst.Bytes())
	}
}

func TestCopyIntoExternalRefsBecomeCrossRefs(t *testing.T) {
	// A source object referencing a kernel object: the copy keeps the
	// reference, and the destination heap gains its own entry item on the
	// kernel heap (auditor symmetry for the clone).
	w := newWorld(t, Config{})
	src := w.userHeap(t, "src", memlimit.Unlimited)
	dst := w.userHeap(t, "dst", memlimit.Unlimited)

	k, err := w.kernel.Alloc(w.node)
	if err != nil {
		t.Fatal(err)
	}
	a := w.alloc(t, src)
	a.Refs[0] = k
	src.RecordCrossRef(k)

	copies, err := src.CopyInto(dst, identity)
	if err != nil {
		t.Fatal(err)
	}
	if copies[a].Refs[0] != k {
		t.Error("external reference rewritten instead of kept")
	}
	sv := snapshotView(t, w.reg, dst.ID)
	if sv.ExitsTo[w.kernel.ID] == 0 {
		t.Error("dst heap has no exit items to kernel after copy")
	}
}

func snapshotView(t *testing.T, reg *Registry, id vmaddr.HeapID) HeapView {
	t.Helper()
	for _, v := range reg.SnapshotAll(nil) {
		if v.ID == id {
			return v
		}
	}
	t.Fatalf("heap %d not in snapshot", id)
	return HeapView{}
}

func TestDestroyReturnsEveryCharge(t *testing.T) {
	w := newWorld(t, Config{})
	lim, err := w.root.NewChild("doomed", memlimit.Unlimited, false)
	if err != nil {
		t.Fatal(err)
	}
	h := w.reg.NewHeap(KindUser, "doomed", lim)
	for i := 0; i < 50; i++ {
		if _, err := h.Alloc(w.node); err != nil {
			t.Fatal(err)
		}
	}
	// Give it an exit item to the kernel too.
	k, err := w.kernel.Alloc(w.node)
	if err != nil {
		t.Fatal(err)
	}
	h.RecordCrossRef(k)
	if lim.Use() == 0 {
		t.Fatal("nothing charged before destroy")
	}
	if err := h.Destroy(); err != nil {
		t.Fatal(err)
	}
	if use := lim.Use(); use != 0 {
		t.Fatalf("destroy left %d bytes charged", use)
	}
	lim.Release() // panics if anything is left
	// The kernel-side entry item died with the destroyed heap's exit.
	kv := snapshotView(t, w.reg, w.kernel.ID)
	if n := len(kv.Entries); n != 0 {
		t.Errorf("kernel retains %d entry items for a destroyed heap", n)
	}
}

func TestDestroyRefusesLiveEntries(t *testing.T) {
	// A heap some other heap still points into must not be destroyable.
	w := newWorld(t, Config{})
	h := w.userHeap(t, "target", memlimit.Unlimited)
	o := w.alloc(t, h)
	w.kernel.RecordCrossRef(o)
	if err := h.Destroy(); err == nil {
		t.Fatal("destroy succeeded with a live entry item")
	}
}

func TestCopyIntoFaultUnwindsClean(t *testing.T) {
	// Seeded fork.copy fault mid-clone: CopyInto reports ErrCopyFault and
	// the caller's Destroy unwind leaves zero residual charges and pages.
	w := newWorld(t, Config{})
	plan, err := faults.ParsePlan("seed=1,fork.copy=@3")
	if err != nil {
		t.Fatal(err)
	}
	w.reg.Faults = faults.NewPlane(plan)
	src := w.userHeap(t, "src", memlimit.Unlimited)
	var objs []*object.Object
	for i := 0; i < 10; i++ {
		objs = append(objs, w.alloc(t, src))
	}
	for i := 1; i < 10; i++ {
		objs[i-1].Refs[0] = objs[i]
	}
	lim, err := w.root.NewChild("clone", memlimit.Unlimited, false)
	if err != nil {
		t.Fatal(err)
	}
	dst := w.reg.NewHeap(KindUser, "clone", lim)
	_, err = src.CopyInto(dst, identity)
	if !errors.Is(err, ErrCopyFault) {
		t.Fatalf("err = %v, want ErrCopyFault", err)
	}
	if err := dst.Destroy(); err != nil {
		t.Fatal(err)
	}
	if use := lim.Use(); use != 0 {
		t.Fatalf("aborted copy left %d bytes charged", use)
	}
	lim.Release()
	// Source untouched.
	if src.Bytes() == 0 {
		t.Error("source heap damaged by aborted copy")
	}
	for i := 1; i < 10; i++ {
		if objs[i-1].Refs[0] != objs[i] {
			t.Fatalf("source graph damaged at %d", i)
		}
	}
}
