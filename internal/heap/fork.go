package heap

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/faults"
	"repro/internal/object"
	"repro/internal/vmaddr"
)

// ErrCopyFault reports a checkpoint/fork copy aborted by the fork.copy
// fault site. The destination heap holds a half-built clone; the caller
// must Destroy it to unwind every charge and page.
var ErrCopyFault = errors.New("heap: fork copy aborted by fault injection")

// CopyInto deep-copies every live object of h into dst, the reverse of
// MergeInto: where a merge donates pages and identities, the copy mints
// fresh objects on dst's own chunks, charged in full to dst's memlimit.
// It is the engine of both checkpoint (warmed process heap → immutable
// template heap) and fork (template heap → new process heap).
//
// mapClass translates h's runtime classes into dst's namespace (identity
// for a checkpoint, clone-loader lookup for a fork); object layouts must
// be preserved so accounted sizes — and therefore heap bytes — come out
// identical. References between copied objects are remapped to the copies;
// references that leave h (kernel or shared heap objects) are kept and
// re-backed with dst's own exit items, so the auditor's entry/exit
// symmetry holds on the clone without inheriting anything from h. Mutable
// native payloads are deep-copied (object.DataCloner, StringBuilder
// buffers); immutable ones are shared.
//
// The caller must guarantee h is quiescent: no mutator is running over it
// (checkpoint requires a threadless source, fork reads a frozen template).
// Both heaps' gcMu are held for the whole copy, so collections and merges
// of either heap — including a concurrent Kill's reclamation of h —
// serialize deterministically before or after the copy; a reclaim that
// wins the race marks h dead and the copy refuses with ErrHeapDead.
//
// The fork.copy fault site fires once per object; when it trips, CopyInto
// stops before that object lands and returns ErrCopyFault with the
// partial copy map. On any error the caller owns the unwind (Destroy dst).
func (h *Heap) CopyInto(dst *Heap, mapClass func(*object.Class) (*object.Class, error)) (map[*object.Object]*object.Object, error) {
	if h == dst {
		return nil, fmt.Errorf("heap: copy of %q into itself", h.Name)
	}
	if h.reg != dst.reg {
		return nil, fmt.Errorf("heap: copy across registries")
	}

	first, second := h, dst
	if first.ID > second.ID {
		first, second = second, first
	}
	first.gcMu.Lock()
	defer first.gcMu.Unlock()
	second.gcMu.Lock()
	defer second.gcMu.Unlock()

	// Snapshot the source's object set under its mutex, then copy without
	// it: gcMu excludes collections/merges of h, and the quiescence
	// contract excludes mutators, so the snapshot stays exact.
	h.mu.Lock()
	if h.dead {
		h.mu.Unlock()
		return nil, ErrHeapDead
	}
	snap := make([]*object.Object, 0, len(h.objects))
	for o := range h.objects {
		snap = append(snap, o)
	}
	h.mu.Unlock()
	// Address order makes the copy — allocation order, fault-site hit
	// numbering, and therefore the @N crash sweep — deterministic.
	sort.Slice(snap, func(a, b int) bool { return snap[a].Addr < snap[b].Addr })

	copies := make(map[*object.Object]*object.Object, len(snap))
	for _, o := range snap {
		if h.reg.Faults.Fire(faults.SiteForkCopy) {
			return copies, ErrCopyFault
		}
		c, err := mapClass(o.Class)
		if err != nil {
			return copies, err
		}
		var cp *object.Object
		if o.IsArray() {
			cp, err = dst.AllocArray(c, o.ArrayLen())
		} else {
			cp, err = dst.AllocExtra(c, uint64(o.SizeExtra))
		}
		if err != nil {
			return copies, err
		}
		copy(cp.Prims, o.Prims)
		cp.Data = cloneData(o.Data)
		copies[o] = cp
	}

	// Second pass: remap references. Targets inside h become the copies;
	// external targets (kernel, shared) are kept and re-backed so dst pays
	// for its own exit items and the targets' entry counts cover dst.
	for _, o := range snap {
		cp := copies[o]
		for i, ref := range o.Refs {
			if ref == nil {
				continue
			}
			if nc, ok := copies[ref]; ok {
				cp.Refs[i] = nc
				continue
			}
			cp.Refs[i] = ref
			if err := dst.RecordCrossRef(ref); err != nil {
				return copies, err
			}
		}
	}
	return copies, nil
}

// cloneData deep-copies an object's native payload for CopyInto. Payloads
// the VM mutates in place must not be aliased between a template and its
// forks (or the forks would share state through the frozen template);
// immutable payloads — strings, Throwable messages — are shared.
func cloneData(d any) any {
	switch v := d.(type) {
	case nil:
		return nil
	case object.DataCloner:
		return v.CloneData()
	case *[]byte:
		// java/lang/StringBuilder's buffer.
		nb := append([]byte(nil), *v...)
		return &nb
	default:
		return d
	}
}

// Destroy unwinds a heap without merging it anywhere: every accounted
// byte, page, and exit item is released, leaving zero residual charge on
// the heap's memlimit. It serves template release and the fork.copy crash
// path (a half-built clone must vanish without trace); process heaps with
// a live owner go through MergeInto instead.
//
// Destroy refuses while other heaps still hold references into this one
// (live entry items): callers must ensure nothing references a template
// before releasing it — the audit's template ownership rule makes such a
// reference illegal in the first place.
func (h *Heap) Destroy() error {
	h.gcMu.Lock()
	defer h.gcMu.Unlock()
	reg := h.reg
	reg.crossMu.Lock()
	defer reg.crossMu.Unlock()
	h.mu.Lock()
	defer h.mu.Unlock()

	if h.dead {
		return ErrHeapDead
	}
	for _, e := range h.entries {
		if e.RefCount > 0 {
			return fmt.Errorf("heap: destroy of %q with live entry items", h.Name)
		}
	}
	if reg.Telemetry != nil {
		h.emitFastPathLocked()
	}

	// Dissolve this heap's exit items, releasing the targets' entry items —
	// the same step a merge performs, minus any transfer.
	for target, exit := range h.exits {
		delete(h.exits, target)
		h.limit.Credit(exitItemBytes)
		h.releaseEntryLocked(exit.Entry)
	}
	h.exitsTo = make(map[vmaddr.HeapID]int)
	for target := range h.entries {
		// Only zero-count stragglers can remain after the check above.
		delete(h.entries, target)
		h.limit.Credit(entryItemBytes)
	}

	h.flushLeaseLocked()
	if h.bytes > 0 {
		h.limit.Credit(h.bytes)
		h.bytes = 0
	}
	for o := range h.objects {
		o.Sever()
	}
	h.objects = make(map[*object.Object]struct{})

	for _, c := range h.free {
		reg.Space.Release(h.ID, c.base, c.pages)
		h.stats.PagesReleased += uint64(c.pages)
	}
	h.free = nil
	for _, c := range h.chunks {
		reg.Space.Release(h.ID, c.base, c.pages)
		h.stats.PagesReleased += uint64(c.pages)
	}
	h.chunks = nil
	h.cur = 0

	h.dead = true
	reg.mu.Lock()
	delete(reg.heaps, h.ID)
	reg.mu.Unlock()
	return nil
}
