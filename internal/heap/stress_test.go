package heap

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/memlimit"
	"repro/internal/object"
)

// TestConcurrentHeapStress exercises the phased locking under -race:
// 8 worker goroutines each own a user heap and concurrently allocate,
// record cross-heap references into the kernel heap, collect their own
// heap, and periodically merge it into the kernel ("kill") and start
// fresh — while a dedicated goroutine keeps collecting the kernel heap.
// This is exactly the topology the VM produces (user heaps reference only
// kernel/shared objects, never each other), with every pair of phases
// genuinely overlapping.
func TestConcurrentHeapStress(t *testing.T) {
	w := newWorld(t, Config{})

	// Pinned kernel targets: created before the workers start and rooted
	// for the whole test, so cross refs never target collectable objects.
	const nTargets = 16
	targets := make([]*object.Object, nTargets)
	for i := range targets {
		o, err := w.kernel.Alloc(w.node)
		if err != nil {
			t.Fatal(err)
		}
		targets[i] = o
	}
	kernelRoots := rootsOf(targets...)

	const workers = 8
	rounds := 60
	if testing.Short() {
		rounds = 15
	}

	stop := make(chan struct{})
	var collectorWG sync.WaitGroup
	collectorWG.Add(1)
	go func() {
		defer collectorWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			w.kernel.Collect(kernelRoots)
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(wi) + 1))
			lim := w.root.MustChild(fmt.Sprintf("w%d", wi), memlimit.Unlimited, false)
			h := w.reg.NewHeap(KindUser, fmt.Sprintf("w%d", wi), lim)
			var live []*object.Object
			for r := 0; r < rounds; r++ {
				// Allocate a batch, chaining some references.
				for i := 0; i < 64; i++ {
					o, err := h.Alloc(w.node)
					if err != nil {
						errs <- fmt.Errorf("worker %d alloc: %w", wi, err)
						return
					}
					if n := len(live); n > 0 && i%3 == 0 {
						o.SetRef(0, live[rng.Intn(n)])
					}
					if i%4 == 0 {
						live = append(live, o)
					}
					// Cross-heap reference into the kernel heap, racing the
					// kernel collector's windows.
					if i%8 == 0 {
						tgt := targets[rng.Intn(nTargets)]
						o.SetRef(1, tgt)
						if err := h.RecordCrossRef(tgt); err != nil {
							errs <- fmt.Errorf("worker %d crossref: %w", wi, err)
							return
						}
					}
				}
				// Drop some roots and collect our own heap, overlapping the
				// other workers' collections and the kernel's.
				if n := len(live); n > 8 {
					live = live[n/2:]
				}
				h.Collect(rootsOf(live...))
				// Occasionally kill: merge into the kernel and start over.
				if r%20 == 19 {
					if err := h.MergeInto(w.kernel); err != nil {
						errs <- fmt.Errorf("worker %d merge: %w", wi, err)
						return
					}
					live = live[:0]
					h = w.reg.NewHeap(KindUser, fmt.Sprintf("w%d.%d", wi, r), lim)
				}
			}
			// Final kill so the kernel collector can reclaim everything.
			if err := h.MergeInto(w.kernel); err != nil {
				errs <- fmt.Errorf("worker %d final merge: %w", wi, err)
			}
		}(wi)
	}
	wg.Wait()
	close(stop)
	collectorWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Everything merged and unrooted must be reclaimable by one last
	// kernel collection; only the pinned targets survive.
	w.kernel.Collect(kernelRoots)
	if n := w.kernel.Objects(); n != nTargets {
		t.Errorf("kernel holds %d objects after final collection, want %d", n, nTargets)
	}
	if got := len(w.reg.Heaps()); got != 1 {
		t.Errorf("%d live heaps at teardown, want 1 (kernel)", got)
	}
	if w.reg.MaxConcurrentGCs() == 0 {
		t.Error("overlap watermark never recorded a collection")
	}
}

// buildTwin populates n user heaps with a deterministic object graph:
// chains of varying length, some rooted, plus cross refs to pinned kernel
// objects. It returns the heaps and their root sets.
func buildTwin(t *testing.T, w *testWorld, n int) ([]*Heap, []RootFunc) {
	t.Helper()
	kernelPin := make([]*object.Object, 4)
	for i := range kernelPin {
		o, err := w.kernel.Alloc(w.node)
		if err != nil {
			t.Fatal(err)
		}
		kernelPin[i] = o
	}
	heaps := make([]*Heap, n)
	roots := make([]RootFunc, n)
	for i := 0; i < n; i++ {
		h := w.userHeap(t, fmt.Sprintf("h%d", i), memlimit.Unlimited)
		heaps[i] = h
		var keep []*object.Object
		total := 40 + (i*17)%23
		var prev *object.Object
		for j := 0; j < total; j++ {
			o := w.alloc(t, h)
			if j%3 == 0 && prev != nil {
				o.SetRef(0, prev)
			}
			if j%5 == 0 {
				keep = append(keep, o) // rooted chain head
			}
			if j%7 == 0 {
				tgt := kernelPin[(i+j)%len(kernelPin)]
				o.SetRef(1, tgt)
				if err := h.RecordCrossRef(tgt); err != nil {
					t.Fatal(err)
				}
			}
			prev = o
		}
		roots[i] = rootsOf(keep...)
	}
	return heaps, roots
}

// TestConcurrentCollectionDeterminism checks that CollectConcurrent frees
// exactly what serial collection frees: identical Swept/FreedBytes per
// heap and identical surviving byte counts, across identically built
// worlds.
func TestConcurrentCollectionDeterminism(t *testing.T) {
	const n = 12
	serialW := newWorld(t, Config{})
	concW := newWorld(t, Config{})
	serialHeaps, serialRoots := buildTwin(t, serialW, n)
	concHeaps, concRoots := buildTwin(t, concW, n)

	serialRes := make([]GCResult, n)
	for i, h := range serialHeaps {
		serialRes[i] = h.Collect(serialRoots[i])
	}
	reqs := make([]CollectRequest, n)
	for i, h := range concHeaps {
		reqs[i] = CollectRequest{Heap: h, Roots: concRoots[i]}
	}
	concRes := concW.reg.CollectConcurrent(reqs, 8)

	for i := 0; i < n; i++ {
		if serialRes[i].Swept != concRes[i].Swept || serialRes[i].FreedBytes != concRes[i].FreedBytes {
			t.Errorf("heap %d: serial swept/freed = %d/%d, concurrent = %d/%d",
				i, serialRes[i].Swept, serialRes[i].FreedBytes, concRes[i].Swept, concRes[i].FreedBytes)
		}
		if a, b := serialHeaps[i].Bytes(), concHeaps[i].Bytes(); a != b {
			t.Errorf("heap %d: surviving bytes %d (serial) != %d (concurrent)", i, a, b)
		}
	}
}
