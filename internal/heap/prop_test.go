package heap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/memlimit"
	"repro/internal/object"
)

// TestPropGCReachability: for random object graphs and random root sets,
// collection keeps exactly the reachable objects, and accounting matches
// the survivors (DESIGN.md invariant 2).
func TestPropGCReachability(t *testing.T) {
	f := func(seed int64, nObjs uint8, nEdges uint8, nRoots uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		w := newWorld(t, Config{})
		h := w.userHeap(t, "p", memlimit.Unlimited)

		n := int(nObjs%40) + 2
		objs := make([]*object.Object, n)
		for i := range objs {
			o, err := h.Alloc(w.node)
			if err != nil {
				return false
			}
			objs[i] = o
		}
		for e := 0; e < int(nEdges); e++ {
			from := objs[rng.Intn(n)]
			to := objs[rng.Intn(n)]
			from.SetRef(rng.Intn(2), to)
		}
		rootSet := make(map[*object.Object]bool)
		for r := 0; r < int(nRoots%5); r++ {
			rootSet[objs[rng.Intn(n)]] = true
		}

		// Model: compute reachability independently.
		expected := make(map[*object.Object]bool)
		var stack []*object.Object
		for o := range rootSet {
			if !expected[o] {
				expected[o] = true
				stack = append(stack, o)
			}
		}
		for len(stack) > 0 {
			o := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, ref := range o.Refs {
				if ref != nil && !expected[ref] {
					expected[ref] = true
					stack = append(stack, ref)
				}
			}
		}

		h.Collect(func(visit func(*object.Object)) {
			for o := range rootSet {
				visit(o)
			}
		})

		var liveBytes uint64
		for _, o := range objs {
			if expected[o] == o.Dead() {
				return false // survivor mismatch
			}
			if !o.Dead() {
				liveBytes += w.node.InstanceBytes
			}
		}
		if h.Bytes() != liveBytes || h.Limit().Use() != liveBytes {
			return false
		}
		if h.Objects() != len(expected) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropEntryExitConsistency: after arbitrary sequences of legal
// cross-heap reference creation and collection, every entry item's
// refcount equals the number of heaps holding a live exit item for its
// target (DESIGN.md invariant 4).
func TestPropEntryExitConsistency(t *testing.T) {
	f := func(seed int64, ops []uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		w := newWorld(t, Config{})
		// Kernel + two user heaps; kernel->user and user->kernel edges.
		h1 := w.userHeap(t, "p1", memlimit.Unlimited)
		h2 := w.userHeap(t, "p2", memlimit.Unlimited)
		heaps := []*Heap{w.kernel, h1, h2}

		// Each heap keeps a root object whose two slots we rewrite.
		roots := make([]*object.Object, 3)
		for i, h := range heaps {
			o, err := h.Alloc(w.node)
			if err != nil {
				return false
			}
			roots[i] = o
		}
		targets := make([][]*object.Object, 3)
		for i, h := range heaps {
			for k := 0; k < 4; k++ {
				o, err := h.Alloc(w.node)
				if err != nil {
					return false
				}
				targets[i] = append(targets[i], o)
			}
		}

		for _, op := range ops {
			kind := int(op) % 4
			switch kind {
			case 0: // kernel root references a user object
				ui := 1 + rng.Intn(2)
				tgt := targets[ui][rng.Intn(4)]
				roots[0].SetRef(rng.Intn(2), tgt)
				if err := w.kernel.RecordCrossRef(tgt); err != nil {
					return false
				}
			case 1: // user root references a kernel object
				ui := 1 + rng.Intn(2)
				tgt := targets[0][rng.Intn(4)]
				roots[ui].SetRef(rng.Intn(2), tgt)
				if err := heaps[ui].RecordCrossRef(tgt); err != nil {
					return false
				}
			case 2: // clear a random slot
				roots[rng.Intn(3)].SetRef(rng.Intn(2), nil)
			case 3: // collect a random heap with its root pinned
				i := rng.Intn(3)
				h := heaps[i]
				keep := append([]*object.Object{roots[i]}, targets[i]...)
				h.Collect(func(visit func(*object.Object)) {
					for _, o := range keep {
						visit(o)
					}
				})
			}
		}

		// Invariant: every entry item's refcount equals the number of
		// heaps whose exits map names its target.
		w.reg.crossMu.Lock()
		defer w.reg.crossMu.Unlock()
		for _, h := range heaps {
			for tgt, entry := range h.entries {
				count := 0
				for _, src := range heaps {
					if _, ok := src.exits[tgt]; ok {
						count++
					}
				}
				if entry.RefCount != count {
					return false
				}
			}
			// And every exit has a matching entry with positive count.
			for tgt, exit := range h.exits {
				th, ok := w.reg.Lookup(tgt.Heap)
				if !ok {
					return false
				}
				cur, ok := th.entries[tgt]
				if !ok || cur != exit.Entry || cur.RefCount <= 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropMergeConservation: merging random heaps into the kernel never
// loses or invents accounted bytes, and after a kernel collection with no
// roots everything is reclaimed (DESIGN.md invariant 5).
func TestPropMergeConservation(t *testing.T) {
	f := func(seed int64, sizes []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		w := newWorld(t, Config{})
		if len(sizes) > 6 {
			sizes = sizes[:6]
		}
		var heaps []*Heap
		var total uint64
		for i, s := range sizes {
			h := w.userHeap(t, string(rune('a'+i)), memlimit.Unlimited)
			n := int(s%20) + 1
			var prev *object.Object
			for k := 0; k < n; k++ {
				o, err := h.Alloc(w.node)
				if err != nil {
					return false
				}
				if prev != nil && rng.Intn(2) == 0 {
					o.SetRef(0, prev)
				}
				prev = o
			}
			total += h.Bytes()
			heaps = append(heaps, h)
		}
		for _, h := range heaps {
			if err := h.MergeInto(w.kernel); err != nil {
				return false
			}
		}
		if w.kernel.Bytes() != total {
			return false
		}
		w.kernel.Collect(nil)
		return w.kernel.Bytes() == 0 && w.kernel.Limit().Use() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
