package heap

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/memlimit"
	"repro/internal/object"
	"repro/internal/vmaddr"
)

// testWorld builds a registry with a kernel heap and node class fixtures.
type testWorld struct {
	reg    *Registry
	root   *memlimit.Limit
	kernel *Heap
	obj    *object.Class // java/lang/Object
	node   *object.Class // t/Node {next, other Lt/Node;, v I}
}

func newWorld(t *testing.T, cfg Config) *testWorld {
	t.Helper()
	space := vmaddr.NewSpace()
	reg := NewRegistry(space, cfg)
	rootLim := memlimit.NewRoot("root", memlimit.Unlimited)
	kernelLim := rootLim.MustChild("kernel", memlimit.Unlimited, false)
	w := &testWorld{
		reg:  reg,
		root: rootLim,
	}
	w.kernel = reg.NewHeap(KindKernel, "kernel", kernelLim)

	mod := bytecode.MustAssemble(`
.class java/lang/Object
.end
.class t/Node
.field next Lt/Node;
.field other Lt/Node;
.field v I
.end`)
	objDef, _ := mod.Class("java/lang/Object")
	var err error
	w.obj, err = object.NewClass(objDef, nil, "test", true)
	if err != nil {
		t.Fatal(err)
	}
	nodeDef, _ := mod.Class("t/Node")
	w.node, err = object.NewClass(nodeDef, w.obj, "test", false)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func (w *testWorld) userHeap(t *testing.T, name string, max uint64) *Heap {
	t.Helper()
	lim, err := w.root.NewChild(name, max, false)
	if err != nil {
		t.Fatal(err)
	}
	return w.reg.NewHeap(KindUser, name, lim)
}

func (w *testWorld) alloc(t *testing.T, h *Heap) *object.Object {
	t.Helper()
	o, err := h.Alloc(w.node)
	if err != nil {
		t.Fatalf("alloc on %s: %v", h.Name, err)
	}
	return o
}

func rootsOf(objs ...*object.Object) RootFunc {
	return func(visit func(*object.Object)) {
		for _, o := range objs {
			visit(o)
		}
	}
}

func TestAllocAccountsAndAddresses(t *testing.T) {
	w := newWorld(t, Config{})
	h := w.userHeap(t, "p1", memlimit.Unlimited)
	o := w.alloc(t, h)
	if o.Heap != h.ID {
		t.Errorf("object heap = %d, want %d", o.Heap, h.ID)
	}
	if got, ok := w.reg.Space.HeapOf(o.Addr); !ok || got != h.ID {
		t.Errorf("page table says heap %d, %v", got, ok)
	}
	// The limit carries the live bytes plus the standing headroom lease.
	if h.Bytes()+h.Lease() != h.Limit().Use() {
		t.Errorf("heap bytes %d + lease %d != limit use %d", h.Bytes(), h.Lease(), h.Limit().Use())
	}
	if h.Bytes() == 0 {
		t.Error("allocation accounted zero bytes")
	}
}

func TestHeaderExtraAffectsAccounting(t *testing.T) {
	w0 := newWorld(t, Config{})
	w4 := newWorld(t, Config{HeaderExtra: 4})
	h0 := w0.userHeap(t, "a", memlimit.Unlimited)
	h4 := w4.userHeap(t, "b", memlimit.Unlimited)
	w0.alloc(t, h0)
	w4.alloc(t, h4)
	if h4.Bytes() != h0.Bytes()+4 {
		t.Errorf("header extra: %d vs %d", h4.Bytes(), h0.Bytes())
	}
}

func TestAllocFailsAtLimit(t *testing.T) {
	w := newWorld(t, Config{})
	h := w.userHeap(t, "small", 40) // one 32-byte node fits, two do not
	if _, err := h.Alloc(w.node); err != nil {
		t.Fatalf("first alloc: %v", err)
	}
	if _, err := h.Alloc(w.node); err == nil {
		t.Fatal("allocation past limit succeeded")
	}
	// Failed alloc must not leak accounting.
	if h.Limit().Use() != h.Bytes() {
		t.Errorf("use %d != bytes %d after failed alloc", h.Limit().Use(), h.Bytes())
	}
}

func TestCollectFreesGarbageKeepsLive(t *testing.T) {
	w := newWorld(t, Config{})
	h := w.userHeap(t, "p", memlimit.Unlimited)
	a := w.alloc(t, h)
	b := w.alloc(t, h)
	c := w.alloc(t, h)
	a.SetRef(0, b) // a -> b live chain; c garbage
	_ = c

	res := h.Collect(rootsOf(a))
	if res.Swept != 1 {
		t.Fatalf("swept %d, want 1", res.Swept)
	}
	if a.Dead() || b.Dead() {
		t.Error("live object swept")
	}
	if !c.Dead() {
		t.Error("garbage survived")
	}
	if h.Objects() != 2 {
		t.Errorf("%d objects after GC, want 2", h.Objects())
	}
	if h.Bytes() != h.Limit().Use() {
		t.Errorf("bytes %d != use %d", h.Bytes(), h.Limit().Use())
	}
}

func TestCollectCycles(t *testing.T) {
	w := newWorld(t, Config{})
	h := w.userHeap(t, "p", memlimit.Unlimited)
	a := w.alloc(t, h)
	b := w.alloc(t, h)
	a.SetRef(0, b)
	b.SetRef(0, a) // unreachable cycle
	res := h.Collect(rootsOf())
	if res.Swept != 2 {
		t.Fatalf("cycle not collected: swept %d", res.Swept)
	}
}

func TestCollectChargesGCCycles(t *testing.T) {
	w := newWorld(t, Config{})
	h := w.userHeap(t, "p", memlimit.Unlimited)
	a := w.alloc(t, h)
	w.alloc(t, h)
	res := h.Collect(rootsOf(a))
	if res.Cycles == 0 {
		t.Error("GC reported zero cycle cost")
	}
	if h.Stats().GCCycles != res.Cycles {
		t.Error("stats do not accumulate GC cycles")
	}
}

func TestEntryItemsPinTargets(t *testing.T) {
	w := newWorld(t, Config{})
	h := w.userHeap(t, "p", memlimit.Unlimited)
	k := w.kernel
	ko, err := k.Alloc(w.node)
	if err != nil {
		t.Fatal(err)
	}
	uo := w.alloc(t, h)
	// Kernel object references user object (legal: kernel -> user).
	ko.SetRef(0, uo)
	if err := k.RecordCrossRef(uo); err != nil {
		t.Fatal(err)
	}
	if h.EntryCount() != 1 || k.ExitCount() != 1 {
		t.Fatalf("entries=%d exits=%d, want 1/1", h.EntryCount(), k.ExitCount())
	}
	// User GC with no local roots: uo must survive via the entry item.
	res := h.Collect(rootsOf())
	if res.Swept != 0 || uo.Dead() {
		t.Fatal("entry item did not pin target")
	}
	// Kernel drops the reference; kernel GC releases the exit item.
	ko.SetRef(0, nil)
	k.Collect(rootsOf(ko))
	if k.ExitCount() != 0 {
		t.Fatalf("exit item survived kernel GC")
	}
	if h.EntryCount() != 0 {
		t.Fatalf("entry item survived refcount drop")
	}
	// Now the user object is collectable.
	h.Collect(rootsOf())
	if !uo.Dead() {
		t.Error("orphaned target survived")
	}
}

func TestCrossRefDedup(t *testing.T) {
	w := newWorld(t, Config{})
	h := w.userHeap(t, "p", memlimit.Unlimited)
	ko, _ := w.kernel.Alloc(w.node)
	uo := w.alloc(t, h)
	ko.SetRef(0, uo)
	for i := 0; i < 5; i++ {
		if err := w.kernel.RecordCrossRef(uo); err != nil {
			t.Fatal(err)
		}
	}
	if w.kernel.ExitCount() != 1 || h.EntryCount() != 1 {
		t.Fatalf("dedup failed: exits=%d entries=%d", w.kernel.ExitCount(), h.EntryCount())
	}
}

func TestItemAccounting(t *testing.T) {
	w := newWorld(t, Config{})
	h := w.userHeap(t, "p", memlimit.Unlimited)
	ko, _ := w.kernel.Alloc(w.node)
	uo := w.alloc(t, h)
	ko.SetRef(0, uo)
	beforeK, beforeH := w.kernel.Limit().Use(), h.Limit().Use()
	if err := w.kernel.RecordCrossRef(uo); err != nil {
		t.Fatal(err)
	}
	if w.kernel.Limit().Use() != beforeK+exitItemBytes {
		t.Error("exit item not charged to source heap")
	}
	if h.Limit().Use() != beforeH+entryItemBytes {
		t.Error("entry item not charged to target heap")
	}
}

func TestMergeIntoKernel(t *testing.T) {
	w := newWorld(t, Config{})
	h := w.userHeap(t, "p", memlimit.Unlimited)
	a := w.alloc(t, h)
	b := w.alloc(t, h)
	a.SetRef(0, b)
	userBytes := h.Bytes()
	kernelBefore := w.kernel.Bytes()

	if err := h.MergeInto(w.kernel); err != nil {
		t.Fatal(err)
	}
	if !h.Dead() {
		t.Error("merged heap not dead")
	}
	if h.Limit().Use() != 0 {
		t.Errorf("merged heap still charged %d", h.Limit().Use())
	}
	if w.kernel.Bytes() != kernelBefore+userBytes {
		t.Errorf("kernel bytes %d, want %d", w.kernel.Bytes(), kernelBefore+userBytes)
	}
	if a.Heap != w.kernel.ID || b.Heap != w.kernel.ID {
		t.Error("objects did not move to kernel heap")
	}
	if got, _ := w.reg.Space.HeapOf(a.Addr); got != w.kernel.ID {
		t.Error("page table not reassigned")
	}
	// Kernel GC with no roots reclaims everything that came from the
	// process (full reclamation of memory).
	w.kernel.Collect(rootsOf())
	if !a.Dead() || !b.Dead() {
		t.Error("merged garbage not reclaimed by kernel GC")
	}
	if w.kernel.Bytes() != 0 {
		t.Errorf("kernel retains %d bytes", w.kernel.Bytes())
	}
}

func TestMergeDissolvesMutualItems(t *testing.T) {
	w := newWorld(t, Config{})
	h := w.userHeap(t, "p", memlimit.Unlimited)
	ko, _ := w.kernel.Alloc(w.node)
	uo := w.alloc(t, h)
	// kernel -> user and user -> kernel references.
	ko.SetRef(0, uo)
	if err := w.kernel.RecordCrossRef(uo); err != nil {
		t.Fatal(err)
	}
	uo.SetRef(0, ko)
	if err := h.RecordCrossRef(ko); err != nil {
		t.Fatal(err)
	}
	if err := h.MergeInto(w.kernel); err != nil {
		t.Fatal(err)
	}
	if w.kernel.EntryCount() != 0 || w.kernel.ExitCount() != 0 {
		t.Errorf("items survived merge: entries=%d exits=%d",
			w.kernel.EntryCount(), w.kernel.ExitCount())
	}
	// User-kernel cycle of garbage is collectable now.
	ko.SetRef(0, nil)
	uo.SetRef(0, nil)
	w.kernel.Collect(rootsOf())
	if !ko.Dead() || !uo.Dead() {
		t.Error("user-kernel garbage cycle not collected after merge")
	}
}

func TestMergePreservesThirdPartyEntries(t *testing.T) {
	w := newWorld(t, Config{})
	// A shared heap referenced by a user heap; the shared heap merges into
	// the kernel; the user's reference must keep pinning the object.
	shLim := w.root.MustChild("sh", memlimit.Unlimited, false)
	sh := w.reg.NewHeap(KindShared, "sh", shLim)
	user := w.userHeap(t, "p", memlimit.Unlimited)

	so, err := sh.Alloc(w.node)
	if err != nil {
		t.Fatal(err)
	}
	uo := w.alloc(t, user)
	uo.SetRef(0, so)
	if err := user.RecordCrossRef(so); err != nil {
		t.Fatal(err)
	}
	if err := sh.MergeInto(w.kernel); err != nil {
		t.Fatal(err)
	}
	if w.kernel.EntryCount() != 1 {
		t.Fatalf("entry items after merge = %d, want 1", w.kernel.EntryCount())
	}
	// Kernel GC must keep so alive (entry item is a root).
	w.kernel.Collect(rootsOf())
	if so.Dead() {
		t.Error("third-party-referenced object reclaimed")
	}
}

func TestFreezeStopsAllocation(t *testing.T) {
	w := newWorld(t, Config{})
	lim := w.root.MustChild("sh", memlimit.Unlimited, false)
	sh := w.reg.NewHeap(KindShared, "sh", lim)
	o, err := sh.Alloc(w.node)
	if err != nil {
		t.Fatal(err)
	}
	sh.Freeze()
	if !o.Frozen() {
		t.Error("object not frozen")
	}
	if _, err := sh.Alloc(w.node); err != ErrFrozen {
		t.Errorf("alloc on frozen heap: %v, want ErrFrozen", err)
	}
}

func TestOrphanedSharedHeap(t *testing.T) {
	w := newWorld(t, Config{})
	lim := w.root.MustChild("sh", memlimit.Unlimited, false)
	sh := w.reg.NewHeap(KindShared, "sh", lim)
	user := w.userHeap(t, "p", memlimit.Unlimited)
	so, _ := sh.Alloc(w.node)
	uo := w.alloc(t, user)
	uo.SetRef(0, so)
	if err := user.RecordCrossRef(so); err != nil {
		t.Fatal(err)
	}
	if sh.Orphaned() {
		t.Fatal("referenced shared heap reported orphaned")
	}
	// User drops the reference and collects: exit item dies.
	uo.SetRef(0, nil)
	user.Collect(rootsOf(uo))
	if !sh.Orphaned() {
		t.Fatal("unreferenced shared heap not orphaned")
	}
	if w.kernel.Orphaned() {
		t.Error("kernel heap can never be orphaned")
	}
}

func TestAllocOnDeadHeap(t *testing.T) {
	w := newWorld(t, Config{})
	h := w.userHeap(t, "p", memlimit.Unlimited)
	if err := h.MergeInto(w.kernel); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Alloc(w.node); err != ErrHeapDead {
		t.Errorf("alloc on dead heap: %v", err)
	}
	if err := h.MergeInto(w.kernel); err != ErrHeapDead {
		t.Errorf("double merge: %v", err)
	}
}

func TestAllocArray(t *testing.T) {
	w := newWorld(t, Config{})
	h := w.userHeap(t, "p", memlimit.Unlimited)
	d, _ := bytecode.ParseDesc("I")
	ia := object.NewArrayClass("[I", d, nil, w.obj, "test")
	arr, err := h.AllocArray(ia, 100)
	if err != nil {
		t.Fatal(err)
	}
	if arr.ArrayLen() != 100 {
		t.Errorf("len = %d", arr.ArrayLen())
	}
	if _, err := h.AllocArray(ia, -1); err == nil {
		t.Error("negative array size accepted")
	}
	// Array accounting is by element size.
	if h.Bytes() < 400 {
		t.Errorf("array accounted %d bytes, want >= 400", h.Bytes())
	}
}

func TestLargeObjectGetsOwnChunk(t *testing.T) {
	w := newWorld(t, Config{PagesPerChunk: 1})
	h := w.userHeap(t, "p", memlimit.Unlimited)
	d, _ := bytecode.ParseDesc("B")
	ba := object.NewArrayClass("[B", d, nil, w.obj, "test")
	// 64 KiB object with 4 KiB pages.
	arr, err := h.AllocArray(ba, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := w.reg.Space.HeapOf(arr.Addr + 60000); got != h.ID {
		t.Error("large object pages not all owned by heap")
	}
}

func TestRegistryLookup(t *testing.T) {
	w := newWorld(t, Config{})
	h := w.userHeap(t, "p", memlimit.Unlimited)
	got, ok := w.reg.Lookup(h.ID)
	if !ok || got != h {
		t.Fatal("lookup failed")
	}
	o := w.alloc(t, h)
	hh, ok := w.reg.HeapOfObject(o)
	if !ok || hh != h {
		t.Fatal("HeapOfObject failed")
	}
	if err := h.MergeInto(w.kernel); err != nil {
		t.Fatal(err)
	}
	if _, ok := w.reg.Lookup(h.ID); ok {
		t.Error("dead heap still registered")
	}
	if len(w.reg.Heaps()) != 1 {
		t.Errorf("heaps = %d, want 1 (kernel)", len(w.reg.Heaps()))
	}
}

func TestLeaseFastPathAndFlush(t *testing.T) {
	w := newWorld(t, Config{})
	h := w.userHeap(t, "p", memlimit.Unlimited)
	o := w.alloc(t, h)
	if h.Lease() == 0 {
		t.Fatal("no standing lease after first allocation")
	}
	if h.Bytes()+h.Lease() != h.Limit().Use() {
		t.Fatalf("bytes %d + lease %d != use %d", h.Bytes(), h.Lease(), h.Limit().Use())
	}
	// Subsequent small allocations are served from the lease.
	w.alloc(t, h)
	st := h.Stats()
	if st.FastMisses != 1 || st.FastHits != 1 {
		t.Errorf("fastpath hits=%d misses=%d, want 1/1", st.FastHits, st.FastMisses)
	}
	// Collect flushes the lease: the accounting invariant tightens to
	// exactly the live bytes.
	h.Collect(rootsOf(o))
	if h.Lease() != 0 {
		t.Errorf("lease %d after collect, want 0", h.Lease())
	}
	if h.Bytes() != h.Limit().Use() {
		t.Errorf("bytes %d != use %d after collect", h.Bytes(), h.Limit().Use())
	}
}

func TestLeaseDisabled(t *testing.T) {
	w := newWorld(t, Config{LeaseBatch: -1})
	h := w.userHeap(t, "p", memlimit.Unlimited)
	w.alloc(t, h)
	w.alloc(t, h)
	if h.Lease() != 0 {
		t.Errorf("lease %d with leasing disabled", h.Lease())
	}
	if h.Bytes() != h.Limit().Use() {
		t.Errorf("bytes %d != use %d", h.Bytes(), h.Limit().Use())
	}
	if st := h.Stats(); st.FastHits != 0 || st.FastMisses != 2 {
		t.Errorf("fastpath hits=%d misses=%d, want 0/2", st.FastHits, st.FastMisses)
	}
}

func TestChunkRecyclingBoundsAddressSpace(t *testing.T) {
	w := newWorld(t, Config{PagesPerChunk: 1})
	h := w.userHeap(t, "p", memlimit.Unlimited)
	baseline := w.reg.Space.Pages()
	// Each round allocates ~8 one-page chunks of garbage; the heap may keep
	// maxFreeChunks of them on its free list and must release the rest, so
	// the page table stays bounded instead of growing by 8 pages per round.
	const perRound = 1024 // 1024 * 32 B = 8 pages
	for round := 0; round < 8; round++ {
		for i := 0; i < perRound; i++ {
			w.alloc(t, h)
		}
		if res := h.Collect(rootsOf()); res.Swept != perRound {
			t.Fatalf("round %d: swept %d, want %d", round, res.Swept, perRound)
		}
	}
	if extra := w.reg.Space.Pages() - baseline; extra > maxFreeChunks {
		t.Errorf("heap retains %d pages after collecting everything, want <= %d", extra, maxFreeChunks)
	}
	if h.Stats().PagesReleased == 0 {
		t.Error("no pages released to the address space")
	}
	// The free list must actually be reused: a fresh allocation must not
	// grow the page table.
	pages := w.reg.Space.Pages()
	w.alloc(t, h)
	if w.reg.Space.Pages() != pages {
		t.Error("allocation reserved fresh pages despite a populated free list")
	}
}

func TestHasExitsToCounter(t *testing.T) {
	w := newWorld(t, Config{})
	h := w.userHeap(t, "p", memlimit.Unlimited)
	ko, _ := w.kernel.Alloc(w.node)
	uo := w.alloc(t, h)
	uo.SetRef(0, ko)
	if err := h.RecordCrossRef(ko); err != nil {
		t.Fatal(err)
	}
	if !h.HasExitsTo(w.kernel.ID) {
		t.Fatal("HasExitsTo(kernel) = false with a live exit")
	}
	if h.HasExitsTo(h.ID) {
		t.Fatal("HasExitsTo reports exits to self")
	}
	// Dropping the reference and collecting releases the exit and its
	// counter.
	uo.SetRef(0, nil)
	h.Collect(rootsOf(uo))
	if h.HasExitsTo(w.kernel.ID) {
		t.Error("exit counter survived the collection that released the exit")
	}
}

func TestExitCounterFollowsTargetMerge(t *testing.T) {
	w := newWorld(t, Config{})
	shLim := w.root.MustChild("sh", memlimit.Unlimited, false)
	sh := w.reg.NewHeap(KindShared, "sh", shLim)
	user := w.userHeap(t, "p", memlimit.Unlimited)
	so, err := sh.Alloc(w.node)
	if err != nil {
		t.Fatal(err)
	}
	uo := w.alloc(t, user)
	uo.SetRef(0, so)
	if err := user.RecordCrossRef(so); err != nil {
		t.Fatal(err)
	}
	shID := sh.ID
	if err := sh.MergeInto(w.kernel); err != nil {
		t.Fatal(err)
	}
	// The exit's target now lives in the kernel heap; the O(1) counter
	// must have been remapped with it.
	if user.HasExitsTo(shID) {
		t.Error("exit counter still aimed at the dead heap")
	}
	if !user.HasExitsTo(w.kernel.ID) {
		t.Error("exit counter did not follow the merged target")
	}
}

func TestAllocateBlackSurvivesInFlightGC(t *testing.T) {
	w := newWorld(t, Config{})
	h := w.userHeap(t, "p", memlimit.Unlimited)
	// White-box: open the allocate-black window as a collection's window 1
	// does, then allocate. The object must be born marked, survive the
	// sweep of "its" collection, and carry no stale mark into the next.
	h.mu.Lock()
	h.gcActive = true
	h.mu.Unlock()
	born := w.alloc(t, h)
	if !born.Marked() {
		t.Fatal("object not allocated black during an active collection")
	}
	h.mu.Lock()
	h.gcActive = false
	h.mu.Unlock()
	// First collection: the stale-looking mark makes it a survivor, and
	// sweep must clear the bit.
	if res := h.Collect(rootsOf()); res.Swept != 0 || born.Dead() {
		t.Fatal("allocate-black object swept by its own collection")
	}
	// Second collection: unrooted, it is collected normally.
	if res := h.Collect(rootsOf()); res.Swept != 1 || !born.Dead() {
		t.Error("allocate-black object kept a stale mark bit")
	}
}
