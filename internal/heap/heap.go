// Package heap implements KaffeOS heaps: separately collected object pools
// with full memory accounting.
//
// Each process has its own heap, collected independently of all others;
// there is one kernel heap, and any number of frozen shared heaps used for
// inter-process communication. Cross-heap references are tracked with entry
// and exit items, a technique borrowed from distributed garbage collection
// (paper §2, "Full reclamation of memory"): an entry item in the target
// heap records that some other heap references an object, and a reference-
// counted exit item in the source heap remembers the entry item. Entry
// items act as GC roots for their heap, so each heap can be collected
// without scanning any other heap; when a heap's collector finds an exit
// item unreachable, it decrements the entry item's count, eventually
// letting the target heap reclaim the object.
//
// When a process terminates, its heap is merged into the kernel heap; the
// kernel collector then reclaims everything, including user/kernel cycles.
package heap

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/memlimit"
	"repro/internal/object"
	"repro/internal/telemetry"
	"repro/internal/vmaddr"
)

// Kind classifies a heap.
type Kind uint8

const (
	KindKernel Kind = iota + 1
	KindUser
	KindShared
)

func (k Kind) String() string {
	switch k {
	case KindKernel:
		return "kernel"
	case KindUser:
		return "user"
	case KindShared:
		return "shared"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Accounted sizes of GC bookkeeping structures. Entry and exit items are
// real memory in the paper's implementation and are charged to the heap
// that holds them.
const (
	entryItemBytes = 24
	exitItemBytes  = 24
)

// Simulated cycle costs of GC work, used to charge collection time to the
// owning process (paper §2: "Precise memory and CPU accounting" covers GC).
const (
	cyclesPerScan  = 12
	cyclesPerSweep = 20
)

var (
	// ErrHeapDead reports allocation on a merged (terminated) heap.
	ErrHeapDead = errors.New("heap: heap has been merged")
	// ErrFrozen reports allocation on a frozen shared heap.
	ErrFrozen = errors.New("heap: shared heap is frozen")
)

// Config carries allocation parameters that depend on the write-barrier
// implementation.
type Config struct {
	// HeaderExtra is added to every object's accounted size. The "Heap
	// Pointer" barrier needs 4 bytes in the header for the heap ID; the
	// "Fake Heap Pointer" configuration pads by 4 bytes without using them
	// (paper §4.1).
	HeaderExtra int
	// PagesPerChunk is how many pages a heap leases at a time from the
	// address space (default 16).
	PagesPerChunk int
}

func (c Config) pagesPerChunk() int {
	if c.PagesPerChunk <= 0 {
		return 16
	}
	return c.PagesPerChunk
}

// Registry tracks every live heap of one VM and owns the cross-heap
// structures' lock.
type Registry struct {
	Space *vmaddr.Space
	Cfg   Config

	mu    sync.RWMutex
	heaps map[vmaddr.HeapID]*Heap

	// crossMu serializes all entry/exit item manipulation across heaps,
	// avoiding lock-order cycles between pairs of heaps.
	crossMu sync.Mutex

	// Telemetry, when set, receives EvGCStart/EvGCEnd events for every
	// collection of every heap in the registry.
	Telemetry telemetry.Sink
}

// NewRegistry creates a registry over an address space.
func NewRegistry(space *vmaddr.Space, cfg Config) *Registry {
	return &Registry{
		Space: space,
		Cfg:   cfg,
		heaps: make(map[vmaddr.HeapID]*Heap),
	}
}

// Lookup resolves a heap ID.
func (r *Registry) Lookup(id vmaddr.HeapID) (*Heap, bool) {
	r.mu.RLock()
	h, ok := r.heaps[id]
	r.mu.RUnlock()
	return h, ok
}

// HeapOfObject resolves the heap owning o via its header heap ID.
func (r *Registry) HeapOfObject(o *object.Object) (*Heap, bool) {
	return r.Lookup(o.Heap)
}

// Heaps returns a snapshot of all live heaps.
func (r *Registry) Heaps() []*Heap {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Heap, 0, len(r.heaps))
	for _, h := range r.heaps {
		out = append(out, h)
	}
	return out
}

// EntryItem records that objects in other heaps reference Target, which
// lives in the heap holding the item. A positive RefCount pins Target as a
// GC root of its heap.
type EntryItem struct {
	Target   *object.Object
	RefCount int
}

// ExitItem lives in the source heap and remembers the entry item its heap's
// references point at.
type ExitItem struct {
	Target *object.Object
	Entry  *EntryItem
}

// Stats accumulates per-heap counters.
type Stats struct {
	Allocs     uint64
	AllocBytes uint64
	GCs        uint64
	Scanned    uint64
	Swept      uint64
	FreedBytes uint64
	GCCycles   uint64
}

// GCResult reports one collection.
type GCResult struct {
	Scanned    int
	Swept      int
	FreedBytes uint64
	// Cycles is the simulated CPU cost, to be charged to the heap's owner.
	Cycles uint64
}

// Heap is one independently collected object pool.
type Heap struct {
	ID   vmaddr.HeapID
	Kind Kind
	Name string

	reg   *Registry
	limit *memlimit.Limit

	mu      sync.Mutex
	objects map[*object.Object]struct{}
	chunks  []chunk
	cur     int // index of chunk being bump-allocated
	bytes   uint64

	// entries: target object in THIS heap <- referenced from other heaps.
	// exits: target object in ANOTHER heap referenced from this heap.
	// Both are guarded by reg.crossMu, not h.mu.
	entries map[*object.Object]*EntryItem
	exits   map[*object.Object]*ExitItem

	frozen bool
	dead   bool

	stats Stats

	// Owner is an opaque back-pointer to the owning process (or nil for
	// the kernel heap); the VM layer uses it for accounting.
	Owner any

	// Pid tags GC telemetry with the owning process (0 = kernel/shared).
	// Set by the VM layer when the heap is handed to a process.
	Pid int32
}

type chunk struct {
	base  uint64
	pages int
	off   uint64
}

// NewHeap creates a heap whose allocations are debited from limit.
func (r *Registry) NewHeap(kind Kind, name string, limit *memlimit.Limit) *Heap {
	h := &Heap{
		ID:      r.Space.NewHeapID(),
		Kind:    kind,
		Name:    name,
		reg:     r,
		limit:   limit,
		objects: make(map[*object.Object]struct{}),
		entries: make(map[*object.Object]*EntryItem),
		exits:   make(map[*object.Object]*ExitItem),
	}
	r.mu.Lock()
	r.heaps[h.ID] = h
	r.mu.Unlock()
	return h
}

// Limit returns the heap's memlimit.
func (h *Heap) Limit() *memlimit.Limit { return h.limit }

// Bytes reports live accounted bytes.
func (h *Heap) Bytes() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bytes
}

// Objects reports the number of live objects.
func (h *Heap) Objects() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.objects)
}

// Stats returns a copy of the heap's counters.
func (h *Heap) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// Frozen reports whether the heap has been frozen (shared heaps only).
func (h *Heap) Frozen() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.frozen
}

// Dead reports whether the heap has been merged away.
func (h *Heap) Dead() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dead
}

// Alloc allocates an instance of class c on h.
func (h *Heap) Alloc(c *object.Class) (*object.Object, error) {
	return h.AllocExtra(c, 0)
}

// AllocExtra allocates an instance of c charged with extra additional
// bytes, for objects carrying native payloads (string characters, buffers).
func (h *Heap) AllocExtra(c *object.Class, extra uint64) (*object.Object, error) {
	size := c.InstanceBytes + extra + uint64(h.reg.Cfg.HeaderExtra)
	o := object.New(c)
	o.SizeExtra = uint32(extra)
	if err := h.adopt(o, size); err != nil {
		return nil, err
	}
	return o, nil
}

// AllocArray allocates an n-element array of array class c on h.
func (h *Heap) AllocArray(c *object.Class, n int) (*object.Object, error) {
	if n < 0 {
		return nil, fmt.Errorf("heap: negative array size %d", n)
	}
	size := c.ArraySizeBytes(n) + uint64(h.reg.Cfg.HeaderExtra)
	o := object.NewArray(c, n)
	if err := h.adopt(o, size); err != nil {
		return nil, err
	}
	return o, nil
}

// adopt charges, addresses, and registers a freshly built object.
func (h *Heap) adopt(o *object.Object, size uint64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.dead {
		return ErrHeapDead
	}
	if h.frozen {
		return ErrFrozen
	}
	if err := h.limit.Debit(size); err != nil {
		return err
	}
	addr, err := h.bump(size)
	if err != nil {
		h.limit.Credit(size)
		return err
	}
	o.Addr = addr
	o.Heap = h.ID
	o.Hash = int32(addr>>3) ^ int32(addr>>19)
	h.objects[o] = struct{}{}
	h.bytes += size
	h.stats.Allocs++
	h.stats.AllocBytes += size
	return nil
}

// bump assigns an address, leasing new pages as needed. Caller holds h.mu.
func (h *Heap) bump(size uint64) (uint64, error) {
	// An object never spans chunks; oversized objects get a dedicated
	// multi-page chunk.
	for h.cur < len(h.chunks) {
		c := &h.chunks[h.cur]
		capacity := uint64(c.pages) << vmaddr.PageShift
		if c.off+size <= capacity {
			addr := c.base + c.off
			c.off += size
			return addr, nil
		}
		h.cur++
	}
	pages := h.reg.Cfg.pagesPerChunk()
	if need := vmaddr.PagesFor(size); need > pages {
		pages = need
	}
	base, err := h.reg.Space.Reserve(h.ID, pages)
	if err != nil {
		return 0, err
	}
	h.chunks = append(h.chunks, chunk{base: base, pages: pages, off: size})
	h.cur = len(h.chunks) - 1
	return base, nil
}

// Contains reports whether o is registered in h.
func (h *Heap) Contains(o *object.Object) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	_, ok := h.objects[o]
	return ok
}

// RecordCrossRef notes that an object in h now references target, which
// lives in another heap. The write barrier calls this for every legal
// cross-heap pointer store. The exit item is charged to h and the entry
// item to the target's heap.
func (h *Heap) RecordCrossRef(target *object.Object) error {
	th, ok := h.reg.Lookup(target.Heap)
	if !ok {
		return fmt.Errorf("heap: cross ref to object in unknown heap %d", target.Heap)
	}
	if th == h {
		return nil
	}
	h.reg.crossMu.Lock()
	defer h.reg.crossMu.Unlock()
	if _, ok := h.exits[target]; ok {
		return nil // this heap already references target
	}
	entry, ok := th.entries[target]
	if !ok {
		if err := th.limit.Debit(entryItemBytes); err != nil {
			return err
		}
		entry = &EntryItem{Target: target}
		th.entries[target] = entry
	}
	if err := h.limit.Debit(exitItemBytes); err != nil {
		if entry.RefCount == 0 {
			delete(th.entries, target)
			th.limit.Credit(entryItemBytes)
		}
		return err
	}
	entry.RefCount++
	h.exits[target] = &ExitItem{Target: target, Entry: entry}
	return nil
}

// EntryCount reports the number of entry items (for tests/stats).
func (h *Heap) EntryCount() int {
	h.reg.crossMu.Lock()
	defer h.reg.crossMu.Unlock()
	return len(h.entries)
}

// ExitCount reports the number of exit items (for tests/stats).
func (h *Heap) ExitCount() int {
	h.reg.crossMu.Lock()
	defer h.reg.crossMu.Unlock()
	return len(h.exits)
}

// RootFunc enumerates external GC roots of a heap (thread stacks, statics,
// VM handles). It must call visit for every root reference; visit ignores
// nils and objects outside the heap being collected, so providers may
// over-approximate.
type RootFunc func(visit func(*object.Object))

// Collect runs a full mark-and-sweep over h. roots supplies the external
// roots; entry items with positive counts are roots implicitly. References
// that leave the heap are not followed (that is the point of the design);
// instead the set of still-referenced exit targets is recomputed, and exit
// items that became unreachable release their entry items.
func (h *Heap) Collect(roots RootFunc) GCResult {
	// Lock order everywhere: reg.crossMu before any heap mutex. Holding
	// crossMu for the whole collection serializes GCs across heaps, which
	// matches the VM's stop-the-world collector.
	h.reg.crossMu.Lock()
	defer h.reg.crossMu.Unlock()
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.dead {
		return GCResult{}
	}
	if h.reg.Telemetry != nil {
		h.reg.Telemetry.Emit(telemetry.Event{
			Kind: telemetry.EvGCStart, Pid: h.Pid,
			A: h.bytes, B: uint64(len(h.objects)), Detail: h.Name,
		})
	}

	var res GCResult
	var stack []*object.Object
	externalLive := make(map[*object.Object]bool)

	pushRoot := func(o *object.Object) {
		if o == nil || o.Marked() {
			return
		}
		if o.Heap != h.ID {
			return
		}
		if _, mine := h.objects[o]; !mine {
			return
		}
		o.SetMark(true)
		stack = append(stack, o)
	}
	if roots != nil {
		roots(pushRoot)
	}
	for _, e := range h.entries {
		if e.RefCount > 0 {
			pushRoot(e.Target)
		}
	}

	for len(stack) > 0 {
		o := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		res.Scanned++
		for _, ref := range o.Refs {
			if ref == nil {
				continue
			}
			if ref.Heap == h.ID {
				if !ref.Marked() {
					ref.SetMark(true)
					stack = append(stack, ref)
				}
			} else {
				externalLive[ref] = true
			}
		}
	}

	// Sweep.
	for o := range h.objects {
		if o.Marked() {
			o.SetMark(false)
			continue
		}
		size := h.sizeOf(o)
		delete(h.objects, o)
		h.bytes -= size
		h.limit.Credit(size)
		res.Swept++
		res.FreedBytes += size
		o.Sever()
	}

	// Exit items whose targets are no longer referenced from this heap
	// release their entry items; entry items that drop to zero disappear
	// and their targets become collectable in their own heaps.
	for target, exit := range h.exits {
		if externalLive[target] {
			continue
		}
		delete(h.exits, target)
		h.limit.Credit(exitItemBytes)
		h.releaseEntryLocked(exit.Entry)
	}

	res.Cycles = uint64(res.Scanned)*cyclesPerScan + uint64(res.Swept)*cyclesPerSweep
	h.stats.GCs++
	h.stats.Scanned += uint64(res.Scanned)
	h.stats.Swept += uint64(res.Swept)
	h.stats.FreedBytes += res.FreedBytes
	h.stats.GCCycles += res.Cycles
	if h.reg.Telemetry != nil {
		h.reg.Telemetry.Emit(telemetry.Event{
			Kind: telemetry.EvGCEnd, Pid: h.Pid,
			A: res.Cycles, B: res.FreedBytes, Detail: h.Name,
		})
	}
	return res
}

// releaseEntryLocked decrements an entry item; at zero the item is removed
// from its heap. Caller holds reg.crossMu.
func (h *Heap) releaseEntryLocked(e *EntryItem) {
	e.RefCount--
	if e.RefCount > 0 {
		return
	}
	th, ok := h.reg.Lookup(e.Target.Heap)
	if !ok {
		return
	}
	if cur, present := th.entries[e.Target]; present && cur == e {
		delete(th.entries, e.Target)
		th.limit.Credit(entryItemBytes)
	}
}

// sizeOf recomputes the accounted size of o. Caller holds h.mu.
func (h *Heap) sizeOf(o *object.Object) uint64 {
	if o.IsArray() {
		return o.Class.ArraySizeBytes(o.ArrayLen()) + uint64(h.reg.Cfg.HeaderExtra)
	}
	return o.Class.InstanceBytes + uint64(o.SizeExtra) + uint64(h.reg.Cfg.HeaderExtra)
}

// RetargetLimit moves the heap's accounted use to a new memlimit and makes
// future credits/debits flow there. Used when a populated shared heap is
// frozen: its storage stops being the creator's and becomes system-wide,
// while sharers are charged through their own memlimits.
func (h *Heap) RetargetLimit(newLimit *memlimit.Limit) error {
	h.reg.crossMu.Lock()
	defer h.reg.crossMu.Unlock()
	h.mu.Lock()
	defer h.mu.Unlock()
	// Item bytes are charged to h.limit as well; move everything.
	var itemBytes uint64
	itemBytes += uint64(len(h.entries)) * entryItemBytes
	itemBytes += uint64(len(h.exits)) * exitItemBytes
	if err := h.limit.Transfer(h.bytes+itemBytes, newLimit); err != nil {
		return err
	}
	h.limit = newLimit
	return nil
}

// HasExitsTo reports whether this heap holds any exit item targeting an
// object in heap id — i.e. whether objects in h still reference that heap.
func (h *Heap) HasExitsTo(id vmaddr.HeapID) bool {
	h.reg.crossMu.Lock()
	defer h.reg.crossMu.Unlock()
	for target := range h.exits {
		if target.Heap == id {
			return true
		}
	}
	return false
}

// Freeze marks a shared heap read-only for reference fields and closed for
// allocation (paper §2: after a shared heap is populated, "it is frozen and
// its size remains fixed for its lifetime").
func (h *Heap) Freeze() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.frozen = true
	for o := range h.objects {
		o.Flags |= object.FlagFrozen
	}
}
