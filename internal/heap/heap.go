// Package heap implements KaffeOS heaps: separately collected object pools
// with full memory accounting.
//
// Each process has its own heap, collected independently of all others;
// there is one kernel heap, and any number of frozen shared heaps used for
// inter-process communication. Cross-heap references are tracked with entry
// and exit items, a technique borrowed from distributed garbage collection
// (paper §2, "Full reclamation of memory"): an entry item in the target
// heap records that some other heap references an object, and a reference-
// counted exit item in the source heap remembers the entry item. Entry
// items act as GC roots for their heap, so each heap can be collected
// without scanning any other heap; when a heap's collector finds an exit
// item unreachable, it decrements the entry item's count, eventually
// letting the target heap reclaim the object.
//
// Collections of different heaps genuinely overlap: the registry-wide
// crossMu is held only for two short windows per collection (snapshotting
// entry-item roots, and releasing dead exit items), while mark and sweep
// run under the heap's own mutex. A per-heap gcMu serializes collections
// and merges of the *same* heap against each other. The lock order, used
// everywhere, is:
//
//	gcMu (both heaps', ordered by ID, when merging) → reg.crossMu → h.mu
//	(both heaps', ordered by ID, when merging) → memlimit tree → Space
//
// When a process terminates, its heap is merged into the kernel heap; the
// kernel collector then reclaims everything, including user/kernel cycles.
package heap

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/faults"
	"repro/internal/memlimit"
	"repro/internal/object"
	"repro/internal/telemetry"
	"repro/internal/vmaddr"
)

// Kind classifies a heap.
type Kind uint8

const (
	KindKernel Kind = iota + 1
	KindUser
	KindShared
	// KindTemplate is an immutable checkpoint of a warmed user heap: the
	// backing store of a process template. Template heaps are frozen for
	// their whole post-copy lifetime, are never collected or merged, may
	// reference only kernel and shared heaps, and must never be referenced
	// by any other heap — forks deep-copy out of them instead.
	KindTemplate
)

func (k Kind) String() string {
	switch k {
	case KindKernel:
		return "kernel"
	case KindUser:
		return "user"
	case KindShared:
		return "shared"
	case KindTemplate:
		return "template"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Accounted sizes of GC bookkeeping structures. Entry and exit items are
// real memory in the paper's implementation and are charged to the heap
// that holds them.
const (
	entryItemBytes = 24
	exitItemBytes  = 24
)

// Simulated cycle costs of GC work, used to charge collection time to the
// owning process (paper §2: "Precise memory and CPU accounting" covers GC).
const (
	cyclesPerScan  = 12
	cyclesPerSweep = 20
)

// maxFreeChunks bounds the per-heap free list of recycled chunks; chunks
// beyond it are released back to the address space.
const maxFreeChunks = 4

var (
	// ErrHeapDead reports allocation on a merged (terminated) heap.
	ErrHeapDead = errors.New("heap: heap has been merged")
	// ErrFrozen reports allocation on a frozen shared heap.
	ErrFrozen = errors.New("heap: shared heap is frozen")
)

// Config carries allocation parameters that depend on the write-barrier
// implementation.
type Config struct {
	// HeaderExtra is added to every object's accounted size. The "Heap
	// Pointer" barrier needs 4 bytes in the header for the heap ID; the
	// "Fake Heap Pointer" configuration pads by 4 bytes without using them
	// (paper §4.1).
	HeaderExtra int
	// PagesPerChunk is how many pages a heap leases at a time from the
	// address space (default 16).
	PagesPerChunk int
	// LeaseBatch is the headroom, in bytes, a heap debits from its
	// memlimit beyond each allocation that misses the standing lease, so
	// subsequent allocations touch only the heap's own mutex (the Go
	// runtime's mcache idea applied to memlimits). 0 selects the default
	// of 64 KiB; a negative value disables leasing entirely.
	LeaseBatch int
}

func (c Config) pagesPerChunk() int {
	if c.PagesPerChunk <= 0 {
		return 16
	}
	return c.PagesPerChunk
}

func (c Config) leaseBatch() uint64 {
	if c.LeaseBatch < 0 {
		return 0
	}
	if c.LeaseBatch == 0 {
		return 64 << 10
	}
	return uint64(c.LeaseBatch)
}

// Registry tracks every live heap of one VM and owns the cross-heap
// structures' lock.
type Registry struct {
	Space *vmaddr.Space
	Cfg   Config

	mu    sync.RWMutex
	heaps map[vmaddr.HeapID]*Heap

	// crossMu serializes all entry/exit item manipulation across heaps,
	// avoiding lock-order cycles between pairs of heaps. Collections hold
	// it only for two short windows (root snapshot, exit release), not for
	// the whole mark/sweep.
	crossMu sync.Mutex

	// active counts collections currently in flight; maxActive is the
	// high-water mark since VM start (the gc.overlap gauge).
	active    atomic.Int64
	maxActive atomic.Int64

	// Telemetry, when set, receives EvGCStart/EvGCEnd events for every
	// collection of every heap in the registry.
	Telemetry telemetry.Sink

	// Faults, when set, is the injection plane: SiteHeapAlloc makes adopt
	// refuse an allocation as if the memlimit were exhausted, SiteHeapMark
	// interrupts a collection between its mark and re-check windows.
	Faults *faults.Plane
	// OnFaultKill is invoked (outside all heap locks' critical mutations,
	// but with the collection in flight) when SiteHeapMark fires during a
	// collection of h; the VM wires it to kill the heap's owning process,
	// provoking the paper's kill-during-GC corner.
	OnFaultKill func(h *Heap)
}

// NewRegistry creates a registry over an address space.
func NewRegistry(space *vmaddr.Space, cfg Config) *Registry {
	return &Registry{
		Space: space,
		Cfg:   cfg,
		heaps: make(map[vmaddr.HeapID]*Heap),
	}
}

// Lookup resolves a heap ID.
func (r *Registry) Lookup(id vmaddr.HeapID) (*Heap, bool) {
	r.mu.RLock()
	h, ok := r.heaps[id]
	r.mu.RUnlock()
	return h, ok
}

// HeapOfObject resolves the heap owning o via its header heap ID.
func (r *Registry) HeapOfObject(o *object.Object) (*Heap, bool) {
	return r.Lookup(o.Heap)
}

// Heaps returns a snapshot of all live heaps.
func (r *Registry) Heaps() []*Heap {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Heap, 0, len(r.heaps))
	for _, h := range r.heaps {
		out = append(out, h)
	}
	return out
}

// MaxConcurrentGCs reports the largest number of collections that have
// ever been in flight simultaneously.
func (r *Registry) MaxConcurrentGCs() int { return int(r.maxActive.Load()) }

// noteOverlap raises the overlap high-water mark to n and emits an
// EvGCOverlap event on every new maximum.
func (r *Registry) noteOverlap(n int64) {
	for {
		m := r.maxActive.Load()
		if n <= m {
			return
		}
		if r.maxActive.CompareAndSwap(m, n) {
			if r.Telemetry != nil {
				r.Telemetry.Emit(telemetry.Event{Kind: telemetry.EvGCOverlap, A: uint64(n)})
			}
			return
		}
	}
}

// EntryItem records that objects in other heaps reference Target, which
// lives in the heap holding the item. A positive RefCount pins Target as a
// GC root of its heap.
type EntryItem struct {
	Target   *object.Object
	RefCount int
}

// ExitItem lives in the source heap and remembers the entry item its heap's
// references point at.
type ExitItem struct {
	Target *object.Object
	Entry  *EntryItem
	// gen is the source heap's collection generation when the exit was
	// created or last re-confirmed by a store. An exit stamped with the
	// generation of an in-flight collection is not released by it: the
	// store happened after the mark snapshot, so the collection cannot
	// prove the exit dead.
	gen uint64
}

// Stats accumulates per-heap counters.
type Stats struct {
	Allocs     uint64
	AllocBytes uint64
	GCs        uint64
	Scanned    uint64
	Swept      uint64
	FreedBytes uint64
	GCCycles   uint64
	// FastHits/FastMisses count allocations served from the standing
	// memlimit lease vs. those that had to debit the tree.
	FastHits   uint64
	FastMisses uint64
	// PagesReleased counts address-space pages returned by chunk
	// reclamation (sweep and merge).
	PagesReleased uint64
}

// GCResult reports one collection.
type GCResult struct {
	Scanned    int
	Swept      int
	FreedBytes uint64
	// PagesReleased is the number of address-space pages returned by this
	// collection's chunk reclamation.
	PagesReleased int
	// Cycles is the simulated CPU cost, to be charged to the heap's owner.
	Cycles uint64
}

// Heap is one independently collected object pool.
type Heap struct {
	ID   vmaddr.HeapID
	Kind Kind
	Name string

	reg   *Registry
	limit *memlimit.Limit

	// gcMu serializes collections and merges involving this heap against
	// each other, while collections of different heaps run concurrently.
	// It is acquired before reg.crossMu and h.mu, never after.
	gcMu sync.Mutex

	mu      sync.Mutex
	objects map[*object.Object]struct{}
	chunks  []chunk
	cur     int // index of chunk being bump-allocated
	free    []chunk
	bytes   uint64
	// lease is headroom already debited from limit but not yet allocated:
	// allocations that fit take it with only h.mu held.
	lease uint64
	// gcActive is true from a collection's root snapshot until its sweep
	// completes; objects adopted in that window are allocated black
	// (marked) so the in-flight sweep cannot free them.
	gcActive bool
	// gcGen counts collections; it stamps exit items (see ExitItem.gen).
	gcGen uint64

	// entries: target object in THIS heap <- referenced from other heaps.
	// exits: target object in ANOTHER heap referenced from this heap.
	// exitsTo: number of exit items per target heap, kept in lockstep with
	// exits so HasExitsTo is O(1). All three are guarded by reg.crossMu,
	// not h.mu.
	entries map[*object.Object]*EntryItem
	exits   map[*object.Object]*ExitItem
	exitsTo map[vmaddr.HeapID]int

	frozen bool
	dead   bool

	stats Stats
	// fastFlushed* remember the stats values already emitted as
	// EvGCFastPath deltas (guarded by h.mu).
	fastFlushedHits   uint64
	fastFlushedMisses uint64

	// Owner is an opaque back-pointer to the owning process (or nil for
	// the kernel heap); the VM layer uses it for accounting.
	Owner any

	// Pid tags GC telemetry with the owning process (0 = kernel/shared).
	// Set by the VM layer when the heap is handed to a process.
	Pid int32

	// requester is the serving-plane request id (0 = none) to charge the
	// next collection's telemetry to. The VM layer sets it around the
	// collections a request triggers so EvGCStart/EvGCEnd carry the
	// request stamp. Atomic because GC runs under heap locks the setter
	// does not hold.
	requester atomic.Uint64
}

// SetRequester stamps the request id (0 to clear) that subsequent
// collections of this heap will be attributed to.
func (h *Heap) SetRequester(req uint64) { h.requester.Store(req) }

type chunk struct {
	base  uint64
	pages int
	off   uint64
}

// NewHeap creates a heap whose allocations are debited from limit.
func (r *Registry) NewHeap(kind Kind, name string, limit *memlimit.Limit) *Heap {
	h := &Heap{
		ID:      r.Space.NewHeapID(),
		Kind:    kind,
		Name:    name,
		reg:     r,
		limit:   limit,
		objects: make(map[*object.Object]struct{}),
		entries: make(map[*object.Object]*EntryItem),
		exits:   make(map[*object.Object]*ExitItem),
		exitsTo: make(map[vmaddr.HeapID]int),
	}
	r.mu.Lock()
	r.heaps[h.ID] = h
	r.mu.Unlock()
	return h
}

// Limit returns the heap's memlimit.
func (h *Heap) Limit() *memlimit.Limit { return h.limit }

// Bytes reports live accounted bytes.
func (h *Heap) Bytes() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bytes
}

// Lease reports the standing memlimit headroom lease: bytes debited from
// the limit tree but not yet allocated. The accounting invariant, on every
// path, is limit-use attributable to the heap == Bytes() + Lease().
func (h *Heap) Lease() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lease
}

// Objects reports the number of live objects.
func (h *Heap) Objects() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.objects)
}

// Stats returns a copy of the heap's counters.
func (h *Heap) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// Frozen reports whether the heap has been frozen (shared heaps only).
func (h *Heap) Frozen() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.frozen
}

// Dead reports whether the heap has been merged away.
func (h *Heap) Dead() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dead
}

// Alloc allocates an instance of class c on h.
func (h *Heap) Alloc(c *object.Class) (*object.Object, error) {
	return h.AllocExtra(c, 0)
}

// AllocExtra allocates an instance of c charged with extra additional
// bytes, for objects carrying native payloads (string characters, buffers).
func (h *Heap) AllocExtra(c *object.Class, extra uint64) (*object.Object, error) {
	size := c.InstanceBytes + extra + uint64(h.reg.Cfg.HeaderExtra)
	o := object.New(c)
	o.SizeExtra = uint32(extra)
	if err := h.adopt(o, size); err != nil {
		return nil, err
	}
	return o, nil
}

// AllocArray allocates an n-element array of array class c on h.
func (h *Heap) AllocArray(c *object.Class, n int) (*object.Object, error) {
	if n < 0 {
		return nil, fmt.Errorf("heap: negative array size %d", n)
	}
	size := c.ArraySizeBytes(n) + uint64(h.reg.Cfg.HeaderExtra)
	o := object.NewArray(c, n)
	if err := h.adopt(o, size); err != nil {
		return nil, err
	}
	return o, nil
}

// adopt charges, addresses, and registers a freshly built object. The fast
// path — lease covers the size and the current chunk has room — touches
// only h.mu.
func (h *Heap) adopt(o *object.Object, size uint64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.dead {
		return ErrHeapDead
	}
	if h.frozen {
		return ErrFrozen
	}
	if h.reg.Faults.Fire(faults.SiteHeapAlloc) {
		// Injected allocation failure: refuse before any charge, exactly as
		// an exhausted memlimit would surface (OutOfMemoryError upstream).
		return &memlimit.ErrExceeded{Limit: h.limit, Need: size}
	}
	if h.lease >= size {
		h.lease -= size
		h.stats.FastHits++
	} else {
		h.stats.FastMisses++
		lease, err := h.limit.DebitLease(size, h.reg.Cfg.leaseBatch(), h.lease)
		if err != nil {
			// DebitLease consumed the refund; the lease is gone.
			h.lease = 0
			return err
		}
		h.lease = lease
	}
	addr, err := h.bump(size)
	if err != nil {
		h.limit.Credit(size)
		return err
	}
	o.Addr = addr
	o.Heap = h.ID
	o.Hash = int32(addr>>3) ^ int32(addr>>19)
	if h.gcActive {
		// Allocate black: an in-flight collection of this heap must not
		// sweep an object born after its root snapshot.
		o.SetMark(true)
	}
	h.objects[o] = struct{}{}
	h.bytes += size
	h.stats.Allocs++
	h.stats.AllocBytes += size
	return nil
}

// bump assigns an address, recycling a free chunk or leasing new pages as
// needed. Caller holds h.mu.
func (h *Heap) bump(size uint64) (uint64, error) {
	// An object never spans chunks; oversized objects get a dedicated
	// multi-page chunk.
	for h.cur < len(h.chunks) {
		c := &h.chunks[h.cur]
		capacity := uint64(c.pages) << vmaddr.PageShift
		if c.off+size <= capacity {
			addr := c.base + c.off
			c.off += size
			return addr, nil
		}
		h.cur++
	}
	std := h.reg.Cfg.pagesPerChunk()
	if n := len(h.free); n > 0 && size <= uint64(std)<<vmaddr.PageShift {
		c := h.free[n-1]
		h.free = h.free[:n-1]
		c.off = size
		h.chunks = append(h.chunks, c)
		h.cur = len(h.chunks) - 1
		return c.base, nil
	}
	pages := std
	if need := vmaddr.PagesFor(size); need > pages {
		pages = need
	}
	base, err := h.reg.Space.Reserve(h.ID, pages)
	if err != nil {
		return 0, err
	}
	h.chunks = append(h.chunks, chunk{base: base, pages: pages, off: size})
	h.cur = len(h.chunks) - 1
	return base, nil
}

// Contains reports whether o is registered in h.
func (h *Heap) Contains(o *object.Object) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	_, ok := h.objects[o]
	return ok
}

// RecordCrossRef notes that an object in h now references target, which
// lives in another heap. The write barrier calls this for every legal
// cross-heap pointer store. The exit item is charged to h and the entry
// item to the target's heap.
func (h *Heap) RecordCrossRef(target *object.Object) error {
	th, ok := h.reg.Lookup(target.Heap)
	if !ok {
		return fmt.Errorf("heap: cross ref to object in unknown heap %d", target.Heap)
	}
	if th == h {
		return nil
	}
	h.reg.crossMu.Lock()
	defer h.reg.crossMu.Unlock()
	if exit, ok := h.exits[target]; ok {
		// Re-confirm for any in-flight collection of h: the store proves
		// the exit live even if the mark snapshot predates it.
		exit.gen = h.gcGen
		return nil
	}
	entry, ok := th.entries[target]
	if !ok {
		if err := th.limit.Debit(entryItemBytes); err != nil {
			return err
		}
		entry = &EntryItem{Target: target}
		th.entries[target] = entry
	}
	if err := h.limit.Debit(exitItemBytes); err != nil {
		if entry.RefCount == 0 {
			delete(th.entries, target)
			th.limit.Credit(entryItemBytes)
		}
		return err
	}
	entry.RefCount++
	h.exits[target] = &ExitItem{Target: target, Entry: entry, gen: h.gcGen}
	h.exitsTo[target.Heap]++
	return nil
}

// EntryCount reports the number of entry items (for tests/stats).
func (h *Heap) EntryCount() int {
	h.reg.crossMu.Lock()
	defer h.reg.crossMu.Unlock()
	return len(h.entries)
}

// ExitCount reports the number of exit items (for tests/stats).
func (h *Heap) ExitCount() int {
	h.reg.crossMu.Lock()
	defer h.reg.crossMu.Unlock()
	return len(h.exits)
}

// RootFunc enumerates external GC roots of a heap (thread stacks, statics,
// VM handles). It must call visit for every root reference; visit ignores
// nils and objects outside the heap being collected, so providers may
// over-approximate.
type RootFunc func(visit func(*object.Object))

// Collect runs a full mark-and-sweep over h. roots supplies the external
// roots; entry items with positive counts are roots implicitly. References
// that leave the heap are not followed (that is the point of the design);
// instead the set of still-referenced exit targets is recomputed, and exit
// items that became unreachable release their entry items.
//
// Collections of different heaps overlap: reg.crossMu is held only to
// snapshot entry-item roots (plus a re-check for entries that appeared
// while marking) and to release dead exit items at the end. Mark and sweep
// run under h.mu alone. Callers must guarantee that the heap's own object
// graph and root set are not mutated during the collection — in the VM
// that holds because a heap's mutator threads and its collections share
// the scheduler goroutine (or the scheduler is stopped, for CollectAll).
// Cross-heap mutations (RecordCrossRef, allocations into other heaps,
// merges of unrelated heaps) are safe at any point.
func (h *Heap) Collect(roots RootFunc) GCResult {
	h.gcMu.Lock()
	defer h.gcMu.Unlock()

	reg := h.reg
	inFlight := reg.active.Add(1)
	defer reg.active.Add(-1)
	reg.noteOverlap(inFlight)

	var res GCResult
	var stack []*object.Object
	externalLive := make(map[*object.Object]bool)

	pushRoot := func(o *object.Object) {
		if o == nil || o.Heap != h.ID {
			return
		}
		// Membership and ownership are checked before the mark bit is
		// touched: roots may over-approximate, and a foreign object's
		// flags must never be read while its own heap collects.
		if _, mine := h.objects[o]; !mine {
			return
		}
		if o.Marked() {
			return
		}
		o.SetMark(true)
		stack = append(stack, o)
	}
	mark := func() {
		for len(stack) > 0 {
			o := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			res.Scanned++
			for _, ref := range o.Refs {
				if ref == nil {
					continue
				}
				if ref.Heap == h.ID {
					if !ref.Marked() {
						ref.SetMark(true)
						stack = append(stack, ref)
					}
				} else {
					externalLive[ref] = true
				}
			}
		}
	}

	// Window 1 (crossMu + h.mu): snapshot entry-item roots, open the
	// allocate-black window, and advance the exit generation so exits
	// recorded from here on survive this collection.
	reg.crossMu.Lock()
	h.mu.Lock()
	if h.dead {
		h.mu.Unlock()
		reg.crossMu.Unlock()
		return GCResult{}
	}
	h.gcGen++
	gen := h.gcGen
	h.gcActive = true
	if reg.Telemetry != nil {
		reg.Telemetry.Emit(telemetry.Event{
			Kind: telemetry.EvGCStart, Pid: h.Pid, Req: h.requester.Load(),
			A: h.bytes, B: uint64(len(h.objects)), Detail: h.Name,
		})
	}
	for _, e := range h.entries {
		if e.RefCount > 0 {
			pushRoot(e.Target)
		}
	}
	reg.crossMu.Unlock() // h.mu stays held: mark runs under the heap's own lock

	if roots != nil {
		roots(pushRoot)
	}
	mark()
	h.mu.Unlock()

	// Fault site: kill the owner between the mark and the entry re-check
	// windows — the collection must still complete and every invariant must
	// survive the process dying mid-GC (paper §2, safe termination).
	if reg.Faults.Fire(faults.SiteHeapMark) && reg.OnFaultKill != nil {
		reg.OnFaultKill(h)
	}

	// Window 2 (crossMu + h.mu): entry items created while marking ran (a
	// concurrent RecordCrossRef targeting this heap) are roots this
	// collection must still honor; close the marking under them.
	reg.crossMu.Lock()
	h.mu.Lock()
	for _, e := range h.entries {
		if e.RefCount > 0 {
			pushRoot(e.Target)
		}
	}
	reg.crossMu.Unlock() // h.mu stays held for the supplementary mark + sweep
	mark()

	// Sweep (h.mu only). Freed bytes and the standing lease are credited
	// back to the memlimit tree in one batch, and fully-dead chunks are
	// recycled or released.
	for o := range h.objects {
		if o.Marked() {
			o.SetMark(false)
			continue
		}
		size := h.sizeOf(o)
		delete(h.objects, o)
		h.bytes -= size
		res.Swept++
		res.FreedBytes += size
		o.Sever()
	}
	if res.Swept > 0 {
		res.PagesReleased = h.sweepChunksLocked()
	}
	if credit := res.FreedBytes + h.lease; credit > 0 {
		h.lease = 0
		h.limit.Credit(credit)
	}
	h.gcActive = false
	h.mu.Unlock()

	// Window 3 (crossMu + h.mu): release exit items whose targets this
	// heap provably no longer references, then publish stats.
	reg.crossMu.Lock()
	h.mu.Lock()
	var exitCredit uint64
	for target, exit := range h.exits {
		if externalLive[target] || exit.gen == gen {
			continue
		}
		delete(h.exits, target)
		if n := h.exitsTo[target.Heap] - 1; n > 0 {
			h.exitsTo[target.Heap] = n
		} else {
			delete(h.exitsTo, target.Heap)
		}
		exitCredit += exitItemBytes
		h.releaseEntryLocked(exit.Entry)
	}
	if exitCredit > 0 {
		h.limit.Credit(exitCredit)
	}

	res.Cycles = uint64(res.Scanned)*cyclesPerScan + uint64(res.Swept)*cyclesPerSweep
	h.stats.GCs++
	h.stats.Scanned += uint64(res.Scanned)
	h.stats.Swept += uint64(res.Swept)
	h.stats.FreedBytes += res.FreedBytes
	h.stats.GCCycles += res.Cycles
	h.stats.PagesReleased += uint64(res.PagesReleased)
	if reg.Telemetry != nil {
		h.emitFastPathLocked()
		reg.Telemetry.Emit(telemetry.Event{
			Kind: telemetry.EvGCEnd, Pid: h.Pid, Req: h.requester.Load(),
			A: res.Cycles, B: res.FreedBytes, Detail: h.Name,
		})
	}
	h.mu.Unlock()
	reg.crossMu.Unlock()
	return res
}

// emitFastPathLocked emits the allocation fast-path counters accumulated
// since the last emission. Caller holds h.mu and reg.Telemetry != nil.
func (h *Heap) emitFastPathLocked() {
	fh := h.stats.FastHits - h.fastFlushedHits
	fm := h.stats.FastMisses - h.fastFlushedMisses
	if fh == 0 && fm == 0 {
		return
	}
	h.fastFlushedHits = h.stats.FastHits
	h.fastFlushedMisses = h.stats.FastMisses
	h.reg.Telemetry.Emit(telemetry.Event{
		Kind: telemetry.EvGCFastPath, Pid: h.Pid, A: fh, B: fm, Detail: h.Name,
	})
}

// sweepChunksLocked retires chunks that no surviving object lies in:
// standard-size chunks go to the heap's bounded free list for reuse,
// everything else (oversized chunks, free-list overflow) is released back
// to the address space. Returns the number of pages released. Caller
// holds h.mu.
func (h *Heap) sweepChunksLocked() int {
	if len(h.chunks) == 0 {
		return 0
	}
	// Chunks are not address-ordered in general (merge appends foreign
	// ranges, recycling re-appends old bases), so sort an index for the
	// per-object binary search.
	idx := make([]int, len(h.chunks))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return h.chunks[idx[a]].base < h.chunks[idx[b]].base })
	live := make([]bool, len(h.chunks))
	for o := range h.objects {
		lo, hi := 0, len(idx)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			c := &h.chunks[idx[mid]]
			if o.Addr >= c.base+uint64(c.pages)<<vmaddr.PageShift {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(idx) && o.Addr >= h.chunks[idx[lo]].base {
			live[idx[lo]] = true
		}
	}
	std := h.reg.Cfg.pagesPerChunk()
	released := 0
	curSurvived := -1
	kept := h.chunks[:0]
	for i := range h.chunks {
		c := h.chunks[i]
		if live[i] {
			if i == h.cur {
				curSurvived = len(kept)
			}
			kept = append(kept, c)
			continue
		}
		if c.pages == std && len(h.free) < maxFreeChunks {
			c.off = 0
			h.free = append(h.free, c)
			continue
		}
		h.reg.Space.Release(h.ID, c.base, c.pages)
		released += c.pages
	}
	h.chunks = kept
	if curSurvived >= 0 {
		h.cur = curSurvived
	} else {
		h.cur = len(h.chunks)
	}
	return released
}

// flushLeaseLocked returns the standing headroom lease to the memlimit
// tree. Called before any operation that assumes limit use == live bytes
// (+ item bytes): merge, freeze, retarget. Caller holds h.mu.
func (h *Heap) flushLeaseLocked() {
	if h.lease > 0 {
		h.limit.Credit(h.lease)
		h.lease = 0
	}
}

// releaseEntryLocked decrements an entry item; at zero the item is removed
// from its heap. Caller holds reg.crossMu.
func (h *Heap) releaseEntryLocked(e *EntryItem) {
	e.RefCount--
	if e.RefCount > 0 {
		return
	}
	th, ok := h.reg.Lookup(e.Target.Heap)
	if !ok {
		return
	}
	if cur, present := th.entries[e.Target]; present && cur == e {
		delete(th.entries, e.Target)
		th.limit.Credit(entryItemBytes)
	}
}

// sizeOf recomputes the accounted size of o. Caller holds h.mu.
func (h *Heap) sizeOf(o *object.Object) uint64 {
	if o.IsArray() {
		return o.Class.ArraySizeBytes(o.ArrayLen()) + uint64(h.reg.Cfg.HeaderExtra)
	}
	return o.Class.InstanceBytes + uint64(o.SizeExtra) + uint64(h.reg.Cfg.HeaderExtra)
}

// RetargetLimit moves the heap's accounted use to a new memlimit and makes
// future credits/debits flow there. Used when a populated shared heap is
// frozen: its storage stops being the creator's and becomes system-wide,
// while sharers are charged through their own memlimits.
func (h *Heap) RetargetLimit(newLimit *memlimit.Limit) error {
	h.reg.crossMu.Lock()
	defer h.reg.crossMu.Unlock()
	h.mu.Lock()
	defer h.mu.Unlock()
	// The lease is an artifact of the old limit; return it first so the
	// transfer moves exactly the live bytes.
	h.flushLeaseLocked()
	// Item bytes are charged to h.limit as well; move everything.
	var itemBytes uint64
	itemBytes += uint64(len(h.entries)) * entryItemBytes
	itemBytes += uint64(len(h.exits)) * exitItemBytes
	if err := h.limit.Transfer(h.bytes+itemBytes, newLimit); err != nil {
		return err
	}
	h.limit = newLimit
	return nil
}

// HasExitsTo reports whether this heap holds any exit item targeting an
// object in heap id — i.e. whether objects in h still reference that heap.
// O(1): the per-target-heap exit counters are maintained by RecordCrossRef,
// Collect, and MergeInto.
func (h *Heap) HasExitsTo(id vmaddr.HeapID) bool {
	h.reg.crossMu.Lock()
	defer h.reg.crossMu.Unlock()
	return h.exitsTo[id] > 0
}

// Freeze marks a shared heap read-only for reference fields and closed for
// allocation (paper §2: after a shared heap is populated, "it is frozen and
// its size remains fixed for its lifetime"). The standing lease is
// returned: a frozen heap never allocates again.
func (h *Heap) Freeze() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.flushLeaseLocked()
	h.frozen = true
	for o := range h.objects {
		o.Flags |= object.FlagFrozen
	}
}
