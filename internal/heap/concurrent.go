package heap

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// CollectRequest pairs a heap with its external root provider for a batch
// collection.
type CollectRequest struct {
	Heap  *Heap
	Roots RootFunc
}

// CollectConcurrent collects every requested heap on a bounded pool of
// worker goroutines, so independent process collections overlap instead of
// queueing — the scaling behavior the entry/exit-item design exists to
// allow. workers <= 0 selects GOMAXPROCS; the pool never exceeds the
// number of requests. Results are returned in request order.
//
// Per-heap safety is the caller's obligation, exactly as for Collect: each
// heap's own mutator must be quiescent (in the VM, CollectAll runs while
// the scheduler is idle). Requests for the same heap are legal — the
// per-heap gcMu serializes them.
func (r *Registry) CollectConcurrent(reqs []CollectRequest, workers int) []GCResult {
	results := make([]GCResult, len(reqs))
	if len(reqs) == 0 {
		return results
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers == 1 {
		for i, req := range reqs {
			results[i] = req.Heap.Collect(req.Roots)
		}
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				results[i] = reqs[i].Heap.Collect(reqs[i].Roots)
			}
		}()
	}
	wg.Wait()
	return results
}
