// Fault-plane churn for the heap suite. Lives in an external test package:
// the auditor imports heap, so heap's own test package cannot import it —
// but an external _test package can, and the auditor is the oracle here.
package heap_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/audit"
	"repro/internal/bytecode"
	"repro/internal/faults"
	"repro/internal/heap"
	"repro/internal/memlimit"
	"repro/internal/object"
	"repro/internal/vmaddr"
)

// faultWorld is a registry with a kernel heap, a node class, and an armed
// fault plane.
type faultWorld struct {
	space  *vmaddr.Space
	reg    *heap.Registry
	root   *memlimit.Limit
	kernel *heap.Heap
	node   *object.Class
}

func newFaultWorld(t *testing.T, plane *faults.Plane) *faultWorld {
	t.Helper()
	w := &faultWorld{space: vmaddr.NewSpace()}
	w.reg = heap.NewRegistry(w.space, heap.Config{})
	w.reg.Faults = plane
	w.root = memlimit.NewRoot("root", memlimit.Unlimited)
	w.root.SetFaults(plane)
	w.kernel = w.reg.NewHeap(heap.KindKernel, "kernel", w.root.MustChild("kernel", memlimit.Unlimited, false))

	mod := bytecode.MustAssemble(`
.class java/lang/Object
.end
.class t/FNode
.field next Lt/FNode;
.field v I
.end`)
	objDef, _ := mod.Class("java/lang/Object")
	obj, err := object.NewClass(objDef, nil, "test", true)
	if err != nil {
		t.Fatal(err)
	}
	nodeDef, _ := mod.Class("t/FNode")
	w.node, err = object.NewClass(nodeDef, obj, "test", false)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// audit snapshots the whole world and runs every invariant rule.
func (w *faultWorld) audit(t *testing.T) {
	t.Helper()
	var limits *memlimit.Node
	var pages map[uint64]vmaddr.HeapID
	views := w.reg.SnapshotAll(func() {
		limits = w.root.Snapshot()
		pages = w.space.Dump()
	})
	rep := audit.Check(audit.World{
		Heaps:    views,
		Limits:   limits,
		Pages:    pages,
		KernelID: w.kernel.ID,
	}, audit.Options{Graph: true})
	if !rep.OK() {
		t.Fatalf("invariants violated:\n%s", rep)
	}
}

// TestHeapChurnUnderFaultPlane arms heap.alloc, heap.mark, and mem.debit
// at the acceptance probabilities and churns allocation, collection,
// mark-phase kills, and heap merges across several seeds. Injected
// failures are tolerated wherever a real exhaustion would be; the auditor
// must find consistent books after every merge and at the end.
func TestHeapChurnUnderFaultPlane(t *testing.T) {
	for seed := 1; seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			plan, err := faults.ParsePlan(fmt.Sprintf("seed=%d,heap.alloc=0.01,heap.mark=0.05,mem.debit=0.01", seed))
			if err != nil {
				t.Fatal(err)
			}
			plane := faults.NewPlane(plan)
			w := newFaultWorld(t, plane)
			rng := rand.New(rand.NewSource(int64(seed)))

			// A mark-phase fault marks the collecting heap for death, the
			// way the VM kills the owning process mid-GC.
			killed := map[*heap.Heap]bool{}
			w.reg.OnFaultKill = func(h *heap.Heap) { killed[h] = true }

			type proc struct {
				h     *heap.Heap
				roots []*object.Object
			}
			var live []*proc
			nextID := 0
			spawn := func() {
				lim, err := w.root.NewChild(fmt.Sprintf("proc-%d", nextID), 1<<20, false)
				if err != nil {
					return // injected debit refusal at creation: fine
				}
				live = append(live, &proc{h: w.reg.NewHeap(heap.KindUser, lim.Name(), lim)})
				nextID++
			}
			reap := func(p *proc) {
				if err := p.h.MergeInto(w.kernel); err != nil {
					t.Fatalf("merge: %v", err)
				}
				p.h.Limit().Release()
				w.kernel.Collect(func(func(*object.Object)) {})
			}
			spawn()
			spawn()

			for round := 0; round < 400; round++ {
				if len(live) == 0 {
					spawn()
					continue
				}
				p := live[rng.Intn(len(live))]
				// Build a short intra-heap list; injected alloc/debit
				// failures abandon the list mid-build, which the collector
				// must clean up without confusing the books.
				var head *object.Object
				for i := 0; i < 8; i++ {
					o, err := p.h.Alloc(w.node)
					if err != nil {
						head = nil
						break
					}
					o.SetRef(0, head)
					head = o
				}
				if head != nil && rng.Intn(2) == 0 {
					p.roots = append(p.roots, head)
				}
				if round%16 == 15 {
					if len(p.roots) > 4 {
						p.roots = p.roots[len(p.roots)/2:]
					}
					roots := p.roots
					p.h.Collect(func(visit func(*object.Object)) {
						for _, o := range roots {
							visit(o)
						}
					})
					if killed[p.h] {
						reap(p)
						for i, q := range live {
							if q == p {
								live = append(live[:i], live[i+1:]...)
								break
							}
						}
						spawn()
						w.audit(t)
					}
				}
			}

			// Teardown: merge every survivor and audit the final world.
			for _, p := range live {
				reap(p)
			}
			w.audit(t)
			if total, kernel := w.space.Pages(), w.space.PagesOwned(w.kernel.ID); total != kernel {
				t.Errorf("page table holds %d pages but kernel owns %d — dead heaps leaked pages", total, kernel)
			}
		})
	}
}
