package heap

import (
	"sort"

	"repro/internal/memlimit"
	"repro/internal/object"
	"repro/internal/vmaddr"
)

// PageRange is one leased chunk of the address space, as seen by a heap.
type PageRange struct {
	Base  uint64
	Pages int
}

// ObjView pairs a live object pointer with the value of its mutable
// ownership header, captured inside the snapshot cut. Numeric checks must
// use the captured Heap field, never the live header: a reclaim merge
// rewrites Object.Heap after the cut's locks are released.
type ObjView struct {
	Obj  *object.Object
	Heap vmaddr.HeapID
}

// HeapView is a point-in-time copy of one heap's accounting state, captured
// by Registry.SnapshotAll for the whole-kernel invariant auditor. Numeric
// fields (including the captured object headers) are copies; the object
// pointers themselves reference live objects, so graph-level inspection of
// Object.Refs is only meaningful while the VM is quiescent (no mutator
// running).
type HeapView struct {
	ID     vmaddr.HeapID
	Kind   Kind
	Name   string
	Pid    int32
	Frozen bool

	// Bytes is the heap's accounted live bytes; Lease its standing memlimit
	// headroom; SizedBytes the recomputed sum of sizeOf over every live
	// object (must equal Bytes).
	Bytes      uint64
	Lease      uint64
	SizedBytes uint64

	// Limit is the memlimit the heap charges; EntryBytes/ExitBytes are the
	// item bytes currently charged there.
	Limit      *memlimit.Limit
	EntryBytes uint64
	ExitBytes  uint64

	// Objects lists every live object with its captured header. Entries maps
	// entry-item targets (in THIS heap) to their reference counts; Exits maps
	// exit-item targets (in OTHER heaps) to the heap the target lived in at
	// capture; ExitsTo is the per-target-heap exit counter.
	Objects []ObjView
	Entries map[*object.Object]int
	Exits   map[*object.Object]vmaddr.HeapID
	ExitsTo map[vmaddr.HeapID]int

	// Chunks are the page ranges the heap bump-allocates in; Free is its
	// recycled-chunk free list. Together they are exactly the pages the heap
	// owns in the address-space table.
	Chunks []PageRange
	Free   []PageRange
}

// SnapshotAll captures every live heap's accounting state in one globally
// consistent cut: it acquires every heap's gcMu (by ID), the registry cross
// lock, and every heap's mutex (by ID), so no collection, merge, allocation,
// or cross-reference recording is in flight while the views are built.
//
// extra, if non-nil, runs while all locks are held; the caller uses it to
// capture the memlimit tree and the page table inside the same cut (the
// established lock order is h.mu → memlimit tree → Space, so both are safe
// to read there).
func (r *Registry) SnapshotAll(extra func()) []HeapView {
	heaps := r.Heaps()
	sort.Slice(heaps, func(i, j int) bool { return heaps[i].ID < heaps[j].ID })
	for _, h := range heaps {
		h.gcMu.Lock()
	}
	r.crossMu.Lock()
	for _, h := range heaps {
		h.mu.Lock()
	}

	views := make([]HeapView, 0, len(heaps))
	for _, h := range heaps {
		if h.dead {
			// Merged away between listing and locking; its pages and objects
			// already belong to the destination heap.
			continue
		}
		v := HeapView{
			ID:         h.ID,
			Kind:       h.Kind,
			Name:       h.Name,
			Pid:        h.Pid,
			Frozen:     h.frozen,
			Bytes:      h.bytes,
			Lease:      h.lease,
			Limit:      h.limit,
			EntryBytes: uint64(len(h.entries)) * entryItemBytes,
			ExitBytes:  uint64(len(h.exits)) * exitItemBytes,
			Objects:    make([]ObjView, 0, len(h.objects)),
			Entries:    make(map[*object.Object]int, len(h.entries)),
			Exits:      make(map[*object.Object]vmaddr.HeapID, len(h.exits)),
			ExitsTo:    make(map[vmaddr.HeapID]int, len(h.exitsTo)),
			Chunks:     make([]PageRange, 0, len(h.chunks)),
			Free:       make([]PageRange, 0, len(h.free)),
		}
		for o := range h.objects {
			v.Objects = append(v.Objects, ObjView{Obj: o, Heap: o.Heap})
			v.SizedBytes += h.sizeOf(o)
		}
		for target, e := range h.entries {
			v.Entries[target] = e.RefCount
		}
		for target := range h.exits {
			v.Exits[target] = target.Heap
		}
		for id, n := range h.exitsTo {
			v.ExitsTo[id] = n
		}
		for _, c := range h.chunks {
			v.Chunks = append(v.Chunks, PageRange{Base: c.base, Pages: c.pages})
		}
		for _, c := range h.free {
			v.Free = append(v.Free, PageRange{Base: c.base, Pages: c.pages})
		}
		views = append(views, v)
	}
	if extra != nil {
		extra()
	}

	for i := len(heaps) - 1; i >= 0; i-- {
		heaps[i].mu.Unlock()
	}
	r.crossMu.Unlock()
	for i := len(heaps) - 1; i >= 0; i-- {
		heaps[i].gcMu.Unlock()
	}
	return views
}
