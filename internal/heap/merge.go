package heap

import (
	"fmt"

	"repro/internal/object"
	"repro/internal/vmaddr"
)

// MergeInto merges h into dst, implementing the reclamation step of
// process termination (paper §2): "A process' memory is reclaimed upon
// termination by merging its heap with the kernel heap. All exit items are
// destroyed at this point and the corresponding entry items are updated.
// The kernel heap's collector can then collect all of the memory."
//
// After the merge h is dead: its pages belong to dst, its objects are
// registered with dst (and their header heap IDs updated), its accounted
// bytes move from h's memlimit to dst's, and entry/exit items between the
// two heaps dissolve. h's recycled-chunk free list is released back to the
// address space, and its standing memlimit lease is returned before the
// transfer. The caller runs dst's collector afterwards to free whatever
// was only reachable from the dead process.
func (h *Heap) MergeInto(dst *Heap) error {
	if h == dst {
		return fmt.Errorf("heap: merge of %q into itself", h.Name)
	}
	if h.reg != dst.reg {
		return fmt.Errorf("heap: merge across registries")
	}

	// Lock order: both heaps' gcMu by ID (excludes in-flight collections
	// of either heap), then the registry cross lock, then both heap
	// mutexes by ID.
	first, second := h, dst
	if first.ID > second.ID {
		first, second = second, first
	}
	first.gcMu.Lock()
	defer first.gcMu.Unlock()
	second.gcMu.Lock()
	defer second.gcMu.Unlock()

	h.reg.crossMu.Lock()
	defer h.reg.crossMu.Unlock()
	first.mu.Lock()
	defer first.mu.Unlock()
	second.mu.Lock()
	defer second.mu.Unlock()

	if h.dead {
		return ErrHeapDead
	}

	// Return the headroom lease before moving the accounted bytes, so the
	// transfer is exactly the live bytes. Flush the fast-path telemetry
	// watermark while the heap can still be attributed to its process.
	h.flushLeaseLocked()
	if h.reg.Telemetry != nil {
		h.emitFastPathLocked()
	}

	// Move accounted bytes. Item bytes move with their maps below.
	if err := h.limit.Transfer(h.bytes, dst.limit); err != nil {
		return err
	}
	dst.bytes += h.bytes
	h.bytes = 0

	// Transfer pages and objects. The free list holds chunks the collector
	// already proved empty; release them instead of handing dst dead
	// address space.
	for _, c := range h.free {
		h.reg.Space.Release(h.ID, c.base, c.pages)
		h.stats.PagesReleased += uint64(c.pages)
	}
	h.free = nil
	for _, c := range h.chunks {
		h.reg.Space.Reassign(c.base, c.pages, dst.ID)
		// Merged chunks are full from dst's perspective: dst never bump-
		// allocates into them, but its sweep releases them once every
		// object on them dies.
		dst.chunks = append(dst.chunks, chunk{base: c.base, pages: c.pages, off: uint64(c.pages) << vmaddr.PageShift})
	}
	h.chunks = nil
	for o := range h.objects {
		o.Heap = dst.ID
		dst.objects[o] = struct{}{}
	}
	h.objects = make(map[*object.Object]struct{})

	// Every exit counter aimed at h now describes references into dst:
	// remap them across all live heaps before dissolving items, so the
	// O(1) HasExitsTo bookkeeping stays exact. (crossMu → reg.mu is the
	// established order, see releaseEntryLocked.)
	for _, g := range h.reg.Heaps() {
		if n := g.exitsTo[h.ID]; n > 0 {
			delete(g.exitsTo, h.ID)
			g.exitsTo[dst.ID] += n
		}
	}

	// Destroy h's exit items: each releases its entry item. Exits that
	// targeted dst objects dissolve into intra-heap references.
	for target, exit := range h.exits {
		delete(h.exits, target)
		h.limit.Credit(exitItemBytes)
		h.releaseEntryLocked(exit.Entry)
	}
	h.exitsTo = make(map[vmaddr.HeapID]int)

	// dst's exit items whose targets just moved into dst are now
	// intra-heap: dissolve them too.
	for target, exit := range dst.exits {
		if target.Heap != dst.ID {
			continue
		}
		delete(dst.exits, target)
		if n := dst.exitsTo[dst.ID] - 1; n > 0 {
			dst.exitsTo[dst.ID] = n
		} else {
			delete(dst.exitsTo, dst.ID)
		}
		dst.limit.Credit(exitItemBytes)
		dst.releaseEntryLocked(exit.Entry)
	}

	// Remaining entry items of h describe references from third-party
	// heaps into objects that now live in dst; move them (and their
	// accounting) across.
	for target, entry := range h.entries {
		delete(h.entries, target)
		h.limit.Credit(entryItemBytes)
		if entry.RefCount <= 0 {
			continue
		}
		if err := dst.limit.Debit(entryItemBytes); err != nil {
			return err
		}
		dst.entries[target] = entry
	}

	h.dead = true
	h.reg.mu.Lock()
	delete(h.reg.heaps, h.ID)
	h.reg.mu.Unlock()
	return nil
}

// Orphaned reports whether a shared heap has no remaining sharers: no entry
// items with positive counts reference any of its objects. The kernel
// collector checks for orphaned shared heaps at the beginning of each GC
// cycle and merges them into the kernel heap.
func (h *Heap) Orphaned() bool {
	if h.Kind != KindShared {
		return false
	}
	h.reg.crossMu.Lock()
	defer h.reg.crossMu.Unlock()
	for _, e := range h.entries {
		if e.RefCount > 0 {
			return false
		}
	}
	return true
}
