package heap

import (
	"fmt"

	"repro/internal/object"
	"repro/internal/vmaddr"
)

// MergeInto merges h into dst, implementing the reclamation step of
// process termination (paper §2): "A process' memory is reclaimed upon
// termination by merging its heap with the kernel heap. All exit items are
// destroyed at this point and the corresponding entry items are updated.
// The kernel heap's collector can then collect all of the memory."
//
// After the merge h is dead: its pages belong to dst, its objects are
// registered with dst (and their header heap IDs updated), its accounted
// bytes move from h's memlimit to dst's, and entry/exit items between the
// two heaps dissolve. The caller runs dst's collector afterwards to free
// whatever was only reachable from the dead process.
func (h *Heap) MergeInto(dst *Heap) error {
	if h == dst {
		return fmt.Errorf("heap: merge of %q into itself", h.Name)
	}
	if h.reg != dst.reg {
		return fmt.Errorf("heap: merge across registries")
	}

	// Lock order: registry cross lock, then both heaps by ID.
	h.reg.crossMu.Lock()
	defer h.reg.crossMu.Unlock()
	first, second := h, dst
	if first.ID > second.ID {
		first, second = second, first
	}
	first.mu.Lock()
	defer first.mu.Unlock()
	second.mu.Lock()
	defer second.mu.Unlock()

	if h.dead {
		return ErrHeapDead
	}

	// Move accounted bytes. Item bytes move with their maps below.
	if err := h.limit.Transfer(h.bytes, dst.limit); err != nil {
		return err
	}
	dst.bytes += h.bytes
	h.bytes = 0

	// Transfer pages and objects.
	for _, c := range h.chunks {
		h.reg.Space.Reassign(c.base, c.pages, dst.ID)
		// Merged chunks are full from dst's perspective: dst never bump-
		// allocates into them.
		dst.chunks = append(dst.chunks, chunk{base: c.base, pages: c.pages, off: uint64(c.pages) << vmaddr.PageShift})
	}
	h.chunks = nil
	for o := range h.objects {
		o.Heap = dst.ID
		dst.objects[o] = struct{}{}
	}
	h.objects = make(map[*object.Object]struct{})

	// Destroy h's exit items: each releases its entry item. Exits that
	// targeted dst objects dissolve into intra-heap references.
	for target, exit := range h.exits {
		delete(h.exits, target)
		h.limit.Credit(exitItemBytes)
		h.releaseEntryLocked(exit.Entry)
	}

	// dst's exit items whose targets just moved into dst are now
	// intra-heap: dissolve them too.
	for target, exit := range dst.exits {
		if target.Heap != dst.ID {
			continue
		}
		delete(dst.exits, target)
		dst.limit.Credit(exitItemBytes)
		dst.releaseEntryLocked(exit.Entry)
	}

	// Remaining entry items of h describe references from third-party
	// heaps into objects that now live in dst; move them (and their
	// accounting) across.
	for target, entry := range h.entries {
		delete(h.entries, target)
		h.limit.Credit(entryItemBytes)
		if entry.RefCount <= 0 {
			continue
		}
		if err := dst.limit.Debit(entryItemBytes); err != nil {
			return err
		}
		dst.entries[target] = entry
	}

	h.dead = true
	h.reg.mu.Lock()
	delete(h.reg.heaps, h.ID)
	h.reg.mu.Unlock()
	return nil
}

// Orphaned reports whether a shared heap has no remaining sharers: no entry
// items with positive counts reference any of its objects. The kernel
// collector checks for orphaned shared heaps at the beginning of each GC
// cycle and merges them into the kernel heap.
func (h *Heap) Orphaned() bool {
	if h.Kind != KindShared {
		return false
	}
	h.reg.crossMu.Lock()
	defer h.reg.crossMu.Unlock()
	for _, e := range h.entries {
		if e.RefCount > 0 {
			return false
		}
	}
	return true
}
