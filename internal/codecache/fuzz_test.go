package codecache

import (
	"reflect"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/interp"
	"repro/internal/memlimit"
)

// FuzzCodeCacheKey attacks the cache key's canonicalization: two
// modules decoded from independent halves of the fuzz input must hash
// equal iff they are structurally equal. A canonicalization bug —
// missing length prefix, section aliasing, ignored field — shows up as
// structurally different modules sharing a hash (a false sharing
// collision: one tenant would execute another's code), or as equal
// modules hashing apart (a false miss: sharing silently stops). The
// manager's exact accounting acts as the auditor for the keyed
// attach/detach churn at the end.
func FuzzCodeCacheKey(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte("abcabcabc\x00\x01\x02deadbeef"))
	f.Add([]byte{0xff, 0, 0xff, 0, 0xff, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})

	f.Fuzz(func(t *testing.T, data []byte) {
		half := len(data) / 2
		m1 := decodeModule(data[:half])
		m2 := decodeModule(data[half:])

		h1, h2 := m1.Hash(), m2.Hash()
		// Compare the class lists, not the Modules: Hash memoizes its
		// digest in unexported fields, which are not content.
		if structEq := reflect.DeepEqual(m1.Classes, m2.Classes); structEq != (h1 == h2) {
			t.Fatalf("canonicalization broken: structurally equal=%v but hash equal=%v\nm1=%+v\nm2=%+v",
				structEq, h1 == h2, m1, m2)
		}

		// A re-decode of the same bytes must round-trip to the same hash
		// (hashing is a pure function of module content).
		if again := decodeModule(data[:half]).Hash(); again != h1 {
			t.Fatalf("hash not deterministic: %x vs %x", h1, again)
		}

		// Tier keys: the same module under different engine variants
		// must never share an artifact.
		k1 := Key{ModuleHash: h1, Variant: "jit"}
		k2 := Key{ModuleHash: h1, Variant: "jit+fuse+ic"}
		if k1 == k2 {
			t.Fatal("distinct variants collapsed to one key")
		}

		// Attach/detach churn with the decoded keys; the manager's books
		// must reconcile exactly (the same invariant VM.Audit checks).
		root := memlimit.NewRoot("vm", 1<<40)
		base, err := root.NewChild("codecache", memlimit.Unlimited, false)
		if err != nil {
			t.Fatal(err)
		}
		mgr := NewManager(base)
		lim, err := root.NewChild("proc:f", memlimit.Unlimited, false)
		if err != nil {
			t.Fatal(err)
		}
		who := new(int)
		var want uint64
		seen := make(map[*Artifact]bool)
		for i, k := range []Key{k1, k2, {ModuleHash: h2, Variant: "jit"}} {
			// Equal halves make duplicate keys: Insert dedups to the
			// existing artifact and Attach is idempotent, so the expected
			// charge counts each unique artifact once.
			a, err := mgr.Insert(k, "fuzz", interp.SyntheticProgram(i+1, 10))
			if err != nil {
				t.Fatal(err)
			}
			if !seen[a] {
				seen[a] = true
				want += a.Size
			}
			if err := mgr.Attach(a, who, lim); err != nil {
				t.Fatal(err)
			}
		}
		if got := lim.Use(); got != want {
			t.Fatalf("sharer charged %d, artifacts total %d", got, want)
		}
		mgr.DetachAll(who)
		if got := lim.Use(); got != 0 {
			t.Fatalf("churn leaked %d bytes", got)
		}
		if got := mgr.EvictOrphans(); got != want {
			t.Fatalf("eviction freed %d, want %d", got, want)
		}
		if got := base.Use(); got != 0 {
			t.Fatalf("base retains %d bytes after eviction", got)
		}
	})
}

// decodeModule deterministically builds a module from raw bytes. The
// alphabet is tiny and string boundaries are driven by the input, so
// the fuzzer can reach aliasing shapes ("ab"+"c" vs "a"+"bc") that
// would expose missing length prefixes in the canonical serialization.
func decodeModule(data []byte) *bytecode.Module {
	d := &decoder{data: data}
	m := &bytecode.Module{}
	nclasses := d.n(3)
	for i := 0; i < nclasses; i++ {
		c := &bytecode.ClassDef{Name: d.str(), Super: d.str()}
		nfields := d.n(3)
		for j := 0; j < nfields; j++ {
			c.Fields = append(c.Fields, bytecode.FieldDef{
				Name: d.str(), Desc: d.str(), Static: d.n(2) == 1,
			})
		}
		nmethods := d.n(3)
		for j := 0; j < nmethods; j++ {
			md := &bytecode.MethodDef{
				Name: d.str(), Sig: d.str(), Static: d.n(2) == 1,
				MaxStack: d.n(8), MaxLocals: d.n(8),
			}
			if d.n(4) != 0 { // 1-in-4 native (no body)
				md.Code = &bytecode.Code{}
				ninstr := d.n(4)
				for k := 0; k < ninstr; k++ {
					md.Code.Instrs = append(md.Code.Instrs, bytecode.Instr{
						Op: bytecode.Op(d.n(64)), A: int32(d.n(16)) - 8, B: int32(d.n(16)) - 8,
					})
				}
				nconst := d.n(3)
				for k := 0; k < nconst; k++ {
					md.Code.Consts = append(md.Code.Consts, bytecode.Const{
						Kind: bytecode.ConstKind(d.n(4)), I: int64(d.n(256)) - 128,
						D: float64(d.n(16)), S: d.str(), Class: d.str(), Name: d.str(), Sig: d.str(),
					})
				}
				nhand := d.n(2)
				for k := 0; k < nhand; k++ {
					md.Code.Handlers = append(md.Code.Handlers, bytecode.Handler{
						Start: d.n(8), End: d.n(8), PC: d.n(8), Type: d.str(),
					})
				}
			}
			c.Methods = append(c.Methods, md)
		}
		m.Classes = append(m.Classes, c)
	}
	return m
}

type decoder struct {
	data []byte
	pos  int
}

func (d *decoder) byte() byte {
	if d.pos >= len(d.data) {
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

// n draws a value in [0, mod).
func (d *decoder) n(mod int) int { return int(d.byte()) % mod }

// str draws a short string over {a, b} with input-driven length, so
// adjacent strings can alias across boundaries if prefixes were absent.
func (d *decoder) str() string {
	n := d.n(4)
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = 'a' + d.byte()%2
	}
	return string(buf)
}
