package codecache

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/faults"
	"repro/internal/interp"
	"repro/internal/memlimit"
	"repro/internal/telemetry"
)

func testManager(t *testing.T) (*Manager, *memlimit.Limit) {
	t.Helper()
	root := memlimit.NewRoot("vm", 1<<30)
	base, err := root.NewChild("codecache", memlimit.Unlimited, false)
	if err != nil {
		t.Fatal(err)
	}
	return NewManager(base), root
}

func testKey(b byte, variant string) Key {
	var h [32]byte
	h[0] = b
	return Key{ModuleHash: h, Variant: variant}
}

func sharerLimit(t *testing.T, root *memlimit.Limit, name string) *memlimit.Limit {
	t.Helper()
	lim, err := root.NewChild(name, 16<<20, false)
	if err != nil {
		t.Fatal(err)
	}
	return lim
}

// Full-charging: every sharer pays the whole artifact size while
// attached, and the last detach credits back exactly the charged bytes.
func TestAttachDetachExactCharges(t *testing.T) {
	m, root := testManager(t)
	prog := interp.SyntheticProgram(10, 100)
	a, err := m.Insert(testKey(1, "jit"), "mod", prog)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size != prog.Size() || a.Size == 0 {
		t.Fatalf("artifact size %d, program %d", a.Size, prog.Size())
	}
	if got := m.Base().Use(); got != a.Size {
		t.Fatalf("base use %d after insert, want %d", got, a.Size)
	}

	limA := sharerLimit(t, root, "proc:a")
	limB := sharerLimit(t, root, "proc:b")
	whoA, whoB := new(int), new(int)
	if err := m.Attach(a, whoA, limA); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(a, whoA, limA); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := m.Attach(a, whoB, limB); err != nil {
		t.Fatal(err)
	}
	if limA.Use() != a.Size || limB.Use() != a.Size {
		t.Fatalf("sharers charged %d/%d, want %d each (full charging, not 1/n)",
			limA.Use(), limB.Use(), a.Size)
	}
	if got := m.BytesFor(whoA); got != a.Size {
		t.Fatalf("BytesFor = %d, want %d", got, a.Size)
	}

	m.Detach(a, whoA)
	if limA.Use() != 0 {
		t.Fatalf("first detach left %d charged", limA.Use())
	}
	if limB.Use() != a.Size {
		t.Fatalf("detaching A disturbed B's charge: %d", limB.Use())
	}
	m.Detach(a, whoB) // last detach frees exactly the charged bytes
	if limB.Use() != 0 {
		t.Fatalf("last detach left %d charged", limB.Use())
	}
	m.Detach(a, whoB) // detaching a non-sharer is a no-op
	if got := m.Base().Use(); got != a.Size {
		t.Fatalf("base use %d after detaches, want %d (residency is independent of sharers)", got, a.Size)
	}
	limA.Release()
	limB.Release()
}

// Insert is idempotent per key: a racing duplicate is discarded without
// double-charging the base limit.
func TestInsertDuplicateKey(t *testing.T) {
	m, _ := testManager(t)
	p1 := interp.SyntheticProgram(5, 50)
	a1, err := m.Insert(testKey(1, "jit"), "mod", p1)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := m.Insert(testKey(1, "jit"), "mod", interp.SyntheticProgram(5, 50))
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("duplicate insert returned a different artifact")
	}
	if got := m.Base().Use(); got != p1.Size() {
		t.Fatalf("base use %d, want %d (no double charge)", got, p1.Size())
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

// Distinct engine variants of the same module are distinct artifacts.
func TestVariantsAreDistinct(t *testing.T) {
	m, _ := testManager(t)
	for _, v := range []string{"jit", "jit+fuse", "jit+ic", "jit+fuse+ic"} {
		if _, err := m.Insert(testKey(7, v), "mod", interp.SyntheticProgram(1, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != 4 {
		t.Fatalf("Len = %d, want 4 distinct variants", m.Len())
	}
	if _, ok := m.Lookup(testKey(7, "jit+fuse")); !ok {
		t.Fatal("variant lookup missed")
	}
	if _, ok := m.Lookup(testKey(7, "interp")); ok {
		t.Fatal("unknown variant hit")
	}
}

// Eviction under pressure drops only zero-sharer artifacts; an artifact
// with a live sharer is structurally unevictable.
func TestEvictOrphansSparesLiveSharers(t *testing.T) {
	m, root := testManager(t)
	held, err := m.Insert(testKey(1, "jit"), "held", interp.SyntheticProgram(4, 40))
	if err != nil {
		t.Fatal(err)
	}
	orphan, err := m.Insert(testKey(2, "jit"), "orphan", interp.SyntheticProgram(8, 80))
	if err != nil {
		t.Fatal(err)
	}
	lim := sharerLimit(t, root, "proc:a")
	who := new(int)
	if err := m.Attach(held, who, lim); err != nil {
		t.Fatal(err)
	}

	freed := m.EvictOrphans()
	if freed != orphan.Size {
		t.Fatalf("evicted %d bytes, want %d (the orphan only)", freed, orphan.Size)
	}
	if _, ok := m.Lookup(held.Key); !ok {
		t.Fatal("eviction dropped an artifact with a live sharer")
	}
	if _, ok := m.Lookup(orphan.Key); ok {
		t.Fatal("orphan survived eviction")
	}
	if got := m.Base().Use(); got != held.Size {
		t.Fatalf("base use %d after eviction, want %d", got, held.Size)
	}
	if lim.Use() != held.Size {
		t.Fatalf("eviction disturbed a sharer charge: %d", lim.Use())
	}

	// Once the sharer detaches, the artifact becomes evictable.
	m.Detach(held, who)
	if freed := m.EvictOrphans(); freed != held.Size {
		t.Fatalf("post-detach eviction freed %d, want %d", freed, held.Size)
	}
	if got := m.Base().Use(); got != 0 {
		t.Fatalf("base use %d after full eviction, want 0", got)
	}
	lim.Release()
}

// A firing codecache.attach fault leaks zero bytes and zero refcounts.
func TestAttachFaultUnwindsCleanly(t *testing.T) {
	m, root := testManager(t)
	plan, err := faults.ParsePlan("seed=1,codecache.attach=@1")
	if err != nil {
		t.Fatal(err)
	}
	m.Faults = faults.NewPlane(plan)
	a, err := m.Insert(testKey(1, "jit"), "mod", interp.SyntheticProgram(3, 30))
	if err != nil {
		t.Fatal(err)
	}
	lim := sharerLimit(t, root, "proc:a")
	who := new(int)

	err = m.Attach(a, who, lim)
	if !errors.Is(err, ErrAttachFault) {
		t.Fatalf("attach err = %v, want ErrAttachFault", err)
	}
	if lim.Use() != 0 {
		t.Fatalf("aborted attach leaked %d bytes", lim.Use())
	}
	if a.Sharers() != 0 {
		t.Fatalf("aborted attach leaked %d refcount(s)", a.Sharers())
	}

	// The site fired once (@1); the retry succeeds and charges normally.
	if err := m.Attach(a, who, lim); err != nil {
		t.Fatal(err)
	}
	if lim.Use() != a.Size || a.Sharers() != 1 {
		t.Fatalf("retry charged %d bytes, %d sharers", lim.Use(), a.Sharers())
	}
	m.Detach(a, who)
	lim.Release()
}

// An attach that overruns the sharer's memlimit charges nothing.
func TestAttachOverLimit(t *testing.T) {
	m, root := testManager(t)
	a, err := m.Insert(testKey(1, "jit"), "mod", interp.SyntheticProgram(100, 10000))
	if err != nil {
		t.Fatal(err)
	}
	lim, err := root.NewChild("proc:tiny", 16, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(a, new(int), lim); err == nil {
		t.Fatal("attach fit into a 16-byte limit")
	}
	if lim.Use() != 0 || a.Sharers() != 0 {
		t.Fatalf("failed attach left use=%d sharers=%d", lim.Use(), a.Sharers())
	}
	lim.Release()
}

// Concurrent attach/detach/kill churn under -race: charges stay exact
// and every limit drains to zero.
func TestConcurrentAttachDetachKill(t *testing.T) {
	m, root := testManager(t)
	const artifacts = 4
	const workers = 8
	const rounds = 200

	arts := make([]*Artifact, artifacts)
	for i := range arts {
		a, err := m.Insert(testKey(byte(i+1), "jit"), fmt.Sprintf("mod%d", i), interp.SyntheticProgram(i+1, 10*(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		arts[i] = a
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lim := sharerLimit(t, root, fmt.Sprintf("proc:w%d", w))
			who := new(int)
			for r := 0; r < rounds; r++ {
				a := arts[(w+r)%artifacts]
				switch r % 3 {
				case 0:
					_ = m.Attach(a, who, lim)
				case 1:
					m.Detach(a, who)
				case 2: // kill: drop every handle at once
					m.DetachAll(who)
				}
			}
			m.DetachAll(who)
			if got := lim.Use(); got != 0 {
				t.Errorf("worker %d: %d bytes still charged after DetachAll", w, got)
			}
			lim.Release()
		}(w)
	}
	wg.Wait()

	var want uint64
	for _, a := range arts {
		if n := a.Sharers(); n != 0 {
			t.Errorf("artifact %q still has %d sharer(s)", a.Name, n)
		}
		want += a.Size
	}
	if got := m.Base().Use(); got != want {
		t.Fatalf("base use %d after churn, want %d", got, want)
	}
}

// Snapshot produces a consistent charge table the auditor can reconcile.
func TestSnapshotConsistency(t *testing.T) {
	m, root := testManager(t)
	a, err := m.Insert(testKey(1, "jit"), "mod", interp.SyntheticProgram(2, 20))
	if err != nil {
		t.Fatal(err)
	}
	lim := sharerLimit(t, root, "proc:a")
	if err := m.Attach(a, new(int), lim); err != nil {
		t.Fatal(err)
	}
	m.Snapshot(func(infos []ChargeInfo) {
		if len(infos) != 1 {
			t.Fatalf("snapshot has %d artifacts, want 1", len(infos))
		}
		ci := infos[0]
		if ci.Name != "mod" || ci.Variant != "jit" || ci.Size != a.Size {
			t.Fatalf("snapshot row %+v", ci)
		}
		if len(ci.Sharers) != 1 || ci.Sharers[0] != lim {
			t.Fatalf("snapshot sharers %v", ci.Sharers)
		}
	})
}

// Metrics: hits/misses/attach/detach/evict counters and residency
// gauges track the manager's state.
func TestMetrics(t *testing.T) {
	m, root := testManager(t)
	scope := telemetry.NewRegistry().Kernel()
	m.Metrics = scope

	key := testKey(1, "jit")
	if _, ok := m.Lookup(key); ok {
		t.Fatal("phantom artifact")
	}
	a, err := m.Insert(key, "mod", interp.SyntheticProgram(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Lookup(key); !ok {
		t.Fatal("lookup missed after insert")
	}
	lim := sharerLimit(t, root, "proc:a")
	who := new(int)
	if err := m.Attach(a, who, lim); err != nil {
		t.Fatal(err)
	}
	m.Detach(a, who)
	m.EvictOrphans()

	for name, want := range map[string]uint64{
		telemetry.MCodeHits:     1,
		telemetry.MCodeMisses:   1,
		telemetry.MCodeAttached: 1,
		telemetry.MCodeDetached: 1,
		telemetry.MCodeEvicted:  1,
	} {
		if got := scope.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := scope.Gauge(telemetry.MCodeResident).Value(); got != 0 {
		t.Errorf("resident gauge %d after eviction, want 0", got)
	}
	lim.Release()
}
