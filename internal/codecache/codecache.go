// Package codecache implements the shared JIT code cache: compile a
// module once per engine configuration, share the immutable compiled
// artifact read-only across every process that loads identical bytecode
// (the ShareJIT observation applied to the paper's process model).
//
// Artifacts are content-addressed — keyed by the module's canonical
// hash plus the engine variant ("jit", "jit+fuse+ic", ...) — so two
// processes share code iff a loader would build identical namespaces
// and the engine would compile identical bodies. Residency follows the
// paper's full-charging rule for shared state, exactly as shared heaps
// do: every sharer is charged the *full* artifact size on attach and
// credited on detach, so no process is ever charged asynchronously when
// another sharer exits. The cache's own residency is charged to a base
// memlimit (a child of the VM root), debited on insert and credited on
// evict; zero-sharer artifacts are evicted only under kernel memory
// pressure, never while a live process holds a handle.
package codecache

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/faults"
	"repro/internal/interp"
	"repro/internal/memlimit"
	"repro/internal/telemetry"
)

// ErrAttachFault is returned when the codecache.attach fault site fires
// mid-attach; the attach has fully unwound when callers see it.
var ErrAttachFault = errors.New("codecache: injected attach fault")

// Key content-addresses one artifact: the module's canonical hash plus
// the compiling engine's configuration. Engine variants that Name()
// collapses ("jit-opt") stay distinct here — a fused body and a plain
// body are different artifacts.
type Key struct {
	ModuleHash [32]byte
	Variant    string
}

// Artifact is one immutable compiled program plus its sharing
// bookkeeping. Size is the modeled resident size (see
// interp.CompileProgram); every sharer is charged exactly Size.
type Artifact struct {
	Key  Key
	Name string // first loader's module description, for ps/metrics
	Size uint64
	// Program holds the relocatable compiled bodies, installable into
	// any namespace defining identical bytecode.
	Program *interp.Program

	sharers map[any]*memlimit.Limit
}

// Sharers reports the number of processes currently charged for the
// artifact. Callers must not rely on it for synchronization; it is a
// point-in-time read under the manager lock via Snapshot, or a racy
// convenience otherwise.
func (a *Artifact) Sharers() int { return len(a.sharers) }

// SharedBy reports whether who is currently attached.
func (a *Artifact) SharedBy(who any) bool {
	_, ok := a.sharers[who]
	return ok
}

// Manager tracks every cached artifact of one VM. Like the shared-heap
// manager, the namespace is a global resource: keys are charged
// nothing, artifact residency is charged to the base limit, and each
// sharer additionally pays the full artifact size against its own
// memlimit. The established lock order is Manager.mu → memlimit tree,
// so Snapshot callbacks may read limits.
type Manager struct {
	// Metrics, when set, receives codecache.* counters and gauges
	// (kernel scope of the owning VM). Set once at VM construction.
	Metrics *telemetry.Scope
	// Faults, when set, arms the codecache.attach crash-consistency
	// site: a firing attach unwinds its debit and reports an error,
	// leaking zero bytes and zero refcounts.
	Faults *faults.Plane

	mu        sync.Mutex
	base      *memlimit.Limit // accounting home for cache residency
	artifacts map[Key]*Artifact
}

// NewManager creates a manager; base is the memlimit that owns cache
// residency (typically a child of the VM root).
func NewManager(base *memlimit.Limit) *Manager {
	return &Manager{base: base, artifacts: make(map[Key]*Artifact)}
}

// Base returns the memlimit that owns cache residency (the auditor
// re-derives its direct use from the artifact table).
func (m *Manager) Base() *memlimit.Limit { return m.base }

// Peek reports whether an artifact exists for key without counting a
// hit or miss. Loaders use it to decide whether the module's content is
// already proven (a resident artifact implies the exact same bytecode
// verified and compiled once) before the metered Lookup on the attach
// path.
func (m *Manager) Peek(key Key) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.artifacts[key]
	return ok
}

// Lookup finds an artifact by key, counting the hit or miss.
func (m *Manager) Lookup(key Key) (*Artifact, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	a, ok := m.artifacts[key]
	if m.Metrics != nil {
		if ok {
			m.Metrics.Counter(telemetry.MCodeHits).Inc()
		} else {
			m.Metrics.Counter(telemetry.MCodeMisses).Inc()
		}
	}
	return a, ok
}

// Insert registers a freshly compiled program under key, debiting the
// base limit for its residency. If another loader raced the compile and
// inserted first, the existing artifact wins and the duplicate is
// discarded (its modeled bytes were never charged). The artifact starts
// with zero sharers; callers Attach separately.
func (m *Manager) Insert(key Key, name string, p *interp.Program) (*Artifact, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if a, dup := m.artifacts[key]; dup {
		return a, nil
	}
	size := p.Size()
	if err := m.base.Debit(size); err != nil {
		return nil, fmt.Errorf("codecache: insert %q: %w", name, err)
	}
	a := &Artifact{
		Key:     key,
		Name:    name,
		Size:    size,
		Program: p,
		sharers: make(map[any]*memlimit.Limit),
	}
	m.artifacts[key] = a
	m.gauges()
	return a, nil
}

// Attach charges who (through limit) the full artifact size. Attaching
// twice is idempotent. If the codecache.attach fault site fires, the
// attach unwinds — the debit is credited back, the sharer is not
// recorded — and the injected error surfaces to the caller.
func (m *Manager) Attach(a *Artifact, who any, limit *memlimit.Limit) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := a.sharers[who]; dup {
		return nil
	}
	if err := limit.Debit(a.Size); err != nil {
		return err
	}
	// Crash-consistency window: the debit has landed but the sharer is
	// not yet recorded. A firing here must leave no residue.
	if m.Faults != nil && m.Faults.Fire(faults.SiteCodeAttach) {
		limit.Credit(a.Size)
		if m.Metrics != nil {
			m.Metrics.Counter(telemetry.MCodeAborts).Inc()
		}
		return fmt.Errorf("attach %q: %w", a.Name, ErrAttachFault)
	}
	a.sharers[who] = limit
	if m.Metrics != nil {
		m.Metrics.Counter(telemetry.MCodeAttached).Inc()
	}
	return nil
}

// Detach credits who's charge back. Detaching a non-sharer is a no-op.
func (m *Manager) Detach(a *Artifact, who any) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if lim, ok := a.sharers[who]; ok {
		lim.Credit(a.Size)
		delete(a.sharers, who)
		if m.Metrics != nil {
			m.Metrics.Counter(telemetry.MCodeDetached).Inc()
		}
	}
}

// DetachAll removes who from every artifact (process termination).
func (m *Manager) DetachAll(who any) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, a := range m.artifacts {
		if lim, ok := a.sharers[who]; ok {
			lim.Credit(a.Size)
			delete(a.sharers, who)
			if m.Metrics != nil {
				m.Metrics.Counter(telemetry.MCodeDetached).Inc()
			}
		}
	}
}

// BytesFor reports the total artifact bytes who is currently charged
// for (the ps/top CODE column).
func (m *Manager) BytesFor(who any) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n uint64
	for _, a := range m.artifacts {
		if _, ok := a.sharers[who]; ok {
			n += a.Size
		}
	}
	return n
}

// ResidentBytes reports the cache's total residency (charged to base).
func (m *Manager) ResidentBytes() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n uint64
	for _, a := range m.artifacts {
		n += a.Size
	}
	return n
}

// Len reports the number of resident artifacts.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.artifacts)
}

// EvictOrphans drops every zero-sharer artifact, crediting the base
// limit for each. Artifacts with live sharers are structurally
// unevictable — the loop never touches them — so a process' installed
// code can never vanish underneath it. Returns the bytes reclaimed.
// The VM calls this under kernel memory pressure (membal's budget
// accounting counts cache residency against the global budget).
func (m *Manager) EvictOrphans() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var freed uint64
	for key, a := range m.artifacts {
		if len(a.sharers) > 0 {
			continue
		}
		m.base.Credit(a.Size)
		freed += a.Size
		delete(m.artifacts, key)
		if m.Metrics != nil {
			m.Metrics.Counter(telemetry.MCodeEvicted).Inc()
		}
	}
	if freed > 0 {
		m.gauges()
	}
	return freed
}

// Artifacts lists all resident artifacts sorted by name then variant.
func (m *Manager) Artifacts() []*Artifact {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Artifact, 0, len(m.artifacts))
	for _, a := range m.artifacts {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Key.Variant < out[j].Key.Variant
	})
	return out
}

// ChargeInfo is a point-in-time copy of one artifact's charge state,
// captured by Snapshot for the invariant auditor.
type ChargeInfo struct {
	Name    string
	Variant string
	Size    uint64
	// Sharers are the memlimits currently charged Size each.
	Sharers []*memlimit.Limit
}

// Snapshot invokes fn with the charge table while holding the manager
// lock, so no insert, attach, detach, or evict can run while fn
// captures the rest of the world. fn may read memlimits (lock order
// Manager.mu → memlimit tree).
func (m *Manager) Snapshot(fn func([]ChargeInfo)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	infos := make([]ChargeInfo, 0, len(m.artifacts))
	for _, a := range m.artifacts {
		ci := ChargeInfo{Name: a.Name, Variant: a.Key.Variant, Size: a.Size}
		for _, lim := range a.sharers {
			ci.Sharers = append(ci.Sharers, lim)
		}
		infos = append(infos, ci)
	}
	sort.Slice(infos, func(i, j int) bool {
		if infos[i].Name != infos[j].Name {
			return infos[i].Name < infos[j].Name
		}
		return infos[i].Variant < infos[j].Variant
	})
	fn(infos)
}

// gauges refreshes the resident-size gauges; callers hold m.mu.
func (m *Manager) gauges() {
	if m.Metrics == nil {
		return
	}
	var n uint64
	for _, a := range m.artifacts {
		n += a.Size
	}
	m.Metrics.Gauge(telemetry.MCodeArtifacts).Set(uint64(len(m.artifacts)))
	m.Metrics.Gauge(telemetry.MCodeResident).Set(n)
}
