package telemetry

import "sync/atomic"

// Hub is the VM's telemetry brain: it owns the registry and the tracer
// and implements Sink. Emitted events are routed into metrics
// unconditionally (so accounting is always auditable) and appended to the
// trace ring only while tracing is enabled.
type Hub struct {
	Reg   *Registry
	Trace *Tracer
	// Spans records completed request spans from the serving plane. Always
	// non-nil; recording is gated by its own enabled flag (spans are useful
	// without full event tracing and vice versa).
	Spans *SpanRecorder

	tracing atomic.Bool
	// clock supplies virtual-cycle timestamps. Set once during VM
	// construction, before any concurrent emitter runs.
	clock func() uint64
	// auditor, when set, produces the /audit route's payload (a JSON-
	// encodable invariant report; this package stays decoupled from the
	// auditor's types). Set once during VM construction.
	auditor func() any
}

// NewHub builds a hub with a fresh registry and a tracer of ringSize
// events (DefaultRingSize if <= 0).
func NewHub(ringSize int) *Hub {
	return &Hub{Reg: NewRegistry(), Trace: NewTracer(ringSize), Spans: NewSpanRecorder(0)}
}

// SetClock installs the virtual-cycle clock used to stamp events that
// arrive without a timestamp. Must be called before concurrent use.
func (h *Hub) SetClock(clock func() uint64) { h.clock = clock }

// SetAuditor installs the producer behind the /audit route. Must be called
// before the HTTP surface starts serving.
func (h *Hub) SetAuditor(fn func() any) { h.auditor = fn }

// SetTracing switches event recording on or off. Metrics accumulate
// either way.
func (h *Hub) SetTracing(on bool) { h.tracing.Store(on) }

// TracingEnabled implements Sink.
func (h *Hub) TracingEnabled() bool { return h.tracing.Load() }

// Emit implements Sink: stamp, route to metrics, and (when tracing)
// append to the ring.
func (h *Hub) Emit(e Event) {
	if e.Time == 0 && h.clock != nil {
		e.Time = h.clock()
	}
	h.route(e)
	if h.tracing.Load() {
		h.Trace.Append(e)
	}
}

// route updates the registry for events that carry metric meaning. The
// per-kind work is a few uncontended atomics; the only hot kind is
// EvDispatch (once per scheduling quantum).
func (h *Hub) route(e Event) {
	switch e.Kind {
	case EvProcCreate:
		s := h.Reg.ProcNamed(e.Pid, e.Detail)
		s.SetMeta("state", "running")
		h.Reg.kernel.Counter(MProcsCreated).Inc()
	case EvThreadSpawn:
		h.Reg.Proc(e.Pid).Counter(MThreadsSpawned).Inc()
	case EvProcKill:
		h.Reg.Proc(e.Pid).SetMeta("state", "killed")
		h.Reg.kernel.Counter(MProcsKilled).Inc()
	case EvProcExit:
		h.Reg.Proc(e.Pid).SetMeta("state", "exited")
		h.Reg.kernel.Counter(MProcsExited).Inc()
	case EvProcReclaim:
		h.Reg.Proc(e.Pid).SetMeta("state", "reclaimed")
		h.Reg.kernel.Counter(MProcsReclaimed).Inc()
	case EvGCEnd:
		s := h.Reg.Proc(e.Pid)
		s.Counter(MGCCount).Inc()
		s.Counter(MGCCycles).Add(e.A)
		s.Counter(MGCFreedBytes).Add(e.B)
		s.Histogram(MGCPause).Observe(e.A)
	case EvBarrierViolation:
		h.Reg.kernel.Counter(MViolations).Inc()
	case EvDispatch:
		s := h.Reg.Proc(e.Pid)
		s.Counter(MDispatches).Inc()
		s.Histogram(MQuantum).Observe(e.A)
	case EvYield:
		h.Reg.Proc(e.Pid).Counter(MYields).Inc()
	case EvMemFail:
		h.Reg.kernel.Counter(MMemFailures).Inc()
	case EvSharedCreate:
		h.Reg.kernel.Counter(MSharedCreated).Inc()
	case EvSharedFreeze:
		h.Reg.kernel.Counter(MSharedFrozen).Inc()
	case EvSharedAttach:
		h.Reg.kernel.Counter(MSharedAttached).Inc()
	case EvSharedDetach:
		h.Reg.kernel.Counter(MSharedDetached).Inc()
	case EvGCFastPath:
		s := h.Reg.Proc(e.Pid)
		s.Counter(MGCFastHits).Add(e.A)
		s.Counter(MGCFastMisses).Add(e.B)
		if e.Pid != 0 {
			// Keep a kernel-wide aggregate so `top` can summarize the
			// allocation fast path without walking every scope.
			h.Reg.kernel.Counter(MGCFastHits).Add(e.A)
			h.Reg.kernel.Counter(MGCFastMisses).Add(e.B)
		}
	case EvGCOverlap:
		h.Reg.kernel.Gauge(MGCOverlap).Set(e.A)
	}
}
