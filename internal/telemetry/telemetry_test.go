package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestTracerRingWrapAround(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 20; i++ {
		tr.Append(Event{Kind: EvDispatch, Pid: 1, A: uint64(i)})
	}
	if got := tr.Total(); got != 20 {
		t.Fatalf("Total = %d, want 20", got)
	}
	if got := tr.Dropped(); got != 12 {
		t.Fatalf("Dropped = %d, want 12", got)
	}
	snap := tr.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("Snapshot len = %d, want 8", len(snap))
	}
	// Oldest retained first, sequence numbers contiguous and monotonic.
	for i, e := range snap {
		want := uint64(12 + i)
		if e.Seq != want {
			t.Errorf("snap[%d].Seq = %d, want %d", i, e.Seq, want)
		}
		if e.A != want {
			t.Errorf("snap[%d].A = %d, want %d", i, e.A, want)
		}
	}
}

func TestTracerNoWrap(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 5; i++ {
		tr.Append(Event{Kind: EvYield, A: uint64(i)})
	}
	snap := tr.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("Snapshot len = %d, want 5", len(snap))
	}
	if tr.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", tr.Dropped())
	}
	for i, e := range snap {
		if e.Seq != uint64(i) {
			t.Errorf("snap[%d].Seq = %d, want %d", i, e.Seq, i)
		}
	}
}

func TestConcurrentEmit(t *testing.T) {
	hub := NewHub(1 << 10)
	hub.SetTracing(true)
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(pid int32) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				hub.Emit(Event{Kind: EvDispatch, Pid: pid, A: uint64(i)})
				hub.Emit(Event{Kind: EvGCEnd, Pid: pid, A: 100, B: 50})
			}
		}(int32(g + 1))
	}
	// A concurrent reader, as the HTTP endpoint would be.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = hub.Reg.Rows(nil)
			_ = hub.Trace.Snapshot()
		}
	}()
	wg.Wait()
	<-done

	want := uint64(goroutines * perG * 2)
	if got := hub.Trace.Total(); got != want {
		t.Fatalf("Trace.Total = %d, want %d", got, want)
	}
	for g := 1; g <= goroutines; g++ {
		s := hub.Reg.Proc(int32(g))
		if got := s.Counter(MDispatches).Value(); got != perG {
			t.Errorf("pid %d dispatches = %d, want %d", g, got, perG)
		}
		if got := s.Counter(MGCCycles).Value(); got != perG*100 {
			t.Errorf("pid %d gc cycles = %d, want %d", g, got, perG*100)
		}
		if got := s.Histogram(MGCPause).Count(); got != perG {
			t.Errorf("pid %d pause count = %d, want %d", g, got, perG)
		}
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(10) // bucket index bits.Len64(10) = 4
	}
	h.Observe(1 << 20)
	if h.Count() != 101 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Max() != 1<<20 {
		t.Fatalf("Max = %d", h.Max())
	}
	if got := h.Quantile(0.5); got < 10 || got > 15 {
		t.Errorf("p50 = %d, want within (10,15]", got)
	}
	if got := h.Quantile(1.0); got < 1<<20 {
		t.Errorf("p100 = %d, want >= %d", got, 1<<20)
	}
	if h.Mean() == 0 {
		t.Error("Mean = 0")
	}
	s := h.Summary()
	for _, frag := range []string{"count=101", "p50<=", "max=1048576"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Summary %q missing %q", s, frag)
		}
	}
}

func TestHistogramZeroAndOverflow(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(^uint64(0)) // must clamp to the top bucket without panicking
	if h.Count() != 2 {
		t.Fatalf("Count = %d", h.Count())
	}
	b := h.Buckets()
	if b[0] != 1 {
		t.Errorf("zero bucket = %d, want 1", b[0])
	}
	if b[HistBuckets-1] != 1 {
		t.Errorf("overflow bucket = %d, want 1", b[HistBuckets-1])
	}
}

func TestWriteJSONLFieldNames(t *testing.T) {
	tr := NewTracer(8)
	tr.Append(Event{Kind: EvGCEnd, Pid: 3, Time: 77, A: 1234, B: 5678, Detail: "proc:x#3"})
	tr.Append(Event{Kind: EvProcKill, Pid: 3, Detail: "CPU limit exceeded"})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	gc := lines[0]
	if gc["kind"] != "gc-end" {
		t.Errorf("kind = %v", gc["kind"])
	}
	if gc["cycles"] != float64(1234) || gc["freed_bytes"] != float64(5678) {
		t.Errorf("gc-end payload keys wrong: %v", gc)
	}
	if gc["t_cycles"] != float64(77) {
		t.Errorf("t_cycles = %v", gc["t_cycles"])
	}
	if lines[1]["detail"] != "CPU limit exceeded" {
		t.Errorf("kill detail = %v", lines[1]["detail"])
	}
}

func TestHubTracingGate(t *testing.T) {
	hub := NewHub(8)
	hub.Emit(Event{Kind: EvYield, Pid: 1})
	if got := hub.Trace.Total(); got != 0 {
		t.Fatalf("ring grew with tracing off: %d", got)
	}
	// Metrics must accumulate regardless.
	if got := hub.Reg.Proc(1).Counter(MYields).Value(); got != 1 {
		t.Fatalf("yields = %d, want 1", got)
	}
	hub.SetTracing(true)
	hub.Emit(Event{Kind: EvYield, Pid: 1})
	if got := hub.Trace.Total(); got != 1 {
		t.Fatalf("ring did not grow with tracing on: %d", got)
	}
}

func TestHubClockStampsEvents(t *testing.T) {
	hub := NewHub(8)
	hub.SetTracing(true)
	var now uint64 = 42_000
	hub.SetClock(func() uint64 { return now })
	hub.Emit(Event{Kind: EvProcCreate, Pid: 1, Detail: "a"})
	now = 99_000
	hub.Emit(Event{Kind: EvProcExit, Pid: 1})
	snap := hub.Trace.Snapshot()
	if snap[0].Time != 42_000 || snap[1].Time != 99_000 {
		t.Fatalf("timestamps = %d, %d", snap[0].Time, snap[1].Time)
	}
	// Pre-stamped events keep their time.
	hub.Emit(Event{Kind: EvProcReclaim, Pid: 1, Time: 7})
	if got := hub.Trace.Snapshot()[2].Time; got != 7 {
		t.Fatalf("pre-stamped time = %d, want 7", got)
	}
}

func TestRegistryRowsAndRender(t *testing.T) {
	hub := NewHub(0)
	hub.Emit(Event{Kind: EvProcCreate, Pid: 1, Detail: "alpha"})
	hub.Emit(Event{Kind: EvProcCreate, Pid: 2, Detail: "beta"})
	hub.Reg.Proc(1).Counter(MCPUCycles).Add(5 * CyclesPerMs)
	hub.Emit(Event{Kind: EvProcExit, Pid: 2})
	hub.Emit(Event{Kind: EvProcReclaim, Pid: 2})

	rows := hub.Reg.Rows(func(pid int32) (string, int, uint64, uint64, uint64, bool) {
		if pid == 1 {
			return "running", 3, 1000, 2000, 4096, true
		}
		return "", 0, 0, 0, 0, false // pid 2 reclaimed: registry data only
	})
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[0].Pid != 1 || rows[0].Threads != 3 || rows[0].HeapBytes != 1000 || rows[0].CodeBytes != 4096 {
		t.Errorf("live row wrong: %+v", rows[0])
	}
	if rows[1].Pid != 2 || rows[1].State != "reclaimed" || rows[1].Name != "beta" {
		t.Errorf("dead row wrong: %+v", rows[1])
	}

	var buf bytes.Buffer
	RenderTable(&buf, Snapshot{Procs: rows})
	out := buf.String()
	for _, frag := range []string{"PID", "alpha", "beta", "reclaimed", "running"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table missing %q:\n%s", frag, out)
		}
	}
}

func TestHTTPEndpoints(t *testing.T) {
	hub := NewHub(16)
	hub.SetTracing(true)
	hub.Emit(Event{Kind: EvProcCreate, Pid: 1, Detail: "web"})
	hub.Emit(Event{Kind: EvGCEnd, Pid: 1, A: 500, B: 64})
	snap := func() Snapshot {
		return Snapshot{NowCycles: 123, NowMillis: 0, Procs: hub.Reg.Rows(nil), Events: hub.Trace.Total()}
	}
	srv := httptest.NewServer(hub.Handler(snap))
	defer srv.Close()

	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		if _, err := b.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return b.String()
	}

	var procs Snapshot
	if err := json.Unmarshal([]byte(get("/procs")), &procs); err != nil {
		t.Fatalf("/procs not JSON: %v", err)
	}
	if procs.NowCycles != 123 || len(procs.Procs) != 1 || procs.Procs[0].Name != "web" {
		t.Errorf("/procs = %+v", procs)
	}

	var metrics []MetricsSnapshot
	if err := json.Unmarshal([]byte(get("/metrics.json")), &metrics); err != nil {
		t.Fatalf("/metrics.json not JSON: %v", err)
	}
	if len(metrics) != 2 || metrics[0].Name != "kernel" {
		t.Errorf("/metrics.json scopes = %d (first %q)", len(metrics), metrics[0].Name)
	}

	prom := get("/metrics")
	for _, frag := range []string{
		"# TYPE kaffeos_gc_cycles counter",
		`kaffeos_gc_cycles{pid="1",proc="web"} 500`,
		"# TYPE kaffeos_gc_pause_cycles histogram",
		`kaffeos_gc_pause_cycles_count{pid="1",proc="web"} 1`,
		`kaffeos_trace_dropped{pid="0",proc="kernel"} 0`,
	} {
		if !strings.Contains(prom, frag) {
			t.Errorf("/metrics missing %q:\n%s", frag, prom)
		}
	}

	trace := get("/trace")
	if n := strings.Count(trace, "\n"); n != 2 {
		t.Errorf("/trace lines = %d, want 2:\n%s", n, trace)
	}
	if !strings.Contains(trace, `"kind":"gc-end"`) {
		t.Errorf("/trace missing gc-end:\n%s", trace)
	}

	ps := get("/ps")
	if !strings.Contains(ps, "PID") || !strings.Contains(ps, "web") {
		t.Errorf("/ps table wrong:\n%s", ps)
	}
}

func TestScopeDumpAndMetricNames(t *testing.T) {
	hub := NewHub(0)
	s := hub.Reg.ProcNamed(7, "dumpme")
	s.Counter(MCPUCycles).Add(9)
	s.Gauge(MMemLimit).Set(4096)
	s.Histogram(MGCPause).Observe(100)
	s.SetMeta("state", "running")
	d := s.Dump()
	if d.Pid != 7 || d.Name != "dumpme" {
		t.Fatalf("dump header: %+v", d)
	}
	if d.Counters[MCPUCycles] != 9 || d.Gauges[MMemLimit] != 4096 {
		t.Errorf("dump values: %+v", d)
	}
	if d.Histograms[MGCPause].Count != 1 {
		t.Errorf("dump histogram: %+v", d.Histograms[MGCPause])
	}
	if d.Meta["state"] != "running" {
		t.Errorf("dump meta: %+v", d.Meta)
	}
}

func TestPidOf(t *testing.T) {
	if got := PidOf(nil); got != 0 {
		t.Errorf("PidOf(nil) = %d", got)
	}
	if got := PidOf("not pidded"); got != 0 {
		t.Errorf("PidOf(string) = %d", got)
	}
	if got := PidOf(fakePidded(9)); got != 9 {
		t.Errorf("PidOf(fakePidded) = %d", got)
	}
}

type fakePidded int32

func (f fakePidded) TelemetryPid() int32 { return int32(f) }

func TestKindStringsTotal(t *testing.T) {
	for k := Kind(1); k < kindMax; k++ {
		if s := k.String(); strings.HasPrefix(s, "kind(") {
			t.Errorf("kind %d has no name", k)
		}
		a, b := FieldNames(k)
		if a == "" || b == "" {
			t.Errorf("kind %d has empty field names", k)
		}
	}
	if s := Kind(200).String(); s != fmt.Sprintf("kind(%d)", 200) {
		t.Errorf("unknown kind string = %q", s)
	}
}
