package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// DefaultRingSize is the tracer's default capacity in events.
const DefaultRingSize = 1 << 16

// Tracer is a bounded ring buffer of events. Appends are serialized with
// a mutex (the scheduler's host goroutine is the main producer; pollers
// and tests may emit concurrently); when the ring is full the oldest
// events are overwritten, so a trace always holds the most recent window.
type Tracer struct {
	mu    sync.Mutex
	buf   []Event
	total uint64 // events ever appended; Seq of the next event
}

// NewTracer creates a tracer holding up to capacity events
// (DefaultRingSize if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Append records an event, assigning its sequence number, and reports it.
func (tr *Tracer) Append(e Event) Event {
	tr.mu.Lock()
	e.Seq = tr.total
	tr.buf[tr.total%uint64(len(tr.buf))] = e
	tr.total++
	tr.mu.Unlock()
	return e
}

// Total reports how many events were ever appended (including ones the
// ring has since overwritten).
func (tr *Tracer) Total() uint64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.total
}

// Capacity reports the ring size.
func (tr *Tracer) Capacity() int { return len(tr.buf) }

// Dropped reports how many events fell off the ring.
func (tr *Tracer) Dropped() uint64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.total <= uint64(len(tr.buf)) {
		return 0
	}
	return tr.total - uint64(len(tr.buf))
}

// Snapshot returns the retained events, oldest first.
func (tr *Tracer) Snapshot() []Event {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := tr.total
	cap64 := uint64(len(tr.buf))
	if n > cap64 {
		// Wrapped: the oldest retained event is at total%cap.
		out := make([]Event, 0, cap64)
		start := n % cap64
		out = append(out, tr.buf[start:]...)
		out = append(out, tr.buf[:start]...)
		return out
	}
	out := make([]Event, n)
	copy(out, tr.buf[:n])
	return out
}

// MarshalEvent renders one event as a JSON object with kind-specific
// payload keys.
func MarshalEvent(e Event) ([]byte, error) {
	aName, bName := FieldNames(e.Kind)
	m := map[string]any{
		"seq":      e.Seq,
		"t_cycles": e.Time,
		"kind":     e.Kind.String(),
		"pid":      e.Pid,
		aName:      e.A,
		bName:      e.B,
	}
	if e.Req != 0 {
		m["req"] = e.Req
	}
	if e.Detail != "" {
		m["detail"] = e.Detail
	}
	return json.Marshal(m)
}

// WriteJSONL dumps the retained events as JSON lines, oldest first.
func (tr *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range tr.Snapshot() {
		line, err := MarshalEvent(e)
		if err != nil {
			return err
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
