package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// A Span is the cost ledger of one served request, decomposed into the
// phases a request passes through on the serving plane. It is the
// request-scoped analogue of the paper's per-process accounting: just as
// every byte and cycle a process consumes is charged to it, every
// nanosecond and cycle a request consumes is charged to a phase, so a slow
// request can always answer "where did my time go".
//
// Wall-clock phases are nanoseconds of real time; execution and GC are
// simulated cycles (the VM's precise unit), with GCNs the 500 MHz
// conversion for side-by-side reading. The attribution rule for GC
// matches process accounting: a pause is charged in full to the request
// whose thread triggered the collection, never split across overlapping
// requests (DESIGN.md §11).
type Span struct {
	// ID is the request id, minted at accept time and propagated through
	// the submit channel into thread state; dispatch quanta and GC pauses
	// are stamped with it in the event trace.
	ID    uint64 `json:"id"`
	Route string `json:"route"`
	// Shard is the engine shard that minted the span. Ids are dense per
	// shard recorder, so (Shard, ID) is the globally unique request key on
	// a sharded serving plane.
	Shard int `json:"shard"`
	// Pid is the tenant process incarnation that answered (0 when the
	// request never reached a process).
	Pid    int32 `json:"pid"`
	Status int   `json:"status"`
	// Start is the wall-clock time the socket handler accepted the
	// request, in Unix nanoseconds.
	Start int64 `json:"start_unix_ns"`
	// AcceptNs: reading the body and routing, before the engine handoff.
	AcceptNs int64 `json:"accept_ns"`
	// QueueNs: waiting in the submit channel and the tenant queue for
	// dispatch capacity.
	QueueNs int64 `json:"queue_ns"`
	// MarshalNs: copying the body into the tenant heap (charged to its
	// memlimit), including any collect-and-retry on allocation failure.
	MarshalNs int64 `json:"marshal_ns"`
	// ExecNs: wall time from dispatch into the VM until the request
	// thread finished. Includes waiting for other tenants' quanta; the
	// request's own share is ExecCycles.
	ExecNs int64 `json:"exec_ns"`
	// ExecCycles: simulated cycles the request's thread consumed.
	ExecCycles uint64 `json:"exec_cycles"`
	// GCCycles: collector cycles charged to this request (it triggered
	// the pause); GCNs is the same at the 500 MHz virtual clock rate.
	GCCycles uint64 `json:"gc_cycles"`
	GCNs     int64  `json:"gc_ns"`
	// Quanta counts scheduler dispatches of the request's thread.
	Quanta uint32 `json:"quanta"`
	// TotalNs: accept to response, end to end.
	TotalNs int64 `json:"total_ns"`
	// Detail carries the shed reason or failure description on non-200s.
	Detail string `json:"detail,omitempty"`
}

// CyclesToNs converts simulated cycles to nanoseconds at the virtual
// clock rate (500 MHz: one cycle is two nanoseconds).
func CyclesToNs(cycles uint64) int64 { return int64(cycles) * 2 }

// DefaultSpanRing is the span recorder's default capacity.
const DefaultSpanRing = 1 << 12

// SpanRecorder retains the last N completed request spans in a bounded
// ring, mints request ids, and counts what fell off. Recording is opt-in:
// when disabled, the serving plane skips span allocation entirely, so the
// steady-state cost is one atomic load per accepted request and one nil
// check per scheduler dispatch.
type SpanRecorder struct {
	enabled atomic.Bool
	nextID  atomic.Uint64

	mu    sync.Mutex
	buf   []Span
	total uint64
}

// NewSpanRecorder creates a recorder holding up to capacity spans
// (DefaultSpanRing if capacity <= 0).
func NewSpanRecorder(capacity int) *SpanRecorder {
	if capacity <= 0 {
		capacity = DefaultSpanRing
	}
	return &SpanRecorder{buf: make([]Span, capacity)}
}

// SetEnabled switches span recording on or off.
func (r *SpanRecorder) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether spans are being recorded.
func (r *SpanRecorder) Enabled() bool { return r.enabled.Load() }

// NextID mints a fresh request id (ids start at 1; 0 means "no request").
func (r *SpanRecorder) NextID() uint64 { return r.nextID.Add(1) }

// Record appends a completed span to the ring.
func (r *SpanRecorder) Record(sp Span) {
	r.mu.Lock()
	r.buf[r.total%uint64(len(r.buf))] = sp
	r.total++
	r.mu.Unlock()
}

// Total reports how many spans were ever recorded.
func (r *SpanRecorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Capacity reports the ring size.
func (r *SpanRecorder) Capacity() int { return len(r.buf) }

// Dropped reports how many spans fell off the ring. Like trace.dropped, a
// nonzero value means the retained window is truncated, not complete.
func (r *SpanRecorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total <= uint64(len(r.buf)) {
		return 0
	}
	return r.total - uint64(len(r.buf))
}

// Snapshot returns the retained spans, oldest first.
func (r *SpanRecorder) Snapshot() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked()
}

func (r *SpanRecorder) snapshotLocked() []Span {
	cap64 := uint64(len(r.buf))
	if r.total > cap64 {
		out := make([]Span, 0, cap64)
		start := r.total % cap64
		out = append(out, r.buf[start:]...)
		out = append(out, r.buf[:start]...)
		return out
	}
	out := make([]Span, r.total)
	copy(out, r.buf[:r.total])
	return out
}

// ForRoute returns the most recent spans of one route, oldest first, up
// to n (all retained when n <= 0). The flight recorder uses it to scope a
// post-mortem to the dying tenant.
func (r *SpanRecorder) ForRoute(route string, n int) []Span {
	all := r.Snapshot()
	out := make([]Span, 0, n)
	for _, sp := range all {
		if sp.Route == route {
			out = append(out, sp)
		}
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// WriteJSONL dumps the retained spans as JSON lines, oldest first.
func (r *SpanRecorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, sp := range r.Snapshot() {
		if err := enc.Encode(sp); err != nil {
			return err
		}
	}
	return bw.Flush()
}
