package telemetry

import "runtime"

// HostInfo describes the machine a benchmark artifact was produced on.
// Bench harnesses embed it in their JSON output so numbers are
// self-describing: a 1-core host cannot show parallel-GC overlap, a
// GOMAXPROCS-limited run cannot show allocation contention, and so on
// (BENCH_gc.json had to explain this by hand once — never again).
type HostInfo struct {
	Cores      int    `json:"cores"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoVersion  string `json:"go_version"`
}

// Host captures the current machine's benchmark-relevant shape.
func Host() HostInfo {
	return HostInfo{
		Cores:      runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoVersion:  runtime.Version(),
	}
}
