package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler builds the HTTP introspection surface (stdlib net/http only):
//
//	/procs         JSON Snapshot — the live process table
//	/metrics       Prometheus text exposition of every scope's metrics
//	/metrics.json  JSON array of every scope's metrics (kernel first)
//	/trace         the current trace ring as JSON lines
//	/spans         the completed-request span ring as JSON lines
//	/ps            the process table rendered as plain text
//	/audit         JSON invariant report (requires SetAuditor; advisory
//	               while the VM runs — authoritative audits need a
//	               quiescent VM)
//	/debug/pprof/  Go runtime profiling (heap, goroutine, cpu, ...)
//
// snap may be nil, in which case /procs and /ps serve registry data only.
func (h *Hub) Handler(snap SnapshotFunc) http.Handler {
	takeSnap := func() Snapshot {
		if snap != nil {
			return snap()
		}
		return Snapshot{Procs: h.Reg.Rows(nil), Events: h.Trace.Total()}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/procs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(takeSnap())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = h.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		h.syncDerived()
		scopes := []MetricsSnapshot{h.Reg.Kernel().Dump()}
		for _, s := range h.Reg.Procs() {
			scopes = append(scopes, s.Dump())
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(scopes)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = h.Trace.WriteJSONL(w)
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = h.Spans.WriteJSONL(w)
	})
	mux.HandleFunc("/ps", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		RenderTable(w, takeSnap())
	})
	mux.HandleFunc("/audit", func(w http.ResponseWriter, r *http.Request) {
		if h.auditor == nil {
			http.Error(w, "no auditor installed", http.StatusNotImplemented)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(h.auditor())
	})
	// Runtime profiling. http.DefaultServeMux registration from importing
	// net/http/pprof does not reach this private mux, so wire the handlers
	// explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the introspection endpoint on addr in a background
// goroutine and returns the bound address (useful with ":0"). The
// listener lives until the process exits; this is an opt-in debug
// surface, not a production server.
func (h *Hub) Serve(addr string, snap SnapshotFunc) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: h.Handler(snap)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
