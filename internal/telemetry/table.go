package telemetry

import (
	"fmt"
	"io"
)

// ProcRow is one line of the /proc-style process table: the union of
// live-process state (filled by the VM for running processes) and the
// registry's accumulated accounting (which survives reclamation).
type ProcRow struct {
	Pid        int32  `json:"pid"`
	Name       string `json:"name"`
	State      string `json:"state"`
	Threads    int    `json:"threads"`
	HeapBytes  uint64 `json:"heap_bytes"`
	MemUse     uint64 `json:"mem_use"`
	MemLimit   uint64 `json:"mem_limit"`
	CPUCycles  uint64 `json:"cpu_cycles"`
	IOBytes    uint64 `json:"io_bytes"`
	GCs        uint64 `json:"gc_count"`
	GCCycles   uint64 `json:"gc_cycles"`
	GCPauseP50 uint64 `json:"gc_pause_p50"`
	GCPauseMax uint64 `json:"gc_pause_max"`
	// CodeBytes is the shared-code-cache residency charged to this
	// process (full artifact size per attached artifact).
	CodeBytes uint64 `json:"code_bytes"`
}

// Snapshot is one observation of the whole system, served over HTTP and
// rendered by ps/top.
type Snapshot struct {
	NowCycles uint64    `json:"now_cycles"`
	NowMillis uint64    `json:"now_ms"`
	Procs     []ProcRow `json:"procs"`
	KernelGCs uint64    `json:"kernel_gc_count"`
	Events    uint64    `json:"events_traced"`
	// Kernel-wide GC scaling counters (see MGCFastHits/MGCFastMisses/
	// MGCOverlap): allocation fast-path totals across all processes and
	// the maximum number of collections that ever ran simultaneously.
	GCFastHits   uint64 `json:"gc_fastpath_hits"`
	GCFastMisses uint64 `json:"gc_fastpath_misses"`
	GCOverlap    uint64 `json:"gc_overlap"`
}

// SnapshotFunc supplies a live Snapshot; the VM layer provides one to the
// HTTP handler and CLI renderers.
type SnapshotFunc func() Snapshot

// baseRow builds the registry-derived part of a process row. Live fields
// (state, threads, heap, mem) stay zero/meta for dead processes.
func baseRow(s *Scope) ProcRow {
	pause := s.Histogram(MGCPause)
	return ProcRow{
		Pid:        s.Pid,
		Name:       s.DisplayName(),
		State:      s.Meta("state"),
		MemLimit:   s.Gauge(MMemLimit).Value(),
		CPUCycles:  s.Counter(MCPUCycles).Value(),
		IOBytes:    s.Counter(MIOBytes).Value(),
		GCs:        s.Counter(MGCCount).Value(),
		GCCycles:   s.Counter(MGCCycles).Value(),
		GCPauseP50: pause.Quantile(0.50),
		GCPauseMax: pause.Max(),
	}
}

// Rows builds a table row per process scope. live reports current
// process state by pid; it returns ok=false for reclaimed processes.
func (r *Registry) Rows(live func(pid int32) (state string, threads int, heap, memUse, code uint64, ok bool)) []ProcRow {
	scopes := r.Procs()
	out := make([]ProcRow, 0, len(scopes))
	for _, s := range scopes {
		row := baseRow(s)
		if live != nil {
			if state, threads, heap, memUse, code, ok := live(s.Pid); ok {
				row.State = state
				row.Threads = threads
				row.HeapBytes = heap
				row.MemUse = memUse
				row.CodeBytes = code
			}
		}
		out = append(out, row)
	}
	return out
}

// CyclesPerMs mirrors the scheduler's virtual-clock rate (500 MHz, the
// paper's measurement host) for rendering cycles as milliseconds.
const CyclesPerMs = 500_000

// RenderTable writes the ps/top process table. The format is fixed-width
// and stable: scripts may rely on the column set and ordering.
func RenderTable(w io.Writer, snap Snapshot) {
	fmt.Fprintf(w, "%5s %-24s %-10s %4s %10s %10s %10s %9s %9s %5s %9s %9s %9s %9s\n",
		"PID", "NAME", "STATE", "THR", "HEAP-B", "MEM-B", "LIM-B",
		"CPU-MS", "IO-B", "GCS", "GC-MS", "GC-P50", "GC-MAX", "CODE-B")
	for _, p := range snap.Procs {
		fmt.Fprintf(w, "%5d %-24s %-10s %4d %10d %10d %10d %9d %9d %5d %9d %9d %9d %9d\n",
			p.Pid, clip(p.Name, 24), p.State, p.Threads, p.HeapBytes, p.MemUse, p.MemLimit,
			p.CPUCycles/CyclesPerMs, p.IOBytes, p.GCs, p.GCCycles/CyclesPerMs,
			p.GCPauseP50, p.GCPauseMax, p.CodeBytes)
	}
	// GC-scaling summary, appended after the table so existing column
	// consumers are unaffected.
	fmt.Fprintf(w, "gc: fastpath %d hits / %d misses, max %d concurrent collections\n",
		snap.GCFastHits, snap.GCFastMisses, snap.GCOverlap)
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
