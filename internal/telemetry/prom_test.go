package telemetry

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestPrometheusExpositionWellFormed is a format validator: it renders a
// populated hub and checks the text against the exposition rules a real
// Prometheus scraper enforces — TYPE before samples, one TYPE per family,
// legal names and label syntax, and cumulative histogram buckets whose
// +Inf count equals the series count.
func TestPrometheusExpositionWellFormed(t *testing.T) {
	hub := NewHub(64)
	hub.SetTracing(true)
	hub.Emit(Event{Kind: EvProcCreate, Pid: 3, Detail: "tenant-a"})
	hub.Emit(Event{Kind: EvProcCreate, Pid: 7, Detail: "tenant-b"})
	// Populate several metric kinds across scopes, including histograms
	// with spread-out observations so multiple buckets are non-empty.
	k := hub.Reg.Kernel()
	k.Counter(MProcsCreated).Add(2)
	k.Gauge(MMemLimit).Set(123456)
	for _, v := range []uint64{1, 3, 9, 100, 5000, 5001, 1 << 20} {
		k.Histogram(MGCPause).Observe(v)
	}
	a := hub.Reg.Proc(3)
	a.Counter(MCPUCycles).Add(999)
	a.Histogram(MQuantum).Observe(250)
	hub.Reg.Proc(7).Counter(MGCCycles).Add(500)

	var sb strings.Builder
	if err := hub.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := sb.String()
	if !strings.HasSuffix(text, "\n") {
		t.Error("exposition must end with a newline")
	}

	var (
		nameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
		sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{([^}]*)\})? (-?[0-9]+(?:\.[0-9]+)?(?:e[+-][0-9]+)?|\+Inf|NaN)$`)
		labelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$`)
	)
	typeOf := map[string]string{} // family -> counter|gauge|histogram
	sampleSeen := map[string]bool{}
	// bucket series key -> cumulative counts in order of appearance
	type bucketSeries struct {
		counts []uint64
		infSet bool
		inf    uint64
	}
	buckets := map[string]*bucketSeries{}
	counts := map[string]uint64{} // _count series -> value

	baseFamily := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			fam := strings.TrimSuffix(name, suf)
			if fam != name && typeOf[fam] == "histogram" {
				return fam
			}
		}
		return name
	}

	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Errorf("line %d: empty line in exposition", i+1)
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Errorf("line %d: malformed TYPE line %q", i+1, line)
				continue
			}
			fam, kind := parts[2], parts[3]
			if !nameRe.MatchString(fam) {
				t.Errorf("line %d: illegal family name %q", i+1, fam)
			}
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Errorf("line %d: unknown metric type %q", i+1, kind)
			}
			if _, dup := typeOf[fam]; dup {
				t.Errorf("line %d: duplicate TYPE for family %q", i+1, fam)
			}
			if sampleSeen[fam] {
				t.Errorf("line %d: TYPE for %q after its samples", i+1, fam)
			}
			typeOf[fam] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("line %d: unknown comment %q", i+1, line)
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("line %d: malformed sample %q", i+1, line)
			continue
		}
		name, labels, value := m[1], m[2], m[3]
		fam := baseFamily(name)
		kind, declared := typeOf[fam]
		if !declared {
			t.Errorf("line %d: sample %q has no preceding TYPE", i+1, name)
			continue
		}
		sampleSeen[fam] = true
		var le string
		if labels != "" {
			for _, pair := range splitLabels(labels) {
				if !labelRe.MatchString(pair) {
					t.Errorf("line %d: bad label pair %q", i+1, pair)
				}
				if strings.HasPrefix(pair, "le=") {
					le = strings.Trim(strings.TrimPrefix(pair, "le="), `"`)
				}
			}
		}
		if kind == "histogram" && strings.HasSuffix(name, "_bucket") {
			key := name + "|" + stripLabel(labels, "le")
			bs := buckets[key]
			if bs == nil {
				bs = &bucketSeries{}
				buckets[key] = bs
			}
			v, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				t.Errorf("line %d: bucket value %q not a count", i+1, value)
				continue
			}
			if le == "+Inf" {
				bs.infSet, bs.inf = true, v
			}
			bs.counts = append(bs.counts, v)
		}
		if kind == "histogram" && strings.HasSuffix(name, "_count") {
			v, _ := strconv.ParseUint(value, 10, 64)
			counts[fam+"|"+labels] = v
		}
	}

	// Spot-check families that must be present, with the dotted metric
	// names mapped to legal Prometheus names.
	for _, want := range []string{"kaffeos_proc_created", "kaffeos_cpu_cycles",
		"kaffeos_gc_pause_cycles", "kaffeos_trace_dropped", "kaffeos_span_dropped"} {
		if _, ok := typeOf[want]; !ok {
			t.Errorf("family %q missing from exposition", want)
		}
	}

	// Histogram invariants: buckets cumulative and +Inf == _count.
	if len(buckets) == 0 {
		t.Fatal("no histogram bucket series found")
	}
	for key, bs := range buckets {
		for i := 1; i < len(bs.counts); i++ {
			if bs.counts[i] < bs.counts[i-1] {
				t.Errorf("series %s: buckets not cumulative: %v", key, bs.counts)
				break
			}
		}
		if !bs.infSet {
			t.Errorf("series %s: no le=\"+Inf\" bucket", key)
		}
	}
	for key, bs := range buckets {
		parts := strings.SplitN(key, "|", 2)
		fam := strings.TrimSuffix(parts[0], "_bucket")
		cnt, ok := counts[fam+"|"+parts[1]]
		if !ok {
			t.Errorf("series %s: histogram has buckets but no _count", key)
			continue
		}
		if bs.infSet && bs.inf != cnt {
			t.Errorf("series %s: +Inf bucket %d != _count %d", key, bs.inf, cnt)
		}
	}
}

// splitLabels splits a label body on commas that terminate a pair
// (label values in this exposition never contain commas, but keep the
// parse honest about quotes anyway).
func splitLabels(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// stripLabel removes one label pair from a label body, normalizing a
// bucket series key so all le= variants collapse together.
func stripLabel(labels, name string) string {
	var keep []string
	for _, pair := range splitLabels(labels) {
		if !strings.HasPrefix(pair, name+"=") {
			keep = append(keep, pair)
		}
	}
	return strings.Join(keep, ",")
}
