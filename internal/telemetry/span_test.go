package telemetry

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
)

func TestSpanRecorderRingWrap(t *testing.T) {
	r := NewSpanRecorder(4)
	if r.Enabled() {
		t.Fatal("recorder enabled by default; spans must be opt-in")
	}
	if got := r.Capacity(); got != 4 {
		t.Fatalf("Capacity = %d, want 4", got)
	}
	for i := 1; i <= 6; i++ {
		id := r.NextID()
		if id != uint64(i) {
			t.Fatalf("NextID = %d, want %d (ids must start at 1 and be dense)", id, i)
		}
		route := "/a"
		if i%2 == 0 {
			route = "/b"
		}
		r.Record(Span{ID: id, Route: route, Status: 200, TotalNs: int64(i) * 100})
	}
	if got := r.Total(); got != 6 {
		t.Errorf("Total = %d, want 6", got)
	}
	if got := r.Dropped(); got != 2 {
		t.Errorf("Dropped = %d, want 2 (6 recorded into a ring of 4)", got)
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot len = %d, want 4", len(snap))
	}
	for i, sp := range snap {
		if want := uint64(i + 3); sp.ID != want {
			t.Errorf("snap[%d].ID = %d, want %d (oldest first after wrap)", i, sp.ID, want)
		}
	}
}

func TestSpanRecorderForRoute(t *testing.T) {
	r := NewSpanRecorder(8)
	for i := 1; i <= 6; i++ {
		route := "/a"
		if i%2 == 0 {
			route = "/b"
		}
		r.Record(Span{ID: r.NextID(), Route: route})
	}
	a := r.ForRoute("/a", 0)
	if len(a) != 3 {
		t.Fatalf("ForRoute(/a) len = %d, want 3", len(a))
	}
	for _, sp := range a {
		if sp.Route != "/a" {
			t.Errorf("ForRoute(/a) returned span of route %q", sp.Route)
		}
	}
	// n limits to the most recent, keeping order.
	last2 := r.ForRoute("/a", 2)
	if len(last2) != 2 || last2[0].ID != 3 || last2[1].ID != 5 {
		t.Errorf("ForRoute(/a, 2) = %+v, want ids [3 5]", last2)
	}
	if got := r.ForRoute("/missing", 0); len(got) != 0 {
		t.Errorf("ForRoute(/missing) = %d spans, want 0", len(got))
	}
}

func TestSpanRecorderWriteJSONL(t *testing.T) {
	r := NewSpanRecorder(8)
	r.Record(Span{ID: 1, Route: "/x", Status: 200, ExecCycles: 42, TotalNs: 1000})
	r.Record(Span{ID: 2, Route: "/x", Status: 503, Detail: "submit queue full"})
	var sb strings.Builder
	if err := r.WriteJSONL(&sb); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	var got []Span
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		var sp Span
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		got = append(got, sp)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d spans, want 2", len(got))
	}
	if got[0].ID != 1 || got[0].ExecCycles != 42 || got[0].TotalNs != 1000 {
		t.Errorf("span 1 round-trip mismatch: %+v", got[0])
	}
	if got[1].Status != 503 || got[1].Detail != "submit queue full" {
		t.Errorf("span 2 round-trip mismatch: %+v", got[1])
	}
	// A 200 span must omit the detail field entirely.
	if strings.Contains(strings.SplitN(sb.String(), "\n", 2)[0], "detail") {
		t.Errorf("detail field present on a span without one: %s", sb.String())
	}
}

func TestCyclesToNs(t *testing.T) {
	// 500 MHz virtual clock: one cycle is two nanoseconds.
	if got := CyclesToNs(CyclesPerMs); got != 1_000_000 {
		t.Fatalf("CyclesToNs(CyclesPerMs) = %d, want 1ms", got)
	}
}
