// Package telemetry is the kernel-wide observability layer: a lock-cheap
// metrics registry (atomic counters, gauges, and fixed-bucket histograms
// with per-process and kernel scopes), a bounded ring-buffer event tracer
// recording typed events stamped with pid and virtual-cycle time, and the
// snapshot/rendering surface behind `kaffeos ps`/`top`, the `-trace`
// JSONL dump, and the opt-in HTTP introspection endpoint.
//
// The package is a leaf: it imports only the standard library, so every
// subsystem (heap, barrier, sched, memlimit, shared, core, jserv) can
// report into it without cycles. Instrumentation reaches it through the
// narrow Sink interface; when tracing is off, emitting an event costs the
// metric updates only (a handful of uncontended atomic ops on cold paths,
// one counter bump on hot ones), and the ring append is skipped after a
// single atomic load.
package telemetry

import "fmt"

// Kind is the type of a traced event. The taxonomy covers the paper's
// observable kernel actions: process lifecycle, GC, write-barrier
// segmentation violations, scheduling, memlimit reserve failures, and the
// shared-heap lifecycle.
type Kind uint8

const (
	// EvProcCreate: a process was created. Detail = process name.
	EvProcCreate Kind = iota + 1
	// EvThreadSpawn: a thread started in the process. A = thread id.
	EvThreadSpawn
	// EvProcKill: the process was killed. Detail = reason.
	EvProcKill
	// EvProcExit: the last thread exited normally.
	EvProcExit
	// EvProcReclaim: the process' heap merged into the kernel heap and its
	// namespace was unloaded. Detail = final state before reclamation.
	EvProcReclaim
	// EvGCStart: a collection of the pid's heap began. A = live bytes,
	// B = live objects. Detail = heap name.
	EvGCStart
	// EvGCEnd: the collection finished. A = cycles, B = freed bytes.
	// Detail = heap name.
	EvGCEnd
	// EvBarrierViolation: the write barrier refused an illegal cross-heap
	// store (a KaffeOS segmentation violation). Detail = reason.
	EvBarrierViolation
	// EvDispatch: the scheduler ran one thread for one quantum.
	// A = cycles consumed, B = step result code. Detail is empty on this
	// hot path.
	EvDispatch
	// EvYield: a thread voluntarily gave up its quantum. A = thread id.
	EvYield
	// EvMemFail: a memlimit refused a debit (reservation failure).
	// A = bytes requested, B = bytes in use at the refusing limit.
	// Detail = limit name.
	EvMemFail
	// EvSharedCreate: a shared heap was created. Detail = heap name.
	EvSharedCreate
	// EvSharedFreeze: a shared heap was frozen. A = frozen size.
	EvSharedFreeze
	// EvSharedAttach: a process attached to (was charged for) a shared
	// heap. A = charged size. Detail = heap name.
	EvSharedAttach
	// EvSharedDetach: a process' charge for a shared heap was credited
	// back. Detail = heap name.
	EvSharedDetach
	// EvGCFastPath: allocation fast-path counters flushed at GC/merge.
	// A = lease hits since last flush, B = misses. Detail = heap name.
	EvGCFastPath
	// EvGCOverlap: a new maximum of simultaneously running collections.
	// A = the new maximum.
	EvGCOverlap
	// EvServeShed: the serving plane refused a request with 503.
	// A = queue depth at refusal. Detail = tenant route and reason.
	EvServeShed
	// EvServeRestart: the serving plane restarted a dead tenant process.
	// A = consecutive deaths before this restart. Detail = tenant route.
	EvServeRestart
	// EvServeMigrate: a tenant was migrated between engine shards.
	// A = source shard, B = target shard. Detail = tenant route.
	EvServeMigrate
	// EvMemRebalance: the memory-balancer controller redistributed the
	// global budget across process memlimits. A = budget bytes,
	// B = heaps whose limits were updated this round. Detail carries
	// "partial" when the fault plane aborted the round mid-redistribution.
	EvMemRebalance
	// EvCheckpoint: a warmed process was frozen into an immutable template.
	// A = template bytes, B = objects copied. Detail = template name.
	EvCheckpoint
	// EvFork: a fresh process was stamped out from a template. A = bytes
	// copied (charged in full to the clone), B = template pid. Detail =
	// clone process name.
	EvFork

	kindMax
)

var kindNames = [kindMax]string{
	EvProcCreate:       "proc-create",
	EvThreadSpawn:      "thread-spawn",
	EvProcKill:         "proc-kill",
	EvProcExit:         "proc-exit",
	EvProcReclaim:      "proc-reclaim",
	EvGCStart:          "gc-start",
	EvGCEnd:            "gc-end",
	EvBarrierViolation: "barrier-violation",
	EvDispatch:         "dispatch",
	EvYield:            "yield",
	EvMemFail:          "memlimit-fail",
	EvSharedCreate:     "shared-create",
	EvSharedFreeze:     "shared-freeze",
	EvSharedAttach:     "shared-attach",
	EvSharedDetach:     "shared-detach",
	EvGCFastPath:       "gc-fastpath",
	EvGCOverlap:        "gc-overlap",
	EvServeShed:        "serve-shed",
	EvServeRestart:     "serve-restart",
	EvServeMigrate:     "serve-migrate",
	EvMemRebalance:     "membal-rebalance",
	EvCheckpoint:       "proc-checkpoint",
	EvFork:             "proc-fork",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// fieldNames maps the generic A/B payload words to kind-specific JSON
// keys, so trace dumps are self-describing.
var fieldNames = [kindMax][2]string{
	EvThreadSpawn:  {"tid", ""},
	EvGCStart:      {"live_bytes", "live_objects"},
	EvGCEnd:        {"cycles", "freed_bytes"},
	EvDispatch:     {"cycles", "result"},
	EvYield:        {"tid", ""},
	EvMemFail:      {"need_bytes", "use_bytes"},
	EvSharedFreeze: {"size_bytes", ""},
	EvSharedAttach: {"size_bytes", ""},
	EvGCFastPath:   {"hits", "misses"},
	EvGCOverlap:    {"max_active", ""},
	EvServeShed:    {"queue_depth", ""},
	EvServeRestart: {"deaths", ""},
	EvServeMigrate: {"from_shard", "to_shard"},
	EvMemRebalance: {"budget_bytes", "updated"},
	EvCheckpoint:   {"template_bytes", "objects"},
	EvFork:         {"copied_bytes", "template_pid"},
}

// FieldNames reports the JSON key names of an event kind's A and B words
// ("a"/"b" when the kind defines no specific meaning).
func FieldNames(k Kind) (a, b string) {
	a, b = "a", "b"
	if int(k) < len(fieldNames) {
		if n := fieldNames[k][0]; n != "" {
			a = n
		}
		if n := fieldNames[k][1]; n != "" {
			b = n
		}
	}
	return a, b
}

// Event is one traced kernel event. Pid 0 is the kernel itself.
type Event struct {
	Seq  uint64 // assigned by the tracer, monotonic across wraps
	Time uint64 // virtual-cycle timestamp
	Kind Kind
	Pid  int32
	// Req is the request id active when the event fired (0 = none): the
	// stamp that lets dispatch quanta and GC pauses be attributed to one
	// served request.
	Req  uint64
	A, B uint64 // kind-specific payload (see fieldNames)
	// Detail carries a name or reason on cold paths; hot-path events
	// leave it empty to avoid allocation.
	Detail string
}

// Sink receives telemetry. Implemented by *Hub; subsystems hold it as an
// interface so tests can substitute their own collector. A nil Sink is
// everywhere treated as telemetry-off.
type Sink interface {
	// Emit records one event: metric routing always, ring append only
	// while tracing is enabled.
	Emit(e Event)
	// TracingEnabled reports whether events are being recorded to the
	// ring. Hot paths may use it to skip Detail construction.
	TracingEnabled() bool
}

// Pidded lets layers that hold opaque owner handles (scheduler threads,
// shared-heap sharers) recover a process id for event stamping.
type Pidded interface {
	TelemetryPid() int32
}

// PidOf extracts a pid from an opaque owner, 0 if it has none.
func PidOf(owner any) int32 {
	if p, ok := owner.(Pidded); ok {
		return p.TelemetryPid()
	}
	return 0
}
