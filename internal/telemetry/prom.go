package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) over the whole
// registry. Internal dotted metric names become one family each
// (`cpu.cycles` → `kaffeos_cpu_cycles`), with per-scope samples labelled
// {pid, proc}; the kernel scope is pid 0. The power-of-two histograms map
// directly onto Prometheus histograms: internal bucket i counts values
// with bit-length i, so its upper edge 2^i−1 becomes the cumulative `le`
// edge.

// promName maps a dotted internal metric name to a Prometheus family name.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("kaffeos_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// scoped pairs a metric pointer with the labels of the scope it came from.
type scoped[T any] struct {
	labels string
	m      T
}

// metricRefs snapshots the scope's metric pointers (not values) so
// exposition reads each atomic exactly once outside the scope lock.
func (s *Scope) metricRefs() (labels string, counters map[string]*Counter, gauges map[string]*Gauge, hists map[string]*Histogram) {
	s.mu.Lock()
	defer s.mu.Unlock()
	labels = fmt.Sprintf(`pid="%d",proc="%s"`, s.Pid, promEscape(s.Name))
	counters = make(map[string]*Counter, len(s.counters))
	for k, v := range s.counters {
		counters[k] = v
	}
	gauges = make(map[string]*Gauge, len(s.gauges))
	for k, v := range s.gauges {
		gauges[k] = v
	}
	hists = make(map[string]*Histogram, len(s.hists))
	for k, v := range s.hists {
		hists[k] = v
	}
	return labels, counters, gauges, hists
}

// syncDerived publishes ring-drop counts as kernel gauges right before a
// dump, so scrapes and `top` see trace/span truncation without polling
// the rings themselves.
func (h *Hub) syncDerived() {
	k := h.Reg.Kernel()
	if h.Trace != nil {
		k.Gauge(MTraceDropped).Set(h.Trace.Dropped())
	}
	if h.Spans != nil {
		k.Gauge(MSpanDropped).Set(h.Spans.Dropped())
	}
}

// WritePrometheus renders every scope's metrics in Prometheus text
// format: one family per metric name, HELP/TYPE emitted once, samples in
// scope order (kernel first, then pids ascending).
func (h *Hub) WritePrometheus(w io.Writer) error {
	return WritePrometheusMulti(w, []LabeledHub{{Hub: h}})
}

// LabeledHub pairs a hub with extra labels (e.g. `shard="2"`) stamped on
// every sample it contributes to a multi-hub exposition.
type LabeledHub struct {
	Hub    *Hub
	Labels string
}

// WritePrometheusMulti renders several hubs' metrics as one exposition:
// families are merged across hubs so HELP/TYPE appear exactly once, and
// each hub's samples carry its extra labels. The sharded serving plane
// uses it to aggregate per-shard VMs under a shard label.
func WritePrometheusMulti(w io.Writer, hubs []LabeledHub) error {
	counterFams := make(map[string][]scoped[*Counter])
	gaugeFams := make(map[string][]scoped[*Gauge])
	histFams := make(map[string][]scoped[*Histogram])
	for _, lh := range hubs {
		h := lh.Hub
		h.syncDerived()
		scopes := append([]*Scope{h.Reg.Kernel()}, h.Reg.Procs()...)
		for _, s := range scopes {
			labels, counters, gauges, hists := s.metricRefs()
			if lh.Labels != "" {
				labels = lh.Labels + "," + labels
			}
			for name, c := range counters {
				counterFams[name] = append(counterFams[name], scoped[*Counter]{labels, c})
			}
			for name, g := range gauges {
				gaugeFams[name] = append(gaugeFams[name], scoped[*Gauge]{labels, g})
			}
			for name, hg := range hists {
				histFams[name] = append(histFams[name], scoped[*Histogram]{labels, hg})
			}
		}
	}

	bw := bufio.NewWriter(w)
	emitHeader := func(name, typ string) string {
		fam := promName(name)
		fmt.Fprintf(bw, "# HELP %s KaffeOS metric %s\n", fam, name)
		fmt.Fprintf(bw, "# TYPE %s %s\n", fam, typ)
		return fam
	}

	for _, name := range sortedKeys(counterFams) {
		fam := emitHeader(name, "counter")
		for _, sc := range counterFams[name] {
			fmt.Fprintf(bw, "%s{%s} %d\n", fam, sc.labels, sc.m.Value())
		}
	}
	for _, name := range sortedKeys(gaugeFams) {
		fam := emitHeader(name, "gauge")
		for _, sc := range gaugeFams[name] {
			fmt.Fprintf(bw, "%s{%s} %d\n", fam, sc.labels, sc.m.Value())
		}
	}
	for _, name := range sortedKeys(histFams) {
		fam := emitHeader(name, "histogram")
		for _, sc := range histFams[name] {
			buckets := sc.m.Buckets()
			var cum uint64
			for i, n := range buckets {
				if n == 0 {
					continue
				}
				cum += n
				// Upper edge of internal bucket i: values of bit-length i,
				// so 2^i − 1 (bucket 0 holds zeros). The top bucket absorbs
				// overflow and is covered by +Inf below.
				if i == HistBuckets-1 {
					continue
				}
				fmt.Fprintf(bw, "%s_bucket{%s,le=\"%d\"} %d\n", fam, sc.labels, uint64(1)<<uint(i)-1, cum)
			}
			fmt.Fprintf(bw, "%s_bucket{%s,le=\"+Inf\"} %d\n", fam, sc.labels, sc.m.Count())
			fmt.Fprintf(bw, "%s_sum{%s} %d\n", fam, sc.labels, sc.m.Sum())
			fmt.Fprintf(bw, "%s_count{%s} %d\n", fam, sc.labels, sc.m.Count())
		}
	}
	return bw.Flush()
}

func sortedKeys[T any](m map[string]T) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
