package telemetry

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the counter.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic last-written value.
type Gauge struct{ v atomic.Uint64 }

// Set stores the gauge value.
func (g *Gauge) Set(n uint64) { g.v.Store(n) }

// Value reads the gauge.
func (g *Gauge) Value() uint64 { return g.v.Load() }

// HistBuckets is the fixed bucket count of every histogram: bucket i
// counts observations v with 2^(i-1) < v <= 2^i-ish — concretely, bucket
// index is bits.Len64(v), so bucket 0 holds zeros and the top bucket
// absorbs overflow.
const HistBuckets = 40

// Histogram is a fixed-bucket power-of-two histogram. Observe is one
// atomic add per bucket/count/sum — cheap enough for per-dispatch use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [HistBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	i := bits.Len64(v)
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	// Lock-free max: retry CAS while v is larger than the stored value.
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Max reports the largest observed value (0 when empty).
func (h *Histogram) Max() uint64 { return h.max.Load() }

// Buckets returns a snapshot of the bucket counts.
func (h *Histogram) Buckets() [HistBuckets]uint64 {
	var out [HistBuckets]uint64
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile reports an upper bound of the q-quantile (0 < q <= 1): the
// upper edge of the bucket in which that rank falls. Returns 0 for an
// empty histogram.
func (h *Histogram) Quantile(q float64) uint64 {
	b := h.Buckets()
	var total uint64
	for _, n := range b {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, n := range b {
		seen += n
		if seen >= rank {
			if i == 0 {
				return 0
			}
			return 1<<uint(i) - 1
		}
	}
	return h.Max()
}

// Mean reports the average observed value (0 when empty).
func (h *Histogram) Mean() uint64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.sum.Load() / n
}

// Summary renders a stable, greppable one-line summary.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("count=%d sum=%d mean=%d p50<=%d p99<=%d max=%d",
		h.Count(), h.Sum(), h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Max())
}

// Scope is one named metric namespace: the kernel, or one process.
// Metrics are created lazily by name and live for the life of the VM, so
// per-process accounting survives process reclamation (which is what lets
// `kaffeos ps` show dead processes).
type Scope struct {
	Pid  int32
	Name string

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	meta     map[string]string
}

func newScope(pid int32, name string) *Scope {
	return &Scope{
		Pid:      pid,
		Name:     name,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		meta:     make(map[string]string),
	}
}

// Counter returns (creating if needed) the named counter. Hot paths
// should cache the returned pointer; the subsequent Add is one atomic op.
func (s *Scope) Counter(name string) *Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (s *Scope) Gauge(name string) *Gauge {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.gauges[name]
	if !ok {
		g = &Gauge{}
		s.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (s *Scope) Histogram(name string) *Histogram {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.hists[name]
	if !ok {
		h = &Histogram{}
		s.hists[name] = h
	}
	return h
}

// DisplayName reads the scope name (which ProcNamed may set after
// creation, so reads must synchronize).
func (s *Scope) DisplayName() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Name
}

// SetMeta stores a string annotation (e.g. lifecycle state).
func (s *Scope) SetMeta(key, val string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.meta[key] = val
}

// Meta reads an annotation.
func (s *Scope) Meta(key string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.meta[key]
}

// MetricsSnapshot is the JSON-ready dump of one scope.
type MetricsSnapshot struct {
	Pid        int32                 `json:"pid"`
	Name       string                `json:"name"`
	Meta       map[string]string     `json:"meta,omitempty"`
	Counters   map[string]uint64     `json:"counters,omitempty"`
	Gauges     map[string]uint64     `json:"gauges,omitempty"`
	Histograms map[string]HistogramV `json:"histograms,omitempty"`
}

// HistogramV is the JSON view of a histogram.
type HistogramV struct {
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	Max   uint64 `json:"max"`
	P50   uint64 `json:"p50"`
	P99   uint64 `json:"p99"`
}

// Dump snapshots every metric of the scope.
func (s *Scope) Dump() MetricsSnapshot {
	s.mu.Lock()
	name := s.Name
	counters := make(map[string]*Counter, len(s.counters))
	for k, v := range s.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(s.gauges))
	for k, v := range s.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(s.hists))
	for k, v := range s.hists {
		hists[k] = v
	}
	meta := make(map[string]string, len(s.meta))
	for k, v := range s.meta {
		meta[k] = v
	}
	s.mu.Unlock()

	out := MetricsSnapshot{
		Pid: s.Pid, Name: name, Meta: meta,
		Counters:   make(map[string]uint64, len(counters)),
		Gauges:     make(map[string]uint64, len(gauges)),
		Histograms: make(map[string]HistogramV, len(hists)),
	}
	for k, c := range counters {
		out.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		out.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		out.Histograms[k] = HistogramV{
			Count: h.Count(), Sum: h.Sum(), Max: h.Max(),
			P50: h.Quantile(0.50), P99: h.Quantile(0.99),
		}
	}
	return out
}

// Registry holds the kernel scope plus one scope per process ever seen.
type Registry struct {
	mu     sync.Mutex
	kernel *Scope
	procs  map[int32]*Scope
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kernel: newScope(0, "kernel"),
		procs:  make(map[int32]*Scope),
	}
}

// Kernel returns the kernel scope.
func (r *Registry) Kernel() *Scope { return r.kernel }

// Proc returns (creating if needed) the scope of pid. Pid 0 is the
// kernel scope.
func (r *Registry) Proc(pid int32) *Scope {
	if pid == 0 {
		return r.kernel
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.procs[pid]
	if !ok {
		s = newScope(pid, fmt.Sprintf("pid%d", pid))
		r.procs[pid] = s
	}
	return s
}

// ProcNamed is Proc plus naming the scope (used at process creation).
func (r *Registry) ProcNamed(pid int32, name string) *Scope {
	s := r.Proc(pid)
	if name != "" {
		s.mu.Lock()
		s.Name = name
		s.mu.Unlock()
	}
	return s
}

// Procs lists every process scope ever created, sorted by pid.
func (r *Registry) Procs() []*Scope {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Scope, 0, len(r.procs))
	for _, s := range r.procs {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pid < out[j].Pid })
	return out
}

// Canonical metric names. Subsystems and renderers agree on these; tests
// grep for them, so treat them as a stable interface.
const (
	MCPUCycles      = "cpu.cycles"         // counter: cycles charged (incl. GC)
	MIOBytes        = "io.bytes"           // counter: bytes written to stdout
	MGCCount        = "gc.count"           // counter: collections of this scope's heap
	MGCCycles       = "gc.cycles"          // counter: total GC pause cycles
	MGCCharged      = "gc.charged"         // counter: GC cycles charged to the process
	MGCFreedBytes   = "gc.freed_bytes"     // counter: bytes freed by GC
	MGCPause        = "gc.pause_cycles"    // histogram: one observation per collection
	MGCFastHits     = "gc.fastpath.hits"   // counter: allocations served from the memlimit lease
	MGCFastMisses   = "gc.fastpath.misses" // counter: allocations that debited the memlimit tree
	MGCOverlap      = "gc.overlap"         // kernel gauge: max simultaneous collections
	MGCAdaptive     = "gc.adaptive"        // counter: collections started by the growth trigger
	MDispatches     = "sched.dispatches"   // counter: quanta dispatched
	MQuantum        = "sched.quantum"      // histogram: cycles actually used per quantum
	MYields         = "sched.yields"       // counter: voluntary yields
	MThreadsSpawned = "threads.spawned"    // counter: threads ever started
	MMemLimit       = "mem.limit"          // gauge: configured memlimit
	MProcsCreated   = "proc.created"       // kernel counter
	MProcsKilled    = "proc.killed"        // kernel counter
	MProcsExited    = "proc.exited"        // kernel counter
	MProcsReclaimed = "proc.reclaimed"     // kernel counter
	MViolations     = "barrier.violations"
	MMemFailures    = "memlimit.failures"
	MSharedCreated  = "shared.created"
	MSharedFrozen   = "shared.frozen"
	MSharedAttached = "shared.attached"
	MSharedDetached = "shared.detached"

	// Network serving plane (internal/serve). Per-tenant metrics live in
	// the scope of the tenant's current process incarnation; the kernel
	// scope carries server-wide totals.
	MServeRequests   = "serve.requests"    // counter: requests admitted
	MServeOK         = "serve.ok"          // counter: 200 responses
	MServeShed       = "serve.shed"        // counter: 503s (queue/memlimit saturation)
	MServeErrors     = "serve.errors"      // counter: 5xx from a dying/dead tenant
	MServeRestarts   = "serve.restarts"    // counter: tenant process restarts
	MServeMigrations = "serve.migrations"  // counter: tenant shard migrations
	MServeQueueDepth = "serve.queue_depth" // gauge: requests waiting for dispatch
	MServeInflight   = "serve.inflight"    // gauge: requests executing in the VM
	MServeLatency    = "serve.latency_ns"  // histogram: wall-clock request latency

	// Request-scoped cost attribution (spans). Histograms get one
	// observation per completed request; kernel scope aggregates across
	// tenants, each tenant scope carries its own.
	MSpanQueueNs    = "span.queue_ns"    // histogram: submit/queue wait
	MSpanMarshalNs  = "span.marshal_ns"  // histogram: body marshal into tenant heap
	MSpanExecCycles = "span.exec_cycles" // histogram: thread cycles per request
	MSpanGCCycles   = "span.gc_cycles"   // histogram: GC cycles charged per request
	MSpanTotalNs    = "span.total_ns"    // histogram: accept-to-response wall time
	MSpanDropped    = "span.dropped"     // kernel gauge: spans that fell off the ring
	MTraceDropped   = "trace.dropped"    // kernel gauge: events that fell off the ring

	// Process templates (checkpoint/fork). Kernel scope of the owning VM;
	// a template's residency shows through its own memlimit child.
	MForkCheckpoints = "fork.checkpoints"  // counter: templates created
	MForks           = "fork.forks"        // counter: processes forked from templates
	MForkBytes       = "fork.copied_bytes" // counter: bytes deep-copied by forks
	MForkFailures    = "fork.failures"     // counter: checkpoints/forks aborted (fault, memlimit)
	MForkTemplates   = "fork.templates"    // gauge: templates currently resident

	// Memory-balancer controller (internal/membal). Kernel scope of the
	// controlled VM; per-process limits show through the mem.limit gauge.
	MMemBalRounds  = "membal.rounds"  // counter: rebalance rounds completed
	MMemBalBudget  = "membal.budget"  // gauge: global budget the controller spreads
	MMemBalExtra   = "membal.extra"   // gauge: last round's distributable pool (budget - Σlive)
	MMemBalClamped = "membal.clamped" // counter: shrinks clamped up to current use
	MMemBalPartial = "membal.partial" // counter: rounds cut short by the fault plane

	// Shared code cache (internal/codecache). Kernel scope of the owning
	// VM; per-shard labels come from the serving plane's labelled hubs.
	MCodeHits      = "codecache.hits"           // counter: lookups served from the cache
	MCodeMisses    = "codecache.misses"         // counter: lookups that had to compile
	MCodeAttached  = "codecache.attached"       // counter: sharer attaches (full-size debits)
	MCodeDetached  = "codecache.detached"       // counter: sharer detaches (full-size credits)
	MCodeEvicted   = "codecache.evicted"        // counter: zero-sharer artifacts evicted
	MCodeAborts    = "codecache.attach_aborts"  // counter: attaches unwound by the fault plane
	MCodeArtifacts = "codecache.artifacts"      // gauge: artifacts currently resident
	MCodeResident  = "codecache.resident_bytes" // gauge: modeled bytes resident in the cache
)
