package interp

// Superoperator fusion: the optimized engine recognizes common bytecode
// sequences and compiles each into a single closure, the closure-compiler
// analogue of the peephole/combining optimizations a commercial JIT
// performs. Fusion never crosses a branch target or handler entry, so
// every jump lands on the head of a (possibly fused) unit.

import (
	"repro/internal/bytecode"
	"repro/internal/object"
)

// fuse tries to fuse a run starting at pc. It returns (nil, 0) when no
// pattern applies.
func (j *JIT) fuse(m *object.Method, pc int, target []bool) (closure, int) {
	code := m.Code
	ins := code.Instrs
	n := len(ins)

	// run(k) reports whether pcs pc+1..pc+k-1 exist and are not targets.
	run := func(k int) bool {
		if pc+k > n {
			return false
		}
		for i := pc + 1; i < pc+k; i++ {
			if target[i] {
				return false
			}
		}
		return true
	}
	// Pattern: ILOAD a; ILOAD b; (IADD|ISUB|IMUL); ISTORE c
	if run(4) && ins[pc].Op == bytecode.ILOAD && ins[pc+1].Op == bytecode.ILOAD &&
		isArith(ins[pc+2].Op) && ins[pc+3].Op == bytecode.ISTORE {
		a, b, c := ins[pc].A, ins[pc+1].A, ins[pc+3].A
		op := ins[pc+2].Op
		next := pc + 4
		return func(t *Thread, f *Frame) control {
			x, y := f.Locals[a].I, f.Locals[b].I
			switch op {
			case bytecode.IADD:
				x += y
			case bytecode.ISUB:
				x -= y
			default:
				x *= y
			}
			f.Locals[c] = IntSlot(x)
			f.PC = next
			return ctlBranch
		}, 4
	}

	// Pattern: ILOAD a; (ICONST k | LDC intk); IF_ICMPxx T — the dominant
	// loop-latch shape.
	if run(3) && ins[pc].Op == bytecode.ILOAD && isIcmp(ins[pc+2].Op) {
		var k int64
		ok := false
		switch ins[pc+1].Op {
		case bytecode.ICONST:
			k, ok = int64(ins[pc+1].A), true
		case bytecode.LDC:
			if c := code.Consts[ins[pc+1].A]; c.Kind == bytecode.KindInt {
				k, ok = c.I, true
			}
		}
		if ok {
			a := ins[pc].A
			op, tgt, next := ins[pc+2].Op, int(ins[pc+2].A), pc+3
			return func(t *Thread, f *Frame) control {
				if cmpInts(op, f.Locals[a].I, k) {
					f.PC = tgt
				} else {
					f.PC = next
				}
				return ctlBranch
			}, 3
		}
	}

	// Pattern: ILOAD a; ILOAD b; IF_ICMPxx T
	if run(3) && ins[pc].Op == bytecode.ILOAD && ins[pc+1].Op == bytecode.ILOAD && isIcmp(ins[pc+2].Op) {
		a, b := ins[pc].A, ins[pc+1].A
		op, tgt, next := ins[pc+2].Op, int(ins[pc+2].A), pc+3
		return func(t *Thread, f *Frame) control {
			if cmpInts(op, f.Locals[a].I, f.Locals[b].I) {
				f.PC = tgt
			} else {
				f.PC = next
			}
			return ctlBranch
		}, 3
	}

	// Pattern: IINC; GOTO T (loop latch)
	if run(2) && ins[pc].Op == bytecode.IINC && ins[pc+1].Op == bytecode.GOTO {
		a, d, tgt := ins[pc].A, int64(ins[pc].B), int(ins[pc+1].A)
		return func(t *Thread, f *Frame) control {
			f.Locals[a].I += d
			f.PC = tgt
			return ctlBranch
		}, 2
	}

	// Pattern: ALOAD a; GETFIELD f (accessor inlining)
	if run(2) && ins[pc].Op == bytecode.ALOAD && ins[pc+1].Op == bytecode.GETFIELD {
		a := ins[pc].A
		fl := m.Links[ins[pc+1].A].Field
		slot, ref, name := fl.Slot, fl.Ref, fl.Name
		next := pc + 2
		return func(t *Thread, f *Frame) control {
			o := f.Locals[a].R
			if o == nil {
				return jitThrow(t, ClsNullPointer, "getfield "+name)
			}
			if ref {
				f.push(RefSlot(o.Refs[slot]))
			} else {
				f.push(IntSlot(o.Prims[slot]))
			}
			f.PC = next
			return ctlBranch
		}, 2
	}

	// Pattern: ICONST k; ISTORE a
	if run(2) && ins[pc].Op == bytecode.ICONST && ins[pc+1].Op == bytecode.ISTORE {
		k, a := int64(ins[pc].A), ins[pc+1].A
		next := pc + 2
		return func(t *Thread, f *Frame) control {
			f.Locals[a] = IntSlot(k)
			f.PC = next
			return ctlBranch
		}, 2
	}

	// Pattern: ALOAD a; ILOAD i; IALOAD (array read from locals)
	if run(3) && ins[pc].Op == bytecode.ALOAD && ins[pc+1].Op == bytecode.ILOAD && ins[pc+2].Op == bytecode.IALOAD {
		a, i := ins[pc].A, ins[pc+1].A
		next := pc + 3
		return func(t *Thread, f *Frame) control {
			arr := f.Locals[a].R
			idx := f.Locals[i].I
			if ctl, ok := jitCheckArray(t, arr, idx); !ok {
				return ctl
			}
			f.push(IntSlot(arr.Prims[idx]))
			f.PC = next
			return ctlBranch
		}, 3
	}

	return nil, 0
}

func isArith(op bytecode.Op) bool {
	return op == bytecode.IADD || op == bytecode.ISUB || op == bytecode.IMUL
}

func isIcmp(op bytecode.Op) bool {
	switch op {
	case bytecode.IF_ICMPEQ, bytecode.IF_ICMPNE, bytecode.IF_ICMPLT,
		bytecode.IF_ICMPGE, bytecode.IF_ICMPGT, bytecode.IF_ICMPLE:
		return true
	}
	return false
}

// ensure object import is used even if patterns change
var _ *object.Method
