package interp

import (
	"testing"

	"repro/internal/barrier"
	"repro/internal/memlimit"
)

// engines under test: the interpreter, the plain JIT, and the optimized JIT.
func allEngines() []Engine {
	return []Engine{Interpreter{}, &JIT{}, &JIT{Fused: true, InlineCache: true}}
}

// driveWith runs cls.key(args) under the given engine.
func (fx *fixture) driveWith(eng Engine, cls, key string, args ...Slot) *Thread {
	fx.t.Helper()
	th := fx.newThread()
	m := fx.method(cls, key)
	if err := th.PushFrame(m, args); err != nil {
		fx.t.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		th.Fuel = 5000
		switch eng.Step(th) {
		case StepFinished, StepKilled:
			return th
		case StepBlocked:
			fx.t.Fatalf("blocked")
		}
	}
	fx.t.Fatal("did not finish")
	return nil
}

const crossEngineProgram = `
.class t/Node
.field next Lt/Node;
.field v I
.method <init> (I)V
.locals 2
.stack 2
	aload 0
	invokespecial java/lang/Object.<init> ()V
	aload 0
	iload 1
	putfield t/Node.v I
	return
.end
.method val ()I
.locals 1
.stack 2
	aload 0
	getfield t/Node.v I
	ireturn
.end
.end
.class t/Wide extends t/Node
.method <init> (I)V
.locals 2
.stack 3
	aload 0
	iload 1
	invokespecial t/Node.<init> (I)V
	return
.end
.method val ()I
.locals 1
.stack 3
	aload 0
	getfield t/Node.v I
	iconst 2
	imul
	ireturn
.end
.end
.class t/Main
.method build (I)I static
.locals 4
.stack 4
	aconst_null
	astore 1
	iconst 0
	istore 2
L0:	iload 2
	iload 0
	if_icmpge L1
	new t/Node
	dup
	iload 2
	invokespecial t/Node.<init> (I)V
	astore 3
	aload 3
	aload 1
	putfield t/Node.next Lt/Node;
	aload 3
	astore 1
	iinc 2 1
	goto L0
L1:	iconst 0
	istore 2
L2:	aload 1
	ifnull L3
	iload 2
	aload 1
	invokevirtual t/Node.val ()I
	iadd
	istore 2
	aload 1
	getfield t/Node.next Lt/Node;
	astore 1
	goto L2
L3:	iload 2
	ireturn
.end
.method mixed ()I static
.locals 3
.stack 4
	new t/Wide
	dup
	iconst 10
	invokespecial t/Wide.<init> (I)V
	astore 0
	new t/Node
	dup
	iconst 5
	invokespecial t/Node.<init> (I)V
	astore 1
	aload 0
	invokevirtual t/Node.val ()I
	aload 1
	invokevirtual t/Node.val ()I
	iadd
	ireturn
.end
.method excep (I)I static
.locals 2
.stack 2
	iconst 0
	istore 1
T0:	iload 0
	iconst 0
	idiv
	istore 1
	iload 1
	ireturn
T1:	pop
	iconst 99
	ireturn
.catch java/lang/ArithmeticException T0 T1 T1
.end
.method arrays (I)I static
.locals 3
.stack 4
	iload 0
	newarray [I
	astore 1
	iconst 0
	istore 2
L0:	iload 2
	iload 0
	if_icmpge L1
	aload 1
	iload 2
	iload 2
	iastore
	iinc 2 1
	goto L0
L1:	iconst 0
	istore 0
	iconst 0
	istore 2
L2:	aload 1
	arraylength
	iload 2
	if_icmple L3
	aload 1
	iload 2
	iaload
	iload 0
	iadd
	istore 0
	iinc 2 1
	goto L2
L3:	iload 0
	ireturn
.end
.end`

func TestEnginesAgree(t *testing.T) {
	cases := []struct {
		key  string
		args []Slot
		want int64
	}{
		{"build(I)I", []Slot{IntSlot(20)}, 190},
		{"mixed()I", nil, 25},
		{"excep(I)I", []Slot{IntSlot(7)}, 99},
		{"arrays(I)I", []Slot{IntSlot(30)}, 435},
	}
	for _, eng := range allEngines() {
		t.Run(eng.Name(), func(t *testing.T) {
			fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
			fx.define(crossEngineProgram)
			for _, c := range cases {
				th := fx.driveWith(eng, "t/Main", c.key, c.args...)
				if th.State != StateFinished {
					t.Fatalf("%s: state %v err %v uncaught %v", c.key, th.State, th.Err, th.Uncaught)
				}
				if th.Result.I != c.want {
					t.Errorf("%s under %s = %d, want %d", c.key, eng.Name(), th.Result.I, c.want)
				}
			}
		})
	}
}

func TestEnginesChargeSameCycles(t *testing.T) {
	// Simulated cycle accounting must be engine-independent: the JIT makes
	// wall-clock faster, not virtually cheaper.
	var cycles []uint64
	for _, eng := range allEngines() {
		fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
		fx.define(crossEngineProgram)
		th := fx.driveWith(eng, "t/Main", "build(I)I", IntSlot(50))
		if th.State != StateFinished {
			t.Fatalf("%s: %v", eng.Name(), th.Err)
		}
		cycles = append(cycles, th.Cycles)
	}
	if cycles[0] != cycles[1] || cycles[1] != cycles[2] {
		t.Errorf("engines disagree on cycles: %v", cycles)
	}
}

func TestJITBarrierSemantics(t *testing.T) {
	for _, eng := range allEngines()[1:] {
		fx := newFixture(t, barrier.HeapPointer, memlimit.Unlimited)
		fx.define(crossEngineProgram)
		before := fx.env.BarrierStats.Executed.Load()
		th := fx.driveWith(eng, "t/Main", "build(I)I", IntSlot(10))
		if th.State != StateFinished {
			t.Fatalf("%v", th.Err)
		}
		// One putfield of a ref per node built.
		if got := fx.env.BarrierStats.Executed.Load() - before; got != 10 {
			t.Errorf("%s: barrier count = %d, want 10", eng.Name(), got)
		}
	}
}

func TestJITQuantumAndKill(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/Spin
.method spin ()V static
.locals 0
.stack 1
L0:	goto L0
.end
.end`)
	for _, eng := range allEngines()[1:] {
		th := fx.newThread()
		if err := th.PushFrame(fx.method("t/Spin", "spin()V"), nil); err != nil {
			t.Fatal(err)
		}
		th.Fuel = 1000
		if res := eng.Step(th); res != StepYielded {
			t.Fatalf("%s: step = %v, want yield", eng.Name(), res)
		}
		th.Kill()
		th.Fuel = 1000
		if res := eng.Step(th); res != StepKilled {
			t.Fatalf("%s: step after kill = %v", eng.Name(), res)
		}
	}
}

func TestFusionPreservesBranchTargets(t *testing.T) {
	// A branch into what would otherwise be a fusable run: the run must
	// not fuse over the label, and execution must be correct.
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/F
.method go (I)I static
.locals 3
.stack 4
	iload 0
	ifeq L0
	iconst 5
	istore 1
	goto L1
L0:	iconst 3
	istore 1
L1:	iload 1
	iconst 2
	if_icmplt L2
	iload 1
	ireturn
L2:	iconst -1
	ireturn
.end
.end`)
	eng := &JIT{Fused: true, InlineCache: true}
	th := fx.driveWith(eng, "t/F", "go(I)I", IntSlot(1))
	fx.mustInt(th, 5)
	th2 := fx.driveWith(eng, "t/F", "go(I)I", IntSlot(0))
	fx.mustInt(th2, 3)
}

func TestInlineCacheMegamorphicSafe(t *testing.T) {
	// Alternating receiver classes through one call site: the monomorphic
	// cache must re-dispatch correctly on class change.
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(crossEngineProgram + `
.class t/Poly
.method go ()I static
.locals 3
.stack 4
	new t/Node
	dup
	iconst 1
	invokespecial t/Node.<init> (I)V
	astore 0
	new t/Wide
	dup
	iconst 1
	invokespecial t/Wide.<init> (I)V
	astore 1
	iconst 0
	istore 2
	aload 0
	invokevirtual t/Node.val ()I
	iload 2
	iadd
	istore 2
	aload 1
	invokevirtual t/Node.val ()I
	iload 2
	iadd
	istore 2
	aload 0
	invokevirtual t/Node.val ()I
	iload 2
	iadd
	istore 2
	iload 2
	ireturn
.end
.end`)
	eng := &JIT{Fused: true, InlineCache: true}
	th := fx.driveWith(eng, "t/Poly", "go()I")
	fx.mustInt(th, 1+2+1)
}

func BenchmarkEngines(b *testing.B) {
	src := `
.class t/B
.method work (I)I static
.locals 4
.stack 4
	iconst 0
	istore 1
	iconst 0
	istore 2
L0:	iload 2
	iload 0
	if_icmpge L1
	iload 1
	iload 2
	iadd
	istore 1
	iinc 2 1
	goto L0
L1:	iload 1
	ireturn
.end
.end`
	for _, eng := range allEngines() {
		b.Run(eng.Name(), func(b *testing.B) {
			fx := benchFixture(b)
			fx.define(src)
			m := fx.method("t/B", "work(I)I")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				th := fx.newThread()
				if err := th.PushFrame(m, []Slot{IntSlot(1000)}); err != nil {
					b.Fatal(err)
				}
				for th.State != StateFinished && th.State != StateKilled {
					th.Fuel = 1 << 30
					eng.Step(th)
				}
				if th.Result.I != 499500 {
					b.Fatalf("bad result %d", th.Result.I)
				}
			}
		})
	}
}
