package interp

import (
	"testing"

	"repro/internal/barrier"
	"repro/internal/heap"
	"repro/internal/memlimit"
	"repro/internal/object"
)

func TestArithmetic(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/Main
.method calc (II)I static
.locals 2
.stack 4
	iload 0
	iload 1
	iadd        # a+b
	iload 0
	iload 1
	imul        # a*b
	isub        # (a+b)-(a*b)
	ireturn
.end
.end`)
	th := fx.run("t/Main", "calc(II)I", IntSlot(7), IntSlot(3))
	fx.mustInt(th, (7+3)-(7*3))
}

func TestLoopAndLocals(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/Main
.method sum (I)I static
.locals 3
.stack 4
	iconst 0
	istore 1
	iconst 0
	istore 2
L0:	iload 2
	iload 0
	if_icmpge L1
	iload 1
	iload 2
	iadd
	istore 1
	iinc 2 1
	goto L0
L1:	iload 1
	ireturn
.end
.end`)
	th := fx.run("t/Main", "sum(I)I", IntSlot(100))
	fx.mustInt(th, 4950)
}

func TestDoubleOps(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/Main
.method hypot2 ()I static
.locals 1
.stack 4
	ldc 3.0
	ldc 3.0
	dmul
	ldc 4.0
	ldc 4.0
	dmul
	dadd
	d2i
	ireturn
.end
.end`)
	th := fx.run("t/Main", "hypot2()I")
	fx.mustInt(th, 25)
}

func TestDivideByZeroThrows(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/Main
.method div (II)I static
.locals 2
.stack 2
	iload 0
	iload 1
	idiv
	ireturn
.end
.end`)
	th := fx.run("t/Main", "div(II)I", IntSlot(10), IntSlot(0))
	fx.mustUncaught(th, "java/lang/ArithmeticException")
}

func TestCatchException(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/Main
.method safeDiv (II)I static
.locals 3
.stack 2
T0:	iload 0
	iload 1
	idiv
	ireturn
T1:	astore 2
	iconst -1
	ireturn
.catch java/lang/ArithmeticException T0 T1 T1
.end
.end`)
	th := fx.run("t/Main", "safeDiv(II)I", IntSlot(10), IntSlot(0))
	fx.mustInt(th, -1)
	th2 := fx.run("t/Main", "safeDiv(II)I", IntSlot(10), IntSlot(2))
	fx.mustInt(th2, 5)
}

func TestCatchSuperclassMatches(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/Main
.method go ()I static
.locals 1
.stack 2
T0:	iconst 1
	iconst 0
	idiv
	ireturn
T1:	pop
	iconst 42
	ireturn
.catch java/lang/Exception T0 T1 T1
.end
.end`)
	th := fx.run("t/Main", "go()I")
	fx.mustInt(th, 42)
}

func TestThrowAcrossFrames(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/Main
.method thrower ()V static
.locals 0
.stack 2
	new java/lang/RuntimeException
	athrow
.end
.method catcher ()I static
.locals 1
.stack 1
T0:	invokestatic t/Main.thrower ()V
	iconst 0
	ireturn
T1:	pop
	iconst 7
	ireturn
.catch java/lang/RuntimeException T0 T1 T1
.end
.end`)
	th := fx.run("t/Main", "catcher()I")
	fx.mustInt(th, 7)
}

func TestSlowAndFastExceptionsAgree(t *testing.T) {
	for _, fast := range []bool{true, false} {
		fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
		fx.env.FastExceptions = fast
		fx.define(`
.class t/Main
.method go (I)I static
.locals 2
.stack 2
T0:	iload 0
	iconst 0
	idiv
	ireturn
T1:	pop
	iconst 9
	ireturn
.catch java/lang/ArithmeticException T0 T1 T1
.end
.end`)
		th := fx.run("t/Main", "go(I)I", IntSlot(5))
		fx.mustInt(th, 9)
	}
}

func TestSlowExceptionsCostMore(t *testing.T) {
	src := `
.class t/Main
.method go ()I static
.locals 1
.stack 2
	iconst 0
	istore 0
T0:	iconst 1
	iconst 0
	idiv
	pop
	iconst 0
	ireturn
T1:	pop
	iinc 0 1
	iload 0
	iconst 50
	if_icmplt T0
	iload 0
	ireturn
.catch java/lang/ArithmeticException T0 T1 T1
.end
.end`
	var cycles [2]uint64
	for i, fast := range []bool{true, false} {
		fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
		fx.env.FastExceptions = fast
		fx.define(src)
		th := fx.run("t/Main", "go()I")
		fx.mustInt(th, 50)
		cycles[i] = th.Cycles
	}
	if cycles[1] <= cycles[0] {
		t.Errorf("slow dispatch (%d cycles) not more expensive than fast (%d)", cycles[1], cycles[0])
	}
}

func TestObjectsAndFields(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/Point
.field x I
.field y I
.method <init> (II)V
.locals 3
.stack 3
	aload 0
	invokespecial java/lang/Object.<init> ()V
	aload 0
	iload 1
	putfield t/Point.x I
	aload 0
	iload 2
	putfield t/Point.y I
	return
.end
.method manhattan ()I
.locals 1
.stack 3
	aload 0
	getfield t/Point.x I
	aload 0
	getfield t/Point.y I
	iadd
	ireturn
.end
.end
.class t/Main
.method go ()I static
.locals 1
.stack 4
	new t/Point
	dup
	iconst 3
	iconst 4
	invokespecial t/Point.<init> (II)V
	astore 0
	aload 0
	invokevirtual t/Point.manhattan ()I
	ireturn
.end
.end`)
	th := fx.run("t/Main", "go()I")
	fx.mustInt(th, 7)
}

func TestVirtualDispatch(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/A
.method <init> ()V
.locals 1
.stack 1
	aload 0
	invokespecial java/lang/Object.<init> ()V
	return
.end
.method f ()I
.locals 1
.stack 1
	iconst 1
	ireturn
.end
.end
.class t/B extends t/A
.method <init> ()V
.locals 1
.stack 1
	aload 0
	invokespecial t/A.<init> ()V
	return
.end
.method f ()I
.locals 1
.stack 1
	iconst 2
	ireturn
.end
.end
.class t/Main
.method go ()I static
.locals 1
.stack 3
	new t/B
	dup
	invokespecial t/B.<init> ()V
	astore 0
	aload 0
	invokevirtual t/A.f ()I    # static type A, dynamic type B
	ireturn
.end
.end`)
	th := fx.run("t/Main", "go()I")
	fx.mustInt(th, 2)
}

func TestStatics(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/C
.static counter I
.method bump ()I static
.locals 0
.stack 3
	getstatic t/C.counter I
	iconst 1
	iadd
	putstatic t/C.counter I
	getstatic t/C.counter I
	ireturn
.end
.end`)
	fx.run("t/C", "bump()I")
	th := fx.run("t/C", "bump()I")
	fx.mustInt(th, 2)
}

func TestArrays(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/Main
.method go (I)I static
.locals 3
.stack 4
	iload 0
	newarray [I
	astore 1
	iconst 0
	istore 2
L0:	iload 2
	iload 0
	if_icmpge L1
	aload 1
	iload 2
	iload 2
	iload 2
	imul
	iastore
	iinc 2 1
	goto L0
L1:	aload 1
	iload 0
	iconst 1
	isub
	iaload
	ireturn
.end
.end`)
	th := fx.run("t/Main", "go(I)I", IntSlot(10))
	fx.mustInt(th, 81)
}

func TestArrayBounds(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/Main
.method go ()I static
.locals 1
.stack 3
	iconst 3
	newarray [I
	astore 0
	aload 0
	iconst 5
	iaload
	ireturn
.end
.end`)
	th := fx.run("t/Main", "go()I")
	fx.mustUncaught(th, "java/lang/ArrayIndexOutOfBoundsException")
}

func TestNegativeArraySize(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/Main
.method go ()I static
.locals 0
.stack 2
	iconst -1
	newarray [I
	arraylength
	ireturn
.end
.end`)
	th := fx.run("t/Main", "go()I")
	fx.mustUncaught(th, "java/lang/NegativeArraySizeException")
}

func TestNullPointerFault(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/P
.field v I
.end
.class t/Main
.method go ()I static
.locals 1
.stack 2
	aconst_null
	astore 0
	aload 0
	getfield t/P.v I
	ireturn
.end
.end`)
	th := fx.run("t/Main", "go()I")
	fx.mustUncaught(th, "java/lang/NullPointerException")
}

func TestCheckcastAndInstanceof(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/A
.method <init> ()V
.locals 1
.stack 1
	aload 0
	invokespecial java/lang/Object.<init> ()V
	return
.end
.end
.class t/B extends t/A
.method <init> ()V
.locals 1
.stack 1
	aload 0
	invokespecial t/A.<init> ()V
	return
.end
.end
.class t/Main
.method isA ()I static
.locals 1
.stack 3
	new t/B
	dup
	invokespecial t/B.<init> ()V
	instanceof t/A
	ireturn
.end
.method badCast ()I static
.locals 1
.stack 3
	new t/A
	dup
	invokespecial t/A.<init> ()V
	checkcast t/B
	pop
	iconst 0
	ireturn
.end
.end`)
	th := fx.run("t/Main", "isA()I")
	fx.mustInt(th, 1)
	th2 := fx.run("t/Main", "badCast()I")
	fx.mustUncaught(th2, "java/lang/ClassCastException")
}

func TestRecursionAndStackOverflow(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/Main
.method fib (I)I static
.locals 1
.stack 4
	iload 0
	iconst 2
	if_icmpge L0
	iload 0
	ireturn
L0:	iload 0
	iconst 1
	isub
	invokestatic t/Main.fib (I)I
	iload 0
	iconst 2
	isub
	invokestatic t/Main.fib (I)I
	iadd
	ireturn
.end
.method forever ()V static
.locals 0
.stack 1
	invokestatic t/Main.forever ()V
	return
.end
.end`)
	th := fx.run("t/Main", "fib(I)I", IntSlot(15))
	fx.mustInt(th, 610)
	th2 := fx.run("t/Main", "forever()V")
	fx.mustUncaught(th2, "java/lang/StackOverflowError")
}

func TestStringLiteralsIntern(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/Main
.method same ()I static
.locals 0
.stack 2
	ldc "hello"
	ldc "hello"
	if_acmpeq L0
	iconst 0
	ireturn
L0:	iconst 1
	ireturn
.end
.end`)
	th := fx.run("t/Main", "same()I")
	fx.mustInt(th, 1)
}

func TestQuantumPreemption(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/Main
.method spin ()I static
.locals 1
.stack 2
	iconst 0
	istore 0
L0:	iinc 0 1
	iload 0
	ldc 1000000
	if_icmplt L0
	iload 0
	ireturn
.end
.end`)
	th := fx.newThread()
	if err := th.PushFrame(fx.method("t/Main", "spin()I"), nil); err != nil {
		t.Fatal(err)
	}
	var eng Interpreter
	th.Fuel = 1000
	if res := eng.Step(th); res != StepYielded {
		t.Fatalf("first step = %v, want yield", res)
	}
	if th.Fuel > 0 {
		t.Error("yielded with fuel remaining")
	}
	steps := 1
	for th.State == StateRunnable {
		th.Fuel = 100000
		if eng.Step(th) == StepFinished {
			break
		}
		steps++
		if steps > 100000 {
			t.Fatal("never finished")
		}
	}
	fx.mustInt(th, 1000000)
	if steps < 2 {
		t.Error("expected multiple quanta")
	}
}

func TestKillAtSafepoint(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/Main
.method spin ()V static
.locals 0
.stack 1
L0:	goto L0
.end
.end`)
	th := fx.newThread()
	if err := th.PushFrame(fx.method("t/Main", "spin()V"), nil); err != nil {
		t.Fatal(err)
	}
	var eng Interpreter
	th.Fuel = 1000
	eng.Step(th)
	th.Kill()
	th.Fuel = 1000
	if res := eng.Step(th); res != StepKilled {
		t.Fatalf("step after kill = %v", res)
	}
	if th.State != StateKilled {
		t.Errorf("state = %v", th.State)
	}
	if len(th.Frames) != 0 {
		t.Error("frames not unwound")
	}
}

func TestKillDeferredInKernelMode(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/Main
.method spin (I)I static
.locals 1
.stack 2
L0:	iinc 0 -1
	iload 0
	ifgt L0
	iconst 77
	ireturn
.end
.end`)
	th := fx.newThread()
	if err := th.PushFrame(fx.method("t/Main", "spin(I)I"), []Slot{IntSlot(50)}); err != nil {
		t.Fatal(err)
	}
	th.EnterKernel()
	th.Kill()
	var eng Interpreter
	th.Fuel = 100000
	if res := eng.Step(th); res != StepFinished {
		t.Fatalf("kernel-mode step = %v, want finish despite kill", res)
	}
	fx.mustInt(th, 77)
	th.ExitKernel()
}

func TestMonitorsReentrant(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/Main
.method go ()I static
.locals 1
.stack 2
	new java/lang/Object
	astore 0
	aload 0
	monitorenter
	aload 0
	monitorenter
	aload 0
	monitorexit
	aload 0
	monitorexit
	iconst 5
	ireturn
.end
.end`)
	for _, thin := range []bool{true, false} {
		fx.env.ThinLocks = thin
		th := fx.run("t/Main", "go()I")
		fx.mustInt(th, 5)
	}
}

func TestMonitorExitWithoutOwner(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/Main
.method go ()V static
.locals 0
.stack 2
	new java/lang/Object
	monitorexit
	return
.end
.end`)
	th := fx.run("t/Main", "go()V")
	fx.mustUncaught(th, "java/lang/IllegalMonitorStateException")
}

func TestMonitorBlocksOtherThread(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/Main
.static lock Ljava/lang/Object;
.method setup ()V static
.locals 0
.stack 2
	new java/lang/Object
	putstatic t/Main.lock Ljava/lang/Object;
	return
.end
.method grab ()I static
.locals 0
.stack 2
	getstatic t/Main.lock Ljava/lang/Object;
	monitorenter
	getstatic t/Main.lock Ljava/lang/Object;
	monitorexit
	iconst 1
	ireturn
.end
.end`)
	fx.run("t/Main", "setup()V")

	holder := fx.newThread()
	c, _ := fx.proc.Class("t/Main")
	lockField, _ := c.StaticByName("lock")
	lockObj := c.Statics.Refs[lockField.Slot]
	if lockObj == nil {
		t.Fatal("setup did not store lock")
	}
	// The holder thread owns the monitor out-of-band.
	if !tryLock(holder, lockObj) {
		t.Fatal("holder could not lock")
	}

	waiter := fx.newThread()
	if err := waiter.PushFrame(fx.method("t/Main", "grab()I"), nil); err != nil {
		t.Fatal(err)
	}
	var eng Interpreter
	waiter.Fuel = 10000
	if res := eng.Step(waiter); res != StepBlocked {
		t.Fatalf("step = %v, want blocked", res)
	}
	if waiter.BlockedOn != lockObj {
		t.Error("BlockedOn wrong object")
	}
	// Holder releases; waiter can proceed.
	releaseMonitor(holder, lockObj)
	if !MonitorFree(waiter, lockObj) {
		t.Fatal("monitor still busy after release")
	}
	waiter.State = StateRunnable
	waiter.BlockedOn = nil
	waiter.Fuel = 10000
	if res := eng.Step(waiter); res != StepFinished {
		t.Fatalf("resumed step = %v, err %v", res, waiter.Err)
	}
	fx.mustInt(waiter, 1)
}

func TestWriteBarrierViolationRaisesSegv(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/Holder
.field ref Ljava/lang/Object;
.end
.class t/Main
.method store (Lt/Holder;Ljava/lang/Object;)I static
.locals 2
.stack 2
T0:	aload 0
	aload 1
	putfield t/Holder.ref Ljava/lang/Object;
	iconst 0
	ireturn
T1:	pop
	iconst 1
	ireturn
.catch kaffeos/SegmentationViolationError T0 T1 T1
.end
.end`)
	// Build a holder on this process' heap and a foreign object on another
	// user heap; the store must raise a segmentation violation, caught by
	// the program.
	holderC, _ := fx.proc.Class("t/Holder")
	holder, err := fx.user.Alloc(holderC)
	if err != nil {
		t.Fatal(err)
	}
	other := fx.reg.NewHeap(heap.KindUser, "user2", fx.root.MustChild("user2", memlimit.Unlimited, false))
	objC, _ := fx.shared.Class("java/lang/Object")
	foreign, err := other.Alloc(objC)
	if err != nil {
		t.Fatal(err)
	}
	th := fx.run("t/Main", "store(Lt/Holder;Ljava/lang/Object;)I", RefSlot(holder), RefSlot(foreign))
	fx.mustInt(th, 1)

	// Same-heap store is fine.
	mine, _ := fx.user.Alloc(objC)
	th2 := fx.run("t/Main", "store(Lt/Holder;Ljava/lang/Object;)I", RefSlot(holder), RefSlot(mine))
	fx.mustInt(th2, 0)
	if holder.Refs[0] != mine {
		t.Error("legal store did not happen")
	}
}

func TestBarrierCountsStores(t *testing.T) {
	fx := newFixture(t, barrier.HeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/Node
.field next Lt/Node;
.field v I
.end
.class t/Main
.method go (I)I static
.locals 2
.stack 3
	aconst_null
	astore 1
L0:	iload 0
	ifle L1
	new t/Node
	dup
	aload 1
	putfield t/Node.next Lt/Node;
	astore 1
	aload 1
	iconst 1
	putfield t/Node.v I
	iinc 0 -1
	goto L0
L1:	iconst 0
	ireturn
.end
.end`)
	th := fx.run("t/Main", "go(I)I", IntSlot(10))
	fx.mustInt(th, 0)
	// Exactly one ref store per iteration; primitive stores don't count.
	if got := fx.env.BarrierStats.Executed.Load(); got != 10 {
		t.Errorf("barrier count = %d, want 10", got)
	}
}

func TestOOMTriggersGCAndRecovers(t *testing.T) {
	// Heap sized to hold only a few nodes: the allocate-drop loop survives
	// because allocation failure triggers GC.
	fx := newFixture(t, barrier.NoHeapPointer, 4096)
	fx.define(`
.class t/Node
.field payload [I
.end
.class t/Main
.method churn (I)I static
.locals 2
.stack 3
L0:	iload 0
	ifle L1
	new t/Node
	astore 1
	aload 1
	ldc 64
	newarray [I
	putfield t/Node.payload [I
	iinc 0 -1
	goto L0
L1:	iconst 1
	ireturn
.end
.end`)
	th := fx.run("t/Main", "churn(I)I", IntSlot(100))
	fx.mustInt(th, 1)
	if fx.user.Stats().GCs == 0 {
		t.Error("no GC ran despite memory pressure")
	}
}

func TestOOMWhenTrulyExhausted(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, 4096)
	fx.define(`
.class t/Main
.static keep [I
.method hog ()V static
.locals 0
.stack 2
	ldc 100000
	newarray [I
	putstatic t/Main.keep [I
	return
.end
.end`)
	th := fx.run("t/Main", "hog()V")
	fx.mustUncaught(th, "java/lang/OutOfMemoryError")
}

func TestCyclesAccounted(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/Main
.method go ()I static
.locals 1
.stack 2
	iconst 0
	istore 0
L0:	iinc 0 1
	iload 0
	iconst 100
	if_icmplt L0
	iload 0
	ireturn
.end
.end`)
	th := fx.run("t/Main", "go()I")
	fx.mustInt(th, 100)
	if th.Cycles == 0 {
		t.Fatal("no cycles charged")
	}
	// Roughly 4 ops/iteration, each 1 cycle: at least 400.
	if th.Cycles < 400 {
		t.Errorf("cycles = %d, implausibly low", th.Cycles)
	}
}

func TestThreadRootsCoverStack(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/Main
.method park (Ljava/lang/Object;)V static
.locals 1
.stack 1
L0:	goto L0
.end
.end`)
	objC, _ := fx.shared.Class("java/lang/Object")
	o, _ := fx.user.Alloc(objC)
	th := fx.newThread()
	if err := th.PushFrame(fx.method("t/Main", "park(Ljava/lang/Object;)V"), []Slot{RefSlot(o)}); err != nil {
		t.Fatal(err)
	}
	var eng Interpreter
	th.Fuel = 100
	eng.Step(th)
	found := false
	th.Roots(func(r *object.Object) {
		if r == o {
			found = true
		}
	})
	if !found {
		t.Error("local not visited by Roots")
	}
	// GC with the thread's roots must keep o alive.
	fx.user.Collect(th.Roots)
	if o.Dead() {
		t.Error("rooted object collected")
	}
}
