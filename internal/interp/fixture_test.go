package interp

import (
	"testing"

	"repro/internal/barrier"
	"repro/internal/bytecode"
	"repro/internal/heap"
	"repro/internal/loader"
	"repro/internal/memlimit"
	"repro/internal/object"
	"repro/internal/vmaddr"
)

// fixtureLib is the minimal library every interpreter test namespace gets.
const fixtureLib = `
.class java/lang/Object
.method <init> ()V
.locals 1
.stack 1
	return
.end
.end

.class java/lang/String
.end

.class java/lang/Throwable
.field message Ljava/lang/String;
.method <init> ()V
.locals 1
.stack 1
	aload 0
	invokespecial java/lang/Object.<init> ()V
	return
.end
.end

.class java/lang/Exception extends java/lang/Throwable
.method <init> ()V
.locals 1
.stack 1
	aload 0
	invokespecial java/lang/Throwable.<init> ()V
	return
.end
.end

.class java/lang/Error extends java/lang/Throwable
.end
.class java/lang/RuntimeException extends java/lang/Exception
.end
.class java/lang/NullPointerException extends java/lang/RuntimeException
.end
.class java/lang/ArithmeticException extends java/lang/RuntimeException
.end
.class java/lang/ArrayIndexOutOfBoundsException extends java/lang/RuntimeException
.end
.class java/lang/ArrayStoreException extends java/lang/RuntimeException
.end
.class java/lang/ClassCastException extends java/lang/RuntimeException
.end
.class java/lang/NegativeArraySizeException extends java/lang/RuntimeException
.end
.class java/lang/IllegalMonitorStateException extends java/lang/RuntimeException
.end
.class java/lang/OutOfMemoryError extends java/lang/Error
.end
.class java/lang/StackOverflowError extends java/lang/Error
.end
.class java/lang/ThreadDeath extends java/lang/Error
.end
.class kaffeos/SegmentationViolationError extends java/lang/Error
.end
`

type fixture struct {
	t      testing.TB
	reg    *heap.Registry
	root   *memlimit.Limit
	kernel *heap.Heap
	user   *heap.Heap
	shared *loader.Loader
	proc   *loader.Loader
	env    *Env
	intern map[string]*object.Object
	nextID int32
}

func newFixture(t testing.TB, b barrier.Barrier, userMax uint64) *fixture {
	t.Helper()
	space := vmaddr.NewSpace()
	reg := heap.NewRegistry(space, heap.Config{HeaderExtra: b.HeaderExtra()})
	root := memlimit.NewRoot("root", memlimit.Unlimited)
	fx := &fixture{
		t:      t,
		reg:    reg,
		root:   root,
		intern: make(map[string]*object.Object),
	}
	fx.kernel = reg.NewHeap(heap.KindKernel, "kernel", root.MustChild("kernel", memlimit.Unlimited, false))
	fx.user = reg.NewHeap(heap.KindUser, "user", root.MustChild("user", userMax, false))
	fx.shared = loader.NewShared(fx.kernel)
	if err := fx.shared.DefineModule(bytecode.MustAssemble(fixtureLib)); err != nil {
		t.Fatal(err)
	}
	fx.proc = loader.NewProcess("p1", fx.user, fx.shared)

	fx.env = &Env{
		Reg:            reg,
		Barrier:        b,
		BarrierStats:   &barrier.Stats{},
		FastExceptions: true,
		ThinLocks:      true,
		Throwable: func(t *Thread, className, msg string) (*object.Object, error) {
			c, err := fx.shared.Class(className)
			if err != nil {
				return nil, err
			}
			o, err := fx.kernel.Alloc(c)
			if err != nil {
				return nil, err
			}
			o.Data = msg
			return o, nil
		},
		Intern: func(t *Thread, s string) (*object.Object, error) {
			if o, ok := fx.intern[s]; ok {
				return o, nil
			}
			c, err := fx.shared.Class("java/lang/String")
			if err != nil {
				return nil, err
			}
			o, err := t.AllocHeap().Alloc(c)
			if err != nil {
				return nil, err
			}
			o.Data = s
			fx.intern[s] = o
			return o, nil
		},
	}
	fx.env.CollectHeap = func(t *Thread, h *heap.Heap) {
		h.Collect(func(visit func(*object.Object)) {
			t.Roots(visit)
			fx.proc.StaticsRoots(visit)
			for _, o := range fx.intern {
				visit(o)
			}
		})
	}
	return fx
}

// define loads test program source into the process namespace and runs no
// clinits (fixture programs do not use them unless a test runs them).
func (fx *fixture) define(src string) {
	fx.t.Helper()
	if err := fx.proc.DefineModule(bytecode.MustAssemble(src)); err != nil {
		fx.t.Fatal(err)
	}
}

func (fx *fixture) method(cls, key string) *object.Method {
	fx.t.Helper()
	c, err := fx.proc.Class(cls)
	if err != nil {
		fx.t.Fatal(err)
	}
	m, ok := c.MethodByKey(key)
	if !ok {
		fx.t.Fatalf("method %s.%s not found", cls, key)
	}
	return m
}

func (fx *fixture) newThread() *Thread {
	fx.nextID++
	return &Thread{
		ID:    fx.nextID,
		Env:   fx.env,
		Heap:  fx.user,
		State: StateRunnable,
	}
}

// run executes cls.key(args) to completion on a fresh thread and returns it.
func (fx *fixture) run(cls, key string, args ...Slot) *Thread {
	fx.t.Helper()
	th := fx.newThread()
	m := fx.method(cls, key)
	if err := th.PushFrame(m, args); err != nil {
		fx.t.Fatal(err)
	}
	fx.drive(th)
	return th
}

// drive steps th until it finishes, dies, or blocks forever (fails test).
func (fx *fixture) drive(th *Thread) {
	fx.t.Helper()
	var eng Interpreter
	for i := 0; i < 100000; i++ {
		th.Fuel = 5000
		switch eng.Step(th) {
		case StepFinished, StepKilled:
			return
		case StepBlocked:
			fx.t.Fatalf("thread blocked on %v with no other runner", th.BlockedOn)
		}
	}
	fx.t.Fatal("thread did not finish in step budget")
}

// mustInt asserts the thread finished normally returning v.
func (fx *fixture) mustInt(th *Thread, v int64) {
	fx.t.Helper()
	if th.State != StateFinished {
		fx.t.Fatalf("thread state %v, err %v, uncaught %v", th.State, th.Err, th.Uncaught)
	}
	if th.Result.I != v {
		fx.t.Fatalf("result = %d, want %d", th.Result.I, v)
	}
}

// benchFixture builds a fixture for benchmarks with unlimited memory.
func benchFixture(b *testing.B) *fixture {
	return newFixture(b, barrierNoneForBench(), 1<<62)
}

func barrierNoneForBench() barrier.Barrier { return barrier.NoBarrier }

// mustUncaught asserts the thread died with an uncaught throwable of class.
func (fx *fixture) mustUncaught(th *Thread, cls string) {
	fx.t.Helper()
	if th.State != StateKilled || th.Uncaught == nil {
		fx.t.Fatalf("state %v uncaught %v err %v, want uncaught %s", th.State, th.Uncaught, th.Err, cls)
	}
	if th.Uncaught.Class.Name != cls {
		fx.t.Fatalf("uncaught %s, want %s", th.Uncaught.Class.Name, cls)
	}
}
