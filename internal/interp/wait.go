package interp

// Object.wait/notify and Thread.join support.
//
// A waiting thread releases its monitor completely (remembering the
// recursion count), parks in StateWaiting on the object's wait set, and
// becomes eligible to run again only after a notify AND re-acquisition of
// the monitor. The scheduler polls ReacquireReady/TryReacquire from its
// wake pass, which keeps all policy in one place and the state machine on
// the thread itself. Join is the degenerate case: parking on a predicate
// (target thread no longer alive) with no monitor involved.

import (
	"fmt"

	"repro/internal/object"
)

// Wait implements Object.wait(): the calling thread must own o's monitor.
// On success the thread is parked (StateWaiting) and the monitor released;
// the engine returns to the scheduler at the end of the current native
// call.
func Wait(t *Thread, o *object.Object) error {
	if !ownsMonitor(t, o) {
		return t.Env.Throw(t, ClsIllegalMonitor, "wait without owning the monitor")
	}
	rec := inflate(o)
	// Remember recursion depth; release fully.
	t.SavedLockCount = rec.count
	rec.owner = 0
	rec.count = 0
	if t.Env.ThinLocks {
		o.LockOwner = 0
		o.LockCount = 0
	}
	rec.waiters = append(rec.waiters, t)
	t.WaitingOn = o
	t.Notified = false
	t.WakeAt = 0
	t.State = StateWaiting
	return nil
}

// WaitTimed is Wait with a deadline in absolute virtual cycles: the
// scheduler self-notifies the thread when the clock passes it
// (Object.wait(millis)).
func WaitTimed(t *Thread, o *object.Object, deadline uint64) error {
	if err := Wait(t, o); err != nil {
		return err
	}
	t.WakeAt = deadline
	return nil
}

// Notify implements Object.notify()/notifyAll(): marks one (or all)
// waiters as notified; they re-acquire the monitor when the scheduler
// sees it free.
func Notify(t *Thread, o *object.Object, all bool) error {
	if !ownsMonitor(t, o) {
		return t.Env.Throw(t, ClsIllegalMonitor, "notify without owning the monitor")
	}
	rec := inflate(o)
	for i, w := range rec.waiters {
		w.Notified = true
		if !all && i == 0 {
			break
		}
	}
	return nil
}

// ownsMonitor reports whether t currently holds o's monitor.
func ownsMonitor(t *Thread, o *object.Object) bool {
	if rec, ok := o.Heavy.(*monitorRecord); ok {
		return rec.owner == t.ID
	}
	if t.Env.ThinLocks {
		return o.LockOwner == t.ID
	}
	return false
}

// ReacquireReady reports whether a waiting thread can resume: it was
// notified (or its park predicate holds) and, for monitor waits, the
// monitor is free.
func ReacquireReady(t *Thread) bool {
	if t.WaitCond != nil {
		return t.WaitCond()
	}
	if t.WaitingOn == nil {
		return true // spurious state; let it run
	}
	if !t.Notified {
		return false
	}
	rec := inflate(t.WaitingOn)
	return rec.owner == 0 || rec.owner == t.ID
}

// Resume finalizes the wake-up of a waiting thread: re-acquires the
// monitor at the saved recursion depth and clears the wait state. The
// scheduler calls it only after ReacquireReady reported true.
func Resume(t *Thread) error {
	if t.WaitCond != nil {
		t.WaitCond = nil
		t.State = StateRunnable
		return nil
	}
	o := t.WaitingOn
	if o == nil {
		t.State = StateRunnable
		return nil
	}
	rec := inflate(o)
	if rec.owner != 0 && rec.owner != t.ID {
		return fmt.Errorf("interp: resume with monitor held by %d", rec.owner)
	}
	rec.owner = t.ID
	rec.count = t.SavedLockCount
	if t.Env.ThinLocks {
		o.LockOwner = t.ID
		o.LockCount = t.SavedLockCount
	}
	// Drop t from the wait set.
	for i, w := range rec.waiters {
		if w == t {
			rec.waiters = append(rec.waiters[:i], rec.waiters[i+1:]...)
			break
		}
	}
	t.WaitingOn = nil
	t.Notified = false
	t.SavedLockCount = 0
	t.State = StateRunnable
	return nil
}

// ParkUntil parks the thread until cond reports true (Thread.join and
// similar). The scheduler polls the predicate.
func ParkUntil(t *Thread, cond func() bool) {
	t.WaitCond = cond
	t.State = StateWaiting
}

// CancelWait force-removes a killed thread from any wait set.
func CancelWait(t *Thread) {
	if o := t.WaitingOn; o != nil {
		if rec, ok := o.Heavy.(*monitorRecord); ok {
			for i, w := range rec.waiters {
				if w == t {
					rec.waiters = append(rec.waiters[:i], rec.waiters[i+1:]...)
					break
				}
			}
		}
	}
	t.WaitingOn = nil
	t.WaitCond = nil
	t.Notified = false
}
