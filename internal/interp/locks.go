package interp

// Monitor locking. Two implementations mirror the locking generations the
// paper's platforms differ by (§4: Kaffe00 gained "lightweight locking"
// over Kaffe99):
//
//   - Thin locks store the owner thread ID and recursion count in the
//     object header words; acquisition on an unlocked object is a couple
//     of header writes.
//   - Heavyweight locks allocate a monitor record on first use and always
//     go through it, simulating Kaffe99's allocation-per-lock behaviour
//     with extra cycle cost.
//
// Blocking is cooperative: when a monitor is held by another thread, the
// engine parks the thread (StateBlocked, BlockedOn set) without advancing
// the PC, so the scheduler retries the MONITORENTER when the monitor is
// released.

import (
	"repro/internal/object"
)

// monitorRecord is the heavyweight monitor, hung off object.Heavy. Thin
// locks inflate to a record the first time a thread waits on the object.
type monitorRecord struct {
	owner   int32
	count   int32
	waiters []*Thread
}

// inflate ensures o has a monitor record, folding in any thin-lock state.
func inflate(o *object.Object) *monitorRecord {
	if rec, ok := o.Heavy.(*monitorRecord); ok {
		return rec
	}
	rec := &monitorRecord{owner: o.LockOwner, count: o.LockCount}
	o.Heavy = rec
	return rec
}

// Extra simulated cycles charged by the heavyweight path.
const heavyLockExtraCycles = 60

// tryLock attempts to acquire o's monitor for t. It reports whether the
// monitor was acquired; if not, the caller must park the thread.
func tryLock(t *Thread, o *object.Object) bool {
	if t.Env.ThinLocks {
		switch {
		case o.LockOwner == 0:
			o.LockOwner = t.ID
			o.LockCount = 1
			return true
		case o.LockOwner == t.ID:
			o.LockCount++
			return true
		default:
			return false
		}
	}
	t.Fuel -= heavyLockExtraCycles
	t.Cycles += heavyLockExtraCycles
	rec, ok := o.Heavy.(*monitorRecord)
	if !ok {
		rec = &monitorRecord{}
		o.Heavy = rec
	}
	switch {
	case rec.owner == 0:
		rec.owner = t.ID
		rec.count = 1
		return true
	case rec.owner == t.ID:
		rec.count++
		return true
	default:
		return false
	}
}

// unlock releases one recursion level of o's monitor held by t. It reports
// whether t actually held the monitor.
func unlock(t *Thread, o *object.Object) bool {
	if t.Env.ThinLocks {
		if o.LockOwner != t.ID {
			return false
		}
		o.LockCount--
		if o.LockCount == 0 {
			o.LockOwner = 0
		}
		return true
	}
	t.Fuel -= heavyLockExtraCycles
	t.Cycles += heavyLockExtraCycles
	rec, ok := o.Heavy.(*monitorRecord)
	if !ok || rec.owner != t.ID {
		return false
	}
	rec.count--
	if rec.count == 0 {
		rec.owner = 0
	}
	return true
}

// releaseMonitor force-releases all recursion levels held by t on o, used
// when unwinding frames.
func releaseMonitor(t *Thread, o *object.Object) {
	if t.Env.ThinLocks {
		if o.LockOwner == t.ID {
			o.LockOwner = 0
			o.LockCount = 0
		}
		return
	}
	if rec, ok := o.Heavy.(*monitorRecord); ok && rec.owner == t.ID {
		rec.owner = 0
		rec.count = 0
	}
}

// monitorFree reports whether o's monitor could be acquired by t right now
// (used by the scheduler to wake blocked threads).
func MonitorFree(t *Thread, o *object.Object) bool {
	if t.Env.ThinLocks {
		return o.LockOwner == 0 || o.LockOwner == t.ID
	}
	rec, ok := o.Heavy.(*monitorRecord)
	return !ok || rec.owner == 0 || rec.owner == t.ID
}
