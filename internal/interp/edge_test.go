package interp

import (
	"testing"

	"repro/internal/barrier"
	"repro/internal/memlimit"
)

// Edge-case semantics, run under every engine so the interpreter and both
// JIT levels agree on the corners.

func runAllEngines(t *testing.T, fx *fixture, cls, key string, want int64, args ...Slot) {
	t.Helper()
	for _, eng := range allEngines() {
		th := fx.driveWith(eng, cls, key, args...)
		if th.State != StateFinished {
			t.Fatalf("%s: state %v err %v uncaught %v", eng.Name(), th.State, th.Err, th.Uncaught)
		}
		if th.Result.I != want {
			t.Errorf("%s: got %d, want %d", eng.Name(), th.Result.I, want)
		}
	}
}

func TestShiftMasking(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/S
.method go ()I static
.locals 0
.stack 3
	iconst 1
	ldc 65
	ishl           # shift by 65 & 63 = 1 -> 2
	iconst 16
	iconst 2
	ishr           # 4
	iadd           # 6
	iconst -8
	iconst 1
	iushr          # logical shift of negative
	iconst 0
	if_icmple BAD
	ireturn
BAD:	iconst -1
	ireturn
.end
.end`)
	runAllEngines(t, fx, "t/S", "go()I", 6)
}

func TestStackManipulation(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/S
.method go ()I static
.locals 0
.stack 4
	iconst 1
	iconst 2
	swap          # 2 1
	isub          # 2-1 = 1
	iconst 30
	iconst 4
	dup_x1        # 4 30 4
	iadd          # 4 34
	iadd          # 38
	iadd          # 39
	ireturn
.end
.end`)
	runAllEngines(t, fx, "t/S", "go()I", 39)
}

func TestDoubleEdgeCases(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/D
.method divzero ()I static
.locals 0
.stack 4
	ldc 1.0
	ldc 0.0
	ddiv           # +Inf, no exception for doubles
	ldc 0.0
	dcmp           # +Inf > 0 -> 1
	ireturn
.end
.method nan ()I static
.locals 0
.stack 4
	ldc 0.0
	ldc 0.0
	ddiv           # NaN
	ldc 0.0
	dcmp           # NaN compares equal under our 3-way model? it yields 0
	ireturn
.end
.method neg ()I static
.locals 0
.stack 2
	ldc 2.5
	dneg
	d2i
	ireturn
.end
.end`)
	runAllEngines(t, fx, "t/D", "divzero()I", 1)
	runAllEngines(t, fx, "t/D", "neg()I", -2)
}

func TestIincNegativeAndLarge(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/I
.method go ()I static
.locals 1
.stack 2
	iconst 100
	istore 0
	iinc 0 -150
	iinc 0 1
	iload 0
	ireturn
.end
.end`)
	runAllEngines(t, fx, "t/I", "go()I", -49)
}

func TestRemainderSemantics(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/R
.method go ()I static
.locals 0
.stack 3
	iconst -7
	iconst 3
	irem           # Go/Java: -1
	iconst 10
	imul           # -10
	iconst 7
	iconst -3
	irem           # 1
	iadd
	ireturn
.end
.end`)
	runAllEngines(t, fx, "t/R", "go()I", -9)
}

func TestNullChecksEverywhere(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/N
.field v I
.method npe (I)I static
.locals 2
.stack 3
	aconst_null
	astore 1
T0:	iload 0
	ifne PUT
	aload 1
	getfield t/N.v I
	ireturn
PUT:	iload 0
	iconst 1
	if_icmpne ARR
	aload 1
	iconst 5
	putfield t/N.v I
	iconst 0
	ireturn
ARR:	aload 1
	iconst 0
	iaload
	ireturn
T1:	pop
	iconst 42
	ireturn
.catch java/lang/NullPointerException T0 T1 T1
.end
.end`)
	for _, variant := range []int64{0, 1, 2} {
		runAllEngines(t, fx, "t/N", "npe(I)I", 42, IntSlot(variant))
	}
}

func TestDeepCallChainNearLimit(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.env.MaxFrameDepth = 64
	fx.define(`
.class t/D
.method down (I)I static
.locals 1
.stack 3
	iload 0
	ifgt REC
	iconst 0
	ireturn
REC:	iload 0
	iconst 1
	isub
	invokestatic t/D.down (I)I
	iconst 1
	iadd
	ireturn
.end
.end`)
	// 60 frames fits under the 64 limit (plus the entry frame).
	runAllEngines(t, fx, "t/D", "down(I)I", 60, IntSlot(60))
	// 100 does not: StackOverflowError.
	for _, eng := range allEngines() {
		th := fx.newThread()
		if err := th.PushFrame(fx.method("t/D", "down(I)I"), []Slot{IntSlot(100)}); err != nil {
			t.Fatal(err)
		}
		for i := 0; th.Alive() && i < 10000; i++ {
			th.Fuel = 100000
			eng.Step(th)
		}
		if th.Uncaught == nil || th.Uncaught.Class.Name != "java/lang/StackOverflowError" {
			t.Errorf("%s: uncaught = %v", eng.Name(), th.Uncaught)
		}
	}
}

func TestInstanceofNullIsFalse(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/O
.method go ()I static
.locals 0
.stack 2
	aconst_null
	instanceof java/lang/Object
	aconst_null
	checkcast java/lang/String
	ifnull OK
	iconst -1
	ireturn
OK:	iconst 10
	iadd
	ireturn
.end
.end`)
	runAllEngines(t, fx, "t/O", "go()I", 10)
}

func TestArrayCovarianceStoreCheck(t *testing.T) {
	fx := newFixture(t, barrier.NoHeapPointer, memlimit.Unlimited)
	fx.define(`
.class t/A
.method <init> ()V
.locals 1
.stack 1
	aload 0
	invokespecial java/lang/Object.<init> ()V
	return
.end
.end
.class t/B extends t/A
.method <init> ()V
.locals 1
.stack 1
	aload 0
	invokespecial t/A.<init> ()V
	return
.end
.end
.class t/M
.method go ()I static
.locals 2
.stack 4
# [Lt/B; viewed as [Lt/A; must reject storing a t/A
	iconst 2
	newarray [Lt/B;
	astore 0
T0:	aload 0
	iconst 0
	new t/A
	dup
	invokespecial t/A.<init> ()V
	aastore
	iconst 0
	ireturn
T1:	pop
# storing a t/B is fine
	aload 0
	iconst 0
	new t/B
	dup
	invokespecial t/B.<init> ()V
	aastore
	iconst 1
	ireturn
.catch java/lang/ArrayStoreException T0 T1 T1
.end
.end`)
	runAllEngines(t, fx, "t/M", "go()I", 1)
}
