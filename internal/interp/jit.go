package interp

// The closure-compiling engine ("JIT").
//
// Kaffe's real JIT translated each bytecode individually to x86; our
// equivalent translates each instruction (or a fused run of instructions)
// to a Go closure, eliminating the fetch/decode switch of the baseline
// interpreter. Two quality levels reproduce the paper's platform spread:
//
//   - JIT{}: plain translation, one closure per instruction — the Kaffe00
//     class of engine ("a better JIT").
//   - JIT{Fused: true, InlineCache: true}: superoperator fusion (common
//     sequences like load/load/op/store or load/const/compare-branch
//     become a single closure) plus monomorphic inline caches at virtual
//     call sites — the commercial-JIT (IBM) class of engine.
//
// Simulated cycle accounting is identical across engines — fusion changes
// host wall-clock time, not the virtual machine's cost model — so CPU
// accounting and the servlet experiment's virtual clock are engine-
// independent, while Figure 3's wall-clock spread emerges naturally.
//
// Compiled bodies are relocatable: closures never capture namespace-bound
// pointers (classes, fields, resolved methods). Anything that differs
// between two processes that defined the same module is re-derived at run
// time through the executing frame's own link table (f.M.Links[idx]), so
// one compiled artifact can be installed into every process that loads
// the module (internal/codecache). Only values that are deterministic per
// identical ClassDef — field slots, branch targets, argument counts,
// constants, cycle costs — are captured at compile time.

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/bytecode"
	"repro/internal/object"
)

// JIT is a closure-compiling engine.
type JIT struct {
	Fused       bool
	InlineCache bool
}

// Name implements Engine.
func (j *JIT) Name() string {
	if j.Fused || j.InlineCache {
		return "jit-opt"
	}
	return "jit"
}

// Step implements Engine.
func (j *JIT) Step(t *Thread) StepResult {
	return runLoop(t, j.execFrame)
}

type jitKey struct{ fused, ic bool }

// control is the signal a compiled closure returns to the driver.
type control uint8

const (
	ctlNext   control = iota // fall through to pc+1
	ctlBranch                // f.PC set by the closure; run safepoint checks
	ctlFrame                 // frame stack changed (call/return/throw-handled)
	ctlStop                  // thread state changed; driver must return
)

type closure func(t *Thread, f *Frame) control

// compiled is one method body compiled for one engine configuration.
type compiled struct {
	ops []closure // indexed by original pc
	// cost is the simulated cycle cost charged by the driver before
	// running ops[pc]; fused runs carry their full cost at the head pc.
	cost []int64
}

var jitMu sync.Mutex

// bodyFor compiles (or fetches the cached compilation of) m.
func (j *JIT) bodyFor(m *object.Method) (*compiled, error) {
	jitMu.Lock()
	defer jitMu.Unlock()
	cache, _ := m.Compiled.(map[jitKey]*compiled)
	if cache == nil {
		cache = make(map[jitKey]*compiled)
		m.Compiled = cache
	}
	key := jitKey{j.Fused, j.InlineCache}
	if c, ok := cache[key]; ok {
		return c, nil
	}
	c, err := j.compile(m)
	if err != nil {
		return nil, err
	}
	cache[key] = c
	return c, nil
}

// execFrame drives compiled code for the top frame; the contract matches
// the interpreter's execFrame.
func (j *JIT) execFrame(t *Thread, f *Frame) (StepResult, bool) {
	body, err := j.bodyFor(f.M)
	if err != nil {
		t.Err = err
		t.unwindAll()
		t.State = StateKilled
		return StepKilled, false
	}
	n := len(body.ops)
	for {
		if f.PC < 0 || f.PC >= n {
			t.Err = fmt.Errorf("interp: jit pc %d out of range in %s", f.PC, f.M)
			t.unwindAll()
			t.State = StateKilled
			return StepKilled, false
		}
		c := body.cost[f.PC]
		t.Fuel -= c
		t.Cycles += uint64(c)
		switch body.ops[f.PC](t, f) {
		case ctlNext:
			f.PC++
			if t.Fuel <= 0 {
				if checkKill(t) {
					return StepKilled, false
				}
				return StepYielded, false
			}
		case ctlBranch:
			if res, stop := t.safepoint(); stop {
				return res, false
			}
		case ctlFrame:
			return StepYielded, true
		case ctlStop:
			return stepResultFor(t), false
		}
	}
}

func stepResultFor(t *Thread) StepResult {
	switch t.State {
	case StateBlocked:
		return StepBlocked
	case StateSleeping:
		return StepSleeping
	case StateWaiting:
		return StepWaiting
	case StateKilled:
		return StepKilled
	case StateFinished:
		return StepFinished
	}
	return StepYielded
}

// compile translates m's bytecode. Every original pc gets a closure; pcs
// swallowed by fusion get a closure that forwards to the fused run's head
// (so branches into a fused run still work when the run head is the
// target; interior targets prevent fusion in the first place).
func (j *JIT) compile(m *object.Method) (*compiled, error) {
	code := m.Code
	n := len(code.Instrs)
	ops := make([]closure, n)
	costs := make([]int64, n)

	// Branch targets and handler entries may not be fused over.
	target := make([]bool, n+1)
	for _, in := range code.Instrs {
		if in.Op.IsBranch() {
			target[in.A] = true
		}
	}
	for _, h := range code.Handlers {
		target[h.PC] = true
	}

	for pc := 0; pc < n; {
		var cl closure
		var width int
		if j.Fused {
			cl, width = j.fuse(m, pc, target)
		}
		if cl == nil {
			var err error
			cl, err = j.compileOne(m, pc)
			if err != nil {
				return nil, err
			}
			width = 1
		}
		ops[pc] = cl
		for i := 0; i < width; i++ {
			costs[pc] += int64(code.Instrs[pc+i].Op.Cycles())
		}
		// Interior pcs of a fused run are unreachable (no branch targets
		// inside); fill with a trap for safety.
		for i := pc + 1; i < pc+width; i++ {
			ops[i] = trapClosure(m, i)
		}
		pc += width
	}
	return &compiled{ops: ops, cost: costs}, nil
}

func trapClosure(m *object.Method, pc int) closure {
	return func(t *Thread, f *Frame) control {
		t.Err = fmt.Errorf("interp: jump into fused run at %s pc %d", m, pc)
		t.unwindAll()
		t.State = StateKilled
		return ctlStop
	}
}

// inlineCacheSite is a monomorphic inline cache for one virtual call site.
type inlineCacheSite struct {
	class  *object.Class
	method *object.Method
}

// compileOne translates a single instruction.
func (j *JIT) compileOne(m *object.Method, pc int) (closure, error) {
	code := m.Code
	in := code.Instrs[pc]

	switch in.Op {
	case bytecode.NOP:
		return func(t *Thread, f *Frame) control { return ctlNext }, nil
	case bytecode.ICONST:
		v := int64(in.A)
		return func(t *Thread, f *Frame) control { f.push(IntSlot(v)); return ctlNext }, nil
	case bytecode.ACONST_NULL:
		return func(t *Thread, f *Frame) control { f.push(Slot{}); return ctlNext }, nil
	case bytecode.LDC:
		k := &code.Consts[in.A]
		switch k.Kind {
		case bytecode.KindInt:
			v := k.I
			return func(t *Thread, f *Frame) control { f.push(IntSlot(v)); return ctlNext }, nil
		case bytecode.KindDouble:
			v := int64(math.Float64bits(k.D))
			return func(t *Thread, f *Frame) control { f.push(IntSlot(v)); return ctlNext }, nil
		case bytecode.KindString:
			s := k.S
			return func(t *Thread, f *Frame) control {
				o, err := t.Env.Intern(t, s)
				if err != nil {
					return jitFault(t, err)
				}
				f.push(RefSlot(o))
				return ctlNext
			}, nil
		}
		return nil, fmt.Errorf("jit: bad ldc constant at %s pc %d", m, pc)

	case bytecode.ILOAD, bytecode.DLOAD:
		i := in.A
		return func(t *Thread, f *Frame) control { f.push(IntSlot(f.Locals[i].I)); return ctlNext }, nil
	case bytecode.ALOAD:
		i := in.A
		return func(t *Thread, f *Frame) control { f.push(RefSlot(f.Locals[i].R)); return ctlNext }, nil
	case bytecode.ISTORE, bytecode.DSTORE:
		i := in.A
		return func(t *Thread, f *Frame) control { f.Locals[i] = IntSlot(f.pop().I); return ctlNext }, nil
	case bytecode.ASTORE:
		i := in.A
		return func(t *Thread, f *Frame) control { f.Locals[i] = RefSlot(f.pop().R); return ctlNext }, nil
	case bytecode.IINC:
		i, d := in.A, int64(in.B)
		return func(t *Thread, f *Frame) control { f.Locals[i].I += d; return ctlNext }, nil

	case bytecode.POP:
		return func(t *Thread, f *Frame) control { f.pop(); return ctlNext }, nil
	case bytecode.DUP:
		return func(t *Thread, f *Frame) control { f.push(*f.top()); return ctlNext }, nil
	case bytecode.DUP_X1:
		return func(t *Thread, f *Frame) control {
			a, b := f.pop(), f.pop()
			f.push(a)
			f.push(b)
			f.push(a)
			return ctlNext
		}, nil
	case bytecode.SWAP:
		return func(t *Thread, f *Frame) control {
			a, b := f.pop(), f.pop()
			f.push(a)
			f.push(b)
			return ctlNext
		}, nil

	case bytecode.IADD:
		return func(t *Thread, f *Frame) control { b := f.pop().I; f.top().I += b; return ctlNext }, nil
	case bytecode.ISUB:
		return func(t *Thread, f *Frame) control { b := f.pop().I; f.top().I -= b; return ctlNext }, nil
	case bytecode.IMUL:
		return func(t *Thread, f *Frame) control { b := f.pop().I; f.top().I *= b; return ctlNext }, nil
	case bytecode.IDIV, bytecode.IREM:
		rem := in.Op == bytecode.IREM
		return func(t *Thread, f *Frame) control {
			b := f.pop().I
			if b == 0 {
				return jitThrow(t, ClsArithmetic, "/ by zero")
			}
			if rem {
				f.top().I %= b
			} else {
				f.top().I /= b
			}
			return ctlNext
		}, nil
	case bytecode.INEG:
		return func(t *Thread, f *Frame) control { f.top().I = -f.top().I; return ctlNext }, nil
	case bytecode.ISHL:
		return func(t *Thread, f *Frame) control {
			b := f.pop().I
			f.top().I <<= uint64(b) & 63
			return ctlNext
		}, nil
	case bytecode.ISHR:
		return func(t *Thread, f *Frame) control {
			b := f.pop().I
			f.top().I >>= uint64(b) & 63
			return ctlNext
		}, nil
	case bytecode.IUSHR:
		return func(t *Thread, f *Frame) control {
			b := f.pop().I
			f.top().I = int64(uint64(f.top().I) >> (uint64(b) & 63))
			return ctlNext
		}, nil
	case bytecode.IAND:
		return func(t *Thread, f *Frame) control { b := f.pop().I; f.top().I &= b; return ctlNext }, nil
	case bytecode.IOR:
		return func(t *Thread, f *Frame) control { b := f.pop().I; f.top().I |= b; return ctlNext }, nil
	case bytecode.IXOR:
		return func(t *Thread, f *Frame) control { b := f.pop().I; f.top().I ^= b; return ctlNext }, nil

	case bytecode.DADD, bytecode.DSUB, bytecode.DMUL, bytecode.DDIV:
		op := in.Op
		return func(t *Thread, f *Frame) control {
			b := dval(f.pop().I)
			x := f.top()
			a := dval(x.I)
			switch op {
			case bytecode.DADD:
				a += b
			case bytecode.DSUB:
				a -= b
			case bytecode.DMUL:
				a *= b
			default:
				a /= b
			}
			x.I = dbits(a)
			return ctlNext
		}, nil
	case bytecode.DNEG:
		return func(t *Thread, f *Frame) control { x := f.top(); x.I = dbits(-dval(x.I)); return ctlNext }, nil
	case bytecode.I2D:
		return func(t *Thread, f *Frame) control { x := f.top(); x.I = dbits(float64(x.I)); return ctlNext }, nil
	case bytecode.D2I:
		return func(t *Thread, f *Frame) control { x := f.top(); x.I = int64(dval(x.I)); return ctlNext }, nil
	case bytecode.DCMP:
		return func(t *Thread, f *Frame) control {
			b := dval(f.pop().I)
			x := f.top()
			a := dval(x.I)
			switch {
			case a < b:
				x.I = -1
			case a > b:
				x.I = 1
			default:
				x.I = 0
			}
			return ctlNext
		}, nil

	case bytecode.GOTO:
		tgt := int(in.A)
		return func(t *Thread, f *Frame) control { f.PC = tgt; return ctlBranch }, nil
	case bytecode.IFEQ, bytecode.IFNE, bytecode.IFLT, bytecode.IFGE, bytecode.IFGT, bytecode.IFLE:
		tgt, op := int(in.A), in.Op
		return func(t *Thread, f *Frame) control {
			v := f.pop().I
			if cmpZero(op, v) {
				f.PC = tgt
			} else {
				f.PC++
			}
			return ctlBranch
		}, nil
	case bytecode.IF_ICMPEQ, bytecode.IF_ICMPNE, bytecode.IF_ICMPLT, bytecode.IF_ICMPGE, bytecode.IF_ICMPGT, bytecode.IF_ICMPLE:
		tgt, op := int(in.A), in.Op
		return func(t *Thread, f *Frame) control {
			b := f.pop().I
			a := f.pop().I
			if cmpInts(op, a, b) {
				f.PC = tgt
			} else {
				f.PC++
			}
			return ctlBranch
		}, nil
	case bytecode.IF_ACMPEQ, bytecode.IF_ACMPNE:
		tgt := int(in.A)
		eq := in.Op == bytecode.IF_ACMPEQ
		return func(t *Thread, f *Frame) control {
			b := f.pop().R
			a := f.pop().R
			if (a == b) == eq {
				f.PC = tgt
			} else {
				f.PC++
			}
			return ctlBranch
		}, nil
	case bytecode.IFNULL, bytecode.IFNONNULL:
		tgt := int(in.A)
		wantNil := in.Op == bytecode.IFNULL
		return func(t *Thread, f *Frame) control {
			if (f.pop().R == nil) == wantNil {
				f.PC = tgt
			} else {
				f.PC++
			}
			return ctlBranch
		}, nil

	case bytecode.NEW:
		idx := in.A
		return func(t *Thread, f *Frame) control {
			o, err := t.Env.AllocObject(t, f.M.Links[idx].Class)
			if err != nil {
				return jitFault(t, err)
			}
			f.push(RefSlot(o))
			return ctlNext
		}, nil
	case bytecode.NEWARRAY:
		idx := in.A
		return func(t *Thread, f *Frame) control {
			n := f.pop().I
			if n < 0 {
				return jitThrow(t, ClsNegativeArraySize, fmt.Sprintf("%d", n))
			}
			o, err := t.Env.AllocArray(t, f.M.Links[idx].Class, int(n))
			if err != nil {
				return jitFault(t, err)
			}
			f.push(RefSlot(o))
			return ctlNext
		}, nil
	case bytecode.ARRAYLENGTH:
		return func(t *Thread, f *Frame) control {
			o := f.pop().R
			if o == nil {
				return jitThrow(t, ClsNullPointer, "arraylength of null")
			}
			f.push(IntSlot(int64(o.ArrayLen())))
			return ctlNext
		}, nil

	case bytecode.IALOAD, bytecode.AALOAD:
		refs := in.Op == bytecode.AALOAD
		return func(t *Thread, f *Frame) control {
			idx := f.pop().I
			arr := f.pop().R
			if ctl, ok := jitCheckArray(t, arr, idx); !ok {
				return ctl
			}
			if refs {
				f.push(RefSlot(arr.Refs[idx]))
			} else {
				f.push(IntSlot(arr.Prims[idx]))
			}
			return ctlNext
		}, nil
	case bytecode.IASTORE:
		return func(t *Thread, f *Frame) control {
			v := f.pop().I
			idx := f.pop().I
			arr := f.pop().R
			if ctl, ok := jitCheckArray(t, arr, idx); !ok {
				return ctl
			}
			arr.Prims[idx] = v
			return ctlNext
		}, nil
	case bytecode.AASTORE:
		return func(t *Thread, f *Frame) control {
			v := f.pop().R
			idx := f.pop().I
			arr := f.pop().R
			if ctl, ok := jitCheckArray(t, arr, idx); !ok {
				return ctl
			}
			if v != nil && arr.Class.ElemClass != nil && !arr.Class.ElemClass.AssignableFrom(v.Class) {
				return jitThrow(t, ClsArrayStore, v.Class.Name)
			}
			if ctl, ok := jitBarrier(t, arr, v); !ok {
				return ctl
			}
			arr.Refs[idx] = v
			return ctlNext
		}, nil

	case bytecode.GETFIELD:
		fl := m.Links[in.A].Field
		slot, ref, name := fl.Slot, fl.Ref, fl.Name
		return func(t *Thread, f *Frame) control {
			o := f.pop().R
			if o == nil {
				return jitThrow(t, ClsNullPointer, "getfield "+name)
			}
			if ref {
				f.push(RefSlot(o.Refs[slot]))
			} else {
				f.push(IntSlot(o.Prims[slot]))
			}
			return ctlNext
		}, nil
	case bytecode.PUTFIELD:
		fl := m.Links[in.A].Field
		slot, ref, name := fl.Slot, fl.Ref, fl.Name
		return func(t *Thread, f *Frame) control {
			v := f.pop()
			o := f.pop().R
			if o == nil {
				return jitThrow(t, ClsNullPointer, "putfield "+name)
			}
			if ref {
				if ctl, ok := jitBarrier(t, o, v.R); !ok {
					return ctl
				}
				o.Refs[slot] = v.R
			} else {
				o.Prims[slot] = v.I
			}
			return ctlNext
		}, nil
	case bytecode.GETSTATIC:
		idx := in.A
		return func(t *Thread, f *Frame) control {
			fl := f.M.Links[idx].Field
			st := fl.Class.Statics
			if fl.Ref {
				f.push(RefSlot(st.Refs[fl.Slot]))
			} else {
				f.push(IntSlot(st.Prims[fl.Slot]))
			}
			return ctlNext
		}, nil
	case bytecode.PUTSTATIC:
		idx := in.A
		return func(t *Thread, f *Frame) control {
			fl := f.M.Links[idx].Field
			st := fl.Class.Statics
			v := f.pop()
			if fl.Ref {
				if ctl, ok := jitBarrier(t, st, v.R); !ok {
					return ctl
				}
				st.Refs[fl.Slot] = v.R
			} else {
				st.Prims[fl.Slot] = v.I
			}
			return ctlNext
		}, nil

	case bytecode.INSTANCEOF:
		idx := in.A
		return func(t *Thread, f *Frame) control {
			c := f.M.Links[idx].Class
			o := f.pop().R
			if o != nil && c.AssignableFrom(o.Class) {
				f.push(IntSlot(1))
			} else {
				f.push(IntSlot(0))
			}
			return ctlNext
		}, nil
	case bytecode.CHECKCAST:
		idx := in.A
		return func(t *Thread, f *Frame) control {
			c := f.M.Links[idx].Class
			o := f.top().R
			if o != nil && !c.AssignableFrom(o.Class) {
				return jitThrow(t, ClsClassCast, o.Class.Name+" -> "+c.Name)
			}
			return ctlNext
		}, nil

	case bytecode.INVOKESTATIC, bytecode.INVOKEVIRTUAL, bytecode.INVOKESPECIAL:
		return j.compileInvoke(m, pc), nil

	case bytecode.RETURN, bytecode.IRETURN, bytecode.ARETURN, bytecode.DRETURN:
		hasRet := in.Op != bytecode.RETURN
		return func(t *Thread, f *Frame) control {
			var ret Slot
			if hasRet {
				ret = f.pop()
			}
			t.popFrameReturn(f, ret, hasRet)
			return ctlFrame
		}, nil

	case bytecode.ATHROW:
		return func(t *Thread, f *Frame) control {
			o := f.pop().R
			if o == nil {
				return jitThrow(t, ClsNullPointer, "throw null")
			}
			if _, cont := t.raise(o); !cont {
				return ctlStop
			}
			return ctlFrame
		}, nil

	case bytecode.MONITORENTER:
		return func(t *Thread, f *Frame) control {
			o := f.top().R
			if o == nil {
				f.pop()
				return jitThrow(t, ClsNullPointer, "monitorenter on null")
			}
			if tryLock(t, o) {
				f.pop()
				f.Monitors = append(f.Monitors, o)
				return ctlNext
			}
			t.BlockedOn = o
			t.State = StateBlocked
			return ctlStop
		}, nil
	case bytecode.MONITOREXIT:
		return func(t *Thread, f *Frame) control {
			o := f.pop().R
			if o == nil {
				return jitThrow(t, ClsNullPointer, "monitorexit on null")
			}
			if !unlock(t, o) {
				return jitThrow(t, ClsIllegalMonitor, "not owner")
			}
			for i := len(f.Monitors) - 1; i >= 0; i-- {
				if f.Monitors[i] == o {
					f.Monitors = append(f.Monitors[:i], f.Monitors[i+1:]...)
					break
				}
			}
			return ctlNext
		}, nil
	}
	return nil, fmt.Errorf("jit: unimplemented opcode %s", in.Op.Name())
}

// compileInvoke builds the call closure, with an optional monomorphic
// inline cache for virtual sites. The resolved callee is re-derived from
// the executing frame's link table at run time; only scalars that are
// identical for every namespace defining the same module (argument count,
// vtable presence, name) are captured, keeping the closure relocatable.
// The inline cache still works across processes: it is keyed on the
// receiver's class pointer, so a clone's first call through a shared
// site simply misses and refills.
func (j *JIT) compileInvoke(m *object.Method, pc int) closure {
	in := m.Code.Instrs[pc]
	idx := in.A
	callee := m.Links[idx].Method
	static := in.Op == bytecode.INVOKESTATIC
	virtual := in.Op == bytecode.INVOKEVIRTUAL
	nargs := callee.NArgs
	if !static {
		nargs++
	}
	name := callee.Name
	hasVIdx := callee.VIndex >= 0
	var cache inlineCacheSite
	useIC := j.InlineCache && virtual && hasVIdx

	return func(t *Thread, f *Frame) control {
		callee := f.M.Links[idx].Method
		target := callee
		if !static {
			recv := f.Stack[f.SP-nargs].R
			if recv == nil {
				f.SP -= nargs
				f.clearAbove()
				return jitThrow(t, ClsNullPointer, "invoke "+name)
			}
			if virtual && hasVIdx {
				if useIC && cache.class == recv.Class {
					target = cache.method
				} else {
					target = recv.Class.VTable[callee.VIndex]
					if useIC {
						cache.class = recv.Class
						cache.method = target
					}
				}
			}
		}
		if res, stop := t.atBranch(); stop {
			_ = res
			return ctlStop
		}
		f.PC++
		if target.Native != nil {
			if _, cont := t.callNative(f, target, nargs); !cont {
				return ctlStop
			}
			return ctlFrame
		}
		argsCopy := make([]Slot, nargs)
		copy(argsCopy, f.Stack[f.SP-nargs:f.SP])
		f.SP -= nargs
		f.clearAbove()
		if err := t.PushFrame(target, argsCopy); err != nil {
			f.PC--
			return jitThrow(t, ClsStackOverflow, err.Error())
		}
		return ctlFrame
	}
}

// jitThrow raises a VM throwable and maps the outcome to a control signal.
func jitThrow(t *Thread, cls, msg string) control {
	if _, cont := t.vmThrow(cls, msg); !cont {
		return ctlStop
	}
	return ctlFrame
}

// jitFault maps a service error to a control signal (Thrown → raise).
func jitFault(t *Thread, err error) control {
	if _, cont := t.fault(err); !cont {
		return ctlStop
	}
	return ctlFrame
}

func jitCheckArray(t *Thread, arr *object.Object, idx int64) (control, bool) {
	if arr == nil {
		return jitThrow(t, ClsNullPointer, "array access on null"), false
	}
	if idx < 0 || idx >= int64(arr.ArrayLen()) {
		return jitThrow(t, ClsArrayIndex, fmt.Sprintf("index %d length %d", idx, arr.ArrayLen())), false
	}
	return ctlNext, true
}

func jitBarrier(t *Thread, holder, ref *object.Object) (control, bool) {
	b := t.Env.Barrier
	if !b.Enabled() {
		return ctlNext, true
	}
	cost := int64(b.CheckCost())
	t.Fuel -= cost
	t.Cycles += uint64(cost)
	if err := b.Write(t.Env.Reg, holder, ref, t.InKernel(), t.Env.BarrierStats); err != nil {
		return jitThrow(t, ClsSegViolation, err.Error()), false
	}
	return ctlNext, true
}

func cmpZero(op bytecode.Op, v int64) bool {
	switch op {
	case bytecode.IFEQ:
		return v == 0
	case bytecode.IFNE:
		return v != 0
	case bytecode.IFLT:
		return v < 0
	case bytecode.IFGE:
		return v >= 0
	case bytecode.IFGT:
		return v > 0
	default:
		return v <= 0
	}
}

func cmpInts(op bytecode.Op, a, b int64) bool {
	switch op {
	case bytecode.IF_ICMPEQ:
		return a == b
	case bytecode.IF_ICMPNE:
		return a != b
	case bytecode.IF_ICMPLT:
		return a < b
	case bytecode.IF_ICMPGE:
		return a >= b
	case bytecode.IF_ICMPGT:
		return a > b
	default:
		return a <= b
	}
}
