// Package interp implements the kvm execution engines' shared runtime
// (threads, frames, operand stacks, monitors, exception dispatch) and the
// baseline switch-dispatch interpreter.
//
// Threads here are green threads: the scheduler steps one thread at a time
// for a quantum of simulated cycles, so execution is deterministic and CPU
// time is precisely accountable per process (paper §2, "Precise memory and
// CPU accounting"). "User mode" and "kernel mode" do not indicate hardware
// privilege; they indicate whether the thread can be terminated at the next
// safepoint (user mode) or must first leave the kernel in a clean state
// (kernel mode, entered through kernel natives).
package interp

import (
	"fmt"
	"sync/atomic"

	"repro/internal/heap"
	"repro/internal/object"
	"repro/internal/telemetry"
)

// Slot is one operand stack or local variable slot: either a reference or
// a primitive value (doubles are stored as IEEE bits).
type Slot struct {
	R *object.Object
	I int64
}

// RefSlot makes a reference slot.
func RefSlot(o *object.Object) Slot { return Slot{R: o} }

// IntSlot makes a primitive slot.
func IntSlot(v int64) Slot { return Slot{I: v} }

// Frame is one activation record.
type Frame struct {
	M      *object.Method
	PC     int
	Locals []Slot
	Stack  []Slot
	SP     int
	// Monitors tracks objects locked by MONITORENTER in this frame and not
	// yet unlocked, so unwinding (exceptions, termination) releases them.
	Monitors []*object.Object
}

func (f *Frame) push(s Slot) { f.Stack[f.SP] = s; f.SP++ }
func (f *Frame) pop() Slot   { f.SP--; return f.Stack[f.SP] }
func (f *Frame) top() *Slot  { return &f.Stack[f.SP-1] }
func (f *Frame) clearAbove() {
	for i := f.SP; i < len(f.Stack); i++ {
		f.Stack[i] = Slot{}
	}
}

// State is a thread's scheduler-visible state.
type State uint8

const (
	StateNew State = iota
	StateRunnable
	StateBlocked  // waiting to acquire a monitor
	StateSleeping // sleeping until a virtual deadline
	StateWaiting  // in Object.wait or parked on a predicate
	StateFinished // entry method returned
	StateKilled   // terminated (kill or uncaught throwable)
)

func (s State) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateRunnable:
		return "runnable"
	case StateBlocked:
		return "blocked"
	case StateSleeping:
		return "sleeping"
	case StateWaiting:
		return "waiting"
	case StateFinished:
		return "finished"
	case StateKilled:
		return "killed"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// StepResult reports why an engine returned control to the scheduler.
type StepResult uint8

const (
	StepYielded  StepResult = iota // quantum exhausted or explicit yield
	StepBlocked                    // thread blocked on a monitor
	StepSleeping                   // thread sleeping on the virtual clock
	StepWaiting                    // thread in Object.wait or parked
	StepFinished                   // entry frame returned
	StepKilled                     // killed or uncaught throwable
)

// Thread is one green thread.
type Thread struct {
	ID    int32
	Name  string
	Env   *Env
	Owner any // the owning process (opaque to this package)

	// Heap is the default allocation heap (the owner process' heap).
	// AllocOverride temporarily redirects allocation, e.g. while
	// populating a shared heap.
	Heap          *heap.Heap
	AllocOverride *heap.Heap

	Frames []*Frame
	State  State

	// Fuel is the remaining simulated cycles in the current quantum; the
	// engine decrements it and yields at a safepoint when it runs out.
	Fuel int64
	// Cycles is the total simulated cycles this thread has consumed.
	Cycles uint64

	// killRequested asks the thread to terminate. User-mode code honours
	// it at the next safepoint; kernel-mode code defers it until the
	// kernel nesting unwinds (paper §2, "Safe termination of processes").
	// Atomic: Process.Kill may be called from any goroutine, concurrently
	// with itself, while only the scheduling goroutine reads the flag.
	killRequested atomic.Bool
	// KernelDepth counts nested kernel-mode sections.
	KernelDepth int

	// BlockedOn is the monitor the thread is waiting to acquire.
	BlockedOn *object.Object
	// WakeAt is the virtual-cycle deadline for a sleeping thread.
	WakeAt uint64

	// Object.wait/park state (see wait.go).
	WaitingOn      *object.Object
	WaitCond       func() bool
	Notified       bool
	SavedLockCount int32

	// Uncaught is the throwable that killed the thread, if any.
	Uncaught *object.Object
	// Err is the VM-level error that killed the thread, if any.
	Err error
	// Result is the value returned by the entry method, if it returns one.
	Result Slot

	// Daemon threads do not keep their process alive.
	Daemon bool

	// ReqID is the serving-plane request this thread is executing (0 =
	// none): it stamps dispatch and GC events so their cost can be
	// attributed to one request. Span, when non-nil, is that request's
	// live cost ledger; the scheduler adds consumed cycles to it and the
	// GC trigger adds pause cycles. Both are written before the thread is
	// spawned and then touched only on the scheduling goroutine.
	ReqID uint64
	Span  *telemetry.Span

	// scratch is the spill buffer used by the SpillSim interpreter mode.
	scratch []Slot
}

// InKernel reports whether the thread is in kernel mode.
func (t *Thread) InKernel() bool { return t.KernelDepth > 0 }

// EnterKernel enters a kernel-mode section.
func (t *Thread) EnterKernel() { t.KernelDepth++ }

// ExitKernel leaves a kernel-mode section.
func (t *Thread) ExitKernel() {
	if t.KernelDepth == 0 {
		panic("interp: kernel mode underflow")
	}
	t.KernelDepth--
}

// AllocHeap is the heap new objects go to.
func (t *Thread) AllocHeap() *heap.Heap {
	if t.AllocOverride != nil {
		return t.AllocOverride
	}
	return t.Heap
}

// Kill requests termination. The engine honours it at the next user-mode
// safepoint; a thread stuck in kernel mode finishes the kernel section
// first. Killing an already-dead thread is harmless (the flag is only
// consulted at dispatch), and Kill is safe to call from any goroutine,
// concurrently with itself — double kills are idempotent.
func (t *Thread) Kill() {
	t.killRequested.Store(true)
}

// KillPending reports whether a kill has been requested.
func (t *Thread) KillPending() bool { return t.killRequested.Load() }

// ForcePark terminates a parked (blocked or sleeping) thread in place:
// frames unwind, monitors release, and the thread is killed. The scheduler
// calls it for kill requests against threads that are not running.
func (t *Thread) ForcePark() {
	t.unwindAll()
	t.BlockedOn = nil
	t.State = StateKilled
	t.Err = errKilled
}

// Alive reports whether the thread can still run.
func (t *Thread) Alive() bool {
	return t.State != StateFinished && t.State != StateKilled
}

// PushFrame pushes an activation of m with the given argument slots
// (receiver first for instance methods).
func (t *Thread) PushFrame(m *object.Method, args []Slot) error {
	if m.Code == nil {
		return fmt.Errorf("interp: PushFrame of native method %s", m)
	}
	if len(t.Frames) >= t.Env.MaxFrames() {
		return fmt.Errorf("interp: stack overflow at %d frames", len(t.Frames))
	}
	f := &Frame{
		M:      m,
		Locals: make([]Slot, m.MaxLocals),
		Stack:  make([]Slot, m.MaxStack),
	}
	copy(f.Locals, args)
	t.Frames = append(t.Frames, f)
	return nil
}

// Top returns the current frame, or nil.
func (t *Thread) Top() *Frame {
	if len(t.Frames) == 0 {
		return nil
	}
	return t.Frames[len(t.Frames)-1]
}

// Roots enumerates every object reference reachable from the thread's
// stack: locals, operand stacks, held monitors, and any in-flight
// throwable. Thread stacks are scanned during every heap's GC (paper §2
// notes this residual "GC crosstalk" as the price of direct sharing).
func (t *Thread) Roots(visit func(*object.Object)) {
	for _, f := range t.Frames {
		for i := range f.Locals {
			if f.Locals[i].R != nil {
				visit(f.Locals[i].R)
			}
		}
		for i := 0; i < f.SP; i++ {
			if f.Stack[i].R != nil {
				visit(f.Stack[i].R)
			}
		}
		for _, m := range f.Monitors {
			visit(m)
		}
	}
	if t.Uncaught != nil {
		visit(t.Uncaught)
	}
	if t.Result.R != nil {
		visit(t.Result.R)
	}
	if t.BlockedOn != nil {
		visit(t.BlockedOn)
	}
	if t.WaitingOn != nil {
		visit(t.WaitingOn)
	}
}

// unwindAll pops every frame, releasing held monitors. Used for kill and
// for uncaught throwables.
func (t *Thread) unwindAll() {
	for len(t.Frames) > 0 {
		f := t.Frames[len(t.Frames)-1]
		for i := len(f.Monitors) - 1; i >= 0; i-- {
			releaseMonitor(t, f.Monitors[i])
		}
		t.Frames = t.Frames[:len(t.Frames)-1]
	}
}
