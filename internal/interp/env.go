package interp

import (
	"errors"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/barrier"
	"repro/internal/heap"
	"repro/internal/memlimit"
	"repro/internal/object"
)

// Well-known throwable class names raised by the VM itself.
const (
	ClsNullPointer       = "java/lang/NullPointerException"
	ClsArithmetic        = "java/lang/ArithmeticException"
	ClsArrayIndex        = "java/lang/ArrayIndexOutOfBoundsException"
	ClsArrayStore        = "java/lang/ArrayStoreException"
	ClsClassCast         = "java/lang/ClassCastException"
	ClsNegativeArraySize = "java/lang/NegativeArraySizeException"
	ClsOutOfMemory       = "java/lang/OutOfMemoryError"
	ClsStackOverflow     = "java/lang/StackOverflowError"
	ClsSegViolation      = "kaffeos/SegmentationViolationError"
	ClsIllegalMonitor    = "java/lang/IllegalMonitorStateException"
	ClsThreadDeath       = "java/lang/ThreadDeath"
)

// NativeFunc is the implementation type for native methods. args holds the
// receiver (for instance methods) followed by the declared arguments. A
// native reports a Java-visible exception by returning *Thrown; any other
// error is a VM-internal fault that kills the thread.
type NativeFunc func(t *Thread, args []Slot) (Slot, error)

// Thrown wraps a throwable object propagating as a Go error through native
// frames.
type Thrown struct {
	Obj *object.Object
}

func (e *Thrown) Error() string {
	return fmt.Sprintf("throwable %s", e.Obj.Class.Name)
}

// Env provides VM services to the execution engines. The kernel/VM layer
// fills the callbacks; unit tests use lighter fixtures.
type Env struct {
	Reg          *heap.Registry
	Barrier      barrier.Barrier
	BarrierStats *barrier.Stats

	// Throwable builds an exception/error object of the named class in the
	// thread's namespace. If it cannot (class missing, out of memory), it
	// returns a VM error and the thread dies.
	Throwable func(t *Thread, className, msg string) (*object.Object, error)

	// Intern returns the per-process interned string object for s (paper
	// §3.3: strings intern per process, not globally).
	Intern func(t *Thread, s string) (*object.Object, error)

	// CollectHeap runs a GC of h on behalf of t (charging the GC cycles
	// appropriately). Called when an allocation hits its memlimit before
	// the allocation is retried.
	CollectHeap func(t *Thread, h *heap.Heap)

	// NewString allocates a (non-interned) string object holding s on the
	// thread's allocation heap, charged with the character storage.
	NewString func(t *Thread, s string) (*object.Object, error)

	// Spawn registers the Thread object's green thread with the scheduler
	// (java/lang/Thread.start).
	Spawn func(t *Thread, threadObj *object.Object) error

	// SleepMillis parks the thread for ms virtual milliseconds.
	SleepMillis func(t *Thread, ms int64)

	// YieldThread gives up the remainder of the quantum.
	YieldThread func(t *Thread)

	// JoinThread parks t until the green thread behind threadObj exits
	// (java/lang/Thread.join). A nil or never-started target is a no-op.
	JoinThread func(t *Thread, threadObj *object.Object)

	// ThreadAlive reports whether threadObj's green thread is running.
	ThreadAlive func(t *Thread, threadObj *object.Object) bool

	// Stdout returns the per-process output writer.
	Stdout func(t *Thread) io.Writer

	// NowMillis reports the virtual clock in milliseconds.
	NowMillis func() int64

	// NowCycles reports the virtual clock in cycles (for timed waits).
	NowCycles func() uint64

	// RandFor returns the per-process deterministic random source.
	RandFor func(t *Thread) *rand.Rand

	// Trace, when set, receives a line per executed instruction (debug).
	Trace func(t *Thread, f *Frame, s string)

	// FastExceptions selects table-based exception dispatch (the Kaffe00
	// improvement integrated into KaffeOS, §4.1); the slow variant walks
	// frames with per-frame allocation like Kaffe99.
	FastExceptions bool
	// ThinLocks selects header-word locking; the heavyweight variant
	// allocates a monitor record per locked object like Kaffe99.
	ThinLocks bool
	// SpillSim models Kaffe 1.0b4's naive code generator, which
	// "translates each instruction individually" and emits "many
	// unnecessary register spills and reloads": the interpreter performs
	// redundant per-instruction decode and local-variable memory traffic.
	SpillSim bool

	// MaxFrameDepth bounds the frame stack (default 512).
	MaxFrameDepth int
}

// MaxFrames reports the frame stack bound.
func (e *Env) MaxFrames() int {
	if e.MaxFrameDepth <= 0 {
		return 512
	}
	return e.MaxFrameDepth
}

// errKilled is a sentinel for thread termination honoured at safepoints.
var errKilled = errors.New("interp: thread killed")

// throwable constructs a VM-raised throwable via the env.
func (e *Env) throwable(t *Thread, cls, msg string) (*object.Object, error) {
	if e.Throwable == nil {
		return nil, fmt.Errorf("interp: no Throwable factory (wanted %s: %s)", cls, msg)
	}
	return e.Throwable(t, cls, msg)
}

// AllocObject allocates an instance of c on the thread's allocation heap,
// triggering a GC and retrying once if the heap's memlimit is hit. It
// returns *Thrown(OutOfMemoryError) when memory is genuinely exhausted.
func (e *Env) AllocObject(t *Thread, c *object.Class) (*object.Object, error) {
	h := t.AllocHeap()
	o, err := h.Alloc(c)
	if err == nil {
		return o, nil
	}
	if !isMemErr(err) {
		return nil, err
	}
	if e.CollectHeap != nil {
		e.CollectHeap(t, h)
		if o, err = h.Alloc(c); err == nil {
			return o, nil
		}
	}
	return nil, e.oom(t, err)
}

// AllocArray is AllocObject for arrays.
func (e *Env) AllocArray(t *Thread, c *object.Class, n int) (*object.Object, error) {
	h := t.AllocHeap()
	o, err := h.AllocArray(c, n)
	if err == nil {
		return o, nil
	}
	if !isMemErr(err) {
		return nil, err
	}
	if e.CollectHeap != nil {
		e.CollectHeap(t, h)
		if o, err = h.AllocArray(c, n); err == nil {
			return o, nil
		}
	}
	return nil, e.oom(t, err)
}

func (e *Env) oom(t *Thread, cause error) error {
	// Building the OutOfMemoryError itself needs memory; the throwable
	// factory allocates it on the kernel heap to guarantee progress.
	obj, err := e.throwable(t, ClsOutOfMemory, cause.Error())
	if err != nil {
		return fmt.Errorf("interp: allocating OutOfMemoryError: %w (original: %v)", err, cause)
	}
	return &Thrown{Obj: obj}
}

func isMemErr(err error) bool {
	var ex *memlimit.ErrExceeded
	return errors.As(err, &ex)
}
