package interp

// The bridge between the closure engine and the shared code cache
// (internal/codecache): compiled bodies are relocatable (see jit.go), so
// a module compiled once can be installed into every process namespace
// that defines the same bytecode. This file exports just enough surface
// for the cache to hold and re-seed compilations without exposing the
// closure machinery itself.

import (
	"fmt"

	"repro/internal/object"
)

// Variant names one engine configuration for cache keying. Name()
// collapses both optimizing flags into "jit-opt" for display; the cache
// key must distinguish them, because a fused body and a plain body are
// different artifacts.
func (j *JIT) Variant() string {
	v := "jit"
	if j.Fused {
		v += "+fuse"
	}
	if j.InlineCache {
		v += "+ic"
	}
	return v
}

// Artifact size accounting. Go gives no way to measure a closure graph's
// real footprint, so the cache charges a deterministic model instead:
// a fixed overhead per compiled method plus a per-instruction closure
// cost. Determinism is the point — every sharer is charged the same
// size, and the auditor can reconcile charges exactly.
const (
	artifactMethodBytes = 256
	artifactInstrBytes  = 96
)

// Program is one module compiled for one engine configuration: an
// immutable set of relocatable method bodies, keyed by class-qualified
// method signature. It is created once by CompileProgram and installed
// read-only into any number of process namespaces.
type Program struct {
	bodies map[string]*compiled
	size   uint64
}

// Size reports the modeled resident size of the artifact in bytes.
func (p *Program) Size() uint64 { return p.size }

// NumMethods reports how many method bodies the artifact holds.
func (p *Program) NumMethods() int { return len(p.bodies) }

func methodKey(c *object.Class, m *object.Method) string {
	return c.Name + "." + m.Name + m.Sig
}

// SyntheticProgram builds a bodiless placeholder sized like a real
// artifact of the given shape, for cache-accounting tests and
// benchmarks that attach but never execute it.
func SyntheticProgram(methods, instrs int) *Program {
	return &Program{
		bodies: make(map[string]*compiled),
		size:   uint64(methods)*artifactMethodBytes + uint64(instrs)*artifactInstrBytes,
	}
}

// CompileProgram compiles every bytecode-bearing method of the given
// classes into one relocatable Program. The classes come from whichever
// namespace compiles first; because the bodies capture no namespace-bound
// pointers, the result is valid for any namespace defining identical
// bytecode.
func (j *JIT) CompileProgram(classes []*object.Class) (*Program, error) {
	p := &Program{bodies: make(map[string]*compiled)}
	for _, c := range classes {
		for _, m := range c.Methods {
			if m.Code == nil {
				continue
			}
			body, err := j.compile(m)
			if err != nil {
				return nil, fmt.Errorf("interp: compile %s: %w", methodKey(c, m), err)
			}
			p.bodies[methodKey(c, m)] = body
			p.size += artifactMethodBytes + artifactInstrBytes*uint64(len(m.Code.Instrs))
		}
	}
	return p, nil
}

// InstallProgram seeds the per-method compilation caches of the given
// classes with the Program's bodies, so bodyFor hits without compiling.
// Methods the Program does not cover (or that already carry a body for
// this configuration) are left alone. Returns the number of bodies
// installed.
func (j *JIT) InstallProgram(p *Program, classes []*object.Class) int {
	key := jitKey{j.Fused, j.InlineCache}
	jitMu.Lock()
	defer jitMu.Unlock()
	installed := 0
	for _, c := range classes {
		for _, m := range c.Methods {
			if m.Code == nil {
				continue
			}
			body, ok := p.bodies[methodKey(c, m)]
			if !ok {
				continue
			}
			cache, _ := m.Compiled.(map[jitKey]*compiled)
			if cache == nil {
				cache = make(map[jitKey]*compiled)
				m.Compiled = cache
			}
			if _, exists := cache[key]; !exists {
				cache[key] = body
				installed++
			}
		}
	}
	return installed
}
