package interp

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/barrier"
)

// engines returns the three engine configurations under differential test:
// the baseline interpreter, the plain closure JIT, and the fused JIT with
// inline caches.
func engines() []Engine {
	return []Engine{&Interpreter{}, &JIT{}, &JIT{Fused: true, InlineCache: true}}
}

// outcome is everything observable about one program run that must not
// depend on the engine.
type outcome struct {
	state     State
	result    int64
	uncaught  string
	errored   bool
	cycles    uint64
	userBytes uint64
}

func (o outcome) String() string {
	return fmt.Sprintf("state=%v result=%d uncaught=%q errored=%v cycles=%d userBytes=%d",
		o.state, o.result, o.uncaught, o.errored, o.cycles, o.userBytes)
}

// runOn executes cls.key on a fresh fixture with the given engine and
// captures the outcome. Each run gets its own namespace and heaps so
// statics and allocations cannot leak between engines.
func runOn(t *testing.T, eng Engine, src, cls, key string) outcome {
	t.Helper()
	fx := newFixture(t, barrier.NoHeapPointer, 1<<30)
	fx.define(src)
	th := fx.newThread()
	m := fx.method(cls, key)
	if err := th.PushFrame(m, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		if i >= 100000 {
			t.Fatalf("engine %s: thread did not finish in step budget", eng.Name())
		}
		th.Fuel = 5000
		r := eng.Step(th)
		if r == StepFinished || r == StepKilled {
			break
		}
		if r == StepBlocked {
			t.Fatalf("engine %s: thread blocked with no other runner", eng.Name())
		}
	}
	o := outcome{
		state:     th.State,
		result:    th.Result.I,
		errored:   th.Err != nil,
		cycles:    th.Cycles,
		userBytes: fx.user.Bytes(),
	}
	if th.Uncaught != nil {
		o.uncaught = th.Uncaught.Class.Name
	}
	return o
}

// diffProgram runs cls.key under every engine and fails on any divergence
// in result, termination mode, uncaught class, simulated cycles, or user
// heap effects.
func diffProgram(t *testing.T, name, src, cls, key string) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		engs := engines()
		ref := runOn(t, engs[0], src, cls, key)
		for _, eng := range engs[1:] {
			got := runOn(t, eng, src, cls, key)
			if got != ref {
				t.Errorf("%s diverges from %s:\n  %s: %s\n  %s: %s",
					eng.Name(), engs[0].Name(), engs[0].Name(), ref, eng.Name(), got)
			}
		}
	})
}

// TestInterpVsJITDifferential runs fixture programs covering arithmetic,
// control flow, allocation, virtual dispatch, exceptions, and arrays
// through all three engines and requires bit-identical outcomes.
func TestInterpVsJITDifferential(t *testing.T) {
	diffProgram(t, "arith-loop", `
.class d/A
.method main ()I static
.locals 2
.stack 4
	iconst 0
	istore 0
	iconst 1
	istore 1
L0:	iload 0
	ldc 1000
	if_icmpge L1
	iload 1
	iload 0
	imul
	ldc 7919
	irem
	iconst 1
	iadd
	istore 1
	iinc 0 1
	goto L0
L1:	iload 1
	ireturn
.end
.end`, "d/A", "main()I")

	diffProgram(t, "objects-and-fields", `
.class d/Node
.field next Ld/Node;
.field v I
.method <init> ()V
.locals 1
.stack 1
	aload 0
	invokespecial java/lang/Object.<init> ()V
	return
.end
.end
.class d/B
.method main ()I static
.locals 3
.stack 3
	aconst_null
	astore 0
	iconst 0
	istore 1
L0:	iload 1
	ldc 50
	if_icmpge L1
	new d/Node
	dup
	invokespecial d/Node.<init> ()V
	dup
	aload 0
	putfield d/Node.next Ld/Node;
	dup
	iload 1
	putfield d/Node.v I
	astore 0
	iinc 1 1
	goto L0
L1:	iconst 0
	istore 2
L2:	aload 0
	ifnull L3
	iload 2
	aload 0
	getfield d/Node.v I
	iadd
	istore 2
	aload 0
	getfield d/Node.next Ld/Node;
	astore 0
	goto L2
L3:	iload 2
	ireturn
.end
.end`, "d/B", "main()I")

	diffProgram(t, "virtual-dispatch", `
.class d/Base
.method <init> ()V
.locals 1
.stack 1
	aload 0
	invokespecial java/lang/Object.<init> ()V
	return
.end
.method f (I)I
.locals 2
.stack 2
	iload 1
	iconst 1
	iadd
	ireturn
.end
.end
.class d/Derived extends d/Base
.method <init> ()V
.locals 1
.stack 1
	aload 0
	invokespecial d/Base.<init> ()V
	return
.end
.method f (I)I
.locals 2
.stack 2
	iload 1
	iconst 2
	imul
	ireturn
.end
.end
.class d/C
.method main ()I static
.locals 3
.stack 3
	new d/Base
	dup
	invokespecial d/Base.<init> ()V
	astore 0
	new d/Derived
	dup
	invokespecial d/Derived.<init> ()V
	astore 1
	aload 0
	ldc 10
	invokevirtual d/Base.f (I)I
	aload 1
	ldc 10
	invokevirtual d/Base.f (I)I
	iadd
	ireturn
.end
.end`, "d/C", "main()I")

	diffProgram(t, "exceptions-caught", `
.class d/D
.method main ()I static
.locals 2
.stack 2
	iconst 0
	istore 0
L0:	iconst 5
	iconst 0
	idiv
	istore 1
L1:	goto L3
L2:	pop
	ldc 42
	istore 0
L3:	iload 0
	ireturn
	.catch java/lang/ArithmeticException L0 L1 L2
.end
.end`, "d/D", "main()I")

	diffProgram(t, "exceptions-uncaught", `
.class d/E
.method main ()I static
.locals 1
.stack 2
	aconst_null
	getfield d/E.x I
	ireturn
.end
.field x I
.end`, "d/E", "main()I")

	diffProgram(t, "arrays-and-bounds", `
.class d/F
.method main ()I static
.locals 3
.stack 4
	ldc 64
	newarray [I
	astore 0
	iconst 0
	istore 1
L0:	iload 1
	ldc 64
	if_icmpge L1
	aload 0
	iload 1
	iload 1
	iload 1
	imul
	iastore
	iinc 1 1
	goto L0
L1:	aload 0
	ldc 63
	iaload
	ireturn
.end
.end`, "d/F", "main()I")

	diffProgram(t, "doubles", `
.class d/G
.method main ()I static
.locals 2
.stack 4
	ldc 1.5
	ldc 2.25
	dmul
	ldc 0.125
	dadd
	d2i
	ireturn
.end
.end`, "d/G", "main()I")
}

// genModule emits a random straight-line verified method: stack-depth
// tracked int arithmetic, local traffic, allocation/field snippets, and an
// occasional idiv that can raise ArithmeticException. Both the happy path
// and the throw path must agree across engines.
func genModule(rng *rand.Rand) string {
	const maxStack, maxLocals = 8, 4
	var b strings.Builder
	depth := 0
	fmt.Fprintf(&b, ".class r/R\n.field x I\n.method <init> ()V\n.locals 1\n.stack 1\n\taload 0\n\tinvokespecial java/lang/Object.<init> ()V\n\treturn\n.end\n.end\n")
	fmt.Fprintf(&b, ".class r/Main\n.method main ()I static\n.locals %d\n.stack %d\n", maxLocals, maxStack)
	n := 10 + rng.Intn(60)
	for i := 0; i < n; i++ {
		switch k := rng.Intn(12); {
		case k <= 2 && depth < maxStack:
			fmt.Fprintf(&b, "\ticonst %d\n", rng.Intn(41)-20)
			depth++
		case k == 3 && depth < maxStack:
			fmt.Fprintf(&b, "\tiload %d\n", rng.Intn(maxLocals))
			depth++
		case k == 4 && depth >= 1:
			fmt.Fprintf(&b, "\tistore %d\n", rng.Intn(maxLocals))
			depth--
		case k == 5 && depth >= 2:
			ops := []string{"iadd", "isub", "imul", "iand", "ior", "ixor"}
			fmt.Fprintf(&b, "\t%s\n", ops[rng.Intn(len(ops))])
			depth--
		case k == 6 && depth >= 2 && rng.Intn(4) == 0:
			// idiv may divide by zero; engines must agree on the throw.
			fmt.Fprintf(&b, "\tidiv\n")
			depth--
		case k == 7:
			fmt.Fprintf(&b, "\tiinc %d %d\n", rng.Intn(maxLocals), rng.Intn(11)-5)
		case k == 8 && depth >= 1 && depth < maxStack:
			fmt.Fprintf(&b, "\tdup\n")
			depth++
		case k == 9 && depth >= 1:
			fmt.Fprintf(&b, "\tineg\n")
		case k == 10 && depth+3 <= maxStack:
			// Allocate, set, and read back a field: net one int pushed.
			fmt.Fprintf(&b, "\tnew r/R\n\tdup\n\tinvokespecial r/R.<init> ()V\n")
			fmt.Fprintf(&b, "\tdup\n\ticonst %d\n\tputfield r/R.x I\n", rng.Intn(100))
			fmt.Fprintf(&b, "\tgetfield r/R.x I\n")
			depth++
		case k == 11 && depth >= 1:
			fmt.Fprintf(&b, "\tpop\n")
			depth--
		}
	}
	if depth == 0 {
		fmt.Fprintf(&b, "\ticonst 1\n")
		depth++
	}
	fmt.Fprintf(&b, "\tireturn\n.end\n.end\n")
	return b.String()
}

// TestInterpVsJITDifferentialRandom feeds randomly generated straight-line
// modules through all three engines. The generator is seeded, so failures
// reproduce; the verifier guards the generator.
func TestInterpVsJITDifferentialRandom(t *testing.T) {
	const programs = 60
	rng := rand.New(rand.NewSource(0x5eed))
	for i := 0; i < programs; i++ {
		src := genModule(rng)
		name := fmt.Sprintf("prog-%02d", i)
		t.Run(name, func(t *testing.T) {
			engs := engines()
			ref := runOn(t, engs[0], src, "r/Main", "main()I")
			for _, eng := range engs[1:] {
				got := runOn(t, eng, src, "r/Main", "main()I")
				if got != ref {
					t.Errorf("%s diverges from %s on:\n%s\n  %s: %s\n  %s: %s",
						eng.Name(), engs[0].Name(), src, engs[0].Name(), ref, eng.Name(), got)
				}
			}
		})
	}
}
