package interp

import (
	"fmt"
	"math"

	"repro/internal/bytecode"
	"repro/internal/object"
)

// Engine executes a thread until its quantum (t.Fuel) runs out or its state
// changes. Engines must be resumable: all execution state lives in the
// thread's frames.
type Engine interface {
	Name() string
	Step(t *Thread) StepResult
}

// Interpreter is the baseline switch-dispatch engine, standing in for
// Kaffe's simple JIT that "translates each instruction individually".
type Interpreter struct{}

// Name implements Engine.
func (Interpreter) Name() string { return "interp" }

// Step implements Engine.
func (Interpreter) Step(t *Thread) StepResult {
	return runLoop(t, execFrame)
}

// runLoop drives a per-frame executor until the quantum expires or the
// thread changes state. The jit engine shares it with a different executor.
func runLoop(t *Thread, exec func(*Thread, *Frame) (StepResult, bool)) StepResult {
	for {
		switch t.State {
		case StateBlocked:
			return StepBlocked
		case StateSleeping:
			return StepSleeping
		case StateWaiting:
			return StepWaiting
		case StateKilled:
			return StepKilled
		case StateFinished:
			return StepFinished
		}
		f := t.Top()
		if f == nil {
			t.State = StateFinished
			return StepFinished
		}
		if t.Fuel <= 0 {
			if checkKill(t) {
				return StepKilled
			}
			return StepYielded
		}
		res, again := exec(t, f)
		if !again {
			return res
		}
	}
}

// checkKill is the safepoint test: a user-mode thread with a pending kill
// terminates here; kernel mode defers.
func checkKill(t *Thread) bool {
	if t.KillPending() && !t.InKernel() {
		t.unwindAll()
		t.State = StateKilled
		t.Err = errKilled
		return true
	}
	return false
}

// execFrame interprets the top frame until it pushes/pops a frame, the
// thread yields/blocks/dies, or the quantum expires. The bool result is
// true when the outer loop should continue with the (new) top frame.
func execFrame(t *Thread, f *Frame) (StepResult, bool) {
	env := t.Env
	code := f.M.Code
	instrs := code.Instrs
	spill := env.SpillSim

	for {
		if f.PC < 0 || f.PC >= len(instrs) {
			t.Err = fmt.Errorf("interp: pc %d out of range in %s", f.PC, f.M)
			t.unwindAll()
			t.State = StateKilled
			return StepKilled, false
		}
		in := instrs[f.PC]
		cost := int64(in.Op.Cycles())
		t.Fuel -= cost
		t.Cycles += uint64(cost)
		if spill {
			naiveSpill(t, f, in.Op)
		}
		if env.Trace != nil {
			env.Trace(t, f, fmt.Sprintf("%s pc=%d %s sp=%d", f.M, f.PC, in.Op.Name(), f.SP))
		}

		switch in.Op {
		case bytecode.NOP:

		case bytecode.ICONST:
			f.push(IntSlot(int64(in.A)))
		case bytecode.LDC:
			k := &code.Consts[in.A]
			switch k.Kind {
			case bytecode.KindInt:
				f.push(IntSlot(k.I))
			case bytecode.KindDouble:
				f.push(IntSlot(int64(math.Float64bits(k.D))))
			case bytecode.KindString:
				s, err := env.Intern(t, k.S)
				if err != nil {
					if res, cont := t.fault(err); !cont {
						return res, false
					}
					return StepYielded, true
				}
				f.push(RefSlot(s))
			}
		case bytecode.ACONST_NULL:
			f.push(Slot{})

		case bytecode.ILOAD, bytecode.DLOAD:
			f.push(IntSlot(f.Locals[in.A].I))
		case bytecode.ALOAD:
			f.push(RefSlot(f.Locals[in.A].R))
		case bytecode.ISTORE, bytecode.DSTORE:
			f.Locals[in.A] = IntSlot(f.pop().I)
		case bytecode.ASTORE:
			f.Locals[in.A] = RefSlot(f.pop().R)
		case bytecode.IINC:
			f.Locals[in.A].I += int64(in.B)

		case bytecode.POP:
			f.pop()
		case bytecode.DUP:
			f.push(*f.top())
		case bytecode.DUP_X1:
			a := f.pop()
			b := f.pop()
			f.push(a)
			f.push(b)
			f.push(a)
		case bytecode.SWAP:
			a := f.pop()
			b := f.pop()
			f.push(a)
			f.push(b)

		case bytecode.IADD:
			b := f.pop().I
			f.top().I += b
		case bytecode.ISUB:
			b := f.pop().I
			f.top().I -= b
		case bytecode.IMUL:
			b := f.pop().I
			f.top().I *= b
		case bytecode.IDIV:
			b := f.pop().I
			if b == 0 {
				if res, cont := t.vmThrow(ClsArithmetic, "/ by zero"); !cont {
					return res, false
				}
				return StepYielded, true
			}
			f.top().I /= b
		case bytecode.IREM:
			b := f.pop().I
			if b == 0 {
				if res, cont := t.vmThrow(ClsArithmetic, "% by zero"); !cont {
					return res, false
				}
				return StepYielded, true
			}
			f.top().I %= b
		case bytecode.INEG:
			f.top().I = -f.top().I
		case bytecode.ISHL:
			b := f.pop().I
			f.top().I <<= uint64(b) & 63
		case bytecode.ISHR:
			b := f.pop().I
			f.top().I >>= uint64(b) & 63
		case bytecode.IUSHR:
			b := f.pop().I
			f.top().I = int64(uint64(f.top().I) >> (uint64(b) & 63))
		case bytecode.IAND:
			b := f.pop().I
			f.top().I &= b
		case bytecode.IOR:
			b := f.pop().I
			f.top().I |= b
		case bytecode.IXOR:
			b := f.pop().I
			f.top().I ^= b

		case bytecode.DADD:
			b := f.pop()
			x := f.top()
			x.I = dbits(dval(x.I) + dval(b.I))
		case bytecode.DSUB:
			b := f.pop()
			x := f.top()
			x.I = dbits(dval(x.I) - dval(b.I))
		case bytecode.DMUL:
			b := f.pop()
			x := f.top()
			x.I = dbits(dval(x.I) * dval(b.I))
		case bytecode.DDIV:
			b := f.pop()
			x := f.top()
			x.I = dbits(dval(x.I) / dval(b.I))
		case bytecode.DNEG:
			x := f.top()
			x.I = dbits(-dval(x.I))
		case bytecode.I2D:
			x := f.top()
			x.I = dbits(float64(x.I))
		case bytecode.D2I:
			x := f.top()
			x.I = int64(dval(x.I))
		case bytecode.DCMP:
			b := f.pop()
			x := f.top()
			a, bb := dval(x.I), dval(b.I)
			switch {
			case a < bb:
				x.I = -1
			case a > bb:
				x.I = 1
			default:
				x.I = 0
			}

		case bytecode.GOTO:
			f.PC = int(in.A)
			if res, stop := t.safepoint(); stop {
				return res, false
			}
			continue
		case bytecode.IFEQ, bytecode.IFNE, bytecode.IFLT, bytecode.IFGE, bytecode.IFGT, bytecode.IFLE:
			v := f.pop().I
			taken := false
			switch in.Op {
			case bytecode.IFEQ:
				taken = v == 0
			case bytecode.IFNE:
				taken = v != 0
			case bytecode.IFLT:
				taken = v < 0
			case bytecode.IFGE:
				taken = v >= 0
			case bytecode.IFGT:
				taken = v > 0
			case bytecode.IFLE:
				taken = v <= 0
			}
			if taken {
				f.PC = int(in.A)
			} else {
				f.PC++
			}
			if res, stop := t.safepoint(); stop {
				return res, false
			}
			continue
		case bytecode.IF_ICMPEQ, bytecode.IF_ICMPNE, bytecode.IF_ICMPLT, bytecode.IF_ICMPGE, bytecode.IF_ICMPGT, bytecode.IF_ICMPLE:
			b := f.pop().I
			a := f.pop().I
			taken := false
			switch in.Op {
			case bytecode.IF_ICMPEQ:
				taken = a == b
			case bytecode.IF_ICMPNE:
				taken = a != b
			case bytecode.IF_ICMPLT:
				taken = a < b
			case bytecode.IF_ICMPGE:
				taken = a >= b
			case bytecode.IF_ICMPGT:
				taken = a > b
			case bytecode.IF_ICMPLE:
				taken = a <= b
			}
			if taken {
				f.PC = int(in.A)
			} else {
				f.PC++
			}
			if res, stop := t.safepoint(); stop {
				return res, false
			}
			continue
		case bytecode.IF_ACMPEQ, bytecode.IF_ACMPNE:
			b := f.pop().R
			a := f.pop().R
			if (a == b) == (in.Op == bytecode.IF_ACMPEQ) {
				f.PC = int(in.A)
			} else {
				f.PC++
			}
			if res, stop := t.safepoint(); stop {
				return res, false
			}
			continue
		case bytecode.IFNULL, bytecode.IFNONNULL:
			v := f.pop().R
			if (v == nil) == (in.Op == bytecode.IFNULL) {
				f.PC = int(in.A)
			} else {
				f.PC++
			}
			if res, stop := t.safepoint(); stop {
				return res, false
			}
			continue

		case bytecode.NEW:
			c := f.M.Links[in.A].Class
			o, err := env.AllocObject(t, c)
			if err != nil {
				if res, cont := t.fault(err); !cont {
					return res, false
				}
				return StepYielded, true
			}
			f.push(RefSlot(o))
		case bytecode.NEWARRAY:
			c := f.M.Links[in.A].Class
			n := f.pop().I
			if n < 0 {
				if res, cont := t.vmThrow(ClsNegativeArraySize, fmt.Sprintf("%d", n)); !cont {
					return res, false
				}
				return StepYielded, true
			}
			o, err := env.AllocArray(t, c, int(n))
			if err != nil {
				if res, cont := t.fault(err); !cont {
					return res, false
				}
				return StepYielded, true
			}
			f.push(RefSlot(o))
		case bytecode.ARRAYLENGTH:
			o := f.pop().R
			if o == nil {
				if res, cont := t.vmThrow(ClsNullPointer, "arraylength of null"); !cont {
					return res, false
				}
				return StepYielded, true
			}
			f.push(IntSlot(int64(o.ArrayLen())))

		case bytecode.IALOAD:
			idx := f.pop().I
			arr := f.pop().R
			if res, cont, ok := t.checkArray(arr, idx); !ok {
				if !cont {
					return res, false
				}
				return StepYielded, true
			}
			f.push(IntSlot(arr.Prims[idx]))
		case bytecode.IASTORE:
			v := f.pop().I
			idx := f.pop().I
			arr := f.pop().R
			if res, cont, ok := t.checkArray(arr, idx); !ok {
				if !cont {
					return res, false
				}
				return StepYielded, true
			}
			arr.Prims[idx] = v
		case bytecode.AALOAD:
			idx := f.pop().I
			arr := f.pop().R
			if res, cont, ok := t.checkArray(arr, idx); !ok {
				if !cont {
					return res, false
				}
				return StepYielded, true
			}
			f.push(RefSlot(arr.Refs[idx]))
		case bytecode.AASTORE:
			v := f.pop().R
			idx := f.pop().I
			arr := f.pop().R
			if res, cont, ok := t.checkArray(arr, idx); !ok {
				if !cont {
					return res, false
				}
				return StepYielded, true
			}
			if v != nil && arr.Class.ElemClass != nil && !arr.Class.ElemClass.AssignableFrom(v.Class) {
				if res, cont := t.vmThrow(ClsArrayStore, v.Class.Name); !cont {
					return res, false
				}
				return StepYielded, true
			}
			if res, cont, ok := t.barrierWrite(arr, v); !ok {
				if !cont {
					return res, false
				}
				return StepYielded, true
			}
			arr.Refs[idx] = v

		case bytecode.GETFIELD:
			fl := f.M.Links[in.A].Field
			o := f.pop().R
			if o == nil {
				if res, cont := t.vmThrow(ClsNullPointer, "getfield "+fl.Name); !cont {
					return res, false
				}
				return StepYielded, true
			}
			if fl.Ref {
				f.push(RefSlot(o.Refs[fl.Slot]))
			} else {
				f.push(IntSlot(o.Prims[fl.Slot]))
			}
		case bytecode.PUTFIELD:
			fl := f.M.Links[in.A].Field
			v := f.pop()
			o := f.pop().R
			if o == nil {
				if res, cont := t.vmThrow(ClsNullPointer, "putfield "+fl.Name); !cont {
					return res, false
				}
				return StepYielded, true
			}
			if fl.Ref {
				if res, cont, ok := t.barrierWrite(o, v.R); !ok {
					if !cont {
						return res, false
					}
					return StepYielded, true
				}
				o.Refs[fl.Slot] = v.R
			} else {
				o.Prims[fl.Slot] = v.I
			}
		case bytecode.GETSTATIC:
			fl := f.M.Links[in.A].Field
			st := fl.Class.Statics
			if fl.Ref {
				f.push(RefSlot(st.Refs[fl.Slot]))
			} else {
				f.push(IntSlot(st.Prims[fl.Slot]))
			}
		case bytecode.PUTSTATIC:
			fl := f.M.Links[in.A].Field
			st := fl.Class.Statics
			v := f.pop()
			if fl.Ref {
				if res, cont, ok := t.barrierWrite(st, v.R); !ok {
					if !cont {
						return res, false
					}
					return StepYielded, true
				}
				st.Refs[fl.Slot] = v.R
			} else {
				st.Prims[fl.Slot] = v.I
			}

		case bytecode.INSTANCEOF:
			c := f.M.Links[in.A].Class
			o := f.pop().R
			if o != nil && c.AssignableFrom(o.Class) {
				f.push(IntSlot(1))
			} else {
				f.push(IntSlot(0))
			}
		case bytecode.CHECKCAST:
			c := f.M.Links[in.A].Class
			o := f.top().R
			if o != nil && !c.AssignableFrom(o.Class) {
				if res, cont := t.vmThrow(ClsClassCast, o.Class.Name+" -> "+c.Name); !cont {
					return res, false
				}
				return StepYielded, true
			}

		case bytecode.INVOKESTATIC, bytecode.INVOKEVIRTUAL, bytecode.INVOKESPECIAL:
			m := f.M.Links[in.A].Method
			nargs := m.NArgs
			if in.Op != bytecode.INVOKESTATIC {
				nargs++
			}
			args := f.Stack[f.SP-nargs : f.SP]
			if in.Op != bytecode.INVOKESTATIC {
				recv := args[0].R
				if recv == nil {
					f.SP -= nargs
					if res, cont := t.vmThrow(ClsNullPointer, "invoke "+m.Name); !cont {
						return res, false
					}
					return StepYielded, true
				}
				if in.Op == bytecode.INVOKEVIRTUAL && m.VIndex >= 0 {
					m = recv.Class.VTable[m.VIndex]
				}
			}
			if res, stop := t.atBranch(); stop {
				return res, false
			}
			f.PC++ // return address
			if m.Native != nil {
				if res, cont := t.callNative(f, m, nargs); !cont {
					return res, false
				}
				// The native may have raised (frames changed) or altered
				// the thread state; let the run loop re-evaluate.
				return StepYielded, true
			}
			argsCopy := make([]Slot, nargs)
			copy(argsCopy, args)
			f.SP -= nargs
			f.clearAbove()
			if err := t.PushFrame(m, argsCopy); err != nil {
				f.PC-- // re-point at the invoke for diagnostics
				if res, cont := t.vmThrow(ClsStackOverflow, err.Error()); !cont {
					return res, false
				}
				return StepYielded, true
			}
			return StepYielded, true // outer loop switches to the new frame

		case bytecode.RETURN, bytecode.IRETURN, bytecode.ARETURN, bytecode.DRETURN:
			var ret Slot
			if in.Op != bytecode.RETURN {
				ret = f.pop()
			}
			t.popFrameReturn(f, ret, in.Op != bytecode.RETURN)
			return StepYielded, true

		case bytecode.ATHROW:
			o := f.pop().R
			if o == nil {
				if res, cont := t.vmThrow(ClsNullPointer, "throw null"); !cont {
					return res, false
				}
				return StepYielded, true
			}
			if res, cont := t.raise(o); !cont {
				return res, false
			}
			return StepYielded, true

		case bytecode.MONITORENTER:
			o := f.top().R
			if o == nil {
				f.pop()
				if res, cont := t.vmThrow(ClsNullPointer, "monitorenter on null"); !cont {
					return res, false
				}
				return StepYielded, true
			}
			if tryLock(t, o) {
				f.pop()
				f.Monitors = append(f.Monitors, o)
			} else {
				// Park without consuming the operand or advancing the PC;
				// the scheduler re-runs this instruction on wake-up.
				t.BlockedOn = o
				t.State = StateBlocked
				return StepBlocked, false
			}
		case bytecode.MONITOREXIT:
			o := f.pop().R
			if o == nil {
				if res, cont := t.vmThrow(ClsNullPointer, "monitorexit on null"); !cont {
					return res, false
				}
				return StepYielded, true
			}
			if !unlock(t, o) {
				if res, cont := t.vmThrow(ClsIllegalMonitor, "not owner"); !cont {
					return res, false
				}
				return StepYielded, true
			}
			for i := len(f.Monitors) - 1; i >= 0; i-- {
				if f.Monitors[i] == o {
					f.Monitors = append(f.Monitors[:i], f.Monitors[i+1:]...)
					break
				}
			}

		default:
			t.Err = fmt.Errorf("interp: unimplemented opcode %s in %s", in.Op.Name(), f.M)
			t.unwindAll()
			t.State = StateKilled
			return StepKilled, false
		}

		f.PC++
		if t.Fuel <= 0 {
			if checkKill(t) {
				return StepKilled, false
			}
			return StepYielded, false
		}
	}
}

func dval(bits int64) float64 { return math.Float64frombits(uint64(bits)) }
func dbits(v float64) int64   { return int64(math.Float64bits(v)) }

// atBranch is the safepoint at calls: kill requests are honoured here. It
// reports (result, stop).
func (t *Thread) atBranch() (StepResult, bool) {
	if t.KillPending() && !t.InKernel() {
		t.unwindAll()
		t.State = StateKilled
		t.Err = errKilled
		return StepKilled, true
	}
	return StepYielded, false
}

// safepoint is the check after a completed branch (PC already points at the
// next instruction): kill requests and quantum expiry are honoured here.
func (t *Thread) safepoint() (StepResult, bool) {
	if t.KillPending() && !t.InKernel() {
		t.unwindAll()
		t.State = StateKilled
		t.Err = errKilled
		return StepKilled, true
	}
	if t.Fuel <= 0 {
		return StepYielded, true
	}
	return StepYielded, false
}

// popFrameReturn pops the top frame and delivers the return value to the
// caller, or records the thread result if it was the entry frame.
func (t *Thread) popFrameReturn(f *Frame, ret Slot, hasRet bool) {
	t.Frames = t.Frames[:len(t.Frames)-1]
	// Returning with held monitors is structurally possible; release them
	// to preserve the invariant that dead frames hold no locks.
	for i := len(f.Monitors) - 1; i >= 0; i-- {
		releaseMonitor(t, f.Monitors[i])
	}
	if caller := t.Top(); caller != nil {
		if hasRet {
			caller.push(ret)
		}
		return
	}
	if hasRet {
		t.Result = ret
	}
	t.State = StateFinished
}

// checkArray validates an array access. ok=false means a throwable path was
// taken; (res, cont) follow the fault convention.
func (t *Thread) checkArray(arr *object.Object, idx int64) (StepResult, bool, bool) {
	if arr == nil {
		res, cont := t.vmThrow(ClsNullPointer, "array access on null")
		return res, cont, false
	}
	if idx < 0 || idx >= int64(arr.ArrayLen()) {
		res, cont := t.vmThrow(ClsArrayIndex, fmt.Sprintf("index %d length %d", idx, arr.ArrayLen()))
		return res, cont, false
	}
	return 0, true, true
}

// barrierWrite runs the write barrier for storing ref into holder. ok=false
// means a throwable path was taken.
func (t *Thread) barrierWrite(holder, ref *object.Object) (StepResult, bool, bool) {
	b := t.Env.Barrier
	if !b.Enabled() {
		return 0, true, true
	}
	cost := int64(b.CheckCost())
	t.Fuel -= cost
	t.Cycles += uint64(cost)
	if err := b.Write(t.Env.Reg, holder, ref, t.InKernel(), t.Env.BarrierStats); err != nil {
		res, cont := t.vmThrow(ClsSegViolation, err.Error())
		return res, cont, false
	}
	return 0, true, true
}

// callNative invokes a native method, consuming nargs stack slots of f.
// The fault convention applies to the returned (res, cont).
func (t *Thread) callNative(f *Frame, m *object.Method, nargs int) (StepResult, bool) {
	fn, ok := m.Native.(NativeFunc)
	if !ok {
		t.Err = fmt.Errorf("interp: native %s has type %T, want NativeFunc", m, m.Native)
		t.unwindAll()
		t.State = StateKilled
		return StepKilled, false
	}
	args := make([]Slot, nargs)
	copy(args, f.Stack[f.SP-nargs:f.SP])
	f.SP -= nargs
	f.clearAbove()

	if m.Kernel {
		t.EnterKernel()
	}
	ret, err := fn(t, args)
	if m.Kernel {
		t.ExitKernel()
	}
	if err != nil {
		return t.fault(err)
	}
	if m.HasRet {
		// The native may have switched frames (e.g. Thread.start pushes a
		// frame on another thread, not this one); deliver to f explicitly.
		f.push(ret)
	}
	return StepYielded, true
}

// fault converts an error from a VM service or native into control flow:
// *Thrown raises the wrapped throwable; anything else kills the thread.
// It reports (result, continueExecution).
func (t *Thread) fault(err error) (StepResult, bool) {
	if th, ok := err.(*Thrown); ok {
		return t.raise(th.Obj)
	}
	t.Err = err
	t.unwindAll()
	t.State = StateKilled
	return StepKilled, false
}

// vmThrow builds a VM throwable of class cls and raises it.
func (t *Thread) vmThrow(cls, msg string) (StepResult, bool) {
	obj, err := t.Env.throwable(t, cls, msg)
	if err != nil {
		t.Err = fmt.Errorf("interp: building %s: %w", cls, err)
		t.unwindAll()
		t.State = StateKilled
		return StepKilled, false
	}
	return t.raise(obj)
}
