package interp

import (
	"repro/internal/object"
)

// Exception dispatch costs. KaffeOS integrated Kaffe00's fast (table-based)
// exception dispatch (§4.1: "the benefits of adding faster exception
// handling show up strongly in jack"); the slow variant models Kaffe99,
// which rebuilt backtrace state on every frame walked.
const (
	fastThrowBase     = 40
	fastThrowPerFrame = 15
	slowThrowBase     = 300
	slowThrowPerFrame = 150
)

// backtraceEntry simulates Kaffe99's per-frame allocation during slow
// exception dispatch; the storage is real so the host allocator sees the
// same pressure pattern.
type backtraceEntry struct {
	method *object.Method
	pc     int
	_      [4]int64
}

// raise dispatches throwable obj from the current PC, unwinding frames
// until a matching handler is found. It reports (result, continue): when a
// handler is found execution continues (outer loop re-fetches the frame);
// otherwise the thread dies with the uncaught throwable.
func (t *Thread) raise(obj *object.Object) (StepResult, bool) {
	fast := t.Env.FastExceptions
	base, per := int64(slowThrowBase), int64(slowThrowPerFrame)
	if fast {
		base, per = fastThrowBase, fastThrowPerFrame
	}
	t.Fuel -= base
	t.Cycles += uint64(base)

	var backtrace []*backtraceEntry
	first := true
	for len(t.Frames) > 0 {
		f := t.Top()
		t.Fuel -= per
		t.Cycles += uint64(per)
		if !fast {
			backtrace = append(backtrace, &backtraceEntry{method: f.M, pc: f.PC})
		}
		// The top frame's PC is the faulting instruction; caller frames
		// have already advanced past their invoke.
		pc := f.PC
		if !first {
			pc--
		}
		first = false
		for i, h := range f.M.Code.Handlers {
			if pc < h.Start || pc >= h.End {
				continue
			}
			if !handlerMatches(f.M, i, obj) {
				continue
			}
			f.SP = 0
			f.clearAbove()
			f.push(RefSlot(obj))
			f.PC = h.PC
			_ = backtrace
			return StepYielded, true
		}
		for j := len(f.Monitors) - 1; j >= 0; j-- {
			releaseMonitor(t, f.Monitors[j])
		}
		t.Frames = t.Frames[:len(t.Frames)-1]
	}
	t.Uncaught = obj
	t.Err = &Thrown{Obj: obj}
	t.State = StateKilled
	return StepKilled, false
}

// handlerMatches reports whether handler i of m catches obj.
func handlerMatches(m *object.Method, i int, obj *object.Object) bool {
	h := m.Code.Handlers[i]
	if h.Type == "" {
		return true
	}
	if i < len(m.HandlerClasses) && m.HandlerClasses[i] != nil {
		return m.HandlerClasses[i].AssignableFrom(obj.Class)
	}
	// Unlinked handler (test fixtures): match by class name along the
	// superclass chain.
	for c := obj.Class; c != nil; c = c.Super {
		if c.Name == h.Type {
			return true
		}
	}
	return false
}

// Throw lets natives raise a throwable by class name.
func (e *Env) Throw(t *Thread, cls, msg string) error {
	obj, err := e.throwable(t, cls, msg)
	if err != nil {
		return err
	}
	return &Thrown{Obj: obj}
}
