package interp

import "repro/internal/bytecode"

// naiveDecode is the per-instruction re-decode table the spill-simulating
// interpreter consults, the way a naive template translator re-resolves
// each opcode's handler metadata instead of caching it across
// instructions.
type naiveDecodeEntry struct {
	name   string
	cycles int
	branch bool
}

var naiveDecode = func() [128]naiveDecodeEntry {
	var t [128]naiveDecodeEntry
	for i := 0; i < bytecode.NumOps() && i < len(t); i++ {
		op := bytecode.Op(i)
		t[i] = naiveDecodeEntry{name: op.Name(), cycles: op.Cycles(), branch: op.IsBranch()}
	}
	return t
}()

//go:noinline
func naiveSpill(t *Thread, f *Frame, op bytecode.Op) {
	// Redundant decode: a naive translator re-derives handler metadata
	// for every instruction.
	e := &naiveDecode[op&127]
	if e.cycles < 0 {
		return
	}
	// Register spill/reload traffic: Kaffe 1.0b4 kept almost nothing live
	// across instruction boundaries, so locals bounce through memory.
	n := len(f.Locals)
	if n > 4 {
		n = 4
	}
	t.scratch = append(t.scratch[:0], f.Locals[:n]...)
	copy(f.Locals[:n], t.scratch)
}
