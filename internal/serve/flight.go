package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/telemetry"
)

// The flight recorder is the serving plane's crash post-mortem: when the
// supervisor sees a tenant die (always) or shed (throttled), the owning
// shard's engine dumps the tenant's recent history — its last request
// spans, the trace events of its process incarnation, and its lifetime
// counters — to one JSON artifact. The dump answers "what was this tenant
// doing when it went down" without anyone having had a poller attached
// beforehand.

// FlightDump is the artifact schema, one file per incident.
type FlightDump struct {
	// Time is the wall-clock dump time, RFC3339Nano.
	Time   string `json:"time"`
	Reason string `json:"reason"` // "death" or "shed"
	Route  string `json:"route"`
	Name   string `json:"name"`
	// Shard is the engine shard that owned the tenant at dump time.
	Shard int `json:"shard"`
	// Pid is the process incarnation the incident happened to.
	Pid    int32 `json:"pid"`
	Deaths int   `json:"deaths"` // consecutive deaths including this one
	// Tenant is the lifetime counter snapshot at dump time.
	Tenant TenantRow `json:"tenant"`
	// Spans holds the tenant's most recent completed request spans
	// (empty when span recording is off).
	Spans []telemetry.Span `json:"spans"`
	// SpanTotal/SpanDropped report the owning shard's recorder state: a
	// nonzero dropped count means older spans fell off the ring before
	// this dump.
	SpanTotal   uint64 `json:"span_total"`
	SpanDropped uint64 `json:"span_dropped"`
	// Events holds the shard trace ring's events for this pid, oldest
	// first (empty when tracing is off).
	Events []json.RawMessage `json:"events"`
	// TraceDropped is the trace ring's overall drop count: nonzero means
	// the event window is truncated.
	TraceDropped uint64 `json:"trace_dropped"`
}

// flightOnShed triggers a shed-storm dump, at most one per FlightMinGap
// per tenant. Owning engine goroutine only.
func (sh *shard) flightOnShed(tn *tenant) {
	if sh.cfg.FlightDir == "" {
		return
	}
	now := time.Now()
	if !tn.flightLastShed.IsZero() && now.Sub(tn.flightLastShed) < sh.cfg.FlightMinGap {
		return
	}
	tn.flightLastShed = now
	sh.dumpFlight(tn, "shed")
}

// dumpFlight writes one post-mortem artifact for tn. Owning engine
// goroutine only; best-effort (a full disk must never take down serving).
func (sh *shard) dumpFlight(tn *tenant, reason string) {
	if sh.cfg.FlightDir == "" {
		return
	}
	pid := tn.pid()
	dump := FlightDump{
		Time:        time.Now().Format(time.RFC3339Nano),
		Reason:      reason,
		Route:       tn.cfg.Route,
		Name:        tn.cfg.Name,
		Shard:       sh.id,
		Pid:         pid,
		Deaths:      tn.deaths,
		Tenant:      rowFor(tn),
		Spans:       sh.spans.ForRoute(tn.cfg.Route, sh.cfg.FlightSpans),
		SpanTotal:   sh.spans.Total(),
		SpanDropped: sh.spans.Dropped(),
	}
	events := sh.vm.Tel.Trace.Snapshot()
	for _, e := range events {
		if e.Pid != pid {
			continue
		}
		line, err := telemetry.MarshalEvent(e)
		if err != nil {
			continue
		}
		dump.Events = append(dump.Events, line)
	}
	if n := len(dump.Events); n > sh.cfg.FlightEvents {
		dump.Events = dump.Events[n-sh.cfg.FlightEvents:]
	}
	dump.TraceDropped = sh.vm.Tel.Trace.Dropped()

	tn.flightSeq++
	path := filepath.Join(sh.cfg.FlightDir,
		fmt.Sprintf("flight-%s-%d-%d.json", tn.cfg.Name, pid, tn.flightSeq))
	data, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return
	}
	_ = os.WriteFile(path, append(data, '\n'), 0o644)
}
