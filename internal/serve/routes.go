package serve

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseRoutes turns a command-line route spec into tenant configs. The
// grammar is comma-separated entries of the form
//
//	path[:attr[:attr...]]
//
// where each attr is "hog", "servlet" or "warm" (role), "norestart",
// "template" (fork incarnations from a checkpointed zygote), "lazy"
// (scale-from-zero: start on first request), or an integer memlimit in
// KiB. Examples:
//
//	/zone0,/zone1,/zone2
//	/a,/b:8192,/memhog:hog:1024
//	/once:hog:512:norestart
//	/fast:warm:template:lazy
func ParseRoutes(spec string) ([]TenantConfig, error) {
	var out []TenantConfig
	seen := make(map[string]bool)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		switch {
		case parts[0] == "" || parts[0][0] != '/':
			return nil, fmt.Errorf("serve: route %q must start with '/'", parts[0])
		case parts[0] == "/":
			return nil, fmt.Errorf("serve: route %q yields an empty tenant name", parts[0])
		case parts[0] == "/serve" || parts[0] == "/healthz":
			return nil, fmt.Errorf("serve: route %q is reserved", parts[0])
		case seen[parts[0]]:
			return nil, fmt.Errorf("serve: duplicate route %q", parts[0])
		}
		seen[parts[0]] = true
		tc := TenantConfig{Route: parts[0]}
		for _, attr := range parts[1:] {
			switch attr {
			case "hog":
				tc.Hog = true
			case "servlet":
				tc.Hog = false
			case "warm":
				tc.Warm = true
			case "wide":
				tc.Wide = true
			case "template":
				tc.Template = true
			case "lazy":
				tc.Lazy = true
			case "norestart":
				tc.NoRestart = true
			default:
				kb, err := strconv.Atoi(attr)
				if err != nil || kb <= 0 {
					return nil, fmt.Errorf("serve: route %q: unknown attribute %q", parts[0], attr)
				}
				tc.MemKB = kb
			}
		}
		out = append(out, tc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("serve: empty route spec")
	}
	return out, nil
}
