package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// handler builds the HTTP front end: tenant routes plus the /serve
// introspection endpoint and a /healthz probe.
func (s *Server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/serve", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Rows())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/", s.serveRequest)
	return mux
}

// serveRequest is the per-request path: route to a tenant, hand off to
// the owning shard's engine loop, wait for the single guaranteed
// response. The handler goroutine never touches a VM.
func (s *Server) serveRequest(w http.ResponseWriter, r *http.Request) {
	tn := s.byRoute[r.URL.Path]
	if tn == nil {
		http.NotFound(w, r)
		return
	}
	if s.closing.Load() {
		writeResponse(w, tn, response{status: http.StatusServiceUnavailable, body: "shed: server shutting down\n"})
		return
	}
	t0 := time.Now()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
		return
	}
	sh := tn.sh.Load()
	req := sh.newRequest(tn, body, t0)
	select {
	case sh.submit <- req:
	default:
		writeResponse(w, tn, sh.socketShed(req))
		return
	}
	select {
	case resp := <-req.resp:
		writeResponse(w, tn, resp)
	case <-time.After(time.Until(req.deadline) + 5*time.Second):
		// Defence in depth: the engine's expire pass answers every request
		// by its deadline, so this fires only if the engine loop itself is
		// gone. Still: never hang a client.
		writeResponse(w, tn, response{status: http.StatusServiceUnavailable, body: "shed: engine unresponsive\n"})
	}
}

// newRequest builds one engine submission, minting a span when recording
// is on (the only per-request cost of the spans-off path is the one
// atomic Enabled load). t0 is the wall-clock accept time, before the body
// was read; the accept→now gap is the accept phase. Ids are dense per
// shard recorder, so the span carries the shard for a global key.
func (sh *shard) newRequest(tn *tenant, body []byte, t0 time.Time) *request {
	now := time.Now()
	req := &request{
		tn:       tn,
		body:     body,
		resp:     make(chan response, 1),
		enq:      now,
		t0:       t0,
		deadline: now.Add(sh.cfg.RequestTimeout),
	}
	if sh.spans.Enabled() {
		req.id = sh.spans.NextID()
		req.span = &telemetry.Span{
			ID:       req.id,
			Route:    tn.cfg.Route,
			Shard:    sh.id,
			Start:    t0.UnixNano(),
			AcceptNs: now.Sub(t0).Nanoseconds(),
		}
	}
	return req
}

// socketShed refuses a request whose engine handoff channel is full — the
// one shed that happens on the socket goroutine. Safe to finalize the
// span here: the request never reached the engine.
func (sh *shard) socketShed(req *request) response {
	tn := req.tn
	tn.shed.Inc()
	sh.kShed.Inc()
	req.done = true
	sh.finishSpan(req, http.StatusServiceUnavailable, "submit queue full")
	return response{status: http.StatusServiceUnavailable, body: "shed: submit queue full\n"}
}

// Do injects one request into the serving plane without a socket: same
// admission control, dispatch, span accounting, and single-response
// guarantee as an HTTP request, minus the TCP/HTTP layer. The server must
// be started. Used by benchmarks and tests to measure the engine path in
// isolation.
func (s *Server) Do(route string, body []byte) (status int, respBody string) {
	tn := s.byRoute[route]
	if tn == nil {
		return http.StatusNotFound, ""
	}
	if s.closing.Load() {
		return http.StatusServiceUnavailable, "shed: server shutting down\n"
	}
	sh := tn.sh.Load()
	req := sh.newRequest(tn, body, time.Now())
	select {
	case sh.submit <- req:
	default:
		resp := sh.socketShed(req)
		return resp.status, resp.body
	}
	select {
	case resp := <-req.resp:
		return resp.status, resp.body
	case <-time.After(time.Until(req.deadline) + 5*time.Second):
		return http.StatusServiceUnavailable, "shed: engine unresponsive\n"
	}
}

func writeResponse(w http.ResponseWriter, tn *tenant, resp response) {
	w.Header().Set("X-Kaffeos-Tenant", tn.cfg.Name)
	if resp.pid != 0 {
		w.Header().Set("X-Kaffeos-Pid", strconv.Itoa(int(resp.pid)))
	}
	w.WriteHeader(resp.status)
	_, _ = io.WriteString(w, resp.body)
}

// TenantRow is one tenant's lifetime serving statistics, aggregated
// across process restarts and shard migrations. Latency quantiles come
// from the tenant's power-of-two-bucket histogram (nanoseconds).
type TenantRow struct {
	Route      string `json:"route"`
	Name       string `json:"name"`
	Role       string `json:"role"`
	Shard      int    `json:"shard"`
	Pid        int32  `json:"pid"`
	Up         bool   `json:"up"`
	Requests   uint64 `json:"requests"`
	OK         uint64 `json:"ok"`
	Shed       uint64 `json:"shed"`
	Errors     uint64 `json:"errors"`
	Restarts   uint64 `json:"restarts"`
	Migrations uint64 `json:"migrations"`
	Queue      uint64 `json:"queue"`
	Inflight   uint64 `json:"inflight"`
	MemUse     uint64 `json:"mem_use"`
	MemLimit   uint64 `json:"mem_limit"`
	P50Ns      uint64 `json:"p50_ns"`
	P99Ns      uint64 `json:"p99_ns"`
}

// rowFor snapshots one tenant. Safe from any goroutine: it reads only
// atomics, the shard pointer, and the mutex-guarded process pointer.
func rowFor(tn *tenant) TenantRow {
	row := TenantRow{
		Route:      tn.cfg.Route,
		Name:       tn.cfg.Name,
		Role:       tn.role(),
		Shard:      tn.sh.Load().id,
		Requests:   tn.reqs.Value(),
		OK:         tn.okCount.Value(),
		Shed:       tn.shed.Value(),
		Errors:     tn.errs.Value(),
		Restarts:   tn.restarts.Value(),
		Migrations: tn.migrations.Value(),
		Queue:      tn.qdepth.Value(),
		Inflight:   tn.infl.Value(),
		MemLimit:   uint64(tn.cfg.MemKB) << 10,
		P50Ns:      tn.latency.Quantile(0.5),
		P99Ns:      tn.latency.Quantile(0.99),
	}
	if p := tn.currentProc(); p != nil {
		row.Pid = int32(p.ID)
		row.Up = p.State() == core.ProcRunning
		row.MemUse = p.MemUse()
		// The controller moves limits at runtime; report the live one.
		row.MemLimit = p.Limit.Max()
	}
	return row
}

// Rows snapshots every tenant.
func (s *Server) Rows() []TenantRow {
	rows := make([]TenantRow, 0, len(s.tenants))
	for _, tn := range s.tenants {
		rows = append(rows, rowFor(tn))
	}
	return rows
}
