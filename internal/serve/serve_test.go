package serve

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
)

func newVM(t *testing.T, cfg core.Config) *core.VM {
	t.Helper()
	if cfg.Engine == "" {
		cfg.Engine = core.EngineJITOpt
	}
	vm, err := core.NewVM(cfg)
	if err != nil {
		t.Fatalf("NewVM: %v", err)
	}
	return vm
}

func startServer(t *testing.T, vm *core.VM, cfg Config, tenants []TenantConfig) (*Server, string) {
	t.Helper()
	s, err := New(vm, cfg, tenants)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	return s, "http://" + addr
}

func get(t *testing.T, client *http.Client, url, body string) (int, string) {
	t.Helper()
	resp, err := client.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

func auditOK(t *testing.T, vm *core.VM) {
	t.Helper()
	if rep := vm.Audit(true); !rep.OK() {
		t.Fatalf("post-teardown audit failed:\n%s", rep)
	}
}

// TestServeSingleRequest is the smoke test: one tenant, one request, a
// deterministic checksum back, clean teardown.
func TestServeSingleRequest(t *testing.T) {
	vm := newVM(t, core.Config{})
	s, base := startServer(t, vm, Config{}, []TenantConfig{{Route: "/t0", WorkUnits: 10}})
	status, body := get(t, http.DefaultClient, base+"/t0", "hello")
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %q", status, body)
	}
	if !strings.Contains(body, "result=") {
		t.Fatalf("body = %q, want checksum", body)
	}
	again, body2 := get(t, http.DefaultClient, base+"/t0", "hello")
	if again != http.StatusOK || body2 != body {
		t.Fatalf("repeat request: status %d body %q, want %q (handler must be deterministic)", again, body2, body)
	}
	if status, _ := get(t, http.DefaultClient, base+"/nope", ""); status != http.StatusNotFound {
		t.Fatalf("unknown route: status %d, want 404", status)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	auditOK(t, vm)
}

// TestServeE2E is the acceptance scenario: >=10k requests across four
// tenant processes over a real socket, one of them a MemHog that is
// repeatedly killed by its memlimit and restarted. The three well-behaved
// neighbours must see zero failures — every one of their requests returns
// 200 — and every hog request is answered (200, 502 on death, or 503
// shed), never hung. The kernel audit must pass after teardown.
//
// The run records spans and writes flight-recorder dumps for every hog
// death. SERVE_E2E_FLIGHT_DIR overrides the dump directory: CI points it
// at a workspace path and uploads the dumps as artifacts when the job
// fails, so a red run ships its own post-mortems.
func TestServeE2E(t *testing.T) {
	vm := newVM(t, core.Config{})
	vm.Tel.Spans.SetEnabled(true)
	flightDir := os.Getenv("SERVE_E2E_FLIGHT_DIR")
	if flightDir == "" {
		flightDir = t.TempDir()
	} else if err := os.MkdirAll(flightDir, 0o755); err != nil {
		t.Fatalf("flight dir: %v", err)
	}
	tenants := []TenantConfig{
		{Route: "/a", WorkUnits: 40, MemKB: 8192},
		{Route: "/b", WorkUnits: 40, MemKB: 8192},
		{Route: "/c", WorkUnits: 40, MemKB: 8192},
		// ShedFraction -1 disables the admission high-water check: this
		// tenant runs straight into its memlimit and is killed — the
		// MemHog scenario the serving plane must degrade around.
		{Route: "/hog", Hog: true, MemKB: 1024, QueueMax: 32, ShedFraction: -1},
	}
	s, base := startServer(t, vm, Config{RequestTimeout: 20 * time.Second, FlightDir: flightDir}, tenants)

	const (
		total   = 10_000
		clients = 24
	)
	routes := []string{"/a", "/b", "/c", "/hog"}
	var (
		sent          [4]uint64 // per route
		neighbourBad  atomic.Uint64
		hogOK, hogErr atomic.Uint64
		hung          atomic.Uint64
	)
	var next atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 25 * time.Second}
			for {
				i := next.Add(1) - 1
				if i >= total {
					return
				}
				r := int(i) % len(routes)
				atomic.AddUint64(&sent[r], 1)
				resp, err := client.Post(base+routes[r], "text/plain",
					strings.NewReader(fmt.Sprintf("req-%d-from-%d", i, c)))
				if err != nil {
					hung.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if r == 3 {
					if resp.StatusCode == http.StatusOK {
						hogOK.Add(1)
					} else {
						hogErr.Add(1)
					}
				} else if resp.StatusCode != http.StatusOK {
					neighbourBad.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()

	rows := s.Rows()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	if hung.Load() != 0 {
		t.Errorf("%d requests got no HTTP response at all", hung.Load())
	}
	if neighbourBad.Load() != 0 {
		t.Errorf("neighbour tenants saw %d non-200 responses, want 0 (isolation violated)", neighbourBad.Load())
	}
	if hogOK.Load()+hogErr.Load() != sent[3] {
		t.Errorf("hog answers %d+%d != sent %d", hogOK.Load(), hogErr.Load(), sent[3])
	}
	var hogRow *TenantRow
	for i := range rows {
		if rows[i].Route == "/hog" {
			hogRow = &rows[i]
		}
	}
	if hogRow == nil {
		t.Fatalf("no /hog row in %v", rows)
	}
	if hogRow.Restarts == 0 {
		t.Errorf("hog was never restarted; deaths did not occur (row %+v)", *hogRow)
	}
	if hogRow.OK == 0 {
		t.Errorf("hog served zero requests successfully; restarts are not effective")
	}
	t.Logf("hog: %d ok, %d shed, %d errors, %d restarts", hogRow.OK, hogRow.Shed, hogRow.Errors, hogRow.Restarts)
	// Every hog death must have left a post-mortem.
	dumps, err := filepath.Glob(filepath.Join(flightDir, "flight-hog-*.json"))
	if err != nil {
		t.Fatalf("glob flight dir: %v", err)
	}
	if uint64(len(dumps)) < hogRow.Restarts {
		t.Errorf("%d flight dumps for %d hog restarts", len(dumps), hogRow.Restarts)
	}
	auditOK(t, vm)
}

// TestServeFaultKillMidRequest uses the fault plane to kill a tenant
// deterministically right after its Nth request is dispatched: that
// request fails with 502, the neighbour is untouched, the supervisor
// restarts the victim, and traffic resumes.
func TestServeFaultKillMidRequest(t *testing.T) {
	plan, err := faults.ParsePlan("seed=7,serve.dispatch=@3")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	vm := newVM(t, core.Config{Faults: faults.NewPlane(plan)})
	s, base := startServer(t, vm,
		Config{RestartBackoff: 5 * time.Millisecond},
		[]TenantConfig{
			{Route: "/victim", WorkUnits: 10},
			{Route: "/bystander", WorkUnits: 10},
		})
	defer func() {
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		auditOK(t, vm)
	}()

	// Interleave: victim requests 1 and 2 succeed, 3 dies mid-request.
	for i := 1; i <= 2; i++ {
		if status, body := get(t, http.DefaultClient, base+"/victim", "x"); status != http.StatusOK {
			t.Fatalf("victim request %d: status %d body %q", i, status, body)
		}
	}
	status, body := get(t, http.DefaultClient, base+"/victim", "x")
	if status != http.StatusBadGateway {
		t.Fatalf("victim request 3: status %d body %q, want 502 (killed mid-request)", status, body)
	}
	if status, body := get(t, http.DefaultClient, base+"/bystander", "x"); status != http.StatusOK {
		t.Fatalf("bystander during victim death: status %d body %q", status, body)
	}
	// The supervisor restarts the victim; traffic must come back.
	deadline := time.Now().Add(5 * time.Second)
	for {
		status, _ = get(t, http.DefaultClient, base+"/victim", "x")
		if status == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim never came back after fault kill; last status %d", status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if fired := vm.Cfg.Faults.Fires(faults.SiteServeDispatch); fired != 1 {
		t.Errorf("serve.dispatch fired %d times, want 1", fired)
	}
}

// TestServeShedNeverHangs saturates a tenant with a tiny queue and slow
// requests: overload must answer promptly with 503, not block.
func TestServeShedNeverHangs(t *testing.T) {
	vm := newVM(t, core.Config{})
	s, base := startServer(t, vm,
		Config{RequestTimeout: 2 * time.Second},
		[]TenantConfig{{Route: "/slow", WorkUnits: 2_000_000, QueueMax: 2, MaxInflight: 1}})
	defer func() {
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		auditOK(t, vm)
	}()

	const flood = 40
	var wg sync.WaitGroup
	var ok, shed, other atomic.Uint64
	start := time.Now()
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			status, _ := get(t, client, base+"/slow", "x")
			switch status {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusServiceUnavailable:
				shed.Add(1)
			default:
				other.Add(1)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if got := ok.Load() + shed.Load() + other.Load(); got != flood {
		t.Fatalf("answers %d != flood %d", got, flood)
	}
	if other.Load() != 0 {
		t.Errorf("%d unexpected statuses (want only 200/503)", other.Load())
	}
	if shed.Load() == 0 {
		t.Errorf("overload shed nothing; admission control is not engaging")
	}
	// Every refused request must be answered fast, i.e. well inside the
	// request timeout: overload responses are immediate 503s, not waits.
	if elapsed > 15*time.Second {
		t.Errorf("flood took %v; shed requests appear to hang", elapsed)
	}
	t.Logf("flood: %d ok, %d shed in %v", ok.Load(), shed.Load(), elapsed)
}

// TestServeNoRestart: with the supervisor disabled a dead tenant stays
// down and its route sheds deterministically rather than hanging.
func TestServeNoRestart(t *testing.T) {
	plan, err := faults.ParsePlan("seed=1,serve.dispatch=@1")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	vm := newVM(t, core.Config{Faults: faults.NewPlane(plan)})
	s, base := startServer(t, vm, Config{},
		[]TenantConfig{{Route: "/once", WorkUnits: 10, NoRestart: true}})
	defer func() {
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		auditOK(t, vm)
	}()

	if status, _ := get(t, http.DefaultClient, base+"/once", "x"); status != http.StatusBadGateway {
		t.Fatalf("first request: status %d, want 502 (fault kill on dispatch 1)", status)
	}
	for i := 0; i < 3; i++ {
		status, body := get(t, http.DefaultClient, base+"/once", "x")
		if status != http.StatusServiceUnavailable {
			t.Fatalf("request after death: status %d body %q, want 503", status, body)
		}
	}
	rows := s.Rows()
	if rows[0].Up {
		t.Errorf("tenant reported up after NoRestart death")
	}
	if rows[0].Restarts != 0 {
		t.Errorf("tenant restarted %d times with NoRestart set", rows[0].Restarts)
	}
}

// TestServeGracefulShutdownUnderLoad closes the server while clients are
// mid-flight: every request that got onto the wire must be answered
// (200/502/503 — never hung, never a 5xx outside that set), the engines
// must drain their queues rather than abandon them, and every shard's VM
// must audit green after teardown. Connection errors are only legal once
// Close has begun (the listener is gone); before that, every request
// must reach a verdict.
func TestServeGracefulShutdownUnderLoad(t *testing.T) {
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			tenants := []TenantConfig{
				{Route: "/x", WorkUnits: 400},
				{Route: "/y", WorkUnits: 400},
			}
			s, base := startSharded(t, shards, Config{
				Place:          LeastLoaded,
				RequestTimeout: 10 * time.Second,
			}, tenants)

			var (
				closeStarted atomic.Bool
				badStatus    atomic.Uint64
				earlyConnErr atomic.Uint64
				answered     atomic.Uint64
			)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for c := 0; c < 12; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					client := &http.Client{Timeout: 20 * time.Second}
					route := tenants[c%len(tenants)].Route
					for {
						select {
						case <-stop:
							return
						default:
						}
						resp, err := client.Post(base+route, "text/plain", strings.NewReader("x"))
						if err != nil {
							if !closeStarted.Load() {
								earlyConnErr.Add(1)
							}
							// Listener gone: shutdown reached the socket layer.
							return
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						answered.Add(1)
						switch resp.StatusCode {
						case http.StatusOK, http.StatusBadGateway, http.StatusServiceUnavailable:
						default:
							badStatus.Add(1)
						}
					}
				}(c)
			}

			time.Sleep(100 * time.Millisecond) // requests in queues and in the VMs
			closeStarted.Store(true)
			done := make(chan error, 1)
			go func() { done <- s.Close() }()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("Close: %v", err)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("Close did not return; shutdown drain is stuck")
			}
			close(stop)
			wg.Wait()

			if answered.Load() == 0 {
				t.Error("no request was ever answered; test exercised nothing")
			}
			if earlyConnErr.Load() != 0 {
				t.Errorf("%d connection errors before Close started", earlyConnErr.Load())
			}
			if badStatus.Load() != 0 {
				t.Errorf("%d responses outside 200/502/503 during shutdown", badStatus.Load())
			}
			// Close drained: no tenant may still hold queued or in-flight
			// requests, and a second Close is a no-op.
			for _, row := range s.Rows() {
				if row.Queue != 0 || row.Inflight != 0 {
					t.Errorf("tenant %s still has queue=%d inflight=%d after Close", row.Route, row.Queue, row.Inflight)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatalf("second Close: %v", err)
			}
			auditAllShards(t, s)
		})
	}
}
