package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"repro/internal/telemetry"
)

// The sharded plane has one telemetry hub per shard (spans, trace ring,
// metric registry all shard-local, written lock-free by the owning
// engine). The introspection surface below aggregates them: one scrape,
// one JSON body, one span stream — each sample labelled with its shard.

// ShardMetrics is one shard's scope dump in the aggregated
// /metrics.json payload.
type ShardMetrics struct {
	Shard  int                         `json:"shard"`
	Scopes []telemetry.MetricsSnapshot `json:"scopes"`
}

// ShardAudit is one shard's invariant report in the aggregated /audit
// payload. Advisory while the shard runs; authoritative audits need the
// server closed.
type ShardAudit struct {
	Shard  int  `json:"shard"`
	Report any  `json:"report"`
	OK     bool `json:"ok"`
}

// TelemetryHandler builds the cross-shard introspection surface:
//
//	/metrics       Prometheus exposition merged across every shard hub,
//	               each sample labelled shard="N"
//	/metrics.json  JSON array of per-shard scope dumps
//	/spans         every shard recorder's spans as JSON lines
//	               (Span.Shard disambiguates; kaffeos trace merges)
//	/trace         every shard trace ring as JSON lines
//	/procs         JSON array of per-shard process-table snapshots
//	/ps            per-shard process tables as plain text
//	/audit         JSON array of per-shard invariant reports
//	/debug/pprof/  Go runtime profiling
func (s *Server) TelemetryHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		hubs := make([]telemetry.LabeledHub, len(s.shards))
		for i, sh := range s.shards {
			hubs[i] = telemetry.LabeledHub{Hub: sh.vm.Tel, Labels: fmt.Sprintf("shard=%q", fmt.Sprint(sh.id))}
		}
		_ = telemetry.WritePrometheusMulti(w, hubs)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		out := make([]ShardMetrics, 0, len(s.shards))
		for _, sh := range s.shards {
			h := sh.vm.Tel
			scopes := []telemetry.MetricsSnapshot{h.Reg.Kernel().Dump()}
			for _, sc := range h.Reg.Procs() {
				scopes = append(scopes, sc.Dump())
			}
			out = append(out, ShardMetrics{Shard: sh.id, Scopes: scopes})
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		for _, sh := range s.shards {
			_ = sh.vm.Tel.Spans.WriteJSONL(w)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		for _, sh := range s.shards {
			_ = sh.vm.Tel.Trace.WriteJSONL(w)
		}
	})
	mux.HandleFunc("/procs", func(w http.ResponseWriter, r *http.Request) {
		type shardSnap struct {
			Shard int                `json:"shard"`
			Snap  telemetry.Snapshot `json:"snapshot"`
		}
		out := make([]shardSnap, 0, len(s.shards))
		for _, sh := range s.shards {
			out = append(out, shardSnap{Shard: sh.id, Snap: sh.vm.Snapshot()})
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("/ps", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, sh := range s.shards {
			fmt.Fprintf(w, "== shard %d ==\n", sh.id)
			telemetry.RenderTable(w, sh.vm.Snapshot())
			fmt.Fprintln(w)
		}
	})
	mux.HandleFunc("/audit", func(w http.ResponseWriter, r *http.Request) {
		out := make([]ShardAudit, 0, len(s.shards))
		for _, sh := range s.shards {
			rep := sh.vm.Audit(false)
			out = append(out, ShardAudit{Shard: sh.id, Report: rep, OK: rep.OK()})
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeTelemetry starts the aggregated introspection endpoint on addr in
// a background goroutine and returns the bound address (useful with
// ":0"). The listener lives until the process exits; this is an opt-in
// debug surface, not a production server.
func (s *Server) ServeTelemetry(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: s.TelemetryHandler()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
