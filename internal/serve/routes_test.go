package serve

import (
	"strings"
	"testing"
)

func TestParseRoutes(t *testing.T) {
	got, err := ParseRoutes("/a, /b:8192 ,/memhog:hog:1024,/once:hog:512:norestart")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	if got[0].Route != "/a" || got[0].Hog || got[0].MemKB != 0 {
		t.Errorf("plain route parsed as %+v", got[0])
	}
	if got[1].Route != "/b" || got[1].MemKB != 8192 {
		t.Errorf("mem attr parsed as %+v", got[1])
	}
	if !got[2].Hog || got[2].MemKB != 1024 {
		t.Errorf("hog attr parsed as %+v", got[2])
	}
	if !got[3].NoRestart || !got[3].Hog || got[3].MemKB != 512 {
		t.Errorf("norestart attr parsed as %+v", got[3])
	}
}

func TestParseRoutesTable(t *testing.T) {
	cases := []struct {
		name string
		spec string
		// want is the expected route list (nil when an error is expected).
		want []string
		// errSub must appear in the error message when want is nil.
		errSub string
	}{
		{name: "single", spec: "/a", want: []string{"/a"}},
		{name: "many", spec: "/a,/b,/c", want: []string{"/a", "/b", "/c"}},
		{name: "whitespace", spec: " /a , /b ", want: []string{"/a", "/b"}},
		{name: "trailing comma", spec: "/a,/b,", want: []string{"/a", "/b"}},
		{name: "servlet attr resets hog", spec: "/a:hog:servlet", want: []string{"/a"}},
		{name: "all attrs", spec: "/a:hog:512:norestart", want: []string{"/a"}},
		{name: "zygote attrs", spec: "/a:warm:template:lazy", want: []string{"/a"}},

		{name: "empty", spec: "", errSub: "empty route spec"},
		{name: "only commas", spec: " , ", errSub: "empty route spec"},
		{name: "bad attr", spec: "/a:bogus", errSub: "unknown attribute"},
		{name: "negative mem", spec: "/a:-5", errSub: "unknown attribute"},
		{name: "zero mem", spec: "/a:0", errSub: "unknown attribute"},
		{name: "float mem", spec: "/a:1.5", errSub: "unknown attribute"},
		{name: "no slash", spec: "zone0", errSub: "must start with '/'"},
		{name: "attr only", spec: ":hog", errSub: "must start with '/'"},
		{name: "second route no slash", spec: "/a,b", errSub: "must start with '/'"},
		{name: "bare slash empty name", spec: "/", errSub: "empty tenant name"},
		{name: "reserved serve", spec: "/serve", errSub: "reserved"},
		{name: "reserved healthz", spec: "/a,/healthz", errSub: "reserved"},
		{name: "duplicate", spec: "/a,/b,/a", errSub: "duplicate route"},
		{name: "duplicate with attrs", spec: "/a:hog,/a:512", errSub: "duplicate route"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseRoutes(tc.spec)
			if tc.want == nil {
				if err == nil {
					t.Fatalf("ParseRoutes(%q) = %+v, want error containing %q", tc.spec, got, tc.errSub)
				}
				if !strings.Contains(err.Error(), tc.errSub) {
					t.Fatalf("ParseRoutes(%q) error %q, want it to contain %q", tc.spec, err, tc.errSub)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseRoutes(%q): %v", tc.spec, err)
			}
			var routes []string
			for _, cfg := range got {
				routes = append(routes, cfg.Route)
			}
			if len(routes) != len(tc.want) {
				t.Fatalf("ParseRoutes(%q) routes = %v, want %v", tc.spec, routes, tc.want)
			}
			for i := range routes {
				if routes[i] != tc.want[i] {
					t.Fatalf("ParseRoutes(%q) routes = %v, want %v", tc.spec, routes, tc.want)
				}
			}
		})
	}
}

// TestParseRoutesAttrSemantics pins the attribute → config mapping beyond
// route lists: roles, memlimits and restart policy land on the right
// tenant when several are combined in one spec.
func TestParseRoutesAttrSemantics(t *testing.T) {
	got, err := ParseRoutes("/plain,/big:8192,/hog:hog:1024:norestart,/zyg:warm:template:lazy:2048")
	if err != nil {
		t.Fatal(err)
	}
	want := []TenantConfig{
		{Route: "/plain"},
		{Route: "/big", MemKB: 8192},
		{Route: "/hog", Hog: true, MemKB: 1024, NoRestart: true},
		{Route: "/zyg", Warm: true, Template: true, Lazy: true, MemKB: 2048},
	}
	for i, w := range want {
		g := got[i]
		if g.Route != w.Route || g.Hog != w.Hog || g.MemKB != w.MemKB || g.NoRestart != w.NoRestart ||
			g.Warm != w.Warm || g.Template != w.Template || g.Lazy != w.Lazy {
			t.Errorf("entry %d = %+v, want %+v", i, g, w)
		}
	}
}
