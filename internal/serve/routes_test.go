package serve

import "testing"

func TestParseRoutes(t *testing.T) {
	got, err := ParseRoutes("/a, /b:8192 ,/memhog:hog:1024,/once:hog:512:norestart")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	if got[0].Route != "/a" || got[0].Hog || got[0].MemKB != 0 {
		t.Errorf("plain route parsed as %+v", got[0])
	}
	if got[1].Route != "/b" || got[1].MemKB != 8192 {
		t.Errorf("mem attr parsed as %+v", got[1])
	}
	if !got[2].Hog || got[2].MemKB != 1024 {
		t.Errorf("hog attr parsed as %+v", got[2])
	}
	if !got[3].NoRestart || !got[3].Hog || got[3].MemKB != 512 {
		t.Errorf("norestart attr parsed as %+v", got[3])
	}
}

func TestParseRoutesErrors(t *testing.T) {
	for _, spec := range []string{"", " , ", "/a:bogus", "/a:-5"} {
		if _, err := ParseRoutes(spec); err == nil {
			t.Errorf("ParseRoutes(%q): want error", spec)
		}
	}
}
