package serve

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/telemetry"
)

// overcommitTenants builds the fixed fleet for the overcommit scenario:
// eight servlet tenants whose appetite wants roughly 4 MiB each (32 MiB
// total) squeezed under a global budget with room for about three.
// Tenants 0–3 are hot (big bodies held live in flight, heavy per-request
// work); 4–7 are nearly idle. Both configurations respect the same
// budget: the static baseline carves it into even per-tenant limits,
// which starves the hot half at its admission high-water mark while the
// idle half wastes its share; the controller moves the same bytes to
// where the garbage is.
func overcommitTenants(budget uint64) []TenantConfig {
	perTenantKB := int(budget / 8 >> 10) // static even split of the budget
	tenants := make([]TenantConfig, 8)
	for i := range tenants {
		work := 50
		inflight := 0
		if i < 4 {
			// Heavy work keeps each hot handler running across many quanta,
			// so its marshalled body stays live — concurrent in-flight
			// requests pile up real live bytes, not collectable garbage.
			work = 20_000
			inflight = 24
		}
		tenants[i] = TenantConfig{
			Route:       fmt.Sprintf("/t%d", i),
			WorkUnits:   work,
			MemKB:       perTenantKB,
			QueueMax:    12,
			MaxInflight: inflight,
		}
	}
	return tenants
}

// overcommitResult aggregates one run of the scenario.
type overcommitResult struct {
	answered  uint64 // requests that got 200/502/503
	unknown   uint64 // anything else (must be 0)
	ok        uint64
	shed      uint64
	gcCycles  uint64 // total GC cycles across every process on every shard
	shedRate  float64
	gcPerOK   float64 // GC cycles per successful request (normalizes shed work)
	rebalance uint64  // controller rounds observed (0 when off)
}

// runOvercommit drives the fixed traffic mix through a 2-shard server,
// with or without the memory controller, and tears it down audited.
func runOvercommit(t *testing.T, budget uint64, controller bool) overcommitResult {
	t.Helper()
	cfg := Config{Shards: 2, Place: LeastLoaded}
	if controller {
		cfg.MemBudget = budget
	}
	// The physical wall: each shard VM's root memlimit holds the kernel
	// reserve plus its half of the tenant budget — the budget is real,
	// not advisory, in both configurations.
	vmCfg := core.Config{Engine: core.EngineJITOpt, TotalMemory: 32<<20 + budget/2}
	s, err := NewSharded(vmCfg, cfg, overcommitTenants(budget))
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	if _, err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}

	// Demand per hot tenant is clients*(7/8)/4 concurrent requests. Static
	// capacity is ~10 in flight (the even-split limit caps marshalled
	// bodies) + QueueMax; balanced capacity is MaxInflight + QueueMax once
	// the controller has grown the hot limits. 128 clients puts demand
	// (~28) decisively above the former and below the latter, so the
	// static baseline sheds structurally, not on scheduling noise.
	const (
		total   = 1600
		clients = 128
	)
	hotBody := make([]byte, 64<<10)
	for i := range hotBody {
		hotBody[i] = byte(i)
	}
	coldBody := []byte("ping")

	var res overcommitResult
	var next atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= total {
					return
				}
				// 7 of 8 requests go to the hot half; the idle half sees
				// a trickle, just enough to stay sampled.
				var route string
				var body []byte
				if i%8 != 7 {
					route = fmt.Sprintf("/t%d", i%4)
					body = hotBody
				} else {
					route = fmt.Sprintf("/t%d", 4+(i/8)%4)
					body = coldBody
				}
				status, _ := s.Do(route, body)
				switch status {
				case http.StatusOK:
					atomic.AddUint64(&res.ok, 1)
					atomic.AddUint64(&res.answered, 1)
				case http.StatusServiceUnavailable:
					atomic.AddUint64(&res.shed, 1)
					atomic.AddUint64(&res.answered, 1)
				case http.StatusBadGateway:
					atomic.AddUint64(&res.answered, 1)
				default:
					atomic.AddUint64(&res.unknown, 1)
				}
			}
		}()
	}
	wg.Wait()

	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i, vm := range s.VMs() {
		if rep := vm.Audit(true); !rep.OK() {
			t.Fatalf("post-teardown audit failed on shard %d (controller=%v):\n%s", i, controller, rep)
		}
		for _, scope := range vm.Tel.Reg.Procs() {
			res.gcCycles += scope.Counter(telemetry.MGCCycles).Value()
		}
		res.rebalance += vm.Tel.Reg.Kernel().Counter(telemetry.MMemBalRounds).Value()
	}
	res.shedRate = float64(res.shed) / float64(total)
	if res.ok > 0 {
		res.gcPerOK = float64(res.gcCycles) / float64(res.ok)
	}
	return res
}

// TestOvercommitControllerBeatsStatic is the tentpole's acceptance test:
// eight tenants squeezed under a budget with room for about three, run
// once with static even-split limits and once with the MemBalancer
// controller redistributing the same total budget. The controller run
// must shed less AND spend less total GC time; both runs must answer
// every request and pass the kernel audit after teardown.
func TestOvercommitControllerBeatsStatic(t *testing.T) {
	const budget = 12 << 20

	static := runOvercommit(t, budget, false)
	balanced := runOvercommit(t, budget, true)

	t.Logf("static:   ok=%d shed=%d (rate %.3f) gcCycles=%d (%.1f/ok)",
		static.ok, static.shed, static.shedRate, static.gcCycles, static.gcPerOK)
	t.Logf("balanced: ok=%d shed=%d (rate %.3f) gcCycles=%d (%.1f/ok) rounds=%d",
		balanced.ok, balanced.shed, balanced.shedRate, balanced.gcCycles, balanced.gcPerOK, balanced.rebalance)

	for name, r := range map[string]overcommitResult{"static": static, "balanced": balanced} {
		if r.unknown != 0 {
			t.Errorf("%s: %d requests got an unexpected status (every request must be answered 200/502/503)", name, r.unknown)
		}
		if r.ok == 0 {
			t.Errorf("%s: zero successful requests", name)
		}
	}
	if balanced.rebalance == 0 {
		t.Fatal("controller never ran a rebalance round")
	}
	if balanced.shed > static.shed {
		t.Errorf("controller shed more than static limits: %d > %d", balanced.shed, static.shed)
	}
	if static.shed > 0 && balanced.shed >= static.shed {
		t.Errorf("controller did not reduce shed count: static %d, balanced %d", static.shed, balanced.shed)
	}
	// Shed requests are refused at admission and do no handler work, so
	// raw GC totals are incomparable when shed counts differ; normalize by
	// completed requests instead.
	if balanced.gcPerOK >= static.gcPerOK {
		t.Errorf("controller did not reduce GC time per served request: static %.1f cycles/ok, balanced %.1f", static.gcPerOK, balanced.gcPerOK)
	}
}

// TestOvercommitRebalanceFaultReconciles arms the membal.rebalance fault
// site so the controller's 3rd round is cut off half-applied, then keeps
// traffic flowing: later rounds must re-converge the limits, the run must
// keep answering, and the post-teardown audit must hold — a controller
// crash mid-redistribution may never corrupt the memlimit books.
func TestOvercommitRebalanceFaultReconciles(t *testing.T) {
	const budget = 12 << 20
	plan, err := faults.ParsePlan("seed=3,membal.rebalance=@3")
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSharded(
		core.Config{Engine: core.EngineJITOpt, Faults: faults.NewPlane(plan), TotalMemory: 32<<20 + budget},
		Config{Shards: 1, MemBudget: budget},
		overcommitTenants(budget))
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	if _, err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}

	var answered, unknown uint64
	var wg sync.WaitGroup
	var next atomic.Uint64
	body := make([]byte, 8<<10)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= 600 {
					return
				}
				status, _ := s.Do(fmt.Sprintf("/t%d", i%8), body)
				switch status {
				case http.StatusOK, http.StatusServiceUnavailable, http.StatusBadGateway:
					atomic.AddUint64(&answered, 1)
				default:
					atomic.AddUint64(&unknown, 1)
				}
			}
		}()
	}
	wg.Wait()

	vm := s.VMs()[0]
	partial := vm.Tel.Reg.Kernel().Counter(telemetry.MMemBalPartial).Value()
	rounds := vm.Tel.Reg.Kernel().Counter(telemetry.MMemBalRounds).Value()

	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if unknown != 0 {
		t.Errorf("%d requests got an unexpected status", unknown)
	}
	if partial == 0 {
		t.Fatal("fault site membal.rebalance=@3 never cut a round (site not exercised)")
	}
	if rounds <= partial {
		t.Errorf("no full rounds after the partial one (rounds %d, partial %d): limits were never reconciled", rounds, partial)
	}
	if rep := vm.Audit(true); !rep.OK() {
		t.Fatalf("post-teardown audit failed after partial rebalance:\n%s", rep)
	}
}
