package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/telemetry"
)

// TestServeSpanLedger drives traffic with span recording on and checks
// the cost ledger: every completed request left a span whose phases are
// populated, the kernel phase histograms agree with the recorder, and
// the /spans endpoint serves the same spans as JSONL.
func TestServeSpanLedger(t *testing.T) {
	vm := newVM(t, core.Config{})
	vm.Tel.Spans.SetEnabled(true)
	s, base := startServer(t, vm, Config{}, []TenantConfig{
		{Route: "/fast", WorkUnits: 20},
		{Route: "/hog", Hog: true, MemKB: 1024, QueueMax: 32},
	})
	defer func() {
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		auditOK(t, vm)
	}()

	const perRoute = 30
	for i := 0; i < perRoute; i++ {
		if status, body := get(t, http.DefaultClient, base+"/fast", "payload"); status != http.StatusOK {
			t.Fatalf("/fast request %d: status %d body %q", i, status, body)
		}
		// The hog may be dying/restarting; any answered status is fine,
		// the point is that each answer leaves a span.
		get(t, http.DefaultClient, base+"/hog", "payload")
	}

	spans := vm.Tel.Spans.Snapshot()
	if got := uint64(len(spans)); got != vm.Tel.Spans.Total() || got != 2*perRoute {
		t.Fatalf("recorded %d spans (Total %d), want %d", got, vm.Tel.Spans.Total(), 2*perRoute)
	}

	seen := map[uint64]bool{}
	var fastOK, hogGC int
	for _, sp := range spans {
		if sp.ID == 0 || seen[sp.ID] {
			t.Fatalf("span id %d zero or duplicated", sp.ID)
		}
		seen[sp.ID] = true
		if sp.Start == 0 || sp.TotalNs <= 0 {
			t.Errorf("span %d: Start=%d TotalNs=%d; wall phases missing", sp.ID, sp.Start, sp.TotalNs)
		}
		if sp.QueueNs < 0 || sp.MarshalNs < 0 || sp.AcceptNs < 0 {
			t.Errorf("span %d: negative phase: %+v", sp.ID, sp)
		}
		if sp.GCNs != telemetry.CyclesToNs(sp.GCCycles) {
			t.Errorf("span %d: GCNs %d != CyclesToNs(%d)", sp.ID, sp.GCNs, sp.GCCycles)
		}
		switch sp.Route {
		case "/fast":
			if sp.Status != http.StatusOK {
				t.Errorf("/fast span %d: status %d", sp.ID, sp.Status)
				continue
			}
			fastOK++
			if sp.Pid == 0 {
				t.Errorf("/fast span %d: no pid on a 200", sp.ID)
			}
			if sp.ExecCycles == 0 || sp.Quanta == 0 || sp.ExecNs <= 0 {
				t.Errorf("/fast span %d: exec ledger empty: cycles=%d quanta=%d execNs=%d",
					sp.ID, sp.ExecCycles, sp.Quanta, sp.ExecNs)
			}
			if sp.Detail != "" {
				t.Errorf("/fast span %d: detail %q on a 200", sp.ID, sp.Detail)
			}
		case "/hog":
			if sp.GCCycles > 0 {
				hogGC++
			}
			if sp.Status != http.StatusOK && sp.Detail == "" {
				t.Errorf("/hog span %d: status %d with no detail", sp.ID, sp.Status)
			}
		default:
			t.Errorf("span %d: unknown route %q", sp.ID, sp.Route)
		}
	}
	if fastOK != perRoute {
		t.Errorf("%d /fast 200-spans, want %d", fastOK, perRoute)
	}
	// The hog allocates against a tight memlimit: admission-triggered
	// collections must be charged to the requests that forced them.
	if hogGC == 0 {
		t.Error("no /hog span carries GC cycles; GC attribution is not reaching spans")
	}

	// The kernel phase histograms see one observation per completed span.
	k := vm.Tel.Reg.Kernel()
	for _, name := range []string{telemetry.MSpanQueueNs, telemetry.MSpanExecCycles,
		telemetry.MSpanGCCycles, telemetry.MSpanTotalNs} {
		if got := k.Histogram(name).Count(); got != 2*perRoute {
			t.Errorf("kernel histogram %s count = %d, want %d", name, got, 2*perRoute)
		}
	}

	// /spans serves the same ledger as JSONL.
	ts := httptest.NewServer(vm.Tel.Handler(vm.Snapshot))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/spans")
	if err != nil {
		t.Fatalf("GET /spans: %v", err)
	}
	defer resp.Body.Close()
	var served int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var sp telemetry.Span
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("/spans bad line %q: %v", sc.Text(), err)
		}
		if !seen[sp.ID] {
			t.Errorf("/spans served unknown span id %d", sp.ID)
		}
		served++
	}
	if served != len(spans) {
		t.Errorf("/spans served %d spans, recorder holds %d", served, len(spans))
	}
}

// TestServeSpansOffZeroFootprint: with recording off (the default), no
// spans are retained and no ids are minted — the off path must stay free.
func TestServeSpansOffZeroFootprint(t *testing.T) {
	vm := newVM(t, core.Config{})
	s, base := startServer(t, vm, Config{}, []TenantConfig{{Route: "/t", WorkUnits: 10}})
	defer func() {
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		auditOK(t, vm)
	}()
	for i := 0; i < 5; i++ {
		if status, _ := get(t, http.DefaultClient, base+"/t", "x"); status != http.StatusOK {
			t.Fatalf("request %d failed", i)
		}
	}
	if got := vm.Tel.Spans.Total(); got != 0 {
		t.Errorf("recorder holds %d spans with recording off", got)
	}
	if got := vm.Tel.Reg.Kernel().Histogram(telemetry.MSpanTotalNs).Count(); got != 0 {
		t.Errorf("span histograms observed %d values with recording off", got)
	}
}

// TestServeFlightRecorderOnDeath is the post-mortem acceptance path: a
// fault kills the tenant right after its third request is dispatched, and
// the flight recorder must dump an artifact containing that request's
// 502 span and the tenant's trace events — without any poller attached.
func TestServeFlightRecorderOnDeath(t *testing.T) {
	plan, err := faults.ParsePlan("seed=7,serve.dispatch=@3")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	vm := newVM(t, core.Config{Faults: faults.NewPlane(plan)})
	vm.Tel.SetTracing(true)
	vm.Tel.Spans.SetEnabled(true)
	dir := t.TempDir()
	s, base := startServer(t, vm,
		Config{RestartBackoff: 5 * time.Millisecond, FlightDir: dir},
		[]TenantConfig{
			{Route: "/victim", WorkUnits: 10},
			{Route: "/bystander", WorkUnits: 10},
		})
	defer func() {
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		auditOK(t, vm)
	}()

	for i := 1; i <= 2; i++ {
		if status, body := get(t, http.DefaultClient, base+"/victim", "x"); status != http.StatusOK {
			t.Fatalf("victim request %d: status %d body %q", i, status, body)
		}
	}
	status, _ := get(t, http.DefaultClient, base+"/victim", "x")
	if status != http.StatusBadGateway {
		t.Fatalf("victim request 3: status %d, want 502", status)
	}

	// The dump is written by the engine goroutine during the reap pass;
	// the 502 can race ahead of the file write, so poll briefly.
	var dumpPath string
	deadline := time.Now().Add(5 * time.Second)
	for dumpPath == "" {
		matches, err := filepath.Glob(filepath.Join(dir, "flight-victim-*.json"))
		if err != nil {
			t.Fatalf("glob: %v", err)
		}
		if len(matches) > 0 {
			dumpPath = matches[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no flight dump appeared in %s", dir)
		}
		time.Sleep(5 * time.Millisecond)
	}

	data, err := os.ReadFile(dumpPath)
	if err != nil {
		t.Fatalf("read dump: %v", err)
	}
	var dump FlightDump
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, data)
	}
	if dump.Reason != "death" {
		t.Errorf("dump reason = %q, want death", dump.Reason)
	}
	if dump.Route != "/victim" || !strings.Contains(dump.Name, "victim") {
		t.Errorf("dump identity: route %q name %q", dump.Route, dump.Name)
	}
	if dump.Pid == 0 {
		t.Error("dump has no pid")
	}
	if dump.Deaths != 1 {
		t.Errorf("dump deaths = %d, want 1", dump.Deaths)
	}
	// The killed request's span must be in the dump, finalized as a 502.
	var got502 *telemetry.Span
	for i := range dump.Spans {
		if dump.Spans[i].Status == http.StatusBadGateway {
			got502 = &dump.Spans[i]
		}
	}
	if got502 == nil {
		t.Fatalf("dump spans %+v contain no 502; the killed request's span is missing", dump.Spans)
	}
	if got502.Route != "/victim" || got502.Detail == "" {
		t.Errorf("killed request span: route %q detail %q, want /victim with a reason", got502.Route, got502.Detail)
	}
	if got502.TotalNs <= 0 {
		t.Errorf("killed request span not finalized: TotalNs = %d", got502.TotalNs)
	}
	// Tracing was on, so the tenant's event window must be present.
	if len(dump.Events) == 0 {
		t.Error("dump has no trace events despite tracing on")
	}
	if dump.Tenant.Errors == 0 {
		t.Error("dump tenant snapshot shows zero errors after a mid-request kill")
	}
	// The bystander must be untouched by all of this.
	if status, body := get(t, http.DefaultClient, base+"/bystander", "x"); status != http.StatusOK {
		t.Errorf("bystander after victim death: status %d body %q", status, body)
	}
}
