package serve

import (
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
)

// parseResult extracts the checksum from a "name result=N" response body.
func parseResult(t *testing.T, body string) int64 {
	t.Helper()
	i := strings.LastIndex(body, "result=")
	if i < 0 {
		t.Fatalf("no result in body %q", body)
	}
	n, err := strconv.ParseInt(strings.TrimSpace(body[i+len("result="):]), 10, 64)
	if err != nil {
		t.Fatalf("bad result in body %q: %v", body, err)
	}
	return n
}

// TestServeTemplateForkCorrectness runs the same warm servlet twice — one
// tenant initialized the classic way, one forked from a checkpointed
// zygote — and demands identical answers: the fork path must be
// observationally equivalent to running the clinit, all the way out to
// the HTTP response.
func TestServeTemplateForkCorrectness(t *testing.T) {
	vm := newVM(t, core.Config{})
	s, base := startServer(t, vm, Config{}, []TenantConfig{
		{Route: "/classic", Warm: true, WorkUnits: 50},
		{Route: "/zygote", Warm: true, WorkUnits: 50, Template: true},
	})

	for _, body := range []string{"", "x", "hello world", strings.Repeat("q", 700)} {
		st1, b1 := get(t, http.DefaultClient, base+"/classic", body)
		st2, b2 := get(t, http.DefaultClient, base+"/zygote", body)
		if st1 != http.StatusOK || st2 != http.StatusOK {
			t.Fatalf("body %q: classic %d %q, zygote %d %q", body, st1, b1, st2, b2)
		}
		if r1, r2 := parseResult(t, b1), parseResult(t, b2); r1 != r2 {
			t.Errorf("body %q: classic result %d, forked result %d — clone diverges from clinit", body, r1, r2)
		}
	}

	// Exactly one zygote template exists for the shape, cached on the shard.
	if got := len(vm.Templates()); got != 1 {
		t.Errorf("%d templates live, want 1 shared zygote", got)
	}

	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Shutdown released the zygotes; teardown is as clean as a no-template run.
	if got := len(vm.Templates()); got != 0 {
		t.Errorf("%d templates survive Close", got)
	}
	auditOK(t, vm)
}

// TestServeTemplateRestartForksFromZygote kills a template tenant
// mid-request with the fault plane: the supervisor's restart must fork a
// fresh incarnation from the cached zygote (no second checkpoint), and
// the reborn tenant must answer exactly as before death.
func TestServeTemplateRestartForksFromZygote(t *testing.T) {
	plan, err := faults.ParsePlan("seed=3,serve.dispatch=@2")
	if err != nil {
		t.Fatal(err)
	}
	vm := newVM(t, core.Config{Faults: faults.NewPlane(plan)})
	s, base := startServer(t, vm,
		Config{RestartBackoff: 2 * time.Millisecond},
		[]TenantConfig{{Route: "/z", Warm: true, Template: true, WorkUnits: 30}})
	defer func() {
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		auditOK(t, vm)
	}()

	status, body := get(t, http.DefaultClient, base+"/z", "ping")
	if status != http.StatusOK {
		t.Fatalf("first request: %d %q", status, body)
	}
	want := parseResult(t, body)
	firstPid := s.Rows()[0].Pid

	// Request 2 dies mid-flight to the injected kill.
	if status, body := get(t, http.DefaultClient, base+"/z", "ping"); status != http.StatusBadGateway {
		t.Fatalf("faulted request: %d %q, want 502", status, body)
	}

	// The supervisor forks a replacement; same answer, new pid.
	deadline := time.Now().Add(5 * time.Second)
	for {
		status, body = get(t, http.DefaultClient, base+"/z", "ping")
		if status == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant never came back; last status %d %q", status, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := parseResult(t, body); got != want {
		t.Errorf("restarted incarnation answers %d, first answered %d", got, want)
	}
	row := s.Rows()[0]
	if row.Restarts == 0 {
		t.Error("restart not recorded")
	}
	if row.Pid == firstPid {
		t.Errorf("restarted incarnation kept pid %d; want a fresh process", firstPid)
	}
	// Still exactly one template: restarts reuse the zygote, they do not
	// re-checkpoint.
	if got := len(vm.Templates()); got != 1 {
		t.Errorf("%d templates after restart, want the one cached zygote", got)
	}
}

// TestServeLazyScaleFromZero registers a lazy template tenant: no
// process, no zygote, nothing until the first request — which then pays
// one checkpoint plus one fork and is answered 200.
func TestServeLazyScaleFromZero(t *testing.T) {
	vm := newVM(t, core.Config{})
	s, base := startServer(t, vm, Config{}, []TenantConfig{
		{Route: "/cold", Warm: true, Template: true, Lazy: true, WorkUnits: 20},
	})
	defer func() {
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		auditOK(t, vm)
	}()

	if row := s.Rows()[0]; row.Up || row.Pid != 0 {
		t.Fatalf("lazy tenant has a process before any traffic: %+v", row)
	}
	if got := len(vm.Templates()); got != 0 {
		t.Fatalf("%d templates before any traffic, want 0", got)
	}

	status, body := get(t, http.DefaultClient, base+"/cold", "wake up")
	if status != http.StatusOK {
		t.Fatalf("first request to lazy tenant: %d %q", status, body)
	}
	if row := s.Rows()[0]; !row.Up || row.Pid == 0 {
		t.Errorf("lazy tenant not up after first request: %+v", row)
	}
	if got := len(vm.Templates()); got != 1 {
		t.Errorf("%d templates after first request, want 1", got)
	}

	// Steady state: it keeps serving.
	if status, _ := get(t, http.DefaultClient, base+"/cold", "again"); status != http.StatusOK {
		t.Errorf("second request: %d", status)
	}
}
