package serve

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

func startSharded(t *testing.T, shards int, cfg Config, tenants []TenantConfig) (*Server, string) {
	t.Helper()
	cfg.Shards = shards
	s, err := NewSharded(core.Config{Engine: core.EngineJITOpt}, cfg, tenants)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	return s, "http://" + addr
}

func auditAllShards(t *testing.T, s *Server) {
	t.Helper()
	for i, vm := range s.VMs() {
		if rep := vm.Audit(true); !rep.OK() {
			t.Fatalf("shard %d post-teardown audit failed:\n%s", i, rep)
		}
	}
}

// TestShardedE2E drives real HTTP traffic through a 4-shard plane: every
// request to a well-behaved tenant must return 200 regardless of which
// shard owns it, and every shard's VM must audit green after teardown.
func TestShardedE2E(t *testing.T) {
	tenants := make([]TenantConfig, 8)
	for i := range tenants {
		tenants[i] = TenantConfig{Route: fmt.Sprintf("/t%d", i), WorkUnits: 20}
	}
	s, base := startSharded(t, 4, Config{Place: LeastLoaded}, tenants)

	if s.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", s.Shards())
	}
	// LeastLoaded placement on an idle plane round-robins by tenant count:
	// 8 tenants over 4 shards must land 2 per shard.
	perShard := make(map[int]int)
	for i := range tenants {
		sh := s.ShardOf(tenants[i].Route)
		if sh < 0 || sh >= 4 {
			t.Fatalf("ShardOf(%s) = %d", tenants[i].Route, sh)
		}
		perShard[sh]++
	}
	for sh, n := range perShard {
		if n != 2 {
			t.Errorf("shard %d owns %d tenants, want 2 (placement %v)", sh, n, perShard)
		}
	}

	const total = 800
	var bad, hung atomic.Uint64
	var next atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 20 * time.Second}
			for {
				i := next.Add(1) - 1
				if i >= total {
					return
				}
				route := tenants[int(i)%len(tenants)].Route
				resp, err := client.Post(base+route, "text/plain",
					strings.NewReader(fmt.Sprintf("req-%d-from-%d", i, c)))
				if err != nil {
					hung.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					bad.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	if hung.Load() != 0 {
		t.Errorf("%d requests got no HTTP response", hung.Load())
	}
	if bad.Load() != 0 {
		t.Errorf("%d non-200 responses from well-behaved tenants across shards", bad.Load())
	}
	// Every shard must actually have served traffic, not just existed.
	loads := s.Loads()
	for _, ld := range loads {
		if ld.Cycles == 0 {
			t.Errorf("shard %d executed zero cycles; traffic never reached it (%+v)", ld.Shard, loads)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	auditAllShards(t, s)
}

// TestShardedIsolation puts a MemHog on a multi-shard plane: its deaths
// and restarts must never produce a non-200 for any other tenant, on its
// own shard or any other.
func TestShardedIsolation(t *testing.T) {
	tenants := []TenantConfig{
		{Route: "/a", WorkUnits: 30, MemKB: 8192},
		{Route: "/b", WorkUnits: 30, MemKB: 8192},
		{Route: "/c", WorkUnits: 30, MemKB: 8192},
		{Route: "/hog", Hog: true, MemKB: 1024, QueueMax: 32, ShedFraction: -1},
	}
	s, base := startSharded(t, 2, Config{Place: LeastLoaded, RequestTimeout: 20 * time.Second}, tenants)

	const total = 1200
	var neighbourBad, hogUnanswered, hung atomic.Uint64
	var next atomic.Uint64
	var wg sync.WaitGroup
	routes := []string{"/a", "/b", "/c", "/hog"}
	for c := 0; c < 12; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 25 * time.Second}
			for {
				i := next.Add(1) - 1
				if i >= total {
					return
				}
				r := int(i) % len(routes)
				resp, err := client.Post(base+routes[r], "text/plain", strings.NewReader("x"))
				if err != nil {
					hung.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case r == 3:
					if resp.StatusCode != http.StatusOK &&
						resp.StatusCode != http.StatusBadGateway &&
						resp.StatusCode != http.StatusServiceUnavailable {
						hogUnanswered.Add(1)
					}
				case resp.StatusCode != http.StatusOK:
					neighbourBad.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if hung.Load() != 0 {
		t.Errorf("%d requests got no response", hung.Load())
	}
	if neighbourBad.Load() != 0 {
		t.Errorf("neighbours saw %d non-200s (cross-tenant/cross-shard isolation violated)", neighbourBad.Load())
	}
	if hogUnanswered.Load() != 0 {
		t.Errorf("%d hog requests answered outside 200/502/503", hogUnanswered.Load())
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	auditAllShards(t, s)
}

// TestMigrateUnderTraffic moves a tenant between shards while clients
// hammer it: during the move requests may shed 503 but must never hang
// or error with anything but 502/503; after the move the tenant serves
// 200s from the target shard and both shards audit green.
func TestMigrateUnderTraffic(t *testing.T) {
	tenants := []TenantConfig{
		{Route: "/hot", WorkUnits: 20},
		{Route: "/other", WorkUnits: 20},
	}
	s, base := startSharded(t, 2, Config{
		Place:          func(route string, loads []ShardLoad) int { return 0 }, // everything starts on shard 0
		RequestTimeout: 10 * time.Second,
	}, tenants)

	if got := s.ShardOf("/hot"); got != 0 {
		t.Fatalf("ShardOf(/hot) = %d before migration, want 0", got)
	}

	stop := make(chan struct{})
	var badStatus, hung atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 20 * time.Second}
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Post(base+"/hot", "text/plain", strings.NewReader("x"))
				if err != nil {
					hung.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK &&
					resp.StatusCode != http.StatusBadGateway &&
					resp.StatusCode != http.StatusServiceUnavailable {
					badStatus.Add(1)
				}
			}
		}()
	}

	time.Sleep(50 * time.Millisecond) // traffic in flight
	if err := s.Migrate("/hot", 1); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if got := s.ShardOf("/hot"); got != 1 {
		t.Fatalf("ShardOf(/hot) = %d after migration, want 1", got)
	}
	time.Sleep(50 * time.Millisecond) // traffic lands on the new shard
	close(stop)
	wg.Wait()

	if hung.Load() != 0 {
		t.Errorf("%d requests hung or failed at the HTTP layer during migration", hung.Load())
	}
	if badStatus.Load() != 0 {
		t.Errorf("%d responses outside 200/502/503 during migration", badStatus.Load())
	}

	// The moved tenant must serve from the target shard.
	status, body := get(t, http.DefaultClient, base+"/hot", "after")
	if status != http.StatusOK {
		t.Fatalf("post-migration request: status %d body %q", status, body)
	}
	// The bystander on the source shard was never disturbed.
	if status, body := get(t, http.DefaultClient, base+"/other", "x"); status != http.StatusOK {
		t.Fatalf("bystander after migration: status %d body %q", status, body)
	}
	var hotRow TenantRow
	for _, row := range s.Rows() {
		if row.Route == "/hot" {
			hotRow = row
		}
	}
	if hotRow.Migrations != 1 {
		t.Errorf("migrations = %d, want 1 (row %+v)", hotRow.Migrations, hotRow)
	}
	if hotRow.Shard != 1 {
		t.Errorf("row shard = %d, want 1", hotRow.Shard)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	auditAllShards(t, s)
}

// TestMigrateErrors pins the migration error surface: unknown routes and
// out-of-range shards fail, moving onto the current shard is a no-op.
func TestMigrateErrors(t *testing.T) {
	s, _ := startSharded(t, 2, Config{
		Place: func(route string, loads []ShardLoad) int { return 0 },
	}, []TenantConfig{{Route: "/t", WorkUnits: 10}})
	defer func() {
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		auditAllShards(t, s)
	}()

	if err := s.Migrate("/nope", 1); err == nil {
		t.Error("Migrate unknown route: want error")
	}
	if err := s.Migrate("/t", 7); err == nil {
		t.Error("Migrate to shard 7 of 2: want error")
	}
	if err := s.Migrate("/t", -1); err == nil {
		t.Error("Migrate to shard -1: want error")
	}
	if err := s.Migrate("/t", 0); err != nil {
		t.Errorf("Migrate onto current shard: %v, want no-op", err)
	}
	if got := s.ShardOf("/t"); got != 0 {
		t.Errorf("ShardOf(/t) = %d after no-op migrate, want 0", got)
	}
}

// TestLeastLoaded pins the placement hook's tie-breaking order:
// queue+inflight, then tenant count, then cycles.
func TestLeastLoaded(t *testing.T) {
	cases := []struct {
		name  string
		loads []ShardLoad
		want  int
	}{
		{"empty plane", []ShardLoad{{Shard: 0}, {Shard: 1}}, 0},
		{"queue wins", []ShardLoad{{Shard: 0, Queue: 5}, {Shard: 1, Queue: 1}}, 1},
		{"inflight counts", []ShardLoad{{Shard: 0, Inflight: 3}, {Shard: 1, Queue: 1}}, 1},
		{"tenants break ties", []ShardLoad{{Shard: 0, Tenants: 2}, {Shard: 1, Tenants: 1}}, 1},
		{"cycles break ties", []ShardLoad{{Shard: 0, Cycles: 100}, {Shard: 1, Cycles: 50}}, 1},
		{"first wins full tie", []ShardLoad{{Shard: 0}, {Shard: 1}, {Shard: 2}}, 0},
	}
	for _, tc := range cases {
		if got := LeastLoaded("/r", tc.loads); got != tc.want {
			t.Errorf("%s: LeastLoaded = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestPlacement pins registration-time placement: the hash default is
// stable, a custom hook is obeyed, and out-of-range hooks are rejected.
func TestPlacement(t *testing.T) {
	if a, b := hashShard("/zone0", 4), hashShard("/zone0", 4); a != b {
		t.Errorf("hashShard not stable: %d vs %d", a, b)
	}
	var placed []string
	s, err := NewSharded(core.Config{Engine: core.EngineJITOpt}, Config{
		Shards: 3,
		Place: func(route string, loads []ShardLoad) int {
			placed = append(placed, route)
			return 2
		},
	}, []TenantConfig{{Route: "/a"}, {Route: "/b"}})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	if len(placed) != 2 {
		t.Errorf("placement hook called %d times, want 2", len(placed))
	}
	for _, route := range []string{"/a", "/b"} {
		if got := s.ShardOf(route); got != 2 {
			t.Errorf("ShardOf(%s) = %d, want 2", route, got)
		}
	}

	_, err = NewSharded(core.Config{Engine: core.EngineJITOpt}, Config{
		Shards: 2,
		Place:  func(route string, loads []ShardLoad) int { return 5 },
	}, []TenantConfig{{Route: "/a"}})
	if err == nil {
		t.Error("out-of-range placement: want error")
	}
}

// TestNewShardedRejectsSharedHub: per-shard hubs are structural — a
// caller-supplied hub would silently serialize all shards' telemetry.
func TestNewShardedRejectsSharedHub(t *testing.T) {
	vm := newVM(t, core.Config{})
	_, err := NewSharded(core.Config{Engine: core.EngineJITOpt, Telemetry: vm.Tel},
		Config{Shards: 2}, []TenantConfig{{Route: "/a"}})
	if err == nil {
		t.Error("NewSharded with shared hub: want error")
	}
}
