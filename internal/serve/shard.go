package serve

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/interp"
	"repro/internal/jserv"
	"repro/internal/object"
	"repro/internal/telemetry"
)

// shard is one engine: a VM (scheduler, heap registry, GC workers), the
// subset of tenants placed on it, and the single goroutine that owns all
// of them. Everything below the submit/ctrl channels — queues, processes,
// supervisor state, the flight recorder — is engine-goroutine-only, which
// is what lets N shards run on N cores with no locks on the request path.
type shard struct {
	id  int
	vm  *core.VM
	cfg Config

	// tenants this shard currently owns; mutated only by the engine
	// goroutine (Migrate edits it via ctrl).
	tenants []*tenant

	// zygotes caches one checkpointed warm template per program shape
	// (handler class): the first Template tenant of a shape pays the full
	// init once, every start after that — first starts, supervisor
	// restarts, migrations landing here — forks a clone from the template
	// instead. Engine-goroutine-only (startTenant runs on it), except the
	// pre-loop Start path, which is single-threaded by construction.
	zygotes map[string]*core.Template

	submit   chan *request
	ctrl     chan func()
	quit     chan struct{}
	loopDone chan struct{}

	// Kernel-scope totals plus socket-layer counters (per shard).
	kReqs, kShed, kErrs, kOK *telemetry.Counter
	runErrs                  telemetry.Counter

	// Span plumbing: the shard hub's recorder plus cached kernel-scope
	// phase histograms (one Observe per completed request when spans on).
	spans                                        *telemetry.SpanRecorder
	kSpanQueue, kSpanMarshal, kSpanExec, kSpanGC *telemetry.Histogram
	kSpanTotal                                   *telemetry.Histogram
}

func newShard(id int, vm *core.VM, cfg Config) *shard {
	k := vm.Tel.Reg.Kernel()
	return &shard{
		id:       id,
		vm:       vm,
		cfg:      cfg,
		zygotes:  make(map[string]*core.Template),
		submit:   make(chan *request, cfg.SubmitBuffer),
		ctrl:     make(chan func(), 8),
		quit:     make(chan struct{}),
		loopDone: make(chan struct{}),
		kReqs:    k.Counter(telemetry.MServeRequests),
		kShed:    k.Counter(telemetry.MServeShed),
		kErrs:    k.Counter(telemetry.MServeErrors),
		kOK:      k.Counter(telemetry.MServeOK),

		spans:        vm.Tel.Spans,
		kSpanQueue:   k.Histogram(telemetry.MSpanQueueNs),
		kSpanMarshal: k.Histogram(telemetry.MSpanMarshalNs),
		kSpanExec:    k.Histogram(telemetry.MSpanExecCycles),
		kSpanGC:      k.Histogram(telemetry.MSpanGCCycles),
		kSpanTotal:   k.Histogram(telemetry.MSpanTotalNs),
	}
}

// do runs fn on the shard's engine goroutine and waits for it — the only
// way code outside the engine may touch engine-owned state (Migrate uses
// it for quiesce/drain/adopt steps). Returns an error instead of hanging
// if the engine has already exited.
func (sh *shard) do(fn func()) error {
	done := make(chan struct{})
	wrapped := func() {
		fn()
		close(done)
	}
	select {
	case sh.ctrl <- wrapped:
	case <-sh.loopDone:
		return fmt.Errorf("serve: shard %d engine stopped", sh.id)
	}
	select {
	case <-done:
		return nil
	case <-sh.loopDone:
		return fmt.Errorf("serve: shard %d engine stopped", sh.id)
	}
}

// startTenant (re)creates the tenant's process on this shard's VM — by
// full init (fresh memlimit, heap and namespace, the handler program) or,
// for Template tenants, by forking a checkpointed zygote — then spawns
// the daemon keep-alive thread (a process whose last thread exits is
// reclaimed, and request threads come and go).
func (sh *shard) startTenant(tn *tenant) error {
	var p *core.Process
	var err error
	if tn.cfg.Template {
		p, err = sh.forkTenant(tn)
	} else {
		p, err = sh.initTenant(tn)
	}
	if err != nil {
		return err
	}
	if _, err := p.SpawnDaemon(jserv.KeeperClass, "main()V"); err != nil {
		p.Kill(nil)
		return fmt.Errorf("serve: tenant %s keeper: %w", tn.cfg.Name, err)
	}
	arrCls, err := p.Loader.Class("[I")
	if err != nil {
		p.Kill(nil)
		return fmt.Errorf("serve: tenant %s: %w", tn.cfg.Name, err)
	}
	scope := sh.vm.Tel.Reg.Proc(int32(p.ID))
	scope.SetMeta("serve.route", tn.cfg.Route)
	scope.SetMeta("serve.role", tn.role())
	scope.SetMeta("serve.shard", fmt.Sprint(sh.id))
	origin := "init"
	if tn.cfg.Template {
		origin = "fork"
	}
	scope.SetMeta("serve.origin", origin)

	tn.mu.Lock()
	tn.proc = p
	tn.scope = scope
	tn.mu.Unlock()
	tn.arrCls = arrCls
	tn.down = false
	sh.publish(tn)
	return nil
}

// initTenant is the classic cold start: a fresh process that loads and
// initializes the handler and keeper programs from bytecode.
func (sh *shard) initTenant(tn *tenant) (*core.Process, error) {
	p, err := sh.vm.NewProcess(tn.cfg.Name, core.ProcessOptions{MemLimit: uint64(tn.cfg.MemKB) << 10})
	if err != nil {
		return nil, fmt.Errorf("serve: tenant %s: %w", tn.cfg.Name, err)
	}
	if err := p.Load(tn.handlerModule()); err != nil {
		p.Kill(nil)
		return nil, fmt.Errorf("serve: tenant %s: %w", tn.cfg.Name, err)
	}
	if err := p.Load(jserv.KeeperModule()); err != nil {
		p.Kill(nil)
		return nil, fmt.Errorf("serve: tenant %s: %w", tn.cfg.Name, err)
	}
	return p, nil
}

// forkTenant stamps out the tenant's incarnation from the shard's zygote
// template for its program shape, building (and caching) the template
// first if this is the shape's first start on this shard. The clone gets
// its own pid, heap and memlimit — charged in full for the copied bytes —
// and has never run a clinit: the warmup happened once, in the zygote.
func (sh *shard) forkTenant(tn *tenant) (*core.Process, error) {
	tpl, err := sh.zygote(tn)
	if err != nil {
		return nil, err
	}
	p, err := tpl.Fork(tn.cfg.Name, core.ProcessOptions{MemLimit: uint64(tn.cfg.MemKB) << 10})
	if err != nil {
		return nil, fmt.Errorf("serve: tenant %s: fork from %s: %w", tn.cfg.Name, tpl.Name, err)
	}
	return p, nil
}

// zygote returns the shard's warm template for tn's program shape,
// creating it on first use: warm a quiescent process (module loads run
// the clinits on the bootstrap thread; no scheduler threads are spawned),
// checkpoint it, and kill the origin — the template stands on its own.
func (sh *shard) zygote(tn *tenant) (*core.Template, error) {
	key := tn.handlerClass()
	if tpl, ok := sh.zygotes[key]; ok {
		return tpl, nil
	}
	origin, err := sh.vm.NewProcess("zygote-"+tn.cfg.Name, core.ProcessOptions{MemLimit: uint64(tn.cfg.MemKB) << 10})
	if err != nil {
		return nil, fmt.Errorf("serve: zygote for %s: %w", tn.cfg.Name, err)
	}
	if err := origin.Load(tn.handlerModule()); err != nil {
		origin.Kill(nil)
		return nil, fmt.Errorf("serve: zygote for %s: %w", tn.cfg.Name, err)
	}
	if err := origin.Load(jserv.KeeperModule()); err != nil {
		origin.Kill(nil)
		return nil, fmt.Errorf("serve: zygote for %s: %w", tn.cfg.Name, err)
	}
	tpl, err := sh.vm.Checkpoint(origin, key)
	if err != nil {
		origin.Kill(nil)
		return nil, fmt.Errorf("serve: zygote for %s: checkpoint: %w", tn.cfg.Name, err)
	}
	origin.Kill(nil) // threadless: reclaims inline
	sh.zygotes[key] = tpl
	return tpl, nil
}

// publish mirrors the tenant's lifetime aggregates into the current
// incarnation's telemetry scope.
func (sh *shard) publish(tn *tenant) {
	sc := tn.scope
	if sc == nil {
		return
	}
	sc.Counter(telemetry.MServeRequests) // ensure presence even when idle
	sc.Gauge(telemetry.MServeQueueDepth).Set(uint64(len(tn.queue)))
	sc.Gauge(telemetry.MServeInflight).Set(uint64(len(tn.inflight)))
}

// removeTenant drops tn from the shard's set (engine goroutine only;
// Migrate calls it via do after the drain).
func (sh *shard) removeTenant(tn *tenant) {
	for i, t := range sh.tenants {
		if t == tn {
			sh.tenants = append(sh.tenants[:i], sh.tenants[i+1:]...)
			return
		}
	}
}

// ---- engine loop ------------------------------------------------------

// loop is the engine goroutine: the only code that touches this shard's
// VM after Start. It alternates between admitting submissions, running
// control functions, dispatching queued requests into tenant processes,
// advancing the scheduler one slice, and reaping completions and deaths.
func (sh *shard) loop() {
	defer close(sh.loopDone)
	for {
		sh.drainCtrl()
		sh.drainSubmit()
		now := time.Now()
		sh.checkRestarts(now)
		running := sh.dispatchAll()
		if running > 0 {
			if err := sh.vm.Run(sh.cfg.SliceCycles); err != nil {
				sh.runErrs.Inc()
			}
		} else {
			sh.drainKilled()
		}
		sh.reapAll(time.Now())
		sh.expire(time.Now())
		select {
		case <-sh.quit:
			sh.shutdown()
			return
		default:
		}
		if sh.idle() {
			sh.idleWait()
		}
	}
}

func (sh *shard) drainCtrl() {
	for {
		select {
		case fn := <-sh.ctrl:
			fn()
		default:
			return
		}
	}
}

func (sh *shard) drainSubmit() {
	for {
		select {
		case r := <-sh.submit:
			sh.admit(r)
		default:
			return
		}
	}
}

// admit applies admission control: bounded queue, memlimit high-water.
func (sh *shard) admit(r *request) {
	tn := r.tn
	if cur := tn.sh.Load(); cur != sh {
		// Stale submit: the tenant migrated between the HTTP layer's shard
		// lookup and this drain. Forward to the owner; if its buffer is
		// full, answer here without touching engine-owned tenant state
		// (that belongs to the owner's goroutine now).
		select {
		case cur.submit <- r:
		default:
			tn.shed.Inc()
			sh.kShed.Inc()
			sh.respond(r, http.StatusServiceUnavailable, "shed: submit queue full\n")
		}
		return
	}
	tn.reqs.Inc()
	sh.kReqs.Inc()
	if tn.scope != nil {
		tn.scope.Counter(telemetry.MServeRequests).Inc()
	}
	if tn.migrating {
		sh.shed(r, "tenant migrating")
		return
	}
	if tn.down && tn.cfg.NoRestart {
		sh.shed(r, "tenant down")
		return
	}
	if len(tn.queue) >= tn.cfg.QueueMax {
		sh.shed(r, "queue full")
		return
	}
	if !tn.down && tn.cfg.ShedFraction > 0 {
		p := tn.proc
		if p != nil && p.State() == core.ProcRunning {
			// The high-water mark tracks the process' current memlimit,
			// not the static MemKB it started with: when the memory
			// balancer governs the shard, a tenant's ceiling moves every
			// rebalance round and admission control must move with it.
			high := tn.cfg.ShedFraction * float64(p.Limit.Max())
			if float64(p.MemUse()) > high {
				// Distinguish garbage from live data before refusing: a
				// collection (charged to the tenant) saves a well-behaved
				// neighbour; a hog's vector stays live and the shed stands.
				// The pause is attributed to the arriving request that
				// forced it.
				res := p.CollectAttributed(r.id)
				if r.span != nil {
					r.span.GCCycles += res.Cycles
				}
				if float64(p.MemUse()) > high {
					sh.shed(r, "memlimit saturated")
					return
				}
			}
		}
	}
	tn.queue = append(tn.queue, r)
	tn.qdepth.Set(uint64(len(tn.queue)))
	sh.publish(tn)
}

// shed refuses a request with 503 — the only answer admission control
// ever gives; shed requests never hang.
func (sh *shard) shed(r *request, reason string) {
	if r.done {
		return
	}
	tn := r.tn
	tn.shed.Inc()
	sh.kShed.Inc()
	if tn.scope != nil {
		tn.scope.Counter(telemetry.MServeShed).Inc()
	}
	sh.vm.Tel.Emit(telemetry.Event{
		Kind: telemetry.EvServeShed, Pid: tn.pid(),
		A: uint64(len(tn.queue)), Detail: tn.cfg.Route + ": " + reason,
	})
	sh.respond(r, http.StatusServiceUnavailable, "shed: "+reason+"\n")
	if !tn.down {
		// Shed storms on a live tenant are worth a post-mortem too
		// (throttled); the sheds of a death's queue drain are covered by
		// markDown's own dump.
		sh.flightOnShed(tn)
	}
}

// finishSpan closes the request's cost ledger and publishes it: the span
// goes to the recorder ring and each phase to the kernel and tenant phase
// histograms. Engine-goroutine normally; the socket-layer shed path calls
// it from an HTTP goroutine, which is safe because such a request never
// reached the engine (and recorder/histogram writes synchronize
// internally).
func (sh *shard) finishSpan(r *request, status int, detail string) {
	sp := r.span
	if sp == nil {
		return
	}
	r.span = nil
	now := time.Now()
	tn := r.tn
	sp.Pid = tn.pid()
	sp.Status = status
	if status != http.StatusOK {
		sp.Detail = detail
	}
	if !r.dispatchedAt.IsZero() {
		sp.ExecNs = now.Sub(r.dispatchedAt).Nanoseconds()
	} else if sp.QueueNs == 0 {
		// Never dispatched: its whole post-accept life was queue wait.
		sp.QueueNs = now.Sub(r.enq).Nanoseconds()
	}
	sp.GCNs = telemetry.CyclesToNs(sp.GCCycles)
	sp.TotalNs = now.Sub(r.t0).Nanoseconds()
	sh.spans.Record(*sp)

	sh.kSpanQueue.Observe(uint64(sp.QueueNs))
	sh.kSpanMarshal.Observe(uint64(sp.MarshalNs))
	sh.kSpanExec.Observe(sp.ExecCycles)
	sh.kSpanGC.Observe(sp.GCCycles)
	sh.kSpanTotal.Observe(uint64(sp.TotalNs))
	if sc := tn.currentScope(); sc != nil {
		sc.Histogram(telemetry.MSpanQueueNs).Observe(uint64(sp.QueueNs))
		sc.Histogram(telemetry.MSpanMarshalNs).Observe(uint64(sp.MarshalNs))
		sc.Histogram(telemetry.MSpanExecCycles).Observe(sp.ExecCycles)
		sc.Histogram(telemetry.MSpanGCCycles).Observe(sp.GCCycles)
		sc.Histogram(telemetry.MSpanTotalNs).Observe(uint64(sp.TotalNs))
	}
}

// respond delivers the single response for r. The channel is buffered, so
// the engine never blocks on a client that gave up.
func (sh *shard) respond(r *request, status int, body string) {
	if r.done {
		return
	}
	r.done = true
	sh.finishSpan(r, status, strings.TrimSuffix(body, "\n"))
	r.resp <- response{status: status, body: body, pid: r.tn.pid()}
}

// dispatchAll starts queued requests on every tenant with capacity and
// returns the total number of requests executing in the VM.
func (sh *shard) dispatchAll() int {
	running := 0
	for _, tn := range sh.tenants {
		sh.dispatch(tn)
		running += len(tn.inflight)
	}
	return running
}

// dispatch starts queued requests until the tenant is saturated: marshal
// the body into the tenant's heap, spawn a green thread on the handler.
func (sh *shard) dispatch(tn *tenant) {
	p := tn.proc
	if tn.down || p == nil || p.State() != core.ProcRunning {
		return
	}
	for len(tn.queue) > 0 && len(tn.inflight) < tn.cfg.MaxInflight {
		r := tn.queue[0]
		tn.queue = tn.queue[1:]
		if r.done { // expired while queued
			continue
		}
		var m0 time.Time
		if r.span != nil {
			m0 = time.Now()
			r.span.QueueNs = m0.Sub(r.enq).Nanoseconds()
		}
		arr, err := sh.marshal(tn, r)
		if err != nil {
			// The request wouldn't fit in the tenant's memlimit: that is
			// saturation, not failure — shed it.
			sh.shed(r, "request does not fit memlimit")
			continue
		}
		if r.span != nil {
			r.span.MarshalNs = time.Since(m0).Nanoseconds()
		}
		th, err := p.Spawn(tn.handlerClass(), jserv.NetHandleKey,
			interp.RefSlot(arr), interp.IntSlot(int64(tn.cfg.WorkUnits)))
		if err != nil {
			sh.shed(r, "tenant not accepting requests")
			continue
		}
		// Stamp the thread: the scheduler charges its quanta to the span
		// and the GC trigger charges pauses to the request id.
		th.ReqID = r.id
		th.Span = r.span
		r.th = th
		r.dispatchedAt = time.Now()
		tn.inflight = append(tn.inflight, r)
		if sh.vm.Cfg.Faults.Fire(faults.SiteServeDispatch) {
			// The fault plane kills the tenant mid-request — the
			// deterministic handle for testing the degradation path.
			p.Kill(core.ErrInjectedFault)
		}
	}
	tn.qdepth.Set(uint64(len(tn.queue)))
	tn.infl.Set(uint64(len(tn.inflight)))
	sh.publish(tn)
}

// marshal copies the request body into the tenant's heap as an int array:
// element 0 is the byte length, the rest the bytes packed four per int.
// The allocation is charged to the tenant's memlimit; a refusal is
// retried once after collecting the tenant's heap (the GC cycles are
// charged to the tenant too).
func (sh *shard) marshal(tn *tenant, r *request) (*object.Object, error) {
	body := r.body
	n := 1 + (len(body)+3)/4
	arr, err := tn.proc.Heap.AllocArray(tn.arrCls, n)
	if err != nil {
		res := tn.proc.CollectAttributed(r.id)
		if r.span != nil {
			r.span.GCCycles += res.Cycles
		}
		arr, err = tn.proc.Heap.AllocArray(tn.arrCls, n)
		if err != nil {
			return nil, err
		}
	}
	arr.Prims[0] = int64(len(body))
	for i, b := range body {
		arr.Prims[1+i/4] |= int64(b) << uint(8*(i%4))
	}
	return arr, nil
}

// reapAll collects finished request threads and detects tenant deaths.
func (sh *shard) reapAll(now time.Time) {
	for _, tn := range sh.tenants {
		sh.reap(tn, now)
	}
}

func (sh *shard) reap(tn *tenant, now time.Time) {
	if len(tn.inflight) > 0 {
		keep := tn.inflight[:0]
		for _, r := range tn.inflight {
			if r.th.Alive() {
				keep = append(keep, r)
				continue
			}
			if r.done { // already expired/shed; drop silently
				continue
			}
			if r.th.Err != nil || r.th.Uncaught != nil {
				sh.fail(r, "tenant died mid-request")
				continue
			}
			tn.okCount.Inc()
			sh.kOK.Inc()
			lat := uint64(now.Sub(r.enq).Nanoseconds())
			tn.latency.Observe(lat)
			if tn.scope != nil {
				tn.scope.Counter(telemetry.MServeOK).Inc()
				tn.scope.Histogram(telemetry.MServeLatency).Observe(lat)
			}
			tn.deaths = 0 // healthy again: reset the backoff ladder
			sh.respond(r, http.StatusOK, fmt.Sprintf("%s result=%d\n", tn.cfg.Name, r.th.Result.I))
		}
		tn.inflight = keep
		tn.infl.Set(uint64(len(tn.inflight)))
	}
	p := tn.proc
	if !tn.down && p != nil && p.State() != core.ProcRunning {
		sh.markDown(tn, now)
	}
}

// fail answers a request whose tenant died under it.
func (sh *shard) fail(r *request, reason string) {
	tn := r.tn
	tn.errs.Inc()
	sh.kErrs.Inc()
	if tn.scope != nil {
		tn.scope.Counter(telemetry.MServeErrors).Inc()
	}
	sh.respond(r, http.StatusBadGateway, "error: "+reason+"\n")
}

// markDown records a tenant death: queued requests are shed immediately
// (they never hang waiting on a corpse), in-flight ones fail as their
// threads die, and the supervisor schedules a restart with exponential
// backoff — the paper's administrator, automated. A quiesced (migrating)
// tenant's death is the expected end of its old incarnation: no
// post-mortem, no backoff, no restart here — the target shard restarts it.
func (sh *shard) markDown(tn *tenant, now time.Time) {
	tn.down = true
	for _, r := range tn.queue {
		sh.shed(r, "tenant down")
	}
	tn.queue = tn.queue[:0]
	tn.qdepth.Set(0)
	if tn.migrating {
		sh.publish(tn)
		return
	}
	tn.deaths++
	// Post-mortem after the queue drain, so the dump carries every span
	// this death produced (the 502s reaped above and the sheds just made).
	sh.dumpFlight(tn, "death")
	if !tn.cfg.NoRestart {
		backoff := sh.cfg.RestartBackoff << uint(tn.deaths-1)
		if backoff > sh.cfg.MaxBackoff || backoff <= 0 {
			backoff = sh.cfg.MaxBackoff
		}
		tn.nextRestart = now.Add(backoff)
	}
	sh.publish(tn)
}

// checkRestarts restarts dead tenants whose backoff expired. A lazy
// tenant with no queued demand stays cold — scale-from-zero means the
// supervisor works on demand, not on a timer.
func (sh *shard) checkRestarts(now time.Time) {
	for _, tn := range sh.tenants {
		if !tn.down || tn.migrating || tn.cfg.NoRestart || now.Before(tn.nextRestart) {
			continue
		}
		if tn.cfg.Lazy && len(tn.queue) == 0 {
			continue
		}
		deaths := tn.deaths
		if err := sh.startTenant(tn); err != nil {
			// Could not restart (e.g. memory still held by the dying
			// incarnation): back off again.
			tn.nextRestart = now.Add(sh.cfg.MaxBackoff)
			continue
		}
		tn.restarts.Inc()
		if tn.scope != nil {
			tn.scope.Counter(telemetry.MServeRestarts).Inc()
		}
		sh.vm.Tel.Emit(telemetry.Event{
			Kind: telemetry.EvServeRestart, Pid: tn.pid(),
			A: uint64(deaths), Detail: tn.cfg.Route,
		})
	}
}

// expire guarantees liveness: any request past its wall-clock deadline is
// answered now, whatever state it is in.
func (sh *shard) expire(now time.Time) {
	for _, tn := range sh.tenants {
		if len(tn.queue) > 0 {
			keep := tn.queue[:0]
			for _, r := range tn.queue {
				if now.After(r.deadline) {
					sh.shed(r, "deadline exceeded before dispatch")
					continue
				}
				keep = append(keep, r)
			}
			tn.queue = keep
			tn.qdepth.Set(uint64(len(tn.queue)))
		}
		for _, r := range tn.inflight {
			if !r.done && now.After(r.deadline) {
				// Still executing at the deadline is overload, not tenant
				// failure: answer 503 like any other shed. 502 stays
				// reserved for "the tenant died under this request".
				sh.shed(r, "deadline exceeded")
			}
		}
	}
}

// drainKilled steps the scheduler while dead tenants still have threads
// to unwind (a killed keeper must die for its process to reclaim). Only
// called when no requests are executing, so the steps are cheap.
func (sh *shard) drainKilled() {
	if !sh.unreclaimedDead() {
		return
	}
	for i := 0; i < 1024 && sh.vm.Sched.Live() > 0; i++ {
		progressed, err := sh.vm.Sched.Step()
		if err != nil || !progressed {
			return
		}
		if !sh.unreclaimedDead() {
			return
		}
	}
}

// unreclaimedDead reports whether any tenant's dead incarnation has not
// finished reclaiming.
func (sh *shard) unreclaimedDead() bool {
	for _, tn := range sh.tenants {
		p := tn.proc
		if p != nil && p.State() != core.ProcRunning && p.State() != core.ProcReclaimed {
			return true
		}
	}
	return false
}

// idle reports whether the engine has nothing actionable right now.
// Requests queued on a down tenant are not actionable — they wait on the
// restart timer, which idleWait turns into a timed sleep, not a spin.
func (sh *shard) idle() bool {
	if sh.unreclaimedDead() {
		return false
	}
	for _, tn := range sh.tenants {
		if len(tn.inflight) > 0 {
			return false
		}
		if len(tn.queue) > 0 && !tn.down {
			return false
		}
	}
	return true
}

// idleWait blocks until a submission, a control function, shutdown, or
// the next timed obligation: a down tenant's restart, or the deadline of
// a request queued behind one.
func (sh *shard) idleWait() {
	var timer <-chan time.Time
	if d, ok := sh.nextWake(); ok {
		timer = time.After(d)
	}
	select {
	case r := <-sh.submit:
		sh.admit(r)
	case fn := <-sh.ctrl:
		fn()
	case <-sh.quit:
	case <-timer:
	}
}

// nextWake computes the earliest supervisor or expiry deadline.
func (sh *shard) nextWake() (time.Duration, bool) {
	var at time.Time
	earlier := func(t time.Time) {
		if at.IsZero() || t.Before(at) {
			at = t
		}
	}
	for _, tn := range sh.tenants {
		if !tn.down {
			continue
		}
		// A cold lazy tenant has no timed obligation: it wakes on the
		// submission that queues its first request, not on a timer.
		if !tn.cfg.NoRestart && !tn.migrating && !(tn.cfg.Lazy && len(tn.queue) == 0) {
			earlier(tn.nextRestart)
		}
		for _, r := range tn.queue {
			earlier(r.deadline)
		}
	}
	if at.IsZero() {
		return 0, false
	}
	d := time.Until(at)
	if d < 0 {
		d = 0
	}
	return d, true
}

// shutdown fails everything pending, kills every tenant on this shard,
// and steps the scheduler until all processes reclaim — leaving the VM
// quiescent for post-teardown audits.
func (sh *shard) shutdown() {
	sh.drainCtrl()
	for {
		select {
		case r := <-sh.submit:
			sh.respond(r, http.StatusServiceUnavailable, "shed: server shutting down\n")
			continue
		default:
		}
		break
	}
	for _, tn := range sh.tenants {
		for _, r := range tn.queue {
			sh.respond(r, http.StatusServiceUnavailable, "shed: server shutting down\n")
		}
		tn.queue = nil
		for _, r := range tn.inflight {
			sh.respond(r, http.StatusServiceUnavailable, "shed: server shutting down\n")
		}
		if p := tn.proc; p != nil && p.State() == core.ProcRunning {
			p.Kill(nil)
		}
		tn.down = true
	}
	// Step every killed thread to its end; in-flight request threads and
	// keepers all die at their next safepoint.
	for i := 0; i < 1_000_000 && sh.vm.Sched.Live() > 0; i++ {
		progressed, err := sh.vm.Sched.Step()
		if err != nil || !progressed {
			break
		}
	}
	for _, tn := range sh.tenants {
		tn.inflight = nil
		tn.infl.Set(0)
		tn.qdepth.Set(0)
	}
	// Return the zygote templates' memory: nothing forks after shutdown,
	// and a clean teardown leaves the VM with only the kernel heap.
	for key, tpl := range sh.zygotes {
		_ = tpl.Release()
		delete(sh.zygotes, key)
	}
	// One last sweep: submissions that raced in while we were tearing
	// tenants down (Close's straggler goroutines cover anything later).
	for {
		select {
		case r := <-sh.submit:
			sh.respond(r, http.StatusServiceUnavailable, "shed: server shutting down\n")
			continue
		default:
		}
		break
	}
}
