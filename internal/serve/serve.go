// Package serve is the network serving plane: a TCP/HTTP front end that
// multiplexes real client traffic onto KaffeOS processes, one servlet
// process per tenant.
//
// The paper's servlet experiment (§5.2, Figure 4) drives requests
// in-process; here the same isolation story is told over an actual socket.
// Each URL route maps to a tenant: an isolated KaffeOS process with its own
// heap and memlimit running a request-driven servlet. An HTTP request is
// marshalled into the tenant's heap (the bytes are charged to its
// memlimit), handled by a fresh green thread of the tenant's process, and
// answered from the thread's result. Admission control sheds load with
// HTTP 503 when a tenant's request queue or memlimit is saturated; a
// tenant killed by its memlimit (the MemHog case) fails only its own
// in-flight requests, is restarted with exponential backoff, and never
// disturbs its neighbours.
//
// Concurrency model: the VM's green-thread scheduler is single-threaded by
// design (deterministic CPU accounting), so one engine goroutine owns the
// VM exclusively. OS-side socket goroutines talk to it through a bounded
// submit channel and per-request response channels; nothing else touches
// the scheduler, processes, or heaps. Every accepted request is guaranteed
// a response — completion, 5xx on tenant death, or 503 shed — so clients
// never hang on a killed servlet.
package serve

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/interp"
	"repro/internal/jserv"
	"repro/internal/object"
	"repro/internal/telemetry"
)

// TenantConfig describes one route → servlet-process mapping.
type TenantConfig struct {
	// Route is the URL path served by this tenant (e.g. "/zone0").
	Route string
	// Name is the process name (defaults to the route without the slash).
	Name string
	// Hog selects the request-driven MemHog program instead of the
	// well-behaved servlet.
	Hog bool
	// MemKB is the tenant process' memlimit in KiB (default 4096).
	MemKB int
	// QueueMax bounds the tenant's request queue; arrivals beyond it are
	// shed with 503 (default 64).
	QueueMax int
	// MaxInflight bounds the requests executing concurrently inside the
	// tenant process, one green thread each (default 8).
	MaxInflight int
	// WorkUnits is the per-request compute passed to the servlet's handle
	// method (default 100).
	WorkUnits int
	// ShedFraction sheds new requests once the tenant's accounted memory
	// exceeds this fraction of its memlimit (default 0.9). Negative
	// disables the high-water check entirely, leaving the memlimit kill
	// as the only backstop — the paper's MemHog scenario.
	ShedFraction float64
	// NoRestart disables the supervisor: a dead tenant stays dead and its
	// route sheds until the server closes.
	NoRestart bool
}

func (c *TenantConfig) fill() error {
	if c.Route == "" || c.Route[0] != '/' || c.Route == "/serve" || c.Route == "/healthz" {
		return fmt.Errorf("serve: invalid route %q", c.Route)
	}
	if c.Name == "" {
		c.Name = c.Route[1:]
	}
	if c.MemKB <= 0 {
		c.MemKB = 4096
	}
	if c.QueueMax <= 0 {
		c.QueueMax = 64
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 8
	}
	if c.WorkUnits <= 0 {
		c.WorkUnits = 100
	}
	if c.ShedFraction == 0 {
		c.ShedFraction = 0.9
	}
	return nil
}

// Config parameterizes the server.
type Config struct {
	// SliceCycles is the scheduler budget per engine-loop iteration
	// (default one quantum, 100k cycles = 0.2 virtual ms): small enough
	// that new arrivals are admitted promptly while requests execute.
	SliceCycles uint64
	// SubmitBuffer bounds the socket→engine handoff channel; a full
	// buffer sheds with 503 at the HTTP layer (default 256).
	SubmitBuffer int
	// RequestTimeout is the per-request wall-clock deadline. Whatever
	// happens to the tenant, the client hears back within it
	// (default 30s).
	RequestTimeout time.Duration
	// RestartBackoff is the supervisor's initial restart delay, doubled
	// per consecutive death up to MaxBackoff (defaults 10ms / 2s).
	RestartBackoff time.Duration
	MaxBackoff     time.Duration
	// MaxBody caps the request body size (default 1 MiB).
	MaxBody int64

	// FlightDir, when non-empty, enables the flight recorder: on every
	// tenant death (and on shed storms, throttled to one dump per
	// FlightMinGap) the engine writes a post-mortem JSON artifact there
	// with the tenant's last spans, its recent trace events, and its
	// lifetime counters.
	FlightDir string
	// FlightSpans / FlightEvents bound how many spans and events one dump
	// carries (defaults 256 / 512).
	FlightSpans  int
	FlightEvents int
	// FlightMinGap throttles shed-triggered dumps (default 5s). Death
	// dumps are never throttled.
	FlightMinGap time.Duration
}

func (c *Config) fill() {
	if c.SliceCycles == 0 {
		c.SliceCycles = 100_000
	}
	if c.SubmitBuffer <= 0 {
		c.SubmitBuffer = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.RestartBackoff <= 0 {
		c.RestartBackoff = 10 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.FlightSpans <= 0 {
		c.FlightSpans = 256
	}
	if c.FlightEvents <= 0 {
		c.FlightEvents = 512
	}
	if c.FlightMinGap <= 0 {
		c.FlightMinGap = 5 * time.Second
	}
}

// response is what the engine loop sends back to a waiting HTTP handler.
type response struct {
	status int
	body   string
	pid    int32
}

// request is one in-flight HTTP request crossing the socket/engine
// boundary. The engine loop owns every field except resp, which the HTTP
// handler drains; resp is buffered so the single send never blocks.
type request struct {
	tn       *tenant
	body     []byte
	resp     chan response
	enq      time.Time
	deadline time.Time
	th       *interp.Thread
	done     bool

	// Request-scoped cost attribution (nil/zero when spans are off).
	// id stamps the thread, its dispatch quanta, and the GC pauses it
	// triggers; span is the live ledger, owned by the engine goroutine
	// from submission until finishSpan copies it into the recorder.
	id           uint64
	span         *telemetry.Span
	t0           time.Time // wall-clock accept (body read start)
	dispatchedAt time.Time // wall-clock entry into the VM
}

// tenant is one route's servlet process plus its supervisor state. Queue
// and process fields belong to the engine goroutine; the aggregate
// counters are atomic so the HTTP introspection side reads them freely.
type tenant struct {
	cfg TenantConfig

	mu   sync.Mutex // guards proc swap (engine writes, HTTP reads)
	proc *core.Process

	queue    []*request
	inflight []*request
	arrCls   *object.Class // "[I" in the current incarnation's namespace

	down        bool
	deaths      int // consecutive deaths (resets on first OK after restart)
	nextRestart time.Time

	// Lifetime aggregates across restarts.
	reqs, okCount, shed, errs, restarts telemetry.Counter
	latency                             telemetry.Histogram
	qdepth, infl                        telemetry.Gauge

	// Mirrors into the current process incarnation's telemetry scope, so
	// `kaffeos ps`/`top` and /metrics show serving stats per pid.
	// Written in startTenant under mu (finishSpan may read from an HTTP
	// goroutine on the socket-shed path).
	scope *telemetry.Scope

	// Flight-recorder state (engine goroutine only).
	flightSeq      int
	flightLastShed time.Time
}

func (t *tenant) handlerClass() string {
	if t.cfg.Hog {
		return jserv.NetHogClass
	}
	return jserv.NetServletClass
}

// Server is the serving plane: listener, HTTP front end, engine loop.
type Server struct {
	vm      *core.VM
	cfg     Config
	tenants []*tenant
	byRoute map[string]*tenant

	submit   chan *request
	quit     chan struct{}
	loopDone chan struct{}

	ln   net.Listener
	hsrv *http.Server

	// Kernel-scope totals plus socket-layer counters.
	kReqs, kShed, kErrs, kOK *telemetry.Counter
	runErrs                  telemetry.Counter

	// Span plumbing: the VM hub's recorder plus cached kernel-scope phase
	// histograms (one Observe per completed request when spans are on).
	spans                                        *telemetry.SpanRecorder
	kSpanQueue, kSpanMarshal, kSpanExec, kSpanGC *telemetry.Histogram
	kSpanTotal                                   *telemetry.Histogram
}

// New builds a server over vm. The VM must be otherwise idle: once Start
// is called the engine loop owns its scheduler exclusively.
func New(vm *core.VM, cfg Config, tenants []TenantConfig) (*Server, error) {
	cfg.fill()
	if len(tenants) == 0 {
		return nil, fmt.Errorf("serve: no tenants")
	}
	k := vm.Tel.Reg.Kernel()
	s := &Server{
		vm:       vm,
		cfg:      cfg,
		byRoute:  make(map[string]*tenant),
		submit:   make(chan *request, cfg.SubmitBuffer),
		quit:     make(chan struct{}),
		loopDone: make(chan struct{}),
		kReqs:    k.Counter(telemetry.MServeRequests),
		kShed:    k.Counter(telemetry.MServeShed),
		kErrs:    k.Counter(telemetry.MServeErrors),
		kOK:      k.Counter(telemetry.MServeOK),

		spans:        vm.Tel.Spans,
		kSpanQueue:   k.Histogram(telemetry.MSpanQueueNs),
		kSpanMarshal: k.Histogram(telemetry.MSpanMarshalNs),
		kSpanExec:    k.Histogram(telemetry.MSpanExecCycles),
		kSpanGC:      k.Histogram(telemetry.MSpanGCCycles),
		kSpanTotal:   k.Histogram(telemetry.MSpanTotalNs),
	}
	for _, tc := range tenants {
		if err := tc.fill(); err != nil {
			return nil, err
		}
		if _, dup := s.byRoute[tc.Route]; dup {
			return nil, fmt.Errorf("serve: duplicate route %q", tc.Route)
		}
		tn := &tenant{cfg: tc}
		s.tenants = append(s.tenants, tn)
		s.byRoute[tc.Route] = tn
	}
	return s, nil
}

// Start spawns every tenant process, binds addr (":0" picks a free port),
// and launches the accept and engine loops. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	for _, tn := range s.tenants {
		if err := s.startTenant(tn); err != nil {
			return "", err
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.hsrv = &http.Server{Handler: s.handler()}
	go s.loop()
	go func() { _ = s.hsrv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Addr reports the bound listen address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops accepting, fails every pending request, kills and reclaims
// every tenant process, and waits for the engine loop to exit. The VM is
// quiescent afterwards, so callers may run authoritative audits.
func (s *Server) Close() error {
	if s.hsrv != nil {
		_ = s.hsrv.Close()
	}
	close(s.quit)
	<-s.loopDone
	return nil
}

// startTenant (re)creates the tenant's process: fresh memlimit, heap and
// namespace, the handler program, and a daemon keep-alive thread (a
// process whose last thread exits is reclaimed, and request threads come
// and go).
func (s *Server) startTenant(tn *tenant) error {
	p, err := s.vm.NewProcess(tn.cfg.Name, core.ProcessOptions{MemLimit: uint64(tn.cfg.MemKB) << 10})
	if err != nil {
		return fmt.Errorf("serve: tenant %s: %w", tn.cfg.Name, err)
	}
	mod := jserv.NetServletModule()
	if tn.cfg.Hog {
		mod = jserv.NetHogModule()
	}
	if err := p.Load(mod); err != nil {
		return fmt.Errorf("serve: tenant %s: %w", tn.cfg.Name, err)
	}
	if err := p.Load(jserv.KeeperModule()); err != nil {
		return fmt.Errorf("serve: tenant %s: %w", tn.cfg.Name, err)
	}
	if _, err := p.SpawnDaemon(jserv.KeeperClass, "main()V"); err != nil {
		return fmt.Errorf("serve: tenant %s keeper: %w", tn.cfg.Name, err)
	}
	arrCls, err := p.Loader.Class("[I")
	if err != nil {
		return fmt.Errorf("serve: tenant %s: %w", tn.cfg.Name, err)
	}
	scope := s.vm.Tel.Reg.Proc(int32(p.ID))
	scope.SetMeta("serve.route", tn.cfg.Route)
	role := "servlet"
	if tn.cfg.Hog {
		role = "memhog"
	}
	scope.SetMeta("serve.role", role)

	tn.mu.Lock()
	tn.proc = p
	tn.scope = scope
	tn.mu.Unlock()
	tn.arrCls = arrCls
	tn.down = false
	s.publish(tn)
	return nil
}

// proc reads the tenant's current process (HTTP-side safe).
func (t *tenant) currentProc() *core.Process {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.proc
}

// publish mirrors the tenant's lifetime aggregates into the current
// incarnation's telemetry scope.
func (s *Server) publish(tn *tenant) {
	sc := tn.scope
	if sc == nil {
		return
	}
	sc.Counter(telemetry.MServeRequests) // ensure presence even when idle
	sc.Gauge(telemetry.MServeQueueDepth).Set(uint64(len(tn.queue)))
	sc.Gauge(telemetry.MServeInflight).Set(uint64(len(tn.inflight)))
}

// ---- engine loop ------------------------------------------------------

// loop is the engine goroutine: the only code that touches the VM after
// Start. It alternates between admitting submissions, dispatching queued
// requests into tenant processes, advancing the scheduler one slice, and
// reaping completions and deaths.
func (s *Server) loop() {
	defer close(s.loopDone)
	for {
		s.drainSubmit()
		now := time.Now()
		s.checkRestarts(now)
		running := s.dispatchAll()
		if running > 0 {
			if err := s.vm.Run(s.cfg.SliceCycles); err != nil {
				s.runErrs.Inc()
			}
		} else {
			s.drainKilled()
		}
		s.reapAll(time.Now())
		s.expire(time.Now())
		select {
		case <-s.quit:
			s.shutdown()
			return
		default:
		}
		if s.idle() {
			s.idleWait()
		}
	}
}

func (s *Server) drainSubmit() {
	for {
		select {
		case r := <-s.submit:
			s.admit(r)
		default:
			return
		}
	}
}

// admit applies admission control: bounded queue, memlimit high-water.
func (s *Server) admit(r *request) {
	tn := r.tn
	tn.reqs.Inc()
	s.kReqs.Inc()
	if tn.scope != nil {
		tn.scope.Counter(telemetry.MServeRequests).Inc()
	}
	if tn.down && tn.cfg.NoRestart {
		s.shed(r, "tenant down")
		return
	}
	if len(tn.queue) >= tn.cfg.QueueMax {
		s.shed(r, "queue full")
		return
	}
	if !tn.down && tn.cfg.ShedFraction > 0 {
		p := tn.proc
		if p != nil && p.State() == core.ProcRunning {
			high := tn.cfg.ShedFraction * float64(uint64(tn.cfg.MemKB)<<10)
			if float64(p.MemUse()) > high {
				// Distinguish garbage from live data before refusing: a
				// collection (charged to the tenant) saves a well-behaved
				// neighbour; a hog's vector stays live and the shed stands.
				// The pause is attributed to the arriving request that
				// forced it.
				res := p.CollectAttributed(r.id)
				if r.span != nil {
					r.span.GCCycles += res.Cycles
				}
				if float64(p.MemUse()) > high {
					s.shed(r, "memlimit saturated")
					return
				}
			}
		}
	}
	tn.queue = append(tn.queue, r)
	tn.qdepth.Set(uint64(len(tn.queue)))
	s.publish(tn)
}

// shed refuses a request with 503 — the only answer admission control
// ever gives; shed requests never hang.
func (s *Server) shed(r *request, reason string) {
	if r.done {
		return
	}
	tn := r.tn
	tn.shed.Inc()
	s.kShed.Inc()
	if tn.scope != nil {
		tn.scope.Counter(telemetry.MServeShed).Inc()
	}
	s.vm.Tel.Emit(telemetry.Event{
		Kind: telemetry.EvServeShed, Pid: tn.pid(),
		A: uint64(len(tn.queue)), Detail: tn.cfg.Route + ": " + reason,
	})
	s.respond(r, http.StatusServiceUnavailable, "shed: "+reason+"\n")
	if !tn.down {
		// Shed storms on a live tenant are worth a post-mortem too
		// (throttled); the sheds of a death's queue drain are covered by
		// markDown's own dump.
		s.flightOnShed(tn)
	}
}

func (t *tenant) pid() int32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.proc == nil {
		return 0
	}
	return int32(t.proc.ID)
}

// currentScope reads the tenant's telemetry scope (safe from any
// goroutine; the engine swaps it on restart).
func (t *tenant) currentScope() *telemetry.Scope {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.scope
}

// finishSpan closes the request's cost ledger and publishes it: the span
// goes to the recorder ring and each phase to the kernel and tenant phase
// histograms. Engine-goroutine normally; the socket-layer shed path calls
// it from an HTTP goroutine, which is safe because such a request never
// reached the engine (and recorder/histogram writes synchronize
// internally).
func (s *Server) finishSpan(r *request, status int, detail string) {
	sp := r.span
	if sp == nil {
		return
	}
	r.span = nil
	now := time.Now()
	tn := r.tn
	sp.Pid = tn.pid()
	sp.Status = status
	if status != http.StatusOK {
		sp.Detail = detail
	}
	if !r.dispatchedAt.IsZero() {
		sp.ExecNs = now.Sub(r.dispatchedAt).Nanoseconds()
	} else if sp.QueueNs == 0 {
		// Never dispatched: its whole post-accept life was queue wait.
		sp.QueueNs = now.Sub(r.enq).Nanoseconds()
	}
	sp.GCNs = telemetry.CyclesToNs(sp.GCCycles)
	sp.TotalNs = now.Sub(r.t0).Nanoseconds()
	s.spans.Record(*sp)

	s.kSpanQueue.Observe(uint64(sp.QueueNs))
	s.kSpanMarshal.Observe(uint64(sp.MarshalNs))
	s.kSpanExec.Observe(sp.ExecCycles)
	s.kSpanGC.Observe(sp.GCCycles)
	s.kSpanTotal.Observe(uint64(sp.TotalNs))
	if sc := tn.currentScope(); sc != nil {
		sc.Histogram(telemetry.MSpanQueueNs).Observe(uint64(sp.QueueNs))
		sc.Histogram(telemetry.MSpanMarshalNs).Observe(uint64(sp.MarshalNs))
		sc.Histogram(telemetry.MSpanExecCycles).Observe(sp.ExecCycles)
		sc.Histogram(telemetry.MSpanGCCycles).Observe(sp.GCCycles)
		sc.Histogram(telemetry.MSpanTotalNs).Observe(uint64(sp.TotalNs))
	}
}

// respond delivers the single response for r. The channel is buffered, so
// the engine never blocks on a client that gave up.
func (s *Server) respond(r *request, status int, body string) {
	if r.done {
		return
	}
	r.done = true
	s.finishSpan(r, status, strings.TrimSuffix(body, "\n"))
	r.resp <- response{status: status, body: body, pid: r.tn.pid()}
}

// dispatchAll starts queued requests on every tenant with capacity and
// returns the total number of requests executing in the VM.
func (s *Server) dispatchAll() int {
	running := 0
	for _, tn := range s.tenants {
		s.dispatch(tn)
		running += len(tn.inflight)
	}
	return running
}

// dispatch starts queued requests until the tenant is saturated: marshal
// the body into the tenant's heap, spawn a green thread on the handler.
func (s *Server) dispatch(tn *tenant) {
	p := tn.proc
	if tn.down || p == nil || p.State() != core.ProcRunning {
		return
	}
	for len(tn.queue) > 0 && len(tn.inflight) < tn.cfg.MaxInflight {
		r := tn.queue[0]
		tn.queue = tn.queue[1:]
		if r.done { // expired while queued
			continue
		}
		var m0 time.Time
		if r.span != nil {
			m0 = time.Now()
			r.span.QueueNs = m0.Sub(r.enq).Nanoseconds()
		}
		arr, err := s.marshal(tn, r)
		if err != nil {
			// The request wouldn't fit in the tenant's memlimit: that is
			// saturation, not failure — shed it.
			s.shed(r, "request does not fit memlimit")
			continue
		}
		if r.span != nil {
			r.span.MarshalNs = time.Since(m0).Nanoseconds()
		}
		th, err := p.Spawn(tn.handlerClass(), jserv.NetHandleKey,
			interp.RefSlot(arr), interp.IntSlot(int64(tn.cfg.WorkUnits)))
		if err != nil {
			s.shed(r, "tenant not accepting requests")
			continue
		}
		// Stamp the thread: the scheduler charges its quanta to the span
		// and the GC trigger charges pauses to the request id.
		th.ReqID = r.id
		th.Span = r.span
		r.th = th
		r.dispatchedAt = time.Now()
		tn.inflight = append(tn.inflight, r)
		if s.vm.Cfg.Faults.Fire(faults.SiteServeDispatch) {
			// The fault plane kills the tenant mid-request — the
			// deterministic handle for testing the degradation path.
			p.Kill(core.ErrInjectedFault)
		}
	}
	tn.qdepth.Set(uint64(len(tn.queue)))
	tn.infl.Set(uint64(len(tn.inflight)))
	s.publish(tn)
}

// marshal copies the request body into the tenant's heap as an int array:
// element 0 is the byte length, the rest the bytes packed four per int.
// The allocation is charged to the tenant's memlimit; a refusal is
// retried once after collecting the tenant's heap (the GC cycles are
// charged to the tenant too).
func (s *Server) marshal(tn *tenant, r *request) (*object.Object, error) {
	body := r.body
	n := 1 + (len(body)+3)/4
	arr, err := tn.proc.Heap.AllocArray(tn.arrCls, n)
	if err != nil {
		res := tn.proc.CollectAttributed(r.id)
		if r.span != nil {
			r.span.GCCycles += res.Cycles
		}
		arr, err = tn.proc.Heap.AllocArray(tn.arrCls, n)
		if err != nil {
			return nil, err
		}
	}
	arr.Prims[0] = int64(len(body))
	for i, b := range body {
		arr.Prims[1+i/4] |= int64(b) << uint(8*(i%4))
	}
	return arr, nil
}

// reapAll collects finished request threads and detects tenant deaths.
func (s *Server) reapAll(now time.Time) {
	for _, tn := range s.tenants {
		s.reap(tn, now)
	}
}

func (s *Server) reap(tn *tenant, now time.Time) {
	if len(tn.inflight) > 0 {
		keep := tn.inflight[:0]
		for _, r := range tn.inflight {
			if r.th.Alive() {
				keep = append(keep, r)
				continue
			}
			if r.done { // already expired/shed; drop silently
				continue
			}
			if r.th.Err != nil || r.th.Uncaught != nil {
				s.fail(r, "tenant died mid-request")
				continue
			}
			tn.okCount.Inc()
			s.kOK.Inc()
			lat := uint64(now.Sub(r.enq).Nanoseconds())
			tn.latency.Observe(lat)
			if tn.scope != nil {
				tn.scope.Counter(telemetry.MServeOK).Inc()
				tn.scope.Histogram(telemetry.MServeLatency).Observe(lat)
			}
			tn.deaths = 0 // healthy again: reset the backoff ladder
			s.respond(r, http.StatusOK, fmt.Sprintf("%s result=%d\n", tn.cfg.Name, r.th.Result.I))
		}
		tn.inflight = keep
		tn.infl.Set(uint64(len(tn.inflight)))
	}
	p := tn.proc
	if !tn.down && p != nil && p.State() != core.ProcRunning {
		s.markDown(tn, now)
	}
}

// fail answers a request whose tenant died under it.
func (s *Server) fail(r *request, reason string) {
	tn := r.tn
	tn.errs.Inc()
	s.kErrs.Inc()
	if tn.scope != nil {
		tn.scope.Counter(telemetry.MServeErrors).Inc()
	}
	s.respond(r, http.StatusBadGateway, "error: "+reason+"\n")
}

// markDown records a tenant death: queued requests are shed immediately
// (they never hang waiting on a corpse), in-flight ones fail as their
// threads die, and the supervisor schedules a restart with exponential
// backoff — the paper's administrator, automated.
func (s *Server) markDown(tn *tenant, now time.Time) {
	tn.down = true
	tn.deaths++
	for _, r := range tn.queue {
		s.shed(r, "tenant down")
	}
	tn.queue = tn.queue[:0]
	tn.qdepth.Set(0)
	// Post-mortem after the queue drain, so the dump carries every span
	// this death produced (the 502s reaped above and the sheds just made).
	s.dumpFlight(tn, "death")
	if !tn.cfg.NoRestart {
		backoff := s.cfg.RestartBackoff << uint(tn.deaths-1)
		if backoff > s.cfg.MaxBackoff || backoff <= 0 {
			backoff = s.cfg.MaxBackoff
		}
		tn.nextRestart = now.Add(backoff)
	}
	s.publish(tn)
}

// checkRestarts restarts dead tenants whose backoff expired.
func (s *Server) checkRestarts(now time.Time) {
	for _, tn := range s.tenants {
		if !tn.down || tn.cfg.NoRestart || now.Before(tn.nextRestart) {
			continue
		}
		deaths := tn.deaths
		if err := s.startTenant(tn); err != nil {
			// Could not restart (e.g. memory still held by the dying
			// incarnation): back off again.
			tn.nextRestart = now.Add(s.cfg.MaxBackoff)
			continue
		}
		tn.restarts.Inc()
		if tn.scope != nil {
			tn.scope.Counter(telemetry.MServeRestarts).Inc()
		}
		s.vm.Tel.Emit(telemetry.Event{
			Kind: telemetry.EvServeRestart, Pid: tn.pid(),
			A: uint64(deaths), Detail: tn.cfg.Route,
		})
	}
}

// expire guarantees liveness: any request past its wall-clock deadline is
// answered now, whatever state it is in.
func (s *Server) expire(now time.Time) {
	for _, tn := range s.tenants {
		if len(tn.queue) > 0 {
			keep := tn.queue[:0]
			for _, r := range tn.queue {
				if now.After(r.deadline) {
					s.shed(r, "deadline exceeded before dispatch")
					continue
				}
				keep = append(keep, r)
			}
			tn.queue = keep
			tn.qdepth.Set(uint64(len(tn.queue)))
		}
		for _, r := range tn.inflight {
			if !r.done && now.After(r.deadline) {
				// Still executing at the deadline is overload, not tenant
				// failure: answer 503 like any other shed. 502 stays
				// reserved for "the tenant died under this request".
				s.shed(r, "deadline exceeded")
			}
		}
	}
}

// drainKilled steps the scheduler while dead tenants still have threads
// to unwind (a killed keeper must die for its process to reclaim). Only
// called when no requests are executing, so the steps are cheap.
func (s *Server) drainKilled() {
	if !s.unreclaimedDead() {
		return
	}
	for i := 0; i < 1024 && s.vm.Sched.Live() > 0; i++ {
		progressed, err := s.vm.Sched.Step()
		if err != nil || !progressed {
			return
		}
		if !s.unreclaimedDead() {
			return
		}
	}
}

// unreclaimedDead reports whether any tenant's dead incarnation has not
// finished reclaiming.
func (s *Server) unreclaimedDead() bool {
	for _, tn := range s.tenants {
		p := tn.proc
		if p != nil && p.State() != core.ProcRunning && p.State() != core.ProcReclaimed {
			return true
		}
	}
	return false
}

// idle reports whether the engine has nothing actionable right now.
// Requests queued on a down tenant are not actionable — they wait on the
// restart timer, which idleWait turns into a timed sleep, not a spin.
func (s *Server) idle() bool {
	if s.unreclaimedDead() {
		return false
	}
	for _, tn := range s.tenants {
		if len(tn.inflight) > 0 {
			return false
		}
		if len(tn.queue) > 0 && !tn.down {
			return false
		}
	}
	return true
}

// idleWait blocks until a submission, shutdown, or the next timed
// obligation: a down tenant's restart, or the deadline of a request
// queued behind one.
func (s *Server) idleWait() {
	var timer <-chan time.Time
	if d, ok := s.nextWake(); ok {
		timer = time.After(d)
	}
	select {
	case r := <-s.submit:
		s.admit(r)
	case <-s.quit:
	case <-timer:
	}
}

// nextWake computes the earliest supervisor or expiry deadline.
func (s *Server) nextWake() (time.Duration, bool) {
	var at time.Time
	earlier := func(t time.Time) {
		if at.IsZero() || t.Before(at) {
			at = t
		}
	}
	for _, tn := range s.tenants {
		if !tn.down {
			continue
		}
		if !tn.cfg.NoRestart {
			earlier(tn.nextRestart)
		}
		for _, r := range tn.queue {
			earlier(r.deadline)
		}
	}
	if at.IsZero() {
		return 0, false
	}
	d := time.Until(at)
	if d < 0 {
		d = 0
	}
	return d, true
}

// shutdown fails everything pending, kills every tenant, and steps the
// scheduler until all processes reclaim — leaving the VM quiescent for
// post-teardown audits.
func (s *Server) shutdown() {
	for {
		select {
		case r := <-s.submit:
			s.respond(r, http.StatusServiceUnavailable, "shed: server shutting down\n")
			continue
		default:
		}
		break
	}
	for _, tn := range s.tenants {
		for _, r := range tn.queue {
			s.respond(r, http.StatusServiceUnavailable, "shed: server shutting down\n")
		}
		tn.queue = nil
		for _, r := range tn.inflight {
			s.respond(r, http.StatusServiceUnavailable, "shed: server shutting down\n")
		}
		if p := tn.proc; p != nil && p.State() == core.ProcRunning {
			p.Kill(nil)
		}
		tn.down = true
	}
	// Step every killed thread to its end; in-flight request threads and
	// keepers all die at their next safepoint.
	for i := 0; i < 1_000_000 && s.vm.Sched.Live() > 0; i++ {
		progressed, err := s.vm.Sched.Step()
		if err != nil || !progressed {
			break
		}
	}
	for _, tn := range s.tenants {
		tn.inflight = nil
		tn.infl.Set(0)
		tn.qdepth.Set(0)
	}
}
