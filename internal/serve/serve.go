// Package serve is the network serving plane: a TCP/HTTP front end that
// multiplexes real client traffic onto KaffeOS processes, one servlet
// process per tenant, spread across N engine shards.
//
// The paper's servlet experiment (§5.2, Figure 4) drives requests
// in-process; here the same isolation story is told over an actual socket.
// Each URL route maps to a tenant: an isolated KaffeOS process with its own
// heap and memlimit running a request-driven servlet. An HTTP request is
// marshalled into the tenant's heap (the bytes are charged to its
// memlimit), handled by a fresh green thread of the tenant's process, and
// answered from the thread's result. Admission control sheds load with
// HTTP 503 when a tenant's request queue or memlimit is saturated; a
// tenant killed by its memlimit (the MemHog case) fails only its own
// in-flight requests, is restarted with exponential backoff, and never
// disturbs its neighbours.
//
// Concurrency model: a VM's green-thread scheduler is single-threaded by
// design (deterministic CPU accounting), so one engine goroutine owns each
// VM exclusively. To use more than one core, the plane runs N shards, each
// a full VM — scheduler, heap registry, GC workers, supervisor, flight
// recorder — with tenants assigned to shards at route registration (hash
// by default, load-aware via Config.Place) and an explicit migration path
// for hot tenants (Server.Migrate: quiesce, drain, restart on the target
// shard). OS-side socket goroutines talk to a shard through its bounded
// submit channel and per-request response channels; nothing else touches
// a shard's scheduler, processes, or heaps. Every accepted request is
// guaranteed a response — completion, 5xx on tenant death, or 503 shed —
// so clients never hang on a killed servlet.
package serve

import (
	"context"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/jserv"
	"repro/internal/object"
	"repro/internal/telemetry"
)

// TenantConfig describes one route → servlet-process mapping.
type TenantConfig struct {
	// Route is the URL path served by this tenant (e.g. "/zone0").
	Route string
	// Name is the process name (defaults to the route without the slash).
	Name string
	// Hog selects the request-driven MemHog program instead of the
	// well-behaved servlet.
	Hog bool
	// MemKB is the tenant process' memlimit in KiB (default 4096).
	MemKB int
	// QueueMax bounds the tenant's request queue; arrivals beyond it are
	// shed with 503 (default 64).
	QueueMax int
	// MaxInflight bounds the requests executing concurrently inside the
	// tenant process, one green thread each (default 8).
	MaxInflight int
	// WorkUnits is the per-request compute passed to the servlet's handle
	// method (default 100).
	WorkUnits int
	// ShedFraction sheds new requests once the tenant's accounted memory
	// exceeds this fraction of its memlimit (default 0.9). Negative
	// disables the high-water check entirely, leaving the memlimit kill
	// as the only backstop — the paper's MemHog scenario.
	ShedFraction float64
	// NoRestart disables the supervisor: a dead tenant stays dead and its
	// route sheds until the server closes.
	NoRestart bool
	// Warm selects the expensive-startup servlet: a <clinit>-built lookup
	// table that makes every cold start pay a long warmup — the workload
	// the template path exists for.
	Warm bool
	// Wide selects the compile-heavy servlet: a wide method surface with
	// no clinit, so cold start is dominated by per-process JIT
	// compilation — the workload the shared code cache
	// (core.Config.CodeCache) exists for.
	Wide bool
	// Template starts incarnations by forking a checkpointed zygote
	// instead of re-initializing from bytecode: the first start on a shard
	// warms a quiescent process once, checkpoints it into an immutable
	// template, and every (re)start after that stamps out a clone by heap
	// copy — microsecond cold starts, shared per program shape across the
	// shard's tenants.
	Template bool
	// Lazy defers the tenant's first start until a request arrives
	// (scale-from-zero): the route is registered but no process exists
	// until traffic shows up. Combined with Template, the first request
	// pays one fork, not a full init.
	Lazy bool
}

func (c *TenantConfig) fill() error {
	if c.Route == "" || c.Route[0] != '/' || c.Route == "/serve" || c.Route == "/healthz" {
		return fmt.Errorf("serve: invalid route %q", c.Route)
	}
	if c.Name == "" {
		c.Name = c.Route[1:]
	}
	if c.Name == "" {
		return fmt.Errorf("serve: route %q yields an empty tenant name", c.Route)
	}
	if c.MemKB <= 0 {
		c.MemKB = 4096
	}
	if c.QueueMax <= 0 {
		c.QueueMax = 64
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 8
	}
	if c.WorkUnits <= 0 {
		c.WorkUnits = 100
	}
	if c.ShedFraction == 0 {
		c.ShedFraction = 0.9
	}
	kinds := 0
	for _, k := range []bool{c.Hog, c.Warm, c.Wide} {
		if k {
			kinds++
		}
	}
	if kinds > 1 {
		return fmt.Errorf("serve: route %q: hog, warm, and wide are mutually exclusive", c.Route)
	}
	if c.Lazy && c.NoRestart {
		return fmt.Errorf("serve: route %q: lazy needs the supervisor (norestart set)", c.Route)
	}
	return nil
}

// ShardLoad is one shard's load summary, fed to the placement hook and
// reported by Server.Loads.
type ShardLoad struct {
	Shard int `json:"shard"`
	// Tenants currently assigned to the shard.
	Tenants int `json:"tenants"`
	// Queue and Inflight are the shard-wide sums of the per-tenant gauges.
	Queue    uint64 `json:"queue"`
	Inflight uint64 `json:"inflight"`
	// Cycles is the shard VM's virtual clock — total cycles it has
	// executed across all its tenants.
	Cycles uint64 `json:"cycles"`
}

// LeastLoaded is a placement hook that picks the shard with the least
// work: fewest queued+executing requests, then fewest tenants, then
// fewest executed cycles. Use it to spread tenants evenly at
// registration; the default (nil) placement hashes the route instead.
func LeastLoaded(route string, loads []ShardLoad) int {
	best := 0
	for i := 1; i < len(loads); i++ {
		a, b := loads[i], loads[best]
		qa, qb := a.Queue+a.Inflight, b.Queue+b.Inflight
		switch {
		case qa != qb:
			if qa < qb {
				best = i
			}
		case a.Tenants != b.Tenants:
			if a.Tenants < b.Tenants {
				best = i
			}
		case a.Cycles < b.Cycles:
			best = i
		}
	}
	return best
}

// hashShard is the default placement: stable FNV-1a hash of the route.
func hashShard(route string, n int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(route))
	return int(h.Sum32()) % n
}

// Config parameterizes the server.
type Config struct {
	// Shards is how many engine shards NewSharded builds, each with its
	// own VM, scheduler, heap registry and GC workers (default
	// GOMAXPROCS). New always uses exactly one shard — the caller's VM.
	Shards int
	// Place chooses the shard for each route at registration time; nil
	// hash-assigns routes (stable across restarts). See LeastLoaded.
	Place func(route string, loads []ShardLoad) int
	// SliceCycles is the scheduler budget per engine-loop iteration
	// (default one quantum, 100k cycles = 0.2 virtual ms): small enough
	// that new arrivals are admitted promptly while requests execute.
	SliceCycles uint64
	// SubmitBuffer bounds each shard's socket→engine handoff channel; a
	// full buffer sheds with 503 at the HTTP layer (default 256).
	SubmitBuffer int
	// RequestTimeout is the per-request wall-clock deadline. Whatever
	// happens to the tenant, the client hears back within it
	// (default 30s).
	RequestTimeout time.Duration
	// RestartBackoff is the supervisor's initial restart delay, doubled
	// per consecutive death up to MaxBackoff (defaults 10ms / 2s).
	RestartBackoff time.Duration
	MaxBackoff     time.Duration
	// MaxBody caps the request body size (default 1 MiB).
	MaxBody int64

	// MemBudget, when nonzero, turns on the MemBalancer controller: the
	// budget is split evenly across shards (each shard VM runs its own
	// controller over the tenants it hosts) and continuously redistributed
	// across tenant memlimits by the square-root rule, instead of every
	// tenant keeping its static MemKB ceiling. Tenant MemKB still sets the
	// initial limit a process starts with before the first rebalance round.
	MemBudget uint64

	// FlightDir, when non-empty, enables the flight recorder: on every
	// tenant death (and on shed storms, throttled to one dump per
	// FlightMinGap) the owning shard's engine writes a post-mortem JSON
	// artifact there with the tenant's last spans, its recent trace
	// events, and its lifetime counters.
	FlightDir string
	// FlightSpans / FlightEvents bound how many spans and events one dump
	// carries (defaults 256 / 512).
	FlightSpans  int
	FlightEvents int
	// FlightMinGap throttles shed-triggered dumps (default 5s). Death
	// dumps are never throttled.
	FlightMinGap time.Duration
}

func (c *Config) fill() {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.SliceCycles == 0 {
		c.SliceCycles = 100_000
	}
	if c.SubmitBuffer <= 0 {
		c.SubmitBuffer = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.RestartBackoff <= 0 {
		c.RestartBackoff = 10 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.FlightSpans <= 0 {
		c.FlightSpans = 256
	}
	if c.FlightEvents <= 0 {
		c.FlightEvents = 512
	}
	if c.FlightMinGap <= 0 {
		c.FlightMinGap = 5 * time.Second
	}
}

// response is what an engine loop sends back to a waiting HTTP handler.
type response struct {
	status int
	body   string
	pid    int32
}

// request is one in-flight HTTP request crossing the socket/engine
// boundary. The owning shard's engine loop owns every field except resp,
// which the HTTP handler drains; resp is buffered so the single send
// never blocks.
type request struct {
	tn       *tenant
	body     []byte
	resp     chan response
	enq      time.Time
	deadline time.Time
	th       *interp.Thread
	done     bool

	// Request-scoped cost attribution (nil/zero when spans are off).
	// id stamps the thread, its dispatch quanta, and the GC pauses it
	// triggers; span is the live ledger, owned by the engine goroutine
	// from submission until finishSpan copies it into the recorder.
	id           uint64
	span         *telemetry.Span
	t0           time.Time // wall-clock accept (body read start)
	dispatchedAt time.Time // wall-clock entry into the VM
}

// tenant is one route's servlet process plus its supervisor state. Queue,
// process and supervisor fields belong to the owning shard's engine
// goroutine; the aggregate counters are atomic so the HTTP introspection
// side reads them freely. The owning shard itself is an atomic pointer:
// the HTTP layer loads it to find the submit channel, and Migrate swaps
// it when the tenant moves.
type tenant struct {
	cfg TenantConfig
	sh  atomic.Pointer[shard]

	mu   sync.Mutex // guards proc/scope swap (engine writes, HTTP reads)
	proc *core.Process

	queue    []*request
	inflight []*request
	arrCls   *object.Class // "[I" in the current incarnation's namespace

	down        bool
	migrating   bool // quiesced for migration: shed arrivals, no restarts
	deaths      int  // consecutive deaths (resets on first OK after restart)
	nextRestart time.Time

	// Lifetime aggregates across restarts and migrations.
	reqs, okCount, shed, errs, restarts, migrations telemetry.Counter
	latency                                         telemetry.Histogram
	qdepth, infl                                    telemetry.Gauge

	// Mirrors into the current process incarnation's telemetry scope, so
	// `kaffeos ps`/`top` and /metrics show serving stats per pid.
	// Written in startTenant under mu (finishSpan may read from an HTTP
	// goroutine on the socket-shed path).
	scope *telemetry.Scope

	// Flight-recorder state (owning engine goroutine only).
	flightSeq      int
	flightLastShed time.Time
}

func (t *tenant) handlerClass() string {
	switch {
	case t.cfg.Hog:
		return jserv.NetHogClass
	case t.cfg.Warm:
		return jserv.NetWarmClass
	case t.cfg.Wide:
		return jserv.NetWideClass
	}
	return jserv.NetServletClass
}

func (t *tenant) handlerModule() *bytecode.Module {
	switch {
	case t.cfg.Hog:
		return jserv.NetHogModule()
	case t.cfg.Warm:
		return jserv.NetWarmModule()
	case t.cfg.Wide:
		return jserv.NetWideModule()
	}
	return jserv.NetServletModule()
}

func (t *tenant) role() string {
	switch {
	case t.cfg.Hog:
		return "memhog"
	case t.cfg.Warm:
		return "warm"
	case t.cfg.Wide:
		return "wide"
	}
	return "servlet"
}

// proc reads the tenant's current process (HTTP-side safe).
func (t *tenant) currentProc() *core.Process {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.proc
}

func (t *tenant) pid() int32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.proc == nil {
		return 0
	}
	return int32(t.proc.ID)
}

// currentScope reads the tenant's telemetry scope (safe from any
// goroutine; the owning engine swaps it on restart).
func (t *tenant) currentScope() *telemetry.Scope {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.scope
}

// Server is the serving plane: listener, HTTP front end, and N engine
// shards, each owning one VM. The Server itself only dispatches: requests
// go to the owning shard's submit channel, introspection aggregates
// across shards.
type Server struct {
	cfg     Config
	shards  []*shard
	tenants []*tenant
	byRoute map[string]*tenant

	ln   net.Listener
	hsrv *http.Server

	closing   atomic.Bool
	closeOnce sync.Once

	migrateMu sync.Mutex // serializes Migrate calls
}

// New builds a single-shard server over the caller's vm — the original
// serving-plane shape, kept for embedders, tests and benchmarks that want
// to own the VM. The VM must be otherwise idle: once Start is called the
// shard's engine loop owns its scheduler exclusively. Config.Shards is
// ignored (it is always 1 here); use NewSharded for a multi-core plane.
func New(vm *core.VM, cfg Config, tenants []TenantConfig) (*Server, error) {
	cfg.Shards = 1
	return newServer([]*core.VM{vm}, cfg, tenants)
}

// NewSharded builds a server with cfg.Shards engine shards (default
// GOMAXPROCS), creating one VM per shard from vmCfg. vmCfg.Telemetry must
// be nil: every shard gets its own hub, and the introspection surface
// (TelemetryHandler) aggregates them under a shard label. Tenants are
// assigned to shards by cfg.Place (hash of the route when nil).
func NewSharded(vmCfg core.Config, cfg Config, tenants []TenantConfig) (*Server, error) {
	cfg.fill()
	if vmCfg.Telemetry != nil {
		return nil, fmt.Errorf("serve: NewSharded needs one telemetry hub per shard; leave vmCfg.Telemetry nil")
	}
	if cfg.MemBudget > 0 {
		// Each shard VM runs its own controller over an even slice of the
		// budget; the engine goroutine drives it from the Charge hook, so
		// no cross-shard coordination is needed.
		vmCfg.MemBudget = cfg.MemBudget / uint64(cfg.Shards)
	}
	vms := make([]*core.VM, cfg.Shards)
	for i := range vms {
		vm, err := core.NewVM(vmCfg)
		if err != nil {
			return nil, fmt.Errorf("serve: shard %d VM: %w", i, err)
		}
		vms[i] = vm
	}
	return newServer(vms, cfg, tenants)
}

func newServer(vms []*core.VM, cfg Config, tenants []TenantConfig) (*Server, error) {
	cfg.fill()
	cfg.Shards = len(vms)
	if len(tenants) == 0 {
		return nil, fmt.Errorf("serve: no tenants")
	}
	s := &Server{
		cfg:     cfg,
		byRoute: make(map[string]*tenant),
	}
	for i, vm := range vms {
		s.shards = append(s.shards, newShard(i, vm, cfg))
	}
	// Placement: hash by default, cfg.Place for load-aware assignment.
	// Loads are rebuilt after each assignment so a least-loaded hook sees
	// the tenants it already placed.
	for _, tc := range tenants {
		if err := tc.fill(); err != nil {
			return nil, err
		}
		if _, dup := s.byRoute[tc.Route]; dup {
			return nil, fmt.Errorf("serve: duplicate route %q", tc.Route)
		}
		var idx int
		if cfg.Place != nil {
			idx = cfg.Place(tc.Route, s.Loads())
			if idx < 0 || idx >= len(s.shards) {
				return nil, fmt.Errorf("serve: placement hook put route %q on shard %d of %d", tc.Route, idx, len(s.shards))
			}
		} else {
			idx = hashShard(tc.Route, len(s.shards))
		}
		tn := &tenant{cfg: tc}
		tn.sh.Store(s.shards[idx])
		s.shards[idx].tenants = append(s.shards[idx].tenants, tn)
		s.tenants = append(s.tenants, tn)
		s.byRoute[tc.Route] = tn
	}
	return s, nil
}

// Start spawns every tenant process on its shard (lazy tenants stay cold
// until their first request), binds addr (":0" picks a free port), and
// launches the accept loop and one engine loop per shard. It returns the
// bound address.
func (s *Server) Start(addr string) (string, error) {
	for _, sh := range s.shards {
		for _, tn := range sh.tenants {
			if tn.cfg.Lazy {
				// Scale-from-zero: registered but cold. The supervisor
				// starts it when the first request queues up behind it
				// (the zero-valued nextRestart is already due).
				tn.down = true
				continue
			}
			if err := sh.startTenant(tn); err != nil {
				return "", err
			}
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.hsrv = &http.Server{Handler: s.handler()}
	for _, sh := range s.shards {
		go sh.loop()
	}
	go func() { _ = s.hsrv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Addr reports the bound listen address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shards reports how many engine shards the server runs.
func (s *Server) Shards() int { return len(s.shards) }

// VMs returns each shard's VM, indexed by shard. Callers use it to enable
// span recording or run per-shard audits; touching a VM's scheduler or
// processes while the server runs is not safe.
func (s *Server) VMs() []*core.VM {
	out := make([]*core.VM, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.vm
	}
	return out
}

// ShardOf reports which shard currently owns route (-1 if unknown).
func (s *Server) ShardOf(route string) int {
	tn := s.byRoute[route]
	if tn == nil {
		return -1
	}
	return tn.sh.Load().id
}

// Loads snapshots every shard's load (safe from any goroutine: gauges
// and the virtual clock are atomic, shard assignment is an atomic
// pointer).
func (s *Server) Loads() []ShardLoad {
	out := make([]ShardLoad, len(s.shards))
	for i, sh := range s.shards {
		out[i] = ShardLoad{Shard: i, Cycles: sh.vm.Sched.Now()}
	}
	for _, tn := range s.tenants {
		i := tn.sh.Load().id
		out[i].Tenants++
		out[i].Queue += tn.qdepth.Value()
		out[i].Inflight += tn.infl.Value()
	}
	return out
}

// Close stops accepting, fails every pending request, kills and reclaims
// every tenant process on every shard, and waits for all engine loops to
// exit. The VMs are quiescent afterwards, so callers may run
// authoritative audits. Safe to call more than once and during in-flight
// traffic: every request already accepted is answered (200/502/503),
// never hung.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.closing.Store(true)
		for _, sh := range s.shards {
			close(sh.quit)
		}
		for _, sh := range s.shards {
			<-sh.loopDone
		}
		// The engines are gone, but handler goroutines may have raced
		// requests into the submit buffers after the final engine drain.
		// Answer those stragglers 503 until the HTTP server has shut down
		// (all handlers returned), so no client ever hangs on Close.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for _, sh := range s.shards {
			wg.Add(1)
			go func(sh *shard) {
				defer wg.Done()
				for {
					select {
					case r := <-sh.submit:
						sh.respond(r, http.StatusServiceUnavailable, "shed: server shutting down\n")
					case <-stop:
						return
					}
				}
			}(sh)
		}
		if s.hsrv != nil {
			ctx, cancel := context.WithTimeout(context.Background(), s.cfg.RequestTimeout)
			if err := s.hsrv.Shutdown(ctx); err != nil {
				_ = s.hsrv.Close()
			}
			cancel()
		}
		close(stop)
		wg.Wait()
	})
	return nil
}

// Migrate moves a route's tenant to the target shard — the hot-tenant
// escape hatch. The protocol is quiesce → drain → move:
//
//  1. Quiesce: the owning shard marks the tenant migrating; new arrivals
//     shed 503 while already-admitted requests keep executing.
//  2. Drain: the shard finishes the tenant's queue and in-flight
//     requests (bounded by RequestTimeout — stragglers past it fail as
//     on any death), kills the old incarnation, and waits for its heap
//     to merge back.
//  3. Move: ownership swaps to the target shard, which starts a fresh
//     incarnation there; traffic resumes.
//
// The route is briefly unavailable (sheds, never hangs) while draining;
// neighbours on both shards are untouched. Blocks until the move
// completes.
func (s *Server) Migrate(route string, target int) error {
	s.migrateMu.Lock()
	defer s.migrateMu.Unlock()
	tn := s.byRoute[route]
	if tn == nil {
		return fmt.Errorf("serve: migrate: unknown route %q", route)
	}
	if target < 0 || target >= len(s.shards) {
		return fmt.Errorf("serve: migrate: no shard %d (have %d)", target, len(s.shards))
	}
	from, to := tn.sh.Load(), s.shards[target]
	if from == to {
		return nil
	}

	// 1. Quiesce on the owning shard.
	if err := from.do(func() { tn.migrating = true }); err != nil {
		return err
	}

	// 2. Drain: poll the owning engine until the tenant has no queued or
	// executing requests and its old incarnation is fully reclaimed. A
	// request that outlives RequestTimeout is answered by the engine's
	// expire pass, and killing the process fails any true straggler the
	// way any tenant death would.
	deadline := time.Now().Add(s.cfg.RequestTimeout + s.cfg.RequestTimeout/2)
	killed := false
	for {
		var quiet, reclaimed bool
		err := from.do(func() {
			quiet = len(tn.queue) == 0 && len(tn.inflight) == 0
			p := tn.proc
			if quiet && !killed {
				if p != nil && p.State() == core.ProcRunning {
					p.Kill(nil)
				}
				killed = true
			}
			reclaimed = p == nil || p.State() == core.ProcReclaimed
		})
		if err != nil {
			return err
		}
		if quiet && killed && reclaimed {
			break
		}
		if !quiet && time.Now().After(deadline) {
			// Stragglers past the deadline: kill the incarnation; the
			// engine's reap fails their requests 502 like any death.
			err := from.do(func() {
				if p := tn.proc; p != nil && p.State() == core.ProcRunning {
					p.Kill(nil)
				}
				killed = true
			})
			if err != nil {
				return err
			}
		}
		time.Sleep(200 * time.Microsecond)
	}
	if err := from.do(func() { from.removeTenant(tn) }); err != nil {
		return err
	}

	// 3. Move: swap ownership, adopt on the target, restart there.
	tn.sh.Store(to)
	var startErr error
	err := to.do(func() {
		to.tenants = append(to.tenants, tn)
		tn.migrating = false
		tn.deaths = 0
		startErr = to.startTenant(tn)
		if startErr != nil {
			// Adopted but not started: let the supervisor keep trying.
			tn.down = true
			tn.nextRestart = time.Now().Add(to.cfg.RestartBackoff)
		}
	})
	if err != nil {
		return err
	}
	tn.migrations.Inc()
	if sc := tn.currentScope(); sc != nil {
		sc.Counter(telemetry.MServeMigrations).Inc()
	}
	to.vm.Tel.Emit(telemetry.Event{
		Kind: telemetry.EvServeMigrate, Pid: tn.pid(),
		A: uint64(from.id), B: uint64(to.id), Detail: tn.cfg.Route,
	})
	return startErr
}
