package sched

import (
	"testing"

	"repro/internal/barrier"
	"repro/internal/bytecode"
	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/loader"
	"repro/internal/memlimit"
	"repro/internal/object"
	"repro/internal/vmaddr"
)

// world wires enough VM to run threads under the scheduler.
type world struct {
	t      *testing.T
	reg    *heap.Registry
	kernel *heap.Heap
	user   *heap.Heap
	proc   *loader.Loader
	env    *interp.Env
	nextID int32
}

const lib = `
.class java/lang/Object
.method <init> ()V
.locals 1
.stack 1
	return
.end
.end
.class java/lang/String
.end
.class java/lang/Throwable
.end
.class java/lang/Error extends java/lang/Throwable
.end
.class java/lang/ThreadDeath extends java/lang/Error
.end
`

func newWorld(t *testing.T) *world {
	t.Helper()
	space := vmaddr.NewSpace()
	reg := heap.NewRegistry(space, heap.Config{})
	root := memlimit.NewRoot("root", memlimit.Unlimited)
	w := &world{t: t, reg: reg}
	w.kernel = reg.NewHeap(heap.KindKernel, "kernel", root.MustChild("kernel", memlimit.Unlimited, false))
	w.user = reg.NewHeap(heap.KindUser, "user", root.MustChild("user", memlimit.Unlimited, false))
	shared := loader.NewShared(w.kernel)
	if err := shared.DefineModule(bytecode.MustAssemble(lib)); err != nil {
		t.Fatal(err)
	}
	w.proc = loader.NewProcess("p", w.user, shared)
	w.env = &interp.Env{
		Reg:            reg,
		Barrier:        barrier.NoBarrier,
		FastExceptions: true,
		ThinLocks:      true,
		Throwable: func(th *interp.Thread, cls, msg string) (*object.Object, error) {
			c, err := shared.Class(cls)
			if err != nil {
				return nil, err
			}
			o, err := w.kernel.Alloc(c)
			if err != nil {
				return nil, err
			}
			o.Data = msg
			return o, nil
		},
	}
	return w
}

func (w *world) define(src string) {
	w.t.Helper()
	if err := w.proc.DefineModule(bytecode.MustAssemble(src)); err != nil {
		w.t.Fatal(err)
	}
}

func (w *world) thread(cls, key string, args ...interp.Slot) *interp.Thread {
	w.t.Helper()
	c, err := w.proc.Class(cls)
	if err != nil {
		w.t.Fatal(err)
	}
	m, ok := c.MethodByKey(key)
	if !ok {
		w.t.Fatalf("no method %s", key)
	}
	w.nextID++
	th := &interp.Thread{ID: w.nextID, Env: w.env, Heap: w.user}
	if err := th.PushFrame(m, args); err != nil {
		w.t.Fatal(err)
	}
	return th
}

const spinSrc = `
.class t/T
.method count (I)I static
.locals 2
.stack 3
	iconst 0
	istore 1
L0:	iload 1
	iload 0
	if_icmpge L1
	iinc 1 1
	goto L0
L1:	iload 1
	ireturn
.end
.end`

func TestRoundRobinInterleaving(t *testing.T) {
	w := newWorld(t)
	w.define(spinSrc)
	s := New(interp.Interpreter{})
	s.Quantum = 2000

	order := make(map[int32][]uint64)
	s.Charge = func(th *interp.Thread, cycles uint64) {
		order[th.ID] = append(order[th.ID], cycles)
	}
	a := w.thread("t/T", "count(I)I", interp.IntSlot(5000))
	b := w.thread("t/T", "count(I)I", interp.IntSlot(5000))
	s.Add(a)
	s.Add(b)
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if a.Result.I != 5000 || b.Result.I != 5000 {
		t.Fatalf("results %d %d", a.Result.I, b.Result.I)
	}
	if len(order[a.ID]) < 2 || len(order[b.ID]) < 2 {
		t.Errorf("threads not interleaved: %d/%d dispatches", len(order[a.ID]), len(order[b.ID]))
	}
}

func TestVirtualClockAdvances(t *testing.T) {
	w := newWorld(t)
	w.define(spinSrc)
	s := New(interp.Interpreter{})
	th := w.thread("t/T", "count(I)I", interp.IntSlot(1000))
	s.Add(th)
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if s.Now() != th.Cycles {
		t.Errorf("clock %d != thread cycles %d", s.Now(), th.Cycles)
	}
	if s.Now() == 0 {
		t.Error("clock did not advance")
	}
}

func TestChargeAccountsAllCycles(t *testing.T) {
	w := newWorld(t)
	w.define(spinSrc)
	s := New(interp.Interpreter{})
	var charged uint64
	s.Charge = func(th *interp.Thread, cycles uint64) { charged += cycles }
	th := w.thread("t/T", "count(I)I", interp.IntSlot(2000))
	s.Add(th)
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if charged != th.Cycles {
		t.Errorf("charged %d, thread consumed %d", charged, th.Cycles)
	}
}

func TestOnExitCalled(t *testing.T) {
	w := newWorld(t)
	w.define(spinSrc)
	s := New(interp.Interpreter{})
	var exits []interp.StepResult
	s.OnExit = func(th *interp.Thread, res interp.StepResult) { exits = append(exits, res) }
	s.Add(w.thread("t/T", "count(I)I", interp.IntSlot(10)))
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(exits) != 1 || exits[0] != interp.StepFinished {
		t.Errorf("exits = %v", exits)
	}
}

func TestMonitorHandoffBetweenThreads(t *testing.T) {
	w := newWorld(t)
	w.define(`
.class t/M
.static lock Ljava/lang/Object;
.static hits I
.method init ()V static
.locals 0
.stack 2
	new java/lang/Object
	putstatic t/M.lock Ljava/lang/Object;
	return
.end
.method crit (I)I static
.locals 2
.stack 3
	iconst 0
	istore 1
	getstatic t/M.lock Ljava/lang/Object;
	monitorenter
L0:	iload 1
	iload 0
	if_icmpge L1
	getstatic t/M.hits I
	iconst 1
	iadd
	putstatic t/M.hits I
	iinc 1 1
	goto L0
L1:	getstatic t/M.lock Ljava/lang/Object;
	monitorexit
	getstatic t/M.hits I
	ireturn
.end
.end`)
	s := New(interp.Interpreter{})
	s.Quantum = 500 // force preemption inside the critical section
	init := w.thread("t/M", "init()V")
	s.Add(init)
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	a := w.thread("t/M", "crit(I)I", interp.IntSlot(300))
	b := w.thread("t/M", "crit(I)I", interp.IntSlot(300))
	s.Add(a)
	s.Add(b)
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if a.State != interp.StateFinished || b.State != interp.StateFinished {
		t.Fatalf("states %v %v (a.err=%v b.err=%v)", a.State, b.State, a.Err, b.Err)
	}
	// Total increments: both threads completed their loops.
	if b.Result.I != 600 && a.Result.I != 600 {
		t.Errorf("final hits: a=%d b=%d, one should be 600", a.Result.I, b.Result.I)
	}
}

func TestDeadlockDetected(t *testing.T) {
	w := newWorld(t)
	w.define(`
.class t/D
.method hold (Ljava/lang/Object;)V static
.locals 1
.stack 1
	aload 0
	monitorenter
L0:	goto L0
.end
.end`)
	objC, _ := w.proc.Class("java/lang/Object")
	lock, _ := w.user.Alloc(objC)

	s := New(interp.Interpreter{})
	s.Quantum = 1000
	a := w.thread("t/D", "hold(Ljava/lang/Object;)V", interp.RefSlot(lock))
	b := w.thread("t/D", "hold(Ljava/lang/Object;)V", interp.RefSlot(lock))
	s.Add(a)
	s.Add(b)
	// a holds the lock and spins forever; b blocks. Run with a budget: the
	// scheduler keeps going (a is runnable), so no deadlock yet.
	if err := s.Run(200_000); err != nil {
		t.Fatal(err)
	}
	if b.State != interp.StateBlocked {
		t.Fatalf("b state = %v, want blocked", b.State)
	}
	// Kill a (still holding the lock as it dies: unwinding releases it).
	a.Kill()
	if err := s.Run(400_000); err != nil {
		t.Fatal(err)
	}
	// b acquired the lock after a's death and now spins forever itself.
	if b.State != interp.StateRunnable && b.State != interp.StateBlocked {
		t.Fatalf("b state = %v", b.State)
	}
}

func TestKillParkedThread(t *testing.T) {
	w := newWorld(t)
	w.define(`
.class t/P
.method block (Ljava/lang/Object;)V static
.locals 1
.stack 1
	aload 0
	monitorenter
	return
.end
.end`)
	objC, _ := w.proc.Class("java/lang/Object")
	lock, _ := w.user.Alloc(objC)

	holder := &interp.Thread{ID: 99, Env: w.env, Heap: w.user}
	if !interp.MonitorFree(holder, lock) {
		t.Fatal("fresh monitor busy")
	}
	// Occupy the lock via another thread's bytecode.
	s := New(interp.Interpreter{})
	a := w.thread("t/P", "block(Ljava/lang/Object;)V", interp.RefSlot(lock))
	// a will grab the lock and return (releasing on frame pop).
	// Instead, grab it out-of-band so it stays held:
	hold := w.thread("t/P", "block(Ljava/lang/Object;)V", interp.RefSlot(lock))
	_ = hold
	var exits int
	s.OnExit = func(th *interp.Thread, res interp.StepResult) { exits++ }

	// Simpler: occupy with a fake owner id.
	lock.LockOwner = 1000
	lock.LockCount = 1

	s.Add(a)
	if _, err := s.Step(); err != nil {
		t.Fatal(err)
	}
	if a.State != interp.StateBlocked {
		t.Fatalf("a state = %v, want blocked", a.State)
	}
	a.Kill()
	if _, err := s.Step(); err != nil {
		t.Fatal(err)
	}
	if a.State != interp.StateKilled {
		t.Errorf("a state = %v, want killed", a.State)
	}
	if exits != 1 {
		t.Errorf("exits = %d", exits)
	}
}

func TestSleepAndVirtualTime(t *testing.T) {
	w := newWorld(t)
	w.define(spinSrc)
	s := New(interp.Interpreter{})
	th := w.thread("t/T", "count(I)I", interp.IntSlot(10))
	// Park it artificially before running.
	s.Sleep(th, 1_000_000)
	if th.State != interp.StateSleeping {
		t.Fatal("not sleeping")
	}
	s.sleeping = append(s.sleeping, th)
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if th.State != interp.StateFinished {
		t.Fatalf("state %v", th.State)
	}
	if s.Now() < 1_000_000 {
		t.Errorf("clock %d did not jump past wake time", s.Now())
	}
}

func TestRunBudget(t *testing.T) {
	w := newWorld(t)
	w.define(spinSrc)
	s := New(interp.Interpreter{})
	th := w.thread("t/T", "count(I)I", interp.IntSlot(100_000_000))
	s.Add(th)
	if err := s.Run(50_000); err != nil {
		t.Fatal(err)
	}
	if th.State == interp.StateFinished {
		t.Error("giant loop finished in tiny budget")
	}
	if s.Now() < 50_000 {
		t.Errorf("budget not consumed: %d", s.Now())
	}
}

func TestDaemonThreadsDontBlockRun(t *testing.T) {
	w := newWorld(t)
	w.define(`
.class t/F
.method forever ()V static
.locals 0
.stack 1
L0:	goto L0
.end
.end` + "\n" + spinSrc[1:])
	s := New(interp.Interpreter{})
	d := w.thread("t/F", "forever()V")
	d.Daemon = true
	m := w.thread("t/T", "count(I)I", interp.IntSlot(100))
	s.Add(d)
	s.Add(m)
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if m.State != interp.StateFinished {
		t.Fatalf("main thread state %v", m.State)
	}
	if d.State == interp.StateFinished {
		t.Error("daemon should still be spinning")
	}
}

func TestEngineForOverride(t *testing.T) {
	w := newWorld(t)
	w.define(spinSrc)
	jit := &interp.JIT{}
	s := New(interp.Interpreter{})
	s.EngineFor = func(t *interp.Thread) interp.Engine {
		if t.ID%2 == 0 {
			return jit
		}
		return nil // default
	}
	a := w.thread("t/T", "count(I)I", interp.IntSlot(500)) // ID 1: interp
	b := w.thread("t/T", "count(I)I", interp.IntSlot(500)) // ID 2: jit
	s.Add(a)
	s.Add(b)
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if a.Result.I != 500 || b.Result.I != 500 {
		t.Errorf("results %d/%d", a.Result.I, b.Result.I)
	}
	if a.Cycles != b.Cycles {
		t.Errorf("engines diverge on cycles: %d vs %d", a.Cycles, b.Cycles)
	}
}
