// Package sched implements the kvm green-thread scheduler.
//
// One host goroutine steps VM threads round-robin, one quantum of simulated
// cycles at a time. Because execution is deterministic and every simulated
// cycle is charged to exactly one thread (and hence one process), CPU
// accounting is precise — including cycles spent in the garbage collector,
// which the VM charges to the thread that triggered the collection (paper
// §2, "Precise memory and CPU accounting").
//
// The scheduler also maintains the virtual clock: simulated time advances
// exactly as fast as threads consume cycles. The paper's testbed was a 500
// MHz Pentium III, so 500,000 cycles make one virtual millisecond.
package sched

import (
	"fmt"
	"sync/atomic"

	"repro/internal/faults"
	"repro/internal/interp"
	"repro/internal/telemetry"
)

// CyclesPerMs converts simulated cycles to virtual milliseconds (500 MHz,
// matching the paper's measurement host).
const CyclesPerMs = 500_000

// DefaultQuantum is the scheduling quantum in cycles (0.2 virtual ms).
const DefaultQuantum = 100_000

// ExitFunc is called when a thread leaves the scheduler for good.
type ExitFunc func(t *interp.Thread, res interp.StepResult)

// ChargeFunc is called after every step with the cycles just consumed.
type ChargeFunc func(t *interp.Thread, cycles uint64)

// Scheduler runs threads.
type Scheduler struct {
	// Engine executes threads; per-thread overrides via EngineFor.
	Engine interp.Engine
	// EngineFor, when set, selects the engine per thread (processes may
	// run under different execution engines in one VM).
	EngineFor func(t *interp.Thread) interp.Engine
	// Quantum is the cycle budget per dispatch (DefaultQuantum if 0).
	Quantum int64
	// OnExit is invoked when a thread finishes or is killed.
	OnExit ExitFunc
	// Charge is invoked with consumed cycles after every dispatch.
	Charge ChargeFunc
	// Telemetry, when set, receives one EvDispatch event per dispatched
	// quantum (feeding the quantum-latency histogram) and EvYield events.
	Telemetry telemetry.Sink
	// Faults, when set, is the injection plane. SiteSchedPreempt dispatches
	// the chosen thread with a one-cycle quantum (forced preemption at its
	// next safepoint); SiteSchedKill invokes FaultKill on the chosen thread
	// just before dispatch, so the Nth dispatch is the Nth kill point —
	// "kill at safepoint N" in plan terms.
	Faults *faults.Plane
	// FaultKill is the SiteSchedKill action (the VM wires it to kill the
	// thread's owning process).
	FaultKill func(t *interp.Thread)

	runq     []*interp.Thread
	blocked  []*interp.Thread
	sleeping []*interp.Thread
	waiting  []*interp.Thread // Object.wait / parked threads
	// now is the virtual clock in cycles. Written only by the scheduling
	// goroutine; atomic so telemetry pollers can read it concurrently.
	now   atomic.Uint64
	steps uint64
}

// New returns a scheduler using eng for every thread.
func New(eng interp.Engine) *Scheduler {
	return &Scheduler{Engine: eng}
}

// Now reports elapsed virtual cycles. Safe to call from any goroutine.
func (s *Scheduler) Now() uint64 { return s.now.Load() }

// NowMillis reports elapsed virtual milliseconds.
func (s *Scheduler) NowMillis() uint64 { return s.now.Load() / CyclesPerMs }

// Steps reports the number of dispatches performed.
func (s *Scheduler) Steps() uint64 { return s.steps }

// Add enqueues a thread for execution.
func (s *Scheduler) Add(t *interp.Thread) {
	if t.State == interp.StateNew {
		t.State = interp.StateRunnable
	}
	s.runq = append(s.runq, t)
}

// Live reports how many threads the scheduler still tracks.
func (s *Scheduler) Live() int {
	return len(s.runq) + len(s.blocked) + len(s.sleeping) + len(s.waiting)
}

// LiveNonDaemon reports tracked threads that keep the VM alive.
func (s *Scheduler) LiveNonDaemon() int {
	n := 0
	for _, q := range [][]*interp.Thread{s.runq, s.blocked, s.sleeping, s.waiting} {
		for _, t := range q {
			if !t.Daemon {
				n++
			}
		}
	}
	return n
}

// Sleep parks the calling thread until the virtual clock reaches wakeAt
// cycles. Intended for use by natives: they set the state and the
// scheduler moves the thread to the sleep queue after the step returns.
func (s *Scheduler) Sleep(t *interp.Thread, cycles uint64) {
	t.WakeAt = s.now.Load() + cycles
	t.State = interp.StateSleeping
}

// Yield makes the thread give up the remainder of its quantum.
func (s *Scheduler) Yield(t *interp.Thread) {
	t.Fuel = 0
	if s.Telemetry != nil {
		s.Telemetry.Emit(telemetry.Event{
			Kind: telemetry.EvYield,
			Pid:  telemetry.PidOf(t.Owner),
			A:    uint64(t.ID),
		})
	}
}

func (s *Scheduler) engineFor(t *interp.Thread) interp.Engine {
	if s.EngineFor != nil {
		if e := s.EngineFor(t); e != nil {
			return e
		}
	}
	return s.Engine
}

// quantum returns the configured quantum.
func (s *Scheduler) quantum() int64 {
	if s.Quantum > 0 {
		return s.Quantum
	}
	return DefaultQuantum
}

// ErrDeadlock is returned by Run when threads remain but none can proceed.
type ErrDeadlock struct {
	Blocked int
}

func (e *ErrDeadlock) Error() string {
	return fmt.Sprintf("sched: deadlock: %d thread(s) blocked with empty run queue", e.Blocked)
}

// Step dispatches one thread for one quantum. It reports whether any
// thread was dispatched.
func (s *Scheduler) Step() (bool, error) {
	s.wake()
	if len(s.runq) == 0 {
		// Idle: advance the clock to the earliest deadline among sleepers
		// and timed waiters.
		var earliest uint64
		for _, t := range s.sleeping {
			if earliest == 0 || t.WakeAt < earliest {
				earliest = t.WakeAt
			}
		}
		for _, t := range s.waiting {
			if t.WakeAt > 0 && (earliest == 0 || t.WakeAt < earliest) {
				earliest = t.WakeAt
			}
		}
		if earliest > s.now.Load() {
			s.now.Store(earliest)
			s.wake()
		}
		if len(s.runq) == 0 {
			blockedish := len(s.blocked)
			for _, t := range s.waiting {
				if t.WakeAt == 0 {
					blockedish++
				}
			}
			if blockedish > 0 {
				return false, &ErrDeadlock{Blocked: blockedish}
			}
			return false, nil
		}
	}

	t := s.runq[0]
	s.runq = s.runq[1:]

	// A kill posted while the thread was queued and parked is honoured
	// here without running it.
	if t.KillPending() && !t.InKernel() && len(t.Frames) == 0 {
		t.Kill()
	}

	if s.Faults.Fire(faults.SiteSchedKill) && s.FaultKill != nil {
		s.FaultKill(t)
	}
	t.Fuel = s.quantum()
	if s.Faults.Fire(faults.SiteSchedPreempt) {
		t.Fuel = 1
	}
	before := t.Cycles
	res := s.engineFor(t).Step(t)
	consumed := t.Cycles - before
	s.now.Add(consumed)
	s.steps++
	if s.Charge != nil {
		s.Charge(t, consumed)
	}
	if t.Span != nil {
		// Request-cost attribution: the quantum's cycles are charged to the
		// request the thread is serving. Nil for every non-serving thread,
		// so the hot-path cost when spans are off is this one comparison.
		t.Span.ExecCycles += consumed
		t.Span.Quanta++
	}
	if s.Telemetry != nil {
		s.Telemetry.Emit(telemetry.Event{
			Kind: telemetry.EvDispatch,
			Pid:  telemetry.PidOf(t.Owner),
			Req:  t.ReqID,
			A:    consumed,
			B:    uint64(res),
		})
	}

	switch res {
	case interp.StepYielded:
		s.runq = append(s.runq, t)
	case interp.StepBlocked:
		s.blocked = append(s.blocked, t)
	case interp.StepSleeping:
		s.sleeping = append(s.sleeping, t)
	case interp.StepWaiting:
		s.waiting = append(s.waiting, t)
	case interp.StepFinished, interp.StepKilled:
		if s.OnExit != nil {
			s.OnExit(t, res)
		}
	}
	return true, nil
}

// wake moves unblocked and expired threads back to the run queue.
func (s *Scheduler) wake() {
	if len(s.blocked) > 0 {
		keep := s.blocked[:0]
		for _, t := range s.blocked {
			switch {
			case t.KillPending() && !t.InKernel():
				// Killing a parked thread unwinds it immediately; it never
				// acquires the monitor it was waiting for.
				t.ForcePark()
				if s.OnExit != nil {
					s.OnExit(t, interp.StepKilled)
				}
			case t.BlockedOn == nil || interp.MonitorFree(t, t.BlockedOn):
				t.BlockedOn = nil
				t.State = interp.StateRunnable
				s.runq = append(s.runq, t)
			default:
				keep = append(keep, t)
			}
		}
		s.blocked = keep
	}
	if len(s.sleeping) > 0 {
		keep := s.sleeping[:0]
		for _, t := range s.sleeping {
			switch {
			case t.KillPending() && !t.InKernel():
				t.ForcePark()
				if s.OnExit != nil {
					s.OnExit(t, interp.StepKilled)
				}
			case t.WakeAt <= s.now.Load():
				t.State = interp.StateRunnable
				s.runq = append(s.runq, t)
			default:
				keep = append(keep, t)
			}
		}
		s.sleeping = keep
	}
	if len(s.waiting) > 0 {
		keep := s.waiting[:0]
		for _, t := range s.waiting {
			switch {
			case t.KillPending() && !t.InKernel():
				interp.CancelWait(t)
				t.ForcePark()
				if s.OnExit != nil {
					s.OnExit(t, interp.StepKilled)
				}
			case func() bool {
				// A timed wait whose deadline passed self-notifies.
				if t.WakeAt > 0 && t.WakeAt <= s.now.Load() {
					t.Notified = true
					t.WakeAt = 0
				}
				return interp.ReacquireReady(t)
			}():
				if err := interp.Resume(t); err != nil {
					// Monitor snatched between check and resume (cannot
					// happen single-threaded, but stay safe): keep waiting.
					keep = append(keep, t)
					continue
				}
				s.runq = append(s.runq, t)
			default:
				keep = append(keep, t)
			}
		}
		s.waiting = keep
	}
}

// Run dispatches until no non-daemon threads remain, the cycle budget is
// exhausted (0 = unlimited), or a deadlock is detected. The budget is
// relative to the clock at the call, so repeated calls each run a slice.
func (s *Scheduler) Run(maxCycles uint64) error {
	start := s.now.Load()
	for s.LiveNonDaemon() > 0 {
		if maxCycles > 0 && s.now.Load()-start >= maxCycles {
			return nil
		}
		progressed, err := s.Step()
		if err != nil {
			return err
		}
		if !progressed {
			return nil
		}
	}
	return nil
}

// RunUntil dispatches until cond reports true, no threads remain, or the
// scheduler deadlocks.
func (s *Scheduler) RunUntil(cond func() bool) error {
	for !cond() && s.LiveNonDaemon() > 0 {
		progressed, err := s.Step()
		if err != nil {
			return err
		}
		if !progressed {
			return nil
		}
	}
	return nil
}
