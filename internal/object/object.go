package object

import (
	"fmt"
	"math"

	"repro/internal/vmaddr"
)

// Flags are per-object state bits.
type Flags uint8

const (
	// FlagMark is the GC mark bit, owned by the heap's collector.
	FlagMark Flags = 1 << iota
	// FlagDead marks a swept object; any access is a use-after-free bug in
	// the VM itself and faults loudly.
	FlagDead
	// FlagFrozen marks objects on a frozen shared heap: reference fields
	// are immutable (paper §2, "Direct sharing between processes").
	FlagFrozen
	// FlagEntry marks synthetic entry-item bookkeeping objects.
	FlagEntry
)

// Object is one heap object. Primitive fields live in Prims (doubles as
// IEEE bits), reference fields in Refs; the class layout assigns slots.
// Arrays use the same two slices as element storage.
type Object struct {
	Class *Class
	// Addr is the object's simulated address; its page identifies the
	// owning heap via the space's page table.
	Addr uint64
	// Heap is the owning heap's ID, stored in the header. The "Heap
	// Pointer" write barrier reads this field (25 cycles); the "No Heap
	// Pointer" barrier ignores it and resolves Addr through the page table
	// (41 cycles).
	Heap  vmaddr.HeapID
	Flags Flags
	// Hash is the identity hash code, assigned at allocation.
	Hash int32

	// Thin lock state (interp manages; heavyweight monitors hang off Heavy).
	LockOwner int32
	LockCount int32
	Heavy     any

	Refs  []*Object
	Prims []int64

	// Data holds a native payload for library classes implemented in Go
	// (e.g. the character data of java/lang/String).
	Data any
	// SizeExtra is extra accounted bytes beyond the class layout (native
	// payload storage such as string characters).
	SizeExtra uint32
}

// IsArray reports whether o is an array instance.
func (o *Object) IsArray() bool { return o.Class.IsArray }

// ArrayLen reports the element count of an array object.
func (o *Object) ArrayLen() int {
	if o.Class.ElemDesc.Ref() {
		return len(o.Refs)
	}
	return len(o.Prims)
}

// Marked reports the GC mark bit.
func (o *Object) Marked() bool { return o.Flags&FlagMark != 0 }

// SetMark sets or clears the GC mark bit.
func (o *Object) SetMark(v bool) {
	if v {
		o.Flags |= FlagMark
	} else {
		o.Flags &^= FlagMark
	}
}

// Dead reports whether o has been swept.
func (o *Object) Dead() bool { return o.Flags&FlagDead != 0 }

// Frozen reports whether o's reference fields are immutable.
func (o *Object) Frozen() bool { return o.Flags&FlagFrozen != 0 }

// GetRef reads reference slot i.
func (o *Object) GetRef(i int) *Object { return o.Refs[i] }

// SetRef writes reference slot i WITHOUT a write barrier. Only the heap
// internals (GC, merging) and loader bootstrap may use it; mutator stores
// go through the barrier package.
func (o *Object) SetRef(i int, v *Object) { o.Refs[i] = v }

// GetPrim reads primitive slot i.
func (o *Object) GetPrim(i int) int64 { return o.Prims[i] }

// SetPrim writes primitive slot i. Primitive stores never need a barrier.
func (o *Object) SetPrim(i int, v int64) { o.Prims[i] = v }

// GetDouble reads primitive slot i as a float64.
func (o *Object) GetDouble(i int) float64 { return math.Float64frombits(uint64(o.Prims[i])) }

// SetDouble writes primitive slot i as a float64.
func (o *Object) SetDouble(i int, v float64) { o.Prims[i] = int64(math.Float64bits(v)) }

func (o *Object) String() string {
	if o == nil {
		return "null"
	}
	return fmt.Sprintf("%s@%x", o.Class.Name, o.Addr)
}

// DataCloner is implemented by native payloads stored in Object.Data that
// carry mutable state. A process fork deep-copies objects between heaps;
// payloads implementing DataCloner are cloned through it so the copy does
// not alias the original's state. Payloads that do not implement it (and
// are not one of the copier's known builtin shapes) are shared by
// reference, which is only correct for immutable values such as strings.
type DataCloner interface {
	// CloneData returns an independent copy of the payload.
	CloneData() any
}

// New creates an instance of c with zeroed fields. The caller (a heap) is
// responsible for address assignment, accounting, and registration; this
// only builds the storage.
func New(c *Class) *Object {
	o := &Object{Class: c}
	if c.NumRefSlots > 0 {
		o.Refs = make([]*Object, c.NumRefSlots)
	}
	if c.NumPrimSlot > 0 {
		o.Prims = make([]int64, c.NumPrimSlot)
	}
	return o
}

// NewArray creates an array instance of class c (which must be an array
// class) with n zeroed elements.
func NewArray(c *Class, n int) *Object {
	o := &Object{Class: c}
	if c.ElemDesc.Ref() {
		o.Refs = make([]*Object, n)
	} else {
		o.Prims = make([]int64, n)
	}
	return o
}

// Sever clears every reference slot of o. The sweep phase calls it so the
// host garbage collector can reclaim unreachable subgraphs even if a stray
// VM-internal pointer to o itself survives.
func (o *Object) Sever() {
	for i := range o.Refs {
		o.Refs[i] = nil
	}
	o.Data = nil
	o.Heavy = nil
	o.Flags |= FlagDead
}
