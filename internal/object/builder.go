package object

import (
	"fmt"

	"repro/internal/bytecode"
)

// NativeKey is the registration key for a native method implementation.
func NativeKey(class, name, sig string) string {
	return class + "." + name + sig
}

// ModuleBuilder assembles a bytecode.Module plus a table of native method
// implementations, for library code defined from Go (the mini class
// library, test fixtures, workload scaffolding).
type ModuleBuilder struct {
	Module  *bytecode.Module
	Natives map[string]any
	// Kernel lists native keys whose methods must run in kernel mode.
	Kernel map[string]bool
}

// NewModuleBuilder returns an empty builder.
func NewModuleBuilder() *ModuleBuilder {
	return &ModuleBuilder{
		Module:  &bytecode.Module{},
		Natives: make(map[string]any),
		Kernel:  make(map[string]bool),
	}
}

// AddSource assembles textual bytecode and merges it into the module. It
// panics on error: builder inputs are compiled into the binary and a
// failure is a programming bug.
func (b *ModuleBuilder) AddSource(src string) *ModuleBuilder {
	m, err := bytecode.Assemble(src)
	if err != nil {
		panic(fmt.Sprintf("object: builder source: %v", err))
	}
	if err := b.Module.Merge(m); err != nil {
		panic(fmt.Sprintf("object: builder merge: %v", err))
	}
	return b
}

// Class starts a class definition.
func (b *ModuleBuilder) Class(name, super string) *ClassBuilder {
	if _, dup := b.Module.Class(name); dup {
		panic(fmt.Sprintf("object: duplicate class %q in builder", name))
	}
	def := &bytecode.ClassDef{Name: name, Super: super}
	b.Module.Classes = append(b.Module.Classes, def)
	return &ClassBuilder{b: b, def: def}
}

// ClassBuilder accumulates one class.
type ClassBuilder struct {
	b   *ModuleBuilder
	def *bytecode.ClassDef
}

// Field adds an instance field.
func (cb *ClassBuilder) Field(name, desc string) *ClassBuilder {
	return cb.field(name, desc, false)
}

// StaticField adds a static field.
func (cb *ClassBuilder) StaticField(name, desc string) *ClassBuilder {
	return cb.field(name, desc, true)
}

func (cb *ClassBuilder) field(name, desc string, static bool) *ClassBuilder {
	if _, err := bytecode.ParseDesc(desc); err != nil {
		panic(fmt.Sprintf("object: class %s field %s: %v", cb.def.Name, name, err))
	}
	cb.def.Fields = append(cb.def.Fields, bytecode.FieldDef{Name: name, Desc: desc, Static: static})
	return cb
}

// Native adds a native method implemented by fn (the execution engine
// defines the concrete function type).
func (cb *ClassBuilder) Native(name, sig string, static bool, fn any) *ClassBuilder {
	if _, err := bytecode.ParseSig(sig); err != nil {
		panic(fmt.Sprintf("object: class %s native %s: %v", cb.def.Name, name, err))
	}
	cb.def.Methods = append(cb.def.Methods, &bytecode.MethodDef{
		Name: name, Sig: sig, Static: static,
	})
	cb.b.Natives[NativeKey(cb.def.Name, name, sig)] = fn
	return cb
}

// KernelNative adds a native method that runs in kernel mode.
func (cb *ClassBuilder) KernelNative(name, sig string, static bool, fn any) *ClassBuilder {
	cb.Native(name, sig, static, fn)
	cb.b.Kernel[NativeKey(cb.def.Name, name, sig)] = true
	return cb
}

// Method adds a bytecode method whose body is given in assembler syntax
// (instructions and .catch/.locals/.stack directives only).
func (cb *ClassBuilder) Method(name, sig string, static bool, body string) *ClassBuilder {
	kw := ""
	if static {
		kw = " static"
	}
	src := ".class " + cb.def.Name + "\n.method " + name + " " + sig + kw + "\n" + body + "\n.end\n.end\n"
	m, err := bytecode.Assemble(src)
	if err != nil {
		panic(fmt.Sprintf("object: class %s method %s: %v", cb.def.Name, name, err))
	}
	c, _ := m.Class(cb.def.Name)
	cb.def.Methods = append(cb.def.Methods, c.Methods[0])
	return cb
}

// DefaultInit adds the canonical no-argument constructor that just calls
// the superclass constructor.
func (cb *ClassBuilder) DefaultInit() *ClassBuilder {
	super := cb.def.Super
	if super == "" {
		return cb.Method("<init>", "()V", false, "\t.locals 1\n\t.stack 1\n\treturn")
	}
	return cb.Method("<init>", "()V", false,
		"\t.locals 1\n\t.stack 1\n\taload 0\n\tinvokespecial "+super+".<init> ()V\n\treturn")
}
