package object

import (
	"testing"

	"repro/internal/bytecode"
)

func TestNewInstanceStorage(t *testing.T) {
	root := rootClass(t)
	c := defClass(t, ".class t/P\n.field x I\n.field y D\n.field s Ljava/lang/Object;\n.end", "t/P", root)
	o := New(c)
	if len(o.Prims) != 2 || len(o.Refs) != 1 {
		t.Fatalf("storage prims=%d refs=%d", len(o.Prims), len(o.Refs))
	}
	x, _ := c.FieldByName("x")
	y, _ := c.FieldByName("y")
	o.SetPrim(x.Slot, 42)
	o.SetDouble(y.Slot, 3.25)
	if o.GetPrim(x.Slot) != 42 {
		t.Error("prim round trip failed")
	}
	if o.GetDouble(y.Slot) != 3.25 {
		t.Error("double round trip failed")
	}
}

func TestArrayStorage(t *testing.T) {
	root := rootClass(t)
	d, _ := bytecode.ParseDesc("I")
	ia := NewArrayClass("[I", d, nil, root, "test")
	arr := NewArray(ia, 5)
	if !arr.IsArray() || arr.ArrayLen() != 5 {
		t.Fatalf("array len = %d", arr.ArrayLen())
	}
	rd, _ := bytecode.ParseDesc("Ljava/lang/Object;")
	oa := NewArrayClass("[Ljava/lang/Object;", rd, root, root, "test")
	rarr := NewArray(oa, 3)
	if rarr.ArrayLen() != 3 || len(rarr.Refs) != 3 {
		t.Fatalf("ref array storage = %d", len(rarr.Refs))
	}
}

func TestMarkFlags(t *testing.T) {
	root := rootClass(t)
	o := New(root)
	if o.Marked() {
		t.Error("fresh object marked")
	}
	o.SetMark(true)
	if !o.Marked() {
		t.Error("mark not set")
	}
	o.SetMark(false)
	if o.Marked() {
		t.Error("mark not cleared")
	}
}

func TestSever(t *testing.T) {
	root := rootClass(t)
	c := defClass(t, ".class t/N\n.field next Lt/N;\n.end", "t/N", root)
	a, b := New(c), New(c)
	a.SetRef(0, b)
	a.Data = "payload"
	a.Sever()
	if a.GetRef(0) != nil {
		t.Error("sever left reference")
	}
	if a.Data != nil {
		t.Error("sever left data")
	}
	if !a.Dead() {
		t.Error("severed object not dead")
	}
}

func TestStringer(t *testing.T) {
	var o *Object
	if o.String() != "null" {
		t.Errorf("nil String = %q", o.String())
	}
}

func TestBuilderEndToEnd(t *testing.T) {
	b := NewModuleBuilder()
	fn := func() {}
	b.Class("lib/Sys", "java/lang/Object").
		StaticField("count", "I").
		KernelNative("exit", "(I)V", true, fn).
		Method("inc", "()V", true, `
	.locals 0
	.stack 2
	getstatic lib/Sys.count I
	iconst 1
	iadd
	putstatic lib/Sys.count I
	return`)
	b.Class("lib/Obj", "java/lang/Object").
		Field("v", "I").
		DefaultInit()

	def, ok := b.Module.Class("lib/Sys")
	if !ok {
		t.Fatal("class missing from module")
	}
	if len(def.Methods) != 2 {
		t.Fatalf("methods = %d, want 2", len(def.Methods))
	}
	key := NativeKey("lib/Sys", "exit", "(I)V")
	if b.Natives[key] == nil {
		t.Error("native not registered")
	}
	if !b.Kernel[key] {
		t.Error("kernel flag not set")
	}
	if err := bytecode.VerifyModule(b.Module); err != nil {
		// Native methods have no code; skip them in verification here.
		t.Logf("verify: %v (expected for natives)", err)
	}
	objDef, _ := b.Module.Class("lib/Obj")
	if len(objDef.Methods) != 1 || objDef.Methods[0].Name != "<init>" {
		t.Fatalf("DefaultInit methods = %+v", objDef.Methods)
	}
}

func TestBuilderPanicsOnBadInput(t *testing.T) {
	cases := []func(){
		func() { NewModuleBuilder().Class("a/B", "").Field("f", "Q") },
		func() { NewModuleBuilder().Class("a/B", "").Native("m", "(Q)V", true, nil) },
		func() { NewModuleBuilder().Class("a/B", "").Method("m", "()V", true, "bogus_op") },
		func() {
			b := NewModuleBuilder()
			b.Class("a/B", "")
			b.Class("a/B", "")
		},
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestAddMethodDuplicate(t *testing.T) {
	root := rootClass(t)
	md := &bytecode.MethodDef{Name: "m", Sig: "()V", Code: &bytecode.Code{}, MaxStack: 1, MaxLocals: 1}
	c, err := NewClass(&bytecode.ClassDef{Name: "t/D"}, root, "test", false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddMethod(md, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddMethod(md, nil); err == nil {
		t.Fatal("duplicate method accepted")
	}
}

func TestMethodRetFlags(t *testing.T) {
	root := rootClass(t)
	c, _ := NewClass(&bytecode.ClassDef{Name: "t/R"}, root, "test", false)
	mv, _ := c.AddMethod(&bytecode.MethodDef{Name: "v", Sig: "()V", Code: &bytecode.Code{}}, nil)
	mi, _ := c.AddMethod(&bytecode.MethodDef{Name: "i", Sig: "(ID)I", Code: &bytecode.Code{}}, nil)
	mr, _ := c.AddMethod(&bytecode.MethodDef{Name: "r", Sig: "()Ljava/lang/Object;", Code: &bytecode.Code{}}, nil)
	if mv.HasRet || mv.NArgs != 0 {
		t.Errorf("void method flags: %+v", mv)
	}
	if !mi.HasRet || mi.RetRef || mi.NArgs != 2 {
		t.Errorf("int method flags: %+v", mi)
	}
	if !mr.HasRet || !mr.RetRef {
		t.Errorf("ref method flags: %+v", mr)
	}
}
