package object

import (
	"testing"

	"repro/internal/bytecode"
)

func defClass(t *testing.T, src, name string, super *Class) *Class {
	t.Helper()
	m, err := bytecode.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	def, ok := m.Class(name)
	if !ok {
		t.Fatalf("class %s not in source", name)
	}
	c, err := NewClass(def, super, "test", false)
	if err != nil {
		t.Fatal(err)
	}
	for _, md := range def.Methods {
		if _, err := c.AddMethod(md, nil); err != nil {
			t.Fatal(err)
		}
	}
	c.BuildVTable()
	return c
}

func rootClass(t *testing.T) *Class {
	return defClass(t, `
.class java/lang/Object
.method <init> ()V
.locals 1
	return
.end
.method toString ()Ljava/lang/String;
.locals 1
	aconst_null
	areturn
.end
.end`, "java/lang/Object", nil)
}

func TestClassLayout(t *testing.T) {
	root := rootClass(t)
	c := defClass(t, `
.class t/Point
.field x I
.field y I
.field label Ljava/lang/String;
.static origin Lt/Point;
.static hits J
.end`, "t/Point", root)

	if c.NumPrimSlot != 2 || c.NumRefSlots != 1 {
		t.Fatalf("slots prim=%d ref=%d, want 2/1", c.NumPrimSlot, c.NumRefSlots)
	}
	// header 8 + x 4 + y 4 + label 8 = 24, aligned 24.
	if c.InstanceBytes != 24 {
		t.Errorf("InstanceBytes = %d, want 24", c.InstanceBytes)
	}
	x, ok := c.FieldByName("x")
	if !ok || x.Ref || x.Slot != 0 {
		t.Errorf("field x = %+v", x)
	}
	label, ok := c.FieldByName("label")
	if !ok || !label.Ref || label.Slot != 0 {
		t.Errorf("field label = %+v", label)
	}
	if c.StaticsClass == nil {
		t.Fatal("no statics class despite static fields")
	}
	if c.StaticsClass.NumRefSlots != 1 || c.StaticsClass.NumPrimSlot != 1 {
		t.Errorf("statics slots = %d/%d", c.StaticsClass.NumRefSlots, c.StaticsClass.NumPrimSlot)
	}
	origin, ok := c.StaticByName("origin")
	if !ok || !origin.Static || !origin.Ref {
		t.Errorf("static origin = %+v", origin)
	}
}

func TestInheritedLayout(t *testing.T) {
	root := rootClass(t)
	base := defClass(t, ".class t/A\n.field a I\n.field r Ljava/lang/Object;\n.end", "t/A", root)
	sub := defClass(t, ".class t/B extends t/A\n.field b I\n.field s Ljava/lang/Object;\n.end", "t/B", base)

	if sub.NumPrimSlot != 2 || sub.NumRefSlots != 2 {
		t.Fatalf("sub slots = %d/%d, want 2/2", sub.NumPrimSlot, sub.NumRefSlots)
	}
	a, _ := sub.FieldByName("a")
	b, _ := sub.FieldByName("b")
	if a.Slot != 0 || b.Slot != 1 {
		t.Errorf("slots a=%d b=%d, want 0,1", a.Slot, b.Slot)
	}
	if sub.InstanceBytes <= base.InstanceBytes {
		t.Errorf("sub bytes %d <= base bytes %d", sub.InstanceBytes, base.InstanceBytes)
	}
}

func TestFieldShadowRejected(t *testing.T) {
	root := rootClass(t)
	base := defClass(t, ".class t/A\n.field a I\n.end", "t/A", root)
	m, _ := bytecode.Assemble(".class t/B extends t/A\n.field a I\n.end")
	def, _ := m.Class("t/B")
	if _, err := NewClass(def, base, "test", false); err == nil {
		t.Fatal("shadowing field accepted")
	}
}

func TestVTableOverride(t *testing.T) {
	root := rootClass(t)
	base := defClass(t, `
.class t/A
.method run ()V
.locals 1
	return
.end
.method only ()V
.locals 1
	return
.end
.end`, "t/A", root)
	sub := defClass(t, `
.class t/B extends t/A
.method run ()V
.locals 1
	return
.end
.method extra ()V
.locals 1
	return
.end
.end`, "t/B", base)

	if len(sub.VTable) != len(base.VTable)+1 {
		t.Fatalf("vtable sizes base=%d sub=%d", len(base.VTable), len(sub.VTable))
	}
	baseRun, _ := base.DeclaredMethod("run()V")
	subRun, _ := sub.DeclaredMethod("run()V")
	if baseRun.VIndex != subRun.VIndex {
		t.Errorf("override at different vtable slots: %d vs %d", baseRun.VIndex, subRun.VIndex)
	}
	if sub.VTable[subRun.VIndex] != subRun {
		t.Error("sub vtable does not hold the override")
	}
	if base.VTable[baseRun.VIndex] != baseRun {
		t.Error("base vtable clobbered by subclass")
	}
	extra, _ := sub.DeclaredMethod("extra()V")
	if extra.VIndex != len(sub.VTable)-1 {
		t.Errorf("new virtual method at %d, want tail", extra.VIndex)
	}
}

func TestConstructorsNotVirtual(t *testing.T) {
	root := rootClass(t)
	init, _ := root.DeclaredMethod("<init>()V")
	if init.VIndex != -1 {
		t.Errorf("<init> has vtable index %d", init.VIndex)
	}
	if !init.IsSpecial() {
		t.Error("<init> not special")
	}
}

func TestSubclassAndAssignable(t *testing.T) {
	root := rootClass(t)
	a := defClass(t, ".class t/A\n.end", "t/A", root)
	b := defClass(t, ".class t/B extends t/A\n.end", "t/B", a)
	c := defClass(t, ".class t/C\n.end", "t/C", root)

	if !b.IsSubclassOf(a) || !b.IsSubclassOf(root) || a.IsSubclassOf(b) {
		t.Error("subclass relation wrong")
	}
	if !a.AssignableFrom(b) || a.AssignableFrom(c) {
		t.Error("assignability wrong")
	}
	if !a.AssignableFrom(nil) {
		t.Error("null not assignable")
	}
}

func TestArrayClasses(t *testing.T) {
	root := rootClass(t)
	intDesc, _ := bytecode.ParseDesc("I")
	ia := NewArrayClass("[I", intDesc, nil, root, "test")
	if !ia.IsArray || ia.ElemBytes != 4 {
		t.Fatalf("array class = %+v", ia)
	}
	// 16 header+len + 40 data = 56.
	if got := ia.ArraySizeBytes(10); got != 56 {
		t.Errorf("ArraySizeBytes(10) = %d, want 56", got)
	}
	// Byte arrays pack.
	byteDesc, _ := bytecode.ParseDesc("B")
	ba := NewArrayClass("[B", byteDesc, nil, root, "test")
	if got := ba.ArraySizeBytes(10); got != 32 { // 16 + 10 -> align 32
		t.Errorf("byte ArraySizeBytes(10) = %d, want 32", got)
	}

	a := defClass(t, ".class t/A\n.end", "t/A", root)
	b := defClass(t, ".class t/B extends t/A\n.end", "t/B", a)
	aDesc, _ := bytecode.ParseDesc("Lt/A;")
	bDesc, _ := bytecode.ParseDesc("Lt/B;")
	aArr := NewArrayClass("[Lt/A;", aDesc, a, root, "test")
	bArr := NewArrayClass("[Lt/B;", bDesc, b, root, "test")
	if !aArr.AssignableFrom(bArr) {
		t.Error("array covariance rejected")
	}
	if bArr.AssignableFrom(aArr) {
		t.Error("array contravariance accepted")
	}
	if aArr.AssignableFrom(ia) {
		t.Error("ref array assignable from int array")
	}
	if !root.AssignableFrom(ia) {
		t.Error("arrays must be assignable to Object")
	}
}

func TestMethodResolutionWalksSupers(t *testing.T) {
	root := rootClass(t)
	a := defClass(t, ".class t/A\n.end", "t/A", root)
	if _, ok := a.MethodByKey("toString()Ljava/lang/String;"); !ok {
		t.Error("inherited method not resolved")
	}
	if _, ok := a.DeclaredMethod("toString()Ljava/lang/String;"); ok {
		t.Error("DeclaredMethod found inherited method")
	}
}
