// Package object defines the kvm runtime object model: classes, fields,
// methods and heap objects.
//
// Runtime classes are created by a class loader from the symbolic
// bytecode.Module form. Two loads of the same ClassDef by different loaders
// yield *different* runtime classes ("reloaded classes", §3.2 of the
// paper), each with its own statics; classes loaded by the shared loader
// exist once and are visible to every process.
package object

import (
	"fmt"

	"repro/internal/bytecode"
	"repro/internal/vmaddr"
)

// Class is a runtime class in one namespace.
type Class struct {
	Name  string
	Super *Class
	// LoaderTag identifies the namespace (loader) that defined the class,
	// for diagnostics and sharing checks.
	LoaderTag string
	// Shared marks classes defined by the shared system loader: one copy of
	// text and statics serves every process (§3.2: ~72% of library classes).
	Shared bool

	// Instance field layout, including inherited slots.
	Fields      []*Field // declared instance fields only
	NumRefSlots int      // total instance ref slots incl. super
	NumPrimSlot int      // total instance prim slots incl. super
	// InstanceBytes is the accounted size of one instance, excluding any
	// barrier-dependent header padding (the heap adds that at allocation).
	InstanceBytes uint64

	// Statics. The static fields live in a synthetic statics object so that
	// they are heap-allocated, accounted, traced by GC, and covered by the
	// write barrier like any other object.
	StaticFields []*Field
	StaticsClass *Class  // synthetic layout class for the statics object
	Statics      *Object // allocated by the loader; nil until then

	Methods []*Method
	VTable  []*Method

	// Arrays.
	IsArray   bool
	ElemDesc  bytecode.Desc // valid when IsArray
	ElemClass *Class        // element class for ref arrays (covariance checks)
	ElemBytes int           // accounted bytes per element

	fieldsByName map[string]*Field  // instance fields incl. inherited
	staticByName map[string]*Field  // static fields declared here
	methodByKey  map[string]*Method // declared methods by name+sig

	// Init tracks whether <clinit> has run (loaders run it at definition).
	Init bool
}

// Field describes one field of a class.
type Field struct {
	Name     string
	Class    *Class // declaring class
	Desc     bytecode.Desc
	DescStr  string
	Static   bool
	Ref      bool
	Slot     int // index into Refs or Prims of the (statics) object
	ReadOnly bool
}

// Method describes one method of a class.
type Method struct {
	Name   string
	Sig    string
	Class  *Class
	Static bool
	// Kernel marks methods that execute in kernel mode: the thread cannot
	// be terminated while inside and preemption is deferred (paper §2,
	// "safe termination").
	Kernel bool

	// Exactly one of Code and Native is set. Native's concrete type is
	// defined by the execution engine (see interp.NativeFunc).
	Code   *bytecode.Code
	Native any

	MaxStack  int
	MaxLocals int
	NArgs     int  // argument slots, excluding receiver
	HasRet    bool // returns a value
	RetRef    bool // returned value is a reference

	// VIndex is the vtable index for virtual dispatch, or -1 for static
	// methods, constructors, and other specials.
	VIndex int

	// Links mirrors Code.Consts with loader-resolved entries.
	Links []Linked
	// HandlerClasses mirrors Code.Handlers with the resolved catch types
	// (nil for catch-all handlers).
	HandlerClasses []*Class

	// Compiled caches the closure-compiled body, keyed by engine; managed
	// by the jit package.
	Compiled any
}

// Linked is the resolved form of one constant pool entry.
type Linked struct {
	Class  *Class
	Field  *Field
	Method *Method
}

// Key returns the name+sig resolution key of m.
func (m *Method) Key() string { return m.Name + m.Sig }

// IsSpecial reports whether the method never participates in virtual
// dispatch (constructors and class initializers).
func (m *Method) IsSpecial() bool {
	return len(m.Name) > 0 && m.Name[0] == '<'
}

func (m *Method) String() string {
	return fmt.Sprintf("%s.%s%s", m.Class.Name, m.Name, m.Sig)
}

// FieldByName resolves an instance field, searching superclasses.
func (c *Class) FieldByName(name string) (*Field, bool) {
	f, ok := c.fieldsByName[name]
	return f, ok
}

// StaticByName resolves a static field declared by c or a superclass.
func (c *Class) StaticByName(name string) (*Field, bool) {
	for k := c; k != nil; k = k.Super {
		if f, ok := k.staticByName[name]; ok {
			return f, true
		}
	}
	return nil, false
}

// MethodByKey resolves a method by name+sig, searching superclasses.
func (c *Class) MethodByKey(key string) (*Method, bool) {
	for k := c; k != nil; k = k.Super {
		if m, ok := k.methodByKey[key]; ok {
			return m, true
		}
	}
	return nil, false
}

// DeclaredMethod resolves a method declared directly by c.
func (c *Class) DeclaredMethod(key string) (*Method, bool) {
	m, ok := c.methodByKey[key]
	return m, ok
}

// IsSubclassOf reports whether c is k or a subclass of k.
func (c *Class) IsSubclassOf(k *Class) bool {
	for x := c; x != nil; x = x.Super {
		if x == k {
			return true
		}
	}
	return false
}

// AssignableFrom reports whether a value of class v can be stored where a
// value of class c is expected. Arrays are assignable if their element
// classes are assignable (covariance, checked at store time like Java) or
// if c is the root class.
func (c *Class) AssignableFrom(v *Class) bool {
	if v == nil {
		return true // null is assignable everywhere
	}
	if c.IsArray && v.IsArray {
		if c.ElemDesc.Ref() && v.ElemDesc.Ref() && c.ElemClass != nil && v.ElemClass != nil {
			return c.ElemClass.AssignableFrom(v.ElemClass)
		}
		return c.ElemDesc == v.ElemDesc
	}
	return v.IsSubclassOf(c)
}

func (c *Class) String() string { return c.Name }

// headerBytes is the accounted base object header: a class word and a
// lock/hash/flags word, as in Kaffe.
const headerBytes = 8

// NewClass links a ClassDef against resolved super and returns the runtime
// class, without methods linked (the loader wires methods and constant
// pools; see Link* helpers). loaderTag names the namespace.
func NewClass(def *bytecode.ClassDef, super *Class, loaderTag string, shared bool) (*Class, error) {
	c := &Class{
		Name:         def.Name,
		Super:        super,
		LoaderTag:    loaderTag,
		Shared:       shared,
		fieldsByName: make(map[string]*Field),
		staticByName: make(map[string]*Field),
		methodByKey:  make(map[string]*Method),
	}
	refSlots, primSlots := 0, 0
	var bytes uint64 = headerBytes
	if super != nil {
		refSlots = super.NumRefSlots
		primSlots = super.NumPrimSlot
		bytes = super.InstanceBytes
		for name, f := range super.fieldsByName {
			c.fieldsByName[name] = f
		}
	}
	staticRef, staticPrim := 0, 0
	var staticBytes uint64 = headerBytes
	for i := range def.Fields {
		fd := &def.Fields[i]
		d, err := bytecode.ParseDesc(fd.Desc)
		if err != nil {
			return nil, fmt.Errorf("class %s field %s: %w", def.Name, fd.Name, err)
		}
		f := &Field{
			Name: fd.Name, Class: c, Desc: d, DescStr: fd.Desc,
			Static: fd.Static, Ref: d.Ref(),
		}
		if fd.Static {
			if f.Ref {
				f.Slot = staticRef
				staticRef++
			} else {
				f.Slot = staticPrim
				staticPrim++
			}
			staticBytes += uint64(d.ByteSize())
			c.StaticFields = append(c.StaticFields, f)
			c.staticByName[f.Name] = f
		} else {
			if f.Ref {
				f.Slot = refSlots
				refSlots++
			} else {
				f.Slot = primSlots
				primSlots++
			}
			bytes += uint64(d.ByteSize())
			c.Fields = append(c.Fields, f)
			if _, dup := c.fieldsByName[f.Name]; dup {
				return nil, fmt.Errorf("class %s: field %s shadows an inherited field", def.Name, f.Name)
			}
			c.fieldsByName[f.Name] = f
		}
	}
	c.NumRefSlots = refSlots
	c.NumPrimSlot = primSlots
	c.InstanceBytes = align8(bytes)
	if len(c.StaticFields) > 0 {
		c.StaticsClass = &Class{
			Name:          def.Name + "$statics",
			LoaderTag:     loaderTag,
			Shared:        shared,
			NumRefSlots:   staticRef,
			NumPrimSlot:   staticPrim,
			InstanceBytes: align8(staticBytes),
			fieldsByName:  map[string]*Field{},
			staticByName:  map[string]*Field{},
			methodByKey:   map[string]*Method{},
		}
	}
	return c, nil
}

// AddMethod attaches a runtime method created from def. The loader calls
// this for every MethodDef (and for natives registered against the class).
func (c *Class) AddMethod(def *bytecode.MethodDef, native any) (*Method, error) {
	sig, err := bytecode.ParseSig(def.Sig)
	if err != nil {
		return nil, fmt.Errorf("class %s method %s: %w", c.Name, def.Name, err)
	}
	m := &Method{
		Name: def.Name, Sig: def.Sig, Class: c, Static: def.Static,
		MaxStack: def.MaxStack, MaxLocals: def.MaxLocals,
		NArgs: sig.Slots(), VIndex: -1,
		Native: native,
	}
	if sig.Ret != nil {
		m.HasRet = true
		m.RetRef = sig.Ret.Ref()
	}
	if native == nil {
		m.Code = def.Code
	}
	if _, dup := c.methodByKey[m.Key()]; dup {
		return nil, fmt.Errorf("class %s: duplicate method %s", c.Name, m.Key())
	}
	c.methodByKey[m.Key()] = m
	c.Methods = append(c.Methods, m)
	return m, nil
}

// BuildVTable computes c's vtable from its superclass's. Must be called
// after all methods are added and after the super's vtable is built.
func (c *Class) BuildVTable() {
	if c.Super != nil {
		c.VTable = append(c.VTable, c.Super.VTable...)
	}
	for _, m := range c.Methods {
		if m.Static || m.IsSpecial() {
			continue
		}
		overrode := false
		for i, sm := range c.VTable {
			if sm.Key() == m.Key() {
				c.VTable[i] = m
				m.VIndex = i
				overrode = true
				break
			}
		}
		if !overrode {
			m.VIndex = len(c.VTable)
			c.VTable = append(c.VTable, m)
		}
	}
}

// NewArrayClass creates the runtime class for an array type. name is the
// full descriptor (e.g. "[I", "[Ljava/lang/String;"); root is the
// namespace's java/lang/Object; elemClass is non-nil for ref arrays.
func NewArrayClass(name string, elem bytecode.Desc, elemClass *Class, root *Class, loaderTag string) *Class {
	return &Class{
		Name:          name,
		Super:         root,
		LoaderTag:     loaderTag,
		IsArray:       true,
		ElemDesc:      elem,
		ElemClass:     elemClass,
		ElemBytes:     elem.ByteSize(),
		InstanceBytes: headerBytes + 8, // header + length word
		fieldsByName:  map[string]*Field{},
		staticByName:  map[string]*Field{},
		methodByKey:   map[string]*Method{},
		VTable:        root.VTable,
	}
}

// ArraySizeBytes reports the accounted size of an array instance of n
// elements, excluding barrier-dependent header padding.
func (c *Class) ArraySizeBytes(n int) uint64 {
	return align8(c.InstanceBytes + uint64(n)*uint64(c.ElemBytes))
}

func align8(n uint64) uint64 { return (n + 7) &^ 7 }

// Sanity re-exports for other packages.
var _ = vmaddr.NoHeap
