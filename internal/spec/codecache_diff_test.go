package spec

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/core"
)

// TestCodeCacheIndistinguishable is the shared-code-cache correctness
// wall: on every engine, for every workload, a process whose compiled
// code came from the shared cache (second loader of the module — pure
// cache hits) produces a byte-identical execution — same checksum, same
// simulated cycles, same final heap bytes — as a process that compiled
// everything privately with the cache off. Compiled bodies are
// relocatable and virtual-cycle costs are engine properties, so sharing
// must only change host wall-clock, never observable behaviour. The
// audit at the end holds the books to the full-charging rule after the
// attach/detach churn of four processes.
func TestCodeCacheIndistinguishable(t *testing.T) {
	engines := []core.EngineKind{
		core.EngineInterp, core.EngineInterpSpill, core.EngineJIT, core.EngineJITOpt,
	}
	if testing.Short() {
		engines = engines[:1]
	}
	for _, engine := range engines {
		engine := engine
		t.Run(string(engine), func(t *testing.T) {
			for _, w := range All() {
				w := w
				t.Run(w.Name, func(t *testing.T) {
					// Cache off: the private-compilation baseline.
					off := diffVM(t, engine)
					base, err := off.NewProcess("off-"+w.Name, core.ProcessOptions{MemLimit: 64 << 20})
					if err != nil {
						t.Fatal(err)
					}
					if err := base.Load(w.Module()); err != nil {
						t.Fatal(err)
					}
					want := measure(t, off, base, w)

					// Cache on: a warmer process compiles-and-inserts, then
					// the measured process attaches with pure hits.
					on, err := core.NewVM(core.Config{
						Engine: engine, TotalMemory: 512 << 20, CodeCache: true,
					})
					if err != nil {
						t.Fatal(err)
					}
					warmer, err := on.NewProcess("warmer-"+w.Name, core.ProcessOptions{MemLimit: 64 << 20})
					if err != nil {
						t.Fatal(err)
					}
					if err := warmer.Load(w.Module()); err != nil {
						t.Fatal(err)
					}
					if err := warmer.Load(bytecode.MustAssemble(holdSrc)); err != nil {
						t.Fatal(err)
					}
					shared, err := on.NewProcess("shared-"+w.Name, core.ProcessOptions{MemLimit: 64 << 20})
					if err != nil {
						t.Fatal(err)
					}
					if err := shared.Load(w.Module()); err != nil {
						t.Fatal(err)
					}
					got := measure(t, on, shared, w)

					if got != want {
						t.Errorf("cache-on run diverges:\n off: %v\n  on: %v", want, got)
					}

					warmer.Kill(nil)
					if err := on.Run(0); err != nil {
						t.Fatal(err)
					}
					if on.CodeMgr == nil {
						if engine == core.EngineJIT || engine == core.EngineJITOpt {
							t.Fatal("compiling engine has no code cache")
						}
					} else {
						on.CodeMgr.EvictOrphans()
					}
					if rep := on.Audit(true); !rep.OK() {
						t.Fatalf("audit after cache-on differential:\n%s", rep)
					}
					if rep := off.Audit(true); !rep.OK() {
						t.Fatalf("audit after cache-off differential:\n%s", rep)
					}
				})
			}
		})
	}
}
