package spec

// Compress is shaped after SPEC _201_compress (LZW compression): tight
// integer/array loops over byte data with essentially no pointer stores —
// the paper's Table 1 reports only 0.017M barriers for compress, by far
// the fewest.
func Compress() *Workload {
	return &Workload{
		Name:      "compress",
		MainClass: "spec/Compress",
		Checksum:  compressChecksum,
		Source: `
.class spec/Compress
.method run ()I static
.locals 8
.stack 6
# locals: 0=input [I  1=freq [I  2=i  3=h  4=out  5=pass  6=b  7=x (lcg)
	ldc 4096
	newarray [I
	astore 0
	ldc 8192
	newarray [I
	astore 1
	ldc 12345
	istore 7
# fill input with LCG bytes
	iconst 0
	istore 2
FILL:	iload 2
	ldc 4096
	if_icmpge MAIN
	iload 7
	ldc 1103515245
	imul
	ldc 12345
	iadd
	ldc 2147483647
	iand
	istore 7
	aload 0
	iload 2
	iload 7
	iconst 16
	ishr
	ldc 255
	iand
	iastore
	iinc 2 1
	goto FILL
MAIN:	iconst 0
	istore 5
	iconst 0
	istore 3
	iconst 0
	istore 4
PASS:	iload 5
	iconst 40
	if_icmpge DONE
	iconst 0
	istore 2
INNER:	iload 2
	ldc 4096
	if_icmpge NEXTP
	aload 0
	iload 2
	iaload
	istore 6
	iload 3
	iconst 31
	imul
	iload 6
	iadd
	ldc 8191
	iand
	istore 3
	aload 1
	iload 3
	aload 1
	iload 3
	iaload
	iconst 1
	iadd
	iastore
	iload 4
	aload 1
	iload 3
	iaload
	iload 6
	iadd
	ixor
	istore 4
	iinc 2 1
	goto INNER
NEXTP:	iinc 5 1
	goto PASS
DONE:	iload 4
	ldc 2147483647
	iand
	ireturn
.end
.end`,
	}
}
