package spec

// MpegAudio is shaped after SPEC _222_mpegaudio (MP3 decoding): dominated
// by floating-point filter loops over coefficient windows, with a low but
// steady rate of object stores as decoded frames enter a ring buffer
// (5.5M barriers in Table 1, small relative to its runtime).
func MpegAudio() *Workload {
	return &Workload{
		Name:      "mpegaudio",
		MainClass: "spec/MpegAudio",
		Checksum:  mpegChecksum,
		Source: `
.class spec/AFrame
.field gain D
.method <init> ()V
.locals 1
.stack 1
	aload 0
	invokespecial java/lang/Object.<init> ()V
	return
.end
.end

.class spec/MpegAudio
.method run ()I static
.locals 10
.stack 8
# locals: 0=coeff [D  1=window [D  2=ring [Lspec/AFrame;  3=f  4=i  5=acc(D bits)
#         6=out  7=fr  8=slot  9=tap(D bits)
	ldc 512
	newarray [D
	astore 0
	ldc 512
	newarray [D
	astore 1
	iconst 64
	newarray [Lspec/AFrame;
	astore 2
# init coefficient and window tables
	iconst 0
	istore 4
INIT:	iload 4
	ldc 512
	if_icmpge MAIN
	aload 0
	iload 4
	iload 4
	iconst 3
	iadd
	i2d
	ldc 512.0
	ddiv
	iastore
	aload 1
	iload 4
	iload 4
	iconst 511
	ixor
	i2d
	ldc 256.0
	ddiv
	iastore
	iinc 4 1
	goto INIT
MAIN:	iconst 0
	istore 3
	iconst 0
	istore 6
FRAME:	iload 3
	ldc 9000
	if_icmpge DONE
# inner filter: acc = sum coeff[(i*7+f)&511] * window[(i*13+f)&511]
	ldc 0.0
	istore 5
	iconst 0
	istore 4
FILT:	iload 4
	ldc 96
	if_icmpge EMIT
	aload 0
	iload 4
	iconst 7
	imul
	iload 3
	iadd
	ldc 511
	iand
	iaload
	aload 1
	iload 4
	iconst 13
	imul
	iload 3
	iadd
	ldc 511
	iand
	iaload
	dmul
	istore 9
	dload 5
	dload 9
	dadd
	istore 5
	iinc 4 1
	goto FILT
# emit a frame into the ring: three reference stores per frame
EMIT:	new spec/AFrame
	dup
	invokespecial spec/AFrame.<init> ()V
	astore 7
	aload 7
	dload 5
	putfield spec/AFrame.gain D
	iload 3
	iconst 63
	iand
	istore 8
	aload 2
	iload 8
	aload 7
	aastore
	aload 2
	iload 8
	iconst 1
	iadd
	iconst 63
	iand
	aload 7
	aastore
	aload 2
	iload 8
	iconst 2
	iadd
	iconst 63
	iand
	aconst_null
	aastore
	iload 6
	dload 5
	ldc 16.0
	dmul
	d2i
	ixor
	ldc 16777215
	iand
	istore 6
	iinc 3 1
	goto FRAME
DONE:	iload 6
	ireturn
.end
.end`,
	}
}
