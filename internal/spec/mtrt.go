package spec

// Mtrt is shaped after SPEC _227_mtrt (a multithreaded ray tracer): dense
// floating-point intersection math over a sphere scene, allocating hit
// records as rays strike geometry (3.0M barriers in Table 1 — the fewest
// of the pointer-using benchmarks). Like the original, it runs its work
// on two java/lang/Thread workers sharing one process.
func Mtrt() *Workload {
	return &Workload{
		Name:      "mtrt",
		MainClass: "spec/Mtrt",
		Checksum:  mtrtChecksum,
		Source: `
.class spec/Hit
.field next Lspec/Hit;
.field dist D
.method <init> ()V
.locals 1
.stack 1
	aload 0
	invokespecial java/lang/Object.<init> ()V
	return
.end
.end

.class spec/Tracer extends java/lang/Thread
.field from I
.field to I
.field result I
.field done I
.method <init> ()V
.locals 1
.stack 1
	aload 0
	invokespecial java/lang/Thread.<init> ()V
	return
.end
.method run ()V
.locals 1
.stack 4
	aload 0
	aload 0
	getfield spec/Tracer.from I
	aload 0
	getfield spec/Tracer.to I
	invokestatic spec/Mtrt.trace (II)I
	putfield spec/Tracer.result I
	aload 0
	iconst 1
	putfield spec/Tracer.done I
	return
.end
.end

.class spec/Mtrt
.static sx [D
.static sr [D
.static hits Lspec/Hit;

.method setup ()V static
.locals 1
.stack 5
	iconst 32
	newarray [D
	putstatic spec/Mtrt.sx [D
	iconst 32
	newarray [D
	putstatic spec/Mtrt.sr [D
	iconst 0
	istore 0
INIT:	iload 0
	iconst 32
	if_icmpge DONE
	getstatic spec/Mtrt.sx [D
	iload 0
	iload 0
	iconst 17
	imul
	iconst 97
	irem
	i2d
	ldc 10.0
	ddiv
	iastore
	getstatic spec/Mtrt.sr [D
	iload 0
	iload 0
	iconst 5
	irem
	iconst 1
	iadd
	i2d
	ldc 9.0
	ddiv
	iastore
	iinc 0 1
	goto DONE2
DONE2:	goto INIT
DONE:	return
.end

# trace rays [from,to): returns hit count mixed with distances
.method trace (II)I static
.locals 9
.stack 8
# locals: 0=from 1=to 2=r 3=s 4=ox(Dbits) 5=d(Dbits) 6=acc 7=h 8=t(Dbits)
	iload 0
	istore 2
	iconst 0
	istore 6
RAY:	iload 2
	iload 1
	if_icmpge OUT
	iload 2
	iconst 37
	imul
	iconst 101
	irem
	i2d
	ldc 10.0
	ddiv
	istore 4
	iconst 0
	istore 3
SPH:	iload 3
	iconst 32
	if_icmpge NEXTRAY
# t = sx[s] - ox ; hit when |t| < sr[s]
	getstatic spec/Mtrt.sx [D
	iload 3
	iaload
	dload 4
	dsub
	istore 8
	dload 8
	ldc 0.0
	dcmp
	ifge POS
	dload 8
	dneg
	istore 8
POS:	dload 8
	getstatic spec/Mtrt.sr [D
	iload 3
	iaload
	dcmp
	ifge MISS
# hit: record it
	new spec/Hit
	dup
	invokespecial spec/Hit.<init> ()V
	astore 7
	aload 7
	dload 8
	putfield spec/Hit.dist D
	aload 7
	getstatic spec/Mtrt.hits Lspec/Hit;
	putfield spec/Hit.next Lspec/Hit;
	aload 7
	putstatic spec/Mtrt.hits Lspec/Hit;
	iload 6
	iconst 1
	iadd
	dload 8
	ldc 100.0
	dmul
	d2i
	ixor
	ldc 16777215
	iand
	istore 6
# cap the hit list so memory stays bounded
	getstatic spec/Mtrt.hits Lspec/Hit;
	getfield spec/Hit.next Lspec/Hit;
	ifnull MISS
	getstatic spec/Mtrt.hits Lspec/Hit;
	aconst_null
	putfield spec/Hit.next Lspec/Hit;
MISS:	iinc 3 1
	goto SPH
# shading kernel: per-ray lighting math after intersection tests
NEXTRAY:	iconst 0
	istore 3
SHADE:	iload 3
	iconst 40
	if_icmpge SHADED
	dload 4
	ldc 1.0009765625
	dmul
	istore 4
	iinc 3 1
	goto SHADE
SHADED:	iload 6
	dload 4
	d2i
	ixor
	ldc 16777215
	iand
	istore 6
	iinc 2 1
	goto RAY
OUT:	iload 6
	ireturn
.end

.method run ()I static
.locals 3
.stack 4
	invokestatic spec/Mtrt.setup ()V
# two worker threads split the ray range
	new spec/Tracer
	dup
	invokespecial spec/Tracer.<init> ()V
	astore 0
	aload 0
	iconst 0
	putfield spec/Tracer.from I
	aload 0
	ldc 2000
	putfield spec/Tracer.to I
	new spec/Tracer
	dup
	invokespecial spec/Tracer.<init> ()V
	astore 1
	aload 1
	ldc 2000
	putfield spec/Tracer.from I
	aload 1
	ldc 4000
	putfield spec/Tracer.to I
	aload 0
	invokevirtual java/lang/Thread.start ()V
	aload 1
	invokevirtual java/lang/Thread.start ()V
WAIT:	aload 0
	getfield spec/Tracer.done I
	ifeq WAIT
WAIT2:	aload 1
	getfield spec/Tracer.done I
	ifeq WAIT2
	aload 0
	getfield spec/Tracer.result I
	aload 1
	getfield spec/Tracer.result I
	ixor
	ldc 2147483647
	iand
	ireturn
.end
.end`,
	}
}
