// Package spec contains the synthetic SPEC-JVM98-like workload suite used
// to reproduce the paper's Figure 3 (wall-clock across platforms) and
// Table 1 (write barriers executed per benchmark).
//
// SPEC JVM98 is licensed material we cannot ship, so each workload is a
// from-scratch bytecode program shaped to its namesake's published
// characteristics — most importantly the *write-barrier density* profile
// of Table 1 (compress executes almost no pointer stores; db by far the
// most; jack raises many exceptions, which is why fast exception dispatch
// "shows up strongly in jack") and the broad computation style (array
// number-crunching vs. pointer-structure building).
//
// Every workload returns a checksum, verified across engines and barrier
// configurations: an engine bug cannot masquerade as a speedup.
package spec

import (
	"fmt"
	"time"

	"repro/internal/barrier"
	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/interp"
)

// Workload is one benchmark program.
type Workload struct {
	// Name matches the SPEC benchmark it is shaped after.
	Name string
	// MainClass holds the static method run()I returning the checksum.
	MainClass string
	// Checksum is the expected result on every platform.
	Checksum int64
	// Source is the assembly text (kept for cmd/kaffeos disassembly use).
	Source string
}

// Module assembles the workload.
func (w *Workload) Module() *bytecode.Module { return bytecode.MustAssemble(w.Source) }

// All returns the seven workloads in SPEC's customary order.
func All() []*Workload {
	return []*Workload{
		Compress(), Jess(), DB(), Javac(), MpegAudio(), Mtrt(), Jack(),
	}
}

// ByName finds a workload.
func ByName(name string) (*Workload, bool) {
	for _, w := range All() {
		if w.Name == name {
			return w, true
		}
	}
	return nil, false
}

// Platform is one configuration of Figure 3.
type Platform struct {
	// Name as the figure legends it.
	Name string
	// Engine, exception dispatch and locking reproduce the platform's
	// implementation generation.
	Engine         core.EngineKind
	FastExceptions bool
	ThinLocks      bool
	// Barrier is the write-barrier configuration (NoBarrier for the
	// non-KaffeOS platforms and the "No Write Barrier" baseline).
	Barrier barrier.Barrier
}

// Platforms returns the seven configurations of Figure 3, in its order.
func Platforms() []Platform {
	return []Platform{
		{Name: "IBM", Engine: core.EngineJITOpt, FastExceptions: true, ThinLocks: true, Barrier: barrier.NoBarrier},
		{Name: "Kaffe00", Engine: core.EngineJIT, FastExceptions: true, ThinLocks: true, Barrier: barrier.NoBarrier},
		{Name: "Kaffe99", Engine: core.EngineInterpSpill, FastExceptions: false, ThinLocks: false, Barrier: barrier.NoBarrier},
		{Name: "KaffeOS-NoWriteBarrier", Engine: core.EngineInterpSpill, FastExceptions: true, ThinLocks: false, Barrier: barrier.NoBarrier},
		{Name: "KaffeOS-HeapPointer", Engine: core.EngineInterpSpill, FastExceptions: true, ThinLocks: false, Barrier: barrier.HeapPointer},
		{Name: "KaffeOS-NoHeapPointer", Engine: core.EngineInterpSpill, FastExceptions: true, ThinLocks: false, Barrier: barrier.NoHeapPointer},
		{Name: "KaffeOS-FakeHeapPointer", Engine: core.EngineInterpSpill, FastExceptions: true, ThinLocks: false, Barrier: barrier.FakeHeapPointer},
	}
}

// PlatformByName finds a platform configuration.
func PlatformByName(name string) (Platform, bool) {
	for _, p := range Platforms() {
		if p.Name == name {
			return p, true
		}
	}
	return Platform{}, false
}

// Result is one (workload, platform) measurement.
type Result struct {
	Workload string
	Platform string
	Wall     time.Duration
	Cycles   uint64 // simulated cycles consumed by the workload thread
	Barriers uint64 // write barriers executed
	Checksum int64
	GCs      uint64
}

// Run executes workload w on platform p and verifies the checksum.
func Run(w *Workload, p Platform) (Result, error) {
	fe := p.FastExceptions
	vm, err := core.NewVM(core.Config{
		Engine:         p.Engine,
		Barrier:        p.Barrier,
		FastExceptions: &fe,
		ThinLocks:      p.ThinLocks,
		TotalMemory:    256 << 20,
	})
	if err != nil {
		return Result{}, err
	}
	proc, err := vm.NewProcess(w.Name, core.ProcessOptions{MemLimit: 64 << 20})
	if err != nil {
		return Result{}, err
	}
	if err := proc.Load(w.Module()); err != nil {
		return Result{}, err
	}
	th, err := proc.Spawn(w.MainClass, "run()I")
	if err != nil {
		return Result{}, err
	}
	barriersBefore := vm.Stats.Executed.Load()
	start := time.Now()
	if err := vm.Run(0); err != nil {
		return Result{}, err
	}
	wall := time.Since(start)
	if th.State != interp.StateFinished {
		return Result{}, fmt.Errorf("spec: %s on %s died: %v (uncaught %v)", w.Name, p.Name, th.Err, th.Uncaught)
	}
	if th.Result.I != w.Checksum {
		return Result{}, fmt.Errorf("spec: %s on %s checksum %d, want %d", w.Name, p.Name, th.Result.I, w.Checksum)
	}
	return Result{
		Workload: w.Name,
		Platform: p.Name,
		Wall:     wall,
		Cycles:   th.Cycles,
		Barriers: vm.Stats.Executed.Load() - barriersBefore,
		Checksum: th.Result.I,
	}, nil
}
