package spec

import (
	"testing"
)

// referencePlatform is the checksum oracle.
func referencePlatform() Platform {
	p, _ := PlatformByName("KaffeOS-NoWriteBarrier")
	return p
}

func TestWorkloadsRunAndChecksum(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			res, err := Run(w, referencePlatform())
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			t.Logf("%s: checksum=%d cycles=%d barriers=%d wall=%v",
				w.Name, res.Checksum, res.Cycles, res.Barriers, res.Wall)
		})
	}
}

func TestChecksumsStableAcrossPlatforms(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-platform sweep is slow")
	}
	for _, w := range []*Workload{Compress(), DB(), Jack()} {
		var ref int64
		for i, p := range Platforms() {
			res, err := Run(w, p)
			if err != nil {
				t.Fatalf("%s on %s: %v", w.Name, p.Name, err)
			}
			if i == 0 {
				ref = res.Checksum
			} else if res.Checksum != ref {
				t.Errorf("%s: checksum differs on %s: %d vs %d", w.Name, p.Name, res.Checksum, ref)
			}
		}
	}
}

func TestBarrierDensityShape(t *testing.T) {
	// Table 1's shape: compress executes almost no barriers; db the most.
	kaffeOS, _ := PlatformByName("KaffeOS-NoHeapPointer")
	counts := map[string]uint64{}
	for _, w := range All() {
		res, err := Run(w, kaffeOS)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		counts[w.Name] = res.Barriers
	}
	t.Logf("barrier counts: %v", counts)
	if counts["compress"] > 1000 {
		t.Errorf("compress executed %d barriers, want ~0 (Table 1)", counts["compress"])
	}
	for name, c := range counts {
		if name == "db" {
			continue
		}
		if c >= counts["db"] {
			t.Errorf("db (%d) must dominate %s (%d) per Table 1", counts["db"], name, c)
		}
	}
	if counts["db"] < 100_000 {
		t.Errorf("db barriers = %d, implausibly low", counts["db"])
	}
}

func TestNoBarriersOnNoBarrierPlatforms(t *testing.T) {
	p, _ := PlatformByName("Kaffe99")
	res, err := Run(DB(), p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Barriers != 0 {
		t.Errorf("Kaffe99 executed %d barriers", res.Barriers)
	}
}

func TestByName(t *testing.T) {
	for _, w := range All() {
		got, ok := ByName(w.Name)
		if !ok || got.Name != w.Name {
			t.Errorf("ByName(%q) failed", w.Name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName accepted garbage")
	}
	if _, ok := PlatformByName("nope"); ok {
		t.Error("PlatformByName accepted garbage")
	}
}
