package spec

// Expected checksums, verified identical across every engine and barrier
// configuration by TestChecksumsStableAcrossPlatforms. Computed once on
// the reference platform (KaffeOS-NoWriteBarrier); any change to a
// workload's source must update its constant.
const (
	compressChecksum = 361
	jessChecksum     = 9715256
	dbChecksum       = 3629215
	javacChecksum    = 6886280
	mpegChecksum     = 101
	mtrtChecksum     = 170
	jackChecksum     = 15308221
)
