package spec

// Jess is shaped after SPEC _202_jess (an expert system shell): a working
// memory of fact chains per rule bucket, with continuous assertion of
// derived facts and periodic retraction — small-object allocation and
// linked-structure pointer stores at a moderate rate (7.9M barriers in the
// paper's Table 1).
func Jess() *Workload {
	return &Workload{
		Name:      "jess",
		MainClass: "spec/Jess",
		Checksum:  jessChecksum,
		Source: `
.class spec/Fact
.field next Lspec/Fact;
.field tag I
.field value I
.method <init> ()V
.locals 1
.stack 1
	aload 0
	invokespecial java/lang/Object.<init> ()V
	return
.end
.end

.class spec/Jess
.method run ()I static
.locals 10
.stack 6
# locals: 0=buckets [Lspec/Fact;  1=x  2=out  3=i  4=tag  5=f  6=head  7=tmp
#         8=k (mix loop)  9=acc (mix accumulator)
	iconst 64
	newarray [Lspec/Fact;
	astore 0
	ldc 98765
	istore 1
	iconst 0
	istore 2
	iconst 0
	istore 3
LOOP:	iload 3
	ldc 30000
	if_icmpge DONE
	iload 1
	ldc 1103515245
	imul
	ldc 12345
	iadd
	ldc 2147483647
	iand
	istore 1
	iload 1
	iconst 63
	iand
	istore 4
# assert: new fact at head of bucket
	new spec/Fact
	dup
	invokespecial spec/Fact.<init> ()V
	astore 5
	aload 0
	iload 4
	aaload
	astore 6
	aload 5
	aload 6
	putfield spec/Fact.next Lspec/Fact;
	aload 0
	iload 4
	aload 5
	aastore
	aload 5
	iload 4
	putfield spec/Fact.tag I
# derived value: combine with prior head
	aload 6
	ifnull FRESH
	aload 5
	iload 1
	aload 6
	getfield spec/Fact.value I
	iadd
	ldc 16777215
	iand
	putfield spec/Fact.value I
	goto MIX
FRESH:	aload 5
	iload 1
	ldc 16777215
	iand
	putfield spec/Fact.value I
MIX:	iload 2
	aload 5
	getfield spec/Fact.value I
	ixor
	istore 2
# rule evaluation kernel: pure arithmetic between pointer operations
	iconst 0
	istore 8
	iload 2
	istore 9
EVAL:	iload 8
	iconst 16
	if_icmpge EVALD
	iload 9
	iconst 31
	imul
	iload 8
	iadd
	ldc 16777215
	iand
	istore 9
	iinc 8 1
	goto EVAL
EVALD:	iload 2
	iload 9
	ixor
	istore 2
# retract: every 4th iteration pop one fact from the bucket
	iload 3
	iconst 3
	iand
	ifne SKIP
	aload 0
	iload 4
	aaload
	astore 7
	aload 7
	ifnull SKIP
	aload 0
	iload 4
	aload 7
	getfield spec/Fact.next Lspec/Fact;
	aastore
SKIP:	iinc 3 1
	goto LOOP
DONE:	iload 2
	ldc 2147483647
	iand
	ireturn
.end
.end`,
	}
}
