package spec

// Jack is shaped after SPEC _228_jack (a parser generator): token-stream
// processing that drives error recovery through Java exceptions at a high
// rate — the paper singles jack out as the benchmark where fast exception
// dispatch "shows up strongly" — while building token lists (11.6M
// barriers in Table 1).
func Jack() *Workload {
	return &Workload{
		Name:      "jack",
		MainClass: "spec/Jack",
		Checksum:  jackChecksum,
		Source: `
.class spec/ParseError extends java/lang/Exception
.method <init> ()V
.locals 1
.stack 1
	aload 0
	invokespecial java/lang/Exception.<init> ()V
	return
.end
.end

.class spec/Token
.field next Lspec/Token;
.field kind I
.method <init> ()V
.locals 1
.stack 1
	aload 0
	invokespecial java/lang/Object.<init> ()V
	return
.end
.end

.class spec/Jack
.static head Lspec/Token;

# parse one token kind; kind 0 is a syntax error reported by exception
.method parseOne (I)I static
.locals 1
.stack 2
	iload 0
	ifne OK
	new spec/ParseError
	dup
	invokespecial spec/ParseError.<init> ()V
	athrow
OK:	iload 0
	iconst 3
	imul
	iconst 7
	iadd
	ireturn
.end

.method run ()I static
.locals 8
.stack 4
# locals: 0=x  1=out  2=i  3=kind  4=tok  5=v  6=k  7=acc
	ldc 777777
	istore 0
	iconst 0
	istore 1
	iconst 0
	istore 2
	aconst_null
	putstatic spec/Jack.head Lspec/Token;
LOOP:	iload 2
	ldc 40000
	if_icmpge DONE
	iload 0
	ldc 1103515245
	imul
	ldc 12345
	iadd
	ldc 2147483647
	iand
	istore 0
	iload 0
	iconst 13
	irem
	istore 3
T0:	iload 3
	invokestatic spec/Jack.parseOne (I)I
	istore 5
	goto TOKEN
T1:	pop
	iconst -1
	istore 5
	goto TOKEN
.catch spec/ParseError T0 T1 T1
# build the token list (bounded: recycle every 64 tokens)
TOKEN:	new spec/Token
	dup
	invokespecial spec/Token.<init> ()V
	astore 4
	aload 4
	iload 3
	putfield spec/Token.kind I
	iload 2
	iconst 63
	iand
	ifne LINK
	aload 4
	aconst_null
	putfield spec/Token.next Lspec/Token;
	goto PUSH
LINK:	aload 4
	getstatic spec/Jack.head Lspec/Token;
	putfield spec/Token.next Lspec/Token;
PUSH:	getstatic spec/Jack.head Lspec/Token;
	ifnull STORE
	nop
STORE:	aload 4
	putstatic spec/Jack.head Lspec/Token;
# lexing kernel: scan work per token
	iconst 0
	istore 6
	iload 0
	istore 7
SCAN:	iload 6
	iconst 14
	if_icmpge SCAND
	iload 7
	iconst 131
	imul
	iload 6
	ixor
	ldc 16777215
	iand
	istore 7
	iinc 6 1
	goto SCAN
SCAND:	iload 1
	iload 7
	ixor
	istore 1
	iload 1
	iload 5
	ixor
	iload 2
	iadd
	ldc 16777215
	iand
	istore 1
	iinc 2 1
	goto LOOP
DONE:	iload 1
	ireturn
.end
.end`,
	}
}
