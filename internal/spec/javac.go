package spec

// Javac is shaped after SPEC _213_javac (the JDK compiler): repeated
// construction of AST-like trees followed by transformation passes that
// rewrite child pointers — allocation-heavy with a high rate of reference
// stores into fresh objects (15.5M barriers in Table 1).
func Javac() *Workload {
	return &Workload{
		Name:      "javac",
		MainClass: "spec/Javac",
		Checksum:  javacChecksum,
		Source: `
.class spec/TNode
.field left Lspec/TNode;
.field right Lspec/TNode;
.field val I
.method <init> ()V
.locals 1
.stack 1
	aload 0
	invokespecial java/lang/Object.<init> ()V
	return
.end
.end

.class spec/Javac
.static serial I

# build a balanced tree of the given depth
.method build (I)Lspec/TNode; static
.locals 2
.stack 4
	iload 0
	ifgt GO
	aconst_null
	areturn
GO:	new spec/TNode
	dup
	invokespecial spec/TNode.<init> ()V
	astore 1
	aload 1
	getstatic spec/Javac.serial I
	putfield spec/TNode.val I
	getstatic spec/Javac.serial I
	iconst 1
	iadd
	putstatic spec/Javac.serial I
	aload 1
	iload 0
	iconst 1
	isub
	invokestatic spec/Javac.build (I)Lspec/TNode;
	putfield spec/TNode.left Lspec/TNode;
	aload 1
	iload 0
	iconst 1
	isub
	invokestatic spec/Javac.build (I)Lspec/TNode;
	putfield spec/TNode.right Lspec/TNode;
	aload 1
	areturn
.end

# swap children recursively (a "transformation pass"); the type-check
# kernel per node is the semantic analysis between pointer rewrites
.method rotate (Lspec/TNode;)V static
.locals 4
.stack 3
	aload 0
	ifnonnull GO
	return
GO:	aload 0
	getfield spec/TNode.val I
	istore 2
	iconst 0
	istore 3
TYCK:	iload 3
	iconst 20
	if_icmpge TYCKD
	iload 2
	iconst 29
	imul
	iload 3
	ixor
	ldc 16777215
	iand
	istore 2
	iinc 3 1
	goto TYCK
TYCKD:	aload 0
	iload 2
	putfield spec/TNode.val I
	aload 0
	getfield spec/TNode.left Lspec/TNode;
	astore 1
	aload 0
	aload 0
	getfield spec/TNode.right Lspec/TNode;
	putfield spec/TNode.left Lspec/TNode;
	aload 0
	aload 1
	putfield spec/TNode.right Lspec/TNode;
	aload 0
	getfield spec/TNode.left Lspec/TNode;
	invokestatic spec/Javac.rotate (Lspec/TNode;)V
	aload 0
	getfield spec/TNode.right Lspec/TNode;
	invokestatic spec/Javac.rotate (Lspec/TNode;)V
	return
.end

# fold the tree into a value; the constant-folding kernel per node is the
# compiler work between pointer walks
.method sum (Lspec/TNode;)I static
.locals 3
.stack 3
	aload 0
	ifnonnull GO
	iconst 0
	ireturn
GO:	aload 0
	getfield spec/TNode.val I
	istore 1
	iconst 0
	istore 2
FOLD:	iload 2
	iconst 12
	if_icmpge FOLDD
	iload 1
	iconst 37
	imul
	iload 2
	iadd
	ldc 16777215
	iand
	istore 1
	iinc 2 1
	goto FOLD
FOLDD:	iload 1
	aload 0
	getfield spec/TNode.left Lspec/TNode;
	invokestatic spec/Javac.sum (Lspec/TNode;)I
	iconst 3
	imul
	iadd
	aload 0
	getfield spec/TNode.right Lspec/TNode;
	invokestatic spec/Javac.sum (Lspec/TNode;)I
	iconst 5
	imul
	iadd
	ldc 16777215
	iand
	ireturn
.end

.method run ()I static
.locals 4
.stack 4
# locals: 0=t  1=root  2=out  3=r
	iconst 0
	putstatic spec/Javac.serial I
	iconst 0
	istore 0
	iconst 0
	istore 2
UNIT:	iload 0
	iconst 12
	if_icmpge DONE
	iconst 10
	invokestatic spec/Javac.build (I)Lspec/TNode;
	astore 1
	iconst 0
	istore 3
PASS:	iload 3
	iconst 5
	if_icmpge FOLD
	aload 1
	invokestatic spec/Javac.rotate (Lspec/TNode;)V
	iinc 3 1
	goto PASS
FOLD:	iload 2
	aload 1
	invokestatic spec/Javac.sum (Lspec/TNode;)I
	ixor
	iload 0
	iadd
	istore 2
	iinc 0 1
	goto UNIT
DONE:	iload 2
	ldc 2147483647
	iand
	ireturn
.end
.end`,
	}
}
