package spec

// DB is shaped after SPEC _209_db (an in-memory database): records held in
// a Vector, with address/lookup/sort passes that endlessly shuffle object
// references between slots. Table 1 reports db as the barrier champion by
// a wide margin (33.0M), and our version keeps that crown.
func DB() *Workload {
	return &Workload{
		Name:      "db",
		MainClass: "spec/DB",
		Checksum:  dbChecksum,
		Source: `
.class spec/DBRec
.field key I
.method <init> ()V
.locals 1
.stack 1
	aload 0
	invokespecial java/lang/Object.<init> ()V
	return
.end
.end

.class spec/DB
.method run ()I static
.locals 9
.stack 6
# locals: 0=v Vector  1=x  2=i  3=out  4=round  5=j  6=tmp  7=rec  8=n
#         (x doubles as the comparison-kernel accumulator during swaps)
	new java/util/Vector
	dup
	invokespecial java/util/Vector.<init> ()V
	astore 0
	ldc 424242
	istore 1
	ldc 3000
	istore 8
# build the table
	iconst 0
	istore 2
BUILD:	iload 2
	iload 8
	if_icmpge OPS
	iload 1
	ldc 1103515245
	imul
	ldc 12345
	iadd
	ldc 2147483647
	iand
	istore 1
	new spec/DBRec
	dup
	invokespecial spec/DBRec.<init> ()V
	astore 7
	aload 7
	iload 1
	ldc 65535
	iand
	putfield spec/DBRec.key I
	aload 0
	aload 7
	invokevirtual java/util/Vector.add (Ljava/lang/Object;)V
	iinc 2 1
	goto BUILD
# shuffle/sort passes: swap records between slots
OPS:	iconst 0
	istore 4
	iconst 0
	istore 3
ROUND:	iload 4
	iconst 50
	if_icmpge SAMPLE
	iconst 0
	istore 2
SWAPS:	iload 2
	iload 8
	if_icmpge NEXTR
	iload 2
	iconst 7
	imul
	iload 4
	iadd
	iload 8
	irem
	istore 5
	aload 0
	iload 2
	invokevirtual java/util/Vector.get (I)Ljava/lang/Object;
	astore 6
	aload 0
	iload 2
	aload 0
	iload 5
	invokevirtual java/util/Vector.get (I)Ljava/lang/Object;
	invokevirtual java/util/Vector.set (ILjava/lang/Object;)V
	aload 0
	iload 5
	aload 6
	invokevirtual java/util/Vector.set (ILjava/lang/Object;)V
# key-comparison kernel: the sort work between the pointer swaps
	aload 6
	checkcast spec/DBRec
	getfield spec/DBRec.key I
	istore 1
	iload 2
	istore 5
CMP:	iload 5
	iload 2
	iconst 24
	iadd
	if_icmpge CMPD
	iload 1
	iconst 31
	imul
	iload 5
	ixor
	ldc 16777215
	iand
	istore 1
	iinc 5 1
	goto CMP
CMPD:	iload 3
	iload 1
	ixor
	ldc 16777215
	iand
	istore 3
	iinc 2 1
	goto SWAPS
NEXTR:	iinc 4 1
	goto ROUND
# sample keys into the checksum
SAMPLE:	iconst 0
	istore 2
SAMP2:	iload 2
	iload 8
	if_icmpge DONE
	iload 3
	aload 0
	iload 2
	invokevirtual java/util/Vector.get (I)Ljava/lang/Object;
	checkcast spec/DBRec
	getfield spec/DBRec.key I
	iload 2
	imul
	iadd
	ldc 16777215
	iand
	istore 3
	iconst 97
	iload 2
	iadd
	istore 2
	goto SAMP2
DONE:	iload 3
	ireturn
.end
.end`,
	}
}
