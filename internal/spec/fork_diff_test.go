package spec

import (
	"fmt"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/interp"
)

// holdSrc keeps a process alive after its workload thread finishes, so the
// differential harness can read final heap state before reclamation. The
// daemon spinner allocates nothing and is never compared.
const holdSrc = `
.class diff/Hold
.method spin ()V static
.locals 0
.stack 1
L0:	goto L0
.end
.end`

// runShape is the observable execution fingerprint the differential suite
// compares: a forked clone must be indistinguishable from a process that
// ran the same warmup (namespace definition + clinits) itself.
type runShape struct {
	result    int64
	cycles    uint64
	heapBytes uint64
}

func (s runShape) String() string {
	return fmt.Sprintf("result=%d cycles=%d heap=%d", s.result, s.cycles, s.heapBytes)
}

func diffVM(t *testing.T, engine core.EngineKind) *core.VM {
	t.Helper()
	vm, err := core.NewVM(core.Config{Engine: engine, TotalMemory: 512 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

// measure runs w.MainClass.run()I on p and captures the shape. The process
// is left killed and reclaimed.
func measure(t *testing.T, vm *core.VM, p *core.Process, w *Workload) runShape {
	t.Helper()
	if err := p.Load(bytecode.MustAssemble(holdSrc)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.SpawnDaemon("diff/Hold", "spin()V"); err != nil {
		t.Fatal(err)
	}
	th, err := p.Spawn(w.MainClass, "run()I")
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if th.State != interp.StateFinished {
		t.Fatalf("%s died: %v (uncaught %v)", w.Name, th.Err, th.Uncaught)
	}
	shape := runShape{result: th.Result.I, cycles: th.Cycles, heapBytes: p.HeapBytes()}
	p.Kill(nil)
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	return shape
}

// TestForkedCloneIndistinguishable is the fork correctness wall's
// differential axis: on every engine, for every workload, a clone forked
// from a checkpointed warm process produces a byte-identical execution —
// same checksum, same simulated cycles, same final heap bytes — as a
// freshly-initialized process.
func TestForkedCloneIndistinguishable(t *testing.T) {
	engines := []core.EngineKind{
		core.EngineInterp, core.EngineInterpSpill, core.EngineJIT, core.EngineJITOpt,
	}
	if testing.Short() {
		engines = engines[:1]
	}
	for _, engine := range engines {
		engine := engine
		t.Run(string(engine), func(t *testing.T) {
			for _, w := range All() {
				w := w
				t.Run(w.Name, func(t *testing.T) {
					vm := diffVM(t, engine)
					module := w.Module()

					// Fresh path: init everything the slow way.
					fresh, err := vm.NewProcess("fresh-"+w.Name, core.ProcessOptions{MemLimit: 64 << 20})
					if err != nil {
						t.Fatal(err)
					}
					if err := fresh.Load(module); err != nil {
						t.Fatal(err)
					}
					want := measure(t, vm, fresh, w)

					// Fork path: warm once, checkpoint, stamp out a clone.
					origin, err := vm.NewProcess("zygote-"+w.Name, core.ProcessOptions{MemLimit: 64 << 20})
					if err != nil {
						t.Fatal(err)
					}
					if err := origin.Load(module); err != nil {
						t.Fatal(err)
					}
					tpl, err := vm.Checkpoint(origin, w.Name)
					if err != nil {
						t.Fatal(err)
					}
					clone, err := tpl.Fork("clone-"+w.Name, core.ProcessOptions{MemLimit: 64 << 20})
					if err != nil {
						t.Fatal(err)
					}
					got := measure(t, vm, clone, w)

					if got != want {
						t.Errorf("forked clone diverges:\n fresh: %v\n clone: %v", want, got)
					}

					// Second-generation clone: fork again after the first ran,
					// proving the template did not degrade.
					clone2, err := tpl.Fork("clone2-"+w.Name, core.ProcessOptions{MemLimit: 64 << 20})
					if err != nil {
						t.Fatal(err)
					}
					if got2 := measure(t, vm, clone2, w); got2 != want {
						t.Errorf("second clone diverges:\n fresh: %v\n clone: %v", want, got2)
					}

					origin.Kill(nil)
					if err := vm.Run(0); err != nil {
						t.Fatal(err)
					}
					if rep := vm.Audit(true); !rep.OK() {
						t.Fatalf("audit after differential run:\n%s", rep)
					}
				})
			}
		})
	}
}
