package classlib_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/interp"
)

func TestStringSubstringCompareHash(t *testing.T) {
	got := runInt(t, `
.class app/T
.method main ()I static
.locals 2
.stack 3
	ldc "kaffeos process"
	iconst 0
	iconst 7
	invokevirtual java/lang/String.substring (II)Ljava/lang/String;
	astore 0
	aload 0
	ldc "kaffeos"
	invokevirtual java/lang/String.compareTo (Ljava/lang/String;)I
	istore 1
	aload 0
	ldc "kaffeot"
	invokevirtual java/lang/String.compareTo (Ljava/lang/String;)I
	iload 1
	isub
	ireturn
.end
.end`)
	// equal → 0 (in local 1); "kaffeos" < "kaffeot" → -1 on the stack;
	// isub computes (-1) - 0 = -1.
	if got != -1 {
		t.Errorf("got %d, want -1", got)
	}
}

func TestStringSubstringBounds(t *testing.T) {
	got := runInt(t, `
.class app/T
.method main ()I static
.locals 0
.stack 3
T0:	ldc "abc"
	iconst 1
	iconst 9
	invokevirtual java/lang/String.substring (II)Ljava/lang/String;
	pop
	iconst 0
	ireturn
T1:	pop
	iconst 1
	ireturn
.catch java/lang/IndexOutOfBoundsException T0 T1 T1
.end
.end`)
	if got != 1 {
		t.Errorf("substring bounds not enforced: %d", got)
	}
}

func TestStringHashCodeJavaAlgorithm(t *testing.T) {
	got := runInt(t, `
.class app/T
.method main ()I static
.locals 0
.stack 2
	ldc "Ab"
	invokevirtual java/lang/String.hashCode ()I
	ireturn
.end
.end`)
	// Java: 'A'*31 + 'b' = 65*31 + 98 = 2113
	if got != 2113 {
		t.Errorf("hashCode = %d, want 2113", got)
	}
}

func TestCharAtBoundsAndConcatNull(t *testing.T) {
	got := runInt(t, `
.class app/T
.method main ()I static
.locals 1
.stack 3
	iconst 0
	istore 0
T0:	ldc "xy"
	iconst 5
	invokevirtual java/lang/String.charAt (I)I
	pop
	iconst -1
	ireturn
T1:	pop
	iinc 0 1
T2:	ldc "xy"
	aconst_null
	invokevirtual java/lang/String.concat (Ljava/lang/String;)Ljava/lang/String;
	pop
	iconst -2
	ireturn
T3:	pop
	iinc 0 1
	iload 0
	ireturn
.catch java/lang/IndexOutOfBoundsException T0 T1 T1
.catch java/lang/NullPointerException T2 T3 T3
.end
.end`)
	if got != 2 {
		t.Errorf("got %d, want 2", got)
	}
}

func TestStringBuilderCharAndLen(t *testing.T) {
	got := runInt(t, `
.class app/T
.method main ()I static
.locals 1
.stack 3
	new java/lang/StringBuilder
	dup
	invokespecial java/lang/StringBuilder.<init> ()V
	astore 0
	aload 0
	iconst 104
	invokevirtual java/lang/StringBuilder.appendChar (I)Ljava/lang/StringBuilder;
	iconst 105
	invokevirtual java/lang/StringBuilder.appendChar (I)Ljava/lang/StringBuilder;
	invokevirtual java/lang/StringBuilder.len ()I
	ireturn
.end
.end`)
	if got != 2 {
		t.Errorf("len = %d", got)
	}
}

func TestBoxingClasses(t *testing.T) {
	got := runInt(t, `
.class app/T
.method main ()I static
.locals 3
.stack 4
	new java/lang/Boolean
	dup
	iconst 1
	invokespecial java/lang/Boolean.<init> (Z)V
	invokevirtual java/lang/Boolean.booleanValue ()Z
	istore 0
	new java/lang/Character
	dup
	iconst 65
	invokespecial java/lang/Character.<init> (C)V
	invokevirtual java/lang/Character.charValue ()C
	istore 1
	new java/lang/Long
	dup
	ldc 1000
	invokespecial java/lang/Long.<init> (J)V
	invokevirtual java/lang/Long.longValue ()J
	istore 2
	iload 0
	iload 1
	iadd
	iload 2
	iadd
	ireturn
.end
.end`)
	if got != 1+65+1000 {
		t.Errorf("got %d, want 1066", got)
	}
}

func TestDoubleBoxAndMathTrig(t *testing.T) {
	got := runInt(t, `
.class app/T
.method main ()I static
.locals 1
.stack 4
	new java/lang/Double
	dup
	ldc 2.5
	invokespecial java/lang/Double.<init> (D)V
	invokevirtual java/lang/Double.doubleValue ()D
	ldc 0.0
	invokestatic java/lang/Math.cos (D)D
	dadd           # 2.5 + 1.0
	ldc 0.0
	invokestatic java/lang/Math.sin (D)D
	dadd           # + 0.0
	invokestatic java/lang/Math.floor (D)D
	d2i
	ireturn
.end
.end`)
	if got != 3 {
		t.Errorf("got %d, want 3", got)
	}
}

func TestCharacterIsDigit(t *testing.T) {
	got := runInt(t, `
.class app/T
.method main ()I static
.locals 0
.stack 3
	iconst 53
	invokestatic java/lang/Character.isDigit (I)Z
	iconst 97
	invokestatic java/lang/Character.isDigit (I)Z
	iconst 10
	imul
	iadd
	ireturn
.end
.end`)
	if got != 1 {
		t.Errorf("isDigit wrong: %d", got)
	}
}

func TestIntegerToStringRoundTrip(t *testing.T) {
	got := runInt(t, `
.class app/T
.method main ()I static
.locals 0
.stack 2
	ldc -7421
	invokestatic java/lang/Integer.toString (I)Ljava/lang/String;
	invokestatic java/lang/Integer.parseInt (Ljava/lang/String;)I
	ireturn
.end
.end`)
	if got != -7421 {
		t.Errorf("round trip = %d", got)
	}
}

func TestVectorSetRemoveAll(t *testing.T) {
	got := runInt(t, `
.class app/T
.method main ()I static
.locals 2
.stack 6
	new java/util/Vector
	dup
	invokespecial java/util/Vector.<init> ()V
	astore 0
	aload 0
	new java/lang/Object
	invokevirtual java/util/Vector.add (Ljava/lang/Object;)V
	aload 0
	iconst 0
	new java/lang/Integer
	dup
	iconst 99
	invokespecial java/lang/Integer.<init> (I)V
	invokevirtual java/util/Vector.set (ILjava/lang/Object;)V
	aload 0
	iconst 0
	invokevirtual java/util/Vector.get (I)Ljava/lang/Object;
	checkcast java/lang/Integer
	invokevirtual java/lang/Integer.intValue ()I
	istore 1
	aload 0
	invokevirtual java/util/Vector.removeAllElements ()V
	aload 0
	invokevirtual java/util/Vector.size ()I
	iload 1
	iadd
	ireturn
.end
.end`)
	if got != 99 {
		t.Errorf("got %d, want 99", got)
	}
}

func TestVectorGrowthAcross8(t *testing.T) {
	got := runInt(t, `
.class app/T
.method main ()I static
.locals 2
.stack 4
	new java/util/Vector
	dup
	invokespecial java/util/Vector.<init> ()V
	astore 0
	iconst 0
	istore 1
L0:	iload 1
	ldc 100
	if_icmpge OUT
	aload 0
	new java/lang/Integer
	dup
	iload 1
	invokespecial java/lang/Integer.<init> (I)V
	invokevirtual java/util/Vector.add (Ljava/lang/Object;)V
	iinc 1 1
	goto L0
OUT:	aload 0
	ldc 73
	invokevirtual java/util/Vector.get (I)Ljava/lang/Object;
	checkcast java/lang/Integer
	invokevirtual java/lang/Integer.intValue ()I
	aload 0
	invokevirtual java/util/Vector.size ()I
	iadd
	ireturn
.end
.end`)
	if got != 73+100 {
		t.Errorf("got %d, want 173", got)
	}
}

func TestStackEmptyThrows(t *testing.T) {
	got := runInt(t, `
.class app/T
.method main ()I static
.locals 1
.stack 2
	new java/util/Stack
	dup
	invokespecial java/util/Stack.<init> ()V
	astore 0
	aload 0
	invokevirtual java/util/Stack.empty ()Z
	ifeq BAD
T0:	aload 0
	invokevirtual java/util/Stack.pop ()Ljava/lang/Object;
	pop
BAD:	iconst 0
	ireturn
T1:	pop
	iconst 1
	ireturn
.catch java/util/EmptyStackException T0 T1 T1
.end
.end`)
	if got != 1 {
		t.Errorf("empty pop did not throw: %d", got)
	}
}

func TestHashtableContainsAndOverwrite(t *testing.T) {
	got := runInt(t, `
.class app/T
.method main ()I static
.locals 1
.stack 5
	new java/util/Hashtable
	dup
	invokespecial java/util/Hashtable.<init> ()V
	astore 0
	aload 0
	ldc "k"
	new java/lang/Integer
	dup
	iconst 1
	invokespecial java/lang/Integer.<init> (I)V
	invokevirtual java/util/Hashtable.put (Ljava/lang/Object;Ljava/lang/Object;)Ljava/lang/Object;
	pop
	aload 0
	ldc "k"
	new java/lang/Integer
	dup
	iconst 2
	invokespecial java/lang/Integer.<init> (I)V
	invokevirtual java/util/Hashtable.put (Ljava/lang/Object;Ljava/lang/Object;)Ljava/lang/Object;
	checkcast java/lang/Integer
	invokevirtual java/lang/Integer.intValue ()I
	aload 0
	ldc "missing"
	invokevirtual java/util/Hashtable.containsKey (Ljava/lang/Object;)Z
	iadd
	aload 0
	ldc "k"
	invokevirtual java/util/Hashtable.containsKey (Ljava/lang/Object;)Z
	iconst 10
	imul
	iadd
	aload 0
	invokevirtual java/util/Hashtable.size ()I
	iconst 100
	imul
	iadd
	ireturn
.end
.end`)
	// old value 1 + contains(missing) 0 + contains(k)*10 + size*100 = 111
	if got != 111 {
		t.Errorf("got %d, want 111", got)
	}
}

func TestArraysFillCopyOf(t *testing.T) {
	got := runInt(t, `
.class app/T
.method main ()I static
.locals 2
.stack 4
	iconst 4
	newarray [I
	astore 0
	aload 0
	iconst 9
	invokestatic java/util/Arrays.fill ([II)V
	aload 0
	iconst 2
	invokestatic java/util/Arrays.copyOf ([II)[I
	astore 1
	aload 1
	arraylength
	aload 1
	iconst 1
	iaload
	iadd
	ireturn
.end
.end`)
	if got != 2+9 {
		t.Errorf("got %d, want 11", got)
	}
}

func TestRandomNextDoubleAndBadBound(t *testing.T) {
	got := runInt(t, `
.class app/T
.method main ()I static
.locals 1
.stack 3
	new java/util/Random
	dup
	iconst 7
	invokespecial java/util/Random.<init> (I)V
	astore 0
	aload 0
	invokevirtual java/util/Random.nextDouble ()D
	ldc 1.0
	dcmp
	ifge BAD
T0:	aload 0
	iconst 0
	invokevirtual java/util/Random.nextInt (I)I
	pop
BAD:	iconst 0
	ireturn
T1:	pop
	iconst 1
	ireturn
.catch java/lang/IllegalArgumentException T0 T1 T1
.end
.end`)
	if got != 1 {
		t.Errorf("got %d", got)
	}
}

func TestSystemCurrentTimeAndSleep(t *testing.T) {
	got := runInt(t, `
.class app/T
.method main ()I static
.locals 2
.stack 2
	invokestatic java/lang/System.currentTimeMillis ()I
	istore 0
	iconst 25
	invokestatic java/lang/Thread.sleep (I)V
	invokestatic java/lang/System.currentTimeMillis ()I
	iload 0
	isub
	ireturn
.end
.end`)
	if got < 25 {
		t.Errorf("virtual clock advanced only %d ms across a 25 ms sleep", got)
	}
}

func TestPrintVariants(t *testing.T) {
	var out bytes.Buffer
	th, _ := runThread(t, `
.class app/T
.method main ()I static
.locals 0
.stack 2
	getstatic java/lang/System.out Ljava/io/PrintStream;
	ldc "a"
	invokevirtual java/io/PrintStream.print (Ljava/lang/String;)V
	getstatic java/lang/System.err Ljava/io/PrintStream;
	ldc "b"
	invokevirtual java/io/PrintStream.println (Ljava/lang/String;)V
	getstatic java/lang/System.out Ljava/io/PrintStream;
	iconst 7
	invokevirtual java/io/PrintStream.printlnInt (I)V
	iconst 0
	ireturn
.end
.end`, &out)
	if th.State != interp.StateFinished {
		t.Fatalf("%v", th.Err)
	}
	if out.String() != "ab\n7\n" {
		t.Errorf("out = %q", out.String())
	}
}

func TestToStringDefaultAndGetClassName(t *testing.T) {
	var out bytes.Buffer
	th, _ := runThread(t, `
.class app/T
.method main ()I static
.locals 1
.stack 2
	new java/lang/Object
	astore 0
	getstatic java/lang/System.out Ljava/io/PrintStream;
	aload 0
	invokevirtual java/lang/Object.getClassName ()Ljava/lang/String;
	invokevirtual java/io/PrintStream.println (Ljava/lang/String;)V
	getstatic java/lang/System.out Ljava/io/PrintStream;
	aload 0
	invokevirtual java/lang/Object.toString ()Ljava/lang/String;
	invokevirtual java/io/PrintStream.println (Ljava/lang/String;)V
	aload 0
	invokevirtual java/lang/Object.hashCode ()I
	ireturn
.end
.end`, &out)
	if th.State != interp.StateFinished {
		t.Fatalf("%v", th.Err)
	}
	lines := strings.Split(out.String(), "\n")
	if lines[0] != "java/lang/Object" {
		t.Errorf("getClassName = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "java/lang/Object@") {
		t.Errorf("toString = %q", lines[1])
	}
}

func TestSystemGCRunsCollection(t *testing.T) {
	_, p := runThread(t, `
.class app/T
.method main ()I static
.locals 1
.stack 2
	ldc 4096
	newarray [I
	astore 0
	aconst_null
	astore 0
	invokestatic java/lang/System.gc ()V
	iconst 0
	ireturn
.end
.end`, nil)
	if p.Heap.Stats().GCs == 0 {
		t.Error("System.gc did not collect")
	}
}
