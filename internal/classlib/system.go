package classlib

import (
	"fmt"

	"repro/internal/interp"
	"repro/internal/object"
)

// buildThread defines java/lang/Thread (shared). A Thread object's green
// thread is wired up by the VM layer through Env.Spawn.
func buildThread(b *object.ModuleBuilder) {
	b.Class("java/lang/Thread", "java/lang/Object").
		Field("name", "Ljava/lang/String;").
		Field("priority", "I").
		Field("daemon", "Z").
		Method("<init>", "()V", false, `
	.locals 1
	.stack 2
	aload 0
	invokespecial java/lang/Object.<init> ()V
	aload 0
	iconst 5
	putfield java/lang/Thread.priority I
	return`).
		Method("run", "()V", false, `
	.locals 1
	.stack 1
	return`).
		Native("start", "()V", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			if t.Env.Spawn == nil {
				return interp.Slot{}, t.Env.Throw(t, "java/lang/UnsupportedOperationException", "no scheduler")
			}
			if err := t.Env.Spawn(t, args[0].R); err != nil {
				return interp.Slot{}, err
			}
			return interp.Slot{}, nil
		})).
		Native("sleep", "(I)V", true, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			if t.Env.SleepMillis != nil {
				t.Env.SleepMillis(t, args[0].I)
			}
			return interp.Slot{}, nil
		})).
		Native("yield", "()V", true, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			if t.Env.YieldThread != nil {
				t.Env.YieldThread(t)
			}
			return interp.Slot{}, nil
		})).
		Native("join", "()V", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			if t.Env.JoinThread == nil {
				return interp.Slot{}, t.Env.Throw(t, "java/lang/UnsupportedOperationException", "no scheduler")
			}
			t.Env.JoinThread(t, args[0].R)
			return interp.Slot{}, nil
		})).
		Native("isAlive", "()Z", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			if t.Env.ThreadAlive != nil && t.Env.ThreadAlive(t, args[0].R) {
				return interp.IntSlot(1), nil
			}
			return interp.IntSlot(0), nil
		}))
}

// buildReloaded defines the per-process classes. These are exactly the
// classes the paper's §3.2 forces to reload: classes exporting mutable
// statics as part of their public interface (java/io/FileDescriptor's in/
// out/err, java/lang/System's streams) and classes whose state must not
// leak across processes (java/util/Random's default source).
func buildReloaded(b *object.ModuleBuilder) {
	// java/io/FileDescriptor — the paper's canonical reload example.
	b.Class("java/io/FileDescriptor", "java/lang/Object").
		StaticField("in", "Ljava/io/FileDescriptor;").
		StaticField("out", "Ljava/io/FileDescriptor;").
		StaticField("err", "Ljava/io/FileDescriptor;").
		Field("fd", "I").
		DefaultInit().
		Method("<clinit>", "()V", true, `
	.locals 0
	.stack 3
	new java/io/FileDescriptor
	dup
	invokespecial java/io/FileDescriptor.<init> ()V
	putstatic java/io/FileDescriptor.in Ljava/io/FileDescriptor;
	new java/io/FileDescriptor
	dup
	invokespecial java/io/FileDescriptor.<init> ()V
	putstatic java/io/FileDescriptor.out Ljava/io/FileDescriptor;
	new java/io/FileDescriptor
	dup
	invokespecial java/io/FileDescriptor.<init> ()V
	putstatic java/io/FileDescriptor.err Ljava/io/FileDescriptor;
	return`)

	// java/io/PrintStream: println and friends write to the per-process
	// output sink.
	ps := b.Class("java/io/PrintStream", "java/lang/Object")
	ps.DefaultInit()
	ps.Native("println", "(Ljava/lang/String;)V", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
		writeOut(t, GoString(args[1].R)+"\n")
		return interp.Slot{}, nil
	}))
	ps.Native("print", "(Ljava/lang/String;)V", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
		writeOut(t, GoString(args[1].R))
		return interp.Slot{}, nil
	}))
	ps.Native("printlnInt", "(I)V", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
		writeOut(t, fmt.Sprintf("%d\n", args[1].I))
		return interp.Slot{}, nil
	}))

	// java/lang/System: reloaded because out/err are per-process state.
	sys := b.Class("java/lang/System", "java/lang/Object")
	sys.StaticField("out", "Ljava/io/PrintStream;").
		StaticField("err", "Ljava/io/PrintStream;").
		Method("<clinit>", "()V", true, `
	.locals 0
	.stack 3
	new java/io/PrintStream
	dup
	invokespecial java/io/PrintStream.<init> ()V
	putstatic java/lang/System.out Ljava/io/PrintStream;
	new java/io/PrintStream
	dup
	invokespecial java/io/PrintStream.<init> ()V
	putstatic java/lang/System.err Ljava/io/PrintStream;
	return`)
	sys.Native("currentTimeMillis", "()I", true, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
		if t.Env.NowMillis == nil {
			return interp.IntSlot(0), nil
		}
		return interp.IntSlot(t.Env.NowMillis()), nil
	}))
	sys.Native("arraycopy", "(Ljava/lang/Object;ILjava/lang/Object;II)V", true, nat(arraycopy))
	sys.Native("gc", "()V", true, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
		if t.Env.CollectHeap != nil {
			t.Env.CollectHeap(t, t.AllocHeap())
		}
		return interp.Slot{}, nil
	}))

	// java/util/Random: deterministic per-instance PRNG; the default
	// source (seeded from process identity) is per-process state. The
	// per-instance state is a prng, whose single-word state deep-copies on
	// process fork; the per-process default (Env.RandFor) stays a
	// *rand.Rand owned by the process.
	rnd := b.Class("java/util/Random", "java/lang/Object")
	rnd.Native("<init>", "(I)V", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
		args[0].R.Data = newPrng(args[1].I)
		return interp.Slot{}, nil
	}))
	rnd.Native("nextInt", "(I)I", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
		r, _ := args[0].R.Data.(randSource)
		if r == nil && t.Env.RandFor != nil {
			r = t.Env.RandFor(t)
		}
		if r == nil {
			p := newPrng(1)
			args[0].R.Data = p
			r = p
		}
		n := args[1].I
		if n <= 0 {
			return interp.Slot{}, t.Env.Throw(t, "java/lang/IllegalArgumentException", "bound must be positive")
		}
		return interp.IntSlot(int64(r.Intn(int(n)))), nil
	}))
	rnd.Native("nextDouble", "()D", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
		r, _ := args[0].R.Data.(randSource)
		if r == nil {
			p := newPrng(1)
			args[0].R.Data = p
			r = p
		}
		return fToSlot(r.Float64()), nil
	}))
}

// randSource is the operations java/util/Random needs; satisfied by both
// the per-instance prng and the process' default *rand.Rand.
type randSource interface {
	Intn(n int) int
	Float64() float64
}

// prng is java/util/Random's per-instance native state: a splitmix64
// generator whose entire state is one word, so a process fork can clone it
// by value and template forks never share a sequence.
type prng struct {
	s uint64
}

func newPrng(seed int64) *prng {
	return &prng{s: uint64(seed)}
}

func (p *prng) next() uint64 {
	p.s += 0x9E3779B97F4A7C15
	z := p.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (p *prng) Intn(n int) int { return int(p.next() % uint64(n)) }

func (p *prng) Float64() float64 { return float64(p.next()>>11) / (1 << 53) }

// CloneData implements object.DataCloner for process forks.
func (p *prng) CloneData() any {
	c := *p
	return &c
}

func writeOut(t *interp.Thread, s string) {
	if t.Env.Stdout == nil {
		return
	}
	if w := t.Env.Stdout(t); w != nil {
		_, _ = w.Write([]byte(s))
	}
}

// arraycopy implements System.arraycopy with bounds checks, overlap
// handling, element-type checks for reference arrays, and — critically for
// the paper — a write-barrier check per reference element copied.
func arraycopy(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
	src, dst := args[0].R, args[2].R
	srcPos, dstPos, n := args[1].I, args[3].I, args[4].I
	if src == nil || dst == nil {
		return interp.Slot{}, t.Env.Throw(t, interp.ClsNullPointer, "arraycopy")
	}
	if !src.IsArray() || !dst.IsArray() {
		return interp.Slot{}, t.Env.Throw(t, interp.ClsArrayStore, "arraycopy of non-arrays")
	}
	if srcPos < 0 || dstPos < 0 || n < 0 ||
		srcPos+n > int64(src.ArrayLen()) || dstPos+n > int64(dst.ArrayLen()) {
		return interp.Slot{}, t.Env.Throw(t, interp.ClsArrayIndex, "arraycopy bounds")
	}
	srcRef := src.Class.ElemDesc.Ref()
	dstRef := dst.Class.ElemDesc.Ref()
	if srcRef != dstRef {
		return interp.Slot{}, t.Env.Throw(t, interp.ClsArrayStore, "arraycopy element kind mismatch")
	}
	if !srcRef {
		copy(dst.Prims[dstPos:dstPos+n], src.Prims[srcPos:srcPos+n])
		cost := n / 2
		t.Fuel -= cost
		t.Cycles += uint64(cost)
		return interp.Slot{}, nil
	}
	// Reference copy: run the write barrier per element.
	bar := t.Env.Barrier
	tmp := make([]*object.Object, n)
	copy(tmp, src.Refs[srcPos:srcPos+n])
	for i := int64(0); i < n; i++ {
		v := tmp[i]
		if v != nil && dst.Class.ElemClass != nil && !dst.Class.ElemClass.AssignableFrom(v.Class) {
			return interp.Slot{}, t.Env.Throw(t, interp.ClsArrayStore, v.Class.Name)
		}
		if bar.Enabled() {
			cost := int64(bar.CheckCost())
			t.Fuel -= cost
			t.Cycles += uint64(cost)
			if err := bar.Write(t.Env.Reg, dst, v, t.InKernel(), t.Env.BarrierStats); err != nil {
				return interp.Slot{}, t.Env.Throw(t, interp.ClsSegViolation, err.Error())
			}
		}
		dst.Refs[dstPos+i] = v
	}
	return interp.Slot{}, nil
}
