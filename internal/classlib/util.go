package classlib

import (
	"math"

	"repro/internal/interp"
)

func slotToF(s interp.Slot) float64 { return math.Float64frombits(uint64(s.I)) }
func fToSlot(v float64) interp.Slot { return interp.IntSlot(int64(math.Float64bits(v))) }

func sqrtGo(x float64) float64  { return math.Sqrt(x) }
func sinGo(x float64) float64   { return math.Sin(x) }
func cosGo(x float64) float64   { return math.Cos(x) }
func floorGo(x float64) float64 { return math.Floor(x) }
