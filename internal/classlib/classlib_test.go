// Tests for the class library run programs on a full VM (external test
// package: core imports classlib, so classlib's own tests use core from
// the outside).
package classlib_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/classlib"
	"repro/internal/core"
	"repro/internal/interp"
)

// runInt executes cls.main()I in a fresh process and returns the result.
func runInt(t *testing.T, src string) int64 {
	t.Helper()
	th, _ := runThread(t, src, nil)
	if th.State != interp.StateFinished {
		t.Fatalf("state %v err %v uncaught %v", th.State, th.Err, th.Uncaught)
	}
	return th.Result.I
}

func runThread(t *testing.T, src string, out *bytes.Buffer) (*interp.Thread, *core.Process) {
	t.Helper()
	vm, err := core.NewVM(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	opts := core.ProcessOptions{MemLimit: 32 << 20}
	if out != nil {
		opts.Out = out
	}
	p, err := vm.NewProcess("t", opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Load(bytecode.MustAssemble(src)); err != nil {
		t.Fatal(err)
	}
	th, err := p.Spawn("app/T", "main()I")
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	return th, p
}

func TestStringOperations(t *testing.T) {
	got := runInt(t, `
.class app/T
.method main ()I static
.locals 3
.stack 3
	ldc "kaffeos"
	astore 0
	aload 0
	invokevirtual java/lang/String.length ()I
	istore 1
	aload 0
	iconst 0
	invokevirtual java/lang/String.charAt (I)I
	iload 1
	iadd
	istore 1
	aload 0
	ldc "kaf"
	invokevirtual java/lang/String.startsWith (Ljava/lang/String;)Z
	iload 1
	iadd
	istore 1
	aload 0
	iconst 102
	invokevirtual java/lang/String.indexOf (I)I
	iload 1
	iadd
	ireturn
.end
.end`)
	// length 7 + 'k' 107 + startsWith 1 + indexOf('f') 2 = 117
	if got != 117 {
		t.Errorf("got %d, want 117", got)
	}
}

func TestStringBuilderAndInteger(t *testing.T) {
	got := runInt(t, `
.class app/T
.method main ()I static
.locals 2
.stack 3
	new java/lang/StringBuilder
	dup
	invokespecial java/lang/StringBuilder.<init> ()V
	astore 0
	aload 0
	ldc "12"
	invokevirtual java/lang/StringBuilder.append (Ljava/lang/String;)Ljava/lang/StringBuilder;
	iconst 34
	invokevirtual java/lang/StringBuilder.appendInt (I)Ljava/lang/StringBuilder;
	invokevirtual java/lang/StringBuilder.toString ()Ljava/lang/String;
	invokestatic java/lang/Integer.parseInt (Ljava/lang/String;)I
	ireturn
.end
.end`)
	if got != 1234 {
		t.Errorf("got %d, want 1234", got)
	}
}

func TestParseIntErrors(t *testing.T) {
	got := runInt(t, `
.class app/T
.method main ()I static
.locals 1
.stack 2
T0:	ldc "12x4"
	invokestatic java/lang/Integer.parseInt (Ljava/lang/String;)I
	ireturn
T1:	pop
	iconst -7
	ireturn
.catch java/lang/NumberFormatException T0 T1 T1
.end
.end`)
	if got != -7 {
		t.Errorf("got %d", got)
	}
}

func TestMathNatives(t *testing.T) {
	got := runInt(t, `
.class app/T
.method main ()I static
.locals 0
.stack 4
	ldc 144.0
	invokestatic java/lang/Math.sqrt (D)D
	d2i
	iconst -5
	invokestatic java/lang/Math.abs (I)I
	iadd
	iconst 3
	iconst 9
	invokestatic java/lang/Math.max (II)I
	iadd
	iconst 3
	iconst 9
	invokestatic java/lang/Math.min (II)I
	iadd
	ireturn
.end
.end`)
	if got != 12+5+9+3 {
		t.Errorf("got %d, want 29", got)
	}
}

func TestVectorAndStack(t *testing.T) {
	got := runInt(t, `
.class app/T
.method main ()I static
.locals 3
.stack 4
	new java/util/Stack
	dup
	invokespecial java/util/Stack.<init> ()V
	astore 0
	iconst 0
	istore 1
L0:	iload 1
	iconst 30
	if_icmpge POPS
	aload 0
	new java/lang/Integer
	dup
	iload 1
	invokespecial java/lang/Integer.<init> (I)V
	invokevirtual java/util/Stack.push (Ljava/lang/Object;)Ljava/lang/Object;
	pop
	iinc 1 1
	goto L0
POPS:	aload 0
	invokevirtual java/util/Stack.pop ()Ljava/lang/Object;
	checkcast java/lang/Integer
	invokevirtual java/lang/Integer.intValue ()I
	aload 0
	invokevirtual java/util/Vector.size ()I
	iadd
	ireturn
.end
.end`)
	// last pushed 29 + remaining size 29 = 58
	if got != 58 {
		t.Errorf("got %d, want 58", got)
	}
}

func TestLinkedList(t *testing.T) {
	got := runInt(t, `
.class app/T
.method main ()I static
.locals 2
.stack 4
	new java/util/LinkedList
	dup
	invokespecial java/util/LinkedList.<init> ()V
	astore 0
	aload 0
	new java/lang/Integer
	dup
	iconst 5
	invokespecial java/lang/Integer.<init> (I)V
	invokevirtual java/util/LinkedList.addLast (Ljava/lang/Object;)V
	aload 0
	new java/lang/Integer
	dup
	iconst 7
	invokespecial java/lang/Integer.<init> (I)V
	invokevirtual java/util/LinkedList.addLast (Ljava/lang/Object;)V
	aload 0
	invokevirtual java/util/LinkedList.removeFirst ()Ljava/lang/Object;
	checkcast java/lang/Integer
	invokevirtual java/lang/Integer.intValue ()I
	aload 0
	invokevirtual java/util/LinkedList.size ()I
	iadd
	ireturn
.end
.end`)
	if got != 5+1 {
		t.Errorf("got %d, want 6", got)
	}
}

func TestStringTokenizer(t *testing.T) {
	got := runInt(t, `
.class app/T
.method main ()I static
.locals 2
.stack 4
	new java/util/StringTokenizer
	dup
	ldc "a bb  ccc dddd"
	ldc " "
	invokespecial java/util/StringTokenizer.<init> (Ljava/lang/String;Ljava/lang/String;)V
	astore 0
	iconst 0
	istore 1
L0:	aload 0
	invokevirtual java/util/StringTokenizer.hasMoreTokens ()Z
	ifeq OUT
	iload 1
	aload 0
	invokevirtual java/util/StringTokenizer.nextToken ()Ljava/lang/String;
	invokevirtual java/lang/String.length ()I
	iadd
	istore 1
	goto L0
OUT:	iload 1
	ireturn
.end
.end`)
	if got != 1+2+3+4 {
		t.Errorf("got %d, want 10", got)
	}
}

func TestArraysNatives(t *testing.T) {
	got := runInt(t, `
.class app/T
.method main ()I static
.locals 2
.stack 4
	iconst 5
	newarray [I
	astore 0
	aload 0
	iconst 0
	iconst 9
	iastore
	aload 0
	iconst 1
	iconst 3
	iastore
	aload 0
	iconst 2
	iconst 7
	iastore
	aload 0
	invokestatic java/util/Arrays.sort ([I)V
	aload 0
	iconst 4
	iaload
	aload 0
	iconst 3
	iaload
	iconst 10
	imul
	iadd
	ireturn
.end
.end`)
	// sorted: [0,0,3,7,9] -> a[4]=9 + 10*a[3]=70 = 79
	if got != 79 {
		t.Errorf("got %d, want 79", got)
	}
}

func TestSystemArraycopy(t *testing.T) {
	got := runInt(t, `
.class app/T
.method main ()I static
.locals 2
.stack 6
	iconst 4
	newarray [I
	astore 0
	aload 0
	iconst 0
	ldc 11
	iastore
	aload 0
	iconst 1
	ldc 22
	iastore
	iconst 4
	newarray [I
	astore 1
	aload 0
	iconst 0
	aload 1
	iconst 2
	iconst 2
	invokestatic java/lang/System.arraycopy (Ljava/lang/Object;ILjava/lang/Object;II)V
	aload 1
	iconst 2
	iaload
	aload 1
	iconst 3
	iaload
	iadd
	ireturn
.end
.end`)
	if got != 33 {
		t.Errorf("got %d, want 33", got)
	}
}

func TestArraycopyBoundsThrow(t *testing.T) {
	got := runInt(t, `
.class app/T
.method main ()I static
.locals 1
.stack 6
	iconst 2
	newarray [I
	astore 0
T0:	aload 0
	iconst 0
	aload 0
	iconst 1
	iconst 5
	invokestatic java/lang/System.arraycopy (Ljava/lang/Object;ILjava/lang/Object;II)V
	iconst 0
	ireturn
T1:	pop
	iconst 1
	ireturn
.catch java/lang/ArrayIndexOutOfBoundsException T0 T1 T1
.end
.end`)
	if got != 1 {
		t.Errorf("bounds not enforced: %d", got)
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := runInt(t, randomSrc)
	b := runInt(t, randomSrc)
	if a != b {
		t.Errorf("Random not deterministic: %d vs %d", a, b)
	}
}

const randomSrc = `
.class app/T
.method main ()I static
.locals 2
.stack 4
	new java/util/Random
	dup
	ldc 42
	invokespecial java/util/Random.<init> (I)V
	astore 0
	aload 0
	ldc 1000
	invokevirtual java/util/Random.nextInt (I)I
	aload 0
	ldc 1000
	invokevirtual java/util/Random.nextInt (I)I
	iadd
	ireturn
.end
.end`

func TestThrowableMessages(t *testing.T) {
	var out bytes.Buffer
	th, _ := runThread(t, `
.class app/T
.method main ()I static
.locals 1
.stack 3
	new java/lang/RuntimeException
	dup
	invokespecial java/lang/RuntimeException.<init> ()V
	astore 0
	aload 0
	ldc "custom message"
	invokevirtual java/lang/Throwable.initMessage (Ljava/lang/String;)V
	getstatic java/lang/System.out Ljava/io/PrintStream;
	aload 0
	invokevirtual java/lang/Object.toString ()Ljava/lang/String;
	invokevirtual java/io/PrintStream.println (Ljava/lang/String;)V
	iconst 0
	ireturn
.end
.end`, &out)
	if th.State != interp.StateFinished {
		t.Fatalf("err %v", th.Err)
	}
	if !strings.Contains(out.String(), "custom message") {
		t.Errorf("output %q", out.String())
	}
}

func TestObjectIdentityAndEquals(t *testing.T) {
	got := runInt(t, `
.class app/T
.method main ()I static
.locals 2
.stack 3
	new java/lang/Object
	astore 0
	new java/lang/Object
	astore 1
	aload 0
	aload 0
	invokevirtual java/lang/Object.equals (Ljava/lang/Object;)Z
	aload 0
	aload 1
	invokevirtual java/lang/Object.equals (Ljava/lang/Object;)Z
	iconst 10
	imul
	iadd
	ireturn
.end
.end`)
	if got != 1 {
		t.Errorf("identity equals broken: %d", got)
	}
}

func TestStringEqualsAcrossAllocation(t *testing.T) {
	// Two separately built strings with the same content: == is false,
	// equals is true (the paper's §3.3 semantics change).
	got := runInt(t, `
.class app/T
.method main ()I static
.locals 2
.stack 3
	ldc "ab"
	ldc "cd"
	invokevirtual java/lang/String.concat (Ljava/lang/String;)Ljava/lang/String;
	astore 0
	ldc "abcd"
	astore 1
	aload 0
	aload 1
	if_acmpeq SAME
	aload 0
	aload 1
	invokevirtual java/lang/String.equals (Ljava/lang/Object;)Z
	ireturn
SAME:	iconst -1
	ireturn
.end
.end`)
	if got != 1 {
		t.Errorf("got %d: want pointer-different but equals-true", got)
	}
}

func TestCensusNumbers(t *testing.T) {
	lib := classlib.New()
	shared, reloaded, pct := lib.Census()
	t.Logf("census: %d shared, %d reloaded, %.0f%%", shared, reloaded, pct)
	if shared < 40 {
		t.Errorf("library too small: %d shared classes", shared)
	}
	if reloaded < 4 {
		t.Errorf("expected at least the paper's reload set, got %d", reloaded)
	}
	names := lib.ReloadedClassNames()
	want := "java/io/FileDescriptor"
	found := false
	for _, n := range names {
		if n == want {
			found = true
		}
	}
	if !found {
		t.Errorf("%s must be reloaded (the paper's canonical example)", want)
	}
}
