package classlib

import (
	"repro/internal/interp"
	"repro/internal/object"
)

// buildThrowables defines the throwable hierarchy (all shared). Throwable's
// message lives in the native payload so the VM can construct throwables
// without running bytecode.
func buildThrowables(b *object.ModuleBuilder) {
	b.Class("java/lang/Throwable", "java/lang/Object").
		Method("<init>", "()V", false, `
	.locals 1
	.stack 1
	aload 0
	invokespecial java/lang/Object.<init> ()V
	return`).
		Native("initMessage", "(Ljava/lang/String;)V", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			args[0].R.Data = GoString(args[1].R)
			return interp.Slot{}, nil
		})).
		Native("getMessage", "()Ljava/lang/String;", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			msg, _ := args[0].R.Data.(string)
			if msg == "" {
				return interp.Slot{}, nil
			}
			return newString(t, msg)
		})).
		Native("toString", "()Ljava/lang/String;", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			o := args[0].R
			msg, _ := o.Data.(string)
			s := o.Class.Name
			if msg != "" {
				s += ": " + msg
			}
			return newString(t, s)
		}))

	// The hierarchy. Each gets the canonical no-arg constructor; message-
	// bearing construction goes through initMessage.
	sub := func(name, super string) {
		b.Class(name, super).Method("<init>", "()V", false, `
	.locals 1
	.stack 1
	aload 0
	invokespecial `+super+`.<init> ()V
	return`)
	}
	sub("java/lang/Exception", "java/lang/Throwable")
	sub("java/lang/RuntimeException", "java/lang/Exception")
	sub("java/lang/Error", "java/lang/Throwable")
	sub("java/lang/VirtualMachineError", "java/lang/Error")

	sub("java/lang/NullPointerException", "java/lang/RuntimeException")
	sub("java/lang/ArithmeticException", "java/lang/RuntimeException")
	sub("java/lang/IndexOutOfBoundsException", "java/lang/RuntimeException")
	sub("java/lang/ArrayIndexOutOfBoundsException", "java/lang/IndexOutOfBoundsException")
	sub("java/lang/StringIndexOutOfBoundsException", "java/lang/IndexOutOfBoundsException")
	sub("java/lang/ArrayStoreException", "java/lang/RuntimeException")
	sub("java/lang/ClassCastException", "java/lang/RuntimeException")
	sub("java/lang/NegativeArraySizeException", "java/lang/RuntimeException")
	sub("java/lang/IllegalArgumentException", "java/lang/RuntimeException")
	sub("java/lang/NumberFormatException", "java/lang/IllegalArgumentException")
	sub("java/lang/IllegalStateException", "java/lang/RuntimeException")
	sub("java/lang/IllegalMonitorStateException", "java/lang/RuntimeException")
	sub("java/lang/UnsupportedOperationException", "java/lang/RuntimeException")
	sub("java/lang/InterruptedException", "java/lang/Exception")
	sub("java/util/NoSuchElementException", "java/lang/RuntimeException")
	sub("java/util/EmptyStackException", "java/lang/RuntimeException")

	sub("java/lang/OutOfMemoryError", "java/lang/VirtualMachineError")
	sub("java/lang/StackOverflowError", "java/lang/VirtualMachineError")
	sub("java/lang/InternalError", "java/lang/VirtualMachineError")
	sub("java/lang/ThreadDeath", "java/lang/Error")

	// KaffeOS-specific: the paper's "segmentation violation", raised by
	// the write barrier on illegal cross-heap stores, and the error a
	// process sees when its kill is delivered.
	sub("kaffeos/SegmentationViolationError", "java/lang/Error")
	sub("kaffeos/ProcessKilledError", "java/lang/ThreadDeath")
}
