package classlib

import (
	"strings"

	"repro/internal/interp"
	"repro/internal/object"
)

// buildCollections defines java/util (all shared). Vector, Stack,
// Hashtable, and LinkedList are implemented in bytecode — they are the
// workhorses of the SPEC-like workloads, so implementing them in bytecode
// keeps allocation, pointer stores (write barriers!), and virtual dispatch
// inside the VM where the paper measures them.
func buildCollections(b *object.ModuleBuilder) {
	b.Class("java/util/Vector", "java/lang/Object").
		Field("elems", "[Ljava/lang/Object;").
		Field("count", "I").
		Method("<init>", "()V", false, `
	.locals 1
	.stack 3
	aload 0
	invokespecial java/lang/Object.<init> ()V
	aload 0
	iconst 8
	newarray [Ljava/lang/Object;
	putfield java/util/Vector.elems [Ljava/lang/Object;
	return`).
		Method("size", "()I", false, `
	.locals 1
	.stack 2
	aload 0
	getfield java/util/Vector.count I
	ireturn`).
		Method("add", "(Ljava/lang/Object;)V", false, `
	.locals 4
	.stack 6
	aload 0
	getfield java/util/Vector.count I
	aload 0
	getfield java/util/Vector.elems [Ljava/lang/Object;
	arraylength
	if_icmplt STORE
	aload 0
	getfield java/util/Vector.elems [Ljava/lang/Object;
	arraylength
	iconst 2
	imul
	newarray [Ljava/lang/Object;
	astore 2
	iconst 0
	istore 3
COPY:	iload 3
	aload 0
	getfield java/util/Vector.elems [Ljava/lang/Object;
	arraylength
	if_icmpge GROWN
	aload 2
	iload 3
	aload 0
	getfield java/util/Vector.elems [Ljava/lang/Object;
	iload 3
	aaload
	aastore
	iinc 3 1
	goto COPY
GROWN:	aload 0
	aload 2
	putfield java/util/Vector.elems [Ljava/lang/Object;
STORE:	aload 0
	getfield java/util/Vector.elems [Ljava/lang/Object;
	aload 0
	getfield java/util/Vector.count I
	aload 1
	aastore
	aload 0
	dup
	getfield java/util/Vector.count I
	iconst 1
	iadd
	putfield java/util/Vector.count I
	return`).
		Method("get", "(I)Ljava/lang/Object;", false, `
	.locals 2
	.stack 3
	iload 1
	aload 0
	getfield java/util/Vector.count I
	if_icmpge BAD
	iload 1
	iflt BAD
	aload 0
	getfield java/util/Vector.elems [Ljava/lang/Object;
	iload 1
	aaload
	areturn
BAD:	new java/lang/IndexOutOfBoundsException
	dup
	invokespecial java/lang/IndexOutOfBoundsException.<init> ()V
	athrow`).
		Method("set", "(ILjava/lang/Object;)V", false, `
	.locals 3
	.stack 3
	iload 1
	aload 0
	getfield java/util/Vector.count I
	if_icmpge BAD
	aload 0
	getfield java/util/Vector.elems [Ljava/lang/Object;
	iload 1
	aload 2
	aastore
	return
BAD:	new java/lang/IndexOutOfBoundsException
	dup
	invokespecial java/lang/IndexOutOfBoundsException.<init> ()V
	athrow`).
		Method("removeAllElements", "()V", false, `
	.locals 2
	.stack 3
	iconst 0
	istore 1
LOOP:	iload 1
	aload 0
	getfield java/util/Vector.count I
	if_icmpge DONE
	aload 0
	getfield java/util/Vector.elems [Ljava/lang/Object;
	iload 1
	aconst_null
	aastore
	iinc 1 1
	goto LOOP
DONE:	aload 0
	iconst 0
	putfield java/util/Vector.count I
	return`)

	b.Class("java/util/Stack", "java/util/Vector").
		Method("<init>", "()V", false, `
	.locals 1
	.stack 1
	aload 0
	invokespecial java/util/Vector.<init> ()V
	return`).
		Method("push", "(Ljava/lang/Object;)Ljava/lang/Object;", false, `
	.locals 2
	.stack 2
	aload 0
	aload 1
	invokevirtual java/util/Vector.add (Ljava/lang/Object;)V
	aload 1
	areturn`).
		Method("pop", "()Ljava/lang/Object;", false, `
	.locals 3
	.stack 4
	aload 0
	getfield java/util/Vector.count I
	ifle EMPTY
	aload 0
	aload 0
	getfield java/util/Vector.count I
	iconst 1
	isub
	invokevirtual java/util/Vector.get (I)Ljava/lang/Object;
	astore 1
	aload 0
	dup
	getfield java/util/Vector.count I
	iconst 1
	isub
	putfield java/util/Vector.count I
	aload 1
	areturn
EMPTY:	new java/util/EmptyStackException
	dup
	invokespecial java/util/EmptyStackException.<init> ()V
	athrow`).
		Method("empty", "()Z", false, `
	.locals 1
	.stack 2
	aload 0
	getfield java/util/Vector.count I
	ifne NO
	iconst 1
	ireturn
NO:	iconst 0
	ireturn`)

	b.Class("java/util/HashtableEntry", "java/lang/Object").
		Field("key", "Ljava/lang/Object;").
		Field("value", "Ljava/lang/Object;").
		Field("next", "Ljava/util/HashtableEntry;").
		DefaultInit()

	b.Class("java/util/Hashtable", "java/lang/Object").
		Field("table", "[Ljava/util/HashtableEntry;").
		Field("count", "I").
		Method("<init>", "()V", false, `
	.locals 1
	.stack 3
	aload 0
	invokespecial java/lang/Object.<init> ()V
	aload 0
	iconst 16
	newarray [Ljava/util/HashtableEntry;
	putfield java/util/Hashtable.table [Ljava/util/HashtableEntry;
	return`).
		Method("size", "()I", false, `
	.locals 1
	.stack 2
	aload 0
	getfield java/util/Hashtable.count I
	ireturn`).
		Method("indexFor", "(Ljava/lang/Object;)I", false, `
	.locals 2
	.stack 4
	aload 1
	invokevirtual java/lang/Object.hashCode ()I
	ldc 2147483647
	iand
	aload 0
	getfield java/util/Hashtable.table [Ljava/util/HashtableEntry;
	arraylength
	irem
	ireturn`).
		Method("put", "(Ljava/lang/Object;Ljava/lang/Object;)Ljava/lang/Object;", false, `
	.locals 6
	.stack 4
	aload 0
	aload 1
	invokevirtual java/util/Hashtable.indexFor (Ljava/lang/Object;)I
	istore 3
	aload 0
	getfield java/util/Hashtable.table [Ljava/util/HashtableEntry;
	iload 3
	aaload
	astore 4
WALK:	aload 4
	ifnull INSERT
	aload 4
	getfield java/util/HashtableEntry.key Ljava/lang/Object;
	aload 1
	invokevirtual java/lang/Object.equals (Ljava/lang/Object;)Z
	ifeq NEXT
	aload 4
	getfield java/util/HashtableEntry.value Ljava/lang/Object;
	astore 5
	aload 4
	aload 2
	putfield java/util/HashtableEntry.value Ljava/lang/Object;
	aload 5
	areturn
NEXT:	aload 4
	getfield java/util/HashtableEntry.next Ljava/util/HashtableEntry;
	astore 4
	goto WALK
INSERT:	new java/util/HashtableEntry
	dup
	invokespecial java/util/HashtableEntry.<init> ()V
	astore 4
	aload 4
	aload 1
	putfield java/util/HashtableEntry.key Ljava/lang/Object;
	aload 4
	aload 2
	putfield java/util/HashtableEntry.value Ljava/lang/Object;
	aload 4
	aload 0
	getfield java/util/Hashtable.table [Ljava/util/HashtableEntry;
	iload 3
	aaload
	putfield java/util/HashtableEntry.next Ljava/util/HashtableEntry;
	aload 0
	getfield java/util/Hashtable.table [Ljava/util/HashtableEntry;
	iload 3
	aload 4
	aastore
	aload 0
	dup
	getfield java/util/Hashtable.count I
	iconst 1
	iadd
	putfield java/util/Hashtable.count I
	aconst_null
	areturn`).
		Method("get", "(Ljava/lang/Object;)Ljava/lang/Object;", false, `
	.locals 4
	.stack 4
	aload 0
	getfield java/util/Hashtable.table [Ljava/util/HashtableEntry;
	aload 0
	aload 1
	invokevirtual java/util/Hashtable.indexFor (Ljava/lang/Object;)I
	aaload
	astore 2
WALK:	aload 2
	ifnull MISS
	aload 2
	getfield java/util/HashtableEntry.key Ljava/lang/Object;
	aload 1
	invokevirtual java/lang/Object.equals (Ljava/lang/Object;)Z
	ifeq NEXT
	aload 2
	getfield java/util/HashtableEntry.value Ljava/lang/Object;
	areturn
NEXT:	aload 2
	getfield java/util/HashtableEntry.next Ljava/util/HashtableEntry;
	astore 2
	goto WALK
MISS:	aconst_null
	areturn`).
		Method("containsKey", "(Ljava/lang/Object;)Z", false, `
	.locals 2
	.stack 2
	aload 0
	aload 1
	invokevirtual java/util/Hashtable.get (Ljava/lang/Object;)Ljava/lang/Object;
	ifnull NO
	iconst 1
	ireturn
NO:	iconst 0
	ireturn`)

	b.Class("java/util/ListNode", "java/lang/Object").
		Field("item", "Ljava/lang/Object;").
		Field("next", "Ljava/util/ListNode;").
		DefaultInit()

	b.Class("java/util/LinkedList", "java/lang/Object").
		Field("head", "Ljava/util/ListNode;").
		Field("tail", "Ljava/util/ListNode;").
		Field("count", "I").
		DefaultInit().
		Method("size", "()I", false, `
	.locals 1
	.stack 2
	aload 0
	getfield java/util/LinkedList.count I
	ireturn`).
		Method("addLast", "(Ljava/lang/Object;)V", false, `
	.locals 3
	.stack 3
	new java/util/ListNode
	dup
	invokespecial java/util/ListNode.<init> ()V
	astore 2
	aload 2
	aload 1
	putfield java/util/ListNode.item Ljava/lang/Object;
	aload 0
	getfield java/util/LinkedList.tail Ljava/util/ListNode;
	ifnull FIRST
	aload 0
	getfield java/util/LinkedList.tail Ljava/util/ListNode;
	aload 2
	putfield java/util/ListNode.next Ljava/util/ListNode;
	aload 0
	aload 2
	putfield java/util/LinkedList.tail Ljava/util/ListNode;
	goto BUMP
FIRST:	aload 0
	aload 2
	putfield java/util/LinkedList.head Ljava/util/ListNode;
	aload 0
	aload 2
	putfield java/util/LinkedList.tail Ljava/util/ListNode;
BUMP:	aload 0
	dup
	getfield java/util/LinkedList.count I
	iconst 1
	iadd
	putfield java/util/LinkedList.count I
	return`).
		Method("removeFirst", "()Ljava/lang/Object;", false, `
	.locals 2
	.stack 3
	aload 0
	getfield java/util/LinkedList.head Ljava/util/ListNode;
	ifnull EMPTY
	aload 0
	getfield java/util/LinkedList.head Ljava/util/ListNode;
	astore 1
	aload 0
	aload 1
	getfield java/util/ListNode.next Ljava/util/ListNode;
	putfield java/util/LinkedList.head Ljava/util/ListNode;
	aload 0
	getfield java/util/LinkedList.head Ljava/util/ListNode;
	ifnonnull SKIP
	aload 0
	aconst_null
	putfield java/util/LinkedList.tail Ljava/util/ListNode;
SKIP:	aload 0
	dup
	getfield java/util/LinkedList.count I
	iconst 1
	isub
	putfield java/util/LinkedList.count I
	aload 1
	getfield java/util/ListNode.item Ljava/lang/Object;
	areturn
EMPTY:	new java/util/NoSuchElementException
	dup
	invokespecial java/util/NoSuchElementException.<init> ()V
	athrow`)

	// StringTokenizer: tokenization state in the native payload.
	b.Class("java/util/StringTokenizer", "java/lang/Object").
		Native("<init>", "(Ljava/lang/String;Ljava/lang/String;)V", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			s, err := mustStr(t, args[1].R, "tokenizer input")
			if err != nil {
				return interp.Slot{}, err
			}
			delims, err := mustStr(t, args[2].R, "tokenizer delimiters")
			if err != nil {
				return interp.Slot{}, err
			}
			toks := strings.FieldsFunc(s, func(r rune) bool {
				return strings.ContainsRune(delims, r)
			})
			args[0].R.Data = &tokState{tokens: toks}
			return interp.Slot{}, nil
		})).
		Native("hasMoreTokens", "()Z", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			st := args[0].R.Data.(*tokState)
			if st.idx < len(st.tokens) {
				return interp.IntSlot(1), nil
			}
			return interp.IntSlot(0), nil
		})).
		Native("nextToken", "()Ljava/lang/String;", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			st := args[0].R.Data.(*tokState)
			if st.idx >= len(st.tokens) {
				return interp.Slot{}, t.Env.Throw(t, "java/util/NoSuchElementException", "no more tokens")
			}
			tok := st.tokens[st.idx]
			st.idx++
			return newString(t, tok)
		})).
		Native("countTokens", "()I", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			st := args[0].R.Data.(*tokState)
			return interp.IntSlot(int64(len(st.tokens) - st.idx)), nil
		}))

	// java/util/Arrays: primitive array helpers as natives.
	b.Class("java/util/Arrays", "java/lang/Object").
		Native("fill", "([II)V", true, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			arr := args[0].R
			if arr == nil {
				return interp.Slot{}, t.Env.Throw(t, interp.ClsNullPointer, "fill of null")
			}
			v := args[1].I
			for i := range arr.Prims {
				arr.Prims[i] = v
			}
			return interp.Slot{}, nil
		})).
		Native("copyOf", "([II)[I", true, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			arr := args[0].R
			if arr == nil {
				return interp.Slot{}, t.Env.Throw(t, interp.ClsNullPointer, "copyOf of null")
			}
			n := int(args[1].I)
			if n < 0 {
				return interp.Slot{}, t.Env.Throw(t, interp.ClsNegativeArraySize, "copyOf")
			}
			out, err := t.Env.AllocArray(t, arr.Class, n)
			if err != nil {
				return interp.Slot{}, err
			}
			copy(out.Prims, arr.Prims)
			return interp.RefSlot(out), nil
		})).
		Native("sort", "([I)V", true, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			arr := args[0].R
			if arr == nil {
				return interp.Slot{}, t.Env.Throw(t, interp.ClsNullPointer, "sort of null")
			}
			// Insertion sort: deterministic cycle cost proportional to the
			// work a bytecode implementation would do.
			a := arr.Prims
			cost := int64(0)
			for i := 1; i < len(a); i++ {
				v := a[i]
				j := i - 1
				for j >= 0 && a[j] > v {
					a[j+1] = a[j]
					j--
					cost += 4
				}
				a[j+1] = v
				cost += 6
			}
			t.Fuel -= cost
			t.Cycles += uint64(cost)
			return interp.Slot{}, nil
		}))
}

// tokState is java/util/StringTokenizer's native cursor. The token slice
// is immutable after construction; only the cursor advances.
type tokState struct {
	tokens []string
	idx    int
}

// CloneData implements object.DataCloner so a process fork copies the
// cursor position without aliasing it; the immutable tokens are shared.
func (s *tokState) CloneData() any {
	c := *s
	return &c
}
