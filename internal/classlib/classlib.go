// Package classlib provides the kvm runtime class library — the stand-in
// for the core Java libraries the paper's §3.2 examines.
//
// Every class is classified as shared or reloaded, following the paper's
// criteria: share as many classes as possible, but classes whose statics
// are per-process state (java/lang/System's streams,
// java/io/FileDescriptor's in/out/err, java/util/Random's default source)
// must be reloaded so each process gets its own copy. The census (Shared /
// Reloaded) backs the paper's "430 of 600 classes (72%) shared" statistic
// for our library.
package classlib

import (
	"fmt"
	"sort"

	"repro/internal/bytecode"
	"repro/internal/interp"
	"repro/internal/object"
)

// Library is the assembled class library.
type Library struct {
	// SharedModule is defined once into the shared system loader.
	SharedModule *bytecode.Module
	// ReloadedModule is defined into every process loader.
	ReloadedModule *bytecode.Module
	// Natives maps native keys to interp.NativeFunc implementations.
	Natives map[string]any
	// Kernel marks natives that must run in kernel mode.
	Kernel map[string]bool
}

// New builds the library.
func New() *Library {
	sb := object.NewModuleBuilder()
	rb := object.NewModuleBuilder()
	buildLang(sb)
	buildThrowables(sb)
	buildCollections(sb)
	buildThread(sb)
	buildReloaded(rb)

	natives := make(map[string]any)
	kernel := make(map[string]bool)
	for k, v := range sb.Natives {
		natives[k] = v
	}
	for k, v := range rb.Natives {
		natives[k] = v
	}
	for k := range sb.Kernel {
		kernel[k] = true
	}
	for k := range rb.Kernel {
		kernel[k] = true
	}
	return &Library{
		SharedModule:   sb.Module,
		ReloadedModule: rb.Module,
		Natives:        natives,
		Kernel:         kernel,
	}
}

// SharedClassNames lists the shared classes, sorted.
func (l *Library) SharedClassNames() []string { return classNames(l.SharedModule) }

// ReloadedClassNames lists the per-process classes, sorted.
func (l *Library) ReloadedClassNames() []string { return classNames(l.ReloadedModule) }

func classNames(m *bytecode.Module) []string {
	out := make([]string, 0, len(m.Classes))
	for _, c := range m.Classes {
		out = append(out, c.Name)
	}
	sort.Strings(out)
	return out
}

// Census reports (shared, reloaded, percent shared), the paper's §3.2
// statistic for this library.
func (l *Library) Census() (shared, reloaded int, pct float64) {
	shared = len(l.SharedModule.Classes)
	reloaded = len(l.ReloadedModule.Classes)
	pct = 100 * float64(shared) / float64(shared+reloaded)
	return
}

// GoString extracts the native string payload of a java/lang/String (or
// Throwable message). It tolerates nil.
func GoString(o *object.Object) string {
	if o == nil {
		return ""
	}
	if s, ok := o.Data.(string); ok {
		return s
	}
	return ""
}

// javaStringHash is the JDK String.hashCode algorithm.
func javaStringHash(s string) int32 {
	var h int32
	for _, c := range s {
		h = 31*h + int32(c)
	}
	return h
}

// nat adapts a Go function to the interp native calling convention.
func nat(f func(t *interp.Thread, args []interp.Slot) (interp.Slot, error)) interp.NativeFunc {
	return f
}

// mustStr fetches a string argument, raising NullPointerException when nil.
func mustStr(t *interp.Thread, o *object.Object, what string) (string, error) {
	if o == nil {
		return "", t.Env.Throw(t, interp.ClsNullPointer, what+" is null")
	}
	return GoString(o), nil
}

// newString allocates a string through the env.
func newString(t *interp.Thread, s string) (interp.Slot, error) {
	o, err := t.Env.NewString(t, s)
	if err != nil {
		return interp.Slot{}, err
	}
	return interp.RefSlot(o), nil
}

// buildLang defines java/lang core classes (shared).
func buildLang(b *object.ModuleBuilder) {
	// java/lang/Object: root of everything.
	b.Class("java/lang/Object", "").
		Method("<init>", "()V", false, "\t.locals 1\n\t.stack 1\n\treturn").
		Native("hashCode", "()I", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			return interp.IntSlot(int64(args[0].R.Hash)), nil
		})).
		Native("equals", "(Ljava/lang/Object;)Z", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			if args[0].R == args[1].R {
				return interp.IntSlot(1), nil
			}
			return interp.IntSlot(0), nil
		})).
		Native("toString", "()Ljava/lang/String;", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			o := args[0].R
			return newString(t, fmt.Sprintf("%s@%x", o.Class.Name, uint32(o.Hash)))
		})).
		Native("getClassName", "()Ljava/lang/String;", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			return newString(t, args[0].R.Class.Name)
		})).
		Native("wait", "()V", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			return interp.Slot{}, interp.Wait(t, args[0].R)
		})).
		Native("wait", "(I)V", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			ms := args[1].I
			if ms < 0 {
				return interp.Slot{}, t.Env.Throw(t, "java/lang/IllegalArgumentException", "negative timeout")
			}
			if t.Env.NowCycles == nil {
				return interp.Slot{}, interp.Wait(t, args[0].R)
			}
			deadline := t.Env.NowCycles() + uint64(ms)*500_000
			return interp.Slot{}, interp.WaitTimed(t, args[0].R, deadline)
		})).
		Native("notify", "()V", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			return interp.Slot{}, interp.Notify(t, args[0].R, false)
		})).
		Native("notifyAll", "()V", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			return interp.Slot{}, interp.Notify(t, args[0].R, true)
		}))

	// java/lang/String: immutable, payload in Data.
	b.Class("java/lang/String", "java/lang/Object").
		Native("length", "()I", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			return interp.IntSlot(int64(len(GoString(args[0].R)))), nil
		})).
		Native("charAt", "(I)I", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			s := GoString(args[0].R)
			i := args[1].I
			if i < 0 || i >= int64(len(s)) {
				return interp.Slot{}, t.Env.Throw(t, interp.ClsArrayIndex, fmt.Sprintf("charAt(%d) on length %d", i, len(s)))
			}
			return interp.IntSlot(int64(s[i])), nil
		})).
		Native("hashCode", "()I", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			return interp.IntSlot(int64(javaStringHash(GoString(args[0].R)))), nil
		})).
		Native("equals", "(Ljava/lang/Object;)Z", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			a := args[0].R
			bo := args[1].R
			if bo == nil || bo.Class != a.Class && bo.Class.Name != "java/lang/String" {
				return interp.IntSlot(0), nil
			}
			if GoString(a) == GoString(bo) {
				return interp.IntSlot(1), nil
			}
			return interp.IntSlot(0), nil
		})).
		Native("concat", "(Ljava/lang/String;)Ljava/lang/String;", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			other, err := mustStr(t, args[1].R, "concat argument")
			if err != nil {
				return interp.Slot{}, err
			}
			return newString(t, GoString(args[0].R)+other)
		})).
		Native("substring", "(II)Ljava/lang/String;", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			s := GoString(args[0].R)
			lo, hi := args[1].I, args[2].I
			if lo < 0 || hi > int64(len(s)) || lo > hi {
				return interp.Slot{}, t.Env.Throw(t, interp.ClsArrayIndex, fmt.Sprintf("substring(%d,%d) on length %d", lo, hi, len(s)))
			}
			return newString(t, s[lo:hi])
		})).
		Native("indexOf", "(I)I", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			s := GoString(args[0].R)
			c := byte(args[1].I)
			for i := 0; i < len(s); i++ {
				if s[i] == c {
					return interp.IntSlot(int64(i)), nil
				}
			}
			return interp.IntSlot(-1), nil
		})).
		Native("startsWith", "(Ljava/lang/String;)Z", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			p, err := mustStr(t, args[1].R, "startsWith argument")
			if err != nil {
				return interp.Slot{}, err
			}
			s := GoString(args[0].R)
			if len(s) >= len(p) && s[:len(p)] == p {
				return interp.IntSlot(1), nil
			}
			return interp.IntSlot(0), nil
		})).
		Native("toString", "()Ljava/lang/String;", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			return interp.RefSlot(args[0].R), nil
		})).
		Native("compareTo", "(Ljava/lang/String;)I", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			other, err := mustStr(t, args[1].R, "compareTo argument")
			if err != nil {
				return interp.Slot{}, err
			}
			a := GoString(args[0].R)
			switch {
			case a < other:
				return interp.IntSlot(-1), nil
			case a > other:
				return interp.IntSlot(1), nil
			}
			return interp.IntSlot(0), nil
		}))

	// java/lang/StringBuilder: mutable buffer in Data.
	b.Class("java/lang/StringBuilder", "java/lang/Object").
		Native("<init>", "()V", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			buf := make([]byte, 0, 16)
			args[0].R.Data = &buf
			return interp.Slot{}, nil
		})).
		Native("append", "(Ljava/lang/String;)Ljava/lang/StringBuilder;", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			sb := args[0].R
			s, err := mustStr(t, args[1].R, "append argument")
			if err != nil {
				return interp.Slot{}, err
			}
			buf := sb.Data.(*[]byte)
			*buf = append(*buf, s...)
			return interp.RefSlot(sb), nil
		})).
		Native("appendInt", "(I)Ljava/lang/StringBuilder;", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			sb := args[0].R
			buf := sb.Data.(*[]byte)
			*buf = append(*buf, fmt.Sprintf("%d", args[1].I)...)
			return interp.RefSlot(sb), nil
		})).
		Native("appendChar", "(I)Ljava/lang/StringBuilder;", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			sb := args[0].R
			buf := sb.Data.(*[]byte)
			*buf = append(*buf, byte(args[1].I))
			return interp.RefSlot(sb), nil
		})).
		Native("len", "()I", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			return interp.IntSlot(int64(len(*args[0].R.Data.(*[]byte)))), nil
		})).
		Native("toString", "()Ljava/lang/String;", false, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
			return newString(t, string(*args[0].R.Data.(*[]byte)))
		}))

	// java/lang/Math.
	b.Class("java/lang/Math", "java/lang/Object").
		Native("sqrt", "(D)D", true, dmath(func(x float64) float64 {
			return sqrtGo(x)
		})).
		Native("sin", "(D)D", true, dmath(sinGo)).
		Native("cos", "(D)D", true, dmath(cosGo)).
		Native("floor", "(D)D", true, dmath(floorGo)).
		Method("min", "(II)I", true, `
	.locals 2
	.stack 2
	iload 0
	iload 1
	if_icmple L0
	iload 1
	ireturn
L0:	iload 0
	ireturn`).
		Method("max", "(II)I", true, `
	.locals 2
	.stack 2
	iload 0
	iload 1
	if_icmpge L0
	iload 1
	ireturn
L0:	iload 0
	ireturn`).
		Method("abs", "(I)I", true, `
	.locals 1
	.stack 1
	iload 0
	ifge L0
	iload 0
	ineg
	ireturn
L0:	iload 0
	ireturn`)

	// Boxing classes: Number root plus Integer/Long/Boolean/Character etc.
	b.Class("java/lang/Number", "java/lang/Object").DefaultInit()
	intBox := b.Class("java/lang/Integer", "java/lang/Number").
		Field("value", "I").
		Method("<init>", "(I)V", false, `
	.locals 2
	.stack 2
	aload 0
	invokespecial java/lang/Number.<init> ()V
	aload 0
	iload 1
	putfield java/lang/Integer.value I
	return`).
		Method("intValue", "()I", false, `
	.locals 1
	.stack 2
	aload 0
	getfield java/lang/Integer.value I
	ireturn`)
	intBox.Native("parseInt", "(Ljava/lang/String;)I", true, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
		s, err := mustStr(t, args[0].R, "parseInt argument")
		if err != nil {
			return interp.Slot{}, err
		}
		var v int64
		var neg bool
		i := 0
		if len(s) > 0 && (s[0] == '-' || s[0] == '+') {
			neg = s[0] == '-'
			i = 1
		}
		if i == len(s) {
			return interp.Slot{}, t.Env.Throw(t, "java/lang/NumberFormatException", s)
		}
		for ; i < len(s); i++ {
			if s[i] < '0' || s[i] > '9' {
				return interp.Slot{}, t.Env.Throw(t, "java/lang/NumberFormatException", s)
			}
			v = v*10 + int64(s[i]-'0')
		}
		if neg {
			v = -v
		}
		return interp.IntSlot(v), nil
	}))
	intBox.Native("toString", "(I)Ljava/lang/String;", true, nat(func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
		return newString(t, fmt.Sprintf("%d", args[0].I))
	}))

	b.Class("java/lang/Long", "java/lang/Number").
		Field("value", "J").
		Method("<init>", "(J)V", false, `
	.locals 2
	.stack 2
	aload 0
	invokespecial java/lang/Number.<init> ()V
	aload 0
	iload 1
	putfield java/lang/Long.value J
	return`).
		Method("longValue", "()J", false, `
	.locals 1
	.stack 2
	aload 0
	getfield java/lang/Long.value J
	ireturn`)

	b.Class("java/lang/Boolean", "java/lang/Object").
		Field("value", "Z").
		Method("<init>", "(Z)V", false, `
	.locals 2
	.stack 2
	aload 0
	invokespecial java/lang/Object.<init> ()V
	aload 0
	iload 1
	putfield java/lang/Boolean.value Z
	return`).
		Method("booleanValue", "()Z", false, `
	.locals 1
	.stack 2
	aload 0
	getfield java/lang/Boolean.value Z
	ireturn`)

	b.Class("java/lang/Character", "java/lang/Object").
		Field("value", "C").
		Method("<init>", "(C)V", false, `
	.locals 2
	.stack 2
	aload 0
	invokespecial java/lang/Object.<init> ()V
	aload 0
	iload 1
	putfield java/lang/Character.value C
	return`).
		Method("charValue", "()C", false, `
	.locals 1
	.stack 2
	aload 0
	getfield java/lang/Character.value C
	ireturn`).
		Method("isDigit", "(I)Z", true, `
	.locals 1
	.stack 2
	iload 0
	iconst 48
	if_icmplt L0
	iload 0
	iconst 57
	if_icmpgt L0
	iconst 1
	ireturn
L0:	iconst 0
	ireturn`)

	b.Class("java/lang/Double", "java/lang/Number").
		Field("value", "D").
		Method("<init>", "(D)V", false, `
	.locals 2
	.stack 2
	aload 0
	invokespecial java/lang/Number.<init> ()V
	aload 0
	dload 1
	putfield java/lang/Double.value D
	return`).
		Method("doubleValue", "()D", false, `
	.locals 1
	.stack 2
	aload 0
	getfield java/lang/Double.value D
	dreturn`)

	b.Class("java/lang/Byte", "java/lang/Number").DefaultInit()
	b.Class("java/lang/Short", "java/lang/Number").DefaultInit()
	b.Class("java/lang/Float", "java/lang/Number").DefaultInit()
}

func dmath(f func(float64) float64) interp.NativeFunc {
	return func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
		x := slotToF(args[0])
		return fToSlot(f(x)), nil
	}
}
