package core

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentPollersDuringChurn hammers the introspection surface
// (/metrics, /spans, /audit, /procs) from concurrent scrapers while the
// VM churns processes through create/run/GC/reclaim. Run under -race
// this is the data-race acceptance test for the telemetry read paths:
// pollers must always get a well-formed answer and never a torn one.
func TestConcurrentPollersDuringChurn(t *testing.T) {
	vm := newTestVM(t)
	vm.Tel.SetTracing(true)
	vm.Tel.Spans.SetEnabled(true)

	ts := httptest.NewServer(vm.Tel.Handler(vm.Snapshot))
	defer ts.Close()

	churnSrc := `
.class app/Churn
.method main ()V static
.locals 2
.stack 3
	iconst 0
	istore 0
L0:	ldc 256
	newarray [I
	astore 1
	iinc 0 1
	iload 0
	ldc 2000
	if_icmplt L0
	return
.end
.end`

	done := make(chan struct{})
	var polls, failures atomic.Uint64
	var wg sync.WaitGroup
	paths := []string{"/metrics", "/spans", "/audit", "/procs"}
	for _, path := range paths {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			client := &http.Client{}
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := client.Get(ts.URL + path)
				if err != nil {
					failures.Add(1)
					continue
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					failures.Add(1)
					continue
				}
				switch path {
				case "/metrics":
					if !strings.Contains(string(body), "# TYPE kaffeos_") {
						failures.Add(1)
					}
				case "/procs", "/audit":
					if len(body) == 0 || body[0] != '{' {
						failures.Add(1)
					}
				}
				polls.Add(1)
			}
		}(path)
	}

	// The churn: short-lived processes allocating under a tight memlimit,
	// so the pollers race against create, GC, exit, and reclaim.
	for i := 0; i < 20; i++ {
		p := mustProc(t, vm, "churn", ProcessOptions{MemLimit: 1 << 20})
		load(t, p, churnSrc)
		spawn(t, p, "app/Churn", "main()V")
		if err := vm.Run(0); err != nil {
			t.Fatalf("churn round %d: %v", i, err)
		}
		if p.State() != ProcReclaimed {
			t.Fatalf("churn round %d: state %v, want reclaimed", i, p.State())
		}
	}
	close(done)
	wg.Wait()

	if failures.Load() != 0 {
		t.Errorf("%d polls failed or returned malformed bodies", failures.Load())
	}
	if polls.Load() < uint64(len(paths)) {
		t.Errorf("only %d successful polls across %d paths; pollers never got going", polls.Load(), len(paths))
	}
	t.Logf("%d polls served during churn", polls.Load())
}
