package core

import (
	"repro/internal/bytecode"
	"repro/internal/codecache"
	"repro/internal/object"
)

// The shared-code-cache wiring: module load, fork, checkpoint, and
// reclamation all pass through here. Compiled bodies are relocatable
// (see internal/interp/jit.go), so the first namespace to load a module
// compiles it once and every later namespace installs the same
// immutable artifact — paying an attach (a full-size memlimit debit,
// the paper's full-charging rule) instead of a compile.

// moduleClasses resolves the module's class definitions in p's
// namespace, in definition order.
func (p *Process) moduleClasses(m *bytecode.Module) ([]*object.Class, error) {
	classes := make([]*object.Class, 0, len(m.Classes))
	for _, def := range m.Classes {
		c, err := p.Loader.Class(def.Name)
		if err != nil {
			return nil, err
		}
		classes = append(classes, c)
	}
	return classes, nil
}

// moduleLabel names an artifact for ps/metrics: the module's first
// class (modules are anonymous linkable units).
func moduleLabel(m *bytecode.Module) string {
	if len(m.Classes) > 0 {
		return m.Classes[0].Name
	}
	return "(empty)"
}

// defineModule defines m into p's namespace. When the cache already
// holds an artifact for this exact content under the VM's engine
// variant, the per-process verification pass is skipped: the key is the
// module hash, so a resident artifact is proof that byte-identical
// bytecode verified (and compiled) once already. Verification is a
// property of the content, not the namespace — re-proving it per
// process would dominate exactly the cold starts the cache exists to
// shorten.
func (vm *VM) defineModule(p *Process, m *bytecode.Module) error {
	if vm.CodeMgr != nil &&
		vm.CodeMgr.Peek(codecache.Key{ModuleHash: m.Hash(), Variant: vm.engineJIT.Variant()}) {
		return p.Loader.DefinePreverified(m)
	}
	return p.Loader.DefineModule(m)
}

// attachCachedCode fetches (or compiles and inserts) the module's
// artifact for the VM's engine configuration, charges p the full
// artifact size, and seeds p's namespace with the compiled bodies. A
// no-op when the cache is off or the engine does not compile. On any
// failure — memlimit too small for the artifact, codecache.attach
// fault — nothing stays charged and no sharer is recorded; the caller
// decides whether the load survives without cached code.
func (vm *VM) attachCachedCode(p *Process, m *bytecode.Module) error {
	if vm.CodeMgr == nil {
		return nil
	}
	key := codecache.Key{ModuleHash: m.Hash(), Variant: vm.engineJIT.Variant()}
	classes, err := p.moduleClasses(m)
	if err != nil {
		return err
	}
	a, ok := vm.CodeMgr.Lookup(key)
	if !ok {
		prog, cerr := vm.engineJIT.CompileProgram(classes)
		if cerr != nil {
			return cerr
		}
		a, err = vm.CodeMgr.Insert(key, moduleLabel(m), prog)
		if err != nil {
			return err
		}
	}
	if err := vm.CodeMgr.Attach(a, p, p.Limit); err != nil {
		return err
	}
	vm.engineJIT.InstallProgram(a.Program, classes)
	return nil
}

// detachCachedCode credits back every artifact charge who (a process or
// template) holds — termination, creation failure, fork unwind.
func (vm *VM) detachCachedCode(who any) {
	if vm.CodeMgr != nil {
		vm.CodeMgr.DetachAll(who)
	}
}

// attachTemplateCode gives the template its own handle on each of its
// modules' artifacts, charged to the template's limit: the zygote's
// compiled code stays resident — structurally unevictable — for as long
// as the template lives, so forks share it even after the origin dies.
// Modules with no resident artifact (cache miss after an eviction race)
// are skipped; forks fall back to compiling.
func (vm *VM) attachTemplateCode(t *Template) error {
	if vm.CodeMgr == nil {
		return nil
	}
	for _, m := range t.modules {
		key := codecache.Key{ModuleHash: m.Hash(), Variant: vm.engineJIT.Variant()}
		a, ok := vm.CodeMgr.Lookup(key)
		if !ok {
			continue
		}
		if err := vm.CodeMgr.Attach(a, t, t.Limit); err != nil {
			return err
		}
	}
	return nil
}

// codeBytesFor reports p's code-cache residency (ps/top CODE column).
func (vm *VM) codeBytesFor(who any) uint64 {
	if vm.CodeMgr == nil {
		return 0
	}
	return vm.CodeMgr.BytesFor(who)
}
