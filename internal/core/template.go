package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"repro/internal/bytecode"
	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/loader"
	"repro/internal/memlimit"
	"repro/internal/object"
	"repro/internal/telemetry"
)

// Template is an immutable checkpoint of a warmed process: a frozen
// template heap holding a deep copy of the origin's objects at checkpoint
// time (statics, interned strings, warmed data structures), plus the
// module list needed to rebuild the origin's namespace. Forks stamp out
// fresh isolated processes from it by copying the heap again — paying a
// memcpy-shaped cost instead of class loading, verification, and <clinit>
// execution — so a supervisor can restart or scale a route in
// microseconds (the μFork observation applied to the paper's process
// model).
//
// A template is independent of its origin: the origin may exit, be
// killed, and be fully reclaimed without affecting the template or any
// process later forked from it. The template's residency is charged to
// its own memlimit child ("tmpl:<name>"), capped at exactly its frozen
// size, until Release destroys the heap and returns every byte.
type Template struct {
	// ID is the template's pid: templates draw from the same pid space as
	// processes and appear in ps/top with state "template".
	ID   Pid
	Name string
	VM   *VM
	// Origin is the pid of the checkpointed process (which may since have
	// died; the template does not keep it alive or depend on it).
	Origin Pid
	// Heap is the frozen KindTemplate heap holding the checkpoint.
	Heap *heap.Heap
	// Limit accounts the template's residency (heap bytes + exit items).
	Limit *memlimit.Limit

	// modules is the origin's load order — the reloaded library module
	// followed by every program module — replayed into each fork's
	// namespace without verification, statics allocation, or clinits.
	modules []*bytecode.Module
	// statics maps class name → the class' statics object inside the
	// template heap; forks bind their namespace's classes to copies.
	statics map[string]*object.Object
	// intern is the origin's interning table, retargeted into the
	// template heap; forks rebuild theirs from copies.
	intern map[string]*object.Object

	mu       sync.Mutex
	released bool
}

// TelemetryPid stamps heap/GC telemetry of the template heap.
func (t *Template) TelemetryPid() int32 { return int32(t.ID) }

// Bytes reports the frozen checkpoint's heap size.
func (t *Template) Bytes() uint64 { return t.Heap.Bytes() }

// Released reports whether the template has been destroyed.
func (t *Template) Released() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.released
}

// Checkpoint freezes a warmed process into an immutable Template. The
// process must be running and quiescent (no live threads): checkpoint is
// taken between Run slices, after init/warmup code has finished. The
// origin keeps running afterwards — the checkpoint is a copy, not a
// conversion — and the same process may be checkpointed again.
//
// A concurrent Kill of the origin is deterministic: checkpoint and
// reclamation serialize on the process' forkMu, so the checkpoint either
// completes from the still-live heap before reclamation proceeds, or
// finds the process dead and aborts cleanly with no residue.
func (vm *VM) Checkpoint(p *Process, name string) (*Template, error) {
	if p == nil || p.VM != vm {
		return nil, fmt.Errorf("core: checkpoint of foreign process")
	}
	if name == "" {
		name = p.Name
	}
	p.forkMu.Lock()
	defer p.forkMu.Unlock()
	if s := p.State(); s != ProcRunning {
		return nil, fmt.Errorf("core: checkpoint of %s process %d", s, p.ID)
	}
	if n := p.Threads(); n != 0 {
		return nil, fmt.Errorf("core: checkpoint of process %d with %d live thread(s)", p.ID, n)
	}

	vm.mu.Lock()
	vm.nextPid++
	pid := vm.nextPid
	vm.mu.Unlock()

	// The template pays for itself from the root pool while the copy runs;
	// once frozen, its max is pinned to exactly its residency.
	lim, err := vm.RootLimit.NewChild("tmpl:"+name, memlimit.Unlimited, false)
	if err != nil {
		return nil, fmt.Errorf("core: memlimit for template %q: %w", name, err)
	}
	t := &Template{ID: pid, Name: name, VM: vm, Origin: p.ID, Limit: lim}
	t.Heap = vm.Reg.NewHeap(heap.KindTemplate, fmt.Sprintf("tmpl:%s#%d", name, pid), lim)
	t.Heap.Owner = t
	t.Heap.Pid = int32(pid)

	// Snapshot the namespace state the fork path will need. forkMu
	// excludes reclamation, so the loader and interning table are stable.
	classes := p.Loader.Classes()
	p.mu.Lock()
	modules := append([]*bytecode.Module(nil), p.modules...)
	intern := make(map[string]*object.Object, len(p.intern))
	for s, o := range p.intern {
		intern[s] = o
	}
	p.mu.Unlock()

	unwind := func(err error) (*Template, error) {
		vm.detachCachedCode(t)
		_ = t.Heap.Destroy()
		lim.Release()
		if vm.Tel != nil {
			vm.Tel.Reg.Kernel().Counter(telemetry.MForkFailures).Inc()
		}
		return nil, err
	}

	// Identity class mapping: the template shares the origin's runtime
	// classes (they outlive the origin's namespace — forks map them into
	// their own namespaces by name).
	copies, err := p.Heap.CopyInto(t.Heap, func(c *object.Class) (*object.Class, error) { return c, nil })
	if err != nil {
		return unwind(fmt.Errorf("core: checkpoint of process %d: %w", p.ID, err))
	}

	t.modules = modules
	t.statics = make(map[string]*object.Object)
	for _, c := range classes {
		if c.Statics == nil {
			continue
		}
		st, ok := copies[c.Statics]
		if !ok {
			return unwind(fmt.Errorf("core: checkpoint: statics of %s not on process heap", c.Name))
		}
		t.statics[c.Name] = st
	}
	t.intern = make(map[string]*object.Object, len(intern))
	for s, o := range intern {
		if cp, ok := copies[o]; ok {
			t.intern[s] = cp
		}
	}

	// Pin the origin's compiled code before the residency cap is fixed:
	// the template's limit is charged the full size of each artifact, so
	// SetMax below covers heap bytes + code charges together.
	if err := vm.attachTemplateCode(t); err != nil {
		return unwind(fmt.Errorf("core: checkpoint of process %d: %w", p.ID, err))
	}

	t.Heap.Freeze()
	// Exact-size the residency cap: a frozen template never allocates.
	_ = lim.SetMax(lim.Use())

	vm.mu.Lock()
	vm.templates[pid] = t
	ntmpl := len(vm.templates)
	vm.mu.Unlock()

	if vm.Tel != nil {
		scope := vm.Tel.Reg.Proc(int32(pid))
		scope.SetMeta("state", "template")
		scope.Gauge(telemetry.MMemLimit).Set(lim.Max())
		k := vm.Tel.Reg.Kernel()
		k.Counter(telemetry.MForkCheckpoints).Inc()
		k.Gauge(telemetry.MForkTemplates).Set(uint64(ntmpl))
		vm.Tel.Emit(telemetry.Event{
			Kind: telemetry.EvCheckpoint, Pid: int32(pid),
			A: t.Heap.Bytes(), B: uint64(len(copies)), Detail: name,
		})
	}
	return t, nil
}

// Fork stamps out a fresh isolated process from the template: a new pid,
// a new memlimit child charged in full for the copied bytes, a new
// namespace with the template's modules defined (no verification, no
// statics allocation, no clinits — their effects arrive with the heap
// copy), and a deep copy of the template heap with statics and interned
// strings rebound. The clone is indistinguishable from a freshly-inited
// process that ran the same warmup (the fork differential suite holds it
// to byte-identical results, heap bytes, and cycles).
//
// On any failure — memlimit too small for the template, fork.copy fault —
// the half-built clone unwinds to zero residual charges and pages.
func (t *Template) Fork(name string, opts ProcessOptions) (*Process, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.released {
		return nil, fmt.Errorf("core: fork from released template %q", t.Name)
	}
	vm := t.VM
	if opts.MemLimit == 0 {
		opts.MemLimit = 16 << 20
	}
	lim, err := vm.RootLimit.NewChild("proc:"+name, opts.MemLimit, opts.HardLimit)
	if err != nil {
		return nil, fmt.Errorf("core: memlimit for %q: %w", name, err)
	}
	vm.mu.Lock()
	vm.nextPid++
	pid := vm.nextPid
	vm.mu.Unlock()

	p := &Process{
		ID:        pid,
		Name:      name,
		VM:        vm,
		Limit:     lim,
		Out:       opts.Out,
		threads:   make(map[*interp.Thread]struct{}),
		threadFor: make(map[*object.Object]*interp.Thread),
		intern:    make(map[string]*object.Object),
		rng:       rand.New(rand.NewSource(opts.Seed + int64(pid))),
		cpuLimit:  opts.CPULimit,
		ioLimit:   opts.IOLimit,
	}
	p.state.Store(uint32(ProcRunning))
	p.gcTrigger.Store(vm.Cfg.GCMinHeap)
	if vm.Tel != nil {
		scope := vm.Tel.Reg.Proc(int32(pid))
		p.ctrCPU = scope.Counter(telemetry.MCPUCycles)
		p.ctrIO = scope.Counter(telemetry.MIOBytes)
		p.ctrGCCharged = scope.Counter(telemetry.MGCCharged)
		p.ctrGCAdaptive = scope.Counter(telemetry.MGCAdaptive)
		scope.Gauge(telemetry.MMemLimit).Set(opts.MemLimit)
	}
	p.Heap = vm.Reg.NewHeap(heap.KindUser, fmt.Sprintf("proc:%s#%d", name, pid), lim)
	p.Heap.Owner = p
	p.Heap.Pid = int32(pid)
	p.emit(telemetry.EvProcCreate, opts.MemLimit, 0, name)
	p.Loader = loader.NewProcess(fmt.Sprintf("%s#%d", name, pid), p.Heap, vm.Shared)
	p.Loader.RegisterNatives(vm.Lib.Natives, vm.Lib.Kernel)

	unwind := func(err error) (*Process, error) {
		vm.detachCachedCode(p)
		_ = p.Heap.Destroy()
		lim.Release()
		p.reclaiming.Store(true)
		p.state.Store(uint32(ProcReclaimed))
		p.emit(telemetry.EvProcReclaim, 0, 0, "fork failed")
		if vm.Tel != nil {
			vm.Tel.Reg.Kernel().Counter(telemetry.MForkFailures).Inc()
		}
		return nil, err
	}

	// Rebuild the namespace from the recorded module list; the copied
	// statics objects stand in for allocation + clinit execution.
	for _, m := range t.modules {
		if err := p.Loader.DefineTemplate(m); err != nil {
			return unwind(fmt.Errorf("core: fork from template %q: %w", t.Name, err))
		}
	}

	copies, err := t.Heap.CopyInto(p.Heap, func(c *object.Class) (*object.Class, error) {
		if c.Shared {
			return c, nil
		}
		if base, ok := strings.CutSuffix(c.Name, "$statics"); ok {
			bc, cerr := p.Loader.Class(base)
			if cerr != nil {
				return nil, cerr
			}
			if bc.StaticsClass == nil {
				return nil, fmt.Errorf("core: fork: %s has no statics class", base)
			}
			return bc.StaticsClass, nil
		}
		return p.Loader.Class(c.Name)
	})
	if err != nil {
		return unwind(fmt.Errorf("core: fork from template %q: %w", t.Name, err))
	}

	// Bind each class' statics to its copy: this is where "<clinit>
	// already ran" becomes true in the clone.
	for _, c := range p.Loader.Classes() {
		if c.StaticsClass == nil {
			continue
		}
		src, ok := t.statics[c.Name]
		if !ok {
			return unwind(fmt.Errorf("core: fork: template %q has no statics for %s", t.Name, c.Name))
		}
		c.Statics = copies[src]
	}
	p.mu.Lock()
	for s, o := range t.intern {
		if cp, ok := copies[o]; ok {
			p.intern[s] = cp
		}
	}
	p.modules = append(p.modules, t.modules...)
	p.mu.Unlock()

	// Share the zygote's compiled code: each module's artifact is still
	// resident (the template holds a handle), so this attaches and
	// installs instead of compiling — the clone pays a memlimit debit,
	// not a JIT pass.
	for _, m := range t.modules {
		if err := vm.attachCachedCode(p, m); err != nil {
			return unwind(fmt.Errorf("core: fork from template %q: %w", t.Name, err))
		}
	}

	vm.mu.Lock()
	vm.procs[pid] = p
	vm.mu.Unlock()

	copied := p.Heap.Bytes()
	if vm.Tel != nil {
		k := vm.Tel.Reg.Kernel()
		k.Counter(telemetry.MForks).Inc()
		k.Counter(telemetry.MForkBytes).Add(copied)
		vm.Tel.Emit(telemetry.Event{
			Kind: telemetry.EvFork, Pid: int32(pid),
			A: copied, B: uint64(t.ID), Detail: name,
		})
	}
	return p, nil
}

// Release destroys the template: its heap unwinds to zero residual
// charges and pages, its memlimit child detaches, and its pid leaves the
// template table. Processes already forked from it are unaffected (they
// own full copies). Idempotent.
func (t *Template) Release() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.released {
		return nil
	}
	if err := t.Heap.Destroy(); err != nil {
		return fmt.Errorf("core: release of template %q: %w", t.Name, err)
	}
	t.VM.detachCachedCode(t)
	t.Limit.Release()
	t.released = true
	vm := t.VM
	vm.mu.Lock()
	delete(vm.templates, t.ID)
	ntmpl := len(vm.templates)
	vm.mu.Unlock()
	if vm.Tel != nil {
		vm.Tel.Reg.Kernel().Gauge(telemetry.MForkTemplates).Set(uint64(ntmpl))
		vm.Tel.Reg.Proc(int32(t.ID)).SetMeta("state", "released")
	}
	return nil
}

// Templates lists registered templates sorted by pid.
func (vm *VM) Templates() []*Template {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	out := make([]*Template, 0, len(vm.templates))
	for _, t := range vm.templates {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Template resolves a template pid.
func (vm *VM) Template(pid Pid) (*Template, bool) {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	t, ok := vm.templates[pid]
	return t, ok
}
