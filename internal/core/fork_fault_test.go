package core

import (
	"errors"
	"flag"
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/heap"
	"repro/internal/interp"
)

var forkFaultSeeds = flag.Int("fork.fault.seeds", 16, "seeds for the fork.copy crash sweep")

// TestForkCopyFaultSweep is the fork correctness wall's crash-consistency
// axis: the fork.copy site kills clone construction after the Nth object
// copied, both during Checkpoint and during Fork. Every aborted operation
// must unwind to zero orphaned pages and charges — proven by a full graph
// audit and an exact root-account check — and the VM must remain fully
// serviceable (the same template forks successfully once faults are
// disarmed).
func TestForkCopyFaultSweep(t *testing.T) {
	seeds := *forkFaultSeeds
	if testing.Short() {
		seeds = 4
	}
	fired := 0
	for seed := 1; seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("nth%d", seed), func(t *testing.T) {
			// Fire on the seed-th object copied; small seeds hit Checkpoint's
			// copy, larger ones may survive checkpoint and hit Fork's.
			plan, err := faults.ParsePlan(fmt.Sprintf("seed=%d,fork.copy=@%d/1", seed, seed*7))
			if err != nil {
				t.Fatal(err)
			}
			plane := faults.NewPlane(plan)
			vm, err := NewVM(Config{Faults: plane})
			if err != nil {
				t.Fatal(err)
			}
			baseline := vm.RootLimit.Use()
			origin := warmProc(t, vm, "zygote")

			tpl, cerr := vm.Checkpoint(origin, "zygote")
			if cerr != nil {
				if !errors.Is(cerr, heap.ErrCopyFault) {
					t.Fatalf("checkpoint failed for the wrong reason: %v", cerr)
				}
				fired++
			} else {
				// Checkpoint survived; try several forks — one may absorb the
				// injected fault.
				for i := 0; i < 3; i++ {
					clone, ferr := tpl.Fork(fmt.Sprintf("c%d", i), ProcessOptions{})
					if ferr != nil {
						if !errors.Is(ferr, heap.ErrCopyFault) {
							t.Fatalf("fork failed for the wrong reason: %v", ferr)
						}
						fired++
						continue
					}
					th := spawn(t, clone, "app/Warm", "lookup(I)I", interp.IntSlot(4))
					if err := vm.RunUntil(func() bool { return !th.Alive() }); err != nil {
						t.Fatal(err)
					}
					if th.Result.I != 16 {
						t.Fatalf("clone %d: lookup(4) = %d", i, th.Result.I)
					}
				}
			}
			if rep := vm.Audit(true); !rep.OK() {
				t.Fatalf("audit after faulted fork path:\n%s", rep)
			}

			// The plane is single-shot (/1): the VM must now be fully
			// serviceable on the same template lineage.
			if tpl == nil {
				tpl, err = vm.Checkpoint(origin, "retry")
				if err != nil {
					t.Fatalf("checkpoint retry after fault: %v", err)
				}
			}
			clone, err := tpl.Fork("after", ProcessOptions{})
			if err != nil {
				// Large thresholds leave the single-shot fault still armed
				// here, so this very fork may be the one it kills; it must
				// unwind cleanly and the retry must succeed.
				if !errors.Is(err, heap.ErrCopyFault) {
					t.Fatalf("fork after fault: %v", err)
				}
				fired++
				if rep := vm.Audit(true); !rep.OK() {
					t.Fatalf("audit after faulted final fork:\n%s", rep)
				}
				clone, err = tpl.Fork("after", ProcessOptions{})
				if err != nil {
					t.Fatalf("fork retry after fault: %v", err)
				}
			}
			th := spawn(t, clone, "app/Warm", "lookup(I)I", interp.IntSlot(6))
			if err := vm.RunUntil(func() bool { return !th.Alive() }); err != nil {
				t.Fatal(err)
			}
			if th.Result.I != 36 {
				t.Fatalf("post-fault clone: lookup(6) = %d", th.Result.I)
			}

			// Drain and prove exact unwinding.
			origin.Kill(nil)
			if err := vm.Run(0); err != nil {
				t.Fatal(err)
			}
			if err := tpl.Release(); err != nil {
				t.Fatal(err)
			}
			vm.CollectKernel()
			if rep := vm.Audit(true); !rep.OK() {
				t.Fatalf("final audit:\n%s", rep)
			}
			if use := vm.RootLimit.Use(); use != baseline {
				t.Errorf("fault sweep leaked: root use %d vs baseline %d", use, baseline)
			}
		})
	}
	if fired == 0 {
		t.Error("no seed made fork.copy fire — the sweep tested nothing")
	}
}
