package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/interp"
)

func newTestVM(t testing.TB) *VM {
	t.Helper()
	vm, err := NewVM(Config{})
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

func mustProc(t testing.TB, vm *VM, name string, opts ProcessOptions) *Process {
	t.Helper()
	p, err := vm.NewProcess(name, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func load(t testing.TB, p *Process, src string) {
	t.Helper()
	if err := p.Load(bytecode.MustAssemble(src)); err != nil {
		t.Fatal(err)
	}
}

func spawn(t testing.TB, p *Process, cls, key string, args ...interp.Slot) *interp.Thread {
	t.Helper()
	th, err := p.Spawn(cls, key, args...)
	if err != nil {
		t.Fatal(err)
	}
	return th
}

const helloSrc = `
.class app/Hello
.method main ()V static
.locals 0
.stack 2
	getstatic java/lang/System.out Ljava/io/PrintStream;
	ldc "hello, kaffeos"
	invokevirtual java/io/PrintStream.println (Ljava/lang/String;)V
	return
.end
.end`

func TestHelloWorld(t *testing.T) {
	vm := newTestVM(t)
	var out bytes.Buffer
	p := mustProc(t, vm, "hello", ProcessOptions{Out: &out})
	load(t, p, helloSrc)
	spawn(t, p, "app/Hello", "main()V")
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); got != "hello, kaffeos\n" {
		t.Errorf("output = %q", got)
	}
	if p.State() != ProcReclaimed {
		t.Errorf("process state = %v", p.State())
	}
}

func TestProcessIsolationStatics(t *testing.T) {
	// Two processes mutate the same (reloaded) class statics: changes must
	// not leak between namespaces.
	vm := newTestVM(t)
	src := `
.class app/S
.static v I
.method set (I)V static
.locals 1
.stack 1
	iload 0
	putstatic app/S.v I
	return
.end
.method get ()I static
.locals 0
.stack 1
	getstatic app/S.v I
	ireturn
.end
.end`
	p1 := mustProc(t, vm, "a", ProcessOptions{})
	p2 := mustProc(t, vm, "b", ProcessOptions{})
	load(t, p1, src)
	load(t, p2, src)
	spawn(t, p1, "app/S", "set(I)V", interp.IntSlot(111))
	spawn(t, p2, "app/S", "set(I)V", interp.IntSlot(222))
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	// Re-create: processes reclaimed; test with live reads instead.
	p3 := mustProc(t, vm, "c", ProcessOptions{})
	load(t, p3, src)
	th := spawn(t, p3, "app/S", "get()I")
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if th.Result.I != 0 {
		t.Errorf("fresh process saw static value %d", th.Result.I)
	}
}

func TestCrossProcessReferenceForbidden(t *testing.T) {
	// A process cannot store a reference to another process' object:
	// verified at the VM level by allocating in two heaps directly.
	vm := newTestVM(t)
	p1 := mustProc(t, vm, "a", ProcessOptions{})
	p2 := mustProc(t, vm, "b", ProcessOptions{})
	cls, err := p1.Loader.Class("java/util/ListNode")
	if err != nil {
		t.Fatal(err)
	}
	o1, err := p1.Heap.Alloc(cls)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := p2.Heap.Alloc(cls)
	if err != nil {
		t.Fatal(err)
	}
	errW := vm.Cfg.Barrier.Write(vm.Reg, o1, o2, false, vm.Stats)
	if errW == nil {
		t.Fatal("user->user cross-heap store allowed")
	}
}

func TestMemHogKilledByLimit(t *testing.T) {
	// The MemHog pattern: allocate and keep everything. The process must
	// die with OutOfMemoryError without harming the VM.
	vm := newTestVM(t)
	src := `
.class app/MemHog
.method main ()V static
.locals 2
.stack 4
	new java/util/Vector
	dup
	invokespecial java/util/Vector.<init> ()V
	astore 0
L0:	aload 0
	ldc 1024
	newarray [I
	invokevirtual java/util/Vector.add (Ljava/lang/Object;)V
	goto L0
.end
.end`
	p := mustProc(t, vm, "memhog", ProcessOptions{MemLimit: 1 << 20})
	load(t, p, src)
	spawn(t, p, "app/MemHog", "main()V")
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if p.State() != ProcReclaimed {
		t.Fatalf("state = %v", p.State())
	}
	if p.Uncaught() == nil || p.Uncaught().Class.Name != "java/lang/OutOfMemoryError" {
		t.Fatalf("uncaught = %v, want OutOfMemoryError", p.Uncaught())
	}
}

func TestFullReclamationAfterKill(t *testing.T) {
	vm := newTestVM(t)
	src := `
.class app/Loop
.static keep Ljava/util/Vector;
.method main ()V static
.locals 1
.stack 4
	new java/util/Vector
	dup
	invokespecial java/util/Vector.<init> ()V
	putstatic app/Loop.keep Ljava/util/Vector;
L0:	getstatic app/Loop.keep Ljava/util/Vector;
	ldc 256
	newarray [I
	invokevirtual java/util/Vector.add (Ljava/lang/Object;)V
	getstatic app/Loop.keep Ljava/util/Vector;
	invokevirtual java/util/Vector.size ()I
	iconst 64
	if_icmplt L0
	# now spin forever holding the memory
L1:	goto L1
.end
.end`
	p := mustProc(t, vm, "loop", ProcessOptions{MemLimit: 8 << 20})
	load(t, p, src)
	spawn(t, p, "app/Loop", "main()V")
	// Run a while: the hog fills its vector then spins.
	if err := vm.Run(3_000_000); err != nil {
		t.Fatal(err)
	}
	if p.State() != ProcRunning {
		t.Fatalf("state = %v, err=%v", p.State(), p.ExitError())
	}
	if p.HeapBytes() < 64*256*4 {
		t.Fatalf("hog holds only %d bytes", p.HeapBytes())
	}
	limit := p.Limit

	p.Kill(nil)
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if p.State() != ProcReclaimed {
		t.Fatalf("state after kill = %v", p.State())
	}
	// Full reclamation: the process' memlimit returned to zero, and the
	// kernel heap does not retain its garbage.
	if use := limit.Use(); use != 0 {
		t.Errorf("process limit still charged %d bytes", use)
	}
	if got := vm.KernelHeap.Bytes(); got > 64<<10 {
		t.Errorf("kernel heap retains %d bytes after reclaim", got)
	}
}

func TestKillDoesNotAffectOtherProcesses(t *testing.T) {
	vm := newTestVM(t)
	spin := `
.class app/Spin
.method main ()V static
.locals 1
.stack 2
	iconst 0
	istore 0
L0:	iinc 0 1
	iload 0
	ldc 2000000
	if_icmplt L0
	return
.end
.end`
	victim := mustProc(t, vm, "victim", ProcessOptions{})
	worker := mustProc(t, vm, "worker", ProcessOptions{})
	load(t, victim, spin)
	load(t, worker, spin)
	spawn(t, victim, "app/Spin", "main()V")
	wt := spawn(t, worker, "app/Spin", "main()V")
	if err := vm.Run(500_000); err != nil {
		t.Fatal(err)
	}
	victim.Kill(nil)
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if wt.State != interp.StateFinished {
		t.Fatalf("worker thread state %v, err %v", wt.State, wt.Err)
	}
	if worker.State() != ProcReclaimed {
		t.Errorf("worker did not complete: %v", worker.State())
	}
}

func TestCPUAccountingPerProcess(t *testing.T) {
	vm := newTestVM(t)
	src := `
.class app/Spin
.method main (I)V static
.locals 2
.stack 2
	iconst 0
	istore 1
L0:	iinc 1 1
	iload 1
	iload 0
	if_icmplt L0
	return
.end
.end`
	big := mustProc(t, vm, "big", ProcessOptions{})
	small := mustProc(t, vm, "small", ProcessOptions{})
	load(t, big, src)
	load(t, small, src)
	spawn(t, big, "app/Spin", "main(I)V", interp.IntSlot(500_000))
	spawn(t, small, "app/Spin", "main(I)V", interp.IntSlot(50_000))
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if big.CPUCycles() < 5*small.CPUCycles() {
		t.Errorf("cpu accounting off: big=%d small=%d", big.CPUCycles(), small.CPUCycles())
	}
}

func TestGCCyclesChargedToProcess(t *testing.T) {
	vm := newTestVM(t)
	src := `
.class app/Churn
.method main ()V static
.locals 2
.stack 3
	iconst 0
	istore 0
L0:	ldc 512
	newarray [I
	astore 1
	iinc 0 1
	iload 0
	ldc 2000
	if_icmplt L0
	return
.end
.end`
	p := mustProc(t, vm, "churn", ProcessOptions{MemLimit: 1 << 20})
	load(t, p, src)
	spawn(t, p, "app/Churn", "main()V")
	gcsBefore := p.Heap.Stats().GCs
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	_ = gcsBefore
	if p.State() != ProcReclaimed || p.ExitError() != nil {
		t.Fatalf("state=%v err=%v uncaught=%v", p.State(), p.ExitError(), p.Uncaught())
	}
}

func TestKernelSyscalls(t *testing.T) {
	vm := newTestVM(t)
	src := `
.class app/Sys
.method main ()I static
.locals 1
.stack 2
	invokestatic kaffeos/Kernel.currentPid ()I
	istore 0
	invokestatic kaffeos/Kernel.memUsed ()I
	pop
	invokestatic kaffeos/Kernel.cpuMillis ()I
	pop
	invokestatic kaffeos/Kernel.procCount ()I
	pop
	iload 0
	ireturn
.end
.end`
	p := mustProc(t, vm, "sys", ProcessOptions{})
	load(t, p, src)
	th := spawn(t, p, "app/Sys", "main()I")
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if th.Result.I != int64(p.ID) {
		t.Errorf("currentPid = %d, want %d", th.Result.I, p.ID)
	}
}

func TestSpawnAndKillSyscalls(t *testing.T) {
	vm := newTestVM(t)
	vm.RegisterProgram("child", bytecode.MustAssemble(`
.class app/Child
.method main ()V static
.locals 0
.stack 1
L0:	goto L0
.end
.end`))
	src := `
.class app/Parent
.method main ()I static
.locals 1
.stack 4
	ldc "child"
	ldc "app/Child"
	ldc 4096
	invokestatic kaffeos/Kernel.spawn (Ljava/lang/String;Ljava/lang/String;I)I
	istore 0
	iload 0
	invokestatic kaffeos/Kernel.alive (I)Z
	ifeq FAIL
	iload 0
	invokestatic kaffeos/Kernel.kill (I)Z
	ifeq FAIL
	iload 0
	ireturn
FAIL:	iconst -1
	ireturn
.end
.end`
	p := mustProc(t, vm, "parent", ProcessOptions{})
	load(t, p, src)
	th := spawn(t, p, "app/Parent", "main()I")
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if th.Result.I <= 0 {
		t.Fatalf("spawn/kill failed: %d (err=%v)", th.Result.I, th.Err)
	}
	// Child must be gone.
	if _, ok := vm.Process(Pid(th.Result.I)); ok {
		t.Error("killed child still in process table")
	}
}

func TestExitSyscall(t *testing.T) {
	vm := newTestVM(t)
	src := `
.class app/Quit
.method main ()V static
.locals 0
.stack 1
	invokestatic kaffeos/Kernel.exit ()V
L0:	goto L0
.end
.end`
	p := mustProc(t, vm, "quit", ProcessOptions{})
	load(t, p, src)
	spawn(t, p, "app/Quit", "main()V")
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if p.State() != ProcReclaimed {
		t.Errorf("state = %v", p.State())
	}
}

func TestSegViolationCatchable(t *testing.T) {
	// User code catching the segmentation violation: the kernel builds a
	// shared heap, and the process tries to store a process-heap reference
	// into a frozen shared object.
	vm := newTestVM(t)
	producer := `
.class app/Prod
.method main ()V static
.locals 2
.stack 4
	ldc "box"
	ldc 64
	invokestatic kaffeos/Shared.create (Ljava/lang/String;I)V
	new java/util/ListNode
	dup
	invokespecial java/util/ListNode.<init> ()V
	astore 0
	aload 0
	invokestatic kaffeos/Shared.setRoot (Ljava/lang/Object;)V
	ldc "box"
	invokestatic kaffeos/Shared.freeze (Ljava/lang/String;)V
L0:	goto L0
.end
.end`
	attacker := `
.class app/Atk
.method main ()I static
.locals 2
.stack 3
	ldc "box"
	invokestatic kaffeos/Shared.lookup (Ljava/lang/String;)Ljava/lang/Object;
	checkcast java/util/ListNode
	astore 0
	new java/lang/Object
	astore 1
T0:	aload 0
	checkcast java/util/ListNode
	aload 1
	putfield java/util/ListNode.item Ljava/lang/Object;
	iconst 0
	ireturn
T1:	pop
	iconst 1
	ireturn
.catch kaffeos/SegmentationViolationError T0 T1 T1
.end
.end`
	prod := mustProc(t, vm, "prod", ProcessOptions{})
	load(t, prod, producer)
	spawn(t, prod, "app/Prod", "main()V")
	if err := vm.Run(5_000_000); err != nil {
		t.Fatal(err)
	}

	atk := mustProc(t, vm, "atk", ProcessOptions{})
	load(t, atk, attacker)
	th := spawn(t, atk, "app/Atk", "main()I")
	if err := vm.RunUntil(func() bool { return !th.Alive() }); err != nil {
		t.Fatal(err)
	}
	prod.Kill(nil)
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if th.State != interp.StateFinished {
		t.Fatalf("attacker state %v err %v uncaught %v", th.State, th.Err, th.Uncaught)
	}
	if th.Result.I != 1 {
		t.Fatalf("segmentation violation not raised/caught (got %d)", th.Result.I)
	}
}

func TestSharedHeapCommunication(t *testing.T) {
	// Producer builds a shared int array; consumer reads it. Primitive
	// fields of shared objects remain mutable.
	vm := newTestVM(t)
	producer := `
.class app/Prod
.method main ()V static
.locals 1
.stack 4
	ldc "data"
	ldc 64
	invokestatic kaffeos/Shared.create (Ljava/lang/String;I)V
	iconst 10
	newarray [I
	astore 0
	aload 0
	iconst 0
	ldc 4242
	iastore
	aload 0
	invokestatic kaffeos/Shared.setRoot (Ljava/lang/Object;)V
	ldc "data"
	invokestatic kaffeos/Shared.freeze (Ljava/lang/String;)V
L0:	goto L0
.end
.end`
	consumer := `
.class app/Cons
.method main ()I static
.locals 1
.stack 3
	ldc "data"
	invokestatic kaffeos/Shared.lookup (Ljava/lang/String;)Ljava/lang/Object;
	checkcast [I
	astore 0
	aload 0
	iconst 1
	ldc 777
	iastore
	aload 0
	iconst 0
	iaload
	aload 0
	iconst 1
	iaload
	iadd
	ireturn
.end
.end`
	prod := mustProc(t, vm, "prod", ProcessOptions{})
	load(t, prod, producer)
	spawn(t, prod, "app/Prod", "main()V")
	if err := vm.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	cons := mustProc(t, vm, "cons", ProcessOptions{})
	load(t, cons, consumer)
	th := spawn(t, cons, "app/Cons", "main()I")
	if err := vm.RunUntil(func() bool { return !th.Alive() }); err != nil {
		t.Fatal(err)
	}
	prod.Kill(nil)
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if th.State != interp.StateFinished {
		t.Fatalf("consumer: %v / %v / %v", th.State, th.Err, th.Uncaught)
	}
	if th.Result.I != 4242+777 {
		t.Errorf("shared data = %d, want %d", th.Result.I, 4242+777)
	}
}

func TestSharedHeapChargingAndOrphaning(t *testing.T) {
	vm := newTestVM(t)
	producer := `
.class app/Prod
.method main ()V static
.locals 1
.stack 4
	ldc "buf"
	ldc 64
	invokestatic kaffeos/Shared.create (Ljava/lang/String;I)V
	ldc 1024
	newarray [I
	invokestatic kaffeos/Shared.setRoot (Ljava/lang/Object;)V
	ldc "buf"
	invokestatic kaffeos/Shared.freeze (Ljava/lang/String;)V
L0:	goto L0
.end
.end`
	prod := mustProc(t, vm, "prod", ProcessOptions{})
	load(t, prod, producer)
	spawn(t, prod, "app/Prod", "main()V")
	if err := vm.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	sh, err := vm.SharedMgr.Lookup("buf")
	if err != nil {
		t.Fatal(err)
	}
	if !sh.Frozen() || sh.Sharers() != 1 {
		t.Fatalf("frozen=%v sharers=%d", sh.Frozen(), sh.Sharers())
	}
	if sh.Size < 4096 {
		t.Errorf("size = %d", sh.Size)
	}
	// Producer is charged the full size on top of its own heap.
	if prod.Limit.Use() < sh.Size+prod.HeapBytes() {
		t.Errorf("creator charge missing: use=%d heap=%d shared=%d",
			prod.Limit.Use(), prod.HeapBytes(), sh.Size)
	}

	// Kill the producer: heap detaches, shared heap orphans, kernel GC
	// merges it away.
	prod.Kill(nil)
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if _, err := vm.SharedMgr.Lookup("buf"); err == nil {
		t.Error("orphaned shared heap survived kernel GC")
	}
	if vm.KernelHeap.Bytes() > 64<<10 {
		t.Errorf("kernel retains %d bytes", vm.KernelHeap.Bytes())
	}
}

func TestGCDrivenSharedCredit(t *testing.T) {
	// A sharer that drops its references is credited at its next GC
	// without an explicit drop syscall.
	vm := newTestVM(t)
	producer := `
.class app/Prod
.method main ()V static
.locals 0
.stack 4
	ldc "blob"
	ldc 64
	invokestatic kaffeos/Shared.create (Ljava/lang/String;I)V
	ldc 2048
	newarray [I
	invokestatic kaffeos/Shared.setRoot (Ljava/lang/Object;)V
	ldc "blob"
	invokestatic kaffeos/Shared.freeze (Ljava/lang/String;)V
L0:	goto L0
.end
.end`
	user := `
.class app/User
.static hold Ljava/lang/Object;
.method main ()V static
.locals 0
.stack 2
	ldc "blob"
	invokestatic kaffeos/Shared.lookup (Ljava/lang/String;)Ljava/lang/Object;
	putstatic app/User.hold Ljava/lang/Object;
	# drop the reference and GC
	aconst_null
	putstatic app/User.hold Ljava/lang/Object;
	invokestatic kaffeos/Kernel.gc ()V
L0:	goto L0
.end
.end`
	prod := mustProc(t, vm, "prod", ProcessOptions{})
	load(t, prod, producer)
	spawn(t, prod, "app/Prod", "main()V")
	if err := vm.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	u := mustProc(t, vm, "user", ProcessOptions{})
	load(t, u, user)
	spawn(t, u, "app/User", "main()V")
	if err := vm.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	sh, err := vm.SharedMgr.Lookup("blob")
	if err != nil {
		t.Fatal(err)
	}
	if sh.SharedBy(u) {
		t.Error("sharer still charged after dropping all references and GC")
	}
	if !sh.SharedBy(prod) {
		t.Error("producer lost its charge spuriously")
	}
}

func TestHardLimitReservation(t *testing.T) {
	vm, err := NewVM(Config{TotalMemory: 8 << 20, KernelMemory: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	_, err = vm.NewProcess("reserved", ProcessOptions{MemLimit: 5 << 20, HardLimit: true})
	if err != nil {
		t.Fatal(err)
	}
	// Only ~1 MiB of root budget remains: a second hard reservation fails.
	_, err = vm.NewProcess("second", ProcessOptions{MemLimit: 2 << 20, HardLimit: true})
	if err == nil {
		t.Fatal("over-reservation succeeded")
	}
	// A soft process can still be created (it only pays as it allocates).
	if _, err := vm.NewProcess("soft", ProcessOptions{MemLimit: 2 << 20}); err != nil {
		t.Fatalf("soft process: %v", err)
	}
}

func TestInternPerProcess(t *testing.T) {
	vm := newTestVM(t)
	src := `
.class app/I
.method same ()I static
.locals 0
.stack 2
	ldc "token"
	ldc "token"
	if_acmpeq YES
	iconst 0
	ireturn
YES:	iconst 1
	ireturn
.end
.end`
	p1 := mustProc(t, vm, "a", ProcessOptions{})
	p2 := mustProc(t, vm, "b", ProcessOptions{})
	load(t, p1, src)
	load(t, p2, src)
	t1 := spawn(t, p1, "app/I", "same()I")
	t2 := spawn(t, p2, "app/I", "same()I")
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if t1.Result.I != 1 || t2.Result.I != 1 {
		t.Error("literals not identical within a process")
	}
}

func TestJavaThreadsWithinProcess(t *testing.T) {
	vm := newTestVM(t)
	src := `
.class app/Work extends java/lang/Thread
.static done I
.method <init> ()V
.locals 1
.stack 1
	aload 0
	invokespecial java/lang/Thread.<init> ()V
	return
.end
.method run ()V
.locals 1
.stack 3
	getstatic app/Work.done I
	iconst 1
	iadd
	putstatic app/Work.done I
	return
.end
.end
.class app/Main
.method main ()I static
.locals 2
.stack 3
	iconst 0
	istore 0
L0:	iload 0
	iconst 5
	if_icmpge WAIT
	new app/Work
	dup
	invokespecial app/Work.<init> ()V
	invokevirtual java/lang/Thread.start ()V
	iinc 0 1
	goto L0
WAIT:	getstatic app/Work.done I
	iconst 5
	if_icmplt WAIT
	getstatic app/Work.done I
	ireturn
.end
.end`
	p := mustProc(t, vm, "threads", ProcessOptions{})
	load(t, p, src)
	th := spawn(t, p, "app/Main", "main()I")
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if th.Result.I != 5 {
		t.Errorf("done = %d, want 5 (err=%v)", th.Result.I, th.Err)
	}
}

func TestLibraryCensus(t *testing.T) {
	vm := newTestVM(t)
	shared, reloaded, pct := vm.Lib.Census()
	if shared == 0 || reloaded == 0 {
		t.Fatalf("census: %d/%d", shared, reloaded)
	}
	// The paper shares 72% of library classes; ours should be in the same
	// regime (the exact number depends on our library's size).
	if pct < 60 || pct > 95 {
		t.Errorf("shared pct = %.1f, outside the paper's regime", pct)
	}
	for _, name := range vm.Lib.ReloadedClassNames() {
		if !strings.Contains(name, "System") && !strings.Contains(name, "FileDescriptor") &&
			!strings.Contains(name, "Random") && !strings.Contains(name, "PrintStream") {
			t.Errorf("unexpected reloaded class %s", name)
		}
	}
}

func TestStringLibraryEndToEnd(t *testing.T) {
	vm := newTestVM(t)
	src := `
.class app/Str
.method main ()I static
.locals 2
.stack 3
	ldc "hello"
	ldc " world"
	invokevirtual java/lang/String.concat (Ljava/lang/String;)Ljava/lang/String;
	astore 0
	aload 0
	invokevirtual java/lang/String.length ()I
	istore 1
	aload 0
	ldc "hello world"
	invokevirtual java/lang/String.equals (Ljava/lang/Object;)Z
	ifeq BAD
	iload 1
	ireturn
BAD:	iconst -1
	ireturn
.end
.end`
	p := mustProc(t, vm, "str", ProcessOptions{})
	load(t, p, src)
	th := spawn(t, p, "app/Str", "main()I")
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if th.Result.I != 11 {
		t.Errorf("result = %d (err=%v)", th.Result.I, th.Err)
	}
}

func TestHashtableEndToEnd(t *testing.T) {
	vm := newTestVM(t)
	src := `
.class app/HT
.method main ()I static
.locals 2
.stack 6
	new java/util/Hashtable
	dup
	invokespecial java/util/Hashtable.<init> ()V
	astore 0
	iconst 0
	istore 1
L0:	iload 1
	iconst 50
	if_icmpge CHECK
	aload 0
	iload 1
	invokestatic java/lang/Integer.toString (I)Ljava/lang/String;
	new java/lang/Integer
	dup
	iload 1
	invokespecial java/lang/Integer.<init> (I)V
	invokevirtual java/util/Hashtable.put (Ljava/lang/Object;Ljava/lang/Object;)Ljava/lang/Object;
	pop
	iinc 1 1
	goto L0
CHECK:	aload 0
	ldc "37"
	invokevirtual java/util/Hashtable.get (Ljava/lang/Object;)Ljava/lang/Object;
	checkcast java/lang/Integer
	invokevirtual java/lang/Integer.intValue ()I
	aload 0
	invokevirtual java/util/Hashtable.size ()I
	iadd
	ireturn
.end
.end`
	p := mustProc(t, vm, "ht", ProcessOptions{})
	load(t, p, src)
	th := spawn(t, p, "app/HT", "main()I")
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if th.Result.I != 37+50 {
		t.Errorf("result = %d, want 87 (err=%v, uncaught=%v)", th.Result.I, th.Err, th.Uncaught)
	}
}
