package core

import (
	"flag"
	"math/rand"
	"testing"

	"repro/internal/interp"
)

var forkPropSeeds = flag.Int("fork.prop.seeds", 12, "seeds for the fork property test")
var forkPropOps = flag.Int("fork.prop.ops", 60, "operations per fork property seed")

// TestForkPropertyRandomInterleavings is the fork correctness wall's
// model-based axis: a random schedule of checkpoint, fork, run, kill,
// release, and GC operations, with a shadow model tracking which pids must
// be live processes and which must be templates. After every operation the
// full auditor (graph walk included) re-derives the books; at the end
// everything is torn down and the root account must return to baseline.
func TestForkPropertyRandomInterleavings(t *testing.T) {
	seeds := *forkPropSeeds
	if testing.Short() {
		seeds = 3
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmtSeed(seed), func(t *testing.T) {
			runForkPropertySeed(t, int64(seed), *forkPropOps)
		})
	}
}

func fmtSeed(s int) string { return "seed" + string(rune('0'+s/10)) + string(rune('0'+s%10)) }

func runForkPropertySeed(t *testing.T, seed int64, ops int) {
	vm := newTestVM(t)
	rng := rand.New(rand.NewSource(seed))
	baseline := vm.RootLimit.Use()

	// Shadow model.
	var procs []*Process // live, quiescent, warmed processes
	var tpls []*Template // live templates
	audit := func(op string) {
		t.Helper()
		if rep := vm.Audit(true); !rep.OK() {
			t.Fatalf("seed %d: audit after %s:\n%s", seed, op, rep)
		}
	}

	newWarm := func() {
		p := warmProc(t, vm, "w")
		procs = append(procs, p)
	}
	newWarm()

	for op := 0; op < ops; op++ {
		switch k := rng.Intn(10); {
		case k < 2: // new warm process
			newWarm()
			audit("new")
		case k < 4: // checkpoint a random process
			if len(procs) == 0 {
				continue
			}
			p := procs[rng.Intn(len(procs))]
			tpl, err := vm.Checkpoint(p, "t")
			if err != nil {
				t.Fatalf("seed %d op %d: checkpoint: %v", seed, op, err)
			}
			tpls = append(tpls, tpl)
			audit("checkpoint")
		case k < 6: // fork a random template, run the clone a little
			if len(tpls) == 0 {
				continue
			}
			tpl := tpls[rng.Intn(len(tpls))]
			clone, err := tpl.Fork("c", ProcessOptions{})
			if err != nil {
				t.Fatalf("seed %d op %d: fork: %v", seed, op, err)
			}
			if rng.Intn(2) == 0 {
				// Run the clone to completion and let it be reclaimed.
				th := spawn(t, clone, "app/Warm", "lookup(I)I", interp.IntSlot(int64(rng.Intn(64))))
				if err := vm.RunUntil(func() bool { return !th.Alive() }); err != nil {
					t.Fatal(err)
				}
			} else {
				// Keep it as another quiescent warmed process — it is
				// checkpointable in turn (grandchild templates).
				procs = append(procs, clone)
			}
			audit("fork")
		case k < 8: // kill a random process
			if len(procs) == 0 {
				continue
			}
			i := rng.Intn(len(procs))
			p := procs[i]
			procs = append(procs[:i], procs[i+1:]...)
			p.Kill(nil)
			if err := vm.Run(0); err != nil {
				t.Fatal(err)
			}
			if p.State() != ProcReclaimed {
				t.Fatalf("seed %d op %d: killed process state %v", seed, op, p.State())
			}
			audit("kill")
		case k < 9: // release a random template
			if len(tpls) == 0 {
				continue
			}
			i := rng.Intn(len(tpls))
			tpl := tpls[i]
			tpls = append(tpls[:i], tpls[i+1:]...)
			if err := tpl.Release(); err != nil {
				t.Fatalf("seed %d op %d: release: %v", seed, op, err)
			}
			audit("release")
		default: // kernel GC pressure
			vm.CollectKernel()
			audit("gc")
		}

		// Model invariants: every model template is registered, every model
		// process is live.
		for _, tpl := range tpls {
			if _, ok := vm.Template(tpl.ID); !ok {
				t.Fatalf("seed %d op %d: template %d vanished", seed, op, tpl.ID)
			}
		}
		for _, p := range procs {
			if p.State() != ProcRunning {
				t.Fatalf("seed %d op %d: model process %d in state %v", seed, op, p.ID, p.State())
			}
		}
		if got := len(vm.Templates()); got != len(tpls) {
			t.Fatalf("seed %d op %d: VM has %d templates, model %d", seed, op, got, len(tpls))
		}
	}

	// Drain: kill every process, release every template; the books must
	// return to the post-boot baseline.
	for _, p := range procs {
		p.Kill(nil)
	}
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	for _, tpl := range tpls {
		if err := tpl.Release(); err != nil {
			t.Fatalf("seed %d: final release: %v", seed, err)
		}
	}
	vm.CollectKernel()
	audit("drain")
	if use := vm.RootLimit.Use(); use != baseline {
		t.Errorf("seed %d: residual charge after drain: %d vs baseline %d", seed, use, baseline)
	}
	if got := len(vm.Templates()); got != 0 {
		t.Errorf("seed %d: %d templates survive drain", seed, got)
	}
}
