package core

import (
	"errors"
	"testing"

	"repro/internal/telemetry"
)

// kindsFor extracts the lifecycle event kinds traced for one pid, in
// emission order.
func kindsFor(vm *VM, pid Pid, want map[telemetry.Kind]bool) []telemetry.Kind {
	var out []telemetry.Kind
	for _, e := range vm.Tel.Trace.Snapshot() {
		if e.Pid == int32(pid) && want[e.Kind] {
			out = append(out, e.Kind)
		}
	}
	return out
}

func TestKillReclaimEventOrder(t *testing.T) {
	vm := newTestVM(t)
	vm.Tel.SetTracing(true)
	src := `
.class app/Spin
.method main ()V static
.locals 0
.stack 1
L0:	goto L0
.end
.end`
	p := mustProc(t, vm, "victim", ProcessOptions{})
	load(t, p, src)
	spawn(t, p, "app/Spin", "main()V")
	if err := vm.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	p.Kill(errors.New("test kill"))
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if p.State() != ProcReclaimed {
		t.Fatalf("state = %v, want reclaimed", p.State())
	}

	got := kindsFor(vm, p.ID, map[telemetry.Kind]bool{
		telemetry.EvProcCreate:  true,
		telemetry.EvThreadSpawn: true,
		telemetry.EvProcKill:    true,
		telemetry.EvProcReclaim: true,
	})
	want := []telemetry.Kind{
		telemetry.EvProcCreate, telemetry.EvThreadSpawn,
		telemetry.EvProcKill, telemetry.EvProcReclaim,
	}
	if len(got) != len(want) {
		t.Fatalf("lifecycle events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lifecycle events = %v, want %v", got, want)
		}
	}

	// The reclaim event must carry the pre-reclaim state, and the kill
	// event the reason.
	for _, e := range vm.Tel.Trace.Snapshot() {
		if e.Pid != int32(p.ID) {
			continue
		}
		switch e.Kind {
		case telemetry.EvProcKill:
			if e.Detail != "test kill" {
				t.Errorf("kill detail = %q", e.Detail)
			}
		case telemetry.EvProcReclaim:
			if e.Detail != "killed" {
				t.Errorf("reclaim detail = %q, want killed", e.Detail)
			}
		}
	}

	// Kernel-side lifecycle counters agree with the trace.
	k := vm.Tel.Reg.Kernel()
	if got := k.Counter(telemetry.MProcsKilled).Value(); got != 1 {
		t.Errorf("proc.killed = %d, want 1", got)
	}
	if got := k.Counter(telemetry.MProcsReclaimed).Value(); got != 1 {
		t.Errorf("proc.reclaimed = %d, want 1", got)
	}
}

func TestExitEventOnNormalCompletion(t *testing.T) {
	vm := newTestVM(t)
	vm.Tel.SetTracing(true)
	p := mustProc(t, vm, "hello", ProcessOptions{})
	load(t, p, helloSrc)
	spawn(t, p, "app/Hello", "main()V")
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	got := kindsFor(vm, p.ID, map[telemetry.Kind]bool{
		telemetry.EvProcExit:    true,
		telemetry.EvProcKill:    true,
		telemetry.EvProcReclaim: true,
	})
	want := []telemetry.Kind{telemetry.EvProcExit, telemetry.EvProcReclaim}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("events = %v, want %v", got, want)
	}
}

// TestGCAccountingCompleteExplicit checks the completeness property on
// externally-triggered collections: every cycle the collector spends on a
// process' heap shows up (1) in the pause histogram, (2) in the gc.charged
// counter, and (3) in Process.CPUCycles.
func TestGCAccountingCompleteExplicit(t *testing.T) {
	vm := newTestVM(t)
	p := mustProc(t, vm, "gcme", ProcessOptions{})
	scope := vm.Tel.Reg.Proc(int32(p.ID))
	pause := scope.Histogram(telemetry.MGCPause)

	cpuBefore := p.CPUCycles()
	chargedBefore := scope.Counter(telemetry.MGCCharged).Value()
	sumBefore := pause.Sum()
	countBefore := pause.Count()

	res1 := p.Collect()
	res2 := p.Collect()
	spent := res1.Cycles + res2.Cycles
	if spent == 0 {
		t.Fatal("collections reported zero cycles; cost model broken")
	}

	if delta := p.CPUCycles() - cpuBefore; delta != spent {
		t.Errorf("CPUCycles delta = %d, want %d", delta, spent)
	}
	if delta := scope.Counter(telemetry.MGCCharged).Value() - chargedBefore; delta != spent {
		t.Errorf("gc.charged delta = %d, want %d", delta, spent)
	}
	if delta := pause.Sum() - sumBefore; delta != spent {
		t.Errorf("pause histogram sum delta = %d, want %d", delta, spent)
	}
	if delta := pause.Count() - countBefore; delta != 2 {
		t.Errorf("pause histogram count delta = %d, want 2", delta)
	}
}

// TestGCAccountingCompleteUnderPressure checks the same property when the
// collections are triggered by allocation failure inside the running
// program: gc.cycles (observed pauses) == gc.charged (cycles billed).
func TestGCAccountingCompleteUnderPressure(t *testing.T) {
	vm := newTestVM(t)
	src := `
.class app/Churn
.method main ()V static
.locals 2
.stack 3
	iconst 0
	istore 0
L0:	ldc 512
	newarray [I
	astore 1
	iinc 0 1
	iload 0
	ldc 2000
	if_icmplt L0
	return
.end
.end`
	p := mustProc(t, vm, "churn", ProcessOptions{MemLimit: 1 << 20})
	load(t, p, src)
	spawn(t, p, "app/Churn", "main()V")
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if p.State() != ProcReclaimed || p.ExitError() != nil {
		t.Fatalf("state=%v err=%v", p.State(), p.ExitError())
	}

	scope := vm.Tel.Reg.Proc(int32(p.ID))
	gcs := scope.Counter(telemetry.MGCCount).Value()
	if gcs == 0 {
		t.Fatal("churn under a 1 MiB limit triggered no collections")
	}
	cycles := scope.Counter(telemetry.MGCCycles).Value()
	charged := scope.Counter(telemetry.MGCCharged).Value()
	pause := scope.Histogram(telemetry.MGCPause)
	if cycles != charged {
		t.Errorf("gc.cycles = %d but gc.charged = %d: some GC work was not billed", cycles, charged)
	}
	if pause.Sum() != cycles {
		t.Errorf("pause histogram sum = %d, gc.cycles = %d", pause.Sum(), cycles)
	}
	if pause.Count() != gcs {
		t.Errorf("pause count = %d, gc.count = %d", pause.Count(), gcs)
	}
	if cpu := scope.Counter(telemetry.MCPUCycles).Value(); cpu < charged {
		t.Errorf("cpu.cycles %d < gc.charged %d: GC time missing from the CPU account", cpu, charged)
	}
	if p.CPUCycles() < charged {
		t.Errorf("Process.CPUCycles %d < gc.charged %d", p.CPUCycles(), charged)
	}
}

func TestSnapshotIncludesReclaimedProcesses(t *testing.T) {
	vm := newTestVM(t)
	p := mustProc(t, vm, "ghost", ProcessOptions{})
	load(t, p, helloSrc)
	spawn(t, p, "app/Hello", "main()V")
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	snap := vm.Snapshot()
	if len(snap.Procs) != 1 {
		t.Fatalf("snapshot rows = %d, want 1", len(snap.Procs))
	}
	row := snap.Procs[0]
	if row.Pid != int32(p.ID) || row.Name != "ghost" {
		t.Errorf("row identity: %+v", row)
	}
	if row.State != "reclaimed" {
		t.Errorf("row state = %q, want reclaimed", row.State)
	}
	if row.CPUCycles == 0 {
		t.Error("reclaimed row lost its CPU accounting")
	}
	if row.IOBytes == 0 {
		t.Error("reclaimed row lost its IO accounting")
	}
	if snap.NowCycles == 0 {
		t.Error("snapshot clock is zero after a run")
	}
}

// TestDispatchEventsTraced asserts the scheduler feeds the quantum
// histogram and, with tracing on, the ring sees dispatch events.
func TestDispatchEventsTraced(t *testing.T) {
	vm := newTestVM(t)
	vm.Tel.SetTracing(true)
	src := `
.class app/Spin
.method main (I)V static
.locals 2
.stack 2
	iconst 0
	istore 1
L0:	iinc 1 1
	iload 1
	iload 0
	if_icmplt L0
	return
.end
.end`
	p := mustProc(t, vm, "spin", ProcessOptions{})
	load(t, p, src)
	th, err := p.Spawn("app/Spin", "main(I)V")
	_ = th
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	scope := vm.Tel.Reg.Proc(int32(p.ID))
	nd := scope.Counter(telemetry.MDispatches).Value()
	if nd == 0 {
		t.Fatal("no dispatches counted")
	}
	if got := scope.Histogram(telemetry.MQuantum).Count(); got != nd {
		t.Errorf("quantum histogram count = %d, dispatches = %d", got, nd)
	}
	var traced uint64
	for _, e := range vm.Tel.Trace.Snapshot() {
		if e.Kind == telemetry.EvDispatch && e.Pid == int32(p.ID) {
			traced++
			if e.Time == 0 {
				t.Error("dispatch event missing virtual-cycle timestamp")
			}
		}
	}
	if traced != nd {
		t.Errorf("traced dispatches = %d, counted = %d", traced, nd)
	}
}

// TestHotPathQuietWhenTracingOff asserts the default configuration traces
// nothing: metrics accumulate but the ring stays empty.
func TestHotPathQuietWhenTracingOff(t *testing.T) {
	vm := newTestVM(t)
	p := mustProc(t, vm, "quiet", ProcessOptions{})
	load(t, p, helloSrc)
	spawn(t, p, "app/Hello", "main()V")
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := vm.Tel.Trace.Total(); got != 0 {
		t.Fatalf("ring holds %d events with tracing off", got)
	}
	if got := vm.Tel.Reg.Proc(int32(p.ID)).Counter(telemetry.MDispatches).Value(); got == 0 {
		t.Fatal("metrics did not accumulate with tracing off")
	}
}
