package core

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/interp"
)

func TestTimedWaitExpires(t *testing.T) {
	vm := newTestVM(t)
	src := `
.class app/T
.method main ()I static
.locals 2
.stack 3
	new java/lang/Object
	astore 0
	invokestatic java/lang/System.currentTimeMillis ()I
	istore 1
	aload 0
	monitorenter
	aload 0
	iconst 20
	invokevirtual java/lang/Object.wait (I)V
	aload 0
	monitorexit
	invokestatic java/lang/System.currentTimeMillis ()I
	iload 1
	isub
	ireturn
.end
.end`
	p := mustProc(t, vm, "tw", ProcessOptions{})
	load(t, p, src)
	th := spawn(t, p, "app/T", "main()I")
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if th.State != interp.StateFinished {
		t.Fatalf("state %v err %v uncaught %v", th.State, th.Err, th.Uncaught)
	}
	if th.Result.I < 20 {
		t.Errorf("timed wait returned after %d ms, want >= 20", th.Result.I)
	}
}

func TestTimedWaitNotifiedEarly(t *testing.T) {
	vm := newTestVM(t)
	src := `
.class app/Box
.static lock Ljava/lang/Object;
.end
.class app/Poker extends java/lang/Thread
.method <init> ()V
.locals 1
.stack 1
	aload 0
	invokespecial java/lang/Thread.<init> ()V
	return
.end
.method run ()V
.locals 1
.stack 2
	iconst 2
	invokestatic java/lang/Thread.sleep (I)V
	getstatic app/Box.lock Ljava/lang/Object;
	astore 0
	aload 0
	monitorenter
	aload 0
	invokevirtual java/lang/Object.notifyAll ()V
	aload 0
	monitorexit
	return
.end
.end
.class app/Main
.method main ()I static
.locals 2
.stack 3
	new java/lang/Object
	putstatic app/Box.lock Ljava/lang/Object;
	new app/Poker
	dup
	invokespecial app/Poker.<init> ()V
	invokevirtual java/lang/Thread.start ()V
	invokestatic java/lang/System.currentTimeMillis ()I
	istore 0
	getstatic app/Box.lock Ljava/lang/Object;
	astore 1
	aload 1
	monitorenter
	aload 1
	ldc 10000
	invokevirtual java/lang/Object.wait (I)V
	aload 1
	monitorexit
	invokestatic java/lang/System.currentTimeMillis ()I
	iload 0
	isub
	ireturn
.end
.end`
	p := mustProc(t, vm, "te", ProcessOptions{})
	load(t, p, src)
	th := spawn(t, p, "app/Main", "main()I")
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if th.State != interp.StateFinished {
		t.Fatalf("state %v err %v uncaught %v", th.State, th.Err, th.Uncaught)
	}
	// Woken by the notify near 2 ms, far before the 10 s timeout.
	if th.Result.I > 1000 {
		t.Errorf("notify did not cut the timed wait short: %d ms", th.Result.I)
	}
}

func TestWaitForSyscall(t *testing.T) {
	vm := newTestVM(t)
	vm.RegisterProgram("child", mustModule(t, `
.class app/Child
.method main ()V static
.locals 1
.stack 2
	iconst 0
	istore 0
L0:	iinc 0 1
	iload 0
	ldc 200000
	if_icmplt L0
	return
.end
.end`))
	src := `
.class app/Parent
.method main ()I static
.locals 1
.stack 4
	ldc "child"
	ldc "app/Child"
	ldc 2048
	invokestatic kaffeos/Kernel.spawn (Ljava/lang/String;Ljava/lang/String;I)I
	istore 0
	iload 0
	invokestatic kaffeos/Kernel.waitFor (I)V
# after waitFor the child must be gone
	iload 0
	invokestatic kaffeos/Kernel.alive (I)Z
	ireturn
.end
.end`
	p := mustProc(t, vm, "parent", ProcessOptions{})
	load(t, p, src)
	th := spawn(t, p, "app/Parent", "main()I")
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if th.State != interp.StateFinished {
		t.Fatalf("state %v err %v", th.State, th.Err)
	}
	if th.Result.I != 0 {
		t.Errorf("child alive after waitFor")
	}
}

func TestWaitForDeadPidReturnsImmediately(t *testing.T) {
	vm := newTestVM(t)
	src := `
.class app/P
.method main ()I static
.locals 0
.stack 2
	ldc 9999
	invokestatic kaffeos/Kernel.waitFor (I)V
	iconst 1
	ireturn
.end
.end`
	p := mustProc(t, vm, "p", ProcessOptions{})
	load(t, p, src)
	th := spawn(t, p, "app/P", "main()I")
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if th.Result.I != 1 {
		t.Errorf("waitFor on dead pid hung")
	}
}

func mustModule(t *testing.T, src string) *bytecode.Module {
	t.Helper()
	return bytecode.MustAssemble(src)
}
