package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/codecache"
	"repro/internal/faults"
	"repro/internal/interp"
	"repro/internal/telemetry"
)

func newCacheVM(t testing.TB, cfg Config) *VM {
	t.Helper()
	cfg.CodeCache = true
	if cfg.Engine == "" {
		cfg.Engine = EngineJITOpt
	}
	vm, err := NewVM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

// Two processes loading identical bytecode share one artifact: the
// second load hits the cache, both are charged the full size, and the
// books reconcile through attach/detach/kill churn.
func TestCodeCacheSharing(t *testing.T) {
	vm := newCacheVM(t, Config{})
	kernel := vm.Tel.Reg.Kernel()

	var out1, out2 bytes.Buffer
	p1 := mustProc(t, vm, "a", ProcessOptions{Out: &out1})
	load(t, p1, helloSrc)
	missesAfterFirst := kernel.Counter(telemetry.MCodeMisses).Value()

	p2 := mustProc(t, vm, "b", ProcessOptions{Out: &out2})
	load(t, p2, helloSrc)
	if got := kernel.Counter(telemetry.MCodeMisses).Value(); got != missesAfterFirst {
		t.Fatalf("second identical load compiled again: misses %d -> %d", missesAfterFirst, got)
	}
	if kernel.Counter(telemetry.MCodeHits).Value() == 0 {
		t.Fatal("second identical load did not hit the cache")
	}

	// Full charging: each sharer owes the whole artifact size.
	c1, c2 := vm.CodeMgr.BytesFor(p1), vm.CodeMgr.BytesFor(p2)
	if c1 == 0 || c1 != c2 {
		t.Fatalf("code charges %d/%d, want equal and nonzero", c1, c2)
	}
	auditClean(t, vm, "after shared loads")

	// Shared code must not change behaviour.
	spawn(t, p1, "app/Hello", "main()V")
	spawn(t, p2, "app/Hello", "main()V")
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if out1.String() != "hello, kaffeos\n" || out2.String() != "hello, kaffeos\n" {
		t.Fatalf("outputs %q / %q", out1.String(), out2.String())
	}

	// Both processes exited and reclaimed: every sharer charge is
	// credited back; the artifacts stay resident on the base limit.
	if got := vm.CodeMgr.BytesFor(p1); got != 0 {
		t.Fatalf("reclaimed process still charged %d", got)
	}
	if vm.CodeMgr.Len() == 0 {
		t.Fatal("artifacts vanished with their sharers (eviction is membal's job)")
	}
	auditClean(t, vm, "after reclamation")

	// Orphan eviction returns the residency and the books still balance.
	vm.CodeMgr.EvictOrphans()
	if got := vm.CodeMgr.ResidentBytes(); got != 0 {
		t.Fatalf("resident %d after orphan eviction", got)
	}
	auditClean(t, vm, "after eviction")
}

// The ps/top snapshot carries the CODE column for live processes.
func TestCodeCacheSnapshotColumn(t *testing.T) {
	vm := newCacheVM(t, Config{})
	p := mustProc(t, vm, "a", ProcessOptions{})
	load(t, p, helloSrc)
	var row *telemetry.ProcRow
	for i, r := range vm.Snapshot().Procs {
		if r.Pid == int32(p.ID) {
			row = &vm.Snapshot().Procs[i]
		}
	}
	if row == nil {
		t.Fatal("process missing from snapshot")
	}
	if row.CodeBytes != vm.CodeMgr.BytesFor(p) || row.CodeBytes == 0 {
		t.Fatalf("CODE column %d, manager says %d", row.CodeBytes, vm.CodeMgr.BytesFor(p))
	}
	var buf bytes.Buffer
	telemetry.RenderTable(&buf, vm.Snapshot())
	if !strings.Contains(buf.String(), "CODE-B") {
		t.Fatalf("rendered table lacks CODE-B column:\n%s", buf.String())
	}
	p.Kill(errors.New("done"))
}

// Fork shares the zygote's handles: the template pins the artifacts, a
// fork attaches to them (cache hits, no recompilation), and the clone
// still behaves identically — even after the origin dies.
func TestCodeCacheForkShares(t *testing.T) {
	vm := newCacheVM(t, Config{})
	kernel := vm.Tel.Reg.Kernel()

	origin := warmProc(t, vm, "zygote")
	tpl := mustCheckpoint(t, vm, origin, "warm")
	if got := vm.CodeMgr.BytesFor(tpl); got == 0 {
		t.Fatal("template holds no code handles")
	}
	origin.Kill(errors.New("origin retired"))
	auditClean(t, vm, "after origin death")

	// The template keeps the artifacts unevictable.
	if freed := vm.CodeMgr.EvictOrphans(); freed != 0 {
		t.Fatalf("eviction dropped %d bytes pinned by the template", freed)
	}

	missesBefore := kernel.Counter(telemetry.MCodeMisses).Value()
	clone := mustFork(t, tpl, "clone", ProcessOptions{})
	if got := kernel.Counter(telemetry.MCodeMisses).Value(); got != missesBefore {
		t.Fatalf("fork recompiled: misses %d -> %d", missesBefore, got)
	}
	if got := vm.CodeMgr.BytesFor(clone); got == 0 {
		t.Fatal("fork attached no code")
	}
	auditClean(t, vm, "after fork")

	// The clone answers from the warmed table without any clinit.
	th := spawn(t, clone, "app/Warm", "lookup(I)I", interp.IntSlot(7))
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := th.Result.I; got != 49 {
		t.Fatalf("lookup(7) = %d, want 49", got)
	}

	if err := tpl.Release(); err != nil {
		t.Fatal(err)
	}
	auditClean(t, vm, "after release")
	vm.CodeMgr.EvictOrphans()
	if got := vm.CodeMgr.ResidentBytes(); got != 0 {
		t.Fatalf("resident %d after release+eviction", got)
	}
	auditClean(t, vm, "after final eviction")
}

// A codecache.attach fault mid-NewProcess unwinds the half-built
// process: zero leaked bytes, zero refcounts, clean audit, and the next
// creation succeeds.
func TestCodeCacheAttachFault(t *testing.T) {
	plan, err := faults.ParsePlan("seed=1,codecache.attach=@1")
	if err != nil {
		t.Fatal(err)
	}
	vm := newCacheVM(t, Config{Faults: faults.NewPlane(plan)})

	if _, err := vm.NewProcess("doomed", ProcessOptions{}); err == nil {
		t.Fatal("NewProcess survived an injected attach fault")
	} else if !errors.Is(err, codecache.ErrAttachFault) {
		t.Fatalf("err = %v, want ErrAttachFault", err)
	}
	for _, a := range vm.CodeMgr.Artifacts() {
		if n := a.Sharers(); n != 0 {
			t.Fatalf("artifact %q leaked %d refcount(s)", a.Name, n)
		}
	}
	auditClean(t, vm, "after aborted attach")

	p := mustProc(t, vm, "ok", ProcessOptions{})
	if got := vm.CodeMgr.BytesFor(p); got == 0 {
		t.Fatal("post-fault creation attached no code")
	}
	auditClean(t, vm, "after recovery")
}

// A codecache.attach fault during Load leaves the module defined (the
// namespace stays consistent) but nothing charged.
func TestCodeCacheLoadFault(t *testing.T) {
	plan, err := faults.ParsePlan("seed=1,codecache.attach=@2")
	if err != nil {
		t.Fatal(err)
	}
	vm := newCacheVM(t, Config{Faults: faults.NewPlane(plan)})
	p := mustProc(t, vm, "a", ProcessOptions{}) // attach #1: reloaded library
	charged := vm.CodeMgr.BytesFor(p)

	if err := p.Load(mustModule(t, helloSrc)); !errors.Is(err, codecache.ErrAttachFault) {
		t.Fatalf("Load err = %v, want ErrAttachFault", err)
	}
	if got := vm.CodeMgr.BytesFor(p); got != charged {
		t.Fatalf("aborted load changed code charge %d -> %d", charged, got)
	}
	auditClean(t, vm, "after aborted load")

	// The class is defined; the process can still run it (compiling
	// privately through the normal lazy path).
	spawn(t, p, "app/Hello", "main()V")
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	auditClean(t, vm, "after run without cached code")
}

// Rebalance evicts orphans under pressure and spares live sharers.
func TestCodeCacheEvictionUnderPressure(t *testing.T) {
	vm := newCacheVM(t, Config{MemBudget: 1, MemBalInterval: 1})
	p1 := mustProc(t, vm, "a", ProcessOptions{})
	load(t, p1, helloSrc)
	p2 := mustProc(t, vm, "b", ProcessOptions{})
	load(t, p2, helloSrc)

	before := vm.CodeMgr.Len()
	vm.Rebalance() // budget 1 byte: maximum pressure, but everything has sharers
	if got := vm.CodeMgr.Len(); got != before {
		t.Fatalf("pressure evicted artifacts with live sharers: %d -> %d", before, got)
	}

	p1.Kill(errors.New("bye"))
	vm.Rebalance() // p2 still shares everything it loaded
	if got := vm.CodeMgr.Len(); got != before {
		t.Fatalf("eviction dropped artifacts shared by a live process: %d -> %d", before, got)
	}

	p2.Kill(errors.New("bye"))
	vm.Rebalance() // now orphaned: pressure clears the cache
	if got := vm.CodeMgr.Len(); got != 0 {
		t.Fatalf("%d orphaned artifacts survived pressure", got)
	}
	auditClean(t, vm, "after pressure eviction")
}

// Interpreter engines compile nothing; the cache stays off for them.
func TestCodeCacheInterpNoop(t *testing.T) {
	vm := newCacheVM(t, Config{Engine: EngineInterp})
	if vm.CodeMgr != nil {
		t.Fatal("interpreter engine built a code cache")
	}
	p := mustProc(t, vm, "a", ProcessOptions{})
	load(t, p, helloSrc)
	spawn(t, p, "app/Hello", "main()V")
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	auditClean(t, vm, "interp no-op")
}
