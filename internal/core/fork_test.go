package core

import (
	"sync"
	"testing"

	"repro/internal/interp"
)

// warmSrc is a module whose <clinit> does the expensive warmup: it builds
// a lookup table (Vector of boxed squares), an interned marker string, and
// a seeded Random. lookup(i) serves from the table; a forked clone must
// answer identically without ever running the clinit.
const warmSrc = `
.class app/Warm
.static table Ljava/util/Vector;
.static tag Ljava/lang/String;
.static rnd Ljava/util/Random;
.method <clinit> ()V static
.locals 1
.stack 5
	new java/util/Vector
	dup
	invokespecial java/util/Vector.<init> ()V
	putstatic app/Warm.table Ljava/util/Vector;
	iconst 0
	istore 0
L0:	iload 0
	ldc 64
	if_icmpge DONE
	getstatic app/Warm.table Ljava/util/Vector;
	new java/lang/Integer
	dup
	iload 0
	iload 0
	imul
	invokespecial java/lang/Integer.<init> (I)V
	invokevirtual java/util/Vector.add (Ljava/lang/Object;)V
	iinc 0 1
	goto L0
DONE:	ldc "warmed"
	putstatic app/Warm.tag Ljava/lang/String;
	new java/util/Random
	dup
	ldc 42
	invokespecial java/util/Random.<init> (I)V
	putstatic app/Warm.rnd Ljava/util/Random;
	return
.end
.method lookup (I)I static
.locals 1
.stack 2
	getstatic app/Warm.table Ljava/util/Vector;
	iload 0
	invokevirtual java/util/Vector.get (I)Ljava/lang/Object;
	checkcast java/lang/Integer
	invokevirtual java/lang/Integer.intValue ()I
	ireturn
.end
.method roll (I)I static
.locals 1
.stack 2
	getstatic app/Warm.rnd Ljava/util/Random;
	iload 0
	invokevirtual java/util/Random.nextInt (I)I
	ireturn
.end
.method draw3 ()I static
.locals 1
.stack 3
	getstatic app/Warm.rnd Ljava/util/Random;
	ldc 90
	invokevirtual java/util/Random.nextInt (I)I
	ldc 90
	imul
	getstatic app/Warm.rnd Ljava/util/Random;
	ldc 90
	invokevirtual java/util/Random.nextInt (I)I
	iadd
	ldc 90
	imul
	getstatic app/Warm.rnd Ljava/util/Random;
	ldc 90
	invokevirtual java/util/Random.nextInt (I)I
	iadd
	ireturn
.end
.method tagIsWarmed ()I static
.locals 0
.stack 2
	getstatic app/Warm.tag Ljava/lang/String;
	ldc "warmed"
	if_acmpeq YES
	iconst 0
	ireturn
YES:	iconst 1
	ireturn
.end
.end`

// warmProc builds a warmed, quiescent (zero-thread) process ready to
// checkpoint.
func warmProc(t *testing.T, vm *VM, name string) *Process {
	t.Helper()
	p := mustProc(t, vm, name, ProcessOptions{})
	load(t, p, warmSrc)
	return p
}

func mustCheckpoint(t *testing.T, vm *VM, p *Process, name string) *Template {
	t.Helper()
	tpl, err := vm.Checkpoint(p, name)
	if err != nil {
		t.Fatal(err)
	}
	return tpl
}

func mustFork(t *testing.T, tpl *Template, name string, opts ProcessOptions) *Process {
	t.Helper()
	p, err := tpl.Fork(name, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func auditClean(t *testing.T, vm *VM, when string) {
	t.Helper()
	if rep := vm.Audit(true); !rep.OK() {
		t.Fatalf("audit %s:\n%s", when, rep)
	}
}

func TestCheckpointForkServesWarmState(t *testing.T) {
	vm := newTestVM(t)
	origin := warmProc(t, vm, "zygote")
	tpl := mustCheckpoint(t, vm, origin, "zygote")
	if tpl.Bytes() == 0 {
		t.Fatal("template heap empty")
	}
	auditClean(t, vm, "after checkpoint")

	clone := mustFork(t, tpl, "clone", ProcessOptions{})
	th := spawn(t, clone, "app/Warm", "lookup(I)I", interp.IntSlot(9))
	tagTh := spawn(t, clone, "app/Warm", "tagIsWarmed()I")
	if err := vm.RunUntil(func() bool { return !th.Alive() && !tagTh.Alive() }); err != nil {
		t.Fatal(err)
	}
	if th.Result.I != 81 {
		t.Errorf("lookup(9) = %d, want 81 (err=%v uncaught=%v)", th.Result.I, th.Err, th.Uncaught)
	}
	if tagTh.Result.I != 1 {
		t.Errorf("clone's interned tag does not match its literal")
	}
	origin.Kill(nil)
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	auditClean(t, vm, "after clone run")
}

func TestForkIsolatesClonesFromEachOtherAndOrigin(t *testing.T) {
	// Clones mutate the warmed statics and the warmed Random; neither the
	// template, the origin, nor sibling clones may observe it.
	vm := newTestVM(t)
	origin := warmProc(t, vm, "zygote")
	tpl := mustCheckpoint(t, vm, origin, "zygote")

	a := mustFork(t, tpl, "a", ProcessOptions{})
	b := mustFork(t, tpl, "b", ProcessOptions{})
	// Both clones drain three draws from the warmed seeded Random,
	// concurrently: identical packed sequences prove the PRNG state was
	// deep-copied, not shared (interleaved draws from a shared generator
	// would diverge).
	ra := spawn(t, a, "app/Warm", "draw3()I")
	rb := spawn(t, b, "app/Warm", "draw3()I")
	if err := vm.RunUntil(func() bool { return !ra.Alive() && !rb.Alive() }); err != nil {
		t.Fatal(err)
	}
	if ra.Result.I != rb.Result.I {
		t.Errorf("draw sequence differs across clones: %d vs %d", ra.Result.I, rb.Result.I)
	}
	// A clone forked *after* a and b ran must see the untouched template
	// state: the same sequence again, not a generator a/b advanced.
	c := mustFork(t, tpl, "c", ProcessOptions{})
	rc := spawn(t, c, "app/Warm", "draw3()I")
	if err := vm.RunUntil(func() bool { return !rc.Alive() }); err != nil {
		t.Fatal(err)
	}
	if rc.Result.I != ra.Result.I {
		t.Errorf("late clone saw advanced generator: %d vs %d", rc.Result.I, ra.Result.I)
	}
	origin.Kill(nil)
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	auditClean(t, vm, "after clone teardown")
}

func TestForkSurvivesOriginDeath(t *testing.T) {
	// Satellite: forking from a template whose origin has since died must
	// work — the template owns its state outright.
	vm := newTestVM(t)
	origin := warmProc(t, vm, "zygote")
	tpl := mustCheckpoint(t, vm, origin, "zygote")
	origin.Kill(nil)
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if origin.State() != ProcReclaimed {
		t.Fatalf("origin state = %v", origin.State())
	}
	auditClean(t, vm, "after origin death")

	clone := mustFork(t, tpl, "orphan-clone", ProcessOptions{})
	th := spawn(t, clone, "app/Warm", "lookup(I)I", interp.IntSlot(7))
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if th.Result.I != 49 {
		t.Errorf("lookup(7) = %d, want 49 (err=%v)", th.Result.I, th.Err)
	}
	auditClean(t, vm, "after orphan clone")
}

func TestDoubleCheckpointSamePid(t *testing.T) {
	// Satellite: checkpointing the same warmed process twice yields two
	// independent templates; both fork correctly.
	vm := newTestVM(t)
	origin := warmProc(t, vm, "zygote")
	t1 := mustCheckpoint(t, vm, origin, "gen1")
	t2 := mustCheckpoint(t, vm, origin, "gen2")
	if t1.ID == t2.ID {
		t.Fatalf("both templates share pid %d", t1.ID)
	}
	if t1.Bytes() != t2.Bytes() {
		t.Errorf("checkpoint sizes differ: %d vs %d", t1.Bytes(), t2.Bytes())
	}
	c1 := mustFork(t, t1, "c1", ProcessOptions{})
	c2 := mustFork(t, t2, "c2", ProcessOptions{})
	th1 := spawn(t, c1, "app/Warm", "lookup(I)I", interp.IntSlot(5))
	th2 := spawn(t, c2, "app/Warm", "lookup(I)I", interp.IntSlot(6))
	if err := vm.RunUntil(func() bool { return !th1.Alive() && !th2.Alive() }); err != nil {
		t.Fatal(err)
	}
	if th1.Result.I != 25 || th2.Result.I != 36 {
		t.Errorf("lookups = %d, %d, want 25, 36", th1.Result.I, th2.Result.I)
	}
	if err := t1.Release(); err != nil {
		t.Fatal(err)
	}
	c1.Kill(nil)
	c2.Kill(nil)
	origin.Kill(nil)
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	auditClean(t, vm, "after mixed teardown")
}

func TestForkUnderTooSmallLimitFailsCleanly(t *testing.T) {
	// Satellite: a fork whose memlimit cannot hold the template copy must
	// fail with a clean error and leave zero residual charge.
	vm := newTestVM(t)
	origin := warmProc(t, vm, "zygote")
	tpl := mustCheckpoint(t, vm, origin, "zygote")
	if tpl.Bytes() < 1024 {
		t.Fatalf("template too small to test limits: %d bytes", tpl.Bytes())
	}
	rootBefore := vm.RootLimit.Use()
	_, err := tpl.Fork("tiny", ProcessOptions{MemLimit: 1024, HardLimit: true})
	if err == nil {
		t.Fatal("fork under 1 KiB limit succeeded")
	}
	if got := vm.RootLimit.Use(); got != rootBefore {
		t.Errorf("residual charge after failed fork: root use %d -> %d", rootBefore, got)
	}
	auditClean(t, vm, "after failed fork")

	// The template must still be usable.
	clone := mustFork(t, tpl, "ok", ProcessOptions{})
	th := spawn(t, clone, "app/Warm", "lookup(I)I", interp.IntSlot(3))
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if th.Result.I != 9 {
		t.Errorf("lookup(3) = %d, want 9", th.Result.I)
	}
	origin.Kill(nil)
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointRequiresQuiescence(t *testing.T) {
	vm := newTestVM(t)
	p := warmProc(t, vm, "busy")
	spawn(t, p, "app/Warm", "lookup(I)I", interp.IntSlot(1))
	if _, err := vm.Checkpoint(p, "busy"); err == nil {
		t.Fatal("checkpoint of a process with live threads succeeded")
	}
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Checkpoint(p, "dead"); err == nil {
		t.Fatal("checkpoint of a reclaimed process succeeded")
	}
}

func TestTemplateReleaseReturnsEveryByte(t *testing.T) {
	vm := newTestVM(t)
	origin := warmProc(t, vm, "zygote")
	rootBefore := vm.RootLimit.Use()
	tpl := mustCheckpoint(t, vm, origin, "zygote")
	if vm.RootLimit.Use() <= rootBefore {
		t.Fatal("checkpoint charged nothing")
	}
	if err := tpl.Release(); err != nil {
		t.Fatal(err)
	}
	if err := tpl.Release(); err != nil {
		t.Fatalf("second release: %v", err)
	}
	if got := vm.RootLimit.Use(); got != rootBefore {
		t.Errorf("template residency not returned: root use %d -> %d", rootBefore, got)
	}
	if _, ok := vm.Template(tpl.ID); ok {
		t.Error("released template still registered")
	}
	if _, err := tpl.Fork("late", ProcessOptions{}); err == nil {
		t.Error("fork from released template succeeded")
	}
	origin.Kill(nil)
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	auditClean(t, vm, "after release")
}

func TestKillDuringCheckpointIsDeterministic(t *testing.T) {
	// Satellite regression (run under -race): Kill of an in-flight
	// checkpoint source must either let the checkpoint finish from the
	// live heap or make it fail cleanly — never a torn template, never a
	// leaked charge. Loop to give the race both orderings.
	for i := 0; i < 20; i++ {
		vm := newTestVM(t)
		baseline := vm.RootLimit.Use()
		origin := warmProc(t, vm, "zygote")
		var wg sync.WaitGroup
		wg.Add(2)
		var tpl *Template
		var cerr error
		go func() {
			defer wg.Done()
			tpl, cerr = vm.Checkpoint(origin, "racy")
		}()
		go func() {
			defer wg.Done()
			origin.Kill(nil)
		}()
		wg.Wait()
		if err := vm.Run(0); err != nil {
			t.Fatal(err)
		}
		if origin.State() != ProcReclaimed {
			t.Fatalf("iter %d: origin state %v", i, origin.State())
		}
		if cerr == nil {
			// Checkpoint won the race: the template must be fully usable.
			clone, err := tpl.Fork("post-race", ProcessOptions{})
			if err != nil {
				t.Fatalf("iter %d: fork after racy checkpoint: %v", i, err)
			}
			th := spawn(t, clone, "app/Warm", "lookup(I)I", interp.IntSlot(8))
			if err := vm.Run(0); err != nil {
				t.Fatal(err)
			}
			if th.Result.I != 64 {
				t.Fatalf("iter %d: lookup(8) = %d", i, th.Result.I)
			}
			if err := tpl.Release(); err != nil {
				t.Fatalf("iter %d: release: %v", i, err)
			}
		}
		if rep := vm.Audit(true); !rep.OK() {
			t.Fatalf("iter %d: audit after race:\n%s", i, rep)
		}
		// Everything unwound: origin reclaimed, template (if any) released,
		// so the root account is back to its post-boot baseline.
		if use := vm.RootLimit.Use(); use != baseline {
			t.Fatalf("iter %d: checkpoint race leaked: root use %d, baseline %d (checkpoint err: %v)",
				i, use, baseline, cerr)
		}
	}
}

func TestSnapshotShowsTemplateState(t *testing.T) {
	// Satellite: ps/top surface templates with a distinct state column.
	vm := newTestVM(t)
	origin := warmProc(t, vm, "zygote")
	tpl := mustCheckpoint(t, vm, origin, "zygote")
	snap := vm.Snapshot()
	found := false
	for _, row := range snap.Procs {
		if row.Pid == int32(tpl.ID) {
			found = true
			if row.State != "template" {
				t.Errorf("template row state = %q", row.State)
			}
			if row.HeapBytes == 0 || row.MemUse == 0 {
				t.Errorf("template row empty: heap=%d mem=%d", row.HeapBytes, row.MemUse)
			}
		}
	}
	if !found {
		t.Fatal("template missing from snapshot")
	}
	if err := tpl.Release(); err != nil {
		t.Fatal(err)
	}
	snap = vm.Snapshot()
	for _, row := range snap.Procs {
		if row.Pid == int32(tpl.ID) && row.State != "released" {
			t.Errorf("released template row state = %q", row.State)
		}
	}
	origin.Kill(nil)
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
}
