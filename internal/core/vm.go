// Package core implements the KaffeOS virtual machine and its process
// abstraction — the paper's primary contribution.
//
// A VM hosts many processes. Each process is the unit of resource
// ownership and control: it has its own garbage-collected heap, its own
// memlimit, its own class namespace (reloaded library classes included),
// its own interned strings, and its own green threads, whose CPU cycles
// are charged to it — including cycles the collector spends on its heap.
// Killing a process cannot damage the system: termination is deferred in
// kernel mode, monitors release during unwinding, and the process' heap
// merges into the kernel heap where the next kernel collection reclaims
// every byte.
package core

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/barrier"
	"repro/internal/bytecode"
	"repro/internal/classlib"
	"repro/internal/codecache"
	"repro/internal/faults"
	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/loader"
	"repro/internal/membal"
	"repro/internal/memlimit"
	"repro/internal/object"
	"repro/internal/sched"
	"repro/internal/shared"
	"repro/internal/telemetry"
	"repro/internal/vmaddr"
)

// EngineKind selects the execution engine, reproducing the platform spread
// of the paper's Figure 3.
type EngineKind string

const (
	// EngineInterp is the baseline switch interpreter.
	EngineInterp EngineKind = "interp"
	// EngineInterpSpill is the interpreter with the Kaffe-1.0b4-style
	// naive-codegen simulation: redundant per-instruction decode and
	// register spill/reload traffic (the Kaffe99 class of engine).
	EngineInterpSpill EngineKind = "interp-spill"
	// EngineJIT is the closure compiler (Kaffe00-class).
	EngineJIT EngineKind = "jit"
	// EngineJITOpt adds superop fusion and inline caches (IBM-class).
	EngineJITOpt EngineKind = "jit-opt"
)

// Config parameterizes a VM.
type Config struct {
	// Barrier selects the write-barrier implementation (§4.1). Defaults to
	// NoHeapPointer, the configuration KaffeOS shipped with.
	Barrier barrier.Barrier
	// Engine selects the execution engine. Defaults to EngineInterp,
	// matching KaffeOS's Kaffe 1.0b4 base.
	Engine EngineKind
	// FastExceptions enables table-based exception dispatch (the Kaffe00
	// improvement KaffeOS integrated). Defaults true.
	FastExceptions *bool
	// ThinLocks enables header-word locking (Kaffe00's lightweight
	// locking). Defaults false, matching Kaffe 1.0b4.
	ThinLocks bool
	// TotalMemory is the root memlimit (default 256 MiB — the paper's
	// testbed RAM).
	TotalMemory uint64
	// KernelMemory is the hard reservation for the kernel heap (default
	// 32 MiB).
	KernelMemory uint64
	// Quantum is the scheduling quantum in cycles.
	Quantum int64
	// GCWorkers bounds the worker pool CollectAll uses to run process-heap
	// collections concurrently. 0 selects GOMAXPROCS.
	GCWorkers int
	// GCGrowthFactor is the legacy adaptive collection trigger: a process
	// heap is collected once it grows past factor × its size after the
	// previous collection (default 2.0). Only consulted when
	// GCLegacyGrowth is set; the default trigger is the square-root rule
	// (Kirisame et al., MemBalancer), which grants a heap headroom
	// √(live × alloc-rate × GCSqrtHorizon) instead of a fixed multiple.
	GCGrowthFactor float64
	// GCLegacyGrowth restores the fixed growth-factor trigger, for
	// differential testing against the square-root rule.
	GCLegacyGrowth bool
	// GCSqrtHorizon tunes the square-root trigger: the virtual-cycle
	// window whose expected allocation volume is balanced against the
	// live size (default 2^26 cycles ≈ 134 virtual ms). Larger = laxer
	// triggers, fewer collections, more memory.
	GCSqrtHorizon uint64
	// GCMinHeap is the floor below which the adaptive trigger never fires
	// (default 256 KiB), so short-lived or tiny processes are never
	// collected preemptively.
	GCMinHeap uint64
	// MemBudget, when nonzero, runs the MemBalancer controller
	// (internal/membal) over every process heap: the budget is
	// redistributed across all process memlimits every MemBalInterval
	// cycles by the square-root rule, and each process' GC trigger tracks
	// its controller-computed limit instead of the local rule. This turns
	// the paper's static memlimit tree into a continuous admission/
	// autoscaling policy for overcommitted serving.
	MemBudget uint64
	// MemBalInterval is the controller period in virtual cycles
	// (default 500k = 1 virtual ms).
	MemBalInterval uint64
	// CodeCache enables the shared JIT code cache (internal/codecache):
	// modules are compiled once per engine configuration and the
	// immutable artifact is shared read-only by every process loading
	// identical bytecode, each sharer charged the full artifact size
	// (the paper's full-charging rule applied to code residency).
	// Interpreter engines compile nothing, so the cache is a no-op for
	// them. Off by default.
	CodeCache bool
	// Stdout is where process output goes unless a process overrides it.
	Stdout io.Writer
	// Telemetry, when set, is used instead of a freshly-created hub —
	// callers that want a custom trace-ring size or shared registry pass
	// one in. The VM always has a hub; tracing defaults to off.
	Telemetry *telemetry.Hub
	// Faults, when set, arms the deterministic fault-injection plane across
	// every subsystem (heap allocation, GC mid-mark, barrier stores,
	// memlimit debits, scheduler dispatch, spawn/terminate races). Nil —
	// the default — injects nothing and costs one nil check per site.
	Faults *faults.Plane
}

func (c *Config) fill() {
	if c.Barrier == nil {
		c.Barrier = barrier.NoHeapPointer
	}
	if c.Engine == "" {
		c.Engine = EngineInterp
	}
	if c.FastExceptions == nil {
		v := true
		c.FastExceptions = &v
	}
	if c.TotalMemory == 0 {
		c.TotalMemory = 256 << 20
	}
	if c.KernelMemory == 0 {
		c.KernelMemory = 32 << 20
	}
	if c.GCGrowthFactor <= 0 {
		c.GCGrowthFactor = 2.0
	}
	if c.GCSqrtHorizon == 0 {
		c.GCSqrtHorizon = 1 << 26
	}
	if c.GCMinHeap == 0 {
		c.GCMinHeap = 256 << 10
	}
	if c.MemBalInterval == 0 {
		c.MemBalInterval = 500_000
	}
	if c.Stdout == nil {
		c.Stdout = io.Discard
	}
}

// Pid identifies a process within a VM.
type Pid int32

// VM is one KaffeOS virtual machine.
type VM struct {
	Cfg Config

	Space      *vmaddr.Space
	Reg        *heap.Registry
	RootLimit  *memlimit.Limit
	KernelHeap *heap.Heap
	Shared     *loader.Loader
	SharedMgr  *shared.Manager
	// CodeMgr is the shared JIT code cache (nil unless Cfg.CodeCache is
	// set and the engine compiles).
	CodeMgr *codecache.Manager
	Sched   *sched.Scheduler
	Lib     *classlib.Library
	Env     *interp.Env
	Stats   *barrier.Stats
	// Tel routes every subsystem's telemetry: metrics update always, the
	// event ring fills only while tracing is enabled.
	Tel *telemetry.Hub

	engine interp.Engine
	// engineJIT is the engine downcast to the closure compiler when it
	// is one (the code-cache compile/install path needs its Variant and
	// Program surface); nil for interpreter engines.
	engineJIT *interp.JIT

	// ctl is the MemBalancer controller (nil unless Cfg.MemBudget is
	// set). It and lastRebalance are touched only by the goroutine
	// driving the scheduler — the same ownership rule as the VM itself.
	ctl           *membal.Controller
	lastRebalance uint64

	mu        sync.Mutex
	procs     map[Pid]*Process
	templates map[Pid]*Template
	nextPid   Pid
	nextTid   int32
	programs  map[string]*bytecode.Module
	kernelGC  uint64 // kernel collections performed
}

// NewVM builds a VM: address space, kernel heap, shared system loader with
// the class library, and the scheduler.
func NewVM(cfg Config) (*VM, error) {
	cfg.fill()
	vm := &VM{
		Cfg:       cfg,
		Space:     vmaddr.NewSpace(),
		Stats:     &barrier.Stats{},
		procs:     make(map[Pid]*Process),
		templates: make(map[Pid]*Template),
		programs:  make(map[string]*bytecode.Module),
	}
	vm.Tel = cfg.Telemetry
	if vm.Tel == nil {
		vm.Tel = telemetry.NewHub(0)
	}
	vm.Reg = heap.NewRegistry(vm.Space, heap.Config{HeaderExtra: cfg.Barrier.HeaderExtra()})
	vm.Reg.Telemetry = vm.Tel
	vm.Stats.Sink = vm.Tel
	vm.RootLimit = memlimit.NewRoot("vm", cfg.TotalMemory)
	vm.RootLimit.SetSink(vm.Tel)
	if cfg.Faults != nil {
		vm.Reg.Faults = cfg.Faults
		vm.Reg.OnFaultKill = func(h *heap.Heap) {
			if p, ok := h.Owner.(*Process); ok {
				p.Kill(ErrInjectedFault)
			}
		}
		vm.Stats.Faults = cfg.Faults
		vm.RootLimit.SetFaults(cfg.Faults)
	}
	kernelLimit, err := vm.RootLimit.NewChild("kernel", cfg.KernelMemory, true)
	if err != nil {
		return nil, fmt.Errorf("core: kernel reservation: %w", err)
	}
	vm.KernelHeap = vm.Reg.NewHeap(heap.KindKernel, "kernel", kernelLimit)
	sharedBase, err := vm.RootLimit.NewChild("shared-heaps", memlimit.Unlimited, false)
	if err != nil {
		return nil, err
	}
	vm.SharedMgr = shared.NewManager(vm.Reg, sharedBase)
	vm.SharedMgr.Telemetry = vm.Tel

	switch cfg.Engine {
	case EngineInterp, EngineInterpSpill:
		vm.engine = interp.Interpreter{}
	case EngineJIT:
		vm.engineJIT = &interp.JIT{}
		vm.engine = vm.engineJIT
	case EngineJITOpt:
		vm.engineJIT = &interp.JIT{Fused: true, InlineCache: true}
		vm.engine = vm.engineJIT
	default:
		return nil, fmt.Errorf("core: unknown engine %q", cfg.Engine)
	}

	if cfg.CodeCache && vm.engineJIT != nil {
		// The cache's residency lives under its own soft child of the
		// root, mirroring the shared-heap base: artifacts are kernel
		// state, charged to no process (sharers additionally pay full
		// size against their own limits on attach).
		codeBase, err := vm.RootLimit.NewChild("codecache", memlimit.Unlimited, false)
		if err != nil {
			return nil, err
		}
		vm.CodeMgr = codecache.NewManager(codeBase)
		vm.CodeMgr.Metrics = vm.Tel.Reg.Kernel()
		vm.CodeMgr.Faults = cfg.Faults
	}

	vm.Lib = classlib.New()
	vm.Shared = loader.NewShared(vm.KernelHeap)
	vm.Shared.RegisterNatives(vm.Lib.Natives, vm.Lib.Kernel)
	vm.Shared.RegisterNatives(vm.kernelNatives())
	if err := vm.Shared.DefineModule(vm.Lib.SharedModule); err != nil {
		return nil, fmt.Errorf("core: defining shared library: %w", err)
	}
	if err := vm.Shared.DefineModule(kernelModule()); err != nil {
		return nil, fmt.Errorf("core: defining kernel classes: %w", err)
	}

	if cfg.MemBudget > 0 {
		vm.ctl = &membal.Controller{
			Budget: cfg.MemBudget,
			Floor:  cfg.GCMinHeap,
			Sink:   vm.Tel,
			Scope:  vm.Tel.Reg.Kernel(),
			Faults: cfg.Faults,
		}
	}

	vm.Sched = sched.New(vm.engine)
	vm.Sched.Quantum = cfg.Quantum
	vm.Sched.OnExit = vm.onThreadExit
	vm.Sched.Telemetry = vm.Tel
	if cfg.Faults != nil {
		vm.Sched.Faults = cfg.Faults
		vm.Sched.FaultKill = func(t *interp.Thread) {
			if p, ok := t.Owner.(*Process); ok {
				p.Kill(ErrInjectedFault)
			}
		}
	}
	vm.Tel.SetClock(vm.Sched.Now)
	vm.Sched.Charge = func(t *interp.Thread, cycles uint64) {
		if vm.ctl != nil {
			// The memory balancer runs on the scheduler's cadence: once
			// per MemBalInterval of virtual time it re-reads every live
			// heap and redistributes the budget. Same goroutine as the
			// scheduler, so it may touch processes and limits freely.
			if now := vm.Sched.Now(); now-vm.lastRebalance >= vm.Cfg.MemBalInterval {
				vm.lastRebalance = now
				vm.Rebalance()
			}
		}
		if p, ok := t.Owner.(*Process); ok {
			p.chargeCPU(cycles)
			if p.cpuLimit > 0 && p.CPUCycles() > p.cpuLimit && p.State() == ProcRunning {
				p.Kill(ErrCPULimit)
			}
			// Adaptive trigger: collect a heap that outgrew its computed
			// limit (square-root rule, controller-set, or the legacy
			// growth factor), instead of waiting for an allocation
			// failure. Runs on the scheduler goroutine, so the process'
			// mutators are quiescent; the cycles are charged to the
			// process through the normal path.
			if p.State() == ProcRunning && p.Heap.Bytes() > p.gcTrigger.Load() {
				if p.ctrGCAdaptive != nil {
					p.ctrGCAdaptive.Inc()
				}
				vm.collectHeapFor(t, p.Heap)
			}
		}
	}

	// Advisory invariant audits over HTTP (/audit); numeric checks only,
	// since a served VM may be mid-mutation.
	vm.Tel.SetAuditor(func() any { return vm.Audit(false) })

	vm.Env = vm.buildEnv()

	// Shared-library <clinit>s run on a bootstrap kernel thread.
	if err := vm.runClinits(nil, vm.Shared.PendingClinits()); err != nil {
		return nil, fmt.Errorf("core: shared clinit: %w", err)
	}
	return vm, nil
}

// buildEnv wires the interp environment to VM services. Thread ownership
// (t.Owner) identifies the process for all per-process behaviour.
func (vm *VM) buildEnv() *interp.Env {
	fe := *vm.Cfg.FastExceptions
	env := &interp.Env{
		Reg:            vm.Reg,
		Barrier:        vm.Cfg.Barrier,
		BarrierStats:   vm.Stats,
		FastExceptions: fe,
		ThinLocks:      vm.Cfg.ThinLocks,
		SpillSim:       vm.Cfg.Engine == EngineInterpSpill,
	}
	env.Throwable = func(t *interp.Thread, className, msg string) (*object.Object, error) {
		return vm.newThrowable(t, className, msg)
	}
	env.Intern = func(t *interp.Thread, s string) (*object.Object, error) {
		return vm.intern(t, s)
	}
	env.NewString = func(t *interp.Thread, s string) (*object.Object, error) {
		return vm.newString(t, s)
	}
	env.CollectHeap = func(t *interp.Thread, h *heap.Heap) {
		vm.collectHeapFor(t, h)
	}
	env.Spawn = func(t *interp.Thread, threadObj *object.Object) error {
		p, ok := t.Owner.(*Process)
		if !ok {
			return fmt.Errorf("core: spawn from ownerless thread")
		}
		return p.spawnThreadObject(threadObj)
	}
	env.SleepMillis = func(t *interp.Thread, ms int64) {
		if ms < 0 {
			ms = 0
		}
		vm.Sched.Sleep(t, uint64(ms)*sched.CyclesPerMs)
	}
	env.YieldThread = func(t *interp.Thread) { vm.Sched.Yield(t) }
	env.JoinThread = func(t *interp.Thread, threadObj *object.Object) {
		p, ok := t.Owner.(*Process)
		if !ok || threadObj == nil {
			return
		}
		target, started := p.threadFor[threadObj]
		if !started || !target.Alive() {
			return
		}
		interp.ParkUntil(t, func() bool { return !target.Alive() })
	}
	env.ThreadAlive = func(t *interp.Thread, threadObj *object.Object) bool {
		p, ok := t.Owner.(*Process)
		if !ok || threadObj == nil {
			return false
		}
		target, started := p.threadFor[threadObj]
		return started && target.Alive()
	}
	env.Stdout = func(t *interp.Thread) io.Writer {
		if p, ok := t.Owner.(*Process); ok {
			inner := p.Out
			if inner == nil {
				inner = vm.Cfg.Stdout
			}
			return &accountedWriter{p: p, inner: inner}
		}
		return vm.Cfg.Stdout
	}
	env.NowMillis = func() int64 { return int64(vm.Sched.NowMillis()) }
	env.NowCycles = func() uint64 { return vm.Sched.Now() }
	env.RandFor = func(t *interp.Thread) *rand.Rand {
		if p, ok := t.Owner.(*Process); ok {
			return p.rng
		}
		return nil
	}
	return env
}

// newThrowable builds a throwable in the thread's namespace. The object is
// allocated on the thread's allocation heap when possible; when that fails
// (the very OOM we are reporting), it falls back to the kernel heap so the
// error can still be delivered.
func (vm *VM) newThrowable(t *interp.Thread, className, msg string) (*object.Object, error) {
	var cls *object.Class
	var err error
	if p, ok := t.Owner.(*Process); ok {
		cls, err = p.Loader.Class(className)
	} else {
		cls, err = vm.Shared.Class(className)
	}
	if err != nil {
		return nil, err
	}
	o, aerr := t.AllocHeap().Alloc(cls)
	if aerr != nil {
		o, aerr = vm.KernelHeap.Alloc(cls)
		if aerr != nil {
			return nil, aerr
		}
	}
	o.Data = msg
	return o, nil
}

// intern returns the per-process interned string for s (§3.3: interning is
// per process so user code cannot exhaust a global kernel table).
func (vm *VM) intern(t *interp.Thread, s string) (*object.Object, error) {
	p, ok := t.Owner.(*Process)
	if !ok {
		return vm.newString(t, s)
	}
	if o, hit := p.intern[s]; hit {
		return o, nil
	}
	o, err := vm.newString(t, s)
	if err != nil {
		return nil, err
	}
	p.intern[s] = o
	return o, nil
}

// newString allocates a string object charged with its character storage.
func (vm *VM) newString(t *interp.Thread, s string) (*object.Object, error) {
	var cls *object.Class
	var err error
	if p, ok := t.Owner.(*Process); ok {
		cls, err = p.Loader.Class("java/lang/String")
	} else {
		cls, err = vm.Shared.Class("java/lang/String")
	}
	if err != nil {
		return nil, err
	}
	h := t.AllocHeap()
	o, err := h.AllocExtra(cls, uint64(len(s)))
	if err != nil {
		if !isMemExceeded(err) {
			return nil, err
		}
		vm.collectHeapFor(t, h)
		o, err = h.AllocExtra(cls, uint64(len(s)))
		if err != nil {
			obj, terr := vm.newThrowable(t, interp.ClsOutOfMemory, err.Error())
			if terr != nil {
				return nil, terr
			}
			return nil, &interp.Thrown{Obj: obj}
		}
	}
	o.Data = s
	return o, nil
}

// collectHeapFor runs a collection of h, charging the GC cycles to the
// triggering thread (and hence its process): precise CPU accounting covers
// time spent garbage collecting a process' heap.
func (vm *VM) collectHeapFor(t *interp.Thread, h *heap.Heap) {
	if t != nil && t.ReqID != 0 {
		// Attribute the pause to the request whose thread triggered it —
		// the same full-charging rule process accounting uses (a pause is
		// never split across overlapping requests; DESIGN.md §11).
		h.SetRequester(t.ReqID)
		defer h.SetRequester(0)
	}
	res := vm.CollectHeap(h)
	if t != nil {
		t.Fuel -= int64(res.Cycles)
		t.Cycles += res.Cycles
		if t.Span != nil {
			t.Span.GCCycles += res.Cycles
		}
		// Record who paid: the gc.charged counter of the collected heap's
		// scope must, in a complete accounting, equal the gc.cycles the
		// pause histogram saw (asserted by TestGCAccountingComplete).
		if owner, ok := h.Owner.(*Process); ok && owner.ctrGCCharged != nil {
			owner.ctrGCCharged.Add(res.Cycles)
		} else if vm.Tel != nil {
			vm.Tel.Reg.Kernel().Counter(telemetry.MGCCharged).Add(res.Cycles)
		}
	}
}

// CollectHeap collects any heap with the correct root set.
func (vm *VM) CollectHeap(h *heap.Heap) heap.GCResult {
	if h == vm.KernelHeap {
		return vm.CollectKernel()
	}
	if owner, ok := h.Owner.(*Process); ok {
		res := h.Collect(owner.gcRoots())
		owner.resetGCTrigger()
		vm.reconcileShared(owner)
		return res
	}
	return h.Collect(vm.allStackRoots())
}

// CollectAll collects every live process heap on a bounded pool of worker
// goroutines (Cfg.GCWorkers wide), so independent collections overlap
// instead of queueing, then charges each owner, reconciles shared-heap
// accounting, and finishes with a kernel collection. It must only be
// called while the scheduler is idle (between Run calls): a heap's own
// mutator threads must be quiescent during its collection, which the
// worker pool does not arrange — it only exploits that different
// processes' heaps are independent.
func (vm *VM) CollectAll() []heap.GCResult {
	procs := vm.Processes()
	reqs := make([]heap.CollectRequest, len(procs))
	for i, p := range procs {
		reqs[i] = heap.CollectRequest{Heap: p.Heap, Roots: p.gcRoots()}
	}
	results := vm.Reg.CollectConcurrent(reqs, vm.Cfg.GCWorkers)
	for i, p := range procs {
		res := results[i]
		p.chargeCPU(res.Cycles)
		if p.ctrGCCharged != nil {
			p.ctrGCCharged.Add(res.Cycles)
		}
		p.resetGCTrigger()
		vm.reconcileShared(p)
	}
	vm.CollectKernel()
	return results
}

// Rebalance runs one MemBalancer controller round: every running
// process' (live, alloc-rate) reading feeds the square-root rule, the
// global MemBudget is redistributed across their memlimits, and each
// process' GC trigger is retargeted to its new limit. No-op unless
// Cfg.MemBudget is set. Must be called from the goroutine driving the
// scheduler (the Charge hook calls it on its own every MemBalInterval
// cycles; tests and benchmarks may call it directly between Run slices).
func (vm *VM) Rebalance() []membal.Applied {
	if vm.ctl == nil {
		return nil
	}
	procs := vm.Processes()
	targets := make([]membal.Target, 0, len(procs))
	byPid := make(map[int32]*Process, len(procs))
	for _, p := range procs {
		if p.State() != ProcRunning {
			continue
		}
		targets = append(targets, membal.Target{
			ID:         int32(p.ID),
			Limit:      p.Limit,
			Live:       p.Heap.Bytes(),
			AllocBytes: p.Heap.Stats().AllocBytes,
		})
		byPid[int32(p.ID)] = p
	}
	applied := vm.ctl.Rebalance(vm.Sched.Now(), targets)
	for _, a := range applied {
		p := byPid[a.ID]
		p.setControlledTrigger(a.Trigger)
		if vm.Tel != nil {
			vm.Tel.Reg.Proc(a.ID).Gauge(telemetry.MMemLimit).Set(a.Max)
		}
	}
	// Kernel memory pressure evicts orphaned code artifacts: when the
	// processes' live bytes plus the cache's residency overrun the
	// controller's budget, zero-sharer artifacts are dropped (artifacts
	// with live sharers are never touched — a process' installed code
	// cannot vanish underneath it).
	if vm.CodeMgr != nil {
		var live uint64
		for _, t := range targets {
			live += t.Live
		}
		if live+vm.CodeMgr.ResidentBytes() > vm.Cfg.MemBudget {
			vm.CodeMgr.EvictOrphans()
		}
	}
	return applied
}

// Controller exposes the VM's memory balancer (nil unless Cfg.MemBudget
// is set) — read-only introspection for tests and the serving plane.
func (vm *VM) Controller() *membal.Controller { return vm.ctl }

// CollectKernel merges orphaned shared heaps, then collects the kernel
// heap. Kernel roots: shared-library statics, the process table, and every
// live thread's stack (stacks can hold kernel references directly).
func (vm *VM) CollectKernel() heap.GCResult {
	vm.SharedMgr.ReclaimOrphans(vm.KernelHeap)
	vm.mu.Lock()
	vm.kernelGC++
	vm.mu.Unlock()
	return vm.KernelHeap.Collect(func(visit func(*object.Object)) {
		vm.Shared.StaticsRoots(visit)
		vm.allStackRoots()(visit)
	})
}

// allStackRoots visits roots of every thread of every process.
func (vm *VM) allStackRoots() heap.RootFunc {
	return func(visit func(*object.Object)) {
		vm.mu.Lock()
		procs := make([]*Process, 0, len(vm.procs))
		for _, p := range vm.procs {
			procs = append(procs, p)
		}
		vm.mu.Unlock()
		for _, p := range procs {
			p.stackAndStaticRoots(visit)
		}
	}
}

// KernelGCs reports the number of kernel collections (test/metric hook).
func (vm *VM) KernelGCs() uint64 {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	return vm.kernelGC
}

// Snapshot captures a point-in-time telemetry view of the VM: the virtual
// clock, one row per process the VM has ever created (reclaimed processes
// keep their final metrics), and kernel-wide totals. Safe to call from any
// goroutine while the VM runs; live fields (state, threads, heap bytes)
// are joined in for processes still in the table.
func (vm *VM) Snapshot() telemetry.Snapshot {
	rows := vm.Tel.Reg.Rows(func(pid int32) (string, int, uint64, uint64, uint64, bool) {
		p, ok := vm.Process(Pid(pid))
		if !ok {
			if t, tok := vm.Template(Pid(pid)); tok {
				return "template", 0, t.Heap.Bytes(), t.Limit.Use(), vm.codeBytesFor(t), true
			}
			return "", 0, 0, 0, 0, false
		}
		return p.State().String(), p.Threads(), p.HeapBytes(), p.MemUse(), vm.codeBytesFor(p), true
	})
	return telemetry.Snapshot{
		NowCycles:    vm.Sched.Now(),
		NowMillis:    vm.Sched.NowMillis(),
		Procs:        rows,
		KernelGCs:    vm.KernelGCs(),
		Events:       vm.Tel.Trace.Total(),
		GCFastHits:   vm.Tel.Reg.Kernel().Counter(telemetry.MGCFastHits).Value(),
		GCFastMisses: vm.Tel.Reg.Kernel().Counter(telemetry.MGCFastMisses).Value(),
		GCOverlap:    uint64(vm.Reg.MaxConcurrentGCs()),
	}
}

// RegisterProgram makes a module spawnable by name via the Kernel.spawn
// syscall and Process creation.
func (vm *VM) RegisterProgram(name string, m *bytecode.Module) {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	vm.programs[name] = m
}

// Program looks up a registered program module.
func (vm *VM) Program(name string) (*bytecode.Module, bool) {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	m, ok := vm.programs[name]
	return m, ok
}

// Processes lists live processes sorted by pid.
func (vm *VM) Processes() []*Process {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	out := make([]*Process, 0, len(vm.procs))
	for _, p := range vm.procs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Process resolves a pid.
func (vm *VM) Process(pid Pid) (*Process, bool) {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	p, ok := vm.procs[pid]
	return p, ok
}

// Run drives the scheduler until no non-daemon threads remain or maxCycles
// elapse (0 = unbounded).
func (vm *VM) Run(maxCycles uint64) error {
	return vm.Sched.Run(maxCycles)
}

// RunUntil drives the scheduler until cond holds.
func (vm *VM) RunUntil(cond func() bool) error {
	return vm.Sched.RunUntil(cond)
}

// runClinits executes class initializers on a fresh bootstrap thread owned
// by p (nil = kernel bootstrap, kernel heap allocations).
func (vm *VM) runClinits(p *Process, clinits []*object.Method) error {
	if len(clinits) == 0 {
		return nil
	}
	t := vm.newThread(p)
	if p == nil {
		t.Heap = vm.KernelHeap
		t.EnterKernel()
		defer t.ExitKernel()
	}
	for _, m := range clinits {
		if err := t.PushFrame(m, nil); err != nil {
			return err
		}
		for t.Alive() {
			t.Fuel = 1 << 20
			res := vm.engine.Step(t)
			if res == interp.StepFinished {
				break
			}
			if res == interp.StepKilled {
				return fmt.Errorf("core: <clinit> of %s died: %v", m.Class.Name, t.Err)
			}
			if res == interp.StepBlocked {
				return fmt.Errorf("core: <clinit> of %s blocked", m.Class.Name)
			}
		}
		t.State = interp.StateRunnable // reuse for the next clinit
	}
	return nil
}

// newThread builds a thread owned by p (or the kernel when p is nil).
func (vm *VM) newThread(p *Process) *interp.Thread {
	vm.mu.Lock()
	vm.nextTid++
	id := vm.nextTid
	vm.mu.Unlock()
	t := &interp.Thread{
		ID:    id,
		Env:   vm.Env,
		State: interp.StateRunnable,
	}
	if p != nil {
		t.Owner = p
		t.Heap = p.Heap
	} else {
		t.Heap = vm.KernelHeap
	}
	return t
}

// onThreadExit is the scheduler's exit hook: it removes the thread from
// its process and reclaims the process when the last thread dies.
func (vm *VM) onThreadExit(t *interp.Thread, res interp.StepResult) {
	p, ok := t.Owner.(*Process)
	if !ok {
		return
	}
	p.threadExited(t, res)
}

func isMemExceeded(err error) bool {
	var ex *memlimit.ErrExceeded
	return errorsAs(err, &ex)
}
