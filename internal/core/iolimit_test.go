package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

const chattySrc = `
.class app/Chatty
.method main ()V static
.locals 1
.stack 2
	iconst 0
	istore 0
L0:	getstatic java/lang/System.out Ljava/io/PrintStream;
	ldc "another line of output spam from a chatty process"
	invokevirtual java/io/PrintStream.println (Ljava/lang/String;)V
	iinc 0 1
	iload 0
	ldc 100000
	if_icmplt L0
	return
.end
.end`

func TestIOAccounting(t *testing.T) {
	vm := newTestVM(t)
	var out bytes.Buffer
	p := mustProc(t, vm, "io", ProcessOptions{Out: &out})
	load(t, p, `
.class app/P
.method main ()V static
.locals 0
.stack 2
	getstatic java/lang/System.out Ljava/io/PrintStream;
	ldc "12345"
	invokevirtual java/io/PrintStream.println (Ljava/lang/String;)V
	return
.end
.end`)
	spawn(t, p, "app/P", "main()V")
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if p.IOBytes() != 6 { // "12345\n"
		t.Errorf("IOBytes = %d, want 6", p.IOBytes())
	}
	if out.String() != "12345\n" {
		t.Errorf("out = %q", out.String())
	}
}

func TestIOLimitKillsSpammer(t *testing.T) {
	vm := newTestVM(t)
	var out bytes.Buffer
	p := mustProc(t, vm, "spam", ProcessOptions{Out: &out, IOLimit: 4096})
	load(t, p, chattySrc)
	spawn(t, p, "app/Chatty", "main()V")
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if p.State() != ProcReclaimed {
		t.Fatalf("state = %v", p.State())
	}
	if !errors.Is(p.ExitError(), ErrIOLimit) {
		t.Errorf("exit err = %v, want ErrIOLimit", p.ExitError())
	}
	// Output stops near the limit (one line of slack for the crossing
	// write, which is dropped).
	if out.Len() > 4096 {
		t.Errorf("wrote %d bytes past a 4096-byte limit", out.Len())
	}
	if strings.Count(out.String(), "\n") == 0 {
		t.Error("no output before the kill")
	}
}

func TestIOLimitUnlimitedByDefault(t *testing.T) {
	vm := newTestVM(t)
	p := mustProc(t, vm, "free", ProcessOptions{})
	load(t, p, `
.class app/P
.method main ()V static
.locals 1
.stack 2
	iconst 0
	istore 0
L0:	getstatic java/lang/System.out Ljava/io/PrintStream;
	ldc "x"
	invokevirtual java/io/PrintStream.println (Ljava/lang/String;)V
	iinc 0 1
	iload 0
	iconst 100
	if_icmplt L0
	return
.end
.end`)
	spawn(t, p, "app/P", "main()V")
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if p.ExitError() != nil {
		t.Errorf("unlimited process killed: %v", p.ExitError())
	}
	if p.IOBytes() != 200 {
		t.Errorf("IOBytes = %d, want 200", p.IOBytes())
	}
}
