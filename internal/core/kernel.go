package core

import (
	"fmt"

	"repro/internal/bytecode"
	"repro/internal/interp"
	"repro/internal/object"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

// kernelModule declares the KaffeOS system-call surface: static native
// methods on kaffeos/Kernel (process control, resource introspection) and
// kaffeos/Shared (shared-heap lifecycle). All of them run in kernel mode:
// a thread inside one cannot be terminated until the call completes, which
// is what keeps kernel state consistent under Process.Kill.
func kernelModule() *bytecode.Module {
	return bytecode.MustAssemble(`
.class kaffeos/Kernel
.method currentPid ()I static native
.end
.method spawn (Ljava/lang/String;Ljava/lang/String;I)I static native
.end
.method kill (I)Z static native
.end
.method exit ()V static native
.end
.method alive (I)Z static native
.end
.method waitFor (I)V static native
.end
.method procCount ()I static native
.end
.method memUsed ()I static native
.end
.method memLimit ()I static native
.end
.method cpuMillis ()I static native
.end
.method gc ()V static native
.end
.method kernelGC ()V static native
.end
.end

.class kaffeos/Shared
.method create (Ljava/lang/String;I)V static native
.end
.method setRoot (Ljava/lang/Object;)V static native
.end
.method freeze (Ljava/lang/String;)V static native
.end
.method lookup (Ljava/lang/String;)Ljava/lang/Object; static native
.end
.method drop (Ljava/lang/String;)V static native
.end
.method sharerCount (Ljava/lang/String;)I static native
.end
.end
`)
}

// procOf extracts the calling process or raises an internal error.
func procOf(t *interp.Thread) (*Process, error) {
	p, ok := t.Owner.(*Process)
	if !ok {
		return nil, fmt.Errorf("core: syscall from ownerless thread")
	}
	return p, nil
}

func goStr(o *object.Object) string {
	if o == nil {
		return ""
	}
	s, _ := o.Data.(string)
	return s
}

// kernelNatives builds the native table for the kernel module. Every entry
// is marked kernel-mode.
func (vm *VM) kernelNatives() (map[string]any, map[string]bool) {
	n := map[string]any{}
	k := map[string]bool{}
	add := func(key string, fn interp.NativeFunc) {
		n[key] = fn
		k[key] = true
	}

	add("kaffeos/Kernel.currentPid()I", func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
		p, err := procOf(t)
		if err != nil {
			return interp.Slot{}, err
		}
		return interp.IntSlot(int64(p.ID)), nil
	})

	add("kaffeos/Kernel.spawn(Ljava/lang/String;Ljava/lang/String;I)I", func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
		program := goStr(args[0].R)
		mainCls := goStr(args[1].R)
		memKB := args[2].I
		child, err := vm.NewProcess(program, ProcessOptions{MemLimit: uint64(memKB) << 10})
		if err != nil {
			return interp.Slot{}, t.Env.Throw(t, interp.ClsOutOfMemory, err.Error())
		}
		if err := child.LoadProgram(program); err != nil {
			child.Kill(err)
			child.reclaim()
			return interp.Slot{}, t.Env.Throw(t, "java/lang/IllegalArgumentException", err.Error())
		}
		if _, err := child.Spawn(mainCls, "main()V"); err != nil {
			child.Kill(err)
			child.reclaim()
			return interp.Slot{}, t.Env.Throw(t, "java/lang/IllegalArgumentException", err.Error())
		}
		return interp.IntSlot(int64(child.ID)), nil
	})

	add("kaffeos/Kernel.kill(I)Z", func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
		p, ok := vm.Process(Pid(args[0].I))
		if !ok {
			return interp.IntSlot(0), nil
		}
		p.Kill(fmt.Errorf("killed by syscall"))
		return interp.IntSlot(1), nil
	})

	add("kaffeos/Kernel.exit()V", func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
		p, err := procOf(t)
		if err != nil {
			return interp.Slot{}, err
		}
		// Mark a clean exit, then terminate every thread (including the
		// caller, at its next user-mode safepoint).
		if p.transition(ProcRunning, ProcExited, nil, nil) {
			p.emit(telemetry.EvProcExit, 0, 0, "exit syscall")
		}
		for th := range p.threads {
			th.Kill()
		}
		return interp.Slot{}, nil
	})

	add("kaffeos/Kernel.alive(I)Z", func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
		if _, ok := vm.Process(Pid(args[0].I)); ok {
			return interp.IntSlot(1), nil
		}
		return interp.IntSlot(0), nil
	})

	add("kaffeos/Kernel.waitFor(I)V", func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
		pid := Pid(args[0].I)
		if _, ok := vm.Process(pid); !ok {
			return interp.Slot{}, nil // already gone: waitpid semantics
		}
		interp.ParkUntil(t, func() bool {
			_, alive := vm.Process(pid)
			return !alive
		})
		return interp.Slot{}, nil
	})

	add("kaffeos/Kernel.procCount()I", func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
		return interp.IntSlot(int64(len(vm.Processes()))), nil
	})

	add("kaffeos/Kernel.memUsed()I", func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
		p, err := procOf(t)
		if err != nil {
			return interp.Slot{}, err
		}
		return interp.IntSlot(int64(p.Limit.Use())), nil
	})

	add("kaffeos/Kernel.memLimit()I", func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
		p, err := procOf(t)
		if err != nil {
			return interp.Slot{}, err
		}
		return interp.IntSlot(int64(p.Limit.Max())), nil
	})

	add("kaffeos/Kernel.cpuMillis()I", func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
		p, err := procOf(t)
		if err != nil {
			return interp.Slot{}, err
		}
		return interp.IntSlot(int64(p.CPUCycles() / sched.CyclesPerMs)), nil
	})

	add("kaffeos/Kernel.gc()V", func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
		vm.collectHeapFor(t, t.AllocHeap())
		return interp.Slot{}, nil
	})

	add("kaffeos/Kernel.kernelGC()V", func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
		res := vm.CollectKernel()
		t.Fuel -= int64(res.Cycles)
		t.Cycles += res.Cycles
		if vm.Tel != nil {
			vm.Tel.Reg.Kernel().Counter(telemetry.MGCCharged).Add(res.Cycles)
		}
		return interp.Slot{}, nil
	})

	// --- shared heaps ---

	add("kaffeos/Shared.create(Ljava/lang/String;I)V", func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
		p, err := procOf(t)
		if err != nil {
			return interp.Slot{}, err
		}
		name := goStr(args[0].R)
		maxKB := args[1].I
		sh, err := vm.SharedMgr.Create(name, p.Limit, uint64(maxKB)<<10)
		if err != nil {
			return interp.Slot{}, t.Env.Throw(t, "java/lang/IllegalStateException", err.Error())
		}
		// Subsequent allocations by this thread populate the shared heap.
		t.AllocOverride = sh.H
		return interp.Slot{}, nil
	})

	add("kaffeos/Shared.setRoot(Ljava/lang/Object;)V", func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
		o := args[0].R
		if o == nil {
			return interp.Slot{}, t.Env.Throw(t, interp.ClsNullPointer, "shared root")
		}
		if t.AllocOverride == nil || o.Heap != t.AllocOverride.ID {
			return interp.Slot{}, t.Env.Throw(t, "java/lang/IllegalStateException",
				"root must be allocated on the shared heap being populated")
		}
		for _, sh := range vm.SharedMgr.Heaps() {
			if sh.H == t.AllocOverride {
				sh.Root = o
				return interp.Slot{}, nil
			}
		}
		return interp.Slot{}, t.Env.Throw(t, "java/lang/IllegalStateException", "no shared heap under population")
	})

	add("kaffeos/Shared.freeze(Ljava/lang/String;)V", func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
		p, err := procOf(t)
		if err != nil {
			return interp.Slot{}, err
		}
		name := goStr(args[0].R)
		sh, err := vm.SharedMgr.Lookup(name)
		if err != nil {
			return interp.Slot{}, t.Env.Throw(t, "java/lang/IllegalStateException", err.Error())
		}
		if err := vm.SharedMgr.Freeze(sh); err != nil {
			return interp.Slot{}, t.Env.Throw(t, "java/lang/IllegalStateException", err.Error())
		}
		t.AllocOverride = nil
		// The creator is the first sharer and is charged in full.
		if err := vm.SharedMgr.Attach(sh, p, p.Limit); err != nil {
			return interp.Slot{}, t.Env.Throw(t, interp.ClsOutOfMemory, err.Error())
		}
		return interp.Slot{}, nil
	})

	add("kaffeos/Shared.lookup(Ljava/lang/String;)Ljava/lang/Object;", func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
		p, err := procOf(t)
		if err != nil {
			return interp.Slot{}, err
		}
		name := goStr(args[0].R)
		sh, err := vm.SharedMgr.Lookup(name)
		if err != nil {
			return interp.Slot{}, t.Env.Throw(t, "java/lang/IllegalStateException", err.Error())
		}
		if !sh.Frozen() {
			return interp.Slot{}, t.Env.Throw(t, "java/lang/IllegalStateException", "shared heap not frozen")
		}
		// Every sharer pays the full heap size while holding it (§2).
		if err := vm.SharedMgr.Attach(sh, p, p.Limit); err != nil {
			return interp.Slot{}, t.Env.Throw(t, interp.ClsOutOfMemory, err.Error())
		}
		return interp.RefSlot(sh.Root), nil
	})

	add("kaffeos/Shared.drop(Ljava/lang/String;)V", func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
		p, err := procOf(t)
		if err != nil {
			return interp.Slot{}, err
		}
		sh, err := vm.SharedMgr.Lookup(goStr(args[0].R))
		if err != nil {
			return interp.Slot{}, nil // dropping a dead name is benign
		}
		vm.SharedMgr.Detach(sh, p)
		return interp.Slot{}, nil
	})

	add("kaffeos/Shared.sharerCount(Ljava/lang/String;)I", func(t *interp.Thread, args []interp.Slot) (interp.Slot, error) {
		sh, err := vm.SharedMgr.Lookup(goStr(args[0].R))
		if err != nil {
			return interp.IntSlot(0), nil
		}
		return interp.IntSlot(int64(sh.Sharers())), nil
	})

	return n, k
}

// reconcileShared credits shared-heap charges for processes whose heaps no
// longer reference a shared heap: "After the process garbage collects the
// last exit item to a shared heap, that shared heap's memory is credited
// to the sharer's budget" (§2). Called after each process-heap collection.
func (vm *VM) reconcileShared(p *Process) {
	for _, sh := range vm.SharedMgr.Heaps() {
		if !sh.Frozen() || !sh.SharedBy(p) {
			continue
		}
		if p.Heap.HasExitsTo(sh.H.ID) {
			continue
		}
		// No heap references remain; check stacks and statics too (stack
		// references carry no exit items but still pin the heap).
		live := false
		p.stackAndStaticRoots(func(o *object.Object) {
			if o != nil && o.Heap == sh.H.ID {
				live = true
			}
		})
		if !live {
			vm.SharedMgr.Detach(sh, p)
		}
	}
}
