package core

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/bytecode"
	"repro/internal/telemetry"
)

// TestSoakRandomLifecycles runs many rounds of creating, running, and
// killing processes with varied behaviours (compute, churn, hog, spin,
// share), then checks the global invariants: every process limit released,
// the kernel heap clean, exactly one live heap (the kernel's) in the
// registry, and no leaked shared heaps.
func TestSoakRandomLifecycles(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	vm := newTestVM(t)
	vm.Tel.SetTracing(true)
	rng := rand.New(rand.NewSource(7))

	// A concurrent observer hammers the introspection surface (the same
	// reads the HTTP handler and `kaffeos top` perform) while the
	// scheduler mutates everything — the race detector polices the pair.
	stop := make(chan struct{})
	var pollers sync.WaitGroup
	pollers.Add(1)
	go func() {
		defer pollers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := vm.Snapshot()
			telemetry.RenderTable(io.Discard, snap)
			vm.Tel.Trace.Snapshot()
			for _, p := range vm.Processes() {
				_ = p.State()
				_ = p.CPUCycles()
				_ = p.IOBytes()
				_ = p.Threads()
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	defer func() {
		close(stop)
		pollers.Wait()
	}()

	programs := map[string]string{
		"compute": `
.class app/Compute
.method main ()V static
.locals 2
.stack 3
	iconst 0
	istore 0
L0:	iload 0
	ldc 20000
	if_icmpge OUT
	iinc 0 1
	goto L0
OUT:	return
.end
.end`,
		"churn": `
.class app/Churn
.method main ()V static
.locals 1
.stack 2
	iconst 0
	istore 0
L0:	iload 0
	ldc 300
	if_icmpge OUT
	ldc 256
	newarray [I
	pop
	iinc 0 1
	goto L0
OUT:	return
.end
.end`,
		"hog": `
.class app/Hog
.static keep Ljava/util/Vector;
.method main ()V static
.locals 0
.stack 4
	new java/util/Vector
	dup
	invokespecial java/util/Vector.<init> ()V
	putstatic app/Hog.keep Ljava/util/Vector;
L0:	getstatic app/Hog.keep Ljava/util/Vector;
	ldc 1024
	newarray [I
	invokevirtual java/util/Vector.add (Ljava/lang/Object;)V
	goto L0
.end
.end`,
		"spin": `
.class app/Spin
.method main ()V static
.locals 0
.stack 1
L0:	goto L0
.end
.end`,
		"thrower": `
.class app/Thrower
.method main ()V static
.locals 0
.stack 2
	new java/lang/RuntimeException
	athrow
.end
.end`,
	}
	mains := map[string]string{
		"compute": "app/Compute", "churn": "app/Churn", "hog": "app/Hog",
		"spin": "app/Spin", "thrower": "app/Thrower",
	}
	mods := map[string]*bytecode.Module{}
	for name, src := range programs {
		mods[name] = bytecode.MustAssemble(src)
	}
	names := []string{"compute", "churn", "hog", "spin", "thrower"}

	var live []*Process
	var tpls []*Template
	for round := 0; round < 200; round++ {
		// Maybe mint a zygote: warm a quiescent process, checkpoint it,
		// kill the origin — the template must stand on its own.
		if len(tpls) < 3 && rng.Intn(8) == 0 {
			origin := warmProc(t, vm, fmt.Sprintf("zygote-%d", round))
			tpl, err := vm.Checkpoint(origin, fmt.Sprintf("tpl-%d", round))
			if err != nil {
				t.Fatalf("round %d: checkpoint: %v", round, err)
			}
			tpls = append(tpls, tpl)
			origin.Kill(nil)
		}
		// Maybe release a template out from under future forks.
		if len(tpls) > 0 && rng.Intn(12) == 0 {
			i := rng.Intn(len(tpls))
			if err := tpls[i].Release(); err != nil {
				t.Fatalf("round %d: release: %v", round, err)
			}
			tpls = append(tpls[:i], tpls[i+1:]...)
		}
		// Maybe fork a clone and point it at a regular workload: forked
		// processes must be full citizens (loadable, spawnable, killable).
		if len(tpls) > 0 && len(live) < 8 && rng.Intn(3) == 0 {
			tpl := tpls[rng.Intn(len(tpls))]
			kind := names[rng.Intn(len(names))]
			clone, err := tpl.Fork(fmt.Sprintf("fork-%s-%d", kind, round), ProcessOptions{
				MemLimit: uint64(rng.Intn(1<<20) + 256<<10),
			})
			if err != nil {
				t.Fatalf("round %d: fork: %v", round, err)
			}
			if err := clone.Load(mods[kind]); err != nil {
				t.Fatal(err)
			}
			if _, err := clone.Spawn(mains[kind], "main()V"); err != nil {
				t.Fatal(err)
			}
			live = append(live, clone)
		}
		// Maybe create a process.
		if len(live) < 8 {
			kind := names[rng.Intn(len(names))]
			p, err := vm.NewProcess(fmt.Sprintf("%s-%d", kind, round), ProcessOptions{
				MemLimit: uint64(rng.Intn(1<<20) + 256<<10),
				CPULimit: uint64(rng.Intn(3)) * 2_000_000, // 0 = unlimited
			})
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			if err := p.Load(mods[kind]); err != nil {
				t.Fatal(err)
			}
			if _, err := p.Spawn(mains[kind], "main()V"); err != nil {
				t.Fatal(err)
			}
			live = append(live, p)
		}
		// Run a slice.
		if err := vm.Run(500_000); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		// Maybe kill a random live process.
		if len(live) > 0 && rng.Intn(3) == 0 {
			i := rng.Intn(len(live))
			live[i].Kill(nil)
		}
		// Compact the live list.
		keep := live[:0]
		for _, p := range live {
			if p.State() == ProcRunning {
				keep = append(keep, p)
			}
		}
		live = keep
		// Periodically audit every kernel invariant mid-churn. The
		// scheduler is paused between slices, so the graph walk is safe.
		if round%50 == 49 {
			if rep := vm.Audit(true); !rep.OK() {
				t.Fatalf("round %d: %s", round, rep)
			}
		}
	}

	// Teardown: kill everything, release every template, and drain.
	for _, p := range vm.Processes() {
		p.Kill(nil)
	}
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	for _, tpl := range vm.Templates() {
		if err := tpl.Release(); err != nil {
			t.Fatalf("teardown release: %v", err)
		}
	}
	vm.CollectKernel()

	if got := len(vm.Processes()); got != 0 {
		t.Fatalf("%d processes survived teardown", got)
	}
	if heaps := vm.Reg.Heaps(); len(heaps) != 1 {
		for _, h := range heaps {
			t.Logf("surviving heap: %s (%s, %d bytes)", h.Name, h.Kind, h.Bytes())
		}
		t.Fatalf("%d heaps survive, want only the kernel heap", len(heaps))
	}
	if got := vm.KernelHeap.Bytes(); got > 64<<10 {
		t.Errorf("kernel heap retains %d bytes", got)
	}
	// Root accounting: only the kernel reservation and whatever the kernel
	// heap itself holds remain charged.
	rootUse := vm.RootLimit.Use()
	if rootUse != vm.Cfg.KernelMemory {
		t.Errorf("root use = %d, want only the kernel reservation %d", rootUse, vm.Cfg.KernelMemory)
	}
	if got := len(vm.SharedMgr.Heaps()); got != 0 {
		t.Errorf("%d shared heaps leaked", got)
	}
	// Address-space accounting: with every process heap merged away, every
	// mapped page must belong to the kernel heap, and the page table must be
	// bounded — before chunk release, 200 rounds of process churn leaked a
	// page range per dead heap and this count grew without bound.
	if total, kernel := vm.Space.Pages(), vm.Space.PagesOwned(vm.KernelHeap.ID); total != kernel {
		t.Errorf("page table holds %d pages but the kernel heap owns only %d — dead heaps leaked pages", total, kernel)
	}
	if got := vm.Space.Pages(); got > 512 {
		t.Errorf("page table holds %d pages (%d KiB) after teardown, want a bounded residue", got, got<<2)
	}
	if got := vm.Tel.Trace.Total(); got == 0 {
		t.Error("tracing was on but no events reached the ring")
	}
	if rep := vm.Audit(true); !rep.OK() {
		t.Errorf("post-teardown audit: %s", rep)
	}
}
