package core

import (
	"repro/internal/audit"
	"repro/internal/codecache"
	"repro/internal/shared"
)

// Audit captures a globally consistent snapshot of every accounting
// structure in the VM — heaps, entry/exit items, the memlimit tree, the
// page table, shared-heap charges, code-cache charges, and the process
// table — and re-derives the books from first principles (see package
// audit). graph additionally walks every object's reference fields,
// checking the legality matrix and exit-item backing; it is only
// meaningful while no mutator runs (scheduler idle), whereas the numeric
// checks hold on any consistent cut.
//
// The capture order follows the kernel lock order: the code-cache
// manager's lock wraps the shared manager's, which is taken around the
// heap snapshot (manager locks precede the heap locks, as in orphan
// reclamation), and the memlimit tree, page table, and process table are
// copied inside the heap snapshot's critical section.
func (vm *VM) Audit(graph bool) *audit.Report {
	var w audit.World
	capture := func() {
		vm.SharedMgr.Snapshot(func(charges []shared.ChargeInfo) {
			w.Shared = charges
			w.Heaps = vm.Reg.SnapshotAll(func() {
				w.Limits = vm.RootLimit.Snapshot()
				w.Pages = vm.Space.Dump()
				w.LivePids = make(map[int32]bool)
				w.TemplatePids = make(map[int32]bool)
				vm.mu.Lock()
				for pid := range vm.procs {
					w.LivePids[int32(pid)] = true
				}
				for pid := range vm.templates {
					w.TemplatePids[int32(pid)] = true
				}
				vm.mu.Unlock()
			})
		})
	}
	if vm.CodeMgr != nil {
		w.CodeLimit = vm.CodeMgr.Base()
		vm.CodeMgr.Snapshot(func(charges []codecache.ChargeInfo) {
			w.Code = make([]audit.CodeCharge, len(charges))
			for i, ci := range charges {
				w.Code[i] = audit.CodeCharge{
					Name: ci.Name, Variant: ci.Variant, Size: ci.Size, Sharers: ci.Sharers,
				}
			}
			capture()
		})
	} else {
		capture()
	}
	w.KernelID = vm.KernelHeap.ID
	return audit.Check(w, audit.Options{Graph: graph})
}
