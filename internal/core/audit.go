package core

import (
	"repro/internal/audit"
	"repro/internal/shared"
)

// Audit captures a globally consistent snapshot of every accounting
// structure in the VM — heaps, entry/exit items, the memlimit tree, the
// page table, shared-heap charges, and the process table — and re-derives
// the books from first principles (see package audit). graph additionally
// walks every object's reference fields, checking the legality matrix and
// exit-item backing; it is only meaningful while no mutator runs (scheduler
// idle), whereas the numeric checks hold on any consistent cut.
//
// The capture order follows the kernel lock order: the shared manager's
// lock is taken around the heap snapshot (Manager.mu precedes the heap
// locks, as in orphan reclamation), and the memlimit tree, page table, and
// process table are copied inside the heap snapshot's critical section.
func (vm *VM) Audit(graph bool) *audit.Report {
	var w audit.World
	vm.SharedMgr.Snapshot(func(charges []shared.ChargeInfo) {
		w.Shared = charges
		w.Heaps = vm.Reg.SnapshotAll(func() {
			w.Limits = vm.RootLimit.Snapshot()
			w.Pages = vm.Space.Dump()
			w.LivePids = make(map[int32]bool)
			w.TemplatePids = make(map[int32]bool)
			vm.mu.Lock()
			for pid := range vm.procs {
				w.LivePids[int32(pid)] = true
			}
			for pid := range vm.templates {
				w.TemplatePids[int32(pid)] = true
			}
			vm.mu.Unlock()
		})
	})
	w.KernelID = vm.KernelHeap.ID
	return audit.Check(w, audit.Options{Graph: graph})
}
