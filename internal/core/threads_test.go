package core

import (
	"errors"
	"testing"

	"repro/internal/interp"
)

// TestWaitNotify exercises the full producer/consumer handshake through
// Object.wait/notify on a shared (intra-process) lock object.
func TestWaitNotify(t *testing.T) {
	vm := newTestVM(t)
	src := `
.class app/Box
.static lock Ljava/lang/Object;
.static value I
.static ready I
.end

.class app/Waiter extends java/lang/Thread
.static result I
.method <init> ()V
.locals 1
.stack 1
	aload 0
	invokespecial java/lang/Thread.<init> ()V
	return
.end
.method run ()V
.locals 1
.stack 2
	getstatic app/Box.lock Ljava/lang/Object;
	astore 0
	aload 0
	monitorenter
WAITLOOP:	getstatic app/Box.ready I
	ifne GOT
	aload 0
	invokevirtual java/lang/Object.wait ()V
	goto WAITLOOP
GOT:	getstatic app/Box.value I
	putstatic app/Waiter.result I
	aload 0
	monitorexit
	return
.end
.end

.class app/Main
.method main ()I static
.locals 2
.stack 3
	new java/lang/Object
	putstatic app/Box.lock Ljava/lang/Object;
	new app/Waiter
	dup
	invokespecial app/Waiter.<init> ()V
	astore 0
	aload 0
	invokevirtual java/lang/Thread.start ()V
# give the waiter a chance to park
	iconst 5
	invokestatic java/lang/Thread.sleep (I)V
# publish the value under the lock and notify
	getstatic app/Box.lock Ljava/lang/Object;
	astore 1
	aload 1
	monitorenter
	ldc 424
	putstatic app/Box.value I
	iconst 1
	putstatic app/Box.ready I
	aload 1
	invokevirtual java/lang/Object.notifyAll ()V
	aload 1
	monitorexit
# join the waiter and read its result
	aload 0
	invokevirtual java/lang/Thread.join ()V
	getstatic app/Waiter.result I
	ireturn
.end
.end`
	p := mustProc(t, vm, "wn", ProcessOptions{})
	load(t, p, src)
	th := spawn(t, p, "app/Main", "main()I")
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if th.State != interp.StateFinished {
		t.Fatalf("state %v err %v uncaught %v", th.State, th.Err, th.Uncaught)
	}
	if th.Result.I != 424 {
		t.Errorf("result = %d, want 424", th.Result.I)
	}
}

func TestWaitWithoutMonitorThrows(t *testing.T) {
	vm := newTestVM(t)
	src := `
.class app/T
.method main ()I static
.locals 1
.stack 2
	new java/lang/Object
	astore 0
T0:	aload 0
	invokevirtual java/lang/Object.wait ()V
	iconst 0
	ireturn
T1:	pop
	iconst 1
	ireturn
.catch java/lang/IllegalMonitorStateException T0 T1 T1
.end
.end`
	p := mustProc(t, vm, "w", ProcessOptions{})
	load(t, p, src)
	th := spawn(t, p, "app/T", "main()I")
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if th.Result.I != 1 {
		t.Errorf("wait without monitor did not throw (got %d, err %v)", th.Result.I, th.Err)
	}
}

func TestJoinWaitsForCompletion(t *testing.T) {
	vm := newTestVM(t)
	src := `
.class app/Work extends java/lang/Thread
.static sum I
.method <init> ()V
.locals 1
.stack 1
	aload 0
	invokespecial java/lang/Thread.<init> ()V
	return
.end
.method run ()V
.locals 1
.stack 3
	iconst 0
	istore 0
L0:	iload 0
	ldc 50000
	if_icmpge L1
	iinc 0 1
	goto L0
L1:	getstatic app/Work.sum I
	iload 0
	iadd
	putstatic app/Work.sum I
	return
.end
.end
.class app/Main
.method main ()I static
.locals 1
.stack 3
	new app/Work
	dup
	invokespecial app/Work.<init> ()V
	astore 0
	aload 0
	invokevirtual java/lang/Thread.start ()V
	aload 0
	invokevirtual java/lang/Thread.join ()V
# after join, the worker's writes are visible and complete
	getstatic app/Work.sum I
	ireturn
.end
.end`
	p := mustProc(t, vm, "j", ProcessOptions{})
	load(t, p, src)
	th := spawn(t, p, "app/Main", "main()I")
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if th.Result.I != 50000 {
		t.Errorf("join returned before completion: sum = %d", th.Result.I)
	}
}

func TestJoinFinishedThreadReturnsImmediately(t *testing.T) {
	vm := newTestVM(t)
	src := `
.class app/Quick extends java/lang/Thread
.method <init> ()V
.locals 1
.stack 1
	aload 0
	invokespecial java/lang/Thread.<init> ()V
	return
.end
.method run ()V
.locals 1
.stack 1
	return
.end
.end
.class app/Main
.method main ()I static
.locals 1
.stack 2
	new app/Quick
	dup
	invokespecial app/Quick.<init> ()V
	astore 0
	aload 0
	invokevirtual java/lang/Thread.start ()V
	iconst 10
	invokestatic java/lang/Thread.sleep (I)V
	aload 0
	invokevirtual java/lang/Thread.join ()V
	aload 0
	invokevirtual java/lang/Thread.isAlive ()Z
	ireturn
.end
.end`
	p := mustProc(t, vm, "jf", ProcessOptions{})
	load(t, p, src)
	th := spawn(t, p, "app/Main", "main()I")
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if th.State != interp.StateFinished || th.Result.I != 0 {
		t.Errorf("state %v result %d err %v", th.State, th.Result.I, th.Err)
	}
}

func TestKillWaitingProcess(t *testing.T) {
	// A process whose only thread is parked in Object.wait must still be
	// killable and fully reclaimed.
	vm := newTestVM(t)
	src := `
.class app/W
.method main ()V static
.locals 1
.stack 2
	new java/lang/Object
	astore 0
	aload 0
	monitorenter
	aload 0
	invokevirtual java/lang/Object.wait ()V
	aload 0
	monitorexit
	return
.end
.end`
	p := mustProc(t, vm, "kw", ProcessOptions{})
	load(t, p, src)
	spawn(t, p, "app/W", "main()V")
	// The lone waiter deadlocks the scheduler (nobody can notify).
	err := vm.Run(0)
	if err == nil {
		t.Fatal("expected deadlock report for lone waiter")
	}
	p.Kill(nil)
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if p.State() != ProcReclaimed {
		t.Errorf("state = %v", p.State())
	}
	if p.Limit.Use() != 0 {
		t.Errorf("residual charge %d", p.Limit.Use())
	}
}

func TestCPULimitKillsProcess(t *testing.T) {
	vm := newTestVM(t)
	src := `
.class app/Spin
.method main ()V static
.locals 0
.stack 1
L0:	goto L0
.end
.end`
	p := mustProc(t, vm, "cpu", ProcessOptions{CPULimit: 500_000})
	load(t, p, src)
	spawn(t, p, "app/Spin", "main()V")
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if p.State() != ProcReclaimed {
		t.Fatalf("state = %v", p.State())
	}
	if !errors.Is(p.ExitError(), ErrCPULimit) {
		t.Errorf("exit err = %v, want ErrCPULimit", p.ExitError())
	}
	// The overshoot is at most one quantum.
	if p.CPUCycles() > 500_000+uint64(vm.Sched.Quantum)+200_000 {
		t.Errorf("cpu overshoot: %d cycles", p.CPUCycles())
	}
}

func TestCPULimitDoesNotAffectOthers(t *testing.T) {
	vm := newTestVM(t)
	spin := `
.class app/Spin
.method main (I)I static
.locals 2
.stack 2
	iconst 0
	istore 1
L0:	iinc 1 1
	iload 1
	iload 0
	if_icmplt L0
	iload 1
	ireturn
.end
.end`
	capped := mustProc(t, vm, "capped", ProcessOptions{CPULimit: 200_000})
	free := mustProc(t, vm, "free", ProcessOptions{})
	load(t, capped, spin)
	load(t, free, spin)
	spawn(t, capped, "app/Spin", "main(I)I", interp.IntSlot(100_000_000))
	ft := spawn(t, free, "app/Spin", "main(I)I", interp.IntSlot(300_000))
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if capped.State() != ProcReclaimed || !errors.Is(capped.ExitError(), ErrCPULimit) {
		t.Errorf("capped: %v / %v", capped.State(), capped.ExitError())
	}
	if ft.State != interp.StateFinished || ft.Result.I != 300_000 {
		t.Errorf("free process disturbed: %v %d", ft.State, ft.Result.I)
	}
}
