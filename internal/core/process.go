package core

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/bytecode"
	"repro/internal/faults"
	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/loader"
	"repro/internal/membal"
	"repro/internal/memlimit"
	"repro/internal/object"
	"repro/internal/telemetry"
)

// ProcState is a process' lifecycle state.
type ProcState uint8

const (
	ProcRunning ProcState = iota + 1
	ProcExited            // all threads returned normally
	ProcKilled            // terminated by Kill or a fatal error
	ProcReclaimed
)

func (s ProcState) String() string {
	switch s {
	case ProcRunning:
		return "running"
	case ProcExited:
		return "exited"
	case ProcKilled:
		return "killed"
	case ProcReclaimed:
		return "reclaimed"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// ProcessOptions configure process creation.
type ProcessOptions struct {
	// MemLimit caps the process' memory (objects, statics, interned
	// strings, entry/exit items, shared-heap charges). Default 16 MiB.
	MemLimit uint64
	// HardLimit reserves the memory up front instead of sharing the root
	// pool (a hard memlimit, §2 "Hierarchical memory management").
	HardLimit bool
	// CPULimit, when nonzero, kills the process once it has consumed this
	// many simulated cycles (including GC of its heap) — the OS-style
	// "CPU limits can be placed on the process" from the paper's §1.
	CPULimit uint64
	// IOLimit, when nonzero, caps the bytes the process may write to its
	// output stream. The paper leaves bandwidth control as future work
	// ("we plan to address other resources such as network bandwidth");
	// this is the accounting skeleton for it.
	IOLimit uint64
	// Out receives the process' System.out (default: the VM's Stdout).
	Out io.Writer
	// Seed seeds the per-process deterministic random source.
	Seed int64
}

// ErrCPULimit is the exit reason of a process that exceeded its CPU limit.
var ErrCPULimit = errors.New("core: CPU limit exceeded")

// ErrInjectedFault is the exit reason of a process killed by the fault-
// injection plane (Config.Faults).
var ErrInjectedFault = errors.New("core: injected fault")

// Process is one KaffeOS process.
type Process struct {
	ID   Pid
	Name string
	VM   *VM

	Limit  *memlimit.Limit
	Heap   *heap.Heap
	Loader *loader.Loader
	Out    io.Writer

	// state is atomic and nthreads mirrors len(threads) so that external
	// pollers (kaffeos top, the HTTP introspection endpoint) can read
	// State/Threads/CPUCycles/IOBytes without racing the running VM. The
	// threads/threadFor maps are mutated only on the scheduling goroutine
	// but read by Kill, which may run on any goroutine — mu guards every
	// map access and orders the state/exitErr/uncaught writes.
	mu        sync.Mutex
	state     atomic.Uint32 // holds a ProcState
	exitErr   error
	uncaught  *object.Object
	threads   map[*interp.Thread]struct{}
	threadFor map[*object.Object]*interp.Thread // java/lang/Thread objects
	nthreads  atomic.Int32
	intern    map[string]*object.Object
	// modules records every module defined into the namespace, in load
	// order, so Checkpoint can replay the namespace into forks.
	modules   []*bytecode.Module
	rng       *rand.Rand
	cpuCycles atomic.Uint64
	cpuLimit  uint64
	ioBytes   atomic.Uint64
	ioLimit   uint64

	// Cached per-process telemetry counters: the scheduler's charge hook
	// and the accounted writer bump these with one atomic add each.
	ctrCPU        *telemetry.Counter
	ctrIO         *telemetry.Counter
	ctrGCCharged  *telemetry.Counter
	ctrGCAdaptive *telemetry.Counter

	// gcTrigger is the heap size past which the scheduler's charge hook
	// collects the heap adaptively. Rearmed after every collection — from
	// the controller's target when one governs this process, else by the
	// local square-root rule (or the legacy growth factor); never below
	// GCMinHeap. Read every quantum.
	gcTrigger atomic.Uint64
	// ctlTrigger, when nonzero, is the memory-balancer controller's limit
	// for this heap: resetGCTrigger uses it instead of computing a local
	// target, so the controller's budget split survives collections until
	// the next rebalance round overwrites it.
	ctlTrigger atomic.Uint64
	// lastGCAlloc/lastGCCycles checkpoint the heap's cumulative allocation
	// counter and the virtual clock at the previous trigger reset, giving
	// the local square-root rule its allocation-rate estimate.
	lastGCAlloc  atomic.Uint64
	lastGCCycles atomic.Uint64
	// forkMu serializes reclamation against Checkpoint: a checkpoint of a
	// dying process either completes from the still-live heap and namespace
	// before reclamation proceeds, or observes the process dead and aborts.
	// Order: forkMu → (heap gcMu → crossMu → mu → memlimit → Space).
	forkMu sync.Mutex
	// reclaiming admits exactly one reclaimer (threadExited's scheduler
	// path vs Kill's inline threadless path).
	reclaiming atomic.Bool
	// handles other processes hold on this one do not keep its heap
	// alive; the process table entry is the only kernel-side state.
}

// NewProcess creates a process: its own memlimit, heap, namespace (with
// the reloaded library classes defined and initialized), and interning
// table. No threads run yet; use Spawn to start one.
func (vm *VM) NewProcess(name string, opts ProcessOptions) (*Process, error) {
	if opts.MemLimit == 0 {
		opts.MemLimit = 16 << 20
	}
	lim, err := vm.RootLimit.NewChild("proc:"+name, opts.MemLimit, opts.HardLimit)
	if err != nil {
		return nil, fmt.Errorf("core: memlimit for %q: %w", name, err)
	}
	vm.mu.Lock()
	vm.nextPid++
	pid := vm.nextPid
	vm.mu.Unlock()

	p := &Process{
		ID:        pid,
		Name:      name,
		VM:        vm,
		Limit:     lim,
		Out:       opts.Out,
		threads:   make(map[*interp.Thread]struct{}),
		threadFor: make(map[*object.Object]*interp.Thread),
		intern:    make(map[string]*object.Object),
		rng:       rand.New(rand.NewSource(opts.Seed + int64(pid))),
		cpuLimit:  opts.CPULimit,
		ioLimit:   opts.IOLimit,
	}
	p.state.Store(uint32(ProcRunning))
	p.gcTrigger.Store(vm.Cfg.GCMinHeap)
	if vm.Tel != nil {
		scope := vm.Tel.Reg.Proc(int32(pid))
		p.ctrCPU = scope.Counter(telemetry.MCPUCycles)
		p.ctrIO = scope.Counter(telemetry.MIOBytes)
		p.ctrGCCharged = scope.Counter(telemetry.MGCCharged)
		p.ctrGCAdaptive = scope.Counter(telemetry.MGCAdaptive)
		scope.Gauge(telemetry.MMemLimit).Set(opts.MemLimit)
	}
	// The process object itself is large and lives on the *new* heap; the
	// kernel keeps only the small process-table entry (§2, "Precise memory
	// and CPU accounting").
	p.Heap = vm.Reg.NewHeap(heap.KindUser, fmt.Sprintf("proc:%s#%d", name, pid), lim)
	p.Heap.Owner = p
	p.Heap.Pid = int32(pid)
	p.emit(telemetry.EvProcCreate, opts.MemLimit, 0, name)
	p.Loader = loader.NewProcess(fmt.Sprintf("%s#%d", name, pid), p.Heap, vm.Shared)
	p.Loader.RegisterNatives(vm.Lib.Natives, vm.Lib.Kernel)

	if err := vm.defineModule(p, vm.Lib.ReloadedModule); err != nil {
		p.releaseEarly()
		return nil, fmt.Errorf("core: reloaded library for %q: %w", name, err)
	}
	if err := vm.runClinits(p, p.Loader.PendingClinits()); err != nil {
		p.releaseEarly()
		return nil, fmt.Errorf("core: library clinit for %q: %w", name, err)
	}
	p.modules = append(p.modules, vm.Lib.ReloadedModule)
	if err := vm.attachCachedCode(p, vm.Lib.ReloadedModule); err != nil {
		p.releaseEarly()
		return nil, fmt.Errorf("core: code cache for %q: %w", name, err)
	}

	vm.mu.Lock()
	vm.procs[pid] = p
	vm.mu.Unlock()
	return p, nil
}

// releaseEarly tears down a half-built process (creation failure).
func (p *Process) releaseEarly() {
	p.reclaiming.Store(true)
	p.VM.detachCachedCode(p)
	_ = p.Heap.MergeInto(p.VM.KernelHeap)
	p.Limit.Release()
	p.state.Store(uint32(ProcReclaimed))
	p.emit(telemetry.EvProcReclaim, 0, 0, "creation failed")
}

// emit forwards a lifecycle event, stamped with this process' pid, to the
// VM's telemetry hub.
func (p *Process) emit(k telemetry.Kind, a, b uint64, detail string) {
	if p.VM != nil && p.VM.Tel != nil {
		p.VM.Tel.Emit(telemetry.Event{Kind: k, Pid: int32(p.ID), A: a, B: b, Detail: detail})
	}
}

// TelemetryPid lets layers that hold the process as an opaque owner
// (scheduler, shared-heap manager) recover its pid for event stamping.
func (p *Process) TelemetryPid() int32 { return int32(p.ID) }

// State reports the lifecycle state. Safe to call from any goroutine.
func (p *Process) State() ProcState { return ProcState(p.state.Load()) }

// ExitError reports why the process died (nil for a normal exit).
func (p *Process) ExitError() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.exitErr
}

// Uncaught reports the throwable that killed the process, if any.
func (p *Process) Uncaught() *object.Object {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.uncaught
}

// CPUCycles reports the simulated cycles charged to this process,
// including GC of its heap. Safe to call from any goroutine.
func (p *Process) CPUCycles() uint64 { return p.cpuCycles.Load() }

// chargeCPU adds cycles to the process' CPU account and telemetry.
func (p *Process) chargeCPU(cycles uint64) {
	p.cpuCycles.Add(cycles)
	if p.ctrCPU != nil {
		p.ctrCPU.Add(cycles)
	}
}

// IOBytes reports the bytes the process has written to its output stream.
// Safe to call from any goroutine.
func (p *Process) IOBytes() uint64 { return p.ioBytes.Load() }

// accountedWriter wraps a process' output: every byte is accounted, and
// an IOLimit overrun kills the writer at its next safepoint.
type accountedWriter struct {
	p     *Process
	inner io.Writer
}

func (w *accountedWriter) Write(b []byte) (int, error) {
	total := w.p.ioBytes.Add(uint64(len(b)))
	if w.p.ctrIO != nil {
		w.p.ctrIO.Add(uint64(len(b)))
	}
	if w.p.ioLimit > 0 && total > w.p.ioLimit && w.p.State() == ProcRunning {
		w.p.Kill(ErrIOLimit)
		return len(b), nil // the write that crossed the line is dropped downstream
	}
	if w.inner == nil {
		return len(b), nil
	}
	return w.inner.Write(b)
}

// ErrIOLimit is the exit reason of a process that exceeded its I/O limit.
var ErrIOLimit = errors.New("core: I/O limit exceeded")

// HeapBytes reports the process heap's live bytes.
func (p *Process) HeapBytes() uint64 { return p.Heap.Bytes() }

// MemUse reports the process' total accounted memory (heap + charges).
func (p *Process) MemUse() uint64 { return p.Limit.Use() }

// Threads reports the number of live threads. Safe to call from any
// goroutine.
func (p *Process) Threads() int { return int(p.nthreads.Load()) }

// Load defines a program module into the process namespace and runs its
// class initializers.
func (p *Process) Load(m *bytecode.Module) error {
	if s := p.State(); s != ProcRunning {
		return fmt.Errorf("core: load into %s process", s)
	}
	if err := p.VM.defineModule(p, m); err != nil {
		return err
	}
	if err := p.VM.runClinits(p, p.Loader.PendingClinits()); err != nil {
		return err
	}
	p.mu.Lock()
	p.modules = append(p.modules, m)
	p.mu.Unlock()
	// Attach (or compile into) the shared code cache last: the module is
	// already defined and recorded, so a failed attach — memlimit, or
	// the codecache.attach fault site — leaves a consistent namespace
	// with no cached code and no residual charge; the error tells the
	// caller the load did not complete as configured.
	if err := p.VM.attachCachedCode(p, m); err != nil {
		return err
	}
	return nil
}

// LoadProgram loads a program registered with the VM.
func (p *Process) LoadProgram(name string) error {
	m, ok := p.VM.Program(name)
	if !ok {
		return fmt.Errorf("core: no program %q", name)
	}
	return p.Load(m)
}

// Spawn starts a thread executing cls.method (a static method taking no
// arguments or a single int).
func (p *Process) Spawn(cls, methodKey string, args ...interp.Slot) (*interp.Thread, error) {
	return p.spawn(cls, methodKey, false, args)
}

// SpawnDaemon is Spawn for daemon threads: the thread belongs to the
// process (it is killed and reclaimed with it) but does not keep the
// scheduler running on its own. The serving plane uses it for per-tenant
// keep-alive threads, so an idle server leaves the VM with no runnable
// work instead of a spinning sleep loop.
func (p *Process) SpawnDaemon(cls, methodKey string, args ...interp.Slot) (*interp.Thread, error) {
	return p.spawn(cls, methodKey, true, args)
}

func (p *Process) spawn(cls, methodKey string, daemon bool, args []interp.Slot) (*interp.Thread, error) {
	if s := p.State(); s != ProcRunning {
		return nil, fmt.Errorf("core: spawn in %s process", s)
	}
	c, err := p.Loader.Class(cls)
	if err != nil {
		return nil, err
	}
	m, ok := c.MethodByKey(methodKey)
	if !ok {
		return nil, fmt.Errorf("core: no method %s.%s", cls, methodKey)
	}
	t := p.VM.newThread(p)
	t.Daemon = daemon
	if err := t.PushFrame(m, args); err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.threads[t] = struct{}{}
	p.mu.Unlock()
	p.nthreads.Add(1)
	p.VM.Sched.Add(t)
	p.emit(telemetry.EvThreadSpawn, uint64(t.ID), 0, cls+"."+methodKey)
	if p.VM.Cfg.Faults.Fire(faults.SiteProcSpawn) {
		// Race a kill against the newborn thread: it must die at its first
		// safepoint and the process must still reclaim fully.
		p.Kill(ErrInjectedFault)
	}
	return t, nil
}

// spawnThreadObject implements java/lang/Thread.start: run the object's
// run()V on a new green thread of the same process.
func (p *Process) spawnThreadObject(threadObj *object.Object) error {
	m, ok := threadObj.Class.MethodByKey("run()V")
	if !ok {
		return fmt.Errorf("core: %s has no run()V", threadObj.Class.Name)
	}
	t := p.VM.newThread(p)
	if err := t.PushFrame(m, []interp.Slot{interp.RefSlot(threadObj)}); err != nil {
		return err
	}
	if df, ok := threadObj.Class.FieldByName("daemon"); ok && !df.Ref {
		t.Daemon = threadObj.Prims[df.Slot] != 0
	}
	p.mu.Lock()
	p.threads[t] = struct{}{}
	p.threadFor[threadObj] = t
	p.mu.Unlock()
	p.nthreads.Add(1)
	p.VM.Sched.Add(t)
	p.emit(telemetry.EvThreadSpawn, uint64(t.ID), 0, threadObj.Class.Name+".run()V")
	if p.VM.Cfg.Faults.Fire(faults.SiteProcSpawn) {
		p.Kill(ErrInjectedFault)
	}
	return nil
}

// Kill requests termination of every thread. User-mode code dies at its
// next safepoint; kernel-mode sections finish first (§2, "Safe termination
// of processes"). Reclamation happens when the last thread exits.
//
// Kill is idempotent and safe to call from any goroutine, concurrently
// with itself: the state CAS admits exactly one caller, so exactly one
// EvProcKill is emitted per process, and the thread set is snapshotted
// under mu so a concurrent spawn or exit cannot race the iteration.
func (p *Process) Kill(reason error) {
	if !p.transition(ProcRunning, ProcKilled, reason, nil) {
		return
	}
	why := ""
	if reason != nil {
		why = reason.Error()
	}
	p.emit(telemetry.EvProcKill, 0, 0, why)
	p.mu.Lock()
	ts := make([]*interp.Thread, 0, len(p.threads))
	for t := range p.threads {
		ts = append(ts, t)
	}
	p.mu.Unlock()
	for _, t := range ts {
		t.Kill()
	}
	if len(ts) == 0 {
		// A threadless process has no exit hook left to reclaim it (nothing
		// will ever call threadExited): reclaim inline, so killing an idle
		// warmed process — e.g. a checkpoint origin between Run slices — is
		// deterministic rather than leaking until VM teardown.
		p.reclaim()
	}
}

// transition moves the process from one state to another, recording the
// exit reason on the first terminal transition. It reports whether the
// transition happened (false if the state was not `from`).
func (p *Process) transition(from, to ProcState, reason error, uncaught *object.Object) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.state.CompareAndSwap(uint32(from), uint32(to)) {
		return false
	}
	if p.exitErr == nil {
		p.exitErr = reason
	}
	if p.uncaught == nil {
		p.uncaught = uncaught
	}
	return true
}

// threadExited is called by the scheduler's exit hook.
func (p *Process) threadExited(t *interp.Thread, res interp.StepResult) {
	if p.VM.Cfg.Faults.Fire(faults.SiteProcTerminate) {
		// Race a kill against this thread's own exit: if it was the last
		// thread, the process reclaims as killed rather than exited, and
		// either way every invariant must hold.
		p.Kill(ErrInjectedFault)
	}
	p.mu.Lock()
	delete(p.threads, t)
	for obj, th := range p.threadFor {
		if th == t {
			delete(p.threadFor, obj)
		}
	}
	remaining := len(p.threads)
	p.mu.Unlock()
	p.nthreads.Add(-1)
	if res == interp.StepKilled && p.transition(ProcRunning, ProcKilled, t.Err, t.Uncaught) {
		// An uncaught throwable (or VM fault) in any thread kills the
		// whole process, like an uncaught signal.
		why := ""
		if t.Err != nil {
			why = t.Err.Error()
		}
		p.emit(telemetry.EvProcKill, uint64(t.ID), 0, why)
		p.mu.Lock()
		others := make([]*interp.Thread, 0, len(p.threads))
		for other := range p.threads {
			others = append(others, other)
		}
		p.mu.Unlock()
		for _, other := range others {
			other.Kill()
		}
	}
	if remaining == 0 {
		if p.transition(ProcRunning, ProcExited, nil, nil) {
			p.emit(telemetry.EvProcExit, 0, 0, "")
		}
		p.reclaim()
	}
}

// reclaim implements full reclamation of memory (§2): merge the process
// heap into the kernel heap, destroy exit items, unload the namespace,
// release shared-heap charges, and let the kernel collector take it all.
func (p *Process) reclaim() {
	if !p.reclaiming.CompareAndSwap(false, true) {
		return
	}
	// Serialize against Checkpoint: a checkpoint holding forkMu finishes
	// its copy of the heap and namespace before we tear them down.
	p.forkMu.Lock()
	defer p.forkMu.Unlock()
	finalState := p.State()
	if finalState == ProcReclaimed {
		return
	}
	vm := p.VM
	vm.SharedMgr.DetachAll(p)
	vm.SharedMgr.UnfrozenOwnedBy(p.Limit, vm.KernelHeap)
	vm.detachCachedCode(p)
	p.intern = make(map[string]*object.Object)
	p.Loader.Unload()
	merged := p.Heap.Bytes()
	if err := p.Heap.MergeInto(vm.KernelHeap); err != nil {
		// Merging can only fail if the kernel cannot absorb the bytes;
		// collect the kernel heap and retry once.
		vm.CollectKernel()
		_ = p.Heap.MergeInto(vm.KernelHeap)
	}
	p.state.Store(uint32(ProcReclaimed))
	p.emit(telemetry.EvProcReclaim, merged, 0, finalState.String())

	vm.mu.Lock()
	delete(vm.procs, p.ID)
	vm.mu.Unlock()

	// The kernel collection reclaims everything the process left behind,
	// including user/kernel garbage cycles.
	vm.CollectKernel()
	if p.Limit.Use() == 0 {
		p.Limit.Release()
	}
}

// gcRoots enumerates the process heap's roots: thread stacks, statics of
// its namespace, interned strings, and the kernel-side process handle.
func (p *Process) gcRoots() heap.RootFunc {
	return func(visit func(*object.Object)) {
		p.stackAndStaticRoots(visit)
		for _, o := range p.intern {
			visit(o)
		}
	}
}

func (p *Process) stackAndStaticRoots(visit func(*object.Object)) {
	for t := range p.threads {
		t.Roots(visit)
	}
	p.Loader.StaticsRoots(visit)
}

// Collect runs a GC of this process' heap. The cycles are charged to the
// process directly — even externally-triggered collections of a heap are
// paid for by its owner, so CPU accounting stays complete (§2, "Precise
// memory and CPU accounting").
func (p *Process) Collect() heap.GCResult {
	res := p.Heap.Collect(p.gcRoots())
	p.resetGCTrigger()
	p.chargeCPU(res.Cycles)
	if p.ctrGCCharged != nil {
		p.ctrGCCharged.Add(res.Cycles)
	}
	return res
}

// CollectAttributed is Collect with the pause's telemetry stamped with a
// request id: the serving plane uses it for collections a request forces
// outside thread execution (admission-pressure and marshal-retry GCs), so
// those pauses land in the same ledger as trigger-driven ones.
func (p *Process) CollectAttributed(req uint64) heap.GCResult {
	if req != 0 {
		p.Heap.SetRequester(req)
		defer p.Heap.SetRequester(0)
	}
	return p.Collect()
}

// setControlledTrigger installs the memory-balancer controller's limit as
// this process' GC trigger. Called from the VM's Rebalance (scheduler
// goroutine); read from resetGCTrigger on the same goroutine and from
// external pollers via the atomic.
func (p *Process) setControlledTrigger(t uint64) {
	if min := p.VM.Cfg.GCMinHeap; t < min {
		t = min
	}
	p.ctlTrigger.Store(t)
	p.gcTrigger.Store(t)
}

// resetGCTrigger rearms the adaptive collection trigger after a collection
// of this process' heap. When the memory-balancer controller governs this
// process, its last target stands until the next rebalance round. Otherwise
// the local square-root rule applies: live + √(live × rate × horizon), the
// single-heap MemBalancer limit, degrading to the classic 2× growth trigger
// when no allocation rate is known yet. GCLegacyGrowth restores the fixed
// GCGrowthFactor multiplier for differential testing. Never below GCMinHeap.
func (p *Process) resetGCTrigger() {
	if ctl := p.ctlTrigger.Load(); ctl != 0 {
		next := ctl
		if min := p.VM.Cfg.GCMinHeap; next < min {
			next = min
		}
		p.gcTrigger.Store(next)
		return
	}
	live := p.Heap.Bytes()
	var next uint64
	if p.VM.Cfg.GCLegacyGrowth {
		next = uint64(float64(live) * p.VM.Cfg.GCGrowthFactor)
	} else {
		alloc := p.Heap.Stats().AllocBytes
		now := p.VM.Sched.Now()
		lastAlloc := p.lastGCAlloc.Swap(alloc)
		lastCycles := p.lastGCCycles.Swap(now)
		var rate float64
		if lastCycles != 0 && now > lastCycles && alloc >= lastAlloc {
			rate = float64(alloc-lastAlloc) / float64(now-lastCycles)
		}
		next = live + membal.SqrtExtra(live, rate, p.VM.Cfg.GCSqrtHorizon)
	}
	if min := p.VM.Cfg.GCMinHeap; next < min {
		next = min
	}
	p.gcTrigger.Store(next)
}

// errorsAs adapts errors.As for the vm.go helper.
func errorsAs(err error, target any) bool {
	switch t := target.(type) {
	case **memlimit.ErrExceeded:
		return errors.As(err, t)
	}
	return false
}
