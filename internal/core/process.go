package core

import (
	"errors"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/bytecode"
	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/loader"
	"repro/internal/memlimit"
	"repro/internal/object"
)

// ProcState is a process' lifecycle state.
type ProcState uint8

const (
	ProcRunning ProcState = iota + 1
	ProcExited            // all threads returned normally
	ProcKilled            // terminated by Kill or a fatal error
	ProcReclaimed
)

func (s ProcState) String() string {
	switch s {
	case ProcRunning:
		return "running"
	case ProcExited:
		return "exited"
	case ProcKilled:
		return "killed"
	case ProcReclaimed:
		return "reclaimed"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// ProcessOptions configure process creation.
type ProcessOptions struct {
	// MemLimit caps the process' memory (objects, statics, interned
	// strings, entry/exit items, shared-heap charges). Default 16 MiB.
	MemLimit uint64
	// HardLimit reserves the memory up front instead of sharing the root
	// pool (a hard memlimit, §2 "Hierarchical memory management").
	HardLimit bool
	// CPULimit, when nonzero, kills the process once it has consumed this
	// many simulated cycles (including GC of its heap) — the OS-style
	// "CPU limits can be placed on the process" from the paper's §1.
	CPULimit uint64
	// IOLimit, when nonzero, caps the bytes the process may write to its
	// output stream. The paper leaves bandwidth control as future work
	// ("we plan to address other resources such as network bandwidth");
	// this is the accounting skeleton for it.
	IOLimit uint64
	// Out receives the process' System.out (default: the VM's Stdout).
	Out io.Writer
	// Seed seeds the per-process deterministic random source.
	Seed int64
}

// ErrCPULimit is the exit reason of a process that exceeded its CPU limit.
var ErrCPULimit = errors.New("core: CPU limit exceeded")

// Process is one KaffeOS process.
type Process struct {
	ID   Pid
	Name string
	VM   *VM

	Limit  *memlimit.Limit
	Heap   *heap.Heap
	Loader *loader.Loader
	Out    io.Writer

	state     ProcState
	exitErr   error
	uncaught  *object.Object
	threads   map[*interp.Thread]struct{}
	threadFor map[*object.Object]*interp.Thread // java/lang/Thread objects
	intern    map[string]*object.Object
	rng       *rand.Rand
	cpuCycles uint64
	cpuLimit  uint64
	ioBytes   uint64
	ioLimit   uint64
	// handles other processes hold on this one do not keep its heap
	// alive; the process table entry is the only kernel-side state.
}

// NewProcess creates a process: its own memlimit, heap, namespace (with
// the reloaded library classes defined and initialized), and interning
// table. No threads run yet; use Spawn to start one.
func (vm *VM) NewProcess(name string, opts ProcessOptions) (*Process, error) {
	if opts.MemLimit == 0 {
		opts.MemLimit = 16 << 20
	}
	lim, err := vm.RootLimit.NewChild("proc:"+name, opts.MemLimit, opts.HardLimit)
	if err != nil {
		return nil, fmt.Errorf("core: memlimit for %q: %w", name, err)
	}
	vm.mu.Lock()
	vm.nextPid++
	pid := vm.nextPid
	vm.mu.Unlock()

	p := &Process{
		ID:        pid,
		Name:      name,
		VM:        vm,
		Limit:     lim,
		Out:       opts.Out,
		state:     ProcRunning,
		threads:   make(map[*interp.Thread]struct{}),
		threadFor: make(map[*object.Object]*interp.Thread),
		intern:    make(map[string]*object.Object),
		rng:       rand.New(rand.NewSource(opts.Seed + int64(pid))),
		cpuLimit:  opts.CPULimit,
		ioLimit:   opts.IOLimit,
	}
	// The process object itself is large and lives on the *new* heap; the
	// kernel keeps only the small process-table entry (§2, "Precise memory
	// and CPU accounting").
	p.Heap = vm.Reg.NewHeap(heap.KindUser, fmt.Sprintf("proc:%s#%d", name, pid), lim)
	p.Heap.Owner = p
	p.Loader = loader.NewProcess(fmt.Sprintf("%s#%d", name, pid), p.Heap, vm.Shared)
	p.Loader.RegisterNatives(vm.Lib.Natives, vm.Lib.Kernel)

	if err := p.Loader.DefineModule(vm.Lib.ReloadedModule); err != nil {
		p.releaseEarly()
		return nil, fmt.Errorf("core: reloaded library for %q: %w", name, err)
	}
	if err := vm.runClinits(p, p.Loader.PendingClinits()); err != nil {
		p.releaseEarly()
		return nil, fmt.Errorf("core: library clinit for %q: %w", name, err)
	}

	vm.mu.Lock()
	vm.procs[pid] = p
	vm.mu.Unlock()
	return p, nil
}

// releaseEarly tears down a half-built process (creation failure).
func (p *Process) releaseEarly() {
	_ = p.Heap.MergeInto(p.VM.KernelHeap)
	p.Limit.Release()
	p.state = ProcReclaimed
}

// State reports the lifecycle state.
func (p *Process) State() ProcState { return p.state }

// ExitError reports why the process died (nil for a normal exit).
func (p *Process) ExitError() error { return p.exitErr }

// Uncaught reports the throwable that killed the process, if any.
func (p *Process) Uncaught() *object.Object { return p.uncaught }

// CPUCycles reports the simulated cycles charged to this process,
// including GC of its heap.
func (p *Process) CPUCycles() uint64 { return p.cpuCycles }

// IOBytes reports the bytes the process has written to its output stream.
func (p *Process) IOBytes() uint64 { return p.ioBytes }

// accountedWriter wraps a process' output: every byte is accounted, and
// an IOLimit overrun kills the writer at its next safepoint.
type accountedWriter struct {
	p     *Process
	inner io.Writer
}

func (w *accountedWriter) Write(b []byte) (int, error) {
	w.p.ioBytes += uint64(len(b))
	if w.p.ioLimit > 0 && w.p.ioBytes > w.p.ioLimit && w.p.state == ProcRunning {
		w.p.Kill(ErrIOLimit)
		return len(b), nil // the write that crossed the line is dropped downstream
	}
	if w.inner == nil {
		return len(b), nil
	}
	return w.inner.Write(b)
}

// ErrIOLimit is the exit reason of a process that exceeded its I/O limit.
var ErrIOLimit = errors.New("core: I/O limit exceeded")

// HeapBytes reports the process heap's live bytes.
func (p *Process) HeapBytes() uint64 { return p.Heap.Bytes() }

// MemUse reports the process' total accounted memory (heap + charges).
func (p *Process) MemUse() uint64 { return p.Limit.Use() }

// Threads reports the number of live threads.
func (p *Process) Threads() int { return len(p.threads) }

// Load defines a program module into the process namespace and runs its
// class initializers.
func (p *Process) Load(m *bytecode.Module) error {
	if p.state != ProcRunning {
		return fmt.Errorf("core: load into %s process", p.state)
	}
	if err := p.Loader.DefineModule(m); err != nil {
		return err
	}
	return p.VM.runClinits(p, p.Loader.PendingClinits())
}

// LoadProgram loads a program registered with the VM.
func (p *Process) LoadProgram(name string) error {
	m, ok := p.VM.Program(name)
	if !ok {
		return fmt.Errorf("core: no program %q", name)
	}
	return p.Load(m)
}

// Spawn starts a thread executing cls.method (a static method taking no
// arguments or a single int).
func (p *Process) Spawn(cls, methodKey string, args ...interp.Slot) (*interp.Thread, error) {
	if p.state != ProcRunning {
		return nil, fmt.Errorf("core: spawn in %s process", p.state)
	}
	c, err := p.Loader.Class(cls)
	if err != nil {
		return nil, err
	}
	m, ok := c.MethodByKey(methodKey)
	if !ok {
		return nil, fmt.Errorf("core: no method %s.%s", cls, methodKey)
	}
	t := p.VM.newThread(p)
	if err := t.PushFrame(m, args); err != nil {
		return nil, err
	}
	p.threads[t] = struct{}{}
	p.VM.Sched.Add(t)
	return t, nil
}

// spawnThreadObject implements java/lang/Thread.start: run the object's
// run()V on a new green thread of the same process.
func (p *Process) spawnThreadObject(threadObj *object.Object) error {
	m, ok := threadObj.Class.MethodByKey("run()V")
	if !ok {
		return fmt.Errorf("core: %s has no run()V", threadObj.Class.Name)
	}
	t := p.VM.newThread(p)
	if err := t.PushFrame(m, []interp.Slot{interp.RefSlot(threadObj)}); err != nil {
		return err
	}
	if df, ok := threadObj.Class.FieldByName("daemon"); ok && !df.Ref {
		t.Daemon = threadObj.Prims[df.Slot] != 0
	}
	p.threads[t] = struct{}{}
	p.threadFor[threadObj] = t
	p.VM.Sched.Add(t)
	return nil
}

// Kill requests termination of every thread. User-mode code dies at its
// next safepoint; kernel-mode sections finish first (§2, "Safe termination
// of processes"). Reclamation happens when the last thread exits.
func (p *Process) Kill(reason error) {
	if p.state != ProcRunning {
		return
	}
	p.state = ProcKilled
	if p.exitErr == nil {
		p.exitErr = reason
	}
	for t := range p.threads {
		t.Kill()
	}
}

// threadExited is called by the scheduler's exit hook.
func (p *Process) threadExited(t *interp.Thread, res interp.StepResult) {
	delete(p.threads, t)
	for obj, th := range p.threadFor {
		if th == t {
			delete(p.threadFor, obj)
		}
	}
	if res == interp.StepKilled && p.state == ProcRunning {
		// An uncaught throwable (or VM fault) in any thread kills the
		// whole process, like an uncaught signal.
		p.state = ProcKilled
		p.exitErr = t.Err
		p.uncaught = t.Uncaught
		for other := range p.threads {
			other.Kill()
		}
	}
	if len(p.threads) == 0 {
		if p.state == ProcRunning {
			p.state = ProcExited
		}
		p.reclaim()
	}
}

// reclaim implements full reclamation of memory (§2): merge the process
// heap into the kernel heap, destroy exit items, unload the namespace,
// release shared-heap charges, and let the kernel collector take it all.
func (p *Process) reclaim() {
	if p.state == ProcReclaimed {
		return
	}
	vm := p.VM
	vm.SharedMgr.DetachAll(p)
	vm.SharedMgr.UnfrozenOwnedBy(p.Limit, vm.KernelHeap)
	p.intern = make(map[string]*object.Object)
	p.Loader.Unload()
	if err := p.Heap.MergeInto(vm.KernelHeap); err != nil {
		// Merging can only fail if the kernel cannot absorb the bytes;
		// collect the kernel heap and retry once.
		vm.CollectKernel()
		_ = p.Heap.MergeInto(vm.KernelHeap)
	}
	finalState := p.state
	p.state = ProcReclaimed
	_ = finalState

	vm.mu.Lock()
	delete(vm.procs, p.ID)
	vm.mu.Unlock()

	// The kernel collection reclaims everything the process left behind,
	// including user/kernel garbage cycles.
	vm.CollectKernel()
	if p.Limit.Use() == 0 {
		p.Limit.Release()
	}
}

// gcRoots enumerates the process heap's roots: thread stacks, statics of
// its namespace, interned strings, and the kernel-side process handle.
func (p *Process) gcRoots() heap.RootFunc {
	return func(visit func(*object.Object)) {
		p.stackAndStaticRoots(visit)
		for _, o := range p.intern {
			visit(o)
		}
	}
}

func (p *Process) stackAndStaticRoots(visit func(*object.Object)) {
	for t := range p.threads {
		t.Roots(visit)
	}
	p.Loader.StaticsRoots(visit)
}

// Collect runs a GC of this process' heap, charging no thread (external
// callers: tests, the kernel's periodic sweep).
func (p *Process) Collect() heap.GCResult {
	return p.Heap.Collect(p.gcRoots())
}

// errorsAs adapts errors.As for the vm.go helper.
func errorsAs(err error, target any) bool {
	switch t := target.(type) {
	case **memlimit.ErrExceeded:
		return errors.As(err, t)
	}
	return false
}
