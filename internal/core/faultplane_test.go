package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/faults"
	"repro/internal/telemetry"
)

// churnThreadsSrc builds linked lists on two worker threads: allocation,
// write barriers, thread spawn/join, and enough work that injected faults
// land mid-flight.
const churnThreadsSrc = `
.class app/FNode
.field next Lapp/FNode;
.field v I
.method <init> ()V
.locals 1
.stack 1
	aload 0
	invokespecial java/lang/Object.<init> ()V
	return
.end
.end
.class app/FChurn extends java/lang/Thread
.method <init> ()V
.locals 1
.stack 1
	aload 0
	invokespecial java/lang/Thread.<init> ()V
	return
.end
.method run ()V
.locals 4
.stack 3
	iconst 0
	istore 1
ROUND:	iload 1
	ldc 2000
	if_icmpge DONE
	aconst_null
	astore 2
	iconst 0
	istore 3
LIST:	iload 3
	ldc 32
	if_icmpge NEXTR
	new app/FNode
	dup
	invokespecial app/FNode.<init> ()V
	dup
	aload 2
	putfield app/FNode.next Lapp/FNode;
	dup
	iload 3
	putfield app/FNode.v I
	astore 2
	iinc 3 1
	goto LIST
NEXTR:	aconst_null
	astore 2
	iinc 1 1
	goto ROUND
DONE:	return
.end
.end
.class app/FMain
.method main ()V static
.locals 2
.stack 2
	new app/FChurn
	dup
	invokespecial app/FChurn.<init> ()V
	astore 0
	new app/FChurn
	dup
	invokespecial app/FChurn.<init> ()V
	astore 1
	aload 0
	invokevirtual java/lang/Thread.start ()V
	aload 1
	invokevirtual java/lang/Thread.start ()V
	aload 0
	invokevirtual java/lang/Thread.join ()V
	aload 1
	invokevirtual java/lang/Thread.join ()V
	return
.end
.end`

// countEvents returns the number of trace events of kind k for pid.
func countEvents(vm *VM, k telemetry.Kind, pid int32) int {
	n := 0
	for _, e := range vm.Tel.Trace.Snapshot() {
		if e.Kind == k && e.Pid == pid {
			n++
		}
	}
	return n
}

// TestKillConcurrentIdempotent: racing Kill calls — from other goroutines,
// exactly as a memlimit callback or the HTTP surface might issue them —
// must produce exactly one kill/reclaim event pair and a fully reclaimed
// process. Run under -race, this also polices the thread-map accesses
// that Kill performs off the scheduler goroutine.
func TestKillConcurrentIdempotent(t *testing.T) {
	vm := newTestVM(t)
	vm.Tel.SetTracing(true)
	p := mustProc(t, vm, "victim", ProcessOptions{})
	load(t, p, churnThreadsSrc)
	spawn(t, p, "app/FMain", "main()V")
	// Let the workers start so Kill has several live threads to stop.
	if err := vm.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	const killers = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < killers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			p.Kill(fmt.Errorf("killer %d", i))
		}(i)
	}
	close(start)
	wg.Wait()
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := p.State(); got != ProcReclaimed {
		t.Fatalf("state = %v, want reclaimed", got)
	}
	pid := int32(p.ID)
	if got := countEvents(vm, telemetry.EvProcKill, pid); got != 1 {
		t.Errorf("EvProcKill count = %d, want exactly 1", got)
	}
	if got := countEvents(vm, telemetry.EvProcReclaim, pid); got != 1 {
		t.Errorf("EvProcReclaim count = %d, want exactly 1", got)
	}
	if rep := vm.Audit(true); !rep.OK() {
		t.Errorf("audit after concurrent kill: %s", rep)
	}
}

// TestKillMidLeaseReturnsReservation: killing a process while its heap
// holds a standing allocation lease must return every byte — the lease's
// unflushed remainder included — when the heap merges into the kernel.
// The root's books afterwards must show only the kernel's own use.
func TestKillMidLeaseReturnsReservation(t *testing.T) {
	vm := newTestVM(t)
	base := vm.RootLimit.Use()
	p := mustProc(t, vm, "leaseholder", ProcessOptions{MemLimit: 1 << 20, HardLimit: true})
	if got := vm.RootLimit.Use(); got != base+1<<20 {
		t.Fatalf("hard reservation not debited: root use %d, want %d", got, base+1<<20)
	}
	load(t, p, churnThreadsSrc)
	spawn(t, p, "app/FMain", "main()V")
	// Run long enough to allocate but not to finish: the loop needs tens of
	// millions of cycles, so a standing lease is live right now.
	if err := vm.Run(3_000_000); err != nil {
		t.Fatal(err)
	}
	if p.State() != ProcRunning {
		t.Fatalf("workload finished too early (state %v); lease cannot be mid-flight", p.State())
	}
	if p.Heap.Lease() == 0 {
		t.Fatal("no standing lease while churning — test premise broken")
	}
	p.Kill(errors.New("mid-lease kill"))
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := p.State(); got != ProcReclaimed {
		t.Fatalf("state = %v, want reclaimed", got)
	}
	// The hard reservation is gone; the merged garbage now bills the
	// kernel. Collect it away and the books must return to baseline.
	vm.CollectKernel()
	if got := vm.RootLimit.Use(); got != base {
		t.Errorf("root use = %d after reclaim+GC, want baseline %d (leaked %d)", got, base, got-base)
	}
	if rep := vm.Audit(true); !rep.OK() {
		t.Errorf("audit after mid-lease kill: %s", rep)
	}
}

// TestFaultSoakAuditClean arms every fault site at p=0.01 and runs the
// threaded churn workload across several seeds. Processes dying of
// injected faults is expected; the auditor must still find a perfectly
// consistent kernel afterwards.
func TestFaultSoakAuditClean(t *testing.T) {
	for seed := 1; seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			plan, err := faults.ParsePlan(fmt.Sprintf("seed=%d,all=0.01", seed))
			if err != nil {
				t.Fatal(err)
			}
			vm, err := NewVM(Config{Faults: faults.NewPlane(plan)})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2; i++ {
				p, err := vm.NewProcess(fmt.Sprintf("churn-%d", i), ProcessOptions{})
				if err != nil {
					continue // injected failure at creation: fine
				}
				if err := p.Load(bytecode.MustAssemble(churnThreadsSrc)); err != nil {
					continue // killed mid-load by an injected fault: fine
				}
				if _, err := p.Spawn("app/FMain", "main()V"); err != nil {
					continue
				}
			}
			if err := vm.Run(0); err != nil {
				t.Fatal(err)
			}
			vm.CollectAll()
			if rep := vm.Audit(true); !rep.OK() {
				t.Fatalf("seed %d: %s", seed, rep)
			}
		})
	}
}
