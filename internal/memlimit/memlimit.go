// Package memlimit implements KaffeOS's hierarchical memory management
// (paper §2, "Hierarchical memory management").
//
// Each heap is associated with a memlimit, which consists of an upper limit
// and a current use. Memlimits form a hierarchy: each one has a parent,
// except for a root memlimit. All memory allocated to the heap is debited
// from that memlimit, and memory collected from that heap is credited to
// it; crediting/debiting is applied recursively to the node's parents.
//
// A memlimit can be hard or soft:
//
//   - A hard memlimit's maximum is immediately debited from its parent at
//     creation, which amounts to setting the memory aside (a reservation).
//     Credits and debits are therefore not propagated past a hard limit.
//   - A soft memlimit's maximum is just a limit — credits and debits of a
//     soft memlimit's current usage are reflected in the parent.
//
// Hard limits allow memory reservations but can waste memory if unused;
// soft limits allow a summary cap over multiple activities (for example, a
// shared heap is created under a soft child of its creator's memlimit so it
// cannot grow beyond its creator's ability to pay).
package memlimit

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/faults"
	"repro/internal/telemetry"
)

// Unlimited is a limit value that no realistic debit can reach.
const Unlimited = ^uint64(0) >> 1

// ErrExceeded reports a debit that some limit on the path to the root
// (stopping at hard boundaries) could not absorb. The VM surfaces it to
// user code as an OutOfMemoryError.
type ErrExceeded struct {
	Limit *Limit // the limit that rejected the debit
	Need  uint64 // bytes requested
}

func (e *ErrExceeded) Error() string {
	return fmt.Sprintf("memlimit: %q exceeded: use %d + need %d > limit %d",
		e.Limit.name, e.Limit.use, e.Need, e.Limit.max)
}

var errReleased = errors.New("memlimit: operation on released limit")

// Limit is one node in a memlimit hierarchy.
//
// The whole tree shares a single mutex (held by the root), because every
// debit walks ancestors and partial-failure rollback must be atomic. Trees
// are small (one node per process/heap), so contention is not a concern.
type Limit struct {
	mu       *sync.Mutex // shared with the whole tree
	name     string
	parent   *Limit
	children map[*Limit]struct{}
	max      uint64
	use      uint64
	hard     bool
	released bool
	// sink, when set, receives a telemetry event for every refused debit
	// (a reserve failure). Inherited from the parent at creation.
	sink telemetry.Sink
	// faults, when set, lets the injection plane refuse debits that would
	// otherwise succeed (SiteMemDebit). Inherited like sink.
	faults *faults.Plane
}

// NewRoot creates a root memlimit with the given maximum. The root is a
// hard boundary by construction (it has no parent to propagate to).
func NewRoot(name string, max uint64) *Limit {
	return &Limit{
		mu:       new(sync.Mutex),
		name:     name,
		children: make(map[*Limit]struct{}),
		max:      max,
		hard:     true,
	}
}

// NewChild creates a child memlimit under l.
//
// For a hard child the full max is debited from the parent chain
// immediately; creation fails with *ErrExceeded if the reservation does not
// fit. A soft child reserves nothing at creation.
func (l *Limit) NewChild(name string, max uint64, hard bool) (*Limit, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.released {
		return nil, errReleased
	}
	if hard {
		if err := l.debitLocked(max); err != nil {
			return nil, err
		}
	}
	c := &Limit{
		mu:       l.mu,
		name:     name,
		parent:   l,
		children: make(map[*Limit]struct{}),
		max:      max,
		hard:     hard,
		sink:     l.sink,
		faults:   l.faults,
	}
	l.children[c] = struct{}{}
	return c, nil
}

// MustChild is NewChild for callers that know the reservation fits (tests,
// static setup). It panics on failure.
func (l *Limit) MustChild(name string, max uint64, hard bool) *Limit {
	c, err := l.NewChild(name, max, hard)
	if err != nil {
		panic(err)
	}
	return c
}

// Debit charges n bytes against l and, transitively, every soft ancestor up
// to the nearest hard boundary. If any limit on that path would be
// exceeded, nothing is charged and *ErrExceeded identifies the limit.
func (l *Limit) Debit(n uint64) error {
	if n == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.released {
		return errReleased
	}
	if l.faults.Fire(faults.SiteMemDebit) {
		return &ErrExceeded{Limit: l, Need: n}
	}
	return l.debitLocked(n)
}

// SetSink installs a telemetry sink on l and its whole subtree; future
// children inherit it. Reserve failures anywhere below l then emit
// EvMemFail events.
func (l *Limit) SetSink(s telemetry.Sink) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.setSinkLocked(s)
}

func (l *Limit) setSinkLocked(s telemetry.Sink) {
	l.sink = s
	for c := range l.children {
		c.setSinkLocked(s)
	}
}

// SetFaults arms the fault-injection plane on l and its whole subtree;
// future children inherit it. Armed SiteMemDebit rules then refuse debits
// below l exactly as a genuine reservation failure would.
func (l *Limit) SetFaults(p *faults.Plane) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.setFaultsLocked(p)
}

func (l *Limit) setFaultsLocked(p *faults.Plane) {
	l.faults = p
	for c := range l.children {
		c.setFaultsLocked(p)
	}
}

func (l *Limit) debitLocked(n uint64) error {
	// First pass: verify the whole path accepts the debit.
	for node := l; node != nil; node = node.propagationParent() {
		if node.use+n > node.max || node.use+n < node.use {
			if l.sink != nil {
				l.sink.Emit(telemetry.Event{
					Kind: telemetry.EvMemFail, A: n, B: node.use,
					Detail: node.name,
				})
			}
			return &ErrExceeded{Limit: node, Need: n}
		}
	}
	// Second pass: apply.
	for node := l; node != nil; node = node.propagationParent() {
		node.use += n
	}
	return nil
}

// debitQuietLocked is debitLocked without the EvMemFail emission: used for
// opportunistic over-asks (headroom leases) where a refusal is not an
// allocation failure, merely a fall back to an exact debit.
func (l *Limit) debitQuietLocked(n uint64) error {
	for node := l; node != nil; node = node.propagationParent() {
		if node.use+n > node.max || node.use+n < node.use {
			return &ErrExceeded{Limit: node, Need: n}
		}
	}
	for node := l; node != nil; node = node.propagationParent() {
		node.use += n
	}
	return nil
}

// DebitLease is the allocation fast path's batched debit (the Go runtime's
// mcache idea applied to memlimits): in one tree-lock acquisition it
// returns the caller's previous lease (refund), then tries to debit
// size+batch so the caller can satisfy the next several allocations from
// the returned headroom without touching the tree at all. If the batched
// ask does not fit, it falls back to an exact debit of size (which emits
// EvMemFail on refusal, exactly like Debit).
//
// On success the tree has been charged size+lease and the returned lease
// is the caller's new standing headroom. On failure the refund has still
// been consumed (the caller's lease is gone) and nothing else is charged —
// so a heap's invariant "tree use == live bytes + lease" holds on every
// path. batch is clamped to max/8 so a small limit is never dominated by
// its own headroom.
func (l *Limit) DebitLease(size, batch, refund uint64) (lease uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.released {
		return 0, errReleased
	}
	if refund > 0 {
		l.creditLocked(refund)
	}
	if l.faults.Fire(faults.SiteMemDebit) {
		// The refund has been consumed, nothing new is charged: the heap's
		// "use == bytes + lease" invariant holds across injected refusals.
		return 0, &ErrExceeded{Limit: l, Need: size}
	}
	if clamp := l.max / 8; batch > clamp {
		batch = clamp
	}
	if batch > 0 && size+batch > size {
		if err := l.debitQuietLocked(size + batch); err == nil {
			return batch, nil
		}
	}
	if err := l.debitLocked(size); err != nil {
		return 0, err
	}
	return 0, nil
}

// Credit returns n bytes to l and every soft ancestor up to the nearest
// hard boundary. Crediting more than the current use panics: it means the
// caller's accounting is corrupt, which is a kernel bug in paper terms.
func (l *Limit) Credit(n uint64) {
	if n == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.creditLocked(n)
}

func (l *Limit) creditLocked(n uint64) {
	for node := l; node != nil; node = node.propagationParent() {
		if n > node.use {
			panic(fmt.Sprintf("memlimit: credit %d exceeds use %d at %q", n, node.use, node.name))
		}
		node.use -= n
	}
}

// propagationParent returns the parent that the next credit/debit hop
// should touch, or nil if l is a propagation boundary (hard or root).
func (l *Limit) propagationParent() *Limit {
	if l.hard {
		return nil
	}
	return l.parent
}

// Transfer moves n bytes of accounted use from l to dst atomically with
// respect to the tree. Both limits must belong to the same tree. It is used
// when a terminated process' heap is merged into the kernel heap: the bytes
// stop being the process' and become the kernel's until collected.
func (l *Limit) Transfer(n uint64, dst *Limit) error {
	if n == 0 {
		return nil
	}
	if l.mu != dst.mu {
		return errors.New("memlimit: transfer across trees")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.released || dst.released {
		return errReleased
	}
	if err := dst.debitLocked(n); err != nil {
		return err
	}
	l.creditLocked(n)
	return nil
}

// Release detaches l from the hierarchy. Its current use must be zero
// (callers credit everything back first); for a hard limit the reservation
// is returned to the parent. Releasing a limit with live children panics.
func (l *Limit) Release() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.released {
		return
	}
	if l.use != 0 {
		panic(fmt.Sprintf("memlimit: release of %q with use %d", l.name, l.use))
	}
	if len(l.children) != 0 {
		panic(fmt.Sprintf("memlimit: release of %q with %d children", l.name, len(l.children)))
	}
	if l.parent != nil {
		if l.hard {
			l.parent.creditLocked(l.max)
		}
		delete(l.parent.children, l)
	}
	l.released = true
}

// Use reports the current accounted use of l.
func (l *Limit) Use() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.use
}

// Max reports l's maximum.
func (l *Limit) Max() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.max
}

// Available reports how many bytes l could still debit locally (ignoring
// ancestors, which may be tighter). Saturates at zero: a controller may
// pin max to exactly the current use (SetMaxClamped), and a raw
// `max - use` here would wrap to ~2^64 the instant use crossed a stale
// max — the underflow the memlimit property suite guards against.
func (l *Limit) Available() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.use >= l.max {
		return 0
	}
	return l.max - l.use
}

// Hard reports whether l is a hard (reservation) limit.
func (l *Limit) Hard() bool { return l.hard }

// Name reports the label given at creation.
func (l *Limit) Name() string { return l.name }

// Parent returns l's parent, or nil for a root.
func (l *Limit) Parent() *Limit { return l.parent }

// SetMax adjusts l's maximum. Growing a hard limit debits the difference
// from the parent; shrinking credits it back. Shrinking below the current
// use fails.
func (l *Limit) SetMax(max uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.released {
		return errReleased
	}
	if max < l.use {
		return &ErrExceeded{Limit: l, Need: l.use - max}
	}
	if l.hard && l.parent != nil {
		switch {
		case max > l.max:
			if err := l.parent.debitLocked(max - l.max); err != nil {
				return err
			}
		case max < l.max:
			l.parent.creditLocked(l.max - max)
		}
	}
	l.max = max
	return nil
}

// SetMaxClamped is the memory-balancer's shrink: it sets l's maximum to
// max, but never below the current use, and reports the value actually
// applied. The clamp and the assignment happen under one tree-lock
// acquisition, which is the point: a caller that reads Use() and then
// calls SetMax races concurrent allocation — in particular the 64 KiB
// allocation lease (DebitLease), which raises use between the read and
// the set — and either livelocks on ErrExceeded or, if it subtracts the
// stale use from the new max, underflows. For a hard limit the grow/
// shrink delta settles with the parent exactly as SetMax does; a grow
// the parent cannot absorb falls back to the largest max the parent
// accepts (at least the current use, which is already reserved).
func (l *Limit) SetMaxClamped(max uint64) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.released {
		return 0
	}
	if max < l.use {
		max = l.use
	}
	if l.hard && l.parent != nil && max > l.max {
		if err := l.parent.debitLocked(max - l.max); err != nil {
			// The parent cannot fund the full grow; keep what we have.
			return l.max
		}
	}
	if l.hard && l.parent != nil && max < l.max {
		l.parent.creditLocked(l.max - max)
	}
	l.max = max
	return max
}

// Node is a point-in-time copy of one limit, captured by Snapshot for the
// invariant auditor. Limit identifies the live node (for matching heaps to
// tree positions); the numeric fields are copies from the capture instant.
type Node struct {
	Name     string
	Max      uint64
	Use      uint64
	Hard     bool
	Limit    *Limit
	Children []*Node
}

// Snapshot copies the subtree rooted at l in one tree-lock acquisition, so
// the returned uses and maxima are mutually consistent.
func (l *Limit) Snapshot() *Node {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapshotLocked()
}

func (l *Limit) snapshotLocked() *Node {
	n := &Node{Name: l.name, Max: l.max, Use: l.use, Hard: l.hard, Limit: l}
	kids := make([]*Limit, 0, len(l.children))
	for c := range l.children {
		kids = append(kids, c)
	}
	sort.Slice(kids, func(i, j int) bool { return kids[i].name < kids[j].name })
	for _, c := range kids {
		n.Children = append(n.Children, c.snapshotLocked())
	}
	return n
}

// String renders the subtree rooted at l, one node per line, for
// diagnostics.
func (l *Limit) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var b strings.Builder
	l.render(&b, 0)
	return b.String()
}

func (l *Limit) render(b *strings.Builder, depth int) {
	kind := "soft"
	if l.hard {
		kind = "hard"
	}
	fmt.Fprintf(b, "%s%s: %d/%d (%s)\n", strings.Repeat("  ", depth), l.name, l.use, l.max, kind)
	kids := make([]*Limit, 0, len(l.children))
	for c := range l.children {
		kids = append(kids, c)
	}
	sort.Slice(kids, func(i, j int) bool { return kids[i].name < kids[j].name })
	for _, c := range kids {
		c.render(b, depth+1)
	}
}
