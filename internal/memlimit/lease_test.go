package memlimit

import (
	"errors"
	"testing"

	"repro/internal/faults"
)

// TestDebitLeaseGrantsHeadroom: a successful batched debit charges
// size+batch and hands the batch back as the caller's standing lease.
func TestDebitLeaseGrantsHeadroom(t *testing.T) {
	root := NewRoot("root", 1000)
	lease, err := root.DebitLease(100, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lease != 64 {
		t.Fatalf("lease = %d, want 64", lease)
	}
	if got := root.Use(); got != 164 {
		t.Fatalf("use = %d, want size+lease = 164", got)
	}
}

// TestDebitLeaseBatchClampedToMaxEighth: the headroom batch never exceeds
// max/8, so a small limit is not dominated by its own lease.
func TestDebitLeaseBatchClampedToMaxEighth(t *testing.T) {
	root := NewRoot("root", 800)
	lease, err := root.DebitLease(8, 500, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lease != 100 {
		t.Fatalf("lease = %d, want clamp max/8 = 100", lease)
	}
	if got := root.Use(); got != 108 {
		t.Fatalf("use = %d, want 108", got)
	}
}

// TestDebitLeaseRefundConsumedOnFailure: when a batched debit fails, the
// refunded lease must already be gone — the caller's lease is zero and the
// limit's use reflects only live bytes. Without this, the heap invariant
// "limit use == bytes + lease" would break on the failure path.
func TestDebitLeaseRefundConsumedOnFailure(t *testing.T) {
	root := NewRoot("root", 200)
	lease, err := root.DebitLease(100, 64, 0)
	if err != nil || lease != 25 { // clamp: 200/8
		t.Fatalf("first DebitLease = (%d, %v), want (25, nil)", lease, err)
	}
	if got := root.Use(); got != 125 {
		t.Fatalf("use = %d, want 125", got)
	}
	// 150 more cannot fit even without headroom: 100+150 > 200.
	lease2, err := root.DebitLease(150, 64, lease)
	if err == nil {
		t.Fatal("oversized DebitLease succeeded")
	}
	var ex *ErrExceeded
	if !errors.As(err, &ex) {
		t.Fatalf("error type %T, want *ErrExceeded", err)
	}
	if lease2 != 0 {
		t.Fatalf("failed DebitLease returned lease %d, want 0", lease2)
	}
	// The refund was consumed: use dropped from 125 to the 100 live bytes.
	if got := root.Use(); got != 100 {
		t.Fatalf("use after failed debit = %d, want 100 (refund consumed, nothing charged)", got)
	}
}

// TestMidLeaseFlushReturnsRemainderToParent walks the books a process heap
// keeps when it is killed mid-lease: the hard reservation is charged to
// the parent up front, the standing lease is flushed back, live bytes are
// transferred to the kernel's limit, and Release returns the reservation.
// The parent must end up charged for exactly the surviving bytes.
func TestMidLeaseFlushReturnsRemainderToParent(t *testing.T) {
	root := NewRoot("root", Unlimited)
	kernel := root.MustChild("kernel", Unlimited, false)
	proc := root.MustChild("proc", 4096, true)
	if got := root.Use(); got != 4096 {
		t.Fatalf("hard reservation not charged: root use = %d, want 4096", got)
	}
	lease, err := proc.DebitLease(256, 512, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lease != 512 {
		t.Fatalf("lease = %d, want 512", lease)
	}
	if got := proc.Use(); got != 768 {
		t.Fatalf("proc use = %d, want 768", got)
	}
	// Kill mid-lease: flush the unflushed remainder, move live bytes to
	// the kernel, release the reservation — the merge path in order.
	proc.Credit(lease)
	if err := proc.Transfer(256, kernel); err != nil {
		t.Fatal(err)
	}
	proc.Release()
	if got := root.Use(); got != 256 {
		t.Errorf("root use = %d after mid-lease kill, want only the 256 merged bytes", got)
	}
	if got := kernel.Use(); got != 256 {
		t.Errorf("kernel use = %d, want 256", got)
	}
}

// TestDebitLeaseInjectedRefusalKeepsBooks: an injected mem.debit fault
// refuses the debit but must still consume the refund, exactly like a real
// exhaustion — the books stay at live bytes on every path.
func TestDebitLeaseInjectedRefusalKeepsBooks(t *testing.T) {
	plan, err := faults.ParsePlan("seed=1,mem.debit=@2")
	if err != nil {
		t.Fatal(err)
	}
	root := NewRoot("root", 100000)
	root.SetFaults(faults.NewPlane(plan))
	lease, err := root.DebitLease(100, 64, 0)
	if err != nil {
		t.Fatalf("first hit should not fire: %v", err)
	}
	if got := root.Use(); got != 100+lease {
		t.Fatalf("use = %d, want %d", got, 100+lease)
	}
	var ex *ErrExceeded
	if _, err := root.DebitLease(50, 64, lease); !errors.As(err, &ex) {
		t.Fatalf("second hit should fire the injected fault as *ErrExceeded, got %v", err)
	}
	if got := root.Use(); got != 100 {
		t.Errorf("use after injected refusal = %d, want 100 (refund consumed)", got)
	}
	// The @2 plan is one-shot: the third hit goes through untouched.
	if _, err := root.DebitLease(50, 0, 0); err != nil {
		t.Fatalf("plane must be one-shot at @2, got %v", err)
	}
}
