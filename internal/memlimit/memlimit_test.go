package memlimit

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDebitCredit(t *testing.T) {
	root := NewRoot("root", 1000)
	if err := root.Debit(400); err != nil {
		t.Fatal(err)
	}
	if got := root.Use(); got != 400 {
		t.Fatalf("Use = %d, want 400", got)
	}
	root.Credit(150)
	if got := root.Use(); got != 250 {
		t.Fatalf("Use = %d, want 250", got)
	}
}

func TestDebitRejectsOverflowOfLimit(t *testing.T) {
	root := NewRoot("root", 100)
	if err := root.Debit(101); err == nil {
		t.Fatal("debit past limit succeeded")
	}
	var ex *ErrExceeded
	err := root.Debit(101)
	if !errors.As(err, &ex) {
		t.Fatalf("error type %T, want *ErrExceeded", err)
	}
	if ex.Limit != root || ex.Need != 101 {
		t.Fatalf("ErrExceeded = %+v", ex)
	}
	if root.Use() != 0 {
		t.Fatal("failed debit changed use")
	}
}

func TestSoftChildPropagates(t *testing.T) {
	root := NewRoot("root", 1000)
	child := root.MustChild("proc", 500, false)
	if err := child.Debit(300); err != nil {
		t.Fatal(err)
	}
	if root.Use() != 300 || child.Use() != 300 {
		t.Fatalf("use root=%d child=%d, want 300/300", root.Use(), child.Use())
	}
	child.Credit(100)
	if root.Use() != 200 || child.Use() != 200 {
		t.Fatalf("after credit: root=%d child=%d, want 200/200", root.Use(), child.Use())
	}
}

func TestSoftChildBoundedByParent(t *testing.T) {
	root := NewRoot("root", 100)
	child := root.MustChild("proc", 500, false) // child max looser than parent
	err := child.Debit(200)
	var ex *ErrExceeded
	if !errors.As(err, &ex) || ex.Limit != root {
		t.Fatalf("err = %v, want ErrExceeded at root", err)
	}
	if child.Use() != 0 || root.Use() != 0 {
		t.Fatal("failed debit left partial charge")
	}
}

func TestHardChildReservesAtCreation(t *testing.T) {
	root := NewRoot("root", 1000)
	child, err := root.NewChild("reserved", 600, true)
	if err != nil {
		t.Fatal(err)
	}
	if root.Use() != 600 {
		t.Fatalf("root.Use = %d after hard child, want 600", root.Use())
	}
	// Debits inside the hard child do not touch the parent.
	if err := child.Debit(500); err != nil {
		t.Fatal(err)
	}
	if root.Use() != 600 {
		t.Fatalf("root.Use = %d after child debit, want still 600", root.Use())
	}
	if err := child.Debit(200); err == nil {
		t.Fatal("debit past hard child limit succeeded")
	}
}

func TestHardChildCreationFailsWhenNoRoom(t *testing.T) {
	root := NewRoot("root", 100)
	if _, err := root.NewChild("big", 200, true); err == nil {
		t.Fatal("oversized hard reservation succeeded")
	}
	if root.Use() != 0 {
		t.Fatal("failed reservation charged the parent")
	}
}

func TestDeepMixedHierarchy(t *testing.T) {
	root := NewRoot("root", 10_000)
	hard := root.MustChild("hard", 4000, true)
	soft := hard.MustChild("soft", 3000, false)
	leaf := soft.MustChild("leaf", 2000, false)

	if err := leaf.Debit(1500); err != nil {
		t.Fatal(err)
	}
	// Propagation: leaf -> soft -> hard, stops at hard.
	if leaf.Use() != 1500 || soft.Use() != 1500 || hard.Use() != 1500 {
		t.Fatalf("uses = %d/%d/%d, want 1500 each", leaf.Use(), soft.Use(), hard.Use())
	}
	if root.Use() != 4000 {
		t.Fatalf("root.Use = %d, want 4000 (reservation only)", root.Use())
	}
	leaf.Credit(1500)
	if hard.Use() != 0 {
		t.Fatalf("hard.Use = %d after full credit, want 0", hard.Use())
	}
}

func TestReleaseHardReturnsReservation(t *testing.T) {
	root := NewRoot("root", 1000)
	child := root.MustChild("c", 400, true)
	child.Release()
	if root.Use() != 0 {
		t.Fatalf("root.Use = %d after release, want 0", root.Use())
	}
	if err := child.Debit(1); err == nil {
		t.Fatal("debit on released limit succeeded")
	}
}

func TestReleaseNonZeroUsePanics(t *testing.T) {
	root := NewRoot("root", 1000)
	child := root.MustChild("c", 400, false)
	if err := child.Debit(10); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("release with outstanding use did not panic")
		}
	}()
	child.Release()
}

func TestCreditOverflowPanics(t *testing.T) {
	root := NewRoot("root", 1000)
	defer func() {
		if recover() == nil {
			t.Fatal("credit past use did not panic")
		}
	}()
	root.Credit(1)
}

func TestTransfer(t *testing.T) {
	root := NewRoot("root", 1000)
	a := root.MustChild("a", 500, true)
	b := root.MustChild("b", 500, true)
	if err := a.Debit(300); err != nil {
		t.Fatal(err)
	}
	if err := a.Transfer(300, b); err != nil {
		t.Fatal(err)
	}
	if a.Use() != 0 || b.Use() != 300 {
		t.Fatalf("after transfer: a=%d b=%d, want 0/300", a.Use(), b.Use())
	}
}

func TestTransferFailsAndRollsBack(t *testing.T) {
	root := NewRoot("root", 1000)
	a := root.MustChild("a", 500, true)
	b := root.MustChild("b", 100, true)
	if err := a.Debit(300); err != nil {
		t.Fatal(err)
	}
	if err := a.Transfer(300, b); err == nil {
		t.Fatal("transfer past dst limit succeeded")
	}
	if a.Use() != 300 || b.Use() != 0 {
		t.Fatalf("failed transfer mutated state: a=%d b=%d", a.Use(), b.Use())
	}
}

func TestSetMaxHardAdjustsParent(t *testing.T) {
	root := NewRoot("root", 1000)
	c := root.MustChild("c", 400, true)
	if err := c.SetMax(600); err != nil {
		t.Fatal(err)
	}
	if root.Use() != 600 {
		t.Fatalf("root.Use = %d after grow, want 600", root.Use())
	}
	if err := c.SetMax(100); err != nil {
		t.Fatal(err)
	}
	if root.Use() != 100 {
		t.Fatalf("root.Use = %d after shrink, want 100", root.Use())
	}
	if err := c.Debit(90); err != nil {
		t.Fatal(err)
	}
	if err := c.SetMax(50); err == nil {
		t.Fatal("shrink below use succeeded")
	}
}

func TestStringRendersTree(t *testing.T) {
	root := NewRoot("root", 100)
	root.MustChild("a", 10, true)
	root.MustChild("b", 20, false)
	s := root.String()
	if s == "" {
		t.Fatal("empty render")
	}
}

// Property: any sequence of debits and credits keeps use <= max at every
// node, and a full unwind returns every node to zero.
func TestPropBalancedOperations(t *testing.T) {
	f := func(seed int64, ops []uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		root := NewRoot("root", 1_000_000)
		nodes := []*Limit{root}
		for i := 0; i < 4; i++ {
			parent := nodes[rng.Intn(len(nodes))]
			c, err := parent.NewChild("n", uint64(rng.Intn(500_000)+1000), rng.Intn(2) == 0)
			if err == nil {
				nodes = append(nodes, c)
			}
		}
		type charge struct {
			l *Limit
			n uint64
		}
		var charges []charge
		for _, op := range ops {
			l := nodes[int(op)%len(nodes)]
			n := uint64(op%997) + 1
			if err := l.Debit(n); err == nil {
				charges = append(charges, charge{l, n})
			}
			for _, node := range nodes {
				if node.Use() > node.Max() {
					return false
				}
			}
		}
		for _, c := range charges {
			c.l.Credit(c.n)
		}
		// Tear down children bottom-up (reverse creation order): each node
		// must be back to zero local use, and releasing hard nodes must
		// return their reservations so the root ends at zero.
		for i := len(nodes) - 1; i >= 1; i-- {
			if nodes[i].Use() != 0 {
				return false
			}
			nodes[i].Release()
		}
		return root.Use() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the sum of direct soft-child uses plus direct local debits never
// exceeds a node's recorded use (soft children are reflected in parents).
func TestPropSoftReflection(t *testing.T) {
	f := func(amounts []uint16) bool {
		root := NewRoot("root", Unlimited)
		kids := []*Limit{
			root.MustChild("a", Unlimited, false),
			root.MustChild("b", Unlimited, false),
			root.MustChild("c", Unlimited, false),
		}
		var want uint64
		for i, a := range amounts {
			n := uint64(a)
			if kids[i%3].Debit(n) == nil {
				want += n
			}
		}
		return root.Use() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
