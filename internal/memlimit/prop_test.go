package memlimit

import (
	"math/rand"
	"sync"
	"testing"
)

// The property suite drives random operation sequences through a memlimit
// tree while an exact model tracks what the tree's books must say. It
// exists because the memory-balancer controller made SetMax a hot,
// concurrent operation: a shrink racing the 64 KiB allocation lease is
// precisely the kind of interleaving a fixed unit test never finds.
//
// Invariants checked after every operation:
//   - use ≤ max at every node (SetMaxClamped must make this unbreakable);
//   - conservation: every node's use equals its own outstanding charges
//     plus its soft descendants' charges plus its hard children's current
//     reservations — no byte appears or disappears;
//   - Available never underflows (reports ≤ max always);
//   - no operation panics unless the model says it must.

// propNode mirrors one live limit: the bytes debited directly at it
// (payload + outstanding lease) and its children.
type propNode struct {
	l        *Limit
	hard     bool
	max      uint64 // tracked current max (updated on successful SetMax*)
	charged  uint64 // direct debits outstanding (includes lease)
	lease    uint64 // portion of charged that is the allocation lease
	children []*propNode
	parent   *propNode
}

// expectedUse computes what the real node's use must be.
func (n *propNode) expectedUse() uint64 {
	u := n.charged
	for _, c := range n.children {
		if c.hard {
			u += c.max
		} else {
			u += c.expectedUse()
		}
	}
	return u
}

// walk visits the subtree.
func (n *propNode) walk(f func(*propNode)) {
	f(n)
	for _, c := range n.children {
		c.walk(f)
	}
}

func checkInvariants(t *testing.T, step int, root *propNode) {
	t.Helper()
	root.walk(func(n *propNode) {
		use, max := n.l.Use(), n.l.Max()
		if use > max {
			t.Fatalf("step %d: %q use %d > max %d", step, n.l.Name(), use, max)
		}
		if want := n.expectedUse(); use != want {
			t.Fatalf("step %d: %q use %d, model says %d", step, n.l.Name(), use, want)
		}
		if max != n.max {
			t.Fatalf("step %d: %q max %d, model says %d", step, n.l.Name(), max, n.max)
		}
		if av := n.l.Available(); av > max {
			t.Fatalf("step %d: %q Available %d > max %d (underflow)", step, n.l.Name(), av, max)
		}
	})
}

// TestPropRandomOps: 64 seeds × 400 random Debit/Credit/DebitLease/
// Transfer/SetMax/SetMaxClamped/NewChild/Release sequences, with the model
// audited after every operation.
func TestPropRandomOps(t *testing.T) {
	const (
		seeds = 64
		steps = 400
		K     = uint64(1) << 10
	)
	for seed := int64(1); seed <= seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rootL := NewRoot("root", 4096*K)
		root := &propNode{l: rootL, hard: true, max: 4096 * K}
		nodes := []*propNode{root}

		// collect re-snapshots the flat node list after releases.
		collect := func() {
			nodes = nodes[:0]
			root.walk(func(n *propNode) { nodes = append(nodes, n) })
		}
		pick := func() *propNode { return nodes[rng.Intn(len(nodes))] }

		for step := 0; step < steps; step++ {
			switch op := rng.Intn(10); op {
			case 0, 1: // Debit
				n := pick()
				amt := uint64(rng.Intn(64)) * K
				err := n.l.Debit(amt)
				if err == nil {
					n.charged += amt
				}
			case 2: // Credit part of our own charges (never the lease)
				n := pick()
				if own := n.charged - n.lease; own > 0 {
					amt := uint64(rng.Int63n(int64(own))) + 1
					n.l.Credit(amt)
					n.charged -= amt
				}
			case 3: // DebitLease: refund the old lease, take a new one
				n := pick()
				size := uint64(rng.Intn(32)) * K
				batch := uint64(64) * K
				lease, err := n.l.DebitLease(size, batch, n.lease)
				if err != nil {
					// Refund consumed, nothing charged.
					n.charged -= n.lease
					n.lease = 0
				} else {
					n.charged += size + lease - n.lease
					n.lease = lease
				}
			case 4: // Transfer between two distinct nodes
				a, b := pick(), pick()
				if a == b {
					break
				}
				own := a.charged - a.lease
				if own == 0 {
					break
				}
				amt := uint64(rng.Int63n(int64(own))) + 1
				if a.l.Transfer(amt, b.l) == nil {
					a.charged -= amt
					b.charged += amt
				}
			case 5: // SetMax (the strict variant)
				n := pick()
				max := uint64(rng.Intn(512)) * K
				if n.l.SetMax(max) == nil {
					n.max = max
				}
			case 6, 7: // SetMaxClamped (the controller's variant)
				n := pick()
				want := uint64(rng.Intn(512)) * K
				n.max = n.l.SetMaxClamped(want)
				if n.max < want && n.max != n.l.Use() {
					// A grow may be cut short only by a hard parent refusing
					// the delta; then the max must simply be unchanged.
					if n.max != n.l.Max() {
						t.Fatalf("seed %d step %d: clamped grow returned %d, limit says %d",
							seed, step, n.max, n.l.Max())
					}
				}
			case 8: // NewChild
				if len(nodes) > 12 {
					break
				}
				n := pick()
				hard := rng.Intn(3) == 0
				max := uint64(rng.Intn(256)+1) * K
				c, err := n.l.NewChild("c", max, hard)
				if err == nil {
					cn := &propNode{l: c, hard: hard, max: max, parent: n}
					n.children = append(n.children, cn)
					collect()
				}
			case 9: // Release a drained leaf
				n := pick()
				if n == root || len(n.children) > 0 || n.charged != 0 {
					break
				}
				n.l.Release()
				p := n.parent
				for i, c := range p.children {
					if c == n {
						p.children = append(p.children[:i], p.children[i+1:]...)
						break
					}
				}
				collect()
			}
			checkInvariants(t, step, root)
		}

		// Drain: credit everything back, release every limit; the root must
		// come back to zero use — total conservation over the whole run.
		var drain func(n *propNode)
		drain = func(n *propNode) {
			for _, c := range n.children {
				drain(c)
			}
			n.children = nil
			n.l.Credit(n.charged)
			n.charged, n.lease = 0, 0
			if n != root {
				n.l.Release()
			}
		}
		drain(root)
		if use := rootL.Use(); use != 0 {
			t.Fatalf("seed %d: root use %d after full drain, want 0", seed, use)
		}
	}
}

// TestPropConcurrentShrinkVsLease is the race the controller actually
// runs: one goroutine continuously shrinks and grows a tenant's limit with
// SetMaxClamped (as rebalance rounds do) while the tenant's allocator
// churns 64 KiB leases through DebitLease. The naive shrink — read Use,
// subtract, SetMax — either livelocks or underflows here; SetMaxClamped
// must keep use ≤ max and both counters finite throughout. Run with -race.
func TestPropConcurrentShrinkVsLease(t *testing.T) {
	const K = uint64(1) << 10
	root := NewRoot("root", 1<<30)
	tenant, err := root.NewChild("tenant", 8192*K, false)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Allocator: lease in, lease out, forever.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		lease := uint64(0)
		charged := uint64(0)
		for i := 0; ; i++ {
			select {
			case <-stop:
				tenant.Credit(charged)
				return
			default:
			}
			size := uint64(rng.Intn(16)) * K
			got, err := tenant.DebitLease(size, 64*K, lease)
			if err != nil {
				charged -= lease
				lease = 0
			} else {
				charged += size + got - lease
				lease = got
			}
			if own := charged - lease; own > 64*K {
				tenant.Credit(own / 2)
				charged -= own / 2
			}
		}
	}()

	// Controller: shrink to the bone, grow back, 10k rounds.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 10_000; i++ {
			want := uint64(rng.Intn(256)) * K // mostly brutal shrinks
			got := tenant.SetMaxClamped(want)
			if got < want {
				panic("clamped result below requested max")
			}
		}
	}()

	// Auditor: sample the invariant while both run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := root.Snapshot()
			var check func(n *Node)
			check = func(n *Node) {
				if n.Use > n.Max {
					panic("use > max observed under concurrency")
				}
				for _, c := range n.Children {
					check(c)
				}
			}
			check(snap)
			if av := tenant.Available(); av > tenant.Max() {
				panic("Available underflowed")
			}
		}
	}()

	wg.Wait()
	if use, max := tenant.Use(), tenant.Max(); use > max {
		t.Fatalf("final state: use %d > max %d", use, max)
	}
	if use := tenant.Use(); use != 0 {
		t.Fatalf("allocator drained but use is %d", use)
	}
}
