package barrier

import (
	"testing"

	"repro/internal/audit"
	"repro/internal/heap"
	"repro/internal/memlimit"
	"repro/internal/object"
	"repro/internal/vmaddr"
)

// FuzzBarrierStore drives byte-decoded store sequences through every real
// barrier implementation — applying exactly the stores each barrier
// accepts, as the interpreter does — interleaved with fresh allocations
// and a shared-heap freeze. After the sequence, the whole-kernel auditor
// must find a fully consistent world: legal reference graph, symmetric
// entry/exit items, exact page/chunk agreement, reconciled memlimits.
func FuzzBarrierStore(f *testing.F) {
	f.Add([]byte{0, 0x00, 0x10, 0, 0x01, 0x20, 0, 0x20, 0x00})
	f.Add([]byte{15, 0, 0, 0, 0x30, 0x31, 2, 0x30, 0x00}) // freeze, then poke the shared heap
	f.Add([]byte{14, 1, 0, 14, 3, 0, 0, 0x00, 0x30, 1, 0x20, 0x01})
	f.Add([]byte{7, 0x00, 0x00, 3, 0x10, 0x01, 5, 0x01, 0x11})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, b := range realBarriers() {
			w := newWorld(t, b)
			var st Stats
			heaps := []*heap.Heap{w.userA, w.userB, w.kernel, w.shared}
			objs := make([][]*object.Object, len(heaps))
			for i, h := range heaps {
				for j := 0; j < 4; j++ {
					o, err := h.Alloc(w.node)
					if err != nil {
						t.Fatal(err)
					}
					objs[i] = append(objs[i], o)
				}
			}
			pick := func(sel byte) *object.Object {
				pool := objs[int(sel>>4)%len(objs)]
				return pool[int(sel&0xf)%len(pool)]
			}
			for i := 0; i+2 < len(data); i += 3 {
				op, a, b2 := data[i], data[i+1], data[i+2]
				switch op % 16 {
				case 15:
					w.shared.Freeze()
				case 14:
					hi := int(a) % len(heaps)
					if o, err := heaps[hi].Alloc(w.node); err == nil {
						objs[hi] = append(objs[hi], o)
					} // frozen shared heap: ErrFrozen is the contract
				default:
					holder := pick(a)
					ref := pick(b2)
					if op%8 == 7 {
						ref = nil
					}
					if err := b.Write(w.reg, holder, ref, op&1 == 1, &st); err == nil {
						holder.SetRef(0, ref)
					}
				}
			}
			var limits *memlimit.Node
			var pages map[uint64]vmaddr.HeapID
			views := w.reg.SnapshotAll(func() {
				limits = w.root.Snapshot()
				pages = w.reg.Space.Dump()
			})
			rep := audit.Check(audit.World{
				Heaps:    views,
				Limits:   limits,
				Pages:    pages,
				KernelID: w.kernel.ID,
			}, audit.Options{Graph: true})
			if !rep.OK() {
				t.Fatalf("%s: invariants violated after store sequence:\n%s", b.Name(), rep)
			}
		}
	})
}
